# Convenience wrappers around the CMake build. The canonical workflow is
#   cmake -B build -S . && cmake --build build -j && ctest --test-dir build
# these targets just save typing.

BUILD ?= build

.PHONY: all build test bench-report clean

all: build

build:
	cmake -B $(BUILD) -S .
	cmake --build $(BUILD) -j

test: build
	ctest --test-dir $(BUILD) --output-on-failure

# Runs the event-core microbenchmarks and the sharded relay fan-out A/B
# (Release recommended), writing the perf-trajectory reports to
# $(BUILD)/BENCH_PR2.json and $(BUILD)/BENCH_PR3.json; compare against the
# checked-in BENCH_PR2.json / BENCH_PR3.json medians at the repo root.
bench-report: build
	cmake --build $(BUILD) --target bench-report

clean:
	rm -rf $(BUILD)
