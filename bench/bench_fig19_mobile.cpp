// Fig 19: mobile resource consumption — CPU usage (a), download data rate
// (b), and battery drain (c) for the S10 and J3 across the five device/UI
// scenarios (LM, HM, LM-View, LM-Video-View, LM-Off).
//
// Paper anchors (Finding 5): videoconferencing needs 2-3 full cores; Meet is
// the most bandwidth-hungry (~1 GB/hour ≈ 2.2 Mbps) vs Zoom's gallery view
// at ~175 MB/hour (~0.4 Mbps); one hour drains up to ~40% of the J3's
// battery, halved by going audio-only.
//
// The sweep runs on runner::ExperimentRunner: every (platform, scenario,
// repetition) cell is an independent session (core::run_mobile_session),
// executed once on one thread and once on eight; the two aggregate reports
// must be bit-identical. CPU cells show mean±sd of the pooled per-second
// samples (the runner aggregates streaming moments, not raw quartiles).
// `--shards K` forwards intra-session relay fan-out sharding.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/mobile_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Cell {
  platform::PlatformId id{};
  mobile::MobileScenario scenario{};
  std::uint64_t platform_seed = 0;  // the pre-runner sweep's 801 + id*41 stream
  std::string key;                  // e.g. "Zoom/HM"
};

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  const int shards = vcb::int_flag(argc, argv, "--shards", 0);
  vcb::banner("Fig 19 — mobile CPU / data rate / battery (S10 & J3)", paper);

  const mobile::MobileScenario scenarios[] = {
      mobile::MobileScenario::kLM, mobile::MobileScenario::kHM, mobile::MobileScenario::kLMView,
      mobile::MobileScenario::kLMVideoView, mobile::MobileScenario::kLMOff};
  const int reps = paper ? 5 : 2;
  const SimDuration duration = paper ? seconds(300) : seconds(45);

  std::vector<Cell> cells;
  for (const auto id : vcb::all_platforms()) {
    for (const auto scenario : scenarios) {
      Cell c;
      c.id = id;
      c.scenario = scenario;
      c.platform_seed = 801 + static_cast<std::uint64_t>(id) * 41;
      c.key = std::string(platform_name(id)) + "/" + std::string(scenario_name(scenario));
      for (int rep = 0; rep < reps; ++rep) cells.push_back(c);
    }
  }

  const auto task = [&cells, duration, shards](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    core::MobileBenchmarkConfig cfg;
    cfg.platform = c.id;
    cfg.scenario = c.scenario;
    cfg.duration = duration;
    cfg.fan_out_shards = shards;
    const auto r = core::run_mobile_session(cfg, ctx.seed ^ c.platform_seed);
    for (double v : r.s10_cpu) ctx.sample(c.key + ".s10_cpu", v);
    for (double v : r.j3_cpu) ctx.sample(c.key + ".j3_cpu", v);
    ctx.sample(c.key + ".s10_download_kbps", r.s10_download_kbps);
    ctx.sample(c.key + ".j3_download_kbps", r.j3_download_kbps);
    ctx.sample(c.key + ".j3_battery_pct_per_hour", r.j3_battery_pct_per_hour);
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 801;
  rc.label = "fig19_mobile";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  TextTable table{{"platform", "scenario", "S10 CPU mean±sd (%)", "J3 CPU mean±sd (%)",
                   "S10 down (Kbps)", "J3 down (Kbps)", "J3 battery (%/h)", "MB/hour (J3)"}};
  auto cpu_cell = [&report](const std::string& key) {
    const auto* s = report.find_sample(key);
    if (!s) return std::string{"-"};
    return TextTable::num(s->mean(), 0) + "±" + TextTable::num(s->stddev(), 0);
  };
  auto mean_of = [&report](const std::string& key) {
    const auto* s = report.find_sample(key);
    return s ? s->mean() : 0.0;
  };
  for (const auto id : vcb::all_platforms()) {
    for (const auto scenario : scenarios) {
      const std::string k =
          std::string(platform_name(id)) + "/" + std::string(scenario_name(scenario));
      const double j3_down = mean_of(k + ".j3_download_kbps");
      table.add_row({std::string(platform_name(id)), std::string(scenario_name(scenario)),
                     cpu_cell(k + ".s10_cpu"), cpu_cell(k + ".j3_cpu"),
                     TextTable::num(mean_of(k + ".s10_download_kbps"), 0),
                     TextTable::num(j3_down, 0),
                     TextTable::num(mean_of(k + ".j3_battery_pct_per_hour"), 1),
                     TextTable::num(j3_down * 3600.0 / 8.0 / 1000.0, 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("sessions: %zu  failures: %zu  fan_out_shards: %d\n", report.sessions,
              report.failures.size(), shards);
  std::printf("wall clock: %.2f s at 1 thread, %.2f s at 8 threads — speedup %.2fx\n",
              serial.wall_seconds, report.wall_seconds,
              report.wall_seconds > 0 ? serial.wall_seconds / report.wall_seconds : 0.0);
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");

  const std::string out_path = "bench_fig19_mobile.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
