// Fig 19: mobile resource consumption — CPU usage (a), download data rate
// (b), and battery drain (c) for the S10 and J3 across the five device/UI
// scenarios (LM, HM, LM-View, LM-Video-View, LM-Off).
//
// Paper anchors (Finding 5): videoconferencing needs 2-3 full cores; Meet is
// the most bandwidth-hungry (~1 GB/hour ≈ 2.2 Mbps) vs Zoom's gallery view
// at ~175 MB/hour (~0.4 Mbps); one hour drains up to ~40% of the J3's
// battery, halved by going audio-only.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/mobile_benchmark.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 19 — mobile CPU / data rate / battery (S10 & J3)", paper);

  const mobile::MobileScenario scenarios[] = {
      mobile::MobileScenario::kLM, mobile::MobileScenario::kHM, mobile::MobileScenario::kLMView,
      mobile::MobileScenario::kLMVideoView, mobile::MobileScenario::kLMOff};

  TextTable table{{"platform", "scenario", "S10 CPU q1/med/q3 (%)", "J3 CPU q1/med/q3 (%)",
                   "S10 down (Kbps)", "J3 down (Kbps)", "J3 battery (%/h)", "MB/hour (J3)"}};
  for (const auto id : vcb::all_platforms()) {
    for (const auto scenario : scenarios) {
      core::MobileBenchmarkConfig cfg;
      cfg.platform = id;
      cfg.scenario = scenario;
      cfg.repetitions = paper ? 5 : 2;
      cfg.duration = paper ? seconds(300) : seconds(45);
      cfg.seed = 801 + static_cast<std::uint64_t>(id) * 41;
      const auto r = core::run_mobile_benchmark(cfg);
      auto cpu_cell = [](const BoxplotSummary& b) {
        return TextTable::num(b.q1, 0) + "/" + TextTable::num(b.median, 0) + "/" +
               TextTable::num(b.q3, 0);
      };
      const double mb_per_hour = r.j3.download_kbps.mean() * 3600.0 / 8.0 / 1000.0;
      table.add_row({std::string(platform_name(id)), std::string(scenario_name(scenario)),
                     cpu_cell(r.s10.cpu), cpu_cell(r.j3.cpu),
                     TextTable::num(r.s10.download_kbps.mean(), 0),
                     TextTable::num(r.j3.download_kbps.mean(), 0),
                     TextTable::num(r.j3.battery_pct_per_hour.mean(), 1),
                     TextTable::num(mb_per_hour, 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
