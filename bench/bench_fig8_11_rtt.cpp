// Figs 8–11: service proximity — RTTs measured by each client against its
// discovered service endpoint, per scenario (host in US-East, US-West, UK,
// Switzerland).
//
// Paper anchors: Zoom/Webex US-East-hosted sessions give US-East clients
// single-digit RTTs and US-West clients ~60-70 ms; Meet RTTs are uniformly
// low (distributed endpoints); Zoom's Europe RTTs split into three bands
// ~20/40 ms apart (regional load balancing); Webex's stay trans-Atlantic.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/lag_benchmark.h"

namespace {

void run_scenario(const char* figure, const std::string& host, bool europe, bool paper) {
  using namespace vc;
  std::printf("--- %s: meeting host in %s ---\n", figure, host.c_str());
  TextTable table{{"platform", "participant", "per-session mean RTTs (ms)", "min/max (ms)"}};
  for (const auto id : vcb::all_platforms()) {
    core::LagBenchmarkConfig cfg;
    cfg.platform = id;
    cfg.host_site = host;
    cfg.participant_sites =
        europe ? core::europe_participant_sites(host) : core::us_participant_sites(host);
    cfg.sessions = paper ? 20 : 6;
    cfg.session_duration = paper ? seconds(120) : seconds(40);
    cfg.seed = 11 + static_cast<std::uint64_t>(id);
    const auto result = core::run_lag_benchmark(cfg);
    for (const auto& p : result.participants) {
      std::string rtts;
      double lo = 1e9;
      double hi = 0;
      for (std::size_t s = 0; s < p.session_rtt_ms.size(); ++s) {
        if (s > 0) rtts += " ";
        rtts += TextTable::num(p.session_rtt_ms[s], 0);
        lo = std::min(lo, p.session_rtt_ms[s]);
        hi = std::max(hi, p.session_rtt_ms[s]);
      }
      table.add_row({std::string(platform_name(id)), p.label, rtts,
                     p.session_rtt_ms.empty()
                         ? "-"
                         : TextTable::num(lo, 1) + " / " + TextTable::num(hi, 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Figs 8-11 — service proximity (RTT to discovered endpoints)", paper);
  run_scenario("Fig 8", "US-East", false, paper);
  run_scenario("Fig 9", "US-West", false, paper);
  run_scenario("Fig 10", "UK-West", true, paper);
  run_scenario("Fig 11", "CH", true, paper);
  return 0;
}
