// Figs 8–11: service proximity — RTTs measured by each client against its
// discovered service endpoint, per scenario (host in US-East, US-West, UK,
// Switzerland).
//
// Paper anchors: Zoom/Webex US-East-hosted sessions give US-East clients
// single-digit RTTs and US-West clients ~60-70 ms; Meet RTTs are uniformly
// low (distributed endpoints); Zoom's Europe RTTs split into three bands
// ~20/40 ms apart (regional load balancing); Webex's stay trans-Atlantic.
//
// Each (figure, platform) pair is one task on the parallel experiment
// runner; a task runs its whole multi-session lag benchmark (VMs persist
// across that config's sessions for Meet's endpoint stickiness) and samples
// every per-session mean probe RTT into the run report, so the table shows
// each participant's RTT spread across sessions.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "core/lag_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Scenario {
  const char* figure;
  const char* host;
  bool europe;
};

constexpr Scenario kScenarios[] = {
    {"Fig 8", "US-East", false},
    {"Fig 9", "US-West", false},
    {"Fig 10", "UK-West", true},
    {"Fig 11", "CH", true},
};

struct Point {
  const Scenario* scenario = nullptr;
  platform::PlatformId id{};
  std::string key;  // e.g. "Fig 8/Zoom"
};

/// Participant labels exactly as run_lag_benchmark derives them.
std::vector<std::string> participant_labels(const Scenario& sc) {
  const auto sites = sc.europe ? core::europe_participant_sites(sc.host)
                               : core::us_participant_sites(sc.host);
  std::unordered_map<std::string, int> site_use;
  std::vector<std::string> labels;
  for (const auto& site : sites) {
    const int idx = site_use[site]++;
    labels.push_back(idx == 0 ? site : site + "-" + std::to_string(idx + 1));
  }
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Figs 8-11 — service proximity (RTT to discovered endpoints)", paper);

  std::vector<Point> points;
  for (const auto& sc : kScenarios) {
    for (const auto id : vcb::all_platforms()) {
      points.push_back(
          Point{&sc, id, std::string(sc.figure) + "/" + std::string(platform_name(id))});
    }
  }

  const auto task = [&points, paper](runner::SessionContext& ctx) {
    const Point& p = points[ctx.task_index];
    core::LagBenchmarkConfig cfg;
    cfg.platform = p.id;
    cfg.host_site = p.scenario->host;
    cfg.participant_sites = p.scenario->europe
                                ? core::europe_participant_sites(cfg.host_site)
                                : core::us_participant_sites(cfg.host_site);
    cfg.sessions = paper ? 20 : 6;
    cfg.session_duration = paper ? seconds(120) : seconds(40);
    cfg.seed = ctx.seed;
    cfg.metrics = &ctx.metrics;
    const auto result = core::run_lag_benchmark(cfg);
    for (const auto& part : result.participants) {
      const std::string base = p.key + "/" + part.label;
      for (const double rtt : part.session_rtt_ms) ctx.sample(base + ".rtt_ms", rtt);
      ctx.sample(base + ".endpoints", static_cast<double>(part.distinct_endpoints));
    }
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 11;
  rc.label = "fig8_11_rtt";
  const auto report = runner::ExperimentRunner{rc}.run(points.size(), task);

  for (const auto& sc : kScenarios) {
    std::printf("--- %s: meeting host in %s ---\n", sc.figure, sc.host);
    TextTable table{{"platform", "participant", "sessions", "mean RTT (ms)", "min/max (ms)"}};
    const auto labels = participant_labels(sc);
    for (const auto id : vcb::all_platforms()) {
      for (const auto& label : labels) {
        const std::string base =
            std::string(sc.figure) + "/" + std::string(platform_name(id)) + "/" + label;
        const auto* endpoints = report.find_sample(base + ".endpoints");
        if (endpoints == nullptr) continue;  // task failed; listed below
        const auto* rtt = report.find_sample(base + ".rtt_ms");
        table.add_row({std::string(platform_name(id)), label,
                       std::to_string(rtt != nullptr ? rtt->count() : 0),
                       rtt != nullptr ? TextTable::num(rtt->mean(), 1) : "-",
                       rtt != nullptr ? TextTable::num(rtt->min(), 1) + " / " +
                                            TextTable::num(rtt->max(), 1)
                                      : "-"});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("run: %zu tasks, %zu failures, %.2f s wall on %zu threads\n", report.sessions,
              report.failures.size(), report.wall_seconds, report.threads);
  for (const auto& [idx, what] : report.failures) {
    std::printf("  task %zu (%s) failed: %s\n", idx, points[idx].key.c_str(), what.c_str());
  }
  const std::string out_path = "bench_fig8_11_rtt.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return 0;
}
