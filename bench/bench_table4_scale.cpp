// Table 4: data rate and CPU usage with varying videoconference sizes
// (N = 3, 6, 11; everyone streaming high-motion), phones in full-screen and
// gallery view.
//
// Paper anchors: Zoom full-screen is nearly flat in N (small buffering
// bump); gallery doubles 3→6 then plateaus (≤4 tiles); Webex gallery rate
// *decreases* with more participants; Meet grows ~10% via its always-on
// previews and caps at four visible streams.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/mobile_benchmark.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Table 4 — data rate and CPU vs videoconference size (S10/J3)", paper);

  TextTable table{{"N", "client", "full rate (Mbps)", "full CPU (%)", "gallery rate (Mbps)",
                   "gallery CPU (%)"}};
  for (const int n : {3, 6, 11}) {
    for (const auto id : vcb::all_platforms()) {
      core::ScaleBenchmarkConfig cfg;
      cfg.platform = id;
      cfg.n_total = n;
      cfg.repetitions = paper ? 5 : 1;
      cfg.duration = paper ? seconds(300) : seconds(40);
      cfg.seed = 901 + static_cast<std::uint64_t>(id) * 43 + static_cast<std::uint64_t>(n);

      cfg.phone_view = platform::ViewMode::kFullScreen;
      const auto full = core::run_scale_benchmark(cfg);
      cfg.phone_view = platform::ViewMode::kGallery;
      const auto gallery = core::run_scale_benchmark(cfg);

      table.add_row({std::to_string(n), std::string(platform_name(id)),
                     TextTable::num(full.s10_rate_mbps, 2) + "/" +
                         TextTable::num(full.j3_rate_mbps, 2),
                     TextTable::num(full.s10_cpu_median, 0) + "/" +
                         TextTable::num(full.j3_cpu_median, 0),
                     TextTable::num(gallery.s10_rate_mbps, 2) + "/" +
                         TextTable::num(gallery.j3_rate_mbps, 2),
                     TextTable::num(gallery.s10_cpu_median, 0) + "/" +
                         TextTable::num(gallery.j3_cpu_median, 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("cells are S10/J3, as in the paper's Table 4.\n");
  return 0;
}
