// Table 4: data rate and CPU usage with varying videoconference sizes
// (N = 3, 6, 11; everyone streaming high-motion), phones in full-screen and
// gallery view.
//
// Paper anchors: Zoom full-screen is nearly flat in N (small buffering
// bump); gallery doubles 3→6 then plateaus (≤4 tiles); Webex gallery rate
// *decreases* with more participants; Meet grows ~10% via its always-on
// previews and caps at four visible streams.
//
// The sweep runs on runner::ExperimentRunner: every (platform, N, view,
// repetition) cell is an independent session task, executed once on one
// thread and once on eight. The two aggregate reports must be bit-identical
// (the runner's determinism contract); the wall-clock ratio is the measured
// parallel speedup on this machine.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/mobile_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Cell {
  platform::PlatformId id{};
  int n = 0;
  platform::ViewMode view{};
  std::string key;  // e.g. "Zoom/n3/full"
};

double median_or_zero(const std::vector<double>& v) {
  return v.empty() ? 0.0 : median(v);
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Table 4 — data rate and CPU vs videoconference size (S10/J3)", paper);

  const int reps = paper ? 5 : 1;
  const SimDuration duration = paper ? seconds(300) : seconds(40);

  std::vector<Cell> cells;
  for (const int n : {3, 6, 11}) {
    for (const auto id : vcb::all_platforms()) {
      for (const auto view : {platform::ViewMode::kFullScreen, platform::ViewMode::kGallery}) {
        Cell c;
        c.id = id;
        c.n = n;
        c.view = view;
        c.key = std::string(platform_name(id)) + "/n" + std::to_string(n) +
                (view == platform::ViewMode::kGallery ? "/gallery" : "/full");
        for (int rep = 0; rep < reps; ++rep) cells.push_back(c);
      }
    }
  }

  const auto task = [&cells, duration](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    core::ScaleBenchmarkConfig cfg;
    cfg.platform = c.id;
    cfg.n_total = c.n;
    cfg.phone_view = c.view;
    cfg.duration = duration;
    cfg.tracer = ctx.tracer;  // flight-record the whole session when traced
    const auto s = core::run_scale_session(cfg, ctx.seed);
    ctx.sample(c.key + ".s10_rate_mbps", s.s10_rate_mbps);
    ctx.sample(c.key + ".j3_rate_mbps", s.j3_rate_mbps);
    ctx.sample(c.key + ".s10_cpu_median", median_or_zero(s.s10_cpu));
    ctx.sample(c.key + ".j3_cpu_median", median_or_zero(s.j3_cpu));
  };

  // Both runs flight-record every task: the trace files, like the reports,
  // must be byte-identical at any thread count.
  runner::ExperimentRunner::Config rc;
  rc.base_seed = 901;
  rc.label = "table4_scale";
  rc.threads = 1;
  rc.trace_dir = "table4_traces_t1";
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  rc.trace_dir = "table4_traces_t8";
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  std::size_t trace_mismatches = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string name = "/" + std::to_string(i) + ".trace.json";
    const std::string a = slurp("table4_traces_t1" + name);
    if (a.empty() || a != slurp("table4_traces_t8" + name)) ++trace_mismatches;
  }

  TextTable table{{"N", "client", "full rate (Mbps)", "full CPU (%)", "gallery rate (Mbps)",
                   "gallery CPU (%)"}};
  auto cell = [&report](const std::string& key, const char* metric, int digits) {
    const auto* s10 = report.find_sample(key + ".s10_" + metric);
    const auto* j3 = report.find_sample(key + ".j3_" + metric);
    if (!s10 || !j3) return std::string{"-"};
    return TextTable::num(s10->mean(), digits) + "/" + TextTable::num(j3->mean(), digits);
  };
  for (const int n : {3, 6, 11}) {
    for (const auto id : vcb::all_platforms()) {
      const std::string base = std::string(platform_name(id)) + "/n" + std::to_string(n);
      table.add_row({std::to_string(n), std::string(platform_name(id)),
                     cell(base + "/full", "rate_mbps", 2), cell(base + "/full", "cpu_median", 0),
                     cell(base + "/gallery", "rate_mbps", 2),
                     cell(base + "/gallery", "cpu_median", 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("cells are S10/J3, as in the paper's Table 4.\n\n");

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("sessions: %zu  failures: %zu\n", report.sessions, report.failures.size());
  std::printf("wall clock: %.2f s at 1 thread, %.2f s at 8 threads — speedup %.2fx\n",
              serial.wall_seconds, report.wall_seconds,
              report.wall_seconds > 0 ? serial.wall_seconds / report.wall_seconds : 0.0);
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");
  std::printf("trace: %llu records (%llu dropped) across %zu tasks; "
              "per-task trace files bit-identical across thread counts: %s\n",
              static_cast<unsigned long long>(report.trace.records),
              static_cast<unsigned long long>(report.trace.dropped), cells.size(),
              trace_mismatches == 0 ? "yes" : "NO — determinism regression!");

  const std::string out_path = "bench_table4_scale.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical && trace_mismatches == 0 ? 0 : 1;
}
