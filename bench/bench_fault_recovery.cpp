// Fault-recovery sweep (PR 5): outage duration × platform, on the seeded
// fault-injection subsystem (src/fault).
//
// Each cell is one flash-feed session whose relay crashes mid-call and
// restarts after the cell's outage duration; the clients reconnect through
// client::ClientController's seeded backoff. Reported per cell: disconnect /
// reconnect counts, time-to-recover (mean and worst), packets lost at the
// crashed relay, the lag-spike high-water mark, and the streaming-lag
// distribution split into before / during / after phases (the during and
// after quantiles are recorded as `<cell>.lag_during.p10..p90` samples, the
// shape `vcbench_cli report --cdf` renders).
//
// The sweep runs on runner::ExperimentRunner once at 1 thread and once at 8;
// the aggregate reports must be bit-identical, and `--shards K` (intra-
// session relay fan-out sharding) must not change a byte either — faulted
// sessions obey the same determinism contract as healthy ones (exit 1).
//
// `--gate <ratio>` switches to the empty-plan overhead check CI's perf-smoke
// job runs: interleaved A/B rounds of the same healthy session with no plan
// vs an armed-but-empty FaultPlan. The two aggregate reports must be
// byte-identical (exit 1) and best-of-rounds wall clock may not regress
// below the gate ratio (e.g. --gate 0.98 = "an installed empty plan costs
// <= 2%", exit 3). Best-of-rounds for the same reason as bench_shard_fanout's
// trace gate: scheduler noise only ever adds time.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fault_recovery_benchmark.h"
#include "health/health_monitor.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Cell {
  platform::PlatformId id{};
  SimDuration outage{};
  std::uint64_t platform_seed = 0;
  std::string key;  // e.g. "Zoom/out3s"
};

double flag_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

core::FaultRecoveryConfig base_config(SimDuration session_duration) {
  core::FaultRecoveryConfig cfg;
  cfg.session_duration = session_duration;
  cfg.outage_start = seconds(8);
  cfg.recovery_grace = seconds(5);
  return cfg;
}

/// Default SLO rules for `--timeline` runs (overridable with `--slo FILE`):
/// steady state means nobody reconnects, and a disconnect is critical. Both
/// watch per-sample deltas, so the breach window tracks the outage window.
std::vector<health::SloRule> default_slo_rules() {
  std::vector<health::SloRule> rules;
  health::SloRule reconnect;
  reconnect.rule = "reconnect-steady";
  reconnect.metric = "client.reconnects";
  reconnect.field = health::SloRule::Field::kDelta;
  reconnect.op = health::SloRule::Op::kEq;
  reconnect.threshold = 0.0;
  reconnect.severity = health::Severity::kWarning;
  rules.push_back(reconnect);
  health::SloRule disconnect;
  disconnect.rule = "no-disconnects";
  disconnect.metric = "client.disconnects";
  disconnect.field = health::SloRule::Field::kDelta;
  disconnect.op = health::SloRule::Op::kEq;
  disconnect.threshold = 0.0;
  disconnect.severity = health::Severity::kCritical;
  rules.push_back(disconnect);
  return rules;
}

void sample_quantiles(runner::SessionContext& ctx, const std::string& base,
                      const std::vector<double>& values) {
  if (values.empty()) return;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    char suffix[8];
    std::snprintf(suffix, sizeof(suffix), ".p%d", static_cast<int>(q * 100 + 0.5));
    ctx.sample(base + suffix, quantile(std::vector<double>(values), q));
  }
}

/// Empty-plan overhead gate (CI perf-smoke): A = no plan installed at all,
/// B = armed-but-empty plan. Returns the process exit code.
int run_gate(double gate, int rounds, int shards, const std::string& out_path) {
  const SimDuration session_duration = seconds(12);
  const auto make_task = [shards, session_duration](bool inject) {
    return [shards, session_duration, inject](runner::SessionContext& ctx) {
      core::FaultRecoveryConfig cfg = base_config(session_duration);
      cfg.platform = vcb::all_platforms()[ctx.task_index % 3];
      cfg.fan_out_shards = shards;
      cfg.seed = ctx.seed;
      cfg.inject = inject;
      cfg.use_custom_plan = true;  // empty custom plan: arms, schedules nothing
      const auto r = core::run_fault_recovery_benchmark(cfg);
      ctx.sample("gate.lags_before", static_cast<double>(r.lags_before_ms.size()));
      sample_quantiles(ctx, "gate.lag", r.lags_before_ms);
      ctx.sample("gate.disconnects", static_cast<double>(r.disconnects));
    };
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 4242;
  rc.label = "fault_gate";
  rc.threads = 1;

  std::string baseline_json;
  double best_none = 0.0, best_empty = 0.0;
  for (int r = 0; r < rounds; ++r) {
    for (const bool inject : {false, true}) {
      const auto report = runner::ExperimentRunner{rc}.run(3, make_task(inject));
      if (!report.failures.empty()) {
        std::printf("FAIL: gate session threw (%zu failures)\n", report.failures.size());
        return 1;
      }
      if (baseline_json.empty()) {
        baseline_json = report.aggregate_json();
      } else if (report.aggregate_json() != baseline_json) {
        std::printf("FAIL: %s-plan aggregate differs from no-plan baseline — an armed "
                    "empty FaultPlan must be invisible\n",
                    inject ? "empty" : "no");
        return 1;
      }
      double& best = inject ? best_empty : best_none;
      if (best == 0.0 || report.wall_seconds < best) best = report.wall_seconds;
    }
  }
  const double ratio = best_empty > 0.0 ? best_none / best_empty : 0.0;
  std::printf("empty-plan gate: best no-plan %.3f s, best empty-plan %.3f s, ratio %.3fx "
              "(gate %.2fx), aggregates byte-identical: yes\n",
              best_none, best_empty, ratio, gate);

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\n  \"benchmark\": \"fault_recovery_gate\",\n  \"rounds\": %d,\n"
                "  \"best_no_plan_seconds\": %.6f,\n  \"best_empty_plan_seconds\": %.6f,\n"
                "  \"empty_plan_speed_ratio\": %.4f,\n  \"gate\": %.2f,\n"
                "  \"aggregates_byte_identical\": true\n}\n",
                rounds, best_none, best_empty, ratio, gate);
  if (runner::write_text_file(out_path, json)) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  if (ratio < gate) {
    std::printf("FAIL: empty-plan overhead ratio %.3fx below gate %.2fx\n", ratio, gate);
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  const int shards = vcb::int_flag(argc, argv, "--shards", 0);
  const double gate = flag_double(argc, argv, "--gate", 0.0);
  const int rounds = std::max(3, vcb::int_flag(argc, argv, "--rounds", 5));
  const std::string out_path =
      flag_string(argc, argv, "--out", "bench_fault_recovery.report.json");
  if (gate > 0.0) return run_gate(gate, rounds, shards, out_path);

  vcb::banner("Fault recovery — relay crash mid-call, outage sweep", paper);

  // `--plan FILE` replaces the default relay-crash timeline in every cell
  // with a scripted FaultPlan (see FaultPlan::from_json for the schema).
  fault::FaultPlan custom_plan;
  bool use_custom_plan = false;
  const std::string plan_path = flag_string(argc, argv, "--plan", "");
  if (!plan_path.empty()) {
    std::ifstream in{plan_path, std::ios::binary};
    if (!in) {
      std::fprintf(stderr, "cannot read fault plan %s\n", plan_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
      custom_plan = fault::FaultPlan::from_json(ss.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", plan_path.c_str(), e.what());
      return 2;
    }
    use_custom_plan = true;
    std::printf("custom fault plan: %zu event(s) from %s\n", custom_plan.size(),
                plan_path.c_str());
  }

  // `--timeline DIR` exports a per-task metrics timeline (sampled at 500 ms
  // for phase resolution) with an SLO HealthMonitor attached; `--slo FILE`
  // replaces the default rules. The serial and 8-thread sweeps write to
  // DIR/t1 and DIR/t8, and every timeline file must be byte-identical
  // between them — same contract as the aggregate reports.
  const std::string timeline_dir = flag_string(argc, argv, "--timeline", "");
  std::vector<health::SloRule> slo_rules;
  if (!timeline_dir.empty()) slo_rules = default_slo_rules();
  const std::string slo_path = flag_string(argc, argv, "--slo", "");
  if (!slo_path.empty()) {
    std::ifstream in{slo_path, std::ios::binary};
    if (!in) {
      std::fprintf(stderr, "cannot read SLO rules %s\n", slo_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
      slo_rules = health::HealthMonitor::rules_from_json(ss.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", slo_path.c_str(), e.what());
      return 2;
    }
    std::printf("SLO rules: %zu from %s\n", slo_rules.size(), slo_path.c_str());
  }

  const std::vector<SimDuration> outages =
      paper ? std::vector<SimDuration>{seconds(1), seconds(2), seconds(4), seconds(8)}
            : std::vector<SimDuration>{seconds(1), seconds(3)};
  const int sessions_per_cell = paper ? 5 : 1;
  const SimDuration session_duration = paper ? seconds(60) : seconds(30);

  std::vector<Cell> cells;
  for (const auto id : vcb::all_platforms()) {
    for (const auto outage : outages) {
      Cell c;
      c.id = id;
      c.outage = outage;
      c.platform_seed = 3301 + static_cast<std::uint64_t>(id) * 37;
      c.key = std::string(platform_name(id)) + "/out" +
              std::to_string(static_cast<long long>(outage.seconds())) + "s";
      for (int s = 0; s < sessions_per_cell; ++s) cells.push_back(c);
    }
  }

  const auto task = [&cells, session_duration, shards, &custom_plan,
                     use_custom_plan](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    core::FaultRecoveryConfig cfg = base_config(session_duration);
    cfg.platform = c.id;
    cfg.outage_duration = c.outage;
    cfg.custom_plan = custom_plan;
    cfg.use_custom_plan = use_custom_plan;
    cfg.fan_out_shards = shards;
    cfg.seed = ctx.seed ^ c.platform_seed;
    cfg.metrics = &ctx.metrics;
    cfg.tracer = ctx.tracer;
    cfg.timeline = ctx.timeline;
    const auto r = core::run_fault_recovery_benchmark(cfg);
    if (ctx.health != nullptr) {
      // Bucket SLO breach-begins by the session's fault phases so the sweep
      // reports where in the outage window each rule fired.
      std::size_t before = 0, during = 0, after = 0;
      for (const auto& ev : ctx.health->events()) {
        if (!ev.begin) continue;
        if (ev.at < r.outage_begin_abs) {
          ++before;
        } else if (ev.at < r.recovery_end_abs) {
          ++during;
        } else {
          ++after;
        }
      }
      ctx.sample(c.key + ".slo_breach_before", static_cast<double>(before));
      ctx.sample(c.key + ".slo_breach_during", static_cast<double>(during));
      ctx.sample(c.key + ".slo_breach_after", static_cast<double>(after));
    }
    ctx.sample(c.key + ".disconnects", static_cast<double>(r.disconnects));
    ctx.sample(c.key + ".reconnects", static_cast<double>(r.reconnects));
    ctx.sample(c.key + ".attempts", static_cast<double>(r.reconnect_attempts));
    ctx.sample(c.key + ".giveups", static_cast<double>(r.reconnect_giveups));
    if (r.reconnects > 0) {
      ctx.sample(c.key + ".time_to_recover_ms", r.mean_time_to_reconnect_ms);
      ctx.sample(c.key + ".worst_time_to_recover_ms", r.max_time_to_reconnect_ms);
    }
    ctx.sample(c.key + ".packets_lost", static_cast<double>(r.packets_lost_in_outage));
    ctx.sample(c.key + ".lag_spike_hwm_ms", r.lag_spike_hwm_ms);
    sample_quantiles(ctx, c.key + ".lag_before", r.lags_before_ms);
    sample_quantiles(ctx, c.key + ".lag_during", r.lags_during_ms);
    sample_quantiles(ctx, c.key + ".lag_after", r.lags_after_ms);
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 3301;
  rc.label = "fault_recovery";
  rc.threads = 1;
  if (!timeline_dir.empty()) {
    rc.timeline_interval = millis(500);
    rc.health_rules = slo_rules;
    rc.timeline_dir = timeline_dir + "/t1";
  }
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  if (!timeline_dir.empty()) rc.timeline_dir = timeline_dir + "/t8";
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  TextTable table{{"platform", "outage", "reconn", "TTR (ms)", "worst TTR", "lost pkts",
                   "during p50 (ms)", "after p50 (ms)", "HWM (ms)", "SLO b/d/a"}};
  auto cell = [&report](const std::string& key, int digits) {
    const auto* s = report.find_sample(key);
    return s ? TextTable::num(s->mean(), digits) : std::string{"-"};
  };
  // Per-phase SLO breach-begin counts, summed over the cell's sessions.
  auto slo_cell = [&report](const std::string& key) {
    const auto* before = report.find_sample(key + ".slo_breach_before");
    const auto* during = report.find_sample(key + ".slo_breach_during");
    const auto* after = report.find_sample(key + ".slo_breach_after");
    if (before == nullptr && during == nullptr && after == nullptr) return std::string{"-"};
    auto total = [](const RunningStats* s) {
      return std::to_string(s != nullptr ? static_cast<long long>(s->sum() + 0.5) : 0LL);
    };
    return total(before) + "/" + total(during) + "/" + total(after);
  };
  for (const auto id : vcb::all_platforms()) {
    for (const auto outage : outages) {
      const std::string k = std::string(platform_name(id)) + "/out" +
                            std::to_string(static_cast<long long>(outage.seconds())) + "s";
      table.add_row({std::string(platform_name(id)),
                     std::to_string(static_cast<long long>(outage.seconds())) + " s",
                     cell(k + ".reconnects", 1), cell(k + ".time_to_recover_ms", 0),
                     cell(k + ".worst_time_to_recover_ms", 0), cell(k + ".packets_lost", 0),
                     cell(k + ".lag_during.p50", 1), cell(k + ".lag_after.p50", 1),
                     cell(k + ".lag_spike_hwm_ms", 1), slo_cell(k)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  bool identical = serial.aggregate_json() == report.aggregate_json();
  if (!timeline_dir.empty()) {
    std::printf("timeline: %llu sample(s) over %llu column(s); health: %llu rule(s), "
                "%llu event(s), %llu breach(es)\n",
                static_cast<unsigned long long>(report.timeline.samples),
                static_cast<unsigned long long>(report.timeline.columns),
                static_cast<unsigned long long>(report.timeline.health_rules),
                static_cast<unsigned long long>(report.timeline.health_events),
                static_cast<unsigned long long>(report.timeline.health_breaches));
    // Same contract as the aggregates: every exported timeline file must be
    // byte-identical between the 1-thread and 8-thread sweeps.
    auto read_file = [](const std::string& p, std::string* out) {
      std::ifstream in{p, std::ios::binary};
      if (!in) return false;
      std::ostringstream ss;
      ss << in.rdbuf();
      *out = ss.str();
      return true;
    };
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::string name = "/" + std::to_string(i) + ".timeline.json";
      std::string a, b;
      if (!read_file(timeline_dir + "/t1" + name, &a) ||
          !read_file(timeline_dir + "/t8" + name, &b) || a != b) {
        ++mismatches;
      }
    }
    std::printf("timeline files byte-identical across thread counts: %s\n",
                mismatches == 0 ? "yes" : "NO — determinism regression!");
    if (mismatches > 0) identical = false;
  }
  std::printf("sessions: %zu  failures: %zu  fan_out_shards: %d\n", report.sessions,
              report.failures.size(), shards);
  std::printf("wall clock: %.2f s at 1 thread, %.2f s at 8 threads — speedup %.2fx\n",
              serial.wall_seconds, report.wall_seconds,
              report.wall_seconds > 0 ? serial.wall_seconds / report.wall_seconds : 0.0);
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");

  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical && report.failures.empty() ? 0 : 1;
}
