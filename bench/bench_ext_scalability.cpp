// Extension (Section 6, "Videoconferencing scalability"): the paper's QoE
// analysis stops at 11 participants and asks how systems behave as sessions
// grow. Here every participant streams simultaneously while session size
// sweeps to 25, and we track what a single observer client downloads and
// what the serving relay has to forward.
//
// Expected shapes: per-client download flattens once the UI tile cap (≤4
// visible streams) binds — the client-side scaling mechanism of Finding 5 —
// while relay forwarding work keeps growing ~quadratically (N senders × N
// receivers), which is the infrastructure-side scaling cost.
//
// Each (view, platform, N) point is one session task on the parallel
// experiment runner; relay and session metrics flow through the per-session
// MetricsRegistry and are merged into the run report.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "capture/rate_analyzer.h"
#include "client/vca_client.h"
#include "platform/base_platform.h"
#include "runner/experiment_runner.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace {

using namespace vc;

struct ScaleResult {
  double observer_down_kbps = 0;
  std::int64_t network_pkts = 0;
  std::size_t relays_used = 0;
};

ScaleResult run_scale(platform::PlatformId id, int n_total, platform::ViewMode view,
                      std::uint64_t seed, MetricsRegistry* metrics) {
  testbed::CloudTestbed bed{seed};
  auto plat = platform::make_platform(id, bed.network(), seed ^ 0x5CA1E);
  if (metrics) plat->set_metrics(metrics);
  const auto us = testbed::us_sites();

  auto make_sender = [&](net::Host& vm, std::uint64_t s) {
    client::VcaClient::Config cfg;
    cfg.send_audio = false;
    cfg.decode_video = false;
    cfg.synthetic_video = true;
    cfg.motion = platform::MotionClass::kHighMotion;
    cfg.seed = s;
    return std::make_unique<client::VcaClient>(vm, *plat, cfg);
  };

  net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 30);
  auto host = make_sender(host_vm, seed);

  // The observer participant we measure (also streaming, like everyone).
  net::Host& obs_vm = bed.create_vm(testbed::site_by_name("US-West"), 31);
  client::VcaClient::Config obs_cfg;
  obs_cfg.send_audio = false;
  obs_cfg.decode_video = false;
  obs_cfg.synthetic_video = true;
  obs_cfg.view = view;
  obs_cfg.motion = platform::MotionClass::kHighMotion;
  obs_cfg.seed = seed + 1;
  client::VcaClient observer{obs_vm, *plat, obs_cfg};
  capture::PacketCapture obs_cap{obs_vm, bed.clock_offset(obs_vm)};

  std::vector<std::unique_ptr<client::VcaClient>> others;
  for (int i = 0; i < n_total - 2; ++i) {
    net::Host& vm = bed.create_vm(us[static_cast<std::size_t>(i) % us.size()], 40 + i);
    others.push_back(make_sender(vm, seed + 10 + static_cast<std::uint64_t>(i)));
  }

  SimTime media_start{};
  testbed::SessionOrchestrator::Plan plan;
  plan.host = host.get();
  plan.participants = {&observer};
  for (auto& o : others) plan.participants.push_back(o.get());
  plan.media_duration = seconds(20);
  plan.metrics = metrics;
  plan.on_all_joined = [&] { media_start = bed.network().now(); };
  testbed::SessionOrchestrator orch{std::move(plan)};
  orch.start();
  bed.run_all();

  ScaleResult out;
  out.observer_down_kbps =
      capture::RateAnalyzer{obs_cap.trace()}.average(media_start).download.as_kbps();
  out.relays_used = plat->allocator().relays_created();
  // Infrastructure-side work: total packets the network carried (client
  // uplinks plus every relay-forwarded copy).
  out.network_pkts = bed.network().stats().packets_sent;
  return out;
}

struct Point {
  platform::PlatformId id{};
  int n = 0;
  platform::ViewMode view{};
  std::string key;  // e.g. "full/Zoom/n8"
};

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Extension — session-size scaling (every participant streaming)", paper);

  const int max_n = paper ? 30 : 25;
  std::vector<Point> points;
  for (const auto view : {platform::ViewMode::kFullScreen, platform::ViewMode::kGallery}) {
    for (const auto id : vcb::all_platforms()) {
      for (int n = 2; n <= max_n; n = n < 5 ? n + 3 : n * 2) {
        Point p;
        p.id = id;
        p.n = n;
        p.view = view;
        p.key = std::string(view == platform::ViewMode::kFullScreen ? "full" : "gallery") + "/" +
                std::string(platform_name(id)) + "/n" + std::to_string(n);
        points.push_back(p);
      }
    }
  }

  const auto task = [&points](runner::SessionContext& ctx) {
    const Point& p = points[ctx.task_index];
    const auto r = run_scale(p.id, p.n, p.view, ctx.seed, &ctx.metrics);
    ctx.sample(p.key + ".down_kbps", r.observer_down_kbps);
    ctx.sample(p.key + ".network_pkts", static_cast<double>(r.network_pkts));
    ctx.sample(p.key + ".relays", static_cast<double>(r.relays_used));
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 997;
  rc.label = "ext_scalability";
  const auto report = runner::ExperimentRunner{rc}.run(points.size(), task);

  for (const auto view : {platform::ViewMode::kFullScreen, platform::ViewMode::kGallery}) {
    std::printf("--- observer in %s ---\n",
                view == platform::ViewMode::kFullScreen ? "full-screen view" : "gallery view");
    TextTable table{{"platform", "N", "observer down (Kbps)", "network pkts", "relays"}};
    for (const auto& p : points) {
      if (p.view != view) continue;
      const auto* down = report.find_sample(p.key + ".down_kbps");
      const auto* pkts = report.find_sample(p.key + ".network_pkts");
      const auto* relays = report.find_sample(p.key + ".relays");
      if (!down || !pkts || !relays) continue;  // task failed; listed below
      table.add_row({std::string(platform_name(p.id)), std::to_string(p.n),
                     TextTable::num(down->mean(), 0),
                     std::to_string(static_cast<std::int64_t>(pkts->mean())),
                     std::to_string(static_cast<std::int64_t>(relays->mean()))});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("per-client download flattens at the 4-tile UI cap; total network load\n"
              "(and relay fan-out) keeps growing with every additional sender.\n\n");

  std::printf("run: %zu sessions, %zu failures, %.2f s wall on %zu threads\n", report.sessions,
              report.failures.size(), report.wall_seconds, report.threads);
  for (const auto& [idx, what] : report.failures) {
    std::printf("  task %zu (%s) failed: %s\n", idx, points[idx].key.c_str(), what.c_str());
  }
  const auto media_in = report.counters.find("relay.media_in");
  const auto forwarded = report.counters.find("relay.media_forwarded");
  if (media_in != report.counters.end() && forwarded != report.counters.end()) {
    std::printf("relay totals across the sweep: %lld media packets in, %lld copies out\n",
                static_cast<long long>(media_in->second),
                static_cast<long long>(forwarded->second));
  }
  const std::string out_path = "bench_ext_scalability.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return 0;
}
