// Extension (Section 6, "Videoconferencing scalability"): the paper's QoE
// analysis stops at 11 participants and asks how systems behave as sessions
// grow. Here every participant streams simultaneously while session size
// sweeps to 25, and we track what a single observer client downloads and
// what the serving relay has to forward.
//
// Expected shapes: per-client download flattens once the UI tile cap (≤4
// visible streams) binds — the client-side scaling mechanism of Finding 5 —
// while relay forwarding work keeps growing ~quadratically (N senders × N
// receivers), which is the infrastructure-side scaling cost.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "capture/rate_analyzer.h"
#include "client/vca_client.h"
#include "media/audio.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace {

using namespace vc;

struct ScaleResult {
  double observer_down_kbps = 0;
  std::int64_t relay_forwarded = 0;
  std::size_t relays_used = 0;
};

ScaleResult run_scale(platform::PlatformId id, int n_total, platform::ViewMode view,
                      std::uint64_t seed) {
  testbed::CloudTestbed bed{seed};
  auto plat = platform::make_platform(id, bed.network(), seed ^ 0x5CA1E);
  const auto us = testbed::us_sites();

  auto make_sender = [&](net::Host& vm, std::uint64_t s) {
    client::VcaClient::Config cfg;
    cfg.send_audio = false;
    cfg.decode_video = false;
    cfg.synthetic_video = true;
    cfg.motion = platform::MotionClass::kHighMotion;
    cfg.seed = s;
    return std::make_unique<client::VcaClient>(vm, *plat, cfg);
  };

  net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 30);
  auto host = make_sender(host_vm, seed);

  // The observer participant we measure (also streaming, like everyone).
  net::Host& obs_vm = bed.create_vm(testbed::site_by_name("US-West"), 31);
  client::VcaClient::Config obs_cfg;
  obs_cfg.send_audio = false;
  obs_cfg.decode_video = false;
  obs_cfg.synthetic_video = true;
  obs_cfg.view = view;
  obs_cfg.motion = platform::MotionClass::kHighMotion;
  obs_cfg.seed = seed + 1;
  client::VcaClient observer{obs_vm, *plat, obs_cfg};
  capture::PacketCapture obs_cap{obs_vm, bed.clock_offset(obs_vm)};

  std::vector<std::unique_ptr<client::VcaClient>> others;
  for (int i = 0; i < n_total - 2; ++i) {
    net::Host& vm = bed.create_vm(us[static_cast<std::size_t>(i) % us.size()], 40 + i);
    others.push_back(make_sender(vm, seed + 10 + static_cast<std::uint64_t>(i)));
  }

  SimTime media_start{};
  testbed::SessionOrchestrator::Plan plan;
  plan.host = host.get();
  plan.participants = {&observer};
  for (auto& o : others) plan.participants.push_back(o.get());
  plan.media_duration = seconds(20);
  plan.on_all_joined = [&] { media_start = bed.network().now(); };
  testbed::SessionOrchestrator orch{std::move(plan)};
  orch.start();
  bed.run_all();

  ScaleResult out;
  out.observer_down_kbps =
      capture::RateAnalyzer{obs_cap.trace()}.average(media_start).download.as_kbps();
  out.relays_used = plat->allocator().relays_created();
  // Infrastructure-side work: total packets the network carried (client
  // uplinks plus every relay-forwarded copy).
  out.relay_forwarded = bed.network().stats().packets_sent;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Extension — session-size scaling (every participant streaming)", paper);

  const int max_n = paper ? 30 : 25;
  for (const auto view : {platform::ViewMode::kFullScreen, platform::ViewMode::kGallery}) {
    std::printf("--- observer in %s ---\n",
                view == platform::ViewMode::kFullScreen ? "full-screen view" : "gallery view");
    TextTable table{{"platform", "N", "observer down (Kbps)", "network pkts", "relays"}};
    for (const auto id : vcb::all_platforms()) {
      for (int n = 2; n <= max_n; n = n < 5 ? n + 3 : n * 2) {
        const auto r = run_scale(id, n, view, 997 + static_cast<std::uint64_t>(n));
        table.add_row({std::string(platform_name(id)), std::to_string(n),
                       TextTable::num(r.observer_down_kbps, 0), std::to_string(r.relay_forwarded),
                       std::to_string(r.relays_used)});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("per-client download flattens at the 4-tile UI cap; total network load\n"
              "(and relay fan-out) keeps growing with every additional sender.\n");
  return 0;
}
