// Section 4.4, footnote 5: "We measure their audio rates separately using
// audio-only streams." — Zoom ~90 Kbps, Webex ~45 Kbps, Meet ~40 Kbps.
//
// A two-party session with video disabled on both sides; the receiver's L7
// download over the session is the platform's audio rate (the paper's
// explanation for why Zoom/Meet audio shrugs off bandwidth caps that ruin
// their video).
//
// Each (platform, repetition) cell is one self-contained audio-only session
// on runner::ExperimentRunner; the serial and 8-thread aggregate reports
// must be bit-identical.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "capture/rate_analyzer.h"
#include "client/media_feeder.h"
#include "client/vca_client.h"
#include "media/audio.h"
#include "platform/base_platform.h"
#include "runner/experiment_runner.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace {

using namespace vc;

/// One audio-only two-party session; returns the receiver's L7 download rate.
double run_audio_session(platform::PlatformId id, std::uint64_t seed, SimDuration duration) {
  testbed::CloudTestbed bed{seed};
  auto plat = platform::make_platform(id, bed.network());
  net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 0);
  net::Host& rx_vm = bed.create_vm(testbed::site_by_name("US-East"), 1);

  client::VcaClient::Config host_cfg;
  host_cfg.send_video = false;  // audio-only stream
  host_cfg.send_audio = true;
  host_cfg.decode_video = false;
  client::VcaClient host{host_vm, *plat, host_cfg};
  auto rx_cfg = host_cfg;
  rx_cfg.send_audio = false;
  client::VcaClient rx{rx_vm, *plat, rx_cfg};
  client::MediaFeeder feeder{bed.loop(), host.video_device(), host.audio_device()};
  capture::PacketCapture rx_cap{rx_vm};

  SimTime media_start{};
  testbed::SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.participants = {&rx};
  plan.media_duration = duration;
  plan.on_all_joined = [&] {
    media_start = bed.network().now();
    feeder.play_audio(media::synthesize_voice(duration.seconds(), 0xA0D10));
  };
  testbed::SessionOrchestrator orch{std::move(plan)};
  orch.start();
  bed.run_all();

  return capture::RateAnalyzer{rx_cap.trace()}.average(media_start).download.as_kbps();
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Audio rates — audio-only streams (Section 4.4)", paper);

  const int sessions_per_platform = paper ? 4 : 1;
  struct Cell {
    platform::PlatformId id{};
    std::string key;
  };
  std::vector<Cell> cells;
  for (const auto id : vcb::all_platforms()) {
    for (int s = 0; s < sessions_per_platform; ++s) {
      cells.push_back({id, std::string("audio/") + std::string(platform_name(id))});
    }
  }

  const SimDuration duration = paper ? seconds(120) : seconds(30);
  const auto task = [&cells, duration](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    ctx.sample(c.key + ".download_kbps", run_audio_session(c.id, ctx.seed, duration));
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 55;
  rc.label = "audio_rates";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  TextTable table{{"platform", "measured audio rate (Kbps)", "paper (Kbps)"}};
  for (const auto id : vcb::all_platforms()) {
    const auto* s =
        report.find_sample(std::string("audio/") + std::string(platform_name(id)) +
                           ".download_kbps");
    const char* published = id == platform::PlatformId::kZoom    ? "90"
                            : id == platform::PlatformId::kWebex ? "45"
                                                                 : "40";
    table.add_row({std::string(platform_name(id)),
                   TextTable::num(s != nullptr ? s->mean() : 0.0, 0), published});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(voice has pauses: measured long-run average sits below the codec's\n"
              "nominal rate, as with real VAD/DTX-capable audio codecs)\n");

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("\nsessions: %zu  failures: %zu\n", report.sessions, report.failures.size());
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");
  const std::string out_path = "bench_audio_rates.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
