// Section 4.4, footnote 5: "We measure their audio rates separately using
// audio-only streams." — Zoom ~90 Kbps, Webex ~45 Kbps, Meet ~40 Kbps.
//
// A two-party session with video disabled on both sides; the receiver's L7
// download over the session is the platform's audio rate (the paper's
// explanation for why Zoom/Meet audio shrugs off bandwidth caps that ruin
// their video).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "capture/rate_analyzer.h"
#include "client/media_feeder.h"
#include "client/vca_client.h"
#include "media/audio.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Audio rates — audio-only streams (Section 4.4)", paper);

  TextTable table{{"platform", "measured audio rate (Kbps)", "paper (Kbps)"}};
  for (const auto id : vcb::all_platforms()) {
    testbed::CloudTestbed bed{55 + static_cast<std::uint64_t>(id)};
    auto plat = platform::make_platform(id, bed.network());
    net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 0);
    net::Host& rx_vm = bed.create_vm(testbed::site_by_name("US-East"), 1);

    client::VcaClient::Config host_cfg;
    host_cfg.send_video = false;  // audio-only stream
    host_cfg.send_audio = true;
    host_cfg.decode_video = false;
    client::VcaClient host{host_vm, *plat, host_cfg};
    auto rx_cfg = host_cfg;
    rx_cfg.send_audio = false;
    client::VcaClient rx{rx_vm, *plat, rx_cfg};
    client::MediaFeeder feeder{bed.loop(), host.video_device(), host.audio_device()};
    capture::PacketCapture rx_cap{rx_vm};

    const auto duration = paper ? seconds(120) : seconds(30);
    SimTime media_start{};
    testbed::SessionOrchestrator::Plan plan;
    plan.host = &host;
    plan.participants = {&rx};
    plan.media_duration = duration;
    plan.on_all_joined = [&] {
      media_start = bed.network().now();
      feeder.play_audio(media::synthesize_voice(duration.seconds(), 0xA0D10));
    };
    testbed::SessionOrchestrator orch{std::move(plan)};
    orch.start();
    bed.run_all();

    const auto rate =
        capture::RateAnalyzer{rx_cap.trace()}.average(media_start).download.as_kbps();
    const char* published = id == platform::PlatformId::kZoom    ? "90"
                            : id == platform::PlatformId::kWebex ? "45"
                                                                 : "40";
    table.add_row({std::string(platform_name(id)), TextTable::num(rate, 0), published});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(voice has pauses: measured long-run average sits below the codec's\n"
              "nominal rate, as with real VAD/DTX-capable audio codecs)\n");
  return 0;
}
