// Shared helpers for the figure/table regeneration binaries.
//
// Each binary defaults to a reduced-scale run (enough sessions to show the
// paper's shapes in seconds-to-minutes on a laptop); pass --paper to run at
// the paper's full scale (20 sessions × 2 min lag runs, 10 × 5 min QoE
// sessions, 5 repetitions per mobile scenario).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "platform/platform.h"

namespace vcb {

inline bool paper_scale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) return true;
  }
  return false;
}

/// `--name <int>` style flag; returns `fallback` when absent or malformed.
inline int int_flag(int argc, char** argv, const char* name, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

inline const std::vector<vc::platform::PlatformId>& all_platforms() {
  static const std::vector<vc::platform::PlatformId> kAll = {
      vc::platform::PlatformId::kZoom,
      vc::platform::PlatformId::kWebex,
      vc::platform::PlatformId::kMeet,
  };
  return kAll;
}

inline void banner(const std::string& title, bool paper) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("scale: %s (pass --paper for the paper's full scale)\n",
              paper ? "paper" : "reduced");
  std::printf("================================================================\n\n");
}

/// Renders selected percentiles of a sample, CDF-style.
inline std::string cdf_row(const std::vector<double>& samples) {
  if (samples.empty()) return "-";
  std::string out;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    out += vc::TextTable::num(vc::quantile(std::vector<double>(samples), q), 1);
    out += q < 0.9 ? "/" : "";
  }
  return out;
}

}  // namespace vcb
