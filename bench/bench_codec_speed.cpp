// Codec transform A/B benchmark + scalar/SIMD equivalence gate (PR 7).
//
// Runs the exact same encode+decode workload through the retained scalar
// DCT reference and the best vectorized backend this CPU supports,
// interleaved (A/B/A/B..., defeating thermal and noise drift), and reports
// median wall-clock per mode. Every mode's full output — encoded sizes,
// quantized coefficients, block modes, and decoded pixels — is FNV-hashed
// and must match the scalar mode byte-for-byte: the dct8.h determinism
// contract enforced with a whole-pipeline workload rather than single
// blocks (tests/media/test_dct8.cpp covers those exhaustively).
//
// `--gate <ratio>` makes the binary exit non-zero when median(scalar) /
// median(simd) falls below the ratio: CI runs --gate 1.20, "the vectorized
// path must beat the scalar reference by >=20%" — far under the ~1.8×
// measured on AVX machines, so only a real regression (or a silent fallback
// to scalar dispatch) trips it. Exit codes: 1 = digest divergence
// (scalar/SIMD disagree — determinism regression), 2 = perf gate.
// `--out <path>` writes the machine-readable report (default
// BENCH_PR7.json in the CWD). The in-process A/B is deliberate: absolute
// baselines are too noisy on shared CI runners. The checked-in repo-root
// BENCH_PR7.json additionally records the before/after-this-PR medians of
// BM_VideoEncode/BM_VideoDecode, measured against a parent-commit build of
// bench_micro the same interleaved way.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "media/dct8.h"
#include "media/feeds.h"
#include "media/video_codec.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;
using namespace vc::media;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
}

struct TrialResult {
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  std::uint64_t digest = 0;
};

struct Mode {
  std::string name;
  DctBackend backend;
  std::vector<double> encode_seconds;
  std::vector<double> decode_seconds;
  std::uint64_t digest = 0;
};

TrialResult run_trial(const std::vector<Frame>& feed_frames, int frames, int width, int height) {
  VideoEncoder::Config cfg;
  cfg.target_bitrate = DataRate::kbps(800);
  cfg.fps = 15.0;
  VideoEncoder enc{width, height, cfg};
  VideoDecoder dec{width, height};

  TrialResult out{};
  out.digest = 14695981039346656037ULL;  // FNV offset basis
  std::vector<std::shared_ptr<EncodedFrame>> encoded;
  encoded.reserve(static_cast<std::size_t>(frames));

  const auto e0 = std::chrono::steady_clock::now();
  for (int i = 0; i < frames; ++i) {
    encoded.push_back(enc.encode(feed_frames[static_cast<std::size_t>(i) % feed_frames.size()]));
  }
  const auto e1 = std::chrono::steady_clock::now();
  for (int i = 0; i < frames; ++i) dec.decode(*encoded[static_cast<std::size_t>(i)]);
  const auto e2 = std::chrono::steady_clock::now();

  out.encode_seconds = std::chrono::duration<double>(e1 - e0).count();
  out.decode_seconds = std::chrono::duration<double>(e2 - e1).count();
  for (const auto& f : encoded) {
    fnv_mix(out.digest, static_cast<std::uint64_t>(f->bytes));
    fnv_mix(out.digest, static_cast<std::uint64_t>(f->skip_blocks));
    for (const std::int16_t c : f->coeffs) {
      fnv_mix(out.digest, static_cast<std::uint64_t>(static_cast<std::uint16_t>(c)));
    }
    for (const BlockMode m : f->modes) fnv_mix(out.digest, static_cast<std::uint64_t>(m));
  }
  const Frame& last = dec.current();
  for (std::size_t i = 0; i < last.size(); ++i) fnv_mix(out.digest, last.data()[i]);
  return out;
}

double flag_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int width = vcb::int_flag(argc, argv, "--width", 128);
  const int height = vcb::int_flag(argc, argv, "--height", 96);
  const int frames = std::max(8, vcb::int_flag(argc, argv, "--frames", 120));
  const int rounds = std::max(3, vcb::int_flag(argc, argv, "--rounds", 7));
  const double gate = flag_double(argc, argv, "--gate", 0.0);
  const std::string out_path = flag_string(argc, argv, "--out", "BENCH_PR7.json");

  const DctBackend best = best_dct_backend();
  std::printf("codec transform A/B: %dx%d, %d frames/trial, %d rounds, simd backend=%s, gate=%.2f\n",
              width, height, frames, rounds, dct_backend_name(best), gate);

  // Feed rendering is outside the timed region: the bench measures the
  // codec, and both modes must see bit-identical input pixels.
  TourGuideFeed feed{{width, height, 15.0, 3}};
  std::vector<Frame> feed_frames;
  for (int i = 0; i < 10; ++i) feed_frames.push_back(feed.frame_at(i));

  std::vector<Mode> modes;
  modes.push_back({"scalar", DctBackend::kScalar, {}, {}, 0});
  modes.push_back({std::string{"simd-"} + dct_backend_name(best), best, {}, {}, 0});

  // One untimed warm-up per mode, then interleaved timed rounds.
  for (auto& m : modes) {
    set_dct_backend(m.backend);
    m.digest = run_trial(feed_frames, frames, width, height).digest;
  }
  for (int r = 0; r < rounds; ++r) {
    for (auto& m : modes) {
      set_dct_backend(m.backend);
      const TrialResult t = run_trial(feed_frames, frames, width, height);
      m.encode_seconds.push_back(t.encode_seconds);
      m.decode_seconds.push_back(t.decode_seconds);
      if (t.digest != m.digest) {
        std::printf("FAIL: %s digest unstable across rounds\n", m.name.c_str());
        return 1;
      }
    }
  }
  set_dct_backend(best);

  const bool identical = modes[1].digest == modes[0].digest;

  const double enc_scalar = median(modes[0].encode_seconds);
  const double enc_simd = median(modes[1].encode_seconds);
  const double dec_scalar = median(modes[0].decode_seconds);
  const double dec_simd = median(modes[1].decode_seconds);
  const double enc_speedup = enc_simd > 0 ? enc_scalar / enc_simd : 0.0;
  const double dec_speedup = dec_simd > 0 ? dec_scalar / dec_simd : 0.0;

  TextTable table{{"mode", "encode med (ms)", "enc frames/s", "decode med (ms)", "dec frames/s"}};
  for (const auto& m : modes) {
    const double em = median(m.encode_seconds);
    const double dm = median(m.decode_seconds);
    table.add_row({m.name, TextTable::num(em * 1e3, 2),
                   TextTable::num(em > 0 ? frames / em : 0.0, 0), TextTable::num(dm * 1e3, 2),
                   TextTable::num(dm > 0 ? frames / dm : 0.0, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("encode speedup %.3fx, decode speedup %.3fx, outputs byte-identical: %s\n",
              enc_speedup, dec_speedup, identical ? "yes" : "NO — determinism regression!");

  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"benchmark\": \"codec_transform_ab\",\n"
                "  \"frame\": \"%dx%d\",\n"
                "  \"frames_per_trial\": %d,\n"
                "  \"rounds\": %d,\n"
                "  \"simd_backend\": \"%s\",\n"
                "  \"encode_median_seconds\": {\"scalar\": %.6f, \"simd\": %.6f},\n"
                "  \"decode_median_seconds\": {\"scalar\": %.6f, \"simd\": %.6f},\n"
                "  \"encode_speedup\": %.3f,\n"
                "  \"decode_speedup\": %.3f,\n"
                "  \"outputs_byte_identical\": %s,\n"
                "  \"gate\": %.2f\n"
                "}\n",
                width, height, frames, rounds, dct_backend_name(best), enc_scalar, enc_simd,
                dec_scalar, dec_simd, enc_speedup, dec_speedup, identical ? "true" : "false",
                gate);
  if (runner::write_text_file(out_path, buf)) {
    std::printf("report written to %s\n", out_path.c_str());
  }

  if (!identical) {
    std::printf("FAIL: scalar and %s outputs diverge\n", modes[1].name.c_str());
    return 1;
  }
  if (gate > 0.0 && enc_speedup < gate) {
    std::printf("FAIL: encode speedup %.3fx below gate %.2fx\n", enc_speedup, gate);
    return 2;
  }
  return 0;
}
