// Microbenchmarks (google-benchmark) for the hot paths of the harness:
// codec encode/decode, QoE metrics, audio pipeline, event loop, shaper.
#include <benchmark/benchmark.h>

#include <memory>

#include "media/audio.h"
#include "media/feeds.h"
#include "media/qoe/mos_lqo.h"
#include "media/qoe/video_metrics.h"
#include "media/video_codec.h"
#include "net/event_loop.h"
#include "net/shaper.h"

namespace {

using namespace vc;

void BM_VideoEncode(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const int h = w * 3 / 4;
  media::TourGuideFeed feed{{w, h, 10.0, 1}};
  media::VideoEncoder enc{w, h, {.target_bitrate = DataRate::kbps(800), .fps = 10.0}};
  std::int64_t i = 0;
  std::vector<media::Frame> frames;
  for (int k = 0; k < 10; ++k) frames.push_back(feed.frame_at(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(frames[static_cast<std::size_t>(i++ % 10)]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VideoEncode)->Arg(128)->Arg(256);

void BM_VideoDecode(benchmark::State& state) {
  media::TourGuideFeed feed{{128, 96, 10.0, 1}};
  media::VideoEncoder enc{128, 96, {.target_bitrate = DataRate::kbps(800), .fps = 10.0}};
  const auto frame = enc.encode(feed.frame_at(0));
  media::VideoDecoder dec{128, 96};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode(*frame));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VideoDecode);

void BM_Ssim(benchmark::State& state) {
  media::TourGuideFeed feed{{256, 192, 10.0, 1}};
  const media::Frame a = feed.frame_at(0);
  const media::Frame b = feed.frame_at(1);
  for (auto _ : state) benchmark::DoNotOptimize(media::qoe::ssim(a, b));
}
BENCHMARK(BM_Ssim);

void BM_Vifp(benchmark::State& state) {
  media::TourGuideFeed feed{{256, 192, 10.0, 1}};
  const media::Frame a = feed.frame_at(0);
  const media::Frame b = feed.frame_at(1);
  for (auto _ : state) benchmark::DoNotOptimize(media::qoe::vifp(a, b));
}
BENCHMARK(BM_Vifp);

void BM_MosLqo(benchmark::State& state) {
  const auto ref = media::synthesize_voice(2.0, 1);
  const auto deg = media::synthesize_voice(2.0, 2);
  for (auto _ : state) benchmark::DoNotOptimize(media::qoe::mos_lqo(ref, deg));
}
BENCHMARK(BM_MosLqo);

void BM_FeedRender(benchmark::State& state) {
  media::TourGuideFeed feed{{256, 192, 10.0, 1}};
  std::int64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(feed.frame_at(i++));
}
BENCHMARK(BM_FeedRender);

void BM_EventLoopChurn(benchmark::State& state) {
  for (auto _ : state) {
    net::EventLoop loop;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(SimTime{i * 100}, [&counter] { ++counter; });
    }
    loop.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopChurn);

void BM_ShaperThroughput(benchmark::State& state) {
  for (auto _ : state) {
    net::EventLoop loop;
    net::TokenBucketShaper shaper{loop, DataRate::mbps(2.0), 16'000, 256'000};
    std::int64_t out = 0;
    for (int i = 0; i < 500; ++i) {
      net::Packet p;
      p.l7_len = 1150;
      shaper.submit(std::move(p), [&out](net::Packet q) { out += q.l7_len; });
    }
    loop.run();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_ShaperThroughput);

}  // namespace

BENCHMARK_MAIN();
