// Microbenchmarks (google-benchmark) for the hot paths of the harness:
// codec encode/decode, QoE metrics, audio pipeline, event loop, relay
// fan-out, shaper.
//
// The event-loop and fan-out benchmarks below are the perf gate for the
// discrete-event core: `cmake --build build --target bench-report` (or
// `make bench-report`) runs them with a JSON reporter and writes
// build/BENCH_PR2.json; the repo-root BENCH_PR2.json records the measured
// before/after trajectory of the slab-allocated core.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "media/audio.h"
#include "media/feeds.h"
#include "media/qoe/mos_lqo.h"
#include "media/qoe/video_metrics.h"
#include "media/video_codec.h"
#include "net/event_loop.h"
#include "net/latency.h"
#include "net/network.h"
#include "net/shaper.h"
#include "platform/relay.h"

namespace {

using namespace vc;

void BM_VideoEncode(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const int h = w * 3 / 4;
  media::TourGuideFeed feed{{w, h, 10.0, 1}};
  media::VideoEncoder enc{w, h, {.target_bitrate = DataRate::kbps(800), .fps = 10.0}};
  std::int64_t i = 0;
  std::vector<media::Frame> frames;
  for (int k = 0; k < 10; ++k) frames.push_back(feed.frame_at(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(frames[static_cast<std::size_t>(i++ % 10)]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VideoEncode)->Arg(128)->Arg(256);

void BM_VideoDecode(benchmark::State& state) {
  media::TourGuideFeed feed{{128, 96, 10.0, 1}};
  media::VideoEncoder enc{128, 96, {.target_bitrate = DataRate::kbps(800), .fps = 10.0}};
  const auto frame = enc.encode(feed.frame_at(0));
  media::VideoDecoder dec{128, 96};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode(*frame));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VideoDecode);

void BM_Ssim(benchmark::State& state) {
  media::TourGuideFeed feed{{256, 192, 10.0, 1}};
  const media::Frame a = feed.frame_at(0);
  const media::Frame b = feed.frame_at(1);
  for (auto _ : state) benchmark::DoNotOptimize(media::qoe::ssim(a, b));
}
BENCHMARK(BM_Ssim);

void BM_Vifp(benchmark::State& state) {
  media::TourGuideFeed feed{{256, 192, 10.0, 1}};
  const media::Frame a = feed.frame_at(0);
  const media::Frame b = feed.frame_at(1);
  for (auto _ : state) benchmark::DoNotOptimize(media::qoe::vifp(a, b));
}
BENCHMARK(BM_Vifp);

void BM_MosLqo(benchmark::State& state) {
  const auto ref = media::synthesize_voice(2.0, 1);
  const auto deg = media::synthesize_voice(2.0, 2);
  for (auto _ : state) benchmark::DoNotOptimize(media::qoe::mos_lqo(ref, deg));
}
BENCHMARK(BM_MosLqo);

void BM_FeedRender(benchmark::State& state) {
  media::TourGuideFeed feed{{256, 192, 10.0, 1}};
  std::int64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(feed.frame_at(i++));
}
BENCHMARK(BM_FeedRender);

void BM_EventLoopChurn(benchmark::State& state) {
  for (auto _ : state) {
    net::EventLoop loop;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(SimTime{i * 100}, [&counter] { ++counter; });
    }
    loop.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopChurn);

// Steady-state scheduling: a fixed population of self-rescheduling timers
// (the shape of media ticks, probe cadences and feedback loops). Dominated
// by one schedule + one pop per fired event — the discrete-event hot path.
void BM_EventLoopSteadyState(benchmark::State& state) {
  const int timers = static_cast<int>(state.range(0));
  constexpr int kTicksPerTimer = 200;
  for (auto _ : state) {
    net::EventLoop loop;
    std::int64_t fired = 0;
    std::vector<std::function<void()>> ticks(static_cast<std::size_t>(timers));
    for (int i = 0; i < timers; ++i) {
      ticks[static_cast<std::size_t>(i)] = [&loop, &fired, &tick = ticks[static_cast<std::size_t>(i)],
                                            timers] {
        if (++fired < static_cast<std::int64_t>(timers) * kTicksPerTimer) {
          loop.schedule_after(millis(20), tick);
        }
      };
      loop.schedule_after(millis(20), ticks[static_cast<std::size_t>(i)]);
    }
    loop.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * timers * kTicksPerTimer);
}
BENCHMARK(BM_EventLoopSteadyState)->Arg(8)->Arg(64);

// Schedule-then-cancel churn: half the scheduled events are cancelled before
// they fire (retransmit timers, join timeouts, tick epochs).
void BM_EventLoopCancelChurn(benchmark::State& state) {
  constexpr int kEvents = 1000;
  for (auto _ : state) {
    net::EventLoop loop;
    int counter = 0;
    std::vector<net::EventId> ids;
    ids.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
      ids.push_back(loop.schedule_at(SimTime{i * 100}, [&counter] { ++counter; }));
    }
    for (int i = 0; i < kEvents; i += 2) loop.cancel(ids[static_cast<std::size_t>(i)]);
    loop.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_EventLoopCancelChurn);

// The relay fan-out path end to end: N participants in one meeting, every
// ingested media packet forwarded to N-1 receivers through the jittered
// per-destination departure pipeline, then delivered over the network. This
// is the profile-dominating loop of every large-N sweep.
void BM_RelayFanout(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kPacketsPerSender = 50;
  for (auto _ : state) {
    net::Network net{std::make_unique<net::FixedLatencyModel>(millis(5)), 1};
    platform::RelayServer relay{net, "relay", GeoPoint{38.9, -77.4}, 8801,
                                platform::RelayServer::ForwardingDelay{millis(2), 1.0}};
    std::int64_t received = 0;
    std::vector<net::Host*> clients;
    for (int i = 0; i < n; ++i) {
      net::Host& h = net.add_host("c" + std::to_string(i), GeoPoint{40.0, -75.0});
      h.udp_bind(100).on_receive([&received](const net::Packet&) { ++received; });
      relay.add_participant(1, static_cast<platform::ParticipantId>(i + 1), {h.ip(), 100});
      clients.push_back(&h);
    }
    // Everyone streams one frame-sized packet per tick, 20 ms apart.
    for (int t = 0; t < kPacketsPerSender; ++t) {
      for (int i = 0; i < n; ++i) {
        net.loop().schedule_at(SimTime{t * 20'000}, [&relay, &clients, i] {
          net::Packet p;
          p.dst = relay.endpoint();
          p.l7_len = 1100;
          p.kind = net::StreamKind::kVideo;
          p.origin_id = static_cast<std::uint32_t>(i + 1);
          clients[static_cast<std::size_t>(i)]->udp_socket(100)->send(std::move(p));
        });
      }
    }
    net.loop().run();
    benchmark::DoNotOptimize(received);
  }
  // Copies forwarded per iteration: senders × packets × (n-1) receivers.
  state.SetItemsProcessed(state.iterations() * n * kPacketsPerSender * (n - 1));
}
BENCHMARK(BM_RelayFanout)->Arg(10)->Arg(30);

// Same-destination burst delivery: many packets injected for one receiver at
// one simulated instant — the best case for batched (dst, tick) delivery.
void BM_NetworkBurstDelivery(benchmark::State& state) {
  constexpr int kBurst = 64;
  constexpr int kBursts = 100;
  for (auto _ : state) {
    net::Network net{std::make_unique<net::FixedLatencyModel>(millis(5)), 1};
    net::Host& src = net.add_host("src", GeoPoint{40.0, -75.0});
    net::Host& dst = net.add_host("dst", GeoPoint{38.9, -77.4});
    auto& sock = src.udp_bind(200);
    std::int64_t received = 0;
    dst.udp_bind(100).on_receive([&received](const net::Packet&) { ++received; });
    for (int b = 0; b < kBursts; ++b) {
      net.loop().schedule_at(SimTime{b * 10'000}, [&sock, &dst] {
        for (int i = 0; i < kBurst; ++i) {
          sock.send_to({dst.ip(), 100}, 1100, net::StreamKind::kVideo);
        }
      });
    }
    net.loop().run();
    benchmark::DoNotOptimize(received);
  }
  state.SetItemsProcessed(state.iterations() * kBurst * kBursts);
}
BENCHMARK(BM_NetworkBurstDelivery);

void BM_ShaperThroughput(benchmark::State& state) {
  for (auto _ : state) {
    net::EventLoop loop;
    net::TokenBucketShaper shaper{loop, DataRate::mbps(2.0), 16'000, 256'000};
    std::int64_t out = 0;
    for (int i = 0; i < 500; ++i) {
      net::Packet p;
      p.l7_len = 1150;
      shaper.submit(std::move(p), [&out](net::Packet q) { out += q.l7_len; });
    }
    loop.run();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_ShaperThroughput);

}  // namespace

BENCHMARK_MAIN();
