// Intra-session relay fan-out A/B benchmark (PR 3).
//
// One meeting, N participants (N >= 20), every participant streaming video
// through a single RelayServer — the fan-out-bound regime where one ingest
// costs O(N) copy/scale/stage work. Three execution modes run interleaved
// (A/B/A/B..., defeating thermal and noise drift) and report median
// wall-clock over the rounds:
//   serial  — K=0, the plain fan-out loop;
//   staged  — K=4 with no pool: the sharded staging/merge path, inline on
//             the event-loop thread (isolates the staging overhead);
//   pooled  — K=4 on a ShardPool with auto-sized workers (0 on a 1-core
//             machine, where it degenerates to `staged`).
// Every mode's delivery transcript is FNV-hashed and must match `serial`
// byte-for-byte — the determinism contract, enforced here with real traffic.
//
// `--gate <ratio>` makes the binary exit non-zero when median(serial) /
// median(staged) falls below the ratio (e.g. --gate 0.90 fails a >10%
// staging regression); CI's perf-smoke job runs exactly that. `--out <path>`
// writes the machine-readable report (default BENCH_PR3.json in the CWD).
//
// A fourth interleaved mode, `traced-off`, re-runs the serial configuration
// with a flight-recorder Tracer attached but disabled — the state every
// instrumented hot path pays for when tracing is compiled in but off (one
// pointer load + branch per record site). `--trace-gate <ratio>` fails the
// run when median(serial) / median(traced-off) falls below the ratio;
// CI runs --trace-gate 0.98, the "tracing off costs <= 2%" contract. The
// in-process A/B comparison is deliberate: absolute baselines are too noisy
// on shared CI runners (see the PR3 comments above).
//
// Two more interleaved modes gate the PR 9 observability layer the same way:
// `metrics` attaches a MetricsRegistry to the network/relay (the A side),
// and `timeline-off` additionally arms a MetricsTimeline that is disabled —
// which must schedule nothing at all (structural zero, like an armed empty
// FaultPlan). `--timeline-gate <ratio>` fails (exit 4) when best(metrics) /
// best(timeline-off) falls below the ratio; CI runs --timeline-gate 0.98.
// `--timeline-out <path>` writes that gate's JSON report (default
// BENCH_PR9_timeline_gate.json). The same invocation also checks that a
// zero-rule HealthMonitor observing an *enabled* sampling timeline leaves
// the exported timeline bytes identical to an unobserved run (exit 5) —
// the armed-but-empty monitor contract.
//
// Compiling with -DVC_BENCH_SERIAL_ONLY builds only the serial mode against
// a tree that predates the sharding API — that is how the "before" column of
// the checked-in BENCH_PR3.json was measured at the parent commit.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "platform/relay.h"
#include "runner/experiment_runner.h"
#ifndef VC_BENCH_SERIAL_ONLY
#include "common/metrics.h"
#include "common/metrics_timeline.h"
#include "common/shard_pool.h"
#include "common/tracer.h"
#include "health/health_monitor.h"
#endif

namespace {

using namespace vc;

struct TrialResult {
  double seconds = 0.0;
  std::uint64_t digest = 0;  // FNV-1a over the full delivery transcript
  std::int64_t media_forwarded = 0;
};

struct Mode {
  std::string name;
  int shards = 0;
  bool use_pool = false;
  bool traced = false;    // attach a disabled Tracer to every hot path
  bool metered = false;   // attach a MetricsRegistry to network + relay
  bool timeline = false;  // additionally arm a disabled MetricsTimeline
  std::vector<double> seconds;
  std::uint64_t digest = 0;
  std::int64_t media_forwarded = 0;
};

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
}

#ifndef VC_BENCH_SERIAL_ONLY
/// Observability side-channel for a trial. attach_metrics alone is the A
/// side of the timeline gate; arm_disabled adds an armed-but-disabled
/// sampler (the B side, which must schedule nothing); sample arms an
/// enabled 50 ms sampler and exports its JSON (the armed-empty-monitor
/// byte-identity check).
struct TimelineProbe {
  bool attach_metrics = false;
  bool arm_disabled = false;
  bool sample = false;
  health::HealthMonitor* monitor = nullptr;
  std::string timeline_json;
};

TrialResult run_trial(int n, int frames, int shards, ShardPool* pool, Tracer* tracer,
                      TimelineProbe* probe = nullptr) {
#else
TrialResult run_trial(int n, int frames, int /*shards*/, void* /*pool*/, void* /*tracer*/,
                      void* /*probe*/ = nullptr) {
#endif
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(3)), 99};
  platform::RelayServer relay{net, "relay", GeoPoint{38.9, -77.4}, 8801,
                              platform::RelayServer::ForwardingDelay{millis(2), 2.0}};
#ifndef VC_BENCH_SERIAL_ONLY
  relay.set_fan_out_sharding(pool, shards);
  if (tracer != nullptr) {
    // Attached-but-disabled: the exact state the <=2% overhead gate measures.
    net.set_tracer(tracer);
    relay.set_tracer(tracer);
  }
  MetricsRegistry registry;
  MetricsTimeline timeline{MetricsTimeline::Config{millis(50), 256}};
  if (probe != nullptr && (probe->attach_metrics || probe->arm_disabled || probe->sample)) {
    net.attach_metrics(registry);
    relay.attach_metrics(registry);
  }
  if (probe != nullptr && (probe->arm_disabled || probe->sample)) {
    timeline.set_enabled(probe->sample);
    if (probe->monitor != nullptr) {
      probe->monitor->bind(&registry, nullptr);
      timeline.set_observer(probe->monitor);
    }
    // Disabled arm must schedule nothing; an enabled one samples every 50 ms
    // for the byte-identity probe.
    timeline.arm(net.loop(), registry, SimTime::zero(), SimTime::zero() + seconds(10));
  }
#endif

  TrialResult out{};
  out.digest = 14695981039346656037ULL;  // FNV offset basis
  std::vector<net::Host*> hosts;
  hosts.reserve(static_cast<std::size_t>(n));
  auto* digest = &out.digest;
  for (int i = 0; i < n; ++i) {
    net::Host& h = net.add_host("c" + std::to_string(i), GeoPoint{40.0, -75.0});
    auto& sock = h.udp_bind(100);
    const std::uint64_t rx_tag = static_cast<std::uint64_t>(i) << 48;
    sock.on_receive([digest, rx_tag, &net](const net::Packet& p) {
      fnv_mix(*digest, rx_tag | p.origin_id);
      fnv_mix(*digest, p.seq);
      fnv_mix(*digest, static_cast<std::uint64_t>(p.l7_len));
      fnv_mix(*digest, static_cast<std::uint64_t>(net.now().micros()));
    });
    relay.add_participant(1, static_cast<platform::ParticipantId>(i + 1), {h.ip(), 100});
    hosts.push_back(&h);
  }
  // Half the receivers pin explicit subscriptions (simulcast thumbnails and
  // a few unsubscribes), the rest take the forward-everything default — the
  // mix a gallery-view meeting produces.
  for (int i = 0; i < n; i += 2) {
    std::vector<platform::StreamSubscription> subs;
    for (int o = 0; o < n; ++o) {
      if (o == i) continue;
      const double scale = (i + o) % 11 == 0 ? 0.0 : ((o % 3 == 0) ? 0.25 : 1.0);
      subs.push_back({static_cast<platform::ParticipantId>(o + 1), scale});
    }
    relay.set_subscriptions(1, static_cast<platform::ParticipantId>(i + 1), std::move(subs));
  }

  // frames ingests per sender at a 33 ms cadence, staggered per sender.
  for (int f = 0; f < frames; ++f) {
    for (int i = 0; i < n; ++i) {
      net::Host* h = hosts[static_cast<std::size_t>(i)];
      const std::uint32_t origin = static_cast<std::uint32_t>(i + 1);
      const std::uint64_t seq = static_cast<std::uint64_t>(f);
      const std::int64_t l7 = 700 + 53 * ((f + i) % 13);
      net.loop().schedule_at(SimTime{f * 33'000 + i * 211},
                             [h, &relay, origin, seq, l7] {
                               net::Packet p;
                               p.dst = relay.endpoint();
                               p.l7_len = l7;
                               p.kind = net::StreamKind::kVideo;
                               p.origin_id = origin;
                               p.seq = seq;
                               h->udp_socket(100)->send(std::move(p));
                             });
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  net.loop().run();
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.media_forwarded = relay.stats().media_forwarded;
#ifndef VC_BENCH_SERIAL_ONLY
  if (probe != nullptr && probe->sample) {
    timeline.finalize();
    probe->timeline_json = timeline.to_json();
  }
#endif
  return out;
}

double flag_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = std::max(20, vcb::int_flag(argc, argv, "--n", 48));
  const int frames = vcb::int_flag(argc, argv, "--packets", 40);
  const int rounds = std::max(3, vcb::int_flag(argc, argv, "--rounds", 7));
  const int shards = std::max(1, vcb::int_flag(argc, argv, "--shards", 4));
  const double gate = flag_double(argc, argv, "--gate", 0.0);
  const double trace_gate = flag_double(argc, argv, "--trace-gate", 0.0);
  const double timeline_gate = flag_double(argc, argv, "--timeline-gate", 0.0);
  const std::string out_path = flag_string(argc, argv, "--out", "BENCH_PR3.json");
  const std::string timeline_out =
      flag_string(argc, argv, "--timeline-out", "BENCH_PR9_timeline_gate.json");

  std::printf("relay fan-out A/B: n=%d frames=%d rounds=%d shards=%d gate=%.2f trace-gate=%.2f "
              "timeline-gate=%.2f\n",
              n, frames, rounds, shards, gate, trace_gate, timeline_gate);

  auto make_mode = [](const char* name, int mode_shards, bool use_pool, bool traced, bool metered,
                      bool timeline) {
    Mode m;
    m.name = name;
    m.shards = mode_shards;
    m.use_pool = use_pool;
    m.traced = traced;
    m.metered = metered;
    m.timeline = timeline;
    return m;
  };
  std::vector<Mode> modes;
  modes.push_back(make_mode("serial", 0, false, false, false, false));
#ifndef VC_BENCH_SERIAL_ONLY
  modes.push_back(make_mode("traced-off", 0, false, true, false, false));
  modes.push_back(make_mode("metrics", 0, false, false, true, false));
  modes.push_back(make_mode("timeline-off", 0, false, false, true, true));
  modes.push_back(make_mode("staged", shards, false, false, false, false));
  modes.push_back(make_mode("pooled", shards, true, false, false, false));
  const int workers = ShardPool::auto_workers(shards);
  ShardPool pool{workers};
  Tracer tracer;  // never enabled: measures the compiled-in-but-off cost
  std::printf("pooled mode: %d worker thread(s) (auto for %d shards on this machine)\n", workers,
              shards);
#endif

  // One untimed warm-up per mode, then interleaved timed rounds.
  for (auto& m : modes) {
#ifndef VC_BENCH_SERIAL_ONLY
    TimelineProbe probe;
    probe.attach_metrics = m.metered;
    probe.arm_disabled = m.timeline;
    const TrialResult warm = run_trial(n, frames, m.shards, m.use_pool ? &pool : nullptr,
                                       m.traced ? &tracer : nullptr, &probe);
#else
    const TrialResult warm = run_trial(n, frames, m.shards, nullptr, nullptr);
#endif
    m.digest = warm.digest;
    m.media_forwarded = warm.media_forwarded;
  }
  for (int r = 0; r < rounds; ++r) {
    for (auto& m : modes) {
#ifndef VC_BENCH_SERIAL_ONLY
      TimelineProbe probe;
      probe.attach_metrics = m.metered;
      probe.arm_disabled = m.timeline;
      const TrialResult t = run_trial(n, frames, m.shards, m.use_pool ? &pool : nullptr,
                                      m.traced ? &tracer : nullptr, &probe);
#else
      const TrialResult t = run_trial(n, frames, m.shards, nullptr, nullptr);
#endif
      m.seconds.push_back(t.seconds);
      if (t.digest != m.digest) {
        std::printf("FAIL: %s digest unstable across rounds\n", m.name.c_str());
        return 1;
      }
    }
  }

#ifndef VC_BENCH_SERIAL_ONLY
  // Armed-empty HealthMonitor byte-identity: an enabled sampling timeline
  // exports the same bytes whether or not a zero-rule monitor is observing
  // it (and the deliveries stay identical too, via the digest check below).
  TimelineProbe plain;
  plain.sample = true;
  const TrialResult sampled_plain = run_trial(n, frames, 0, nullptr, nullptr, &plain);
  health::HealthMonitor empty_monitor;
  TimelineProbe observed;
  observed.sample = true;
  observed.monitor = &empty_monitor;
  const TrialResult sampled_observed = run_trial(n, frames, 0, nullptr, nullptr, &observed);
  const bool monitor_invisible = plain.timeline_json == observed.timeline_json &&
                                 !plain.timeline_json.empty() &&
                                 sampled_plain.digest == sampled_observed.digest &&
                                 sampled_plain.digest == modes[0].digest;
#else
  const bool monitor_invisible = true;
#endif

  bool identical = true;
  for (const auto& m : modes) {
    if (m.digest != modes[0].digest || m.media_forwarded != modes[0].media_forwarded) {
      identical = false;
    }
  }

  const std::int64_t ingests = static_cast<std::int64_t>(n) * frames;
  std::string json = "{\n  \"benchmark\": \"relay_shard_fanout\",\n";
  json += "  \"n_participants\": " + std::to_string(n) + ",\n";
  json += "  \"ingests_per_trial\": " + std::to_string(ingests) + ",\n";
  json += "  \"media_forwarded_per_trial\": " + std::to_string(modes[0].media_forwarded) + ",\n";
  json += "  \"rounds\": " + std::to_string(rounds) + ",\n  \"modes\": [\n";

  TextTable table{{"mode", "median (ms)", "ingests/s", "vs serial"}};
  double serial_median = 0.0;
  double staged_speedup = 1.0;
  double traced_speedup = 1.0;
  double timeline_speedup = 1.0;
  double metrics_best = 0.0;
  double timeline_best = 0.0;
  auto best_of = [](const std::vector<double>& s) {
    return s.empty() ? 0.0 : *std::min_element(s.begin(), s.end());
  };
  for (std::size_t i = 0; i < modes.size(); ++i) {
    auto& m = modes[i];
    const double med = median(m.seconds);
    if (i == 0) serial_median = med;
    const double speedup = med > 0 ? serial_median / med : 0.0;
    if (m.name == "staged") staged_speedup = speedup;
    if (m.name == "traced-off") {
      // Gate on best-of-rounds, not medians: scheduler noise only ever adds
      // time, so min/min isolates the intrinsic cost of the disabled hooks
      // from the +-5% round-to-round jitter of shared runners.
      const double serial_best = best_of(modes[0].seconds);
      const double traced_best = best_of(m.seconds);
      traced_speedup = traced_best > 0 ? serial_best / traced_best : 0.0;
    }
    if (m.name == "metrics") metrics_best = best_of(m.seconds);
    if (m.name == "timeline-off") timeline_best = best_of(m.seconds);
    table.add_row({m.name, TextTable::num(med * 1e3, 2),
                   TextTable::num(med > 0 ? static_cast<double>(ingests) / med : 0.0, 0),
                   TextTable::num(speedup, 3) + "x"});
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"%s\", \"median_seconds\": %.6f, \"ingests_per_second\": "
                  "%.0f, \"speedup_vs_serial\": %.3f}%s\n",
                  m.name.c_str(), med, med > 0 ? static_cast<double>(ingests) / med : 0.0,
                  speedup, i + 1 < modes.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  json += std::string{"  \"deliveries_byte_identical\": "} + (identical ? "true" : "false") +
          ",\n";
  char tail[192];
  std::snprintf(tail, sizeof(tail),
                "  \"gate\": %.2f,\n  \"staged_speedup\": %.3f,\n"
                "  \"trace_gate\": %.2f,\n  \"traced_off_speedup\": %.3f\n}\n",
                gate, staged_speedup, trace_gate, traced_speedup);
  json += tail;

  // The disabled-sampler gate compares against the `metrics` mode, not
  // `serial`: attaching the registry is the cost the caller opted into; the
  // armed-but-disabled timeline on top must be structurally free.
  timeline_speedup = timeline_best > 0.0 ? metrics_best / timeline_best : 1.0;

  std::printf("%s\n", table.render().c_str());
  std::printf("deliveries byte-identical across modes: %s\n",
              identical ? "yes" : "NO — determinism regression!");
  std::printf("armed-empty HealthMonitor invisible in timeline bytes: %s\n",
              monitor_invisible ? "yes" : "NO — observer perturbed the export!");
  if (runner::write_text_file(out_path, json)) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  if (timeline_gate > 0.0) {
    char tl_json[512];
    std::snprintf(tl_json, sizeof(tl_json),
                  "{\n  \"benchmark\": \"timeline_disabled_gate\",\n  \"rounds\": %d,\n"
                  "  \"best_metrics_seconds\": %.6f,\n  \"best_timeline_off_seconds\": %.6f,\n"
                  "  \"timeline_off_speed_ratio\": %.4f,\n  \"gate\": %.2f,\n"
                  "  \"armed_empty_monitor_byte_identical\": %s\n}\n",
                  rounds, metrics_best, timeline_best, timeline_speedup,
                  timeline_gate, monitor_invisible ? "true" : "false");
    if (runner::write_text_file(timeline_out, tl_json)) {
      std::printf("timeline gate report written to %s\n", timeline_out.c_str());
    }
  }

  if (!identical) return 1;
  if (gate > 0.0 && staged_speedup < gate) {
    std::printf("FAIL: staged fan-out speedup %.3fx below gate %.2fx\n", staged_speedup, gate);
    return 2;
  }
  if (trace_gate > 0.0 && traced_speedup < trace_gate) {
    std::printf("FAIL: disabled-tracer overhead ratio %.3fx below trace gate %.2fx\n",
                traced_speedup, trace_gate);
    return 3;
  }
  if (timeline_gate > 0.0 && timeline_speedup < timeline_gate) {
    std::printf("FAIL: disabled-sampler overhead ratio %.3fx below timeline gate %.2fx\n",
                timeline_speedup, timeline_gate);
    return 4;
  }
  if (!monitor_invisible) {
    std::printf("FAIL: armed-but-empty HealthMonitor changed the exported timeline bytes\n");
    return 5;
  }
  return 0;
}
