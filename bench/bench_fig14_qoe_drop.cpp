// Fig 14: QoE reduction when the injected feed changes from low-motion to
// high-motion (US scenario). The paper reports drops large enough to cost
// one MOS level across all three platforms.
//
// Each (platform, N, motion, repetition) cell is an independent broadcast
// session (core::run_qoe_session) on runner::ExperimentRunner, executed once
// on one thread and once on eight; the two aggregate reports must be
// bit-identical (the runner's determinism contract). The Fig 14 deltas are
// the low-motion minus high-motion aggregate means per (platform, N).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/qoe_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Cell {
  platform::PlatformId id{};
  int n = 0;
  platform::MotionClass motion{};
  std::uint64_t platform_seed = 0;  // the pre-runner sweep's 401 + id*17 + n stream
  std::string key;                  // e.g. "fig14/Zoom/N3/low"
};

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 14 — QoE reduction from low-motion to high-motion feeds (US)", paper);

  const int max_n = paper ? 5 : 3;
  const int sessions_per_cell = paper ? 5 : 1;

  std::vector<Cell> cells;
  for (const auto id : vcb::all_platforms()) {
    for (int n = 1; n <= max_n; ++n) {
      for (const auto motion :
           {platform::MotionClass::kLowMotion, platform::MotionClass::kHighMotion}) {
        Cell c;
        c.id = id;
        c.n = n;
        c.motion = motion;
        const bool low = motion == platform::MotionClass::kLowMotion;
        c.platform_seed = 401 + static_cast<std::uint64_t>(id) * 17 +
                          static_cast<std::uint64_t>(n) + (low ? 0 : 1009);
        c.key = std::string("fig14/") + std::string(platform_name(id)) + "/N" +
                std::to_string(n) + (low ? "/low" : "/high");
        for (int s = 0; s < sessions_per_cell; ++s) cells.push_back(c);
      }
    }
  }

  const SimDuration media_duration = paper ? seconds(60) : seconds(10);
  const auto task = [&cells, media_duration](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    core::QoeBenchmarkConfig cfg;
    cfg.platform = c.id;
    cfg.motion = c.motion;
    cfg.host_site = "US-East";
    cfg.receiver_sites = core::us_qoe_receiver_sites(c.n);
    cfg.media_duration = media_duration;
    cfg.content_width = 160;
    cfg.content_height = 112;
    cfg.padding = 16;
    cfg.fps = 10.0;
    cfg.metric_stride = 5;
    const auto r = core::run_qoe_session(cfg, ctx.seed ^ c.platform_seed);
    for (const core::QoeReceiverResult& rx : r.receivers) {
      if (rx.has_video_qoe) {
        ctx.sample(c.key + ".psnr", rx.psnr);
        ctx.sample(c.key + ".ssim", rx.ssim);
        ctx.sample(c.key + ".vifp", rx.vifp);
      }
    }
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 401;
  rc.label = "fig14_qoe_drop";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  TextTable table{{"platform", "N", "dPSNR (dB)", "dSSIM", "dVIFp"}};
  for (const auto id : vcb::all_platforms()) {
    for (int n = 1; n <= max_n; ++n) {
      const std::string base =
          std::string("fig14/") + std::string(platform_name(id)) + "/N" + std::to_string(n);
      auto delta = [&report, &base](const char* metric) {
        const auto* lm = report.find_sample(base + "/low." + metric);
        const auto* hm = report.find_sample(base + "/high." + metric);
        return lm != nullptr && hm != nullptr ? lm->mean() - hm->mean() : 0.0;
      };
      table.add_row({std::string(platform_name(id)), std::to_string(n),
                     TextTable::num(delta("psnr"), 1), TextTable::num(delta("ssim"), 3),
                     TextTable::num(delta("vifp"), 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper: reductions are significant on all platforms (enough to drop one MOS\n"
              "level); Webex's high-motion degradation worsens with more users.\n");

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("\nsessions: %zu  failures: %zu\n", report.sessions, report.failures.size());
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");
  const std::string out_path = "bench_fig14_qoe_drop.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
