// Fig 14: QoE reduction when the injected feed changes from low-motion to
// high-motion (US scenario). The paper reports drops large enough to cost
// one MOS level across all three platforms.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/qoe_benchmark.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 14 — QoE reduction from low-motion to high-motion feeds (US)", paper);

  const int max_n = paper ? 5 : 3;
  TextTable table{{"platform", "N", "dPSNR (dB)", "dSSIM", "dVIFp"}};
  for (const auto id : vcb::all_platforms()) {
    for (int n = 1; n <= max_n; ++n) {
      core::QoeBenchmarkConfig cfg;
      cfg.platform = id;
      cfg.host_site = "US-East";
      cfg.receiver_sites = core::us_qoe_receiver_sites(n);
      cfg.sessions = paper ? 5 : 1;
      cfg.media_duration = paper ? seconds(60) : seconds(10);
      cfg.content_width = 160;
      cfg.content_height = 112;
      cfg.padding = 16;
      cfg.fps = 10.0;
      cfg.metric_stride = 5;
      cfg.seed = 401 + static_cast<std::uint64_t>(id) * 17 + static_cast<std::uint64_t>(n);

      cfg.motion = platform::MotionClass::kLowMotion;
      const auto lm = core::run_qoe_benchmark(cfg);
      cfg.motion = platform::MotionClass::kHighMotion;
      const auto hm = core::run_qoe_benchmark(cfg);

      table.add_row({std::string(platform_name(id)), std::to_string(n),
                     TextTable::num(lm.psnr.mean() - hm.psnr.mean(), 1),
                     TextTable::num(lm.ssim.mean() - hm.ssim.mean(), 3),
                     TextTable::num(lm.vifp.mean() - hm.vifp.mean(), 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper: reductions are significant on all platforms (enough to drop one MOS\n"
              "level); Webex's high-motion degradation worsens with more users.\n");
  return 0;
}
