// Fig 13: "video screen with padding" — why the paper pads its feeds.
//
// Client UIs draw widgets (buttons, thumbnails) over the screen border even
// in full-screen mode, occluding part of the rendered video. The paper's
// trick: surround the content with enough padding that the occlusion only
// ever covers padding, then crop it back out before scoring. This bench
// quantifies the damage the trick avoids: QoE of the same received stream
// scored (a) with the paper's padded/cropped pipeline and (b) naively, with
// the UI widgets inside the scored area.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "client/media_feeder.h"
#include "client/recorder.h"
#include "client/vca_client.h"
#include "media/align.h"
#include "media/feeds.h"
#include "media/qoe/video_metrics.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 13 — the protective-padding pipeline, and what it avoids", paper);

  const int content_w = 128;
  const int content_h = 96;
  const int pad = 16;

  testbed::CloudTestbed bed{77};
  auto zoom = platform::make_platform(platform::PlatformId::kZoom, bed.network());
  net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 0);
  net::Host& rx_vm = bed.create_vm(testbed::site_by_name("US-East"), 1);

  auto content = std::make_shared<media::TalkingHeadFeed>(
      media::FeedParams{content_w, content_h, 10.0, 5});
  auto padded = std::make_shared<media::PaddedFeed>(content, pad);

  client::VcaClient::Config host_cfg;
  host_cfg.send_audio = false;
  host_cfg.decode_video = false;
  host_cfg.video_width = content_w + 2 * pad;
  host_cfg.video_height = content_h + 2 * pad;
  host_cfg.fps = 10.0;
  host_cfg.ui_border = 8;  // UI widgets occlude the outer 8 px of the screen
  host_cfg.motion = platform::MotionClass::kLowMotion;
  client::VcaClient host{host_vm, *zoom, host_cfg};
  auto rx_cfg = host_cfg;
  rx_cfg.send_video = false;
  rx_cfg.decode_video = true;
  client::VcaClient rx{rx_vm, *zoom, rx_cfg};
  client::MediaFeeder feeder{bed.loop(), host.video_device(), host.audio_device()};
  client::DesktopRecorder recorder{rx, 10.0};

  const auto duration = paper ? seconds(60) : seconds(12);
  testbed::SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.participants = {&rx};
  plan.media_duration = duration;
  plan.on_all_joined = [&] {
    feeder.play_video(padded, duration);
    recorder.start(duration);
  };
  testbed::SessionOrchestrator orch{std::move(plan)};
  orch.start();
  bed.run_all();

  // (a) The paper's pipeline: crop the padding (removing the occluded
  // border with it), score content vs content.
  const auto cropped = media::crop_and_resize(recorder.video(), pad, content_w, content_h);
  std::vector<media::Frame> content_ref;
  for (std::size_t k = 0; k < cropped.frames.size(); ++k) {
    content_ref.push_back(content->frame_at(static_cast<std::int64_t>(k)));
  }
  const auto shift_a = media::best_temporal_shift(content_ref, cropped.frames, 10);
  const auto aligned_a = media::align_sequences(content_ref, cropped.frames, shift_a);

  // (b) Naive: score the full recorded screen (widgets and all) against the
  // injected padded frames.
  std::vector<media::Frame> padded_ref;
  for (std::size_t k = 0; k < recorder.video().frames.size(); ++k) {
    padded_ref.push_back(padded->frame_at(static_cast<std::int64_t>(k)));
  }
  const auto shift_b = media::best_temporal_shift(padded_ref, recorder.video().frames, 10);
  const auto aligned_b =
      media::align_sequences(padded_ref, recorder.video().frames, shift_b);

  auto mean_qoe = [](const media::AlignedPair& pair) {
    media::qoe::VideoQoe acc;
    int n = 0;
    for (std::size_t k = 0; k < pair.reference.size(); k += 4) {
      const auto q = media::qoe::video_qoe(pair.reference[k], pair.recording[k]);
      acc.psnr += q.psnr;
      acc.ssim += q.ssim;
      acc.vifp += q.vifp;
      ++n;
    }
    return media::qoe::VideoQoe{acc.psnr / n, acc.ssim / n, acc.vifp / n};
  };
  const auto with_padding = mean_qoe(aligned_a);
  const auto naive = mean_qoe(aligned_b);

  TextTable table{{"scoring pipeline", "PSNR (dB)", "SSIM", "VIFp"}};
  table.add_row({"padded feed, padding cropped (paper)", TextTable::num(with_padding.psnr, 1),
                 TextTable::num(with_padding.ssim, 3), TextTable::num(with_padding.vifp, 3)});
  table.add_row({"naive (UI occlusion inside scored area)", TextTable::num(naive.psnr, 1),
                 TextTable::num(naive.ssim, 3), TextTable::num(naive.vifp, 3)});
  std::printf("%s\n", table.render().c_str());
  std::printf("UI widgets occlude the outer %d px of the screen; the %d px padding keeps\n"
              "them out of the content area, so the crop recovers a clean signal. Scoring\n"
              "naively attributes the occlusion to the platform: %.1f dB of phantom loss.\n",
              host_cfg.ui_border, pad, with_padding.psnr - naive.psnr);
  return 0;
}
