// Fig 13: "video screen with padding" — why the paper pads its feeds.
//
// Client UIs draw widgets (buttons, thumbnails) over the screen border even
// in full-screen mode, occluding part of the rendered video. The paper's
// trick: surround the content with enough padding that the occlusion only
// ever covers padding, then crop it back out before scoring. This bench
// quantifies the damage the trick avoids: QoE of the same received stream
// scored (a) with the paper's padded/cropped pipeline and (b) naively, with
// the UI widgets inside the scored area.
//
// Each repetition is one self-contained Zoom session on
// runner::ExperimentRunner (both scoring pipelines run on the same recording
// inside the task); the serial and 8-thread aggregate reports must be
// bit-identical.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "client/media_feeder.h"
#include "client/recorder.h"
#include "client/vca_client.h"
#include "media/align.h"
#include "media/feeds.h"
#include "media/qoe/video_metrics.h"
#include "platform/base_platform.h"
#include "runner/experiment_runner.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace {

using namespace vc;

constexpr int kContentW = 128;
constexpr int kContentH = 96;
constexpr int kPad = 16;
constexpr int kUiBorder = 8;  // UI widgets occlude the outer 8 px of the screen

struct PaddingResult {
  media::qoe::VideoQoe with_padding;  // padded feed, padding cropped (paper)
  media::qoe::VideoQoe naive;         // UI occlusion inside the scored area
};

media::qoe::VideoQoe mean_qoe(const media::AlignedPair& pair) {
  media::qoe::VideoQoe acc;
  int n = 0;
  for (std::size_t k = 0; k < pair.reference.size(); k += 4) {
    const auto q = media::qoe::video_qoe(pair.reference[k], pair.recording[k]);
    acc.psnr += q.psnr;
    acc.ssim += q.ssim;
    acc.vifp += q.vifp;
    ++n;
  }
  return media::qoe::VideoQoe{acc.psnr / n, acc.ssim / n, acc.vifp / n};
}

PaddingResult run_padding_session(std::uint64_t seed, SimDuration duration) {
  testbed::CloudTestbed bed{seed};
  auto zoom = platform::make_platform(platform::PlatformId::kZoom, bed.network());
  net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 0);
  net::Host& rx_vm = bed.create_vm(testbed::site_by_name("US-East"), 1);

  auto content = std::make_shared<media::TalkingHeadFeed>(
      media::FeedParams{kContentW, kContentH, 10.0, 5});
  auto padded = std::make_shared<media::PaddedFeed>(content, kPad);

  client::VcaClient::Config host_cfg;
  host_cfg.send_audio = false;
  host_cfg.decode_video = false;
  host_cfg.video_width = kContentW + 2 * kPad;
  host_cfg.video_height = kContentH + 2 * kPad;
  host_cfg.fps = 10.0;
  host_cfg.ui_border = kUiBorder;
  host_cfg.motion = platform::MotionClass::kLowMotion;
  client::VcaClient host{host_vm, *zoom, host_cfg};
  auto rx_cfg = host_cfg;
  rx_cfg.send_video = false;
  rx_cfg.decode_video = true;
  client::VcaClient rx{rx_vm, *zoom, rx_cfg};
  client::MediaFeeder feeder{bed.loop(), host.video_device(), host.audio_device()};
  client::DesktopRecorder recorder{rx, 10.0};

  testbed::SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.participants = {&rx};
  plan.media_duration = duration;
  plan.on_all_joined = [&] {
    feeder.play_video(padded, duration);
    recorder.start(duration);
  };
  testbed::SessionOrchestrator orch{std::move(plan)};
  orch.start();
  bed.run_all();

  // (a) The paper's pipeline: crop the padding (removing the occluded
  // border with it), score content vs content.
  const auto cropped = media::crop_and_resize(recorder.video(), kPad, kContentW, kContentH);
  std::vector<media::Frame> content_ref;
  for (std::size_t k = 0; k < cropped.frames.size(); ++k) {
    content_ref.push_back(content->frame_at(static_cast<std::int64_t>(k)));
  }
  const auto shift_a = media::best_temporal_shift(content_ref, cropped.frames, 10);
  const auto aligned_a = media::align_sequences(content_ref, cropped.frames, shift_a);

  // (b) Naive: score the full recorded screen (widgets and all) against the
  // injected padded frames.
  std::vector<media::Frame> padded_ref;
  for (std::size_t k = 0; k < recorder.video().frames.size(); ++k) {
    padded_ref.push_back(padded->frame_at(static_cast<std::int64_t>(k)));
  }
  const auto shift_b = media::best_temporal_shift(padded_ref, recorder.video().frames, 10);
  const auto aligned_b = media::align_sequences(padded_ref, recorder.video().frames, shift_b);

  return PaddingResult{mean_qoe(aligned_a), mean_qoe(aligned_b)};
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 13 — the protective-padding pipeline, and what it avoids", paper);

  const std::size_t reps = paper ? 4 : 1;
  const SimDuration duration = paper ? seconds(60) : seconds(12);

  const auto task = [duration](runner::SessionContext& ctx) {
    const PaddingResult r = run_padding_session(ctx.seed, duration);
    ctx.sample("fig13/padded.psnr", r.with_padding.psnr);
    ctx.sample("fig13/padded.ssim", r.with_padding.ssim);
    ctx.sample("fig13/padded.vifp", r.with_padding.vifp);
    ctx.sample("fig13/naive.psnr", r.naive.psnr);
    ctx.sample("fig13/naive.ssim", r.naive.ssim);
    ctx.sample("fig13/naive.vifp", r.naive.vifp);
    ctx.sample("fig13.phantom_loss_db", r.with_padding.psnr - r.naive.psnr);
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 77;
  rc.label = "fig13_padding";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(reps, task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(reps, task);

  auto mean = [&report](const std::string& key) {
    const auto* s = report.find_sample(key);
    return s != nullptr ? s->mean() : 0.0;
  };
  TextTable table{{"scoring pipeline", "PSNR (dB)", "SSIM", "VIFp"}};
  table.add_row({"padded feed, padding cropped (paper)", TextTable::num(mean("fig13/padded.psnr"), 1),
                 TextTable::num(mean("fig13/padded.ssim"), 3),
                 TextTable::num(mean("fig13/padded.vifp"), 3)});
  table.add_row({"naive (UI occlusion inside scored area)", TextTable::num(mean("fig13/naive.psnr"), 1),
                 TextTable::num(mean("fig13/naive.ssim"), 3),
                 TextTable::num(mean("fig13/naive.vifp"), 3)});
  std::printf("%s\n", table.render().c_str());
  std::printf("UI widgets occlude the outer %d px of the screen; the %d px padding keeps\n"
              "them out of the content area, so the crop recovers a clean signal. Scoring\n"
              "naively attributes the occlusion to the platform: %.1f dB of phantom loss.\n",
              kUiBorder, kPad, mean("fig13.phantom_loss_db"));

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("\nsessions: %zu  failures: %zu\n", report.sessions, report.failures.size());
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");
  const std::string out_path = "bench_fig13_padding.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
