// Fig 3 (and Section 4.2's endpoint counts): service-endpoint architecture
// per platform — designated media ports, per-session endpoint churn, and the
// relay topology discovered from traffic alone.
//
// Paper anchors: UDP/8801 (Zoom), UDP/9000 (Webex), UDP/19305 (Meet); over
// 20 sessions a client meets on average 20 / 19.5 / 1.8 distinct endpoints.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/lag_benchmark.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 3 — videoconferencing service endpoints", paper);

  TextTable table{{"platform", "media port", "paper port", "endpoints/client",
                   "paper endpoints", "topology"}};
  for (const auto id : vcb::all_platforms()) {
    core::LagBenchmarkConfig cfg;
    cfg.platform = id;
    cfg.host_site = "US-East";
    cfg.participant_sites = core::us_participant_sites(cfg.host_site);
    cfg.sessions = paper ? 20 : 10;
    cfg.session_duration = paper ? seconds(120) : seconds(30);
    cfg.seed = 101;
    const auto result = core::run_lag_benchmark(cfg);

    const char* expected_port = id == platform::PlatformId::kZoom    ? "8801"
                                : id == platform::PlatformId::kWebex ? "9000"
                                                                     : "19305";
    const char* paper_endpoints = id == platform::PlatformId::kZoom    ? "20"
                                  : id == platform::PlatformId::kWebex ? "19.5"
                                                                       : "1.8";
    const char* topology =
        id == platform::PlatformId::kMeet
            ? "per-client nearby endpoints, relayed between endpoints"
            : "single endpoint per session, all participants via it";
    table.add_row({std::string(platform_name(id)),
                   "UDP/" + std::to_string(result.dominant_media_port), expected_port,
                   TextTable::num(result.mean_distinct_endpoints, 1) + " (over " +
                       std::to_string(cfg.sessions) + ")",
                   paper_endpoints + std::string(" (over 20)"), topology});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Zoom/Webex churn a fresh endpoint almost every session; Meet clients\n"
              "stick to one or two nearby endpoints across sessions.\n");
  return 0;
}
