// Fig 3 (and Section 4.2's endpoint counts): service-endpoint architecture
// per platform — designated media ports, per-session endpoint churn, and the
// relay topology discovered from traffic alone.
//
// Paper anchors: UDP/8801 (Zoom), UDP/9000 (Webex), UDP/19305 (Meet); over
// 20 sessions a client meets on average 20 / 19.5 / 1.8 distinct endpoints.
//
// The three platforms run as independent runner::ExperimentRunner tasks,
// once on one thread and once on eight; the two aggregate reports must be
// bit-identical, and the table below is rendered from the report itself.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/lag_benchmark.h"
#include "runner/experiment_runner.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 3 — videoconferencing service endpoints", paper);

  const auto& platforms = vcb::all_platforms();
  const int sessions = paper ? 20 : 10;
  const SimDuration duration = paper ? seconds(120) : seconds(30);

  const auto task = [&platforms, sessions, duration](runner::SessionContext& ctx) {
    const auto id = platforms[ctx.task_index];
    core::LagBenchmarkConfig cfg;
    cfg.platform = id;
    cfg.host_site = "US-East";
    cfg.participant_sites = core::us_participant_sites(cfg.host_site);
    cfg.sessions = sessions;
    cfg.session_duration = duration;
    cfg.seed = ctx.seed;
    const auto result = core::run_lag_benchmark(cfg);
    const std::string base{platform_name(id)};
    ctx.sample(base + ".mean_distinct_endpoints", result.mean_distinct_endpoints);
    ctx.sample(base + ".dominant_port", static_cast<double>(result.dominant_media_port));
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 101;
  rc.label = "fig3_endpoints";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(platforms.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(platforms.size(), task);

  TextTable table{{"platform", "media port", "paper port", "endpoints/client",
                   "paper endpoints", "topology"}};
  for (const auto id : platforms) {
    const std::string base{platform_name(id)};
    const auto* endpoints = report.find_sample(base + ".mean_distinct_endpoints");
    const auto* port = report.find_sample(base + ".dominant_port");
    const char* expected_port = id == platform::PlatformId::kZoom    ? "8801"
                                : id == platform::PlatformId::kWebex ? "9000"
                                                                     : "19305";
    const char* paper_endpoints = id == platform::PlatformId::kZoom    ? "20"
                                  : id == platform::PlatformId::kWebex ? "19.5"
                                                                       : "1.8";
    const char* topology =
        id == platform::PlatformId::kMeet
            ? "per-client nearby endpoints, relayed between endpoints"
            : "single endpoint per session, all participants via it";
    table.add_row({base,
                   port != nullptr
                       ? "UDP/" + std::to_string(static_cast<int>(port->mean()))
                       : "-",
                   expected_port,
                   endpoints != nullptr
                       ? TextTable::num(endpoints->mean(), 1) + " (over " +
                             std::to_string(sessions) + ")"
                       : "-",
                   paper_endpoints + std::string(" (over 20)"), topology});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Zoom/Webex churn a fresh endpoint almost every session; Meet clients\n"
              "stick to one or two nearby endpoints across sessions.\n");

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");
  const std::string out_path = "bench_fig3_endpoints.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s (render: vcbench_cli report %s)\n", out_path.c_str(),
                out_path.c_str());
  }
  return identical ? 0 : 1;
}
