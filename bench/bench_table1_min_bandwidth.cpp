// Table 1: minimum bandwidth requirements for one-on-one calls.
//
// The paper quotes each operator's published minimums (Zoom 600 Kbps;
// Webex 0.5/2.5 Mbps; Meet 1/2.6 Mbps low/high quality) and notes its
// measurements are consistent with them. Here we *measure* the minimums:
// sweep the receiver's ingress cap downward in a two-party call and report
// the smallest cap at which the call stays usable (video delivering and
// audio intact) and the smallest cap at which it still runs at full quality.
//
// Every (platform, cap) cell — including the uncapped baseline — is an
// independent session (core::run_bwcap_session) on runner::ExperimentRunner,
// executed once on one thread and once on eight; the floors are computed
// from the aggregate report, which must be bit-identical across the two.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/bwcap_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Cell {
  platform::PlatformId id{};
  DataRate cap{};
  std::uint64_t platform_seed = 0;  // the pre-runner sweep's 1001 + id stream
  std::string key;                  // e.g. "Zoom/cap600 Kbps"
};

std::string cell_key(platform::PlatformId id, DataRate cap) {
  return std::string(platform_name(id)) + "/cap" + cap.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Table 1 — minimum bandwidth for one-on-one calls (measured)", paper);

  const std::vector<double> caps_kbps = {250, 400, 500, 600, 750, 1000, 1500, 2000, 2600, 3000};

  std::vector<Cell> cells;
  for (const auto id : vcb::all_platforms()) {
    Cell base;
    base.id = id;
    base.cap = DataRate::unlimited();  // baseline quality cell
    base.platform_seed = 1001 + static_cast<std::uint64_t>(id);
    base.key = cell_key(id, base.cap);
    cells.push_back(base);
    for (const double kbps : caps_kbps) {
      Cell c = base;
      c.cap = DataRate::kbps(kbps);
      c.key = cell_key(id, c.cap);
      cells.push_back(c);
    }
  }

  const SimDuration media_duration = paper ? seconds(45) : seconds(10);
  const auto task = [&cells, media_duration](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    core::BwCapBenchmarkConfig cfg;
    cfg.platform = c.id;
    cfg.cap = c.cap;
    cfg.media_duration = media_duration;
    cfg.content_width = 160;
    cfg.content_height = 112;
    cfg.padding = 16;
    cfg.fps = 10.0;
    cfg.metric_stride = 5;
    const auto r = core::run_bwcap_session(cfg, ctx.seed ^ c.platform_seed);
    if (r.has_video_qoe) ctx.sample(c.key + ".ssim", r.ssim);
    if (r.has_audio_qoe) ctx.sample(c.key + ".mos_lqo", r.mos_lqo);
    if (r.has_delivery_ratio) ctx.sample(c.key + ".delivery_ratio", r.delivery_ratio);
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 1001;
  rc.label = "table1_min_bandwidth";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  TextTable table{{"platform", "usable floor (Kbps)", "full-quality floor (Kbps)",
                   "paper low / high quality"}};
  for (const auto id : vcb::all_platforms()) {
    const auto* base_ssim = report.find_sample(cell_key(id, DataRate::unlimited()) + ".ssim");
    double usable_floor = 0.0;
    double full_floor = 0.0;
    for (const double kbps : caps_kbps) {
      const std::string k = cell_key(id, DataRate::kbps(kbps));
      const auto* ssim = report.find_sample(k + ".ssim");
      const auto* mos = report.find_sample(k + ".mos_lqo");
      const auto* deliv = report.find_sample(k + ".delivery_ratio");
      const bool usable = deliv != nullptr && deliv->mean() > 0.7 &&  //
                          mos != nullptr && mos->mean() > 3.0;
      const bool full = ssim != nullptr && base_ssim != nullptr &&
                        ssim->mean() > base_ssim->mean() - 0.03 &&  //
                        deliv != nullptr && deliv->mean() > 0.9;
      if (usable && usable_floor == 0.0) usable_floor = kbps;
      if (full && full_floor == 0.0) {
        full_floor = kbps;
        break;  // caps only get looser from here
      }
    }
    const char* published = id == platform::PlatformId::kZoom    ? "600 Kbps / -"
                            : id == platform::PlatformId::kWebex ? "500 Kbps / 2.5 Mbps"
                                                                 : "1 Mbps / 2.6 Mbps";
    table.add_row({std::string(platform_name(id)),
                   usable_floor > 0 ? TextTable::num(usable_floor, 0) : ">3000",
                   full_floor > 0 ? TextTable::num(full_floor, 0) : ">3000", published});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("'usable': >70%% of frames delivered and MOS-LQO > 3;\n"
              "'full quality': SSIM within 0.03 of the uncapped baseline.\n");

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("sessions: %zu  failures: %zu\n", report.sessions, report.failures.size());
  std::printf("wall clock: %.2f s at 1 thread, %.2f s at 8 threads — speedup %.2fx\n",
              serial.wall_seconds, report.wall_seconds,
              report.wall_seconds > 0 ? serial.wall_seconds / report.wall_seconds : 0.0);
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");

  const std::string out_path = "bench_table1_min_bandwidth.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
