// Table 1: minimum bandwidth requirements for one-on-one calls.
//
// The paper quotes each operator's published minimums (Zoom 600 Kbps;
// Webex 0.5/2.5 Mbps; Meet 1/2.6 Mbps low/high quality) and notes its
// measurements are consistent with them. Here we *measure* the minimums:
// sweep the receiver's ingress cap downward in a two-party call and report
// the smallest cap at which the call stays usable (video delivering and
// audio intact) and the smallest cap at which it still runs at full quality.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/bwcap_benchmark.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Table 1 — minimum bandwidth for one-on-one calls (measured)", paper);

  const std::vector<double> caps_kbps = {250, 400, 500, 600, 750, 1000, 1500, 2000, 2600, 3000};

  TextTable table{{"platform", "usable floor (Kbps)", "full-quality floor (Kbps)",
                   "paper low / high quality"}};
  for (const auto id : vcb::all_platforms()) {
    // Baseline quality with unlimited bandwidth.
    core::BwCapBenchmarkConfig base_cfg;
    base_cfg.platform = id;
    base_cfg.sessions = 1;
    base_cfg.media_duration = paper ? seconds(45) : seconds(10);
    base_cfg.content_width = 160;
    base_cfg.content_height = 112;
    base_cfg.padding = 16;
    base_cfg.fps = 10.0;
    base_cfg.metric_stride = 5;
    base_cfg.seed = 1001 + static_cast<std::uint64_t>(id);
    const auto base = core::run_bwcap_benchmark(base_cfg);

    double usable_floor = 0.0;
    double full_floor = 0.0;
    for (const double kbps : caps_kbps) {
      auto cfg = base_cfg;
      cfg.cap = DataRate::kbps(kbps);
      const auto r = core::run_bwcap_benchmark(cfg);
      const bool usable = r.delivery_ratio.mean() > 0.7 && r.mos_lqo.mean() > 3.0;
      const bool full = r.ssim.count() > 0 && r.ssim.mean() > base.ssim.mean() - 0.03 &&
                        r.delivery_ratio.mean() > 0.9;
      if (usable && usable_floor == 0.0) usable_floor = kbps;
      if (full && full_floor == 0.0) {
        full_floor = kbps;
        break;  // caps only get looser from here
      }
    }
    const char* published = id == platform::PlatformId::kZoom    ? "600 Kbps / -"
                            : id == platform::PlatformId::kWebex ? "500 Kbps / 2.5 Mbps"
                                                                 : "1 Mbps / 2.6 Mbps";
    table.add_row({std::string(platform_name(id)),
                   usable_floor > 0 ? TextTable::num(usable_floor, 0) : ">3000",
                   full_floor > 0 ? TextTable::num(full_floor, 0) : ">3000", published});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("'usable': >70%% of frames delivered and MOS-LQO > 3;\n"
              "'full quality': SSIM within 0.03 of the uncapped baseline.\n");
  return 0;
}
