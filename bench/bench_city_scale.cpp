// City-scale relay-federation sweep (PR 10): fleet size × placement policy
// over a city's worth of concurrent meetings per task, on the new src/fleet
// subsystem (cascaded relays + meeting load balancer + spare-capacity
// failover).
//
// Each task simulates one city: one platform, one fleet::RelayFleet, and a
// staggered batch of meetings (a broadcasting host plus passive receivers
// each). The default sweep covers fleet sizes {1,2,4} × policies
// {rr,least,locality} × `--cities` replicas, plus a crash-failover cell
// (relay 0 crashes mid-call, the balancer re-homes its meetings onto
// survivors and the clients reconnect) — north of 10^4 simulated
// participants end to end. Reported per cell: one-way video lag quantiles,
// meetings completed, trunked packet totals; report-level "rates" carry
// events/sec and bytes/sec (the runner divides the deterministic
// city.sim_events / city.sim_bytes counters by wall-clock).
//
// The sweep runs once at 1 thread and twice at 8 (the second 8-thread pass
// is the placement-replica check); all three aggregate reports must be
// byte-identical, and `--shards K` must not change a byte either (exit 1).
//
// `--gate <ratio>` switches to the fleet-of-1 equivalence gate CI's
// perf-smoke job runs: interleaved A/B rounds of the same single-meeting
// Webex workload with native relay steering vs a fleet of size 1 with the
// balancer armed. The two aggregates must be byte-identical (exit 1 — the
// balancer's placement must reproduce the native path exactly) and
// best-of-rounds wall clock may not regress below the gate ratio (e.g.
// --gate 0.98 = "the armed balancer costs <= 2%", exit 3).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/city_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

double flag_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

platform::PlatformId parse_platform(const std::string& name) {
  if (name == "zoom") return platform::PlatformId::kZoom;
  if (name == "webex") return platform::PlatformId::kWebex;
  if (name == "meet") return platform::PlatformId::kMeet;
  std::fprintf(stderr, "unknown platform %s (zoom|webex|meet)\n", name.c_str());
  std::exit(2);
}

void sample_quantiles(runner::SessionContext& ctx, const std::string& base,
                      const std::vector<double>& values) {
  if (values.empty()) return;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    char suffix[8];
    std::snprintf(suffix, sizeof(suffix), ".p%d", static_cast<int>(q * 100 + 0.5));
    ctx.sample(base + suffix, quantile(std::vector<double>(values), q));
  }
}

struct Cell {
  int fleet_size = 1;
  fleet::PlacementPolicy policy = fleet::PlacementPolicy::kRoundRobin;
  bool crash = false;
  std::string key;  // e.g. "f2/least" or "f2/least/crash"
};

/// Fleet-of-1 equivalence gate (CI perf-smoke): A = native relay steering,
/// B = fleet of size 1 with the balancer armed. Returns the process exit
/// code.
int run_gate(double gate, int rounds, int shards, const std::string& out_path) {
  const auto make_task = [shards](bool fleet_on) {
    return [shards, fleet_on](runner::SessionContext& ctx) {
      core::CityScaleConfig cfg;
      // Single-meeting Webex: the one workload whose native steering a
      // fleet of 1 reproduces move for move (one relay at webex-us-east,
      // allocated at meeting creation, no P2P short-circuit, no allocator
      // RNG draw) — which is what makes byte-identity a fair demand.
      cfg.platform = platform::PlatformId::kWebex;
      cfg.meetings = 1;
      cfg.participants_per_meeting = 7;
      cfg.media_duration = seconds(10);
      cfg.use_fleet = fleet_on;
      cfg.fleet_size = 1;
      cfg.attach_fleet_metrics = false;  // match the native instrument set
      cfg.fan_out_shards = shards;
      cfg.seed = ctx.seed;
      cfg.metrics = &ctx.metrics;
      const auto r = core::run_city_scale_benchmark(cfg);
      ctx.sample("gate.completed", static_cast<double>(r.meetings_completed));
      ctx.sample("gate.lag_samples", static_cast<double>(r.lag_ms.size()));
      sample_quantiles(ctx, "gate.lag", r.lag_ms);
    };
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 10101;
  rc.label = "city_gate";
  rc.threads = 1;
  rc.rate_counters = {"city.sim_events", "city.sim_bytes"};

  std::string baseline_json;
  double best_native = 0.0, best_fleet = 0.0;
  for (int r = 0; r < rounds; ++r) {
    for (const bool fleet_on : {false, true}) {
      const auto report = runner::ExperimentRunner{rc}.run(3, make_task(fleet_on));
      if (!report.failures.empty()) {
        std::printf("FAIL: gate session threw (%zu failures)\n", report.failures.size());
        return 1;
      }
      if (baseline_json.empty()) {
        baseline_json = report.aggregate_json();
      } else if (report.aggregate_json() != baseline_json) {
        std::printf("FAIL: %s aggregate differs from native baseline — a fleet of 1 "
                    "must reproduce the single-relay path byte for byte\n",
                    fleet_on ? "fleet-of-1" : "native");
        return 1;
      }
      double& best = fleet_on ? best_fleet : best_native;
      if (best == 0.0 || report.wall_seconds < best) best = report.wall_seconds;
    }
  }
  const double ratio = best_fleet > 0.0 ? best_native / best_fleet : 0.0;
  std::printf("fleet-of-1 gate: best native %.3f s, best fleet %.3f s, ratio %.3fx "
              "(gate %.2fx), aggregates byte-identical: yes\n",
              best_native, best_fleet, ratio, gate);

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\n  \"benchmark\": \"city_scale_fleet_gate\",\n  \"rounds\": %d,\n"
                "  \"best_native_seconds\": %.6f,\n  \"best_fleet_seconds\": %.6f,\n"
                "  \"fleet_speed_ratio\": %.4f,\n  \"gate\": %.2f,\n"
                "  \"aggregates_byte_identical\": true\n}\n",
                rounds, best_native, best_fleet, ratio, gate);
  if (runner::write_text_file(out_path, json)) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  if (ratio < gate) {
    std::printf("FAIL: fleet-of-1 overhead ratio %.3fx below gate %.2fx\n", ratio, gate);
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  const int shards = vcb::int_flag(argc, argv, "--shards", 0);
  const double gate = flag_double(argc, argv, "--gate", 0.0);
  const int rounds = std::max(3, vcb::int_flag(argc, argv, "--rounds", 5));
  const std::string out_path = flag_string(argc, argv, "--out", "bench_city_scale.report.json");
  if (gate > 0.0) return run_gate(gate, rounds, shards, out_path);

  vcb::banner("City scale — relay federation fleet sweep", paper);

  const platform::PlatformId plat =
      parse_platform(flag_string(argc, argv, "--platform", "zoom"));
  const int cities = vcb::int_flag(argc, argv, "--cities", paper ? 8 : 4);
  const int meetings = vcb::int_flag(argc, argv, "--meetings", paper ? 24 : 13);
  const int participants = vcb::int_flag(argc, argv, "--participants", 7);
  const int overflow = vcb::int_flag(argc, argv, "--overflow", 6);
  std::vector<int> fleet_sizes;
  for (const auto& s : split_csv(flag_string(argc, argv, "--fleets", "1,2,4"))) {
    fleet_sizes.push_back(std::atoi(s.c_str()));
  }
  std::vector<fleet::PlacementPolicy> policies;
  for (const auto& s : split_csv(flag_string(argc, argv, "--policies", "rr,least,locality"))) {
    policies.push_back(fleet::parse_policy(s));
  }

  // Sweep cells: every fleet size × policy, `cities` tasks each, plus a
  // crash-failover cell on the largest fleet (least-loaded re-homing).
  std::vector<Cell> cells;
  for (const int f : fleet_sizes) {
    for (const auto policy : policies) {
      Cell c;
      c.fleet_size = f;
      c.policy = policy;
      c.key = "f" + std::to_string(f) + "/" + fleet::policy_name(policy);
      for (int i = 0; i < cities; ++i) cells.push_back(c);
    }
  }
  {
    Cell c;
    c.fleet_size = std::max<int>(2, fleet_sizes.back());
    c.policy = fleet::PlacementPolicy::kLeastLoaded;
    c.crash = true;
    c.key = "f" + std::to_string(c.fleet_size) + "/least/crash";
    for (int i = 0; i < cities; ++i) cells.push_back(c);
  }

  const auto task = [&cells, plat, meetings, participants, overflow,
                     shards](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    core::CityScaleConfig cfg;
    cfg.platform = plat;
    cfg.fleet_size = c.fleet_size;
    cfg.policy = c.policy;
    cfg.overflow_shard_size = c.fleet_size > 1 ? overflow : 0;
    cfg.meetings = meetings;
    cfg.participants_per_meeting = participants;
    cfg.inject_crash = c.crash;
    cfg.fan_out_shards = shards;
    cfg.seed = ctx.seed;
    cfg.metrics = &ctx.metrics;
    cfg.tracer = ctx.tracer;
    const auto r = core::run_city_scale_benchmark(cfg);
    ctx.sample(c.key + ".completed", static_cast<double>(r.meetings_completed));
    ctx.sample(c.key + ".join_timeouts", static_cast<double>(r.join_timeouts));
    ctx.sample(c.key + ".clients", static_cast<double>(r.clients));
    ctx.sample(c.key + ".relays", static_cast<double>(r.relays_created));
    ctx.sample(c.key + ".trunk_delivered", static_cast<double>(r.trunk_delivered_packets));
    ctx.sample(c.key + ".trunk_dropped", static_cast<double>(r.trunk_dropped_packets));
    if (c.crash) {
      ctx.sample(c.key + ".lost_in_outage", static_cast<double>(r.packets_lost_in_outage));
      ctx.sample(c.key + ".reconnects", static_cast<double>(r.reconnects));
    }
    sample_quantiles(ctx, c.key + ".lag", r.lag_ms);
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 9090;
  rc.label = "city_scale";
  rc.threads = 1;
  rc.rate_counters = {"city.sim_events", "city.sim_bytes"};
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);
  // Placement-replica check: the identical sweep again — fleet decisions
  // must be a pure function of (seed, config), never of scheduling.
  const auto replica = runner::ExperimentRunner{rc}.run(cells.size(), task);

  TextTable table{{"cell", "clients", "done", "relays", "trunk pkts", "trunk drop",
                   "lag p50 (ms)", "lag p90 (ms)"}};
  auto cell_num = [&report](const std::string& key, int digits) {
    const auto* s = report.find_sample(key);
    return s ? TextTable::num(s->mean(), digits) : std::string{"-"};
  };
  std::vector<std::string> seen;
  for (const Cell& c : cells) {
    if (std::find(seen.begin(), seen.end(), c.key) != seen.end()) continue;
    seen.push_back(c.key);
    table.add_row({c.key, cell_num(c.key + ".clients", 0), cell_num(c.key + ".completed", 1),
                   cell_num(c.key + ".relays", 1), cell_num(c.key + ".trunk_delivered", 0),
                   cell_num(c.key + ".trunk_dropped", 0), cell_num(c.key + ".lag.p50", 1),
                   cell_num(c.key + ".lag.p90", 1)});
  }
  std::printf("%s\n", table.render().c_str());

  double total_clients = 0.0;
  for (const auto& [name, s] : report.samples) {
    if (name.size() > 8 && name.compare(name.size() - 8, 8, ".clients") == 0) {
      total_clients += s.sum();
    }
  }
  std::printf("sweep total: %.0f simulated participants across %zu city tasks "
              "(%.0f across the 1-thread, 8-thread, and replica passes)\n",
              total_clients, report.sessions, total_clients * 3);
  for (const auto& [name, value] : report.rates) {
    std::printf("rate %s: %.0f\n", name.c_str(), value);
  }

  const bool identical = serial.aggregate_json() == report.aggregate_json() &&
                         report.aggregate_json() == replica.aggregate_json();
  std::printf("sessions: %zu  failures: %zu  fan_out_shards: %d\n", report.sessions,
              report.failures.size(), shards);
  std::printf("wall clock: %.2f s at 1 thread, %.2f s at 8 threads — speedup %.2fx\n",
              serial.wall_seconds, report.wall_seconds,
              report.wall_seconds > 0 ? serial.wall_seconds / report.wall_seconds : 0.0);
  std::printf("aggregate reports bit-identical across thread counts and replicas: %s\n",
              identical ? "yes" : "NO — determinism regression!");

  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical && report.failures.empty() ? 0 : 1;
}
