// Extension (Section 6, "Effect of last mile"): the paper's cloud vantage
// points are too clean; it calls for QoE analysis under realistic last-mile
// conditions — bursty loss, jitter, and *dynamic* bandwidth variation, not
// just static caps. Three experiments on a two-party Zoom call:
//
//  E1. Loss burstiness at a fixed average rate: Bernoulli vs Gilbert–Elliott
//      with increasing burst lengths. For a codec whose frames span several
//      packets, *independent* loss is the worst case — nearly every frame
//      loses at least one fragment — while bursts concentrate the same
//      average damage into fewer frames, so QoE recovers with burst length.
//  E2. Last-mile jitter: raising path jitter inflates lag percentiles but
//      barely touches QoE (frames reassemble regardless of intra-frame
//      ordering).
//  E3. Dynamic bandwidth: an oscillating cap vs a static cap with the same
//      time average; adaptation lag makes oscillation strictly worse.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "capture/rate_analyzer.h"
#include "client/media_feeder.h"
#include "client/recorder.h"
#include "client/vca_client.h"
#include "media/align.h"
#include "media/feeds.h"
#include "media/qoe/video_metrics.h"
#include "net/loss.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace {

using namespace vc;

struct RunResult {
  double psnr = 0;
  double ssim = 0;
  double delivery = 0;
  double down_kbps = 0;
};

// One two-party Zoom session, host US-East → receiver US-East, with optional
// receiver-side impairments.
RunResult run_session(std::unique_ptr<net::LossModel> ingress_loss, double jitter_mean_ms,
                      std::function<void(testbed::CloudTestbed&, net::Host&)> impair,
                      std::uint64_t seed) {
  testbed::CloudTestbed::Config bed_cfg;
  bed_cfg.seed = seed;
  bed_cfg.latency.jitter_mean_ms = jitter_mean_ms;
  testbed::CloudTestbed bed{bed_cfg};
  auto zoom = platform::make_platform(platform::PlatformId::kZoom, bed.network(), seed ^ 0xE);
  net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 0);
  net::Host& rx_vm = bed.create_vm(testbed::site_by_name("US-East"), 1);
  if (ingress_loss) rx_vm.set_ingress_loss(std::move(ingress_loss));
  if (impair) impair(bed, rx_vm);

  const int content_w = 128;
  const int content_h = 96;
  const int pad = 16;
  auto content = std::make_shared<media::TalkingHeadFeed>(
      media::FeedParams{content_w, content_h, 10.0, seed ^ 0xF00D});
  auto padded = std::make_shared<media::PaddedFeed>(content, pad);

  client::VcaClient::Config host_cfg;
  host_cfg.send_audio = false;
  host_cfg.decode_video = false;
  host_cfg.video_width = content_w + 2 * pad;
  host_cfg.video_height = content_h + 2 * pad;
  host_cfg.fps = 10.0;
  host_cfg.ui_border = 8;
  host_cfg.motion = platform::MotionClass::kLowMotion;
  host_cfg.seed = seed;
  client::VcaClient host{host_vm, *zoom, host_cfg};
  auto rx_cfg = host_cfg;
  rx_cfg.send_video = false;
  rx_cfg.decode_video = true;
  client::VcaClient rx{rx_vm, *zoom, rx_cfg};
  client::MediaFeeder feeder{bed.loop(), host.video_device(), host.audio_device()};
  client::DesktopRecorder recorder{rx, 10.0};
  capture::PacketCapture rx_cap{rx_vm, bed.clock_offset(rx_vm)};

  const auto duration = seconds(15);
  testbed::SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.participants = {&rx};
  plan.media_duration = duration;
  plan.on_all_joined = [&] {
    feeder.play_video(padded, duration);
    recorder.start(duration);
  };
  testbed::SessionOrchestrator orch{std::move(plan)};
  orch.start();
  bed.run_all();

  RunResult out;
  const auto cropped = media::crop_and_resize(recorder.video(), pad, content_w, content_h);
  if (cropped.frames.size() >= 12) {
    std::vector<media::Frame> reference;
    for (std::size_t k = 0; k < cropped.frames.size(); ++k) {
      reference.push_back(content->frame_at(static_cast<std::int64_t>(k)));
    }
    const auto shift = media::best_temporal_shift(reference, cropped.frames, 10);
    const auto aligned = media::align_sequences(reference, cropped.frames, shift);
    double psnr = 0;
    double ssim = 0;
    int n = 0;
    for (std::size_t k = 0; k < aligned.reference.size(); k += 5) {
      psnr += media::qoe::psnr(aligned.reference[k], aligned.recording[k]);
      ssim += media::qoe::ssim(aligned.reference[k], aligned.recording[k]);
      ++n;
    }
    out.psnr = psnr / n;
    out.ssim = ssim / n;
  }
  if (host.stats().video_frames_sent > 0) {
    out.delivery = static_cast<double>(rx.stats().video_frames_completed) /
                   static_cast<double>(host.stats().video_frames_sent);
  }
  out.down_kbps = capture::RateAnalyzer{rx_cap.trace()}.average().download.as_kbps();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Extension — last-mile effects (Zoom, two-party)", paper);

  std::printf("--- E1: loss burstiness at 3%% average loss ---\n");
  {
    TextTable table{{"loss pattern", "PSNR", "SSIM", "frames delivered"}};
    auto row = [&](const char* label, std::unique_ptr<net::LossModel> loss) {
      const auto r = run_session(std::move(loss), 0.3, nullptr, 211);
      table.add_row({label, TextTable::num(r.psnr, 1), TextTable::num(r.ssim, 3),
                     TextTable::num(r.delivery, 2)});
    };
    row("lossless", nullptr);
    row("Bernoulli 3%", std::make_unique<net::BernoulliLoss>(0.03));
    row("bursts of ~4 pkts",
        std::make_unique<net::GilbertElliottLoss>(net::GilbertElliottLoss::with_average(0.03, 4)));
    row("bursts of ~16 pkts",
        std::make_unique<net::GilbertElliottLoss>(net::GilbertElliottLoss::with_average(0.03, 16)));
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("--- E2: last-mile jitter ---\n");
  {
    TextTable table{{"path jitter (exp mean, ms)", "PSNR", "frames delivered"}};
    for (const double jitter : {0.3, 3.0, 10.0}) {
      const auto r = run_session(nullptr, jitter, nullptr, 223);
      table.add_row({TextTable::num(jitter, 1), TextTable::num(r.psnr, 1),
                     TextTable::num(r.delivery, 2)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("--- E3: dynamic vs static bandwidth (same ~600 Kbps average) ---\n");
  {
    TextTable table{{"bandwidth pattern", "PSNR", "SSIM", "frames delivered"}};
    // Static 600 Kbps.
    {
      const auto r = run_session(nullptr, 0.3,
                                 [](testbed::CloudTestbed& bed, net::Host& rx) {
                                   rx.set_ingress_shaper(std::make_unique<net::TokenBucketShaper>(
                                       bed.loop(), DataRate::kbps(600), 24'000, 100));
                                 },
                                 233);
      table.add_row({"static 600 Kbps", TextTable::num(r.psnr, 1), TextTable::num(r.ssim, 3),
                     TextTable::num(r.delivery, 2)});
    }
    // Oscillating 1000/200 Kbps every 3 s.
    {
      const auto r = run_session(
          nullptr, 0.3,
          [](testbed::CloudTestbed& bed, net::Host& rx) {
            auto shaper = std::make_unique<net::TokenBucketShaper>(bed.loop(),
                                                                   DataRate::kbps(1000), 24'000, 100);
            net::TokenBucketShaper* raw = shaper.get();
            rx.set_ingress_shaper(std::move(shaper));
            // tc-style periodic rate changes, bounded so the loop drains.
            auto flip = std::make_shared<std::function<void(bool, int)>>();
            net::EventLoop* loop = &bed.loop();
            *flip = [loop, raw, flip](bool high, int remaining) {
              raw->set_rate(high ? DataRate::kbps(1000) : DataRate::kbps(200));
              if (remaining > 0) {
                loop->schedule_after(seconds(3),
                                     [flip, high, remaining] { (*flip)(!high, remaining - 1); });
              }
            };
            loop->schedule_after(seconds(3), [flip] { (*flip)(false, 8); });
          },
          233);
      table.add_row({"oscillating 1000/200 Kbps", TextTable::num(r.psnr, 1),
                     TextTable::num(r.ssim, 3), TextTable::num(r.delivery, 2)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
