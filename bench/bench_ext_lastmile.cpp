// Extension (Section 6, "Effect of last mile"): the paper's cloud vantage
// points are too clean; it calls for QoE analysis under realistic last-mile
// conditions — bursty loss, jitter, and *dynamic* bandwidth variation, not
// just static caps. Three experiments on a two-party Zoom call:
//
//  E1. Loss burstiness at a fixed average rate: Bernoulli vs Gilbert–Elliott
//      with increasing burst lengths. For a codec whose frames span several
//      packets, *independent* loss is the worst case — nearly every frame
//      loses at least one fragment — while bursts concentrate the same
//      average damage into fewer frames, so QoE recovers with burst length.
//  E2. Last-mile jitter: raising path jitter inflates lag percentiles but
//      barely touches QoE (frames reassemble regardless of intra-frame
//      ordering).
//  E3. Dynamic bandwidth: an oscillating cap vs a static cap with the same
//      time average; adaptation lag makes oscillation strictly worse.
//
// All nine conditions run as independent session tasks on the parallel
// experiment runner; the E3 token-bucket shapers report through the
// per-session MetricsRegistry.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "capture/rate_analyzer.h"
#include "client/media_feeder.h"
#include "client/recorder.h"
#include "client/vca_client.h"
#include "media/align.h"
#include "media/feeds.h"
#include "media/qoe/video_metrics.h"
#include "net/loss.h"
#include "platform/base_platform.h"
#include "runner/experiment_runner.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace {

using namespace vc;

struct RunResult {
  double psnr = 0;
  double ssim = 0;
  double delivery = 0;
  double down_kbps = 0;
};

using Impair = std::function<void(testbed::CloudTestbed&, net::Host&, MetricsRegistry&)>;

// One two-party Zoom session, host US-East → receiver US-East, with optional
// receiver-side impairments.
RunResult run_session(std::unique_ptr<net::LossModel> ingress_loss, double jitter_mean_ms,
                      const Impair& impair, std::uint64_t seed, MetricsRegistry& metrics) {
  testbed::CloudTestbed::Config bed_cfg;
  bed_cfg.seed = seed;
  bed_cfg.latency.jitter_mean_ms = jitter_mean_ms;
  testbed::CloudTestbed bed{bed_cfg};
  auto zoom = platform::make_platform(platform::PlatformId::kZoom, bed.network(), seed ^ 0xE);
  net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 0);
  net::Host& rx_vm = bed.create_vm(testbed::site_by_name("US-East"), 1);
  if (ingress_loss) rx_vm.set_ingress_loss(std::move(ingress_loss));
  if (impair) impair(bed, rx_vm, metrics);

  const int content_w = 128;
  const int content_h = 96;
  const int pad = 16;
  auto content = std::make_shared<media::TalkingHeadFeed>(
      media::FeedParams{content_w, content_h, 10.0, seed ^ 0xF00D});
  auto padded = std::make_shared<media::PaddedFeed>(content, pad);

  client::VcaClient::Config host_cfg;
  host_cfg.send_audio = false;
  host_cfg.decode_video = false;
  host_cfg.video_width = content_w + 2 * pad;
  host_cfg.video_height = content_h + 2 * pad;
  host_cfg.fps = 10.0;
  host_cfg.ui_border = 8;
  host_cfg.motion = platform::MotionClass::kLowMotion;
  host_cfg.seed = seed;
  client::VcaClient host{host_vm, *zoom, host_cfg};
  auto rx_cfg = host_cfg;
  rx_cfg.send_video = false;
  rx_cfg.decode_video = true;
  client::VcaClient rx{rx_vm, *zoom, rx_cfg};
  client::MediaFeeder feeder{bed.loop(), host.video_device(), host.audio_device()};
  client::DesktopRecorder recorder{rx, 10.0};
  capture::PacketCapture rx_cap{rx_vm, bed.clock_offset(rx_vm)};

  const auto duration = seconds(15);
  testbed::SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.participants = {&rx};
  plan.media_duration = duration;
  plan.metrics = &metrics;
  plan.on_all_joined = [&] {
    feeder.play_video(padded, duration);
    recorder.start(duration);
  };
  testbed::SessionOrchestrator orch{std::move(plan)};
  orch.start();
  bed.run_all();

  RunResult out;
  const auto cropped = media::crop_and_resize(recorder.video(), pad, content_w, content_h);
  if (cropped.frames.size() >= 12) {
    std::vector<media::Frame> reference;
    for (std::size_t k = 0; k < cropped.frames.size(); ++k) {
      reference.push_back(content->frame_at(static_cast<std::int64_t>(k)));
    }
    const auto shift = media::best_temporal_shift(reference, cropped.frames, 10);
    const auto aligned = media::align_sequences(reference, cropped.frames, shift);
    double psnr = 0;
    double ssim = 0;
    int n = 0;
    for (std::size_t k = 0; k < aligned.reference.size(); k += 5) {
      psnr += media::qoe::psnr(aligned.reference[k], aligned.recording[k]);
      ssim += media::qoe::ssim(aligned.reference[k], aligned.recording[k]);
      ++n;
    }
    out.psnr = psnr / n;
    out.ssim = ssim / n;
  }
  if (host.stats().video_frames_sent > 0) {
    out.delivery = static_cast<double>(rx.stats().video_frames_completed) /
                   static_cast<double>(host.stats().video_frames_sent);
  }
  out.down_kbps = capture::RateAnalyzer{rx_cap.trace()}.average().download.as_kbps();
  return out;
}

struct Condition {
  std::string section;  // "E1", "E2", "E3"
  std::string label;
  std::function<std::unique_ptr<net::LossModel>()> loss;  // null = lossless
  double jitter_mean_ms = 0.3;
  Impair impair;  // null = no shaping
  std::string key() const { return section + "/" + label; }
};

Impair static_shaper(int kbps) {
  return [kbps](testbed::CloudTestbed& bed, net::Host& rx, MetricsRegistry& metrics) {
    auto shaper = std::make_unique<net::TokenBucketShaper>(bed.loop(), DataRate::kbps(kbps),
                                                           24'000, 100);
    shaper->attach_metrics(metrics);
    rx.set_ingress_shaper(std::move(shaper));
  };
}

Impair oscillating_shaper(int hi_kbps, int lo_kbps) {
  return [hi_kbps, lo_kbps](testbed::CloudTestbed& bed, net::Host& rx, MetricsRegistry& metrics) {
    auto shaper =
        std::make_unique<net::TokenBucketShaper>(bed.loop(), DataRate::kbps(hi_kbps), 24'000, 100);
    shaper->attach_metrics(metrics);
    net::TokenBucketShaper* raw = shaper.get();
    rx.set_ingress_shaper(std::move(shaper));
    // tc-style periodic rate changes, bounded so the loop drains.
    auto flip = std::make_shared<std::function<void(bool, int)>>();
    net::EventLoop* loop = &bed.loop();
    *flip = [loop, raw, flip, hi_kbps, lo_kbps](bool high, int remaining) {
      raw->set_rate(DataRate::kbps(high ? hi_kbps : lo_kbps));
      if (remaining > 0) {
        loop->schedule_after(seconds(3),
                             [flip, high, remaining] { (*flip)(!high, remaining - 1); });
      }
    };
    loop->schedule_after(seconds(3), [flip] { (*flip)(false, 8); });
  };
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Extension — last-mile effects (Zoom, two-party)", paper);

  std::vector<Condition> conditions;
  auto add = [&conditions](Condition c) { conditions.push_back(std::move(c)); };
  // E1: loss burstiness at 3% average loss.
  add({"E1", "lossless", nullptr, 0.3, nullptr});
  add({"E1", "Bernoulli 3%", [] { return std::make_unique<net::BernoulliLoss>(0.03); }, 0.3,
       nullptr});
  add({"E1", "bursts of ~4 pkts",
       [] {
         return std::make_unique<net::GilbertElliottLoss>(
             net::GilbertElliottLoss::with_average(0.03, 4));
       },
       0.3, nullptr});
  add({"E1", "bursts of ~16 pkts",
       [] {
         return std::make_unique<net::GilbertElliottLoss>(
             net::GilbertElliottLoss::with_average(0.03, 16));
       },
       0.3, nullptr});
  // E2: last-mile jitter.
  for (const double jitter : {0.3, 3.0, 10.0}) {
    add({"E2", TextTable::num(jitter, 1), nullptr, jitter, nullptr});
  }
  // E3: dynamic vs static bandwidth (same ~600 Kbps average).
  add({"E3", "static 600 Kbps", nullptr, 0.3, static_shaper(600)});
  add({"E3", "oscillating 1000/200 Kbps", nullptr, 0.3, oscillating_shaper(1000, 200)});

  const auto task = [&conditions](runner::SessionContext& ctx) {
    const Condition& c = conditions[ctx.task_index];
    const auto r = run_session(c.loss ? c.loss() : nullptr, c.jitter_mean_ms, c.impair, ctx.seed,
                               ctx.metrics);
    ctx.sample(c.key() + ".psnr", r.psnr);
    ctx.sample(c.key() + ".ssim", r.ssim);
    ctx.sample(c.key() + ".delivery", r.delivery);
    ctx.sample(c.key() + ".down_kbps", r.down_kbps);
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 211;
  rc.label = "ext_lastmile";
  const auto report = runner::ExperimentRunner{rc}.run(conditions.size(), task);

  auto value = [&report](const Condition& c, const char* metric) {
    const auto* s = report.find_sample(c.key() + "." + metric);
    return s ? s->mean() : 0.0;
  };

  std::printf("--- E1: loss burstiness at 3%% average loss ---\n");
  {
    TextTable table{{"loss pattern", "PSNR", "SSIM", "frames delivered"}};
    for (const auto& c : conditions) {
      if (c.section != "E1") continue;
      table.add_row({c.label, TextTable::num(value(c, "psnr"), 1),
                     TextTable::num(value(c, "ssim"), 3), TextTable::num(value(c, "delivery"), 2)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("--- E2: last-mile jitter ---\n");
  {
    TextTable table{{"path jitter (exp mean, ms)", "PSNR", "frames delivered"}};
    for (const auto& c : conditions) {
      if (c.section != "E2") continue;
      table.add_row({c.label, TextTable::num(value(c, "psnr"), 1),
                     TextTable::num(value(c, "delivery"), 2)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("--- E3: dynamic vs static bandwidth (same ~600 Kbps average) ---\n");
  {
    TextTable table{{"bandwidth pattern", "PSNR", "SSIM", "frames delivered"}};
    for (const auto& c : conditions) {
      if (c.section != "E3") continue;
      table.add_row({c.label, TextTable::num(value(c, "psnr"), 1),
                     TextTable::num(value(c, "ssim"), 3), TextTable::num(value(c, "delivery"), 2)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("run: %zu sessions, %zu failures, %.2f s wall on %zu threads\n", report.sessions,
              report.failures.size(), report.wall_seconds, report.threads);
  const auto dropped = report.counters.find("shaper.dropped_packets");
  const auto forwarded = report.counters.find("shaper.forwarded_packets");
  if (dropped != report.counters.end() && forwarded != report.counters.end()) {
    std::printf("E3 shapers: %lld packets forwarded, %lld dropped at the token bucket\n",
                static_cast<long long>(forwarded->second),
                static_cast<long long>(dropped->second));
  }
  const std::string out_path = "bench_ext_lastmile.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return 0;
}
