// Long-run soak benchmark: the always-on perf trajectory (PR 7).
//
// Replays a mixed workload in timed epochs — video encode+decode, serial
// relay fan-out, a competing-flow fairness session, audio encode+decode,
// and a metrics-timeline sampling session (PR 9) — and emits the whole
// time-series as one JSON report. Where the other
// bench gates are point-in-time A/B comparisons, this one watches for
// *drift within a single long run*: allocator fragmentation, cache
// pollution, accidental state accumulation (growing maps, unbounded pools)
// all show up as the later epochs running slower than the earlier ones.
//
// Checks, in order of exit code:
//   1 — any leg's output digest changes between epochs: the workload is
//       seeded and repeated verbatim, so a digest that moves means hidden
//       mutable state leaked across epochs (a determinism regression);
//   2 — `--gate <ratio>`: for each leg, drift = best epoch time of the
//       first half / best of the second half, on calibration-normalized
//       times; fails when any leg's drift falls below the ratio *relative
//       to the median drift across legs* (CI runs --gate 0.80). Best-of-half
//       rather than medians for the same reason bench_shard_fanout's trace
//       gate uses best-of-rounds: scheduler noise only ever adds time, so
//       min/min isolates intrinsic drift — a real leak slows even the best
//       epoch. Relative rather than absolute because sustained co-tenant
//       load can slow a whole half of the run on a shared machine; that
//       moves every leg together and cancels out of the ratio, while a
//       genuine leak slows its own leg relative to the rest;
//   4 — `--baseline <file>`: the per-leg digests and work counts must match
//       the checked-in baseline exactly — the cross-run determinism anchor
//       (timings in the baseline are informational; machines differ).
//
// The report (default BENCH_SOAK.json, `--out` to move) is shaped like an
// ExperimentRunner run report, so `vcbench_cli report BENCH_SOAK.json`
// renders the per-leg epoch-time and throughput distributions; the raw
// "epochs" array holds the full time-series for plotting.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/metrics_timeline.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/fairness_benchmark.h"
#include "fleet/relay_fleet.h"
#include "health/health_monitor.h"
#include "net/event_loop.h"
#include "media/audio_codec.h"
#include "media/dct8.h"
#include "media/feeds.h"
#include "media/video_codec.h"
#include "platform/base_platform.h"
#include "platform/relay.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;
using namespace vc::media;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;

struct LegResult {
  double seconds = 0.0;
  std::uint64_t digest = kFnvBasis;
  std::int64_t items = 0;
};

// --- codec leg: video encode + decode, digesting the full output ----------

struct CodecLeg {
  std::vector<Frame> frames;
  int frames_per_epoch;
  CodecLeg(int w, int h, int n) : frames_per_epoch(n) {
    TourGuideFeed feed{{w, h, 15.0, 3}};
    for (int i = 0; i < 10; ++i) frames.push_back(feed.frame_at(i));
  }
  LegResult run() const {
    const int w = frames[0].width();
    const int h = frames[0].height();
    VideoEncoder::Config cfg;
    cfg.target_bitrate = DataRate::kbps(800);
    cfg.fps = 15.0;
    VideoEncoder enc{w, h, cfg};
    VideoDecoder dec{w, h};
    LegResult out{};
    out.items = frames_per_epoch;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < frames_per_epoch; ++i) {
      const auto f = enc.encode(frames[static_cast<std::size_t>(i) % frames.size()]);
      fnv_mix(out.digest, static_cast<std::uint64_t>(f->bytes));
      for (const std::int16_t c : f->coeffs) {
        fnv_mix(out.digest, static_cast<std::uint64_t>(static_cast<std::uint16_t>(c)));
      }
      dec.decode(*f);
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    const Frame& last = dec.current();
    for (std::size_t i = 0; i < last.size(); ++i) fnv_mix(out.digest, last.data()[i]);
    return out;
  }
};

// --- relay leg: one serial fan-out meeting, digesting every delivery ------

LegResult run_relay_leg(int n, int frames) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(3)), 99};
  platform::RelayServer relay{net, "relay", GeoPoint{38.9, -77.4}, 8801,
                              platform::RelayServer::ForwardingDelay{millis(2), 2.0}};
  LegResult out{};
  out.items = static_cast<std::int64_t>(n) * frames;
  auto* digest = &out.digest;
  std::vector<net::Host*> hosts;
  for (int i = 0; i < n; ++i) {
    net::Host& h = net.add_host("c" + std::to_string(i), GeoPoint{40.0, -75.0});
    auto& sock = h.udp_bind(100);
    const std::uint64_t rx_tag = static_cast<std::uint64_t>(i) << 48;
    sock.on_receive([digest, rx_tag, &net](const net::Packet& p) {
      fnv_mix(*digest, rx_tag | p.origin_id);
      fnv_mix(*digest, p.seq);
      fnv_mix(*digest, static_cast<std::uint64_t>(net.now().micros()));
    });
    relay.add_participant(1, static_cast<platform::ParticipantId>(i + 1), {h.ip(), 100});
    hosts.push_back(&h);
  }
  for (int f = 0; f < frames; ++f) {
    for (int i = 0; i < n; ++i) {
      net::Host* h = hosts[static_cast<std::size_t>(i)];
      const std::uint32_t origin = static_cast<std::uint32_t>(i + 1);
      const std::uint64_t seq = static_cast<std::uint64_t>(f);
      const std::int64_t l7 = 700 + 53 * ((f + i) % 13);
      net.loop().schedule_at(SimTime{f * 33'000 + i * 211}, [h, &relay, origin, seq, l7] {
        net::Packet p;
        p.dst = relay.endpoint();
        p.l7_len = l7;
        p.kind = net::StreamKind::kVideo;
        p.origin_id = origin;
        p.seq = seq;
        h->udp_socket(100)->send(std::move(p));
      });
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  net.loop().run();
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

// --- fairness leg: a short competing-flow session -------------------------

LegResult run_fairness_leg() {
  core::FairnessBenchmarkConfig cfg;
  cfg.flows = core::default_fairness_flows(3);
  cfg.media_duration = seconds(6);
  LegResult out{};
  const auto t0 = std::chrono::steady_clock::now();
  const core::FairnessBenchmarkResult r = core::run_fairness_session(cfg, 424247);
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.items = static_cast<std::int64_t>(r.flows.size());
  auto mix_d = [&out](double v) { fnv_mix(out.digest, std::bit_cast<std::uint64_t>(v)); };
  mix_d(r.jain_index);
  mix_d(r.utilization);
  mix_d(r.drop_fraction);
  mix_d(r.queue_delay_mean_ms);
  for (const auto& f : r.flows) {
    mix_d(f.achieved_kbps);
    mix_d(f.share);
    mix_d(f.convergence_seconds);
    mix_d(f.final_target_kbps);
    fnv_mix(out.digest, static_cast<std::uint64_t>(f.abr_decisions));
  }
  return out;
}

// --- timeline leg: sampler + SLO monitor under metric churn ---------------
//
// A synthetic event-loop workload mutates a registry once per simulated
// millisecond while an enabled MetricsTimeline samples it every 10 ms into a
// 64-slot ring (the 4 s run wraps it several times, so base folding is on the
// digested path) and a HealthMonitor with rules that genuinely fire — and one
// that stays open until finalize() — watches every snapshot. The digest
// covers the exported timeline + health JSON byte-for-byte, so any drift in
// sampling cadence, delta encoding, ring eviction, or breach edge-triggering
// across epochs (or across code changes, via the baseline) trips the
// determinism checks.
LegResult run_timeline_leg() {
  net::EventLoop loop;
  MetricsRegistry reg;
  auto* work = &reg.counter("soak.work");
  auto* burst = &reg.counter("soak.burst");
  auto* depth = &reg.gauge("soak.depth");
  auto* latency = &reg.histogram("soak.latency_ms");

  MetricsTimeline::Config tcfg;
  tcfg.interval = millis(10);
  tcfg.capacity = 64;
  MetricsTimeline timeline{tcfg};
  timeline.set_enabled(true);

  health::HealthMonitor monitor;
  // Triangle-wave gauge crosses 40 every period: repeated begin/end edges,
  // with a min_duration long enough to need several consecutive bad samples.
  monitor.add_rule({.rule = "depth-bounded",
                    .metric = "soak.depth",
                    .field = health::SloRule::Field::kValue,
                    .op = health::SloRule::Op::kLe,
                    .threshold = 40.0,
                    .severity = health::Severity::kWarning,
                    .min_duration = millis(30)});
  // Bursts happen only in odd 250 ms windows: delta-field edges every window.
  monitor.add_rule({.rule = "burst-quiet",
                    .metric = "soak.burst",
                    .field = health::SloRule::Field::kDelta,
                    .op = health::SloRule::Op::kEq,
                    .threshold = 0.0,
                    .severity = health::Severity::kInfo});
  // The running max only climbs, so once this breaches it never recovers —
  // finalize() has to close it (the close lands in the digested event list).
  monitor.add_rule({.rule = "latency-sane",
                    .metric = "soak.latency_ms",
                    .field = health::SloRule::Field::kMax,
                    .op = health::SloRule::Op::kLt,
                    .threshold = 9.5,
                    .severity = health::Severity::kCritical});
  monitor.bind(&reg, nullptr);
  timeline.set_observer(&monitor);

  const SimDuration span = seconds(4);
  timeline.arm(loop, reg, SimTime::zero(), SimTime::zero() + span);
  auto rng = std::make_shared<Rng>(20260808);
  // One workload event per 50 us of sim time — enough real work per epoch
  // (several ms) that the drift gate measures the leg, not scheduler noise.
  for (int k = 0; k < 80'000; ++k) {
    loop.schedule_at(SimTime{k * 50}, [work, burst, depth, latency, rng, k] {
      const int ms = k / 20;
      work->inc();
      if ((ms / 250) % 2 == 1) burst->inc();
      const int phase = ms % 500;  // triangle wave, period 500 ms, peak 62
      depth->set(static_cast<double>(phase < 250 ? phase : 500 - phase) / 4.0);
      latency->observe(rng->uniform(0.0, 10.0));
    });
  }

  LegResult out{};
  const auto t0 = std::chrono::steady_clock::now();
  loop.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  timeline.finalize();
  out.items = static_cast<std::int64_t>(timeline.total_samples());
  const std::string tl_json = timeline.to_json();
  const std::string health_json = monitor.to_json();
  for (const char c : tl_json) fnv_mix(out.digest, static_cast<unsigned char>(c));
  for (const char c : health_json) fnv_mix(out.digest, static_cast<unsigned char>(c));
  return out;
}

// --- audio leg: encode + decode deterministic PCM -------------------------

struct AudioLeg {
  std::vector<float> pcm;  // frames_per_epoch contiguous frames
  int frames_per_epoch;
  int frame_samples;
  explicit AudioLeg(int n) : frames_per_epoch(n) {
    AudioEncoder probe{{}};
    frame_samples = probe.frame_samples();
    Rng rng{777};
    pcm.resize(static_cast<std::size_t>(n) * frame_samples);
    for (std::size_t i = 0; i < pcm.size(); ++i) {
      const double t = static_cast<double>(i) / 16'000.0;
      pcm[i] = static_cast<float>(0.5 * std::sin(2.0 * 3.141592653589793 * 440.0 * t) +
                                  0.1 * rng.uniform(-1.0, 1.0));
    }
  }
  LegResult run() const {
    AudioEncoder enc{{}};
    AudioDecoder dec{frame_samples};
    LegResult out{};
    out.items = frames_per_epoch;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < frames_per_epoch; ++i) {
      const auto f = enc.encode(std::span<const float>{
          pcm.data() + static_cast<std::size_t>(i) * frame_samples,
          static_cast<std::size_t>(frame_samples)});
      for (std::size_t k = 0; k < f->indices.size(); ++k) {
        fnv_mix(out.digest, (static_cast<std::uint64_t>(f->indices[k]) << 16) |
                                static_cast<std::uint16_t>(f->values[k]));
      }
      const auto decoded = dec.decode(*f);
      fnv_mix(out.digest, std::bit_cast<std::uint32_t>(decoded[0]));
      fnv_mix(out.digest, std::bit_cast<std::uint32_t>(decoded[decoded.size() / 2]));
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
  }
};

// --- fleet leg: trunked two-slot federation under membership churn --------
//
// A RelayFleet of 2 driven through its MeetingPlacer interface: one meeting
// overflow-split across both slots (trunked both ways), steady media from
// every member, and scripted churn — a leave plus replacement join, a relay
// crash whose members fail over to the trunked survivor mid-stream, and a
// post-restart expansion shard. The digest covers every delivery (receiver,
// origin, seq, arrival tick) plus the final trunk/slot accounting, so drift
// in balancer decisions, trunk pacing, or failover order trips the epoch
// and baseline checks.
LegResult run_fleet_leg(int frames) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(3)), 77};
  auto plat = platform::make_platform(platform::PlatformId::kZoom, net, 13);
  fleet::RelayFleet::Config fc;
  fc.size = 2;
  fc.policy = fleet::PlacementPolicy::kLeastLoaded;
  fc.overflow_shard_size = 4;  // members 1-8 split 4/4 across the slots
  fleet::RelayFleet fl{net, *plat, fc};

  LegResult out{};
  auto* digest = &out.digest;
  auto* items = &out.items;
  constexpr platform::MeetingId kMeeting = 1;
  const GeoPoint loc = platform::platform_sites(platform::PlatformId::kZoom)[0].location;

  struct Member {
    net::Host* host = nullptr;
    platform::RelayServer* home = nullptr;
    bool active = false;
  };
  std::vector<Member> members(11);  // ids 1..10
  auto join = [&](int id) {
    Member& m = members[static_cast<std::size_t>(id)];
    if (m.host == nullptr) {
      m.host = &net.add_host("fm" + std::to_string(id), GeoPoint{40.0, -75.0});
      auto& sock = m.host->udp_bind(100);
      const std::uint64_t rx_tag = static_cast<std::uint64_t>(id) << 48;
      sock.on_receive([digest, items, rx_tag, &net](const net::Packet& p) {
        fnv_mix(*digest, rx_tag | p.origin_id);
        fnv_mix(*digest, p.seq);
        fnv_mix(*digest, static_cast<std::uint64_t>(net.now().micros()));
        ++*items;
      });
    }
    platform::RelayServer* relay =
        fl.home_for(kMeeting, static_cast<platform::ParticipantId>(id), loc);
    if (relay == nullptr) return;
    relay->add_participant(kMeeting, static_cast<platform::ParticipantId>(id),
                           {m.host->ip(), 100});
    m.home = relay;
    m.active = true;
  };
  for (int id = 1; id <= 8; ++id) join(id);

  // Steady media: every active member streams at ~30 fps toward its current
  // home relay (updated in place on failover).
  for (int f = 0; f < frames; ++f) {
    for (int id = 1; id <= 10; ++id) {
      Member* m = &members[static_cast<std::size_t>(id)];
      const std::uint32_t origin = static_cast<std::uint32_t>(id);
      const std::uint64_t seq = static_cast<std::uint64_t>(f);
      const std::int64_t l7 = 600 + 41 * ((f + id) % 11);
      net.loop().schedule_at(SimTime{f * 33'000 + id * 307}, [m, origin, seq, l7] {
        if (!m->active || m->home == nullptr) return;
        net::Packet p;
        p.dst = m->home->endpoint();
        p.l7_len = l7;
        p.kind = net::StreamKind::kVideo;
        p.origin_id = origin;
        p.seq = seq;
        m->host->udp_socket(100)->send(std::move(p));
      });
    }
  }

  // Scripted churn, all at fixed sim times.
  net.loop().schedule_at(SimTime{2'000'000}, [&] {
    members[3].active = false;
    members[3].home->remove_participant(kMeeting, 3);
    fl.on_member_left(kMeeting, 3);
  });
  net.loop().schedule_at(SimTime{2'500'000}, [&] { join(9); });
  net.loop().schedule_at(SimTime{4'000'000}, [&] {
    platform::RelayServer* dead = fl.relay_of_slot(1);
    dead->crash();
    fl.on_relay_crashed(dead);
    for (int id = 1; id <= 10; ++id) {
      Member& m = members[static_cast<std::size_t>(id)];
      if (!m.active) continue;
      platform::RelayServer* target =
          fl.rehome(kMeeting, static_cast<platform::ParticipantId>(id));
      if (target == nullptr || target == m.home) continue;
      target->add_participant(kMeeting, static_cast<platform::ParticipantId>(id),
                              {m.host->ip(), 100});
      m.home = target;
      fnv_mix(*digest, 0xFA11'0000ULL | static_cast<std::uint64_t>(id));
    }
  });
  net.loop().schedule_at(SimTime{5'000'000}, [&] { fl.relay_of_slot(1)->restart(); });
  net.loop().schedule_at(SimTime{5'500'000}, [&] { join(10); });

  const auto t0 = std::chrono::steady_clock::now();
  net.loop().run();
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();

  // Final accounting: trunk forward/drop/delivery totals and slot load are
  // part of the digested contract, like relay metrics elsewhere.
  for (int i = 0; i < fl.size(); ++i) {
    for (int j = 0; j < fl.size(); ++j) {
      const fleet::Trunk* t = fl.trunk(i, j);
      if (t == nullptr) continue;
      fnv_mix(*digest, static_cast<std::uint64_t>(t->stats().delivered_packets));
      fnv_mix(*digest, static_cast<std::uint64_t>(t->stats().delivered_bytes));
      fnv_mix(*digest, static_cast<std::uint64_t>(t->shaper_stats().forwarded_packets));
      fnv_mix(*digest, static_cast<std::uint64_t>(t->shaper_stats().dropped_packets));
    }
    fnv_mix(*digest, static_cast<std::uint64_t>(fl.slot_participants(i)));
    fnv_mix(*digest, static_cast<std::uint64_t>(fl.slot_meetings(i)));
    const platform::RelayServer* r = fl.relay_of_slot(i);
    if (r != nullptr) {
      fnv_mix(*digest, static_cast<std::uint64_t>(r->stats().trunk_in));
      fnv_mix(*digest, static_cast<std::uint64_t>(r->stats().crash_dropped));
    }
  }
  return out;
}

// --------------------------------------------------------------------------

struct LegSeries {
  std::string name;
  std::uint64_t digest = 0;
  std::int64_t items = 0;
  std::vector<double> seconds;     // one per epoch (raw wall clock)
  std::vector<double> normalized;  // seconds / that epoch's calibration time
  double drift = 1.0;              // second-half / first-half throughput
  double drift_rel = 1.0;          // drift / median drift across legs
};

volatile std::uint64_t g_cal_sink = 0;

// A fixed integer spin measuring the machine's *current* speed. Leg times
// are divided by this before the drift comparison: machine-wide frequency
// scaling or co-tenant contention slows the spin and the legs alike (all
// are CPU-bound), so it cancels out, while a real regression in a leg slows
// only that leg relative to the spin.
double calibration_seconds() {
  std::uint64_t h = 14695981039346656037ULL;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < 20'000'000; ++i) {
    h = (h ^ i) * 1099511628211ULL;
  }
  const auto t1 = std::chrono::steady_clock::now();
  g_cal_sink = h;  // defeat dead-code elimination
  return std::chrono::duration<double>(t1 - t0).count();
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void append_stats(std::string& out, const char* name, const RunningStats& s, bool last = false) {
  out += std::string{"    \""} + name + "\": {\"count\": " + std::to_string(s.count()) +
         ", \"mean\": " + json::format_number(s.mean()) +
         ", \"stddev\": " + json::format_number(s.stddev()) +
         ", \"min\": " + json::format_number(s.min()) +
         ", \"max\": " + json::format_number(s.max()) +
         ", \"sum\": " + json::format_number(s.sum()) + "}";
  out += last ? "\n" : ",\n";
}

double flag_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int epochs = std::max(4, vcb::int_flag(argc, argv, "--epochs", 12));
  const int codec_frames = std::max(8, vcb::int_flag(argc, argv, "--codec-frames", 60));
  const int audio_frames = std::max(8, vcb::int_flag(argc, argv, "--audio-frames", 200));
  const int relay_n = std::max(8, vcb::int_flag(argc, argv, "--relay-n", 24));
  const double gate = flag_double(argc, argv, "--gate", 0.0);
  const std::string baseline_path = flag_string(argc, argv, "--baseline", "");
  const std::string out_path = flag_string(argc, argv, "--out", "BENCH_SOAK.json");

  std::printf("soak: %d epochs (codec %d frames, audio %d frames, relay n=%d), backend=%s, "
              "gate=%.2f\n",
              epochs, codec_frames, audio_frames, relay_n,
              dct_backend_name(active_dct_backend()), gate);

  const CodecLeg codec_leg{128, 96, codec_frames};
  const AudioLeg audio_leg{audio_frames};
  // Enough frames that the leg runs ~25 ms/epoch: the drift gate compares
  // best-of-half wall clocks, and a leg in the low-millisecond range is
  // dominated by scheduler noise rather than by its own speed.
  const int relay_frames = 300;
  // ~46 s simulated (all churn events fire early) and ~20 ms/epoch — above
  // the scheduler-noise floor for the same reason as relay_frames.
  const int fleet_frames = 1400;

  std::vector<LegSeries> legs(6);
  legs[0].name = "codec";
  legs[1].name = "relay";
  legs[2].name = "fairness";
  legs[3].name = "audio";
  legs[4].name = "timeline";
  legs[5].name = "fleet";
  auto run_leg = [&](std::size_t idx) -> LegResult {
    switch (idx) {
      case 0: return codec_leg.run();
      case 1: return run_relay_leg(relay_n, relay_frames);
      case 2: return run_fairness_leg();
      case 3: return audio_leg.run();
      case 4: return run_timeline_leg();
      default: return run_fleet_leg(fleet_frames);
    }
  };

  // One untimed warm-up epoch pins each leg's digest and work count.
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult warm = run_leg(i);
    legs[i].digest = warm.digest;
    legs[i].items = warm.items;
  }
  calibration_seconds();  // warm the spin too
  std::vector<double> cal_seconds;
  for (int e = 0; e < epochs; ++e) {
    const double cal = calibration_seconds();
    cal_seconds.push_back(cal);
    for (std::size_t i = 0; i < legs.size(); ++i) {
      const LegResult r = run_leg(i);
      if (r.digest != legs[i].digest || r.items != legs[i].items) {
        std::printf("FAIL: %s digest/work changed at epoch %d — state leaked across epochs\n",
                    legs[i].name.c_str(), e);
        return 1;
      }
      legs[i].seconds.push_back(r.seconds);
      legs[i].normalized.push_back(cal > 0 ? r.seconds / cal : r.seconds);
    }
  }

  // Drift: best epoch of the first half vs best of the second half, on
  // calibration-normalized times (best-of because noise only adds time;
  // normalized because machine-wide speed swings move every leg together).
  // The gate is on *relative* drift — each leg against the median drift
  // across legs — because sustained co-tenant load can slow a whole half of
  // the run and no absolute threshold survives that, while a genuine leak
  // (growing state, fragmentation) slows its leg relative to the others.
  // Absolute drift is still reported and lands in the trajectory JSON.
  bool drift_ok = true;
  std::vector<double> drifts;
  for (auto& leg : legs) {
    const auto half =
        leg.normalized.begin() + static_cast<std::ptrdiff_t>(leg.normalized.size() / 2);
    const double best1 = *std::min_element(leg.normalized.begin(), half);
    const double best2 = *std::min_element(half, leg.normalized.end());
    leg.drift = best2 > 0 ? best1 / best2 : 0.0;  // >1 means the run sped up
    drifts.push_back(leg.drift);
  }
  const double drift_med = median(std::vector<double>(drifts));
  for (auto& leg : legs) {
    leg.drift_rel = drift_med > 0 ? leg.drift / drift_med : 0.0;
    if (gate > 0.0 && leg.drift_rel < gate) drift_ok = false;
  }

  TextTable table{{"leg", "items/epoch", "median (ms)", "items/s", "drift", "rel drift"}};
  for (const auto& leg : legs) {
    const double med = median(std::vector<double>(leg.seconds));
    table.add_row({leg.name, std::to_string(leg.items), TextTable::num(med * 1e3, 2),
                   TextTable::num(med > 0 ? static_cast<double>(leg.items) / med : 0.0, 0),
                   TextTable::num(leg.drift, 3) + "x", TextTable::num(leg.drift_rel, 3) + "x"});
  }
  std::printf("%s\n", table.render().c_str());

  // Baseline check: digests and work counts must match exactly.
  bool baseline_ok = true;
  if (!baseline_path.empty()) {
    json::Value root;
    {
      std::FILE* f = std::fopen(baseline_path.c_str(), "rb");
      if (f == nullptr) {
        std::printf("FAIL: cannot read baseline %s\n", baseline_path.c_str());
        return 4;
      }
      std::string text;
      char chunk[4096];
      std::size_t n = 0;
      while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) text.append(chunk, n);
      std::fclose(f);
      try {
        root = json::parse(text);
      } catch (const std::exception& e) {
        std::printf("FAIL: baseline %s: %s\n", baseline_path.c_str(), e.what());
        return 4;
      }
    }
    const json::Value* digests = root.find("digests");
    const json::Value* items = root.find("items_per_epoch");
    if (digests == nullptr || items == nullptr) {
      std::printf("FAIL: baseline %s missing digests/items_per_epoch\n", baseline_path.c_str());
      baseline_ok = false;
    } else {
      for (const auto& leg : legs) {
        const json::Value* d = digests->find(leg.name);
        const json::Value* it = items->find(leg.name);
        if (d == nullptr || d->as_string() != hex64(leg.digest)) {
          std::printf("FAIL: %s digest %s != baseline %s\n", leg.name.c_str(),
                      hex64(leg.digest).c_str(),
                      d != nullptr ? d->as_string().c_str() : "(missing)");
          baseline_ok = false;
        }
        if (it == nullptr || static_cast<std::int64_t>(it->as_number()) != leg.items) {
          std::printf("FAIL: %s items/epoch %lld != baseline\n", leg.name.c_str(),
                      static_cast<long long>(leg.items));
          baseline_ok = false;
        }
      }
    }
    std::printf("baseline %s: %s\n", baseline_path.c_str(), baseline_ok ? "match" : "MISMATCH");
  }

  // Report: ExperimentRunner-report shaped so `vcbench_cli report` renders
  // it; the epochs array is the raw time-series.
  std::string json = "{\n  \"label\": \"soak_trajectory\",\n";
  json += "  \"base_seed\": 424247,\n";
  json += "  \"sessions\": " + std::to_string(epochs) + ",\n";
  json += "  \"failures\": 0,\n";
  json += "  \"samples\": {\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const auto& leg = legs[i];
    RunningStats ms, rate;
    for (double s : leg.seconds) {
      ms.add(s * 1e3);
      if (s > 0) rate.add(static_cast<double>(leg.items) / s);
    }
    append_stats(json, (leg.name + ".epoch_ms").c_str(), ms);
    append_stats(json, (leg.name + ".items_per_s").c_str(), rate, i + 1 == legs.size());
  }
  json += "  },\n  \"counters\": {";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    json += "\"soak." + legs[i].name + ".items_per_epoch\": " + std::to_string(legs[i].items);
    json += i + 1 < legs.size() ? ", " : "";
  }
  json += "},\n";
  json += "  \"digests\": {";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    json += "\"" + legs[i].name + "\": \"" + hex64(legs[i].digest) + "\"";
    json += i + 1 < legs.size() ? ", " : "";
  }
  json += "},\n  \"items_per_epoch\": {";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    json += "\"" + legs[i].name + "\": " + std::to_string(legs[i].items);
    json += i + 1 < legs.size() ? ", " : "";
  }
  json += "},\n  \"drift\": {";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    json += "\"" + legs[i].name + "\": " + json::format_number(legs[i].drift);
    json += i + 1 < legs.size() ? ", " : "";
  }
  json += "},\n  \"drift_rel\": {";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    json += "\"" + legs[i].name + "\": " + json::format_number(legs[i].drift_rel);
    json += i + 1 < legs.size() ? ", " : "";
  }
  json += "},\n  \"gate\": " + json::format_number(gate) + ",\n";
  json += "  \"epochs\": [\n";
  for (int e = 0; e < epochs; ++e) {
    json += "    {\"epoch\": " + std::to_string(e);
    json += ", \"cal_ms\": " + json::format_number(cal_seconds[static_cast<std::size_t>(e)] * 1e3);
    for (const auto& leg : legs) {
      json += ", \"" + leg.name + "_ms\": " +
              json::format_number(leg.seconds[static_cast<std::size_t>(e)] * 1e3);
    }
    json += e + 1 < epochs ? "},\n" : "}\n";
  }
  json += "  ]\n}\n";
  if (runner::write_text_file(out_path, json)) {
    std::printf("report written to %s\n", out_path.c_str());
  }

  if (!drift_ok) {
    for (const auto& leg : legs) {
      if (leg.drift_rel < gate) {
        std::printf("FAIL: %s drifted to %.3fx of the run's median leg drift (gate %.2f, "
                    "absolute drift %.3fx)\n",
                    leg.name.c_str(), leg.drift_rel, gate, leg.drift);
      }
    }
    return 2;
  }
  if (!baseline_ok) return 4;
  return 0;
}
