// Competing-flow fairness sweep (PR 6): N two-party sessions — mixed
// platforms × mixed client ABR adapters — sharing one bottleneck gateway
// downlink (core::run_fairness_session). Each cell reports Jain's fairness
// index, per-flow achieved rate and share, convergence time to steady state,
// the shaper's self-inflicted queuing lag, and drop fraction; every cell runs
// with ABR applied and again with every flow on the plain platform-pushed
// policy, so the sweep shows what client-side adaptation buys (or costs) at
// a shared link.
//
// The sweep runs on runner::ExperimentRunner once at 1 thread and once at 8;
// the aggregate reports must be bit-identical — ABR active included — and
// `--shards K` (intra-session relay fan-out sharding) must not change a byte
// either (exit 1 on any mismatch).
//
// `--gate <ratio>` switches to the ABR-off invisibility check CI's
// perf-smoke job runs: interleaved A/B rounds of the same contention scene,
// A with ABR fully disabled (the pre-PR client path, byte for byte) and B
// with every adapter armed in shadow mode plus receiver feedback accounting
// on. The two aggregate reports must be byte-identical (exit 1) and
// best-of-rounds wall clock may not regress below the gate ratio (e.g.
// --gate 0.98 = "armed shadow machinery costs <= 2%", exit 3).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fairness_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

double flag_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

struct Cell {
  int flows = 2;
  bool abr = true;
  std::string key;  // e.g. "f4.abr" / "f4.plain"
};

core::FairnessBenchmarkConfig cell_config(const Cell& cell, SimDuration media, int shards) {
  core::FairnessBenchmarkConfig cfg;
  cfg.flows = core::default_fairness_flows(cell.flows);
  if (!cell.abr) {
    for (auto& f : cfg.flows) f.abr = abr::AbrKind::kNone;
  }
  // Scale the bottleneck with the flow count so every cell sits in the same
  // per-flow contention regime (~600 Kbps/flow against Mbps-class targets).
  cfg.bottleneck = DataRate::kbps(600 * cell.flows);
  cfg.media_duration = media;
  cfg.fan_out_shards = shards;
  return cfg;
}

void sample_session(runner::SessionContext& ctx, const std::string& key,
                    const core::FairnessBenchmarkResult& r) {
  ctx.sample(key + ".jain", r.jain_index);
  ctx.sample(key + ".utilization", r.utilization);
  ctx.sample(key + ".queue_ms", r.queue_delay_mean_ms);
  ctx.sample(key + ".queue_max_ms", r.queue_delay_max_ms);
  ctx.sample(key + ".drop", r.drop_fraction);
  if (r.convergence_mean_seconds >= 0.0) {
    ctx.sample(key + ".convergence_s", r.convergence_mean_seconds);
  }
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    const auto& f = r.flows[i];
    const std::string fk = key + ".flow" + std::to_string(i);
    ctx.sample(fk + ".kbps", f.achieved_kbps);
    ctx.sample(fk + ".share", f.share);
    if (f.convergence_seconds >= 0.0) ctx.sample(fk + ".convergence_s", f.convergence_seconds);
    if (f.abr != abr::AbrKind::kNone) {
      ctx.sample(fk + ".abr_decisions", static_cast<double>(f.abr_decisions));
      ctx.sample(fk + ".abr_switches", static_cast<double>(f.abr_tier_switches));
    }
  }
}

/// ABR-off invisibility gate (CI perf-smoke): A = ABR fully disabled,
/// B = shadow-armed adapters + feedback accounting. Returns the exit code.
int run_gate(double gate, int rounds, int shards, const std::string& out_path) {
  const auto make_task = [shards](bool armed) {
    return [shards, armed](runner::SessionContext& ctx) {
      Cell cell{3, armed, "gate"};
      core::FairnessBenchmarkConfig cfg = cell_config(cell, seconds(10), shards);
      cfg.abr_shadow = true;  // armed adapters never apply their decisions
      const auto r = core::run_fairness_session(cfg, ctx.seed);
      ctx.sample("gate.jain", r.jain_index);
      ctx.sample("gate.utilization", r.utilization);
      ctx.sample("gate.queue_ms", r.queue_delay_mean_ms);
      ctx.sample("gate.drop", r.drop_fraction);
      for (std::size_t i = 0; i < r.flows.size(); ++i) {
        ctx.sample("gate.flow" + std::to_string(i) + ".kbps", r.flows[i].achieved_kbps);
      }
    };
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 6161;
  rc.label = "fairness_gate";
  rc.threads = 1;

  std::string baseline_json;
  double best_off = 0.0, best_shadow = 0.0;
  for (int r = 0; r < rounds; ++r) {
    for (const bool armed : {false, true}) {
      const auto report = runner::ExperimentRunner{rc}.run(3, make_task(armed));
      if (!report.failures.empty()) {
        std::printf("FAIL: gate session threw (%zu failures)\n", report.failures.size());
        return 1;
      }
      if (baseline_json.empty()) {
        baseline_json = report.aggregate_json();
      } else if (report.aggregate_json() != baseline_json) {
        std::printf("FAIL: %s aggregate differs from ABR-off baseline — shadow-armed "
                    "ABR must be byte-invisible\n",
                    armed ? "shadow-armed" : "ABR-off");
        return 1;
      }
      double& best = armed ? best_shadow : best_off;
      if (best == 0.0 || report.wall_seconds < best) best = report.wall_seconds;
    }
  }
  const double ratio = best_shadow > 0.0 ? best_off / best_shadow : 0.0;
  std::printf("ABR-off gate: best off %.3f s, best shadow-armed %.3f s, ratio %.3fx "
              "(gate %.2fx), aggregates byte-identical: yes\n",
              best_off, best_shadow, ratio, gate);

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\n  \"benchmark\": \"fairness_gate\",\n  \"rounds\": %d,\n"
                "  \"best_abr_off_seconds\": %.6f,\n  \"best_shadow_armed_seconds\": %.6f,\n"
                "  \"shadow_speed_ratio\": %.4f,\n  \"gate\": %.2f,\n"
                "  \"aggregates_byte_identical\": true\n}\n",
                rounds, best_off, best_shadow, ratio, gate);
  if (runner::write_text_file(out_path, json)) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  if (ratio < gate) {
    std::printf("FAIL: shadow-armed overhead ratio %.3fx below gate %.2fx\n", ratio, gate);
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  const int shards = vcb::int_flag(argc, argv, "--shards", 0);
  const double gate = flag_double(argc, argv, "--gate", 0.0);
  const int rounds = std::max(3, vcb::int_flag(argc, argv, "--rounds", 5));
  const std::string out_path = flag_string(argc, argv, "--out", "bench_fairness.report.json");
  if (gate > 0.0) return run_gate(gate, rounds, shards, out_path);

  vcb::banner("Competing-flow fairness — shared bottleneck, client ABR vs platform policy",
              paper);

  const std::vector<int> flow_counts = paper ? std::vector<int>{2, 4, 8}
                                             : std::vector<int>{2, 4};
  const int sessions_per_cell = paper ? 3 : 1;
  const SimDuration media = paper ? seconds(30) : seconds(15);

  std::vector<Cell> cells;
  for (const int nf : flow_counts) {
    for (const bool abr_on : {true, false}) {
      Cell c;
      c.flows = nf;
      c.abr = abr_on;
      c.key = "f" + std::to_string(nf) + (abr_on ? ".abr" : ".plain");
      for (int s = 0; s < sessions_per_cell; ++s) cells.push_back(c);
    }
  }

  const auto task = [&cells, media, shards](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    const core::FairnessBenchmarkConfig cfg = cell_config(c, media, shards);
    const auto r = core::run_fairness_session(cfg, ctx.seed);
    sample_session(ctx, c.key, r);
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 6006;
  rc.label = "fairness";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  TextTable table{{"flows", "abr", "Jain", "util", "queue (ms)", "drop", "conv (s)",
                   "min flow (kbps)", "max flow (kbps)"}};
  auto cell_stat = [&report](const std::string& key) -> const RunningStats* {
    return report.find_sample(key);
  };
  for (const int nf : flow_counts) {
    for (const bool abr_on : {true, false}) {
      const std::string k = "f" + std::to_string(nf) + (abr_on ? ".abr" : ".plain");
      double lo = 0.0, hi = 0.0;
      for (int i = 0; i < nf; ++i) {
        const auto* s = cell_stat(k + ".flow" + std::to_string(i) + ".kbps");
        if (s == nullptr) continue;
        if (lo == 0.0 || s->mean() < lo) lo = s->mean();
        hi = std::max(hi, s->mean());
      }
      const auto* jain = cell_stat(k + ".jain");
      const auto* util = cell_stat(k + ".utilization");
      const auto* queue = cell_stat(k + ".queue_ms");
      const auto* drop = cell_stat(k + ".drop");
      const auto* conv = cell_stat(k + ".convergence_s");
      table.add_row({std::to_string(nf), abr_on ? "mixed" : "off",
                     jain ? TextTable::num(jain->mean(), 3) : "-",
                     util ? TextTable::num(util->mean(), 2) : "-",
                     queue ? TextTable::num(queue->mean(), 1) : "-",
                     drop ? TextTable::num(drop->mean(), 3) : "-",
                     conv ? TextTable::num(conv->mean(), 1) : "-", TextTable::num(lo, 0),
                     TextTable::num(hi, 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("sessions: %zu  failures: %zu  fan_out_shards: %d\n", report.sessions,
              report.failures.size(), shards);
  std::printf("wall clock: %.2f s at 1 thread, %.2f s at 8 threads — speedup %.2fx\n",
              serial.wall_seconds, report.wall_seconds,
              report.wall_seconds > 0 ? serial.wall_seconds / report.wall_seconds : 0.0);
  std::printf("aggregate reports bit-identical across thread counts (ABR active): %s\n",
              identical ? "yes" : "NO — determinism regression!");

  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical && report.failures.empty() ? 0 : 1;
}
