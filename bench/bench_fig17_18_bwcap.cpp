// Figs 17 & 18: video and audio QoE under receiver-side bandwidth caps
// (tc/ifb-style ingress shaping), two-party sessions.
//
// Paper anchors: Zoom holds the best QoE down the sweep but collapses
// suddenly at 250 Kbps; Meet degrades most gracefully; Webex falls apart
// below ~1 Mbps (stalls/disappearing video) and even its audio — despite a
// 45 Kbps rate — deteriorates at ≤500 Kbps, while Zoom/Meet audio stays flat.
//
// The sweep runs on runner::ExperimentRunner: every (platform, cap, session)
// cell is an independent capped session (core::run_bwcap_session), executed
// once on one thread and once on eight. The two aggregate reports must be
// bit-identical (the runner's determinism contract); the wall-clock ratio is
// the measured parallel speedup on this machine. `--shards K` forwards
// intra-session relay fan-out sharding, which must not change a byte either.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/bwcap_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Cell {
  platform::PlatformId id{};
  DataRate cap{};
  std::uint64_t platform_seed = 0;  // the pre-runner sweep's 701 + id*29 stream
  std::string key;                  // e.g. "Zoom/cap500 Kbps"
};

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  const int shards = vcb::int_flag(argc, argv, "--shards", 0);
  vcb::banner("Figs 17-18 — streaming under bandwidth constraints", paper);

  const std::vector<DataRate> caps = {DataRate::kbps(250),  DataRate::kbps(500),
                                      DataRate::kbps(750),  DataRate::mbps(1.0),
                                      DataRate::mbps(1.5),  DataRate::mbps(2.0),
                                      DataRate::mbps(3.0),  DataRate::unlimited()};
  const int sessions_per_cell = paper ? 5 : 1;
  const SimDuration media_duration = paper ? seconds(60) : seconds(12);

  std::vector<Cell> cells;
  for (const auto id : vcb::all_platforms()) {
    for (const auto cap : caps) {
      Cell c;
      c.id = id;
      c.cap = cap;
      c.platform_seed = 701 + static_cast<std::uint64_t>(id) * 29;
      c.key = std::string(platform_name(id)) + "/cap" + cap.to_string();
      for (int s = 0; s < sessions_per_cell; ++s) cells.push_back(c);
    }
  }

  const auto task = [&cells, media_duration, shards](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    core::BwCapBenchmarkConfig cfg;
    cfg.platform = c.id;
    cfg.cap = c.cap;
    cfg.media_duration = media_duration;
    cfg.content_width = 160;
    cfg.content_height = 112;
    cfg.padding = 16;
    cfg.fps = 10.0;
    cfg.metric_stride = 5;
    cfg.fan_out_shards = shards;
    const auto r = core::run_bwcap_session(cfg, ctx.seed ^ c.platform_seed);
    if (r.has_video_qoe) {
      ctx.sample(c.key + ".psnr", r.psnr);
      ctx.sample(c.key + ".ssim", r.ssim);
      ctx.sample(c.key + ".vifp", r.vifp);
    }
    if (r.has_audio_qoe) ctx.sample(c.key + ".mos_lqo", r.mos_lqo);
    if (r.has_delivery_ratio) ctx.sample(c.key + ".delivery_ratio", r.delivery_ratio);
    ctx.sample(c.key + ".download_kbps", r.download_kbps);
    ctx.sample(c.key + ".drop_fraction", r.drop_fraction);
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 701;
  rc.label = "fig17_18_bwcap";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  TextTable table{{"platform", "cap", "PSNR (dB)", "SSIM", "VIFp", "MOS-LQO", "deliv", "drop%",
                   "down (Kbps)"}};
  auto cell = [&report](const std::string& key, int digits, double scale = 1.0) {
    const auto* s = report.find_sample(key);
    return s ? TextTable::num(scale * s->mean(), digits) : std::string{"-"};
  };
  for (const auto id : vcb::all_platforms()) {
    for (const auto cap : caps) {
      const std::string k = std::string(platform_name(id)) + "/cap" + cap.to_string();
      table.add_row({std::string(platform_name(id)), cap.to_string(), cell(k + ".psnr", 1),
                     cell(k + ".ssim", 3), cell(k + ".vifp", 3), cell(k + ".mos_lqo", 2),
                     cell(k + ".delivery_ratio", 2), cell(k + ".drop_fraction", 1, 100.0),
                     cell(k + ".download_kbps", 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("sessions: %zu  failures: %zu  fan_out_shards: %d\n", report.sessions,
              report.failures.size(), shards);
  std::printf("wall clock: %.2f s at 1 thread, %.2f s at 8 threads — speedup %.2fx\n",
              serial.wall_seconds, report.wall_seconds,
              report.wall_seconds > 0 ? serial.wall_seconds / report.wall_seconds : 0.0);
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");

  const std::string out_path = "bench_fig17_18_bwcap.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
