// Figs 17 & 18: video and audio QoE under receiver-side bandwidth caps
// (tc/ifb-style ingress shaping), two-party sessions.
//
// Paper anchors: Zoom holds the best QoE down the sweep but collapses
// suddenly at 250 Kbps; Meet degrades most gracefully; Webex falls apart
// below ~1 Mbps (stalls/disappearing video) and even its audio — despite a
// 45 Kbps rate — deteriorates at ≤500 Kbps, while Zoom/Meet audio stays flat.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/bwcap_benchmark.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Figs 17-18 — streaming under bandwidth constraints", paper);

  std::vector<DataRate> caps = {DataRate::kbps(250),  DataRate::kbps(500), DataRate::kbps(750),
                                DataRate::mbps(1.0),  DataRate::mbps(1.5), DataRate::mbps(2.0),
                                DataRate::mbps(3.0),  DataRate::unlimited()};
  TextTable table{{"platform", "cap", "PSNR (dB)", "SSIM", "VIFp", "MOS-LQO", "deliv",
                   "drop%", "down (Kbps)"}};
  for (const auto id : vcb::all_platforms()) {
    for (const auto cap : caps) {
      core::BwCapBenchmarkConfig cfg;
      cfg.platform = id;
      cfg.cap = cap;
      cfg.sessions = paper ? 5 : 1;
      cfg.media_duration = paper ? seconds(60) : seconds(12);
      cfg.content_width = 160;
      cfg.content_height = 112;
      cfg.padding = 16;
      cfg.fps = 10.0;
      cfg.metric_stride = 5;
      cfg.seed = 701 + static_cast<std::uint64_t>(id) * 29;
      const auto r = core::run_bwcap_benchmark(cfg);
      table.add_row({std::string(platform_name(id)), cap.to_string(),
                     r.psnr.count() ? TextTable::num(r.psnr.mean(), 1) : "-",
                     r.ssim.count() ? TextTable::num(r.ssim.mean(), 3) : "-",
                     r.vifp.count() ? TextTable::num(r.vifp.mean(), 3) : "-",
                     r.mos_lqo.count() ? TextTable::num(r.mos_lqo.mean(), 2) : "-",
                     TextTable::num(r.delivery_ratio.mean(), 2),
                     TextTable::num(100.0 * r.drop_fraction.mean(), 1),
                     TextTable::num(r.download_kbps.mean(), 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
