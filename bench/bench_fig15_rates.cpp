// Fig 15: upload/download Layer-7 data rates for the QoE sessions (US),
// vs session size and motion class, plus across-session rate variability.
//
// Paper anchors: all platforms send low-motion cheaper (Webex halves it,
// Meet −20%, Zoom −5-10%); Zoom P2P (N=2) ≈ 1 Mbps vs ≈ 0.7 Mbps relayed;
// Meet N=2 bursts to 1.6–2.0 Mbps then drops to 0.4–0.6 Mbps; Webex is
// virtually constant across sessions while Meet fluctuates the most.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/qoe_benchmark.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 15 — upload/download data rates (US)", paper);

  const int max_n = paper ? 5 : 3;
  for (const auto motion :
       {platform::MotionClass::kLowMotion, platform::MotionClass::kHighMotion}) {
    std::printf("--- %s ---\n",
                motion == platform::MotionClass::kLowMotion ? "(a) low motion" : "(b) high motion");
    TextTable table{{"platform", "N", "host upload (Kbps)", "download (Kbps)",
                     "session-to-session CV", "path"}};
    for (const auto id : vcb::all_platforms()) {
      for (int n = 1; n <= max_n; ++n) {
        core::QoeBenchmarkConfig cfg;
        cfg.platform = id;
        cfg.motion = motion;
        cfg.host_site = "US-East";
        cfg.receiver_sites = core::us_qoe_receiver_sites(n);
        cfg.sessions = paper ? 6 : 3;
        cfg.media_duration = paper ? seconds(45) : seconds(8);
        cfg.content_width = 160;
        cfg.content_height = 112;
        cfg.padding = 16;
        cfg.fps = 10.0;
        cfg.score_video = false;  // rates only: no recording or pixel scoring
        cfg.seed = 601 + static_cast<std::uint64_t>(id) * 13 + static_cast<std::uint64_t>(n) +
                   (motion == platform::MotionClass::kLowMotion ? 0 : 7);
        const auto r = core::run_qoe_benchmark(cfg);
        RunningStats session_rates;
        for (double v : r.session_download_kbps) session_rates.add(v);
        const double cv =
            session_rates.mean() > 0 ? session_rates.stddev() / session_rates.mean() : 0.0;
        const bool p2p = id == platform::PlatformId::kZoom && n == 1;
        table.add_row({std::string(platform_name(id)), std::to_string(n),
                       TextTable::num(r.upload_kbps.mean(), 0),
                       TextTable::num(r.download_kbps.mean(), 0), TextTable::num(cv, 3),
                       p2p ? "P2P" : "relay"});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
