// Fig 15: upload/download Layer-7 data rates for the QoE sessions (US),
// vs session size and motion class, plus across-session rate variability.
//
// Paper anchors: all platforms send low-motion cheaper (Webex halves it,
// Meet −20%, Zoom −5-10%); Zoom P2P (N=2) ≈ 1 Mbps vs ≈ 0.7 Mbps relayed;
// Meet N=2 bursts to 1.6–2.0 Mbps then drops to 0.4–0.6 Mbps; Webex is
// virtually constant across sessions while Meet fluctuates the most.
//
// Every (motion, platform, N, repetition) cell is an independent rate-only
// session (core::run_qoe_session, score_video=false) on
// runner::ExperimentRunner; the serial and 8-thread aggregate reports must
// be bit-identical. The session-to-session CV column is the coefficient of
// variation of the per-session download rates across a cell's repetitions —
// read straight off the aggregate sample's stddev/mean.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/qoe_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Cell {
  platform::PlatformId id{};
  int n = 0;
  platform::MotionClass motion{};
  std::uint64_t platform_seed = 0;  // the pre-runner sweep's 601 + id*13 + n stream
  std::string key;                  // e.g. "fig15/low/Zoom/N3"
};

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 15 — upload/download data rates (US)", paper);

  const int max_n = paper ? 5 : 3;
  const int sessions_per_cell = paper ? 6 : 3;

  std::vector<Cell> cells;
  for (const auto motion :
       {platform::MotionClass::kLowMotion, platform::MotionClass::kHighMotion}) {
    for (const auto id : vcb::all_platforms()) {
      for (int n = 1; n <= max_n; ++n) {
        const bool low = motion == platform::MotionClass::kLowMotion;
        Cell c;
        c.id = id;
        c.n = n;
        c.motion = motion;
        c.platform_seed = 601 + static_cast<std::uint64_t>(id) * 13 +
                          static_cast<std::uint64_t>(n) + (low ? 0 : 7);
        c.key = std::string("fig15/") + (low ? "low/" : "high/") +
                std::string(platform_name(id)) + "/N" + std::to_string(n);
        for (int s = 0; s < sessions_per_cell; ++s) cells.push_back(c);
      }
    }
  }

  const SimDuration media_duration = paper ? seconds(45) : seconds(8);
  const auto task = [&cells, media_duration](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    core::QoeBenchmarkConfig cfg;
    cfg.platform = c.id;
    cfg.motion = c.motion;
    cfg.host_site = "US-East";
    cfg.receiver_sites = core::us_qoe_receiver_sites(c.n);
    cfg.media_duration = media_duration;
    cfg.content_width = 160;
    cfg.content_height = 112;
    cfg.padding = 16;
    cfg.fps = 10.0;
    cfg.score_video = false;  // rates only: no recording or pixel scoring
    const auto r = core::run_qoe_session(cfg, ctx.seed ^ c.platform_seed);
    ctx.sample(c.key + ".upload_kbps", r.upload_kbps);
    ctx.sample(c.key + ".session_kbps", r.session_download_kbps);
    for (const core::QoeReceiverResult& rx : r.receivers) {
      ctx.sample(c.key + ".download_kbps", rx.download_kbps);
    }
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 601;
  rc.label = "fig15_rates";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  for (const auto motion :
       {platform::MotionClass::kLowMotion, platform::MotionClass::kHighMotion}) {
    const bool low = motion == platform::MotionClass::kLowMotion;
    std::printf("--- %s ---\n", low ? "(a) low motion" : "(b) high motion");
    TextTable table{{"platform", "N", "host upload (Kbps)", "download (Kbps)",
                     "session-to-session CV", "path"}};
    for (const auto id : vcb::all_platforms()) {
      for (int n = 1; n <= max_n; ++n) {
        const std::string base = std::string("fig15/") + (low ? "low/" : "high/") +
                                 std::string(platform_name(id)) + "/N" + std::to_string(n);
        const auto* up = report.find_sample(base + ".upload_kbps");
        const auto* down = report.find_sample(base + ".download_kbps");
        const auto* session = report.find_sample(base + ".session_kbps");
        const double cv = session != nullptr && session->mean() > 0
                              ? session->stddev() / session->mean()
                              : 0.0;
        const bool p2p = id == platform::PlatformId::kZoom && n == 1;
        table.add_row({std::string(platform_name(id)), std::to_string(n),
                       TextTable::num(up != nullptr ? up->mean() : 0.0, 0),
                       TextTable::num(down != nullptr ? down->mean() : 0.0, 0),
                       TextTable::num(cv, 3), p2p ? "P2P" : "relay"});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("sessions: %zu  failures: %zu\n", report.sessions, report.failures.size());
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");
  const std::string out_path = "bench_fig15_rates.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
