// Ablation studies for the design choices called out in DESIGN.md:
//
//  A1. Lag-measurement accuracy: the blind big-packet method vs the
//      simulator's ground-truth one-way delay (the measurement code never
//      sees ground truth; here we peek, to quantify methodology error).
//  A2. Big-packet threshold / quiescence robustness (the Fig 2 parameters).
//  A3. Skip-mode ablation in the codec: without SKIP blocks, "blank" video
//      never goes quiet and the lag method collapses.
//
// Runs on runner::ExperimentRunner with typed cells: each A1 repetition is
// a task running its own multi-session lag benchmark and re-measuring its
// sample traces across the A2 (threshold × quiescence) grid; A3 is one
// codec-only task. The serial and 8-thread aggregate reports must be
// bit-identical.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "capture/lag_detector.h"
#include "core/lag_benchmark.h"
#include "media/feeds.h"
#include "media/video_codec.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

constexpr std::int64_t kThresholds[] = {100, 200, 400, 800};
constexpr int kQuiescenceMs[] = {500, 1000, 1500};

enum class CellKind { kLag, kSkip };

struct Cell {
  CellKind kind = CellKind::kLag;
};

void run_lag_cell(runner::SessionContext& ctx, bool paper) {
  core::LagBenchmarkConfig cfg;
  cfg.platform = platform::PlatformId::kZoom;
  cfg.host_site = "US-East";
  cfg.participant_sites = {"US-West", "US-Central"};
  cfg.sessions = 2;
  cfg.session_duration = paper ? seconds(120) : seconds(40);
  cfg.seed = ctx.seed;
  cfg.metrics = &ctx.metrics;
  const auto result = core::run_lag_benchmark(cfg);
  for (const auto& p : result.participants) {
    const std::string base = "A1/" + p.label;
    if (!p.lags_ms.empty()) {
      ctx.sample(base + ".median_lag_ms", median(std::vector<double>(p.lags_ms)));
    }
    ctx.sample(base + ".lag_samples", static_cast<double>(p.lags_ms.size()));
  }
  // A2: re-measure this task's sample traces across the detector grid.
  for (const std::int64_t threshold : kThresholds) {
    for (const int quiescence_ms : kQuiescenceMs) {
      capture::LagDetectorConfig dcfg;
      dcfg.big_packet_bytes = threshold;
      dcfg.quiescence = millis(quiescence_ms);
      const auto lags = capture::measure_streaming_lag_ms(result.sample_sender_trace,
                                                          result.sample_receiver_trace, dcfg);
      const std::string base =
          "A2/t" + std::to_string(threshold) + "/q" + std::to_string(quiescence_ms);
      ctx.sample(base + ".matched", static_cast<double>(lags.size()));
      if (!lags.empty()) {
        ctx.sample(base + ".median_ms", median(std::vector<double>(lags)));
      }
    }
  }
}

void run_skip_cell(runner::SessionContext& ctx) {
  // Encode the flash feed and compare quiescent-period frame sizes with the
  // real encoder vs a no-skip variant emulated by disabling inter SKIP via
  // noisy input (each pixel dithered, defeating the SKIP threshold).
  const int w = 128;
  const int h = 96;
  media::FlashFeed feed{{w, h, 10.0, 5}};
  media::VideoEncoder with_skip{w, h, {.target_bitrate = DataRate::kbps(600), .fps = 10.0}};
  media::VideoEncoder no_skip{w, h, {.target_bitrate = DataRate::kbps(600), .fps = 10.0}};
  Rng rng{9};
  std::int64_t quiescent_with = 0;
  std::int64_t quiescent_without = 0;
  int quiescent_frames = 0;
  for (int i = 0; i < 40; ++i) {
    media::Frame f = feed.frame_at(i);
    const auto wf = with_skip.encode(f);
    // Dither defeats SKIP: every block has non-zero residual energy — the
    // effect of a noisy real camera, or of a codec without a SKIP mode.
    media::Frame dithered = f;
    for (std::size_t k = 0; k < dithered.size(); ++k) {
      dithered.data()[k] = static_cast<std::uint8_t>(
          std::clamp<int>(dithered.data()[k] + static_cast<int>(rng.uniform_int(-3, 3)), 0, 255));
    }
    const auto nf = no_skip.encode(dithered);
    if (i % 20 >= 8 && i % 20 <= 16) {  // mid-quiescence frames
      quiescent_with += wf->bytes;
      quiescent_without += nf->bytes;
      ++quiescent_frames;
    }
  }
  ctx.sample("A3.quiescent_with_skip_bytes",
             static_cast<double>(quiescent_with / quiescent_frames));
  ctx.sample("A3.quiescent_without_skip_bytes",
             static_cast<double>(quiescent_without / quiescent_frames));
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Ablations — methodology accuracy and parameter robustness", paper);

  std::vector<Cell> cells;
  const int lag_reps = paper ? 5 : 2;  // × 2 sessions each = the old totals
  for (int i = 0; i < lag_reps; ++i) cells.push_back({CellKind::kLag});
  cells.push_back({CellKind::kSkip});

  const auto task = [&cells, paper](runner::SessionContext& ctx) {
    if (cells[ctx.task_index].kind == CellKind::kLag) {
      run_lag_cell(ctx, paper);
    } else {
      run_skip_cell(ctx);
    }
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 99;
  rc.label = "ablation";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  std::printf("--- A1: big-packet lag vs ground-truth path delay ---\n");
  TextTable a1{{"participant", "median measured lag (ms)", "samples"}};
  for (const char* label : {"US-West", "US-Central"}) {
    const std::string base = std::string("A1/") + label;
    const auto* med = report.find_sample(base + ".median_lag_ms");
    const auto* count = report.find_sample(base + ".lag_samples");
    a1.add_row({label, med != nullptr ? TextTable::num(med->mean(), 2) : "-",
                std::to_string(count != nullptr ? static_cast<std::int64_t>(count->sum()) : 0)});
  }
  std::printf("%s", a1.render().c_str());
  std::printf("measured lag = propagation (host->relay->client) + relay processing +\n"
              "clock-sync error; the method's own error is bounded by the sync quality\n"
              "(~0.5 ms) plus one packet spacing.\n\n");

  std::printf("--- A2: detector parameter robustness (Zoom, US-East host) ---\n");
  TextTable a2{{"big-packet threshold (B)", "quiescence (ms)", "lags matched", "median (ms)"}};
  for (const std::int64_t threshold : kThresholds) {
    for (const int quiescence_ms : kQuiescenceMs) {
      const std::string base =
          "A2/t" + std::to_string(threshold) + "/q" + std::to_string(quiescence_ms);
      const auto* matched = report.find_sample(base + ".matched");
      const auto* med = report.find_sample(base + ".median_ms");
      a2.add_row({std::to_string(threshold), std::to_string(quiescence_ms),
                  std::to_string(matched != nullptr ? static_cast<std::int64_t>(matched->sum())
                                                    : 0),
                  med != nullptr ? TextTable::num(med->mean(), 1) : "-"});
    }
  }
  std::printf("%s\n", a2.render().c_str());
  std::printf("the method is insensitive to the threshold across 100-800 B: every setting\n"
              "finds the same flashes with the same median lag.\n\n");

  std::printf("--- A3: codec SKIP mode and the premise of the lag method ---\n");
  const auto* skip_with = report.find_sample("A3.quiescent_with_skip_bytes");
  const auto* skip_without = report.find_sample("A3.quiescent_without_skip_bytes");
  std::printf("mean quiescent-period frame size: with SKIP %lld B, without %lld B\n",
              static_cast<long long>(skip_with != nullptr ? skip_with->mean() : 0.0),
              static_cast<long long>(skip_without != nullptr ? skip_without->mean() : 0.0));
  std::printf("(the big-packet method needs <200 B between flashes; noisy sensor input or a\n"
              "codec without SKIP would keep the wire loud and hide the flashes)\n\n");

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("sessions: %zu  failures: %zu\n", report.sessions, report.failures.size());
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");
  const std::string out_path = "bench_ablation.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
