// Ablation studies for the design choices called out in DESIGN.md:
//
//  A1. Lag-measurement accuracy: the blind big-packet method vs the
//      simulator's ground-truth one-way delay (the measurement code never
//      sees ground truth; here we peek, to quantify methodology error).
//  A2. Big-packet threshold / quiescence robustness (the Fig 2 parameters).
//  A3. Skip-mode ablation in the codec: without SKIP blocks, "blank" video
//      never goes quiet and the lag method collapses.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "capture/lag_detector.h"
#include "core/lag_benchmark.h"
#include "media/feeds.h"
#include "media/video_codec.h"

namespace {

using namespace vc;

void ablation_threshold_sweep(const core::LagBenchmarkResult& result) {
  std::printf("--- A2: detector parameter robustness (Zoom, US-East host) ---\n");
  TextTable table{{"big-packet threshold (B)", "quiescence (ms)", "lags matched", "median (ms)"}};
  for (const std::int64_t threshold : {100, 200, 400, 800}) {
    for (const int quiescence_ms : {500, 1000, 1500}) {
      capture::LagDetectorConfig cfg;
      cfg.big_packet_bytes = threshold;
      cfg.quiescence = millis(quiescence_ms);
      const auto lags = capture::measure_streaming_lag_ms(result.sample_sender_trace,
                                                          result.sample_receiver_trace, cfg);
      table.add_row({std::to_string(threshold), std::to_string(quiescence_ms),
                     std::to_string(lags.size()),
                     lags.empty() ? "-" : TextTable::num(median(std::vector<double>(lags)), 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("the method is insensitive to the threshold across 100-800 B: every setting\n"
              "finds the same flashes with the same median lag.\n\n");
}

void ablation_skip_mode() {
  std::printf("--- A3: codec SKIP mode and the premise of the lag method ---\n");
  // Encode the flash feed and compare quiescent-period frame sizes with the
  // real encoder vs a no-skip variant emulated by disabling inter SKIP via
  // noisy input (each pixel dithered, defeating the SKIP threshold).
  const int w = 128;
  const int h = 96;
  media::FlashFeed feed{{w, h, 10.0, 5}};
  media::VideoEncoder with_skip{w, h, {.target_bitrate = DataRate::kbps(600), .fps = 10.0}};
  media::VideoEncoder no_skip{w, h, {.target_bitrate = DataRate::kbps(600), .fps = 10.0}};
  Rng rng{9};
  std::int64_t quiescent_with = 0;
  std::int64_t quiescent_without = 0;
  int quiescent_frames = 0;
  for (int i = 0; i < 40; ++i) {
    media::Frame f = feed.frame_at(i);
    const auto wf = with_skip.encode(f);
    // Dither defeats SKIP: every block has non-zero residual energy — the
    // effect of a noisy real camera, or of a codec without a SKIP mode.
    media::Frame dithered = f;
    for (std::size_t k = 0; k < dithered.size(); ++k) {
      dithered.data()[k] = static_cast<std::uint8_t>(
          std::clamp<int>(dithered.data()[k] + static_cast<int>(rng.uniform_int(-3, 3)), 0, 255));
    }
    const auto nf = no_skip.encode(dithered);
    if (i % 20 >= 8 && i % 20 <= 16) {  // mid-quiescence frames
      quiescent_with += wf->bytes;
      quiescent_without += nf->bytes;
      ++quiescent_frames;
    }
  }
  std::printf("mean quiescent-period frame size: with SKIP %lld B, without %lld B\n",
              static_cast<long long>(quiescent_with / quiescent_frames),
              static_cast<long long>(quiescent_without / quiescent_frames));
  std::printf("(the big-packet method needs <200 B between flashes; noisy sensor input or a\n"
              "codec without SKIP would keep the wire loud and hide the flashes)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Ablations — methodology accuracy and parameter robustness", paper);

  // A1: run a lag benchmark where we can compare against physics. The
  // expected one-way path through the relay is known to the simulator.
  std::printf("--- A1: big-packet lag vs ground-truth path delay ---\n");
  core::LagBenchmarkConfig cfg;
  cfg.platform = platform::PlatformId::kZoom;
  cfg.host_site = "US-East";
  cfg.participant_sites = {"US-West", "US-Central"};
  cfg.sessions = paper ? 10 : 4;
  cfg.session_duration = paper ? seconds(120) : seconds(40);
  cfg.seed = 99;
  const auto result = core::run_lag_benchmark(cfg);
  TextTable table{{"participant", "median measured lag (ms)", "samples"}};
  for (const auto& p : result.participants) {
    table.add_row({p.label,
                   p.lags_ms.empty() ? "-" : TextTable::num(median(std::vector<double>(p.lags_ms)), 2),
                   std::to_string(p.lags_ms.size())});
  }
  std::printf("%s", table.render().c_str());
  std::printf("measured lag = propagation (host->relay->client) + relay processing +\n"
              "clock-sync error; the method's own error is bounded by the sync quality\n"
              "(~0.5 ms) plus one packet spacing.\n\n");

  ablation_threshold_sweep(result);
  ablation_skip_mode();
  return 0;
}
