// Figs 12 & 16: video QoE (PSNR / SSIM / VIFp) vs number of receivers N,
// for low- and high-motion feeds — US scenario (host US-East) and the
// Europe high-motion scenario (host CH, Fig 16).
//
// Paper anchors: low-motion sessions score visibly higher than high-motion
// (Finding 3); Meet's low-motion QoE drops between N=2 (its 1.6–2.0 Mbps
// two-party burst) and N>2 (0.4–0.6 Mbps); Webex is the most stable.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/qoe_benchmark.h"

namespace {

void run_block(const char* title, bool europe, vc::platform::MotionClass motion, bool paper,
               int max_n) {
  using namespace vc;
  std::printf("--- %s ---\n", title);
  TextTable table{{"platform", "N", "PSNR (dB)", "SSIM", "VIFp", "deliv", "host up (Kbps)",
                   "down (Kbps)"}};
  for (const auto id : vcb::all_platforms()) {
    for (int n = 1; n <= max_n; ++n) {
      core::QoeBenchmarkConfig cfg;
      cfg.platform = id;
      cfg.motion = motion;
      cfg.host_site = europe ? "CH" : "US-East";
      cfg.receiver_sites =
          europe ? core::europe_qoe_receiver_sites(n) : core::us_qoe_receiver_sites(n);
      cfg.sessions = paper ? 5 : 1;
      cfg.media_duration = paper ? seconds(60) : seconds(10);
      cfg.content_width = 160;
      cfg.content_height = 112;
      cfg.padding = 16;
      cfg.fps = 10.0;
      cfg.metric_stride = paper ? 4 : 5;
      cfg.seed = 211 + static_cast<std::uint64_t>(id) * 31 + static_cast<std::uint64_t>(n);
      const auto r = core::run_qoe_benchmark(cfg);
      table.add_row({std::string(platform_name(id)), std::to_string(n),
                     TextTable::num(r.psnr.mean(), 1) + " ±" + TextTable::num(r.psnr.stddev(), 1),
                     TextTable::num(r.ssim.mean(), 3), TextTable::num(r.vifp.mean(), 3),
                     TextTable::num(r.delivery_ratio.mean(), 2),
                     TextTable::num(r.upload_kbps.mean(), 0),
                     TextTable::num(r.download_kbps.mean(), 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Figs 12 & 16 — video QoE vs session size", paper);
  const int max_n = paper ? 5 : 3;
  run_block("Fig 12 (a-c): US, low motion", false, vc::platform::MotionClass::kLowMotion, paper,
            max_n);
  run_block("Fig 12 (d-f): US, high motion", false, vc::platform::MotionClass::kHighMotion, paper,
            max_n);
  run_block("Fig 16: Europe, high motion (host CH)", true,
            vc::platform::MotionClass::kHighMotion, paper, max_n);
  return 0;
}
