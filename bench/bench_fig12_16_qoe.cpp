// Figs 12 & 16: video QoE (PSNR / SSIM / VIFp) vs number of receivers N,
// for low- and high-motion feeds — US scenario (host US-East) and the
// Europe high-motion scenario (host CH, Fig 16).
//
// Paper anchors: low-motion sessions score visibly higher than high-motion
// (Finding 3); Meet's low-motion QoE drops between N=2 (its 1.6–2.0 Mbps
// two-party burst) and N>2 (0.4–0.6 Mbps); Webex is the most stable.
//
// The sweep runs on runner::ExperimentRunner: every (block, platform, N,
// session) cell is an independent broadcast session (core::run_qoe_session),
// executed once on one thread and once on eight. The two aggregate reports
// must be bit-identical (the runner's determinism contract).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/qoe_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Block {
  const char* title;
  const char* key;  // sample-key prefix, e.g. "fig12_us_low"
  bool europe;
  platform::MotionClass motion;
};

struct Cell {
  const Block* block = nullptr;
  platform::PlatformId id{};
  int n = 0;
  std::uint64_t platform_seed = 0;  // the pre-runner sweep's 211 + id*31 + n stream
  std::string key;                  // e.g. "fig12_us_low/Zoom/N3"
};

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Figs 12 & 16 — video QoE vs session size", paper);
  const int max_n = paper ? 5 : 3;
  const int sessions_per_cell = paper ? 5 : 1;

  const Block blocks[] = {
      {"Fig 12 (a-c): US, low motion", "fig12_us_low", false, platform::MotionClass::kLowMotion},
      {"Fig 12 (d-f): US, high motion", "fig12_us_high", false,
       platform::MotionClass::kHighMotion},
      {"Fig 16: Europe, high motion (host CH)", "fig16_eu_high", true,
       platform::MotionClass::kHighMotion},
  };

  std::vector<Cell> cells;
  for (const Block& block : blocks) {
    for (const auto id : vcb::all_platforms()) {
      for (int n = 1; n <= max_n; ++n) {
        Cell c;
        c.block = &block;
        c.id = id;
        c.n = n;
        c.platform_seed = 211 + static_cast<std::uint64_t>(id) * 31 + static_cast<std::uint64_t>(n);
        c.key = std::string(block.key) + "/" + std::string(platform_name(id)) + "/N" +
                std::to_string(n);
        for (int s = 0; s < sessions_per_cell; ++s) cells.push_back(c);
      }
    }
  }

  const SimDuration media_duration = paper ? seconds(60) : seconds(10);
  const int metric_stride = paper ? 4 : 5;
  const auto task = [&cells, media_duration, metric_stride](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    core::QoeBenchmarkConfig cfg;
    cfg.platform = c.id;
    cfg.motion = c.block->motion;
    cfg.host_site = c.block->europe ? "CH" : "US-East";
    cfg.receiver_sites =
        c.block->europe ? core::europe_qoe_receiver_sites(c.n) : core::us_qoe_receiver_sites(c.n);
    cfg.media_duration = media_duration;
    cfg.content_width = 160;
    cfg.content_height = 112;
    cfg.padding = 16;
    cfg.fps = 10.0;
    cfg.metric_stride = metric_stride;
    const auto r = core::run_qoe_session(cfg, ctx.seed ^ c.platform_seed);
    ctx.sample(c.key + ".upload_kbps", r.upload_kbps);
    for (const core::QoeReceiverResult& rx : r.receivers) {
      ctx.sample(c.key + ".download_kbps", rx.download_kbps);
      if (rx.has_delivery_ratio) ctx.sample(c.key + ".delivery_ratio", rx.delivery_ratio);
      if (rx.has_video_qoe) {
        ctx.sample(c.key + ".psnr", rx.psnr);
        ctx.sample(c.key + ".ssim", rx.ssim);
        ctx.sample(c.key + ".vifp", rx.vifp);
      }
    }
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 211;
  rc.label = "fig12_16_qoe";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  for (const Block& block : blocks) {
    std::printf("--- %s ---\n", block.title);
    TextTable table{{"platform", "N", "PSNR (dB)", "SSIM", "VIFp", "deliv", "host up (Kbps)",
                     "down (Kbps)"}};
    for (const auto id : vcb::all_platforms()) {
      for (int n = 1; n <= max_n; ++n) {
        const std::string k = std::string(block.key) + "/" + std::string(platform_name(id)) +
                              "/N" + std::to_string(n);
        auto cell = [&report, &k](const std::string& metric, int digits) {
          const auto* s = report.find_sample(k + metric);
          return s ? TextTable::num(s->mean(), digits) : std::string{"-"};
        };
        const auto* psnr = report.find_sample(k + ".psnr");
        table.add_row({std::string(platform_name(id)), std::to_string(n),
                       psnr ? TextTable::num(psnr->mean(), 1) + " ±" +
                                  TextTable::num(psnr->stddev(), 1)
                            : std::string{"-"},
                       cell(".ssim", 3), cell(".vifp", 3), cell(".delivery_ratio", 2),
                       cell(".upload_kbps", 0), cell(".download_kbps", 0)});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("sessions: %zu  failures: %zu\n", report.sessions, report.failures.size());
  std::printf("wall clock: %.2f s at 1 thread, %.2f s at 8 threads — speedup %.2fx\n",
              serial.wall_seconds, report.wall_seconds,
              report.wall_seconds > 0 ? serial.wall_seconds / report.wall_seconds : 0.0);
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");

  const std::string out_path = "bench_fig12_16_qoe.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
