// Fig 2: packet streams observed on the meeting host (sender) and another
// user (receiver) during the flash-feed lag measurement, plus the per-flash
// lags the big-packet method extracts.
//
// The repetitions run on runner::ExperimentRunner: each repetition is an
// independent single-session lag run recording per-flash lags and their
// quantiles (lag.US-West.p10..p90 — the shape `vcbench_cli report --cdf`
// renders). The run executes once on one thread and once on eight; the two
// aggregate reports must be bit-identical. The ASCII timeline illustration
// comes from one extra direct run (packet traces don't travel through run
// reports).
#include <cstdio>

#include "bench/bench_util.h"
#include "capture/lag_detector.h"
#include "capture/timeline.h"
#include "core/lag_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

vc::core::LagBenchmarkConfig fig2_config(bool paper, std::uint64_t seed) {
  vc::core::LagBenchmarkConfig cfg;
  cfg.platform = vc::platform::PlatformId::kZoom;
  cfg.host_site = "US-East";
  cfg.participant_sites = {"US-West"};
  cfg.sessions = 1;
  cfg.session_duration = paper ? vc::seconds(120) : vc::seconds(24);
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 2 — video lag measurement from packet streams (Zoom, US)", paper);

  // Timeline illustration from one direct run.
  const auto result = core::run_lag_benchmark(fig2_config(paper, 1));
  const double window_sec = 12.0;
  const auto tx = capture::timeline_points(result.sample_sender_trace, net::Direction::kOutgoing);
  const auto rx = capture::timeline_points(result.sample_receiver_trace, net::Direction::kIncoming);
  std::printf("packet timeline, first %.0f s ('#' = packet > 200 B, '.' = smaller):\n\n", window_sec);
  std::printf("sender   |%s|\n", capture::render_ascii_timeline(tx, window_sec).c_str());
  std::printf("receiver |%s|\n\n", capture::render_ascii_timeline(rx, window_sec).c_str());

  const auto tx_events =
      capture::detect_flash_events(result.sample_sender_trace, net::Direction::kOutgoing);
  const auto rx_events =
      capture::detect_flash_events(result.sample_receiver_trace, net::Direction::kIncoming);
  const auto lags = capture::match_lags_ms(tx_events, rx_events);

  TextTable table{{"flash #", "sent at (s)", "received at (s)", "lag (ms)"}};
  for (std::size_t i = 0; i < lags.size() && i < tx_events.size(); ++i) {
    table.add_row({std::to_string(i + 1), TextTable::num(tx_events[i].at.seconds(), 3),
                   TextTable::num(rx_events[i].at.seconds(), 3), TextTable::num(lags[i], 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("flashes detected: sender=%zu receiver=%zu, lags matched=%zu\n", tx_events.size(),
              rx_events.size(), lags.size());

  // Repetition sweep on the runner.
  const std::size_t reps = paper ? 4 : 2;
  const bool paper_scale = paper;
  const auto task = [paper_scale](runner::SessionContext& ctx) {
    const auto r = core::run_lag_benchmark(fig2_config(paper_scale, ctx.seed));
    const auto& p = r.participants.front();
    ctx.sample("lag.US-West.flashes", static_cast<double>(p.lags_ms.size()));
    for (double lag : p.lags_ms) ctx.sample("lag.US-West.ms", lag);
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      if (p.lags_ms.empty()) break;
      ctx.sample("lag.US-West.p" + std::to_string(static_cast<int>(q * 100)),
                 quantile(std::vector<double>(p.lags_ms), q));
    }
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 42;
  rc.label = "fig2_lag_method";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(reps, task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(reps, task);

  const auto* med = report.find_sample("lag.US-West.p50");
  std::printf("median lag US-East -> US-West over %zu repetitions: %.1f ms "
              "(paper: ~50 ms upper range of 20-50)\n",
              reps, med != nullptr ? med->mean() : 0.0);

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");
  const std::string out_path = "bench_fig2_lag_method.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s (render: vcbench_cli report %s --cdf lag.US-West)\n",
                out_path.c_str(), out_path.c_str());
  }
  return identical ? 0 : 1;
}
