// Fig 2: packet streams observed on the meeting host (sender) and another
// user (receiver) during the flash-feed lag measurement, plus the per-flash
// lags the big-packet method extracts.
#include <cstdio>

#include "bench/bench_util.h"
#include "capture/lag_detector.h"
#include "capture/timeline.h"
#include "core/lag_benchmark.h"

int main(int argc, char** argv) {
  using namespace vc;
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Fig 2 — video lag measurement from packet streams (Zoom, US)", paper);

  core::LagBenchmarkConfig cfg;
  cfg.platform = platform::PlatformId::kZoom;
  cfg.host_site = "US-East";
  cfg.participant_sites = {"US-West"};
  cfg.sessions = 1;
  cfg.session_duration = paper ? seconds(120) : seconds(24);
  const auto result = core::run_lag_benchmark(cfg);

  const double window_sec = 12.0;
  const auto tx = capture::timeline_points(result.sample_sender_trace, net::Direction::kOutgoing);
  const auto rx = capture::timeline_points(result.sample_receiver_trace, net::Direction::kIncoming);
  std::printf("packet timeline, first %.0f s ('#' = packet > 200 B, '.' = smaller):\n\n", window_sec);
  std::printf("sender   |%s|\n", capture::render_ascii_timeline(tx, window_sec).c_str());
  std::printf("receiver |%s|\n\n", capture::render_ascii_timeline(rx, window_sec).c_str());

  const auto tx_events =
      capture::detect_flash_events(result.sample_sender_trace, net::Direction::kOutgoing);
  const auto rx_events =
      capture::detect_flash_events(result.sample_receiver_trace, net::Direction::kIncoming);
  const auto lags = capture::match_lags_ms(tx_events, rx_events);

  TextTable table{{"flash #", "sent at (s)", "received at (s)", "lag (ms)"}};
  for (std::size_t i = 0; i < lags.size() && i < tx_events.size(); ++i) {
    table.add_row({std::to_string(i + 1), TextTable::num(tx_events[i].at.seconds(), 3),
                   TextTable::num(rx_events[i].at.seconds(), 3), TextTable::num(lags[i], 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("flashes detected: sender=%zu receiver=%zu, lags matched=%zu\n", tx_events.size(),
              rx_events.size(), lags.size());
  std::printf("median lag US-East -> US-West: %.1f ms (paper: ~50 ms upper range of 20-50)\n",
              lags.empty() ? 0.0 : median(std::vector<double>(lags)));
  return 0;
}
