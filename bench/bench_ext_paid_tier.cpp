// Extension (Section 6, "Free-tier vs paid subscription"): the paper
// verified that paid-tier Webex clients in US-west and Europe stream from
// geographically close-by servers with RTTs under 20 ms. This bench runs the
// same European lag experiment on both tiers.
//
// Each tier is one task on runner::ExperimentRunner running its whole
// multi-session lag benchmark (the VMs persist across a config's sessions),
// executed once on one thread and once on eight; the two aggregate reports
// must be bit-identical.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "core/lag_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

/// Participant labels exactly as run_lag_benchmark derives them (site name,
/// disambiguated with -2, -3... for repeated sites).
std::vector<std::string> participant_labels() {
  const auto sites = core::europe_participant_sites("CH");
  std::unordered_map<std::string, int> site_use;
  std::vector<std::string> labels;
  for (const auto& site : sites) {
    const int idx = site_use[site]++;
    labels.push_back(idx == 0 ? site : site + "-" + std::to_string(idx + 1));
  }
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Extension — Webex free vs paid tier (European sessions)", paper);

  const struct {
    platform::WebexTier tier;
    const char* key;
    const char* label;
  } tiers[] = {
      {platform::WebexTier::kFree, "free", "free tier"},
      {platform::WebexTier::kPaid, "paid", "paid tier"},
  };

  const auto task = [&tiers, paper](runner::SessionContext& ctx) {
    const auto& t = tiers[ctx.task_index];
    core::LagBenchmarkConfig cfg;
    cfg.platform = platform::PlatformId::kWebex;
    cfg.webex_tier = t.tier;
    cfg.host_site = "CH";
    cfg.participant_sites = core::europe_participant_sites("CH");
    cfg.sessions = paper ? 20 : 5;
    cfg.session_duration = paper ? seconds(120) : seconds(40);
    cfg.seed = ctx.seed;
    cfg.metrics = &ctx.metrics;
    const auto result = core::run_lag_benchmark(cfg);
    for (const auto& p : result.participants) {
      const std::string base = std::string("paid_tier/") + t.key + "/" + p.label;
      if (!p.lags_ms.empty()) {
        ctx.sample(base + ".median_lag_ms", median(std::vector<double>(p.lags_ms)));
      }
      if (!p.session_rtt_ms.empty()) {
        ctx.sample(base + ".median_rtt_ms", median(std::vector<double>(p.session_rtt_ms)));
      }
    }
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 71;
  rc.label = "ext_paid_tier";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(std::size(tiers), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(std::size(tiers), task);

  const auto labels = participant_labels();
  for (const auto& t : tiers) {
    std::printf("--- Webex %s: meeting host in CH, participants across Europe ---\n", t.label);
    TextTable table{{"participant", "median lag (ms)", "median RTT (ms)"}};
    for (const auto& label : labels) {
      const std::string base = std::string("paid_tier/") + t.key + "/" + label;
      const auto* lag = report.find_sample(base + ".median_lag_ms");
      const auto* rtt = report.find_sample(base + ".median_rtt_ms");
      table.add_row({label, lag != nullptr ? TextTable::num(lag->mean(), 1) : "-",
                     rtt != nullptr ? TextTable::num(rtt->mean(), 1) : "-"});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("paper (Section 6): with a paid subscription, Webex clients in Europe\n"
              "stream from close-by servers with RTTs < 20 ms — the trans-Atlantic\n"
              "detour (and its ~100 ms lag floor) disappears.\n");

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("\nsessions: %zu  failures: %zu\n", report.sessions, report.failures.size());
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");
  const std::string out_path = "bench_ext_paid_tier.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
