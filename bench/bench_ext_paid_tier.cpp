// Extension (Section 6, "Free-tier vs paid subscription"): the paper
// verified that paid-tier Webex clients in US-west and Europe stream from
// geographically close-by servers with RTTs under 20 ms. This bench runs the
// same European lag experiment on both tiers.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/lag_benchmark.h"

namespace {

void run_tier(vc::platform::WebexTier tier, const char* label, bool paper) {
  using namespace vc;
  std::printf("--- Webex %s: meeting host in CH, participants across Europe ---\n", label);
  core::LagBenchmarkConfig cfg;
  cfg.platform = platform::PlatformId::kWebex;
  cfg.webex_tier = tier;
  cfg.host_site = "CH";
  cfg.participant_sites = core::europe_participant_sites("CH");
  cfg.sessions = paper ? 20 : 5;
  cfg.session_duration = paper ? seconds(120) : seconds(40);
  cfg.seed = 71;
  const auto result = core::run_lag_benchmark(cfg);
  TextTable table{{"participant", "median lag (ms)", "median RTT (ms)"}};
  for (const auto& p : result.participants) {
    table.add_row({p.label,
                   p.lags_ms.empty() ? "-" : TextTable::num(median(std::vector<double>(p.lags_ms)), 1),
                   p.session_rtt_ms.empty()
                       ? "-"
                       : TextTable::num(median(std::vector<double>(p.session_rtt_ms)), 1)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Extension — Webex free vs paid tier (European sessions)", paper);
  run_tier(vc::platform::WebexTier::kFree, "free tier", paper);
  run_tier(vc::platform::WebexTier::kPaid, "paid tier", paper);
  std::printf("paper (Section 6): with a paid subscription, Webex clients in Europe\n"
              "stream from close-by servers with RTTs < 20 ms — the trans-Atlantic\n"
              "detour (and its ~100 ms lag floor) disappears.\n");
  return 0;
}
