// Figs 4–7: CDFs of streaming lag for four scenarios — meeting host in
// US-East (Fig 4), US-West (Fig 5), UK (Fig 6) and Switzerland (Fig 7) —
// across Zoom, Webex and Meet.
//
// Paper anchors (Findings 1–2): US lags 20–50 ms (Zoom), 10–70 ms (Webex),
// 40–70 ms (Meet); Europe lags 90–150 ms (Zoom), 75–90 ms (Webex),
// 30–40 ms (Meet).
//
// Each (figure, platform) pair is one task on the parallel experiment
// runner; a task runs its whole multi-session lag benchmark (the VMs must
// persist across that config's sessions for Meet's endpoint stickiness) and
// samples per-participant lag percentiles into the run report.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "core/lag_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Scenario {
  const char* figure;
  const char* host;
  bool europe;
};

constexpr Scenario kScenarios[] = {
    {"Fig 4", "US-East", false},
    {"Fig 5", "US-West", false},
    {"Fig 6", "UK-West", true},
    {"Fig 7", "CH", true},
};

struct Point {
  const Scenario* scenario = nullptr;
  platform::PlatformId id{};
  std::string key;  // e.g. "Fig 4/Zoom"
};

constexpr double kQuantiles[] = {0.1, 0.25, 0.5, 0.75, 0.9};
constexpr const char* kQuantileNames[] = {"p10", "p25", "p50", "p75", "p90"};

/// Participant labels exactly as run_lag_benchmark derives them (site name,
/// disambiguated with -2, -3... for repeated sites).
std::vector<std::string> participant_labels(const Scenario& sc) {
  const auto sites = sc.europe ? core::europe_participant_sites(sc.host)
                               : core::us_participant_sites(sc.host);
  std::unordered_map<std::string, int> site_use;
  std::vector<std::string> labels;
  for (const auto& site : sites) {
    const int idx = site_use[site]++;
    labels.push_back(idx == 0 ? site : site + "-" + std::to_string(idx + 1));
  }
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Figs 4-7 — CDFs of streaming lag (percentile summaries)", paper);

  std::vector<Point> points;
  for (const auto& sc : kScenarios) {
    for (const auto id : vcb::all_platforms()) {
      points.push_back(
          Point{&sc, id, std::string(sc.figure) + "/" + std::string(platform_name(id))});
    }
  }

  const auto task = [&points, paper](runner::SessionContext& ctx) {
    const Point& p = points[ctx.task_index];
    core::LagBenchmarkConfig cfg;
    cfg.platform = p.id;
    cfg.host_site = p.scenario->host;
    cfg.participant_sites = p.scenario->europe
                                ? core::europe_participant_sites(cfg.host_site)
                                : core::us_participant_sites(cfg.host_site);
    cfg.sessions = paper ? 20 : 6;
    cfg.session_duration = paper ? seconds(120) : seconds(40);
    cfg.seed = ctx.seed;
    cfg.metrics = &ctx.metrics;
    const auto result = core::run_lag_benchmark(cfg);
    for (const auto& part : result.participants) {
      const std::string base = p.key + "/" + part.label;
      for (std::size_t q = 0; q < std::size(kQuantiles); ++q) {
        ctx.sample(base + "." + kQuantileNames[q],
                   quantile(std::vector<double>(part.lags_ms), kQuantiles[q]));
      }
      ctx.sample(base + ".lag_samples", static_cast<double>(part.lags_ms.size()));
    }
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 7;
  rc.label = "fig4_7_lag_cdf";
  const auto report = runner::ExperimentRunner{rc}.run(points.size(), task);

  for (const auto& sc : kScenarios) {
    std::printf("--- %s: meeting host in %s ---\n", sc.figure, sc.host);
    TextTable table{{"platform", "participant", "p10/p25/p50/p75/p90 lag (ms)", "samples"}};
    const auto labels = participant_labels(sc);
    for (const auto id : vcb::all_platforms()) {
      for (const auto& label : labels) {
        const std::string base =
            std::string(sc.figure) + "/" + std::string(platform_name(id)) + "/" + label;
        const auto* count = report.find_sample(base + ".lag_samples");
        if (count == nullptr) continue;  // task failed; listed below
        std::string row;
        for (std::size_t q = 0; q < std::size(kQuantileNames); ++q) {
          const auto* v = report.find_sample(base + "." + kQuantileNames[q]);
          row += TextTable::num(v != nullptr ? v->mean() : 0.0, 1);
          if (q + 1 < std::size(kQuantileNames)) row += "/";
        }
        table.add_row({std::string(platform_name(id)), label, row,
                       std::to_string(static_cast<std::int64_t>(count->mean()))});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "expected shapes: lag grows with distance from the host-side relay (Zoom/Webex);\n"
      "Webex relays everything via US-East (west-coast sessions detour); Meet is uniform\n"
      "and lowest in Europe thanks to its distributed endpoints, but highest in the US.\n\n");

  std::printf("run: %zu tasks, %zu failures, %.2f s wall on %zu threads\n", report.sessions,
              report.failures.size(), report.wall_seconds, report.threads);
  for (const auto& [idx, what] : report.failures) {
    std::printf("  task %zu (%s) failed: %s\n", idx, points[idx].key.c_str(), what.c_str());
  }
  const std::string out_path = "bench_fig4_7_lag_cdf.report.json";
  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return 0;
}
