// Figs 4–7: CDFs of streaming lag for four scenarios — meeting host in
// US-East (Fig 4), US-West (Fig 5), UK (Fig 6) and Switzerland (Fig 7) —
// across Zoom, Webex and Meet.
//
// Paper anchors (Findings 1–2): US lags 20–50 ms (Zoom), 10–70 ms (Webex),
// 40–70 ms (Meet); Europe lags 90–150 ms (Zoom), 75–90 ms (Webex),
// 30–40 ms (Meet).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/lag_benchmark.h"

namespace {

void run_scenario(const char* figure, const std::string& host, bool europe, bool paper) {
  using namespace vc;
  std::printf("--- %s: meeting host in %s ---\n", figure, host.c_str());
  TextTable table{{"platform", "participant", "p10/p25/p50/p75/p90 lag (ms)", "samples"}};
  for (const auto id : vcb::all_platforms()) {
    core::LagBenchmarkConfig cfg;
    cfg.platform = id;
    cfg.host_site = host;
    cfg.participant_sites =
        europe ? core::europe_participant_sites(host) : core::us_participant_sites(host);
    cfg.sessions = paper ? 20 : 6;
    cfg.session_duration = paper ? seconds(120) : seconds(40);
    cfg.seed = 7 + static_cast<std::uint64_t>(id);
    const auto result = core::run_lag_benchmark(cfg);
    for (const auto& p : result.participants) {
      table.add_row({std::string(platform_name(id)), p.label, vcb::cdf_row(p.lags_ms),
                     std::to_string(p.lags_ms.size())});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  vcb::banner("Figs 4-7 — CDFs of streaming lag (percentile summaries)", paper);
  run_scenario("Fig 4", "US-East", false, paper);
  run_scenario("Fig 5", "US-West", false, paper);
  run_scenario("Fig 6", "UK-West", true, paper);
  run_scenario("Fig 7", "CH", true, paper);
  std::printf(
      "expected shapes: lag grows with distance from the host-side relay (Zoom/Webex);\n"
      "Webex relays everything via US-East (west-coast sessions detour); Meet is uniform\n"
      "and lowest in Europe thanks to its distributed endpoints, but highest in the US.\n");
  return 0;
}
