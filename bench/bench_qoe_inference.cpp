// Header-free QoE inference scored against ground truth (PR 8).
//
// Each cell is one broadcast session (core::run_qoe_inference_session):
// a host streams to one receiver whose last-mile follows the cell's shaper
// profile and scripted outage plan; the receiver's packet capture — record
// timestamps/lengths only — goes through capture::QoeInferencer, and the
// estimate is joined against the session's own codec-side truth. Reported
// per cell: frame-rate absolute error, bitrate-tier-timeline accuracy and
// freeze precision/recall.
//
// The sweep (platform × shaper profile × outage plan) runs on
// runner::ExperimentRunner once at 1 thread and once at 8; the aggregate
// reports must be bit-identical, and `--shards K` (relay fan-out sharding)
// must not change a byte either (exit 1).
//
// `--gate <mae_fps>` switches to the accuracy gate CI's perf-smoke job runs:
// scripted-outage scenes across all three platforms, pooled. Frame-rate MAE
// must stay at or below the gate (2 fps in CI), freeze precision and recall
// at or above 0.9, and the 1-vs-8-thread aggregates byte-identical —
// exit 3 on an accuracy miss, exit 1 on a determinism regression.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/qoe_infer_benchmark.h"
#include "runner/experiment_runner.h"

namespace {

using namespace vc;

struct Scene {
  const char* name;
  std::vector<std::pair<SimDuration, SimDuration>> outages;
};

struct Cell {
  platform::PlatformId id{};
  core::InferShaperProfile shaper{};
  const Scene* scene = nullptr;
  std::uint64_t cell_seed = 0;
  std::string key;  // e.g. "Zoom/dsl3m/out6s2s"
};

double flag_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

core::QoeInferBenchmarkConfig cell_config(const Cell& c, SimDuration media_duration,
                                          int shards) {
  core::QoeInferBenchmarkConfig cfg;
  cfg.platform = c.id;
  cfg.shaper = c.shaper;
  cfg.outages = c.scene->outages;
  cfg.media_duration = media_duration;
  cfg.fan_out_shards = shards;
  return cfg;
}

void sample_cell(runner::SessionContext& ctx, const std::string& key,
                 const core::QoeInferSessionResult& r) {
  ctx.sample(key + ".fps_abs_err", r.fps_abs_err);
  ctx.sample(key + ".inferred_fps", r.inferred_fps);
  ctx.sample(key + ".truth_fps", r.truth_fps);
  ctx.sample(key + ".tier_accuracy", r.tier_accuracy);
  ctx.sample(key + ".tier_windows", static_cast<double>(r.tier_windows));
  ctx.sample(key + ".freeze_precision", r.freeze_precision);
  ctx.sample(key + ".freeze_recall", r.freeze_recall);
  ctx.sample(key + ".inferred_freezes", static_cast<double>(r.inferred_freezes));
  ctx.sample(key + ".video_kbps", r.inferred_video_kbps);
}

/// Accuracy gate (CI perf-smoke): scripted-outage scenes on every platform,
/// pooled MAE / precision / recall against hard thresholds, plus the usual
/// 1-vs-8-thread byte identity. Returns the process exit code.
int run_gate(double mae_gate, int shards, const std::string& out_path) {
  const SimDuration media_duration = seconds(16);
  static const Scene kGateScene{"out6s2s", {{seconds(6), seconds(2)}}};

  std::vector<Cell> cells;
  for (const auto id : vcb::all_platforms()) {
    Cell c;
    c.id = id;
    c.shaper = core::InferShaperProfile::kUnshaped;
    c.scene = &kGateScene;
    c.cell_seed = 7100 + static_cast<std::uint64_t>(id) * 13;
    c.key = std::string(platform_name(id)) + "/" + kGateScene.name;
    cells.push_back(c);
  }

  // The gate needs the raw per-session numbers, not just the aggregate
  // moments — collect them under stable per-cell keys and read them back.
  const auto task = [&cells, media_duration, shards](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index % cells.size()];
    const auto r = core::run_qoe_inference_session(
        cell_config(c, media_duration, shards), ctx.seed ^ c.cell_seed);
    sample_cell(ctx, c.key, r);
    sample_cell(ctx, "pooled", r);
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 7100;
  rc.label = "qoe_infer_gate";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  if (!report.failures.empty()) {
    std::printf("FAIL: %zu gate session(s) threw\n", report.failures.size());
    return 1;
  }
  if (serial.aggregate_json() != report.aggregate_json()) {
    std::printf("FAIL: aggregate reports differ across thread counts — "
                "determinism regression\n");
    return 1;
  }

  const auto* mae = report.find_sample("pooled.fps_abs_err");
  const auto* precision = report.find_sample("pooled.freeze_precision");
  const auto* recall = report.find_sample("pooled.freeze_recall");
  if (!mae || !precision || !recall) {
    std::printf("FAIL: pooled accuracy samples missing from the report\n");
    return 1;
  }
  std::printf("accuracy gate over %zu scripted-outage scenes:\n", report.sessions);
  std::printf("  frame-rate MAE %.3f fps (gate <= %.2f)\n", mae->mean(), mae_gate);
  std::printf("  freeze precision %.3f, recall %.3f (gate >= 0.90)\n", precision->mean(),
              recall->mean());
  std::printf("  aggregates byte-identical across 1/8 threads: yes\n");

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\n  \"benchmark\": \"qoe_infer_gate\",\n  \"scenes\": %zu,\n"
                "  \"fps_mae\": %.6f,\n  \"fps_mae_gate\": %.2f,\n"
                "  \"freeze_precision\": %.6f,\n  \"freeze_recall\": %.6f,\n"
                "  \"freeze_gate\": 0.9,\n  \"aggregates_byte_identical\": true\n}\n",
                report.sessions, mae->mean(), mae_gate, precision->mean(), recall->mean());
  if (runner::write_text_file(out_path, json)) {
    std::printf("report written to %s\n", out_path.c_str());
  }

  if (mae->mean() > mae_gate || precision->mean() < 0.9 || recall->mean() < 0.9) {
    std::printf("FAIL: header-free inference accuracy below the gate\n");
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = vcb::paper_scale(argc, argv);
  const int shards = vcb::int_flag(argc, argv, "--shards", 0);
  const double gate = flag_double(argc, argv, "--gate", 0.0);
  const std::string out_path =
      flag_string(argc, argv, "--out", "bench_qoe_inference.report.json");
  if (gate > 0.0) return run_gate(gate, shards, out_path);

  vcb::banner("Header-free QoE inference — estimate vs ground truth", paper);

  static const Scene kClean{"clean", {}};
  static const Scene kOneOutage{"out6s2s", {{seconds(6), seconds(2)}}};
  static const Scene kTwoOutages{"out4s+12s", {{seconds(4), seconds(2)}, {seconds(12), seconds(3)}}};
  std::vector<const Scene*> scenes = {&kClean, &kOneOutage};
  std::vector<core::InferShaperProfile> shapers = {core::InferShaperProfile::kUnshaped,
                                                   core::InferShaperProfile::kDsl};
  SimDuration media_duration = seconds(16);
  int sessions_per_cell = 1;
  if (paper) {
    scenes.push_back(&kTwoOutages);
    shapers.push_back(core::InferShaperProfile::kCongested);
    media_duration = seconds(30);
    sessions_per_cell = 3;
  }

  std::vector<Cell> cells;
  for (const auto id : vcb::all_platforms()) {
    for (const auto shaper : shapers) {
      for (const Scene* scene : scenes) {
        Cell c;
        c.id = id;
        c.shaper = shaper;
        c.scene = scene;
        c.cell_seed = 7001 + static_cast<std::uint64_t>(id) * 37 +
                      static_cast<std::uint64_t>(shaper) * 101;
        c.key = std::string(platform_name(id)) + "/" +
                core::infer_shaper_profile_name(shaper) + "/" + scene->name;
        for (int s = 0; s < sessions_per_cell; ++s) cells.push_back(c);
      }
    }
  }

  const auto task = [&cells, media_duration, shards](runner::SessionContext& ctx) {
    const Cell& c = cells[ctx.task_index];
    core::QoeInferBenchmarkConfig cfg = cell_config(c, media_duration, shards);
    cfg.metrics = &ctx.metrics;
    cfg.tracer = ctx.tracer;
    const auto r = core::run_qoe_inference_session(cfg, ctx.seed ^ c.cell_seed);
    sample_cell(ctx, c.key, r);
  };

  runner::ExperimentRunner::Config rc;
  rc.base_seed = 7001;
  rc.label = "qoe_inference";
  rc.threads = 1;
  const auto serial = runner::ExperimentRunner{rc}.run(cells.size(), task);
  rc.threads = 8;
  const auto report = runner::ExperimentRunner{rc}.run(cells.size(), task);

  TextTable table{{"platform", "shaper", "scene", "truth fps", "est fps", "|err|",
                   "tier acc", "frz P", "frz R"}};
  auto cell_num = [&report](const std::string& key, int digits) {
    const auto* s = report.find_sample(key);
    return s ? TextTable::num(s->mean(), digits) : std::string{"-"};
  };
  for (const auto id : vcb::all_platforms()) {
    for (const auto shaper : shapers) {
      for (const Scene* scene : scenes) {
        const std::string k = std::string(platform_name(id)) + "/" +
                              core::infer_shaper_profile_name(shaper) + "/" + scene->name;
        table.add_row({std::string(platform_name(id)),
                       core::infer_shaper_profile_name(shaper), scene->name,
                       cell_num(k + ".truth_fps", 2), cell_num(k + ".inferred_fps", 2),
                       cell_num(k + ".fps_abs_err", 2), cell_num(k + ".tier_accuracy", 2),
                       cell_num(k + ".freeze_precision", 2),
                       cell_num(k + ".freeze_recall", 2)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  const bool identical = serial.aggregate_json() == report.aggregate_json();
  std::printf("sessions: %zu  failures: %zu  fan_out_shards: %d\n", report.sessions,
              report.failures.size(), shards);
  std::printf("wall clock: %.2f s at 1 thread, %.2f s at 8 threads — speedup %.2fx\n",
              serial.wall_seconds, report.wall_seconds,
              report.wall_seconds > 0 ? serial.wall_seconds / report.wall_seconds : 0.0);
  std::printf("aggregate reports bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — determinism regression!");

  if (runner::write_text_file(out_path, report.to_json())) {
    std::printf("report written to %s\n", out_path.c_str());
  }
  return identical && report.failures.empty() ? 0 : 1;
}
