#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "platform/relay.h"

namespace vc::platform {
namespace {

struct RelayFixture : public ::testing::Test {
  RelayFixture()
      : net(std::make_unique<net::FixedLatencyModel>(millis(5)), 1),
        relay(net, "relay", GeoPoint{38.9, -77.4}, 8801,
              RelayServer::ForwardingDelay{millis(2), 0.0}) {}

  net::Host& make_client(const std::string& name, std::uint16_t port,
                         std::vector<net::Packet>* sink) {
    net::Host& h = net.add_host(name, GeoPoint{40.0, -75.0});
    auto& sock = h.udp_bind(port);
    sock.on_receive([sink](const net::Packet& p) {
      if (sink != nullptr) sink->push_back(p);
    });
    return h;
  }

  void send_media(net::Host& from, std::uint16_t port, net::StreamKind kind, std::uint32_t origin,
                  std::int64_t l7 = 1000, std::uint64_t seq = 0) {
    net::Packet p;
    p.dst = relay.endpoint();
    p.l7_len = l7;
    p.kind = kind;
    p.origin_id = origin;
    p.seq = seq;
    from.udp_socket(port)->send(std::move(p));
  }

  net::Network net;
  RelayServer relay;
};

TEST_F(RelayFixture, ForwardsToAllOthersNotSender) {
  std::vector<net::Packet> a_rx;
  std::vector<net::Packet> b_rx;
  std::vector<net::Packet> c_rx;
  net::Host& a = make_client("a", 100, &a_rx);
  net::Host& b = make_client("b", 100, &b_rx);
  net::Host& c = make_client("c", 100, &c_rx);
  relay.add_participant(1, 1, {a.ip(), 100});
  relay.add_participant(1, 2, {b.ip(), 100});
  relay.add_participant(1, 3, {c.ip(), 100});
  send_media(a, 100, net::StreamKind::kVideo, 1);
  net.loop().run();
  EXPECT_TRUE(a_rx.empty());  // never echoed back
  ASSERT_EQ(b_rx.size(), 1u);
  ASSERT_EQ(c_rx.size(), 1u);
  EXPECT_EQ(b_rx[0].l7_len, 1000);
  EXPECT_EQ(b_rx[0].origin_id, 1u);
  EXPECT_EQ(relay.stats().media_in, 1);
  EXPECT_EQ(relay.stats().media_forwarded, 2);
}

TEST_F(RelayFixture, UnregisteredSenderDropped) {
  std::vector<net::Packet> b_rx;
  net::Host& a = make_client("a", 100, nullptr);
  (void)a;
  net::Host& stranger = net.add_host("stranger", GeoPoint{0, 0});
  stranger.udp_bind(100);
  net::Host& b = make_client("b", 100, &b_rx);
  relay.add_participant(1, 2, {b.ip(), 100});
  net::Packet p;
  p.dst = relay.endpoint();
  p.l7_len = 500;
  p.kind = net::StreamKind::kVideo;
  stranger.udp_socket(100)->send(std::move(p));
  net.loop().run();
  EXPECT_TRUE(b_rx.empty());
}

TEST_F(RelayFixture, SubscriptionScaleThinsStream) {
  std::vector<net::Packet> b_rx;
  net::Host& a = make_client("a", 100, nullptr);
  net::Host& b = make_client("b", 100, &b_rx);
  relay.add_participant(1, 1, {a.ip(), 100});
  relay.add_participant(1, 2, {b.ip(), 100});
  relay.set_subscriptions(1, 2, {{1, 0.25}});
  send_media(a, 100, net::StreamKind::kVideo, 1, 1000);
  net.loop().run();
  ASSERT_EQ(b_rx.size(), 1u);
  EXPECT_EQ(b_rx[0].l7_len, 250);
  EXPECT_EQ(b_rx[0].payload, nullptr);  // thinned layer is not decodable
}

TEST_F(RelayFixture, ZeroScaleUnsubscribes) {
  std::vector<net::Packet> b_rx;
  net::Host& a = make_client("a", 100, nullptr);
  net::Host& b = make_client("b", 100, &b_rx);
  relay.add_participant(1, 1, {a.ip(), 100});
  relay.add_participant(1, 2, {b.ip(), 100});
  relay.set_subscriptions(1, 2, {{1, 0.0}});
  send_media(a, 100, net::StreamKind::kVideo, 1);
  net.loop().run();
  EXPECT_TRUE(b_rx.empty());
}

TEST_F(RelayFixture, AudioNeverThinned) {
  std::vector<net::Packet> b_rx;
  net::Host& a = make_client("a", 100, nullptr);
  net::Host& b = make_client("b", 100, &b_rx);
  relay.add_participant(1, 1, {a.ip(), 100});
  relay.add_participant(1, 2, {b.ip(), 100});
  relay.set_subscriptions(1, 2, {{1, 0.25}});
  send_media(a, 100, net::StreamKind::kAudio, 1, 225);
  net.loop().run();
  ASSERT_EQ(b_rx.size(), 1u);
  EXPECT_EQ(b_rx[0].l7_len, 225);
}

TEST_F(RelayFixture, AnswersProbesFromAnyone) {
  std::vector<net::Packet> rx;
  net::Host& prober = make_client("prober", 5555, &rx);
  net::Packet probe;
  probe.dst = relay.endpoint();
  probe.l7_len = 64;
  probe.kind = net::StreamKind::kProbe;
  probe.seq = 77;
  prober.udp_socket(5555)->send(std::move(probe));
  net.loop().run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].kind, net::StreamKind::kProbeReply);
  EXPECT_EQ(rx[0].seq, 77u);
  EXPECT_EQ(relay.stats().probes_answered, 1);
}

TEST_F(RelayFixture, ControlRoutedToConcernedParticipantOnly) {
  std::vector<net::Packet> a_rx;
  std::vector<net::Packet> c_rx;
  net::Host& a = make_client("a", 100, &a_rx);
  net::Host& b = make_client("b", 100, nullptr);
  net::Host& c = make_client("c", 100, &c_rx);
  relay.add_participant(1, 1, {a.ip(), 100});
  relay.add_participant(1, 2, {b.ip(), 100});
  relay.add_participant(1, 3, {c.ip(), 100});
  // b reports about participant 1's stream.
  send_media(b, 100, net::StreamKind::kControl, /*origin=*/1, 48);
  net.loop().run();
  ASSERT_EQ(a_rx.size(), 1u);
  EXPECT_EQ(a_rx[0].kind, net::StreamKind::kControl);
  EXPECT_TRUE(c_rx.empty());
}

TEST_F(RelayFixture, MeetingsAreIsolated) {
  std::vector<net::Packet> b_rx;
  std::vector<net::Packet> x_rx;
  net::Host& a = make_client("a", 100, nullptr);
  net::Host& b = make_client("b", 100, &b_rx);
  net::Host& x = make_client("x", 100, &x_rx);
  relay.add_participant(1, 1, {a.ip(), 100});
  relay.add_participant(1, 2, {b.ip(), 100});
  relay.add_participant(2, 1, {x.ip(), 100});
  send_media(a, 100, net::StreamKind::kVideo, 1);
  net.loop().run();
  EXPECT_EQ(b_rx.size(), 1u);
  EXPECT_TRUE(x_rx.empty());
}

TEST_F(RelayFixture, RemoveParticipantStopsDelivery) {
  std::vector<net::Packet> b_rx;
  net::Host& a = make_client("a", 100, nullptr);
  net::Host& b = make_client("b", 100, &b_rx);
  relay.add_participant(1, 1, {a.ip(), 100});
  relay.add_participant(1, 2, {b.ip(), 100});
  relay.remove_participant(1, 2);
  send_media(a, 100, net::StreamKind::kVideo, 1);
  net.loop().run();
  EXPECT_TRUE(b_rx.empty());
}

TEST_F(RelayFixture, PeerForwardingOnceNoLoops) {
  RelayServer peer{net, "peer", GeoPoint{50.0, 8.0}, 8801,
                   RelayServer::ForwardingDelay{millis(2), 0.0}};
  std::vector<net::Packet> a_rx;
  std::vector<net::Packet> b_rx;
  net::Host& a = make_client("a", 100, &a_rx);
  net::Host& b = make_client("b", 100, &b_rx);
  relay.add_participant(1, 1, {a.ip(), 100});
  peer.add_participant(1, 2, {b.ip(), 100});
  relay.link_peer(1, &peer);
  peer.link_peer(1, &relay);
  send_media(a, 100, net::StreamKind::kVideo, 1);
  net.loop().run();
  // b gets exactly one copy via the peer leg; nothing bounces back to a.
  ASSERT_EQ(b_rx.size(), 1u);
  EXPECT_TRUE(a_rx.empty());
}

TEST_F(RelayFixture, MediaAndPeerForwardsCountedSeparately) {
  // Regression: the old single `media_forwarded` counter mixed participant
  // copies with peer front-end forwards, overstating per-receiver fan-out.
  // One ingest with one local receiver and one linked peer must count one
  // media copy and one peer copy, never two of either.
  RelayServer peer{net, "peer", GeoPoint{50.0, 8.0}, 8801,
                   RelayServer::ForwardingDelay{millis(2), 0.0}};
  MetricsRegistry metrics;
  relay.attach_metrics(metrics, "relay");
  std::vector<net::Packet> b_rx;
  std::vector<net::Packet> c_rx;
  net::Host& a = make_client("a", 100, nullptr);
  net::Host& b = make_client("b", 100, &b_rx);
  net::Host& c = make_client("c", 100, &c_rx);
  relay.add_participant(1, 1, {a.ip(), 100});
  relay.add_participant(1, 2, {b.ip(), 100});
  peer.add_participant(1, 3, {c.ip(), 100});
  relay.link_peer(1, &peer);
  peer.link_peer(1, &relay);
  send_media(a, 100, net::StreamKind::kVideo, 1);
  net.loop().run();
  ASSERT_EQ(b_rx.size(), 1u);
  ASSERT_EQ(c_rx.size(), 1u);
  EXPECT_EQ(relay.stats().media_forwarded, 1);
  EXPECT_EQ(relay.stats().peer_forwarded, 1);
  EXPECT_EQ(metrics.counters().at("relay.media_forwarded").value(), 1);
  EXPECT_EQ(metrics.counters().at("relay.peer_forwarded").value(), 1);
  // The fan-out histogram sees participant copies only: one observation of
  // value 1, not 2.
  const auto& fan_out = metrics.histograms().at("relay.fan_out").stats();
  EXPECT_EQ(fan_out.count(), 1u);
  EXPECT_EQ(fan_out.max(), 1.0);
  // The peer relay forwarded to its own participant and, having received
  // the packet from a peer, never forwarded onward to peers again.
  EXPECT_EQ(peer.stats().media_forwarded, 1);
  EXPECT_EQ(peer.stats().peer_forwarded, 0);
}

TEST_F(RelayFixture, DepartureStateReclaimedWithMembership) {
  // Regression: the predecessor kept departure state in an endpoint-keyed
  // map that only ever grew. It now lives inside the Participant/PeerLink
  // records, so membership removal must reclaim it.
  RelayServer peer{net, "peer", GeoPoint{50.0, 8.0}, 8801,
                   RelayServer::ForwardingDelay{millis(2), 0.0}};
  net::Host& a = make_client("a", 100, nullptr);
  net::Host& b = make_client("b", 100, nullptr);
  EXPECT_EQ(relay.departure_state_size(), 0u);
  relay.add_participant(1, 1, {a.ip(), 100});
  relay.add_participant(1, 2, {b.ip(), 100});
  relay.link_peer(1, &peer);
  EXPECT_EQ(relay.departure_state_size(), 3u);
  // Exercise the pipeline so the state is live, not just allocated.
  send_media(a, 100, net::StreamKind::kVideo, 1);
  net.loop().run();
  relay.remove_participant(1, 2);
  EXPECT_EQ(relay.departure_state_size(), 2u);
  relay.unlink_peer(1, &peer);
  EXPECT_EQ(relay.departure_state_size(), 1u);
  relay.remove_meeting(1);
  EXPECT_EQ(relay.departure_state_size(), 0u);
}

TEST_F(RelayFixture, DepartureStateStableAcrossRepeatedSessions) {
  // Join/leave cycles (fresh clients every session, same relay) must not
  // accumulate per-destination state.
  net::Host& a = make_client("a", 100, nullptr);
  net::Host& b = make_client("b", 100, nullptr);
  for (int s = 0; s < 50; ++s) {
    relay.add_participant(1, 1, {a.ip(), static_cast<std::uint16_t>(100)});
    relay.add_participant(1, 2, {b.ip(), static_cast<std::uint16_t>(100)});
    send_media(a, 100, net::StreamKind::kVideo, 1);
    net.loop().run();
    relay.remove_meeting(1);
  }
  EXPECT_EQ(relay.departure_state_size(), 0u);
}

TEST_F(RelayFixture, JitteredForwardingNeverReordersAStream) {
  // The per-destination departure floor makes the pipeline FIFO even though
  // each packet draws an independent jittered processing delay.
  RelayServer jittery{net, "jittery", GeoPoint{38.9, -77.4}, 9000,
                      RelayServer::ForwardingDelay{millis(2), 5.0}};
  std::vector<net::Packet> b_rx;
  net::Host& a = make_client("a", 100, nullptr);
  net::Host& b = make_client("b", 100, &b_rx);
  jittery.add_participant(1, 1, {a.ip(), 100});
  jittery.add_participant(1, 2, {b.ip(), 100});
  for (std::uint64_t i = 0; i < 200; ++i) {
    net::Packet p;
    p.dst = jittery.endpoint();
    p.l7_len = 1000;
    p.kind = net::StreamKind::kVideo;
    p.origin_id = 1;
    p.seq = i;
    a.udp_socket(100)->send(std::move(p));
  }
  net.loop().run();
  ASSERT_EQ(b_rx.size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) EXPECT_EQ(b_rx[i].seq, i);
}

TEST_F(RelayFixture, ForwardingDelayApplied) {
  std::vector<net::Packet> b_rx;
  net::Host& a = make_client("a", 100, nullptr);
  net::Host& b = make_client("b", 100, &b_rx);
  relay.add_participant(1, 1, {a.ip(), 100});
  relay.add_participant(1, 2, {b.ip(), 100});
  SimTime arrival{};
  b.udp_socket(100)->on_receive([&](const net::Packet&) { arrival = net.now(); });
  send_media(a, 100, net::StreamKind::kVideo, 1);
  net.loop().run();
  // 5 ms client→relay + 2 ms processing + 5 ms relay→client.
  EXPECT_EQ(arrival, SimTime{12'000});
}

}  // namespace
}  // namespace vc::platform
