// Relay and meeting lifecycle edge cases: teardown, re-registration,
// peer unlinking, view churn, and membership churn mid-session.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "platform/base_platform.h"

namespace vc::platform {
namespace {

const GeoPoint kVirginia{38.9, -77.4};
const GeoPoint kCalifornia{37.8, -122.4};
const GeoPoint kLondon{51.51, -0.13};

struct LifecycleFixture : public ::testing::Test {
  LifecycleFixture() : net(std::make_unique<net::FixedLatencyModel>(millis(5)), 1) {}

  ClientRef make_client(const std::string& name, GeoPoint where, std::uint16_t port,
                        std::vector<net::Packet>* sink = nullptr) {
    net::Host& h = net.add_host(name, where);
    auto& sock = h.udp_bind(port);
    sock.on_receive([sink](const net::Packet& p) {
      if (sink != nullptr) sink->push_back(p);
    });
    return ClientRef{&h, port, DeviceClass::kCloudVm, ViewMode::kFullScreen, true};
  }

  void send_video(const ClientRef& from, net::Endpoint to, ParticipantId origin) {
    net::Packet p;
    p.dst = to;
    p.l7_len = 900;
    p.kind = net::StreamKind::kVideo;
    p.origin_id = origin;
    from.host->udp_socket(from.media_port)->send(std::move(p));
  }

  net::Network net;
};

TEST_F(LifecycleFixture, EndMeetingStopsForwarding) {
  WebexPlatform webex{net};
  std::vector<net::Packet> rx;
  const auto host = make_client("h", kVirginia, 47000);
  const auto p2 = make_client("p", kCalifornia, 47001, &rx);
  RouteInfo route;
  const auto meeting = webex.create_meeting(host, [&](RouteInfo r) { route = r; });
  webex.join(meeting, p2, [](RouteInfo) {});
  send_video(host, route.media_endpoint, 1);
  net.loop().run();
  ASSERT_EQ(rx.size(), 1u);

  webex.end_meeting(meeting);
  send_video(host, route.media_endpoint, 1);
  net.loop().run();
  EXPECT_EQ(rx.size(), 1u);  // relay no longer knows the meeting
}

TEST_F(LifecycleFixture, LeaveStopsDeliveryToLeaver) {
  WebexPlatform webex{net};
  std::vector<net::Packet> p2_rx;
  std::vector<net::Packet> p3_rx;
  const auto host = make_client("h", kVirginia, 47000);
  const auto p2 = make_client("p2", kCalifornia, 47001, &p2_rx);
  const auto p3 = make_client("p3", kCalifornia, 47002, &p3_rx);
  RouteInfo route;
  const auto meeting = webex.create_meeting(host, [&](RouteInfo r) { route = r; });
  const auto id2 = webex.join(meeting, p2, [](RouteInfo) {});
  webex.join(meeting, p3, [](RouteInfo) {});
  webex.leave(meeting, id2);
  send_video(host, route.media_endpoint, 1);
  net.loop().run();
  EXPECT_TRUE(p2_rx.empty());
  EXPECT_EQ(p3_rx.size(), 1u);
}

TEST_F(LifecycleFixture, ViewChurnUpdatesSubscriptionsRepeatedly) {
  ZoomPlatform zoom{net};
  std::vector<net::Packet> rx;
  const auto host = make_client("h", kVirginia, 47000);
  const auto p2 = make_client("p2", kCalifornia, 47001, &rx);
  const auto p3 = make_client("p3", kCalifornia, 47002);
  RouteInfo route;
  const auto meeting = zoom.create_meeting(host, [&](RouteInfo r) { route = r; });
  const auto id2 = zoom.join(meeting, p2, [](RouteInfo) {});
  zoom.join(meeting, p3, [](RouteInfo) {});

  // Full screen: full-rate main stream.
  send_video(host, route.media_endpoint, 1);
  net.loop().run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].l7_len, 900);

  // Gallery: thinned tiles.
  zoom.set_view_mode(meeting, id2, ViewMode::kGallery);
  send_video(host, route.media_endpoint, 1);
  net.loop().run();
  ASSERT_EQ(rx.size(), 2u);
  EXPECT_LT(rx[1].l7_len, 900);

  // Audio-only: nothing.
  zoom.set_view_mode(meeting, id2, ViewMode::kAudioOnly);
  send_video(host, route.media_endpoint, 1);
  net.loop().run();
  EXPECT_EQ(rx.size(), 2u);

  // And back to full screen.
  zoom.set_view_mode(meeting, id2, ViewMode::kFullScreen);
  send_video(host, route.media_endpoint, 1);
  net.loop().run();
  ASSERT_EQ(rx.size(), 3u);
  EXPECT_EQ(rx[2].l7_len, 900);
}

TEST_F(LifecycleFixture, MeetCrossFrontEndTeardown) {
  MeetPlatform meet{net};
  std::vector<net::Packet> rx;
  const auto host = make_client("h", kVirginia, 47000);
  const auto p2 = make_client("p2", kLondon, 47001, &rx);
  RouteInfo host_route;
  const auto meeting = meet.create_meeting(host, [&](RouteInfo r) { host_route = r; });
  meet.join(meeting, p2, [](RouteInfo) {});
  send_video(host, host_route.media_endpoint, 1);
  net.loop().run();
  ASSERT_EQ(rx.size(), 1u);  // delivered across two front-ends

  meet.end_meeting(meeting);
  send_video(host, host_route.media_endpoint, 1);
  net.loop().run();
  EXPECT_EQ(rx.size(), 1u);
}

TEST_F(LifecycleFixture, SequentialMeetingsOnSamePlatform) {
  // Meetings created one after another must not interfere; Zoom gets a
  // fresh relay each time.
  ZoomPlatform zoom{net};
  std::vector<net::Endpoint> endpoints;
  for (int s = 0; s < 3; ++s) {
    std::vector<net::Packet> rx;
    const auto host = make_client("h" + std::to_string(s), kVirginia,
                                  static_cast<std::uint16_t>(48000 + s * 10));
    const auto a = make_client("a" + std::to_string(s), kCalifornia,
                               static_cast<std::uint16_t>(48001 + s * 10), &rx);
    const auto b = make_client("b" + std::to_string(s), kVirginia,
                               static_cast<std::uint16_t>(48002 + s * 10));
    RouteInfo route;
    const auto meeting = zoom.create_meeting(host, [&](RouteInfo r) { route = r; });
    zoom.join(meeting, a, [](RouteInfo) {});
    zoom.join(meeting, b, [](RouteInfo) {});
    send_video(host, route.media_endpoint, 1);
    net.loop().run();
    EXPECT_EQ(rx.size(), 1u) << "session " << s;
    endpoints.push_back(route.media_endpoint);
    zoom.end_meeting(meeting);
  }
  EXPECT_NE(endpoints[0].ip, endpoints[1].ip);
  EXPECT_NE(endpoints[1].ip, endpoints[2].ip);
}

TEST_F(LifecycleFixture, LeaveUnknownParticipantIsNoop) {
  WebexPlatform webex{net};
  const auto host = make_client("h", kVirginia, 47000);
  const auto meeting = webex.create_meeting(host, [](RouteInfo) {});
  EXPECT_NO_THROW(webex.leave(meeting, 999));
  EXPECT_NO_THROW(webex.leave(12345, 1));
  EXPECT_NO_THROW(webex.end_meeting(54321));
  EXPECT_EQ(webex.participant_count(meeting), 1);
}

}  // namespace
}  // namespace vc::platform
