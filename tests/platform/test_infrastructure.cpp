#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "platform/infrastructure.h"

namespace vc::platform {
namespace {

const GeoPoint kVirginia{38.9, -77.4};
const GeoPoint kCalifornia{37.8, -122.4};
const GeoPoint kZurich{47.38, 8.54};
const GeoPoint kLondon{51.51, -0.13};

net::Network make_net() {
  return net::Network{std::make_unique<net::GeoLatencyModel>(), 1};
}

TEST(Sites, FootprintsMatchPaper) {
  // Zoom and Webex (free tier) are US-only; Meet spans Europe too.
  for (const auto& s : platform_sites(PlatformId::kZoom)) EXPECT_LT(s.location.lon_deg, -30.0);
  EXPECT_EQ(platform_sites(PlatformId::kWebex).size(), 1u);
  EXPECT_LT(platform_sites(PlatformId::kWebex)[0].location.lon_deg, -70.0);
  bool meet_has_eu = false;
  for (const auto& s : platform_sites(PlatformId::kMeet)) {
    if (s.location.lon_deg > -30.0) meet_has_eu = true;
  }
  EXPECT_TRUE(meet_has_eu);
}

TEST(Allocator, ZoomFreshRelayEverySession) {
  auto net = make_net();
  RelayAllocator alloc{net, PlatformId::kZoom, 8801, 7};
  std::unordered_set<net::IpAddr> ips;
  for (int i = 0; i < 20; ++i) ips.insert(alloc.zoom_session_relay(kVirginia)->endpoint().ip);
  EXPECT_EQ(ips.size(), 20u);  // ~20 distinct endpoints over 20 sessions
}

TEST(Allocator, ZoomUsHostGetsNearbyRegion) {
  auto net = make_net();
  RelayAllocator alloc{net, PlatformId::kZoom, 8801, 7};
  // East host → east relay; west host → west relay.
  RelayServer* east = alloc.zoom_session_relay(kVirginia);
  RelayServer* west = alloc.zoom_session_relay(kCalifornia);
  EXPECT_LT(great_circle_km(east->host().location(), kVirginia), 500.0);
  EXPECT_LT(great_circle_km(west->host().location(), kCalifornia), 500.0);
}

TEST(Allocator, ZoomEuHostLoadBalancedAcrossUsRegions) {
  auto net = make_net();
  RelayAllocator alloc{net, PlatformId::kZoom, 8801, 7};
  std::unordered_set<std::string> regions;
  for (int i = 0; i < 40; ++i) {
    const auto& loc = alloc.zoom_session_relay(kZurich)->host().location();
    // All relays stay in the US...
    EXPECT_LT(loc.lon_deg, -30.0);
    regions.insert(std::to_string(static_cast<int>(loc.lon_deg)));
  }
  // ...but spread across the three regions (the trimodal RTTs of Fig 10a).
  EXPECT_EQ(regions.size(), 3u);
}

TEST(Allocator, WebexAlwaysUsEast) {
  auto net = make_net();
  RelayAllocator alloc{net, PlatformId::kWebex, 9000, 7};
  for (int i = 0; i < 10; ++i) {
    const auto& loc = alloc.webex_session_relay()->host().location();
    EXPECT_LT(great_circle_km(loc, kVirginia), 500.0);
  }
}

TEST(Allocator, WebexOccasionallyReusesRelay) {
  auto net = make_net();
  RelayAllocator alloc{net, PlatformId::kWebex, 9000, 7};
  std::unordered_set<net::IpAddr> ips;
  const int sessions = 400;
  for (int i = 0; i < sessions; ++i) ips.insert(alloc.webex_session_relay()->endpoint().ip);
  // ~2.5% reuse: distinct count just below the session count.
  EXPECT_LT(ips.size(), static_cast<std::size_t>(sessions));
  EXPECT_GT(ips.size(), static_cast<std::size_t>(sessions * 0.9));
}

TEST(Allocator, MeetFrontEndNearClientAndSticky) {
  auto net = make_net();
  RelayAllocator alloc{net, PlatformId::kMeet, 19305, 7};
  net::Host& london_client = net.add_host("uk-client", kLondon);
  std::unordered_set<net::IpAddr> ips;
  for (int i = 0; i < 20; ++i) {
    RelayServer* fe = alloc.meet_front_end(london_client);
    EXPECT_LT(great_circle_km(fe->host().location(), kLondon), 600.0);  // nearby front-end
    ips.insert(fe->endpoint().ip);
  }
  // Sticky: only the primary/secondary pair ever shows up (paper: 1.8 avg).
  EXPECT_LE(ips.size(), 2u);
}

TEST(Allocator, MeetStickinessAveragesNearPaperValue) {
  auto net = make_net();
  RelayAllocator alloc{net, PlatformId::kMeet, 19305, 77};
  double total = 0;
  const int clients = 60;
  for (int c = 0; c < clients; ++c) {
    net::Host& client = net.add_host("c" + std::to_string(c), kLondon);
    std::unordered_set<net::IpAddr> ips;
    for (int s = 0; s < 20; ++s) ips.insert(alloc.meet_front_end(client)->endpoint().ip);
    total += static_cast<double>(ips.size());
  }
  EXPECT_NEAR(total / clients, 1.8, 0.25);
}

TEST(Allocator, DistinctClientsGetDistinctFrontEnds) {
  auto net = make_net();
  RelayAllocator alloc{net, PlatformId::kMeet, 19305, 7};
  net::Host& a = net.add_host("a", kLondon);
  net::Host& b = net.add_host("b", kZurich);
  EXPECT_NE(alloc.meet_front_end(a)->endpoint().ip, alloc.meet_front_end(b)->endpoint().ip);
}

}  // namespace
}  // namespace vc::platform
