#include <gtest/gtest.h>

#include <memory>

#include "platform/base_platform.h"

namespace vc::platform {
namespace {

const GeoPoint kZurich{47.38, 8.54};
const GeoPoint kCalifornia{37.8, -122.4};
const GeoPoint kVirginia{38.9, -77.4};

struct PaidTierFixture : public ::testing::Test {
  PaidTierFixture() : net(std::make_unique<net::GeoLatencyModel>(), 1) {}

  ClientRef make_client(const std::string& name, GeoPoint where, std::uint16_t port = 47000) {
    net::Host& h = net.add_host(name, where);
    h.udp_bind(port);
    return ClientRef{&h, port, DeviceClass::kCloudVm, ViewMode::kFullScreen, true};
  }

  GeoPoint relay_location(WebexPlatform& webex, GeoPoint host_loc) {
    const auto host = make_client("h-" + std::to_string(++counter), host_loc,
                                  static_cast<std::uint16_t>(48000 + counter));
    RouteInfo route;
    webex.create_meeting(host, [&](RouteInfo r) { route = r; });
    return net.host(route.media_endpoint.ip)->location();
  }

  net::Network net;
  int counter = 0;
};

TEST_F(PaidTierFixture, PaidEuropeanMeetingsStayInEurope) {
  WebexPlatform paid{net, 5, WebexTier::kPaid};
  const GeoPoint relay = relay_location(paid, kZurich);
  EXPECT_GT(relay.lon_deg, -10.0);  // a European site
  EXPECT_LT(great_circle_km(relay, kZurich), 700.0);
}

TEST_F(PaidTierFixture, PaidWestCoastMeetingsStayWest) {
  WebexPlatform paid{net, 5, WebexTier::kPaid};
  const GeoPoint relay = relay_location(paid, kCalifornia);
  EXPECT_LT(great_circle_km(relay, kCalifornia), 500.0);
}

TEST_F(PaidTierFixture, FreeTierAlwaysUsEastRegardless) {
  WebexPlatform free_tier{net, 5, WebexTier::kFree};
  for (const GeoPoint loc : {kZurich, kCalifornia}) {
    const GeoPoint relay = relay_location(free_tier, loc);
    EXPECT_LT(great_circle_km(relay, kVirginia), 500.0);
  }
}

TEST_F(PaidTierFixture, PaidSitesIncludeBothContinents) {
  bool has_us = false;
  bool has_eu = false;
  for (const auto& s : webex_paid_sites()) {
    (s.location.lon_deg < -30 ? has_us : has_eu) = true;
  }
  EXPECT_TRUE(has_us);
  EXPECT_TRUE(has_eu);
  EXPECT_GT(webex_paid_sites().size(), platform_sites(PlatformId::kWebex).size());
}

TEST_F(PaidTierFixture, TierAccessor) {
  WebexPlatform paid{net, 5, WebexTier::kPaid};
  WebexPlatform free_tier{net, 6};
  EXPECT_EQ(paid.tier(), WebexTier::kPaid);
  EXPECT_EQ(free_tier.tier(), WebexTier::kFree);
}

}  // namespace
}  // namespace vc::platform
