#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "platform/base_platform.h"

namespace vc::platform {
namespace {

const GeoPoint kVirginia{38.9, -77.4};
const GeoPoint kCalifornia{37.8, -122.4};

struct PlatformFixture : public ::testing::Test {
  PlatformFixture() : net(std::make_unique<net::GeoLatencyModel>(), 1) {}

  ClientRef make_client(const std::string& name, GeoPoint where, std::uint16_t port = 47000) {
    net::Host& h = net.add_host(name, where);
    h.udp_bind(port);
    return ClientRef{&h, port, DeviceClass::kCloudVm, ViewMode::kFullScreen, true};
  }

  net::Network net;
};

TEST_F(PlatformFixture, TraitsMatchPaper) {
  ZoomPlatform zoom{net};
  WebexPlatform webex{net};
  MeetPlatform meet{net};
  EXPECT_EQ(zoom.traits().media_port, 8801);
  EXPECT_EQ(webex.traits().media_port, 9000);
  EXPECT_EQ(meet.traits().media_port, 19305);
  EXPECT_TRUE(zoom.traits().p2p_for_two);
  EXPECT_FALSE(webex.traits().p2p_for_two);
  EXPECT_FALSE(meet.traits().supports_gallery);
  EXPECT_EQ(zoom.traits().audio_rate, DataRate::kbps(90));
  EXPECT_EQ(webex.traits().audio_rate, DataRate::kbps(45));
  EXPECT_EQ(meet.traits().audio_rate, DataRate::kbps(40));
}

TEST_F(PlatformFixture, ZoomTwoPartyIsP2p) {
  ZoomPlatform zoom{net};
  const auto host = make_client("host", kVirginia);
  const auto peer = make_client("peer", kCalifornia);
  std::vector<RouteInfo> host_routes;
  std::vector<RouteInfo> peer_routes;
  const auto meeting =
      zoom.create_meeting(host, [&](RouteInfo r) { host_routes.push_back(r); });
  zoom.join(meeting, peer, [&](RouteInfo r) { peer_routes.push_back(r); });
  ASSERT_FALSE(host_routes.empty());
  ASSERT_FALSE(peer_routes.empty());
  EXPECT_TRUE(host_routes.back().p2p);
  EXPECT_TRUE(peer_routes.back().p2p);
  // Each is routed to the *other's* client endpoint (ephemeral-port P2P).
  EXPECT_EQ(host_routes.back().media_endpoint.ip, peer.host->ip());
  EXPECT_EQ(peer_routes.back().media_endpoint.ip, host.host->ip());
}

TEST_F(PlatformFixture, ZoomThirdParticipantForcesRelay) {
  ZoomPlatform zoom{net};
  const auto host = make_client("host", kVirginia);
  const auto p2 = make_client("p2", kCalifornia);
  const auto p3 = make_client("p3", kVirginia, 47001);
  std::vector<RouteInfo> host_routes;
  const auto meeting = zoom.create_meeting(host, [&](RouteInfo r) { host_routes.push_back(r); });
  zoom.join(meeting, p2, [](RouteInfo) {});
  RouteInfo p3_route;
  zoom.join(meeting, p3, [&](RouteInfo r) { p3_route = r; });
  // Host was re-routed from P2P to the relay endpoint.
  ASSERT_GE(host_routes.size(), 2u);
  EXPECT_TRUE(host_routes[0].p2p);
  EXPECT_FALSE(host_routes.back().p2p);
  EXPECT_EQ(host_routes.back().media_endpoint.port, 8801);
  EXPECT_EQ(host_routes.back().media_endpoint, p3_route.media_endpoint);  // single relay
}

TEST_F(PlatformFixture, WebexSingleRelayPerMeetingAtUsEast) {
  WebexPlatform webex{net};
  const auto host = make_client("host", kCalifornia);
  const auto p2 = make_client("p2", kCalifornia, 47001);
  RouteInfo host_route;
  RouteInfo p2_route;
  const auto meeting = webex.create_meeting(host, [&](RouteInfo r) { host_route = r; });
  webex.join(meeting, p2, [&](RouteInfo r) { p2_route = r; });
  EXPECT_FALSE(host_route.p2p);
  EXPECT_EQ(host_route.media_endpoint, p2_route.media_endpoint);
  EXPECT_EQ(host_route.media_endpoint.port, 9000);
  // Even for an all-West-coast meeting the relay sits in US-east (Fig 9b).
  net::Host* relay_host = net.host(host_route.media_endpoint.ip);
  ASSERT_NE(relay_host, nullptr);
  EXPECT_GT(relay_host->location().lon_deg, -90.0);
}

TEST_F(PlatformFixture, MeetPerClientFrontEnds) {
  MeetPlatform meet{net};
  const auto host = make_client("host", kVirginia);
  const auto p2 = make_client("p2", GeoPoint{51.5, -0.1});  // London
  RouteInfo host_route;
  RouteInfo p2_route;
  const auto meeting = meet.create_meeting(host, [&](RouteInfo r) { host_route = r; });
  meet.join(meeting, p2, [&](RouteInfo r) { p2_route = r; });
  // Each client gets its own, geographically close front-end.
  EXPECT_NE(host_route.media_endpoint, p2_route.media_endpoint);
  const auto* host_fe = net.host(host_route.media_endpoint.ip);
  const auto* p2_fe = net.host(p2_route.media_endpoint.ip);
  EXPECT_LT(great_circle_km(host_fe->location(), kVirginia), 1500.0);
  EXPECT_LT(great_circle_km(p2_fe->location(), GeoPoint{51.5, -0.1}), 600.0);
}

TEST_F(PlatformFixture, ParticipantCountTracksRoster) {
  WebexPlatform webex{net};
  const auto host = make_client("host", kVirginia);
  const auto p2 = make_client("p2", kVirginia, 47001);
  const auto meeting = webex.create_meeting(host, [](RouteInfo) {});
  EXPECT_EQ(webex.participant_count(meeting), 1);
  const auto id2 = webex.join(meeting, p2, [](RouteInfo) {});
  EXPECT_EQ(webex.participant_count(meeting), 2);
  webex.leave(meeting, id2);
  EXPECT_EQ(webex.participant_count(meeting), 1);
  EXPECT_EQ(webex.participant_count(999), 0);
}

TEST_F(PlatformFixture, MeetingEndsWhenLastLeaves) {
  WebexPlatform webex{net};
  const auto host = make_client("host", kVirginia);
  const auto meeting = webex.create_meeting(host, [](RouteInfo) {});
  webex.leave(meeting, 1);
  EXPECT_EQ(webex.participant_count(meeting), 0);
}

TEST_F(PlatformFixture, JoinUnknownMeetingThrows) {
  ZoomPlatform zoom{net};
  const auto c = make_client("c", kVirginia);
  EXPECT_THROW(zoom.join(12345, c, [](RouteInfo) {}), std::invalid_argument);
}

TEST_F(PlatformFixture, FactoryCreatesRequestedPlatform) {
  for (const auto id : {PlatformId::kZoom, PlatformId::kWebex, PlatformId::kMeet}) {
    const auto p = make_platform(id, net);
    EXPECT_EQ(p->traits().id, id);
  }
}

TEST_F(PlatformFixture, DistinctMeetingsGetDistinctZoomRelays) {
  ZoomPlatform zoom{net};
  std::vector<net::Endpoint> endpoints;
  for (int i = 0; i < 5; ++i) {
    const auto host = make_client("h" + std::to_string(i), kVirginia,
                                  static_cast<std::uint16_t>(48000 + i));
    const auto a = make_client("a" + std::to_string(i), kVirginia,
                               static_cast<std::uint16_t>(48100 + i));
    const auto b = make_client("b" + std::to_string(i), kCalifornia,
                               static_cast<std::uint16_t>(48200 + i));
    RouteInfo route;
    const auto meeting = zoom.create_meeting(host, [&](RouteInfo r) { route = r; });
    zoom.join(meeting, a, [](RouteInfo) {});
    zoom.join(meeting, b, [](RouteInfo) {});
    endpoints.push_back(route.media_endpoint);
  }
  for (std::size_t i = 1; i < endpoints.size(); ++i) {
    EXPECT_NE(endpoints[i].ip, endpoints[0].ip);
  }
}

}  // namespace
}  // namespace vc::platform
