#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "platform/rate_policy.h"

namespace vc::platform {
namespace {

TEST(PlatformNames, AllThree) {
  EXPECT_EQ(platform_name(PlatformId::kZoom), "Zoom");
  EXPECT_EQ(platform_name(PlatformId::kWebex), "Webex");
  EXPECT_EQ(platform_name(PlatformId::kMeet), "Meet");
}

TEST(RateProfile, PaperAnchors) {
  // Webex: highest multi-party rate, low-motion halves it, no fluctuation.
  const auto& webex = rate_profile(PlatformId::kWebex);
  EXPECT_GT(webex.video_multi_party, rate_profile(PlatformId::kZoom).video_multi_party);
  EXPECT_GT(webex.video_multi_party, rate_profile(PlatformId::kMeet).video_multi_party);
  EXPECT_LT(webex.low_motion_factor, 0.6);
  EXPECT_LT(webex.session_sigma, 0.02);

  // Meet: two-party burst ≫ multi-party; most dynamic across sessions.
  const auto& meet = rate_profile(PlatformId::kMeet);
  EXPECT_GT(meet.video_two_party.as_mbps(), 2.5 * meet.video_multi_party.as_mbps());
  EXPECT_GT(meet.session_sigma, rate_profile(PlatformId::kZoom).session_sigma * 2);

  // Zoom: P2P slightly above relay rate; smallest LM/HM gap.
  const auto& zoom = rate_profile(PlatformId::kZoom);
  EXPECT_GT(zoom.video_two_party, zoom.video_multi_party);
  EXPECT_GT(zoom.low_motion_factor, 0.9);
}

TEST(RateProfile, AdaptationAgility) {
  // Fig 17-18 mechanism: Zoom/Meet back off under loss; Webex barely does.
  EXPECT_LT(rate_profile(PlatformId::kZoom).loss_backoff, 0.9);
  EXPECT_LT(rate_profile(PlatformId::kMeet).loss_backoff, 0.9);
  EXPECT_GT(rate_profile(PlatformId::kWebex).loss_backoff, 0.9);
  // Meet adapts to the lowest floor (most graceful degradation).
  EXPECT_LT(rate_profile(PlatformId::kMeet).min_video_rate,
            rate_profile(PlatformId::kZoom).min_video_rate);
  EXPECT_GT(rate_profile(PlatformId::kWebex).min_video_rate, DataRate::mbps(1.0));
}

TEST(SessionVideoRate, TwoPartyVsMulti) {
  Rng rng{1};
  const auto two = session_video_rate(PlatformId::kMeet, 2, MotionClass::kHighMotion, rng);
  const auto multi = session_video_rate(PlatformId::kMeet, 5, MotionClass::kHighMotion, rng);
  EXPECT_GT(two.as_mbps(), 1.2);
  EXPECT_LT(multi.as_mbps(), 1.0);
  EXPECT_THROW(session_video_rate(PlatformId::kMeet, 1, MotionClass::kHighMotion, rng),
               std::invalid_argument);
}

TEST(SessionVideoRate, LowMotionCheaper) {
  Rng rng{2};
  const auto lm = session_video_rate(PlatformId::kWebex, 4, MotionClass::kLowMotion, rng);
  const auto hm = session_video_rate(PlatformId::kWebex, 4, MotionClass::kHighMotion, rng);
  EXPECT_LT(lm.as_kbps(), hm.as_kbps() * 0.6);
}

TEST(SessionVideoRate, WebexNearlyConstantMeetDynamic) {
  Rng rng{3};
  RunningStats webex;
  RunningStats meet;
  for (int i = 0; i < 200; ++i) {
    webex.add(session_video_rate(PlatformId::kWebex, 4, MotionClass::kHighMotion, rng).as_kbps());
    meet.add(session_video_rate(PlatformId::kMeet, 4, MotionClass::kHighMotion, rng).as_kbps());
  }
  EXPECT_LT(webex.stddev() / webex.mean(), 0.02);
  EXPECT_GT(meet.stddev() / meet.mean(), 0.10);
}

std::vector<SenderInfo> senders(int n) {
  std::vector<SenderInfo> out;
  for (int i = 1; i <= n; ++i) {
    out.push_back(SenderInfo{static_cast<ParticipantId>(i), DeviceClass::kCloudVm});
  }
  return out;
}

TEST(Subscriptions, AudioOnlyGetsNothing) {
  EXPECT_TRUE(subscriptions(PlatformId::kZoom, ViewMode::kAudioOnly, DeviceClass::kCloudVm,
                            senders(3))
                  .empty());
}

TEST(Subscriptions, FullScreenMainStreamFirstSender) {
  const auto subs =
      subscriptions(PlatformId::kWebex, ViewMode::kFullScreen, DeviceClass::kCloudVm, senders(3));
  ASSERT_FALSE(subs.empty());
  EXPECT_EQ(subs[0].origin, 1u);
  EXPECT_DOUBLE_EQ(subs[0].scale, 1.0);
}

TEST(Subscriptions, ZoomFullScreenBuffersBackground) {
  // Table 4: Zoom keeps a trickle of undisplayed streams in full screen.
  const auto subs =
      subscriptions(PlatformId::kZoom, ViewMode::kFullScreen, DeviceClass::kCloudVm, senders(5));
  ASSERT_EQ(subs.size(), 5u);
  for (std::size_t i = 1; i < subs.size(); ++i) {
    EXPECT_GT(subs[i].scale, 0.0);
    EXPECT_LT(subs[i].scale, 0.1);
  }
}

TEST(Subscriptions, MeetFullScreenHasPreviews) {
  const auto subs =
      subscriptions(PlatformId::kMeet, ViewMode::kFullScreen, DeviceClass::kCloudVm, senders(6));
  // Main + up to 3 previews (max 4 tiles visible).
  ASSERT_EQ(subs.size(), 4u);
  EXPECT_DOUBLE_EQ(subs[0].scale, 1.0);
  for (std::size_t i = 1; i < subs.size(); ++i) EXPECT_NEAR(subs[i].scale, 0.035, 1e-9);
}

TEST(Subscriptions, MeetGalleryIsNoop) {
  // Meet has no gallery (footnote 6): the request changes nothing.
  const auto gal =
      subscriptions(PlatformId::kMeet, ViewMode::kGallery, DeviceClass::kCloudVm, senders(6));
  const auto full =
      subscriptions(PlatformId::kMeet, ViewMode::kFullScreen, DeviceClass::kCloudVm, senders(6));
  ASSERT_EQ(gal.size(), full.size());
  for (std::size_t i = 0; i < gal.size(); ++i) {
    EXPECT_EQ(gal[i].origin, full[i].origin);
    EXPECT_DOUBLE_EQ(gal[i].scale, full[i].scale);
  }
}

TEST(Subscriptions, ZoomGalleryCapsAtFourTiles) {
  const auto subs =
      subscriptions(PlatformId::kZoom, ViewMode::kGallery, DeviceClass::kCloudVm, senders(9));
  EXPECT_EQ(subs.size(), 4u);
}

TEST(Subscriptions, ZoomGalleryTotalDoublesFromOneToFourTiles) {
  // Table 4 shape: 1 tile ≈ 0.45x, 4 tiles ≈ 0.9x total (not 1.8x).
  auto total = [](int n) {
    double acc = 0;
    for (const auto& s :
         subscriptions(PlatformId::kZoom, ViewMode::kGallery, DeviceClass::kCloudVm, senders(n))) {
      acc += s.scale;
    }
    return acc;
  };
  EXPECT_NEAR(total(4) / total(1), 2.0, 0.1);
}

TEST(Subscriptions, WebexGalleryBudgetShrinksWithTiles) {
  // The paper's counter-intuitive observation: more participants in gallery
  // → *lower* total rate on Webex.
  auto total = [](int n) {
    double acc = 0;
    for (const auto& s :
         subscriptions(PlatformId::kWebex, ViewMode::kGallery, DeviceClass::kCloudVm, senders(n))) {
      acc += s.scale;
    }
    return acc;
  };
  EXPECT_LT(total(4), total(1));
}

TEST(Subscriptions, WebexServesLowEndDevicesLess) {
  const auto s10 =
      subscriptions(PlatformId::kWebex, ViewMode::kFullScreen, DeviceClass::kMobileHighEnd,
                    senders(2));
  const auto j3 = subscriptions(PlatformId::kWebex, ViewMode::kFullScreen,
                                DeviceClass::kMobileLowEnd, senders(2));
  EXPECT_NEAR(j3[0].scale, 0.5 * s10[0].scale, 1e-9);
}

TEST(Subscriptions, ZoomMeetIgnoreDeviceClass) {
  for (const auto id : {PlatformId::kZoom, PlatformId::kMeet}) {
    const auto high =
        subscriptions(id, ViewMode::kFullScreen, DeviceClass::kMobileHighEnd, senders(2));
    const auto low =
        subscriptions(id, ViewMode::kFullScreen, DeviceClass::kMobileLowEnd, senders(2));
    EXPECT_DOUBLE_EQ(high[0].scale, low[0].scale);
  }
}

TEST(Subscriptions, WebexGalleryAbandonsBudgetForPhoneCameras) {
  // Fig 19b (LM-Video-View): with a phone camera in the gallery, Webex
  // serves tiles at half rate instead of its shrinking budget — total rate
  // more than doubles vs the VM-only gallery.
  auto vm_only = senders(2);
  auto with_phone = vm_only;
  with_phone[1].device = DeviceClass::kMobileHighEnd;
  auto total = [](const std::vector<StreamSubscription>& subs) {
    double acc = 0;
    for (const auto& s : subs) acc += s.scale;
    return acc;
  };
  const double budget = total(
      subscriptions(PlatformId::kWebex, ViewMode::kGallery, DeviceClass::kCloudVm, vm_only));
  const double camera = total(
      subscriptions(PlatformId::kWebex, ViewMode::kGallery, DeviceClass::kCloudVm, with_phone));
  EXPECT_GT(camera, 2.0 * budget);
}

TEST(Subscriptions, NoSendersNoSubscriptions) {
  EXPECT_TRUE(
      subscriptions(PlatformId::kZoom, ViewMode::kFullScreen, DeviceClass::kCloudVm, {}).empty());
}

}  // namespace
}  // namespace vc::platform
