// HealthMonitor unit tests: edge-triggered breach begin/end (no duplicate
// begins while a breach is open), the min_duration gate, finalize() closing
// open breaches, bound-registry breach counters, JSON round-trips, and the
// armed-but-empty monitor leaving timeline bytes untouched.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_timeline.h"
#include "common/time.h"
#include "common/tracer.h"
#include "health/health_monitor.h"

namespace vc::health {
namespace {

SloRule depth_rule(SimDuration min_duration = SimDuration{}) {
  SloRule r;
  r.rule = "depth-bounded";
  r.metric = "depth";
  r.field = SloRule::Field::kValue;
  r.op = SloRule::Op::kLe;
  r.threshold = 10.0;
  r.severity = Severity::kWarning;
  r.min_duration = min_duration;
  return r;
}

struct Rig {
  MetricsRegistry reg;
  MetricsTimeline timeline;
  HealthMonitor monitor;
  MetricsRegistry::Gauge* depth;
  int tick = 0;

  Rig() {
    MetricsTimeline::Config c;
    c.interval = seconds(1);
    c.capacity = 32;
    timeline = MetricsTimeline{c};
    timeline.set_enabled(true);
    timeline.bind(reg);
    depth = &reg.gauge("depth");
  }

  void attach() {
    monitor.bind(&reg, nullptr);
    timeline.set_observer(&monitor);
  }

  void step(double value) {
    depth->set(value);
    timeline.sample_now(SimTime{tick * 1'000'000});
    ++tick;
  }
};

TEST(HealthMonitor, EdgeTriggeredBeginAndEndWithoutDuplicates) {
  Rig rig;
  rig.monitor.add_rule(depth_rule());
  rig.attach();

  rig.step(3.0);   // healthy
  rig.step(12.0);  // breach begins
  rig.step(15.0);  // still failing: no second begin
  rig.step(4.0);   // recovers: breach ends
  rig.step(11.0);  // a second, separate breach
  rig.step(2.0);

  const auto& events = rig.monitor.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_TRUE(events[0].begin);
  EXPECT_EQ(events[0].at, SimTime{1'000'000});
  EXPECT_EQ(events[0].observed, 12.0);
  EXPECT_EQ(events[0].severity, Severity::kWarning);
  EXPECT_FALSE(events[1].begin);
  EXPECT_EQ(events[1].at, SimTime{3'000'000});
  EXPECT_TRUE(events[2].begin);
  EXPECT_FALSE(events[3].begin);
  EXPECT_EQ(rig.monitor.total_breaches(), 2u);
  EXPECT_EQ(rig.monitor.open_breaches(), 0u);
  // The bound registry counter saw one inc per breach begin.
  EXPECT_EQ(rig.reg.counter("health.depth-bounded.breaches").value(), 2);
}

TEST(HealthMonitor, MinDurationSuppressesShortBlips) {
  Rig rig;
  rig.monitor.add_rule(depth_rule(millis(2500)));  // needs >2.5 s of failure
  rig.attach();

  rig.step(1.0);
  rig.step(20.0);  // failing 0 s so far
  rig.step(1.0);   // blip over before the gate: no events
  EXPECT_TRUE(rig.monitor.events().empty());

  rig.step(20.0);  // failing since t=3
  rig.step(20.0);
  rig.step(20.0);  // t=5: failing 2 s — still gated
  EXPECT_TRUE(rig.monitor.events().empty());
  rig.step(20.0);  // t=6: failing 3 s >= 2.5 s — begin fires
  ASSERT_EQ(rig.monitor.events().size(), 1u);
  EXPECT_TRUE(rig.monitor.events()[0].begin);
  EXPECT_EQ(rig.monitor.events()[0].at, SimTime{6'000'000});
  EXPECT_EQ(rig.monitor.total_breaches(), 1u);
}

TEST(HealthMonitor, FinalizeClosesOpenBreaches) {
  Rig rig;
  rig.monitor.add_rule(depth_rule());
  rig.attach();
  rig.step(2.0);
  rig.step(50.0);  // breach begins and never recovers
  EXPECT_EQ(rig.monitor.open_breaches(), 1u);
  rig.timeline.finalize();
  const auto& events = rig.monitor.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[1].begin);
  EXPECT_EQ(events[1].at, SimTime{1'000'000});  // closed at the last sample
  EXPECT_EQ(rig.monitor.open_breaches(), 0u);
  EXPECT_EQ(rig.monitor.total_breaches(), 1u);
}

TEST(HealthMonitor, UnknownMetricNeverFires) {
  Rig rig;
  SloRule r = depth_rule();
  r.metric = "no.such.metric";
  rig.monitor.add_rule(r);
  rig.attach();
  for (int i = 0; i < 5; ++i) rig.step(99.0);
  rig.timeline.finalize();
  EXPECT_TRUE(rig.monitor.events().empty());
  EXPECT_EQ(rig.monitor.total_breaches(), 0u);
}

TEST(HealthMonitor, DeltaFieldWatchesPerSampleChange) {
  MetricsRegistry reg;
  MetricsTimeline::Config c;
  c.interval = seconds(1);
  c.capacity = 8;
  MetricsTimeline tl{c};
  tl.set_enabled(true);
  tl.bind(reg);
  auto& drops = reg.counter("drops");
  HealthMonitor monitor;
  SloRule r;
  r.rule = "no-drops";
  r.metric = "drops";
  r.field = SloRule::Field::kDelta;
  r.op = SloRule::Op::kEq;
  r.threshold = 0.0;
  r.severity = Severity::kCritical;
  monitor.add_rule(r);
  monitor.bind(&reg, nullptr);
  tl.set_observer(&monitor);

  tl.sample_now(SimTime{0});
  drops.add(4);
  tl.sample_now(SimTime{1'000'000});  // delta 4: breach
  tl.sample_now(SimTime{2'000'000});  // delta 0: recover (cumulative stays 4)
  const auto& events = monitor.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].begin);
  EXPECT_EQ(events[0].observed, 4.0);
  EXPECT_FALSE(events[1].begin);
}

TEST(HealthMonitor, ValidationRejectsBadRules) {
  HealthMonitor monitor;
  SloRule ok = depth_rule();
  monitor.add_rule(ok);
  EXPECT_THROW(monitor.add_rule(ok), std::invalid_argument);  // duplicate name
  SloRule unnamed = depth_rule();
  unnamed.rule.clear();
  EXPECT_THROW(monitor.add_rule(unnamed), std::invalid_argument);
  SloRule no_metric = depth_rule();
  no_metric.rule = "other";
  no_metric.metric.clear();
  EXPECT_THROW(monitor.add_rule(no_metric), std::invalid_argument);
}

TEST(HealthMonitor, RulesJsonRoundTrips) {
  HealthMonitor monitor;
  SloRule a = depth_rule(millis(1500));
  SloRule b;
  b.rule = "reconnect-steady";
  b.metric = "client.reconnects";
  b.field = SloRule::Field::kDelta;
  b.op = SloRule::Op::kEq;
  b.threshold = 0.0;
  b.severity = Severity::kCritical;
  monitor.add_rule(a).add_rule(b);

  const std::vector<SloRule> parsed = HealthMonitor::rules_from_json(monitor.rules_to_json());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].rule, a.rule);
  EXPECT_EQ(parsed[0].metric, a.metric);
  EXPECT_EQ(parsed[0].field, a.field);
  EXPECT_EQ(parsed[0].op, a.op);
  EXPECT_EQ(parsed[0].threshold, a.threshold);
  EXPECT_EQ(parsed[0].severity, a.severity);
  EXPECT_EQ(parsed[0].min_duration, a.min_duration);
  EXPECT_EQ(parsed[1].rule, b.rule);
  EXPECT_EQ(parsed[1].field, SloRule::Field::kDelta);
  EXPECT_EQ(parsed[1].op, SloRule::Op::kEq);
  EXPECT_EQ(parsed[1].severity, Severity::kCritical);
}

TEST(HealthMonitor, RulesFromJsonRejectsMalformedInput) {
  EXPECT_THROW(HealthMonitor::rules_from_json("not json"), std::runtime_error);
  EXPECT_THROW(HealthMonitor::rules_from_json("{}"), std::runtime_error);
  EXPECT_THROW(HealthMonitor::rules_from_json(
                   R"({"slo_rules":[{"rule":"r","metric":"m","op":"~","threshold":0}]})"),
               std::runtime_error);
  EXPECT_THROW(HealthMonitor::rules_from_json(
                   R"({"slo_rules":[{"rule":"r","metric":"m","field":"bogus","op":"<=",)"
                   R"("threshold":0}]})"),
               std::runtime_error);
  EXPECT_THROW(HealthMonitor::rules_from_json(
                   R"({"slo_rules":[{"rule":"","metric":"m","op":"<=","threshold":0}]})"),
               std::runtime_error);
}

TEST(HealthMonitor, ToJsonRecordsEventsAndBreaches) {
  Rig rig;
  rig.monitor.add_rule(depth_rule());
  rig.attach();
  rig.step(1.0);
  rig.step(30.0);
  rig.step(1.0);
  rig.timeline.finalize();
  const std::string json = rig.monitor.to_json();
  EXPECT_NE(json.find("\"rule\":\"depth-bounded\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"begin\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"end\""), std::string::npos);
  EXPECT_NE(json.find("\"breaches\":{\"depth-bounded\":1}"), std::string::npos);
}

TEST(HealthMonitor, ArmedEmptyMonitorLeavesTimelineBytesIdentical) {
  auto drive = [](bool with_monitor) {
    MetricsRegistry reg;
    MetricsTimeline::Config c;
    c.interval = seconds(1);
    c.capacity = 8;
    MetricsTimeline tl{c};
    tl.set_enabled(true);
    tl.bind(reg);
    HealthMonitor monitor;  // zero rules
    if (with_monitor) {
      monitor.bind(&reg, nullptr);
      tl.set_observer(&monitor);
    }
    auto& work = reg.counter("work");
    for (int i = 0; i < 12; ++i) {
      work.add(i);
      tl.sample_now(SimTime{i * 1'000'000});
    }
    tl.finalize();
    if (with_monitor) {
      EXPECT_TRUE(monitor.events().empty());
      EXPECT_EQ(monitor.total_breaches(), 0u);
    }
    return tl.to_json();
  };
  EXPECT_EQ(drive(true), drive(false));
}

TEST(HealthMonitor, BreachEdgesLandInTracer) {
  Tracer tracer{256};
  tracer.set_enabled(true);
  Rig rig;
  rig.monitor.add_rule(depth_rule());
  rig.monitor.bind(&rig.reg, &tracer);
  rig.timeline.set_observer(&rig.monitor);
  rig.step(1.0);
  rig.step(30.0);
  rig.step(1.0);
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("health.breach_begin.depth-bounded"), std::string::npos);
  EXPECT_NE(json.find("health.breach_end.depth-bounded"), std::string::npos);
}

}  // namespace
}  // namespace vc::health
