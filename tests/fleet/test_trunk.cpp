// Trunk behavior: FIFO delivery through the shaper + propagation pipeline,
// meeting-tag demux at the far relay, capacity drops, and egress
// registration lifetime.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fleet/trunk.h"
#include "net/network.h"
#include "platform/relay.h"

namespace vc::fleet {
namespace {

constexpr platform::MeetingId kMeeting = 7;

struct TrunkFixture : public ::testing::Test {
  TrunkFixture()
      : net(std::make_unique<net::FixedLatencyModel>(millis(5)), 1),
        relay_a(net, "relay-a", GeoPoint{38.9, -77.4}, 8801,
                platform::RelayServer::ForwardingDelay{millis(2), 0.0}),
        relay_b(net, "relay-b", GeoPoint{37.4, -122.1}, 8802,
                platform::RelayServer::ForwardingDelay{millis(2), 0.0}) {
    relay_a.link_peer(kMeeting, &relay_b);
    relay_b.link_peer(kMeeting, &relay_a);
  }

  net::Host& make_client(const std::string& name, std::vector<net::Packet>* sink,
                         std::vector<SimTime>* arrivals = nullptr) {
    net::Host& h = net.add_host(name, GeoPoint{40.0, -75.0});
    auto& sock = h.udp_bind(100);
    sock.on_receive([this, sink, arrivals](const net::Packet& p) {
      if (sink != nullptr) sink->push_back(p);
      if (arrivals != nullptr) arrivals->push_back(net.loop().now());
    });
    return h;
  }

  void send_media(net::Host& from, std::uint32_t origin, std::uint64_t seq) {
    net::Packet p;
    p.dst = relay_a.endpoint();
    p.l7_len = 1000;
    p.kind = net::StreamKind::kVideo;
    p.origin_id = origin;
    p.seq = seq;
    from.udp_socket(100)->send(std::move(p));
  }

  net::Network net;
  platform::RelayServer relay_a;
  platform::RelayServer relay_b;
};

TEST_F(TrunkFixture, DeliversAcrossTheTrunkInFifoOrder) {
  Trunk::Config tc;
  tc.propagation = millis(30);
  Trunk trunk{net, relay_a, relay_b, tc};

  std::vector<net::Packet> rx;
  std::vector<SimTime> arrivals;
  net::Host& sender = make_client("sender", nullptr);
  net::Host& receiver = make_client("receiver", &rx, &arrivals);
  relay_a.add_participant(kMeeting, 1, {sender.ip(), 100});
  relay_b.add_participant(kMeeting, 2, {receiver.ip(), 100});

  constexpr int kPackets = 5;
  for (int i = 0; i < kPackets; ++i) send_media(sender, 1, static_cast<std::uint64_t>(i));
  net.loop().run();

  ASSERT_EQ(rx.size(), static_cast<std::size_t>(kPackets));
  for (int i = 0; i < kPackets; ++i) {
    EXPECT_EQ(rx[static_cast<std::size_t>(i)].seq, static_cast<std::uint64_t>(i))
        << "trunk reordered packet " << i;
  }
  EXPECT_EQ(trunk.stats().delivered_packets, kPackets);
  EXPECT_GT(trunk.stats().delivered_bytes, kPackets * 1000);
  EXPECT_EQ(relay_b.stats().trunk_in, kPackets);
  // The far members saw the packets as plain forwarded media.
  EXPECT_EQ(relay_b.stats().media_forwarded, kPackets);
  // client->A latency + A forwarding + propagation alone put the first
  // arrival past the trunk's 30 ms one-way delay.
  EXPECT_GE((arrivals.front() - SimTime{}).millis(), 30.0);
}

TEST_F(TrunkFixture, IngestDemuxesByMeetingTag) {
  std::vector<net::Packet> rx;
  net::Host& receiver = make_client("receiver", &rx);
  relay_b.add_participant(kMeeting, 2, {receiver.ip(), 100});

  net::Packet stray;
  stray.l7_len = 500;
  stray.kind = net::StreamKind::kVideo;
  stray.origin_id = 9;
  stray.meeting = 999;  // no such meeting on relay-b
  relay_b.ingest_trunk(stray);

  net::Packet good = stray;
  good.meeting = kMeeting;
  relay_b.ingest_trunk(good);
  net.loop().run();

  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].origin_id, 9u);
  EXPECT_EQ(relay_b.stats().trunk_in, 1);  // the stray never counted
}

TEST_F(TrunkFixture, SaturatedTrunkDropsLikeABackboneLink) {
  Trunk::Config tc;
  tc.rate = DataRate::kbps(64);
  tc.burst_bytes = 1200;
  tc.queue_limit_packets = 2;
  Trunk trunk{net, relay_a, relay_b, tc};

  std::vector<net::Packet> rx;
  net::Host& sender = make_client("sender", nullptr);
  net::Host& receiver = make_client("receiver", &rx);
  relay_a.add_participant(kMeeting, 1, {sender.ip(), 100});
  relay_b.add_participant(kMeeting, 2, {receiver.ip(), 100});

  constexpr int kPackets = 20;
  for (int i = 0; i < kPackets; ++i) send_media(sender, 1, static_cast<std::uint64_t>(i));
  net.loop().run();

  const auto& shaper = trunk.shaper_stats();
  EXPECT_GT(shaper.dropped_packets, 0);
  EXPECT_EQ(shaper.forwarded_packets + shaper.dropped_packets, kPackets);
  EXPECT_EQ(trunk.stats().delivered_packets, shaper.forwarded_packets);
  EXPECT_EQ(rx.size(), static_cast<std::size_t>(shaper.forwarded_packets));
}

TEST_F(TrunkFixture, DestructorDeregistersEgress) {
  std::vector<net::Packet> rx;
  net::Host& sender = make_client("sender", nullptr);
  net::Host& receiver = make_client("receiver", &rx);
  relay_a.add_participant(kMeeting, 1, {sender.ip(), 100});
  relay_b.add_participant(kMeeting, 2, {receiver.ip(), 100});

  { Trunk scoped{net, relay_a, relay_b, Trunk::Config{}}; }
  // With the trunk gone, relay-a falls back to plain socket delivery toward
  // relay-b's endpoint — media still arrives, just untrunked.
  send_media(sender, 1, 0);
  net.loop().run();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(relay_b.stats().trunk_in, 0);
}

}  // namespace
}  // namespace vc::fleet
