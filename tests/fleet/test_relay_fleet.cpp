// RelayFleet balancer behavior driven through the MeetingPlacer interface:
// placement policies, overflow sharding, load release, crash failover, and
// the fleet-of-1 wait-for-restart fallback.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "fleet/relay_fleet.h"
#include "net/network.h"
#include "platform/base_platform.h"
#include "platform/infrastructure.h"

namespace vc::fleet {
namespace {

struct FleetFixture : public ::testing::Test {
  FleetFixture() : net(std::make_unique<net::FixedLatencyModel>(millis(5)), 1) {
    platform = platform::make_platform(platform::PlatformId::kZoom, net, 11);
  }

  RelayFleet make_fleet(int size, PlacementPolicy policy, int overflow = 0) {
    RelayFleet::Config fc;
    fc.size = size;
    fc.policy = policy;
    fc.overflow_shard_size = overflow;
    return RelayFleet{net, *platform, fc};
  }

  const GeoPoint& site_location(std::size_t i) {
    return platform::platform_sites(platform::PlatformId::kZoom)[i].location;
  }

  net::Network net;
  std::unique_ptr<platform::BasePlatform> platform;
};

TEST(PlacementPolicy_, ParseRoundTripsAndRejectsUnknown) {
  for (const auto policy : {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
                            PlacementPolicy::kLocality}) {
    EXPECT_EQ(parse_policy(policy_name(policy)), policy);
  }
  EXPECT_EQ(parse_policy("round-robin"), PlacementPolicy::kRoundRobin);
  EXPECT_EQ(parse_policy("least-loaded"), PlacementPolicy::kLeastLoaded);
  EXPECT_THROW(parse_policy("random"), std::invalid_argument);
}

TEST_F(FleetFixture, RejectsEmptyFleet) {
  EXPECT_THROW(make_fleet(0, PlacementPolicy::kRoundRobin), std::invalid_argument);
}

TEST_F(FleetFixture, RoundRobinCyclesMeetingsAcrossSlots) {
  RelayFleet fleet = make_fleet(3, PlacementPolicy::kRoundRobin);
  const GeoPoint loc = site_location(0);
  platform::RelayServer* r1 = fleet.home_for(1, 1, loc);
  platform::RelayServer* r2 = fleet.home_for(2, 1, loc);
  platform::RelayServer* r3 = fleet.home_for(3, 1, loc);
  platform::RelayServer* r4 = fleet.home_for(4, 1, loc);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1, fleet.relay_of_slot(0));
  EXPECT_EQ(r2, fleet.relay_of_slot(1));
  EXPECT_EQ(r3, fleet.relay_of_slot(2));
  EXPECT_EQ(r4, r1);  // cursor wrapped
  EXPECT_EQ(fleet.slot_meetings(0), 2);
  EXPECT_EQ(fleet.slot_meetings(1), 1);
  EXPECT_EQ(fleet.slot_meetings(2), 1);
}

TEST_F(FleetFixture, HomeForIsIdempotentPerMember) {
  RelayFleet fleet = make_fleet(2, PlacementPolicy::kRoundRobin);
  platform::RelayServer* first = fleet.home_for(1, 1, site_location(0));
  EXPECT_EQ(fleet.home_for(1, 1, site_location(1)), first);
  EXPECT_EQ(fleet.slot_participants(0), 1);  // not double-counted
}

TEST_F(FleetFixture, LeastLoadedPicksFewestParticipants) {
  RelayFleet fleet = make_fleet(2, PlacementPolicy::kLeastLoaded);
  const GeoPoint loc = site_location(0);
  for (platform::ParticipantId m = 1; m <= 3; ++m) fleet.home_for(1, m, loc);
  EXPECT_EQ(fleet.slot_participants(0), 3);
  // A new meeting lands on the idle slot, not the loaded one.
  platform::RelayServer* r = fleet.home_for(2, 1, loc);
  EXPECT_EQ(r, fleet.relay_of_slot(1));
  EXPECT_EQ(fleet.slot_participants(1), 1);
}

TEST_F(FleetFixture, LocalityPicksNearestSite) {
  RelayFleet fleet = make_fleet(3, PlacementPolicy::kLocality);
  for (std::size_t i : {2u, 0u, 1u}) {
    platform::RelayServer* r =
        fleet.home_for(static_cast<platform::MeetingId>(10 + i), 1, site_location(i));
    EXPECT_EQ(r, fleet.relay_of_slot(static_cast<int>(i))) << "member near site " << i;
  }
}

TEST_F(FleetFixture, OverflowOpensTrunkedShardThenYieldsToCapacity) {
  RelayFleet fleet = make_fleet(2, PlacementPolicy::kRoundRobin, /*overflow=*/2);
  const GeoPoint loc = site_location(0);
  for (platform::ParticipantId m = 1; m <= 4; ++m) fleet.home_for(1, m, loc);
  // 2 members filled slot 0's shard, the next 2 a fresh shard on slot 1 —
  // trunked both ways the moment the split happened.
  EXPECT_EQ(fleet.slot_participants(0), 2);
  EXPECT_EQ(fleet.slot_participants(1), 2);
  EXPECT_EQ(fleet.trunk_count(), 2u);
  EXPECT_NE(fleet.trunk(0, 1), nullptr);
  EXPECT_NE(fleet.trunk(1, 0), nullptr);
  // Both shards full and no spare slot: the soft limit yields — member 5
  // overflows into the least-populated surviving shard instead of failing.
  platform::RelayServer* r5 = fleet.home_for(1, 5, loc);
  EXPECT_EQ(r5, fleet.relay_of_slot(0));
  EXPECT_EQ(fleet.slot_participants(0), 3);
}

TEST_F(FleetFixture, LeaveAndMeetingEndReleaseLoad) {
  RelayFleet fleet = make_fleet(2, PlacementPolicy::kRoundRobin, /*overflow=*/2);
  const GeoPoint loc = site_location(0);
  for (platform::ParticipantId m = 1; m <= 4; ++m) fleet.home_for(1, m, loc);
  fleet.on_member_left(1, 1);
  EXPECT_EQ(fleet.slot_participants(0), 1);
  fleet.on_meeting_ended(1);  // members 2..4 never left() individually
  EXPECT_EQ(fleet.slot_participants(0), 0);
  EXPECT_EQ(fleet.slot_participants(1), 0);
  EXPECT_EQ(fleet.slot_meetings(0), 0);
  EXPECT_EQ(fleet.slot_meetings(1), 0);
}

TEST_F(FleetFixture, GaugesTrackHomedLoad) {
  MetricsRegistry reg;
  RelayFleet fleet = make_fleet(2, PlacementPolicy::kRoundRobin);
  fleet.attach_metrics(reg);
  const GeoPoint loc = site_location(0);
  for (platform::ParticipantId m = 1; m <= 3; ++m) fleet.home_for(1, m, loc);
  EXPECT_EQ(reg.gauge("fleet.relay0.participants").value(), 3.0);
  EXPECT_EQ(reg.gauge("fleet.relay0.meetings").value(), 1.0);
  EXPECT_EQ(reg.gauge("fleet.relay1.participants").value(), 0.0);
  fleet.on_meeting_ended(1);
  EXPECT_EQ(reg.gauge("fleet.relay0.participants").value(), 0.0);
  EXPECT_EQ(reg.gauge("fleet.relay0.participants").max(), 3.0);
}

TEST_F(FleetFixture, CrashFailoverRehomesOntoSurvivor) {
  RelayFleet fleet = make_fleet(2, PlacementPolicy::kLeastLoaded);
  const GeoPoint loc = site_location(0);
  fleet.home_for(1, 1, loc);
  fleet.home_for(1, 2, loc);
  platform::RelayServer* dead = fleet.relay_of_slot(0);
  ASSERT_NE(dead, nullptr);
  dead->crash();
  fleet.on_relay_crashed(dead);
  // Both members were transferred eagerly; rehome (the reconnect path's
  // lookup) lands them on the survivor.
  platform::RelayServer* survivor = fleet.relay_of_slot(1);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(fleet.rehome(1, 1), survivor);
  EXPECT_EQ(fleet.rehome(1, 2), survivor);
  EXPECT_EQ(fleet.slot_participants(0), 0);
  EXPECT_EQ(fleet.slot_participants(1), 2);
  EXPECT_EQ(fleet.slot_meetings(0), 0);
  EXPECT_EQ(fleet.slot_meetings(1), 1);
  // Late joiners to the meeting now fill the survivor's shard.
  EXPECT_EQ(fleet.home_for(1, 3, loc), survivor);
}

TEST_F(FleetFixture, FleetOfOneWaitsForRestart) {
  RelayFleet fleet = make_fleet(1, PlacementPolicy::kLeastLoaded);
  const GeoPoint loc = site_location(0);
  platform::RelayServer* relay = fleet.home_for(1, 1, loc);
  ASSERT_NE(relay, nullptr);
  relay->crash();
  fleet.on_relay_crashed(relay);
  // No survivor: members keep their slot and the reconnect path backs off
  // until the relay restarts (the PR 5 single-relay behavior).
  EXPECT_EQ(fleet.rehome(1, 1), nullptr);
  EXPECT_EQ(fleet.home_for(1, 1, loc), nullptr);
  EXPECT_EQ(fleet.home_for(2, 1, loc), nullptr);  // whole fleet down
  EXPECT_EQ(fleet.slot_participants(0), 1);       // load never moved
  relay->restart();
  EXPECT_EQ(fleet.rehome(1, 1), relay);
}

}  // namespace
}  // namespace vc::fleet
