// Property tests for the pluggable client ABR adapters (src/abr). The
// adapters are deterministic state machines, so the properties are checked
// over seeded pseudo-random observation fuzz: every decision must stay inside
// the platform ladder (and therefore inside [min_video_rate,
// video_two_party]), throughput response must be monotone, and two instances
// fed the same history must agree bit-for-bit (the adapters own no RNG).
#include "abr/abr.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "platform/rate_policy.h"

namespace vc::abr {
namespace {

const std::vector<platform::PlatformId> kPlatforms = {
    platform::PlatformId::kZoom, platform::PlatformId::kWebex, platform::PlatformId::kMeet};

const std::vector<AbrKind> kKinds = {AbrKind::kBuffer, AbrKind::kThroughput, AbrKind::kMpc};

AbrConfig config_for(AbrKind kind) {
  AbrConfig cfg;
  cfg.kind = kind;
  return cfg;
}

/// A plausible-but-adversarial observation: throughput from starvation to
/// 10 Mbps, loss to 60%, queue delay to 800 ms, occasional empty windows.
AbrObservation fuzz_observation(Rng& rng, const platform::RateProfile& profile, int round) {
  AbrObservation obs;
  obs.now = SimTime::zero() + millis(500 * (round + 1));
  obs.window_seconds = rng.chance(0.05) ? 0.0 : 0.5;
  obs.delivered_bytes = rng.uniform_int(0, 625'000);  // 0..10 Mbps over 0.5 s
  obs.inter_ack_ms = rng.uniform(0.0, 50.0);
  obs.loss_fraction = rng.chance(0.3) ? rng.uniform(0.0, 0.6) : 0.0;
  obs.queue_delay_ms = rng.chance(0.5) ? rng.uniform(0.0, 800.0) : 0.0;
  obs.backlog_frames = rng.uniform_int(0, 12);
  obs.platform_target = profile.video_two_party;
  obs.current_target = profile.video_two_party;
  return obs;
}

TEST(AbrLadder, EveryPlatformLadderSpansFloorToTwoPartyMax) {
  for (const auto id : kPlatforms) {
    const TierLadder ladder = platform::tier_ladder(id);
    const auto& profile = platform::rate_profile(id);
    ASSERT_FALSE(ladder.empty());
    EXPECT_EQ(ladder.min_rate().bits_per_second(), profile.min_video_rate.bits_per_second());
    EXPECT_EQ(ladder.max_rate().bits_per_second(), profile.video_two_party.bits_per_second());
    for (int i = 0; i < ladder.size(); ++i) {
      const Tier& t = ladder.at(i);
      EXPECT_GE(t.rate.bits_per_second(), profile.min_video_rate.bits_per_second());
      EXPECT_LE(t.rate.bits_per_second(), profile.video_two_party.bits_per_second());
      EXPECT_GE(t.height, 144);
      EXPECT_LE(t.height, 720);
      if (i > 0) {
        EXPECT_GT(t.rate.bits_per_second(), ladder.at(i - 1).rate.bits_per_second());
        EXPECT_GE(t.height, ladder.at(i - 1).height);
      }
    }
  }
}

TEST(AbrProperties, DecisionsStayInsideTheLadderUnderFuzz) {
  for (const auto id : kPlatforms) {
    const auto& profile = platform::rate_profile(id);
    for (const AbrKind kind : kKinds) {
      auto algo = make_abr(config_for(kind), platform::tier_ladder(id));
      ASSERT_NE(algo, nullptr);
      Rng rng{0xAB5 + static_cast<std::uint64_t>(kind) * 131 +
              static_cast<std::uint64_t>(id)};
      for (int round = 0; round < 400; ++round) {
        const AbrDecision d = algo->select(fuzz_observation(rng, profile, round));
        ASSERT_GE(d.tier, 0);
        ASSERT_LT(d.tier, algo->ladder().size());
        EXPECT_GE(d.target.bits_per_second(), profile.min_video_rate.bits_per_second())
            << abr_kind_name(kind) << " on " << platform_name(id);
        EXPECT_LE(d.target.bits_per_second(), profile.video_two_party.bits_per_second())
            << abr_kind_name(kind) << " on " << platform_name(id);
        EXPECT_EQ(d.target.bits_per_second(),
                  algo->ladder().at(d.tier).rate.bits_per_second());
        EXPECT_EQ(d.height, algo->ladder().at(d.tier).height);
        EXPECT_EQ(algo->last_tier(), d.tier);
      }
    }
  }
}

/// Clean-path observation with a given delivered throughput (kbps).
AbrObservation clean_observation(const platform::RateProfile& profile, double kbps) {
  AbrObservation obs;
  obs.now = SimTime::zero() + millis(500);
  obs.window_seconds = 0.5;
  obs.delivered_bytes = static_cast<std::int64_t>(kbps * 1000.0 / 8.0 * obs.window_seconds);
  obs.platform_target = profile.video_two_party;
  obs.current_target = profile.video_two_party;
  return obs;
}

TEST(AbrProperties, FirstDecisionIsMonotoneInObservedThroughput) {
  // Fresh adapter, one clean observation: more delivered throughput must
  // never pick a lower tier. (Stateful climb caps make multi-round
  // comparisons order-dependent; the single-shot response is the invariant.)
  for (const auto id : kPlatforms) {
    const auto& profile = platform::rate_profile(id);
    for (const AbrKind kind : {AbrKind::kThroughput, AbrKind::kMpc}) {
      int prev_tier = -1;
      for (double kbps = 25.0; kbps <= 6400.0; kbps *= 2.0) {
        auto algo = make_abr(config_for(kind), platform::tier_ladder(id));
        const AbrDecision d = algo->select(clean_observation(profile, kbps));
        EXPECT_GE(d.tier, prev_tier)
            << abr_kind_name(kind) << " on " << platform_name(id) << " at " << kbps;
        prev_tier = d.tier;
      }
    }
  }
}

TEST(AbrProperties, BufferAdapterBacksOffMonotonicallyWithQueueDelay) {
  for (const auto id : kPlatforms) {
    const auto& profile = platform::rate_profile(id);
    int prev_tier = platform::tier_ladder(id).size();
    for (double delay_ms = 0.0; delay_ms <= 400.0; delay_ms += 20.0) {
      auto algo = make_abr(config_for(AbrKind::kBuffer), platform::tier_ladder(id));
      AbrObservation obs = clean_observation(profile, 2000.0);
      obs.queue_delay_ms = delay_ms;
      const AbrDecision d = algo->select(obs);
      EXPECT_LE(d.tier, prev_tier) << platform_name(id) << " at " << delay_ms << " ms";
      prev_tier = d.tier;
    }
  }
}

TEST(AbrProperties, AdaptersAreDeterministicReplicas) {
  // Two instances fed the same observation stream must agree decision by
  // decision — the adapters own no RNG and read no wall clock.
  for (const AbrKind kind : kKinds) {
    auto a = make_abr(config_for(kind), platform::tier_ladder(platform::PlatformId::kMeet));
    auto b = make_abr(config_for(kind), platform::tier_ladder(platform::PlatformId::kMeet));
    const auto& profile = platform::rate_profile(platform::PlatformId::kMeet);
    Rng rng{0xDE7E2};  // the *test* drives shared fuzz; the adapters draw nothing
    for (int round = 0; round < 200; ++round) {
      const AbrObservation obs = fuzz_observation(rng, profile, round);
      const AbrDecision da = a->select(obs);
      const AbrDecision db = b->select(obs);
      ASSERT_EQ(da.tier, db.tier) << abr_kind_name(kind) << " round " << round;
      ASSERT_EQ(da.target.bits_per_second(), db.target.bits_per_second());
      ASSERT_EQ(da.height, db.height);
    }
  }
}

TEST(AbrProperties, ResetDropsAdaptationState) {
  const auto& profile = platform::rate_profile(platform::PlatformId::kZoom);
  for (const AbrKind kind : kKinds) {
    auto warmed = make_abr(config_for(kind), platform::tier_ladder(platform::PlatformId::kZoom));
    auto fresh = make_abr(config_for(kind), platform::tier_ladder(platform::PlatformId::kZoom));
    Rng rng{0x5E7};
    for (int round = 0; round < 50; ++round) {
      warmed->select(fuzz_observation(rng, profile, round));
    }
    warmed->reset();
    EXPECT_EQ(warmed->last_tier(), -1);
    // Post-reset, the warmed instance must match a never-used one.
    Rng replay{0x5E8};
    for (int round = 0; round < 50; ++round) {
      const AbrObservation obs = fuzz_observation(replay, profile, round);
      ASSERT_EQ(warmed->select(obs).tier, fresh->select(obs).tier)
          << abr_kind_name(kind) << " round " << round;
    }
  }
}

TEST(AbrProperties, DisabledKindBuildsNothing) {
  AbrConfig cfg;  // kind = kNone
  EXPECT_EQ(make_abr(cfg, platform::tier_ladder(platform::PlatformId::kZoom)), nullptr);
  cfg.kind = AbrKind::kBuffer;
  EXPECT_THROW(make_abr(cfg, TierLadder{}), std::invalid_argument);
}

}  // namespace
}  // namespace vc::abr
