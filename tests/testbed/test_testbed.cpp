#include <gtest/gtest.h>

#include <memory>

#include "client/controller.h"
#include "common/stats.h"
#include "client/media_feeder.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/locations.h"
#include "testbed/orchestrator.h"

namespace vc::testbed {
namespace {

TEST(Locations, Table3Complete) {
  const auto& sites = table3_sites();
  EXPECT_EQ(sites.size(), 12u);
  int total_vms = 0;
  for (const auto& s : sites) total_vms += s.count;
  EXPECT_EQ(total_vms, 14);  // 7 US + 7 Europe VMs
  EXPECT_EQ(us_sites().size(), 5u);
  EXPECT_EQ(europe_sites().size(), 7u);
}

TEST(Locations, LookupByName) {
  EXPECT_EQ(site_by_name("US-East").count, 2);
  EXPECT_EQ(site_by_name("CH").region, "Europe");
  EXPECT_THROW(site_by_name("Mars"), std::invalid_argument);
}

TEST(Locations, ResidentialSiteIsEastCoast) {
  const auto& home = residential_us_east();
  EXPECT_LT(great_circle_km(home.geo, site_by_name("US-East").geo), 500.0);
}

TEST(CloudTestbed, CreatesNamedVms) {
  CloudTestbed bed{1};
  net::Host& a = bed.create_vm(site_by_name("US-East"), 0);
  net::Host& b = bed.create_vm(site_by_name("US-East"), 1);
  EXPECT_EQ(a.name(), "US-East");
  EXPECT_EQ(b.name(), "US-East-2");
  EXPECT_NE(a.ip(), b.ip());
}

TEST(CloudTestbed, ClockOffsetsSmallAndVaried) {
  CloudTestbed bed{2};
  RunningStats offsets;
  for (int i = 0; i < 30; ++i) {
    net::Host& vm = bed.create_vm(site_by_name("US-West"), i);
    offsets.add(bed.clock_offset(vm).millis());
  }
  // Cloud-grade sync: sub-2ms offsets, not all identical.
  EXPECT_LT(std::abs(offsets.mean()), 0.5);
  EXPECT_GT(offsets.stddev(), 0.05);
  EXPECT_LT(offsets.max(), 2.0);
}

TEST(CloudTestbed, UnknownHostHasZeroOffset) {
  CloudTestbed bed{3};
  net::Host& outside = bed.network().add_host("outside", GeoPoint{0, 0});
  EXPECT_EQ(bed.clock_offset(outside), SimDuration::zero());
}

TEST(Controller, WorkflowTimingsPerPlatform) {
  const auto zoom = client::default_script(platform::PlatformId::kZoom);
  const auto webex = client::default_script(platform::PlatformId::kWebex);
  // The native Zoom client launches faster than the Webex web client.
  EXPECT_LT(zoom.launch, webex.launch);
}

struct OrchestratorFixture : public ::testing::Test {
  OrchestratorFixture() : bed(7), platform(std::make_unique<platform::WebexPlatform>(bed.network())) {}

  client::VcaClient::Config cfg(bool sender) {
    client::VcaClient::Config c;
    c.send_video = sender;
    c.send_audio = false;
    c.video_width = 64;
    c.video_height = 64;
    c.fps = 10.0;
    c.synthetic_video = sender;  // keep the test cheap
    return c;
  }

  CloudTestbed bed;
  std::unique_ptr<platform::WebexPlatform> platform;
};

TEST_F(OrchestratorFixture, RunsFullSessionLifecycle) {
  net::Host& host_vm = bed.create_vm(site_by_name("US-East"), 0);
  net::Host& p1_vm = bed.create_vm(site_by_name("US-West"), 0);
  net::Host& p2_vm = bed.create_vm(site_by_name("CH"), 0);
  client::VcaClient host{host_vm, *platform, cfg(true)};
  client::VcaClient p1{p1_vm, *platform, cfg(false)};
  client::VcaClient p2{p2_vm, *platform, cfg(false)};

  bool joined_fired = false;
  bool done_fired = false;
  SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.participants = {&p1, &p2};
  plan.media_duration = seconds(5);
  plan.on_all_joined = [&] {
    joined_fired = true;
    EXPECT_TRUE(host.in_meeting());
    EXPECT_TRUE(p1.in_meeting());
    EXPECT_TRUE(p2.in_meeting());
    EXPECT_EQ(platform->participant_count(host.meeting_id()), 3);
  };
  plan.on_done = [&](const SessionOutcome& outcome) {
    done_fired = true;
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.missing_participants.empty());
  };
  SessionOrchestrator orchestrator{std::move(plan)};
  orchestrator.start();
  bed.run_all();

  EXPECT_TRUE(joined_fired);
  EXPECT_TRUE(done_fired);
  EXPECT_TRUE(orchestrator.finished());
  EXPECT_FALSE(host.in_meeting());
  EXPECT_FALSE(p1.in_meeting());
  EXPECT_GT(host.stats().video_frames_sent, 30);
}

TEST_F(OrchestratorFixture, HostOnlySessionCompletes) {
  net::Host& host_vm = bed.create_vm(site_by_name("US-East"), 0);
  client::VcaClient host{host_vm, *platform, cfg(true)};
  SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.media_duration = seconds(2);
  bool done = false;
  plan.on_done = [&](const SessionOutcome& outcome) { done = outcome.ok; };
  SessionOrchestrator orchestrator{std::move(plan)};
  orchestrator.start();
  bed.run_all();
  EXPECT_TRUE(done);
}

TEST_F(OrchestratorFixture, RequiresHost) {
  SessionOrchestrator::Plan plan;
  EXPECT_THROW(SessionOrchestrator{std::move(plan)}, std::invalid_argument);
}

// Regression (join-timeout deadlock): a participant whose join workflow never
// completes within the timeout used to leave finished_ false forever — the
// media phase simply never started and on_done never fired. Now the session
// fails, names the missing participants, and the event loop drains.
TEST_F(OrchestratorFixture, JoinTimeoutFailsSessionAndReportsMissing) {
  net::Host& host_vm = bed.create_vm(site_by_name("US-East"), 0);
  net::Host& p1_vm = bed.create_vm(site_by_name("US-West"), 0);
  net::Host& p2_vm = bed.create_vm(site_by_name("CH"), 0);
  client::VcaClient host{host_vm, *platform, cfg(true)};
  client::VcaClient p1{p1_vm, *platform, cfg(false)};
  client::VcaClient p2{p2_vm, *platform, cfg(false)};

  // The host's scripted workflow takes ~8.5 s (Webex); give the second
  // participant a join step that can never beat the timeout — the analog of
  // a join callback that never fires.
  client::ClientController::Script script = client::default_script(platform::PlatformId::kWebex);

  MetricsRegistry metrics;
  bool done_fired = false;
  bool joined_fired = false;
  SessionOutcome seen;
  SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.participants = {&p1, &p2};
  plan.join_stagger = seconds(30);  // p2's join script starts after the timeout
  plan.media_duration = seconds(5);
  plan.join_timeout = seconds(25);
  plan.script = script;
  plan.metrics = &metrics;
  plan.on_all_joined = [&] { joined_fired = true; };
  plan.on_done = [&](const SessionOutcome& outcome) {
    done_fired = true;
    seen = outcome;
  };
  SessionOrchestrator orchestrator{std::move(plan)};
  orchestrator.start();
  bed.run_all();

  EXPECT_TRUE(done_fired);
  EXPECT_FALSE(joined_fired);
  EXPECT_FALSE(seen.ok);
  ASSERT_EQ(seen.missing_participants.size(), 1u);
  EXPECT_EQ(seen.missing_participants[0], 1u);  // p2 never made it
  EXPECT_TRUE(orchestrator.finished());
  EXPECT_TRUE(orchestrator.timed_out());
  EXPECT_FALSE(host.in_meeting());
  EXPECT_FALSE(p1.in_meeting());
  EXPECT_FALSE(p2.in_meeting());
  EXPECT_EQ(metrics.counter("session.join_timeouts").value(), 1);
  EXPECT_EQ(metrics.counter("session.completed").value(), 0);
}

TEST_F(OrchestratorFixture, JoinTimeoutDisabledKeepsLegacyBehaviour) {
  net::Host& host_vm = bed.create_vm(site_by_name("US-East"), 0);
  net::Host& p1_vm = bed.create_vm(site_by_name("US-West"), 0);
  client::VcaClient host{host_vm, *platform, cfg(true)};
  client::VcaClient p1{p1_vm, *platform, cfg(false)};

  SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.participants = {&p1};
  plan.media_duration = seconds(2);
  plan.join_timeout = SimDuration::zero();
  bool done = false;
  plan.on_done = [&](const SessionOutcome& outcome) { done = outcome.ok; };
  SessionOrchestrator orchestrator{std::move(plan)};
  orchestrator.start();
  bed.run_all();
  EXPECT_TRUE(done);
  EXPECT_FALSE(orchestrator.timed_out());
}

TEST_F(OrchestratorFixture, ControllerMetricsRecordJoins) {
  net::Host& host_vm = bed.create_vm(site_by_name("US-East"), 0);
  net::Host& p1_vm = bed.create_vm(site_by_name("US-West"), 0);
  client::VcaClient host{host_vm, *platform, cfg(true)};
  client::VcaClient p1{p1_vm, *platform, cfg(false)};

  MetricsRegistry metrics;
  SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.participants = {&p1};
  plan.media_duration = seconds(2);
  plan.metrics = &metrics;
  SessionOrchestrator orchestrator{std::move(plan)};
  orchestrator.start();
  bed.run_all();

  EXPECT_EQ(metrics.counter("client.meetings_created").value(), 1);
  EXPECT_EQ(metrics.counter("client.joins").value(), 1);
  EXPECT_EQ(metrics.counter("session.completed").value(), 1);
  const auto& lat = metrics.histogram("client.join_latency_ms").stats();
  ASSERT_EQ(lat.count(), 1u);
  // The scripted Webex join path is launch+login+join = 8.5 s.
  EXPECT_NEAR(lat.mean(), 8500.0, 1.0);
}

}  // namespace
}  // namespace vc::testbed
