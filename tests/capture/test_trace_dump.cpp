#include <gtest/gtest.h>

#include "capture/trace_dump.h"

namespace vc::capture {
namespace {

Trace sample() {
  Trace t;
  t.host_name = "US-West";
  for (int i = 0; i < 6; ++i) {
    CaptureRecord r;
    r.timestamp = SimTime{1'000'000 + i * 250'000};
    r.dir = i % 2 == 0 ? net::Direction::kIncoming : net::Direction::kOutgoing;
    r.src = {net::IpAddr{0x0A000004}, 8801};
    r.dst = {net::IpAddr{0x0A000002}, 47000};
    r.protocol = net::Protocol::kUdp;
    r.l7_len = 1000 + i;
    r.wire_len = r.l7_len + 28;
    t.records.push_back(r);
  }
  return t;
}

TEST(TraceDump, OneLinePerRecord) {
  const auto text = dump_trace_to_string(sample(), {});
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
  EXPECT_NE(text.find("10.0.0.4:8801 > 10.0.0.2:47000"), std::string::npos);
  EXPECT_NE(text.find("UDP wire=1028 l7=1000"), std::string::npos);
  EXPECT_NE(text.find("1.000000 IN"), std::string::npos);
}

TEST(TraceDump, MaxRecordsLimit) {
  DumpOptions opt;
  opt.max_records = 2;
  const auto text = dump_trace_to_string(sample(), opt);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(TraceDump, DirectionFilter) {
  DumpOptions opt;
  opt.direction = net::Direction::kOutgoing;
  const auto text = dump_trace_to_string(sample(), opt);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_EQ(text.find("IN "), std::string::npos);
}

TEST(TraceDump, FromTimestamp) {
  DumpOptions opt;
  opt.from = SimTime{2'000'000};
  const auto text = dump_trace_to_string(sample(), opt);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);  // records at 2.0, 2.25 s
}

TEST(TraceDump, Summary) {
  const auto s = summarize_trace(sample());
  EXPECT_NE(s.find("US-West"), std::string::npos);
  EXPECT_NE(s.find("6 records"), std::string::npos);
  EXPECT_NE(s.find("KB in"), std::string::npos);
}

TEST(TraceDump, EmptyTrace) {
  Trace t;
  t.host_name = "empty";
  EXPECT_EQ(dump_trace_to_string(t, {}), "");
  EXPECT_NE(summarize_trace(t).find("0 records"), std::string::npos);
}

}  // namespace
}  // namespace vc::capture
