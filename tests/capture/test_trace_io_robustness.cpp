// Adversarial inputs for the .vctr reader: whatever bytes arrive, read_trace
// must either return a valid Trace or throw std::runtime_error — never crash,
// never allocate unboundedly. These run under ASan/UBSan in CI, so a stray
// read or overflow fails loudly. The happy path lives in test_trace_io.cpp.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "capture/trace_io.h"

namespace vc::capture {
namespace {

Trace sample_trace(int records = 3) {
  Trace t;
  t.host_name = "robust-host";
  t.host_ip = net::IpAddr{0x0A000002};
  t.clock_offset = millis(1);
  for (int i = 0; i < records; ++i) {
    CaptureRecord r;
    r.timestamp = SimTime{} + millis(10 * i);
    r.dir = i % 2 == 0 ? net::Direction::kIncoming : net::Direction::kOutgoing;
    r.protocol = net::Protocol::kUdp;
    r.src = {net::IpAddr{0x0A000001}, 5000};
    r.dst = {net::IpAddr{0x0A000002}, 6000};
    r.wire_len = 1178;
    r.l7_len = 1150;
    t.records.push_back(r);
  }
  return t;
}

std::string serialized(const Trace& t) {
  std::ostringstream out;
  write_trace(out, t);
  return out.str();
}

Trace read_from(const std::string& bytes) {
  std::istringstream in{bytes};
  return read_trace(in);
}

TEST(TraceIoRobustness, ZeroLengthStreamThrows) {
  EXPECT_THROW(read_from(""), std::runtime_error);
}

TEST(TraceIoRobustness, EmptyTraceRoundTripsFine) {
  Trace t = sample_trace(0);
  const Trace back = read_from(serialized(t));
  EXPECT_EQ(back.host_name, t.host_name);
  EXPECT_TRUE(back.records.empty());
}

TEST(TraceIoRobustness, EveryTruncationPointThrowsNotCrashes) {
  const std::string full = serialized(sample_trace());
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_THROW(read_from(full.substr(0, len)), std::runtime_error) << "at " << len;
  }
  EXPECT_NO_THROW(read_from(full));
}

TEST(TraceIoRobustness, CorruptMagicThrows) {
  std::string bytes = serialized(sample_trace());
  bytes[0] = 'X';
  EXPECT_THROW(read_from(bytes), std::runtime_error);
}

TEST(TraceIoRobustness, UnsupportedVersionThrows) {
  std::string bytes = serialized(sample_trace());
  bytes[4] = 99;  // version field follows the 4-byte magic
  EXPECT_THROW(read_from(bytes), std::runtime_error);
}

TEST(TraceIoRobustness, ImplausibleNameLengthThrows) {
  std::string bytes = serialized(sample_trace());
  const std::uint32_t huge = 0x7FFFFFFF;
  std::memcpy(bytes.data() + 8, &huge, sizeof huge);  // name_len field
  EXPECT_THROW(read_from(bytes), std::runtime_error);
}

TEST(TraceIoRobustness, LyingRecordCountFailsAsTruncationNotOom) {
  // A 42-byte header claiming 2^62 records must not pre-allocate for them;
  // it reads what exists, then reports truncation.
  Trace t = sample_trace(1);
  std::string bytes = serialized(t);
  const std::size_t count_off = 12 + t.host_name.size() + 4 + 8;  // after header fields
  const std::uint64_t absurd = 1ULL << 62;
  std::memcpy(bytes.data() + count_off, &absurd, sizeof absurd);
  EXPECT_THROW(read_from(bytes), std::runtime_error);
}

TEST(TraceIoRobustness, InvalidDirectionAndProtocolBytesThrow) {
  Trace t = sample_trace(1);
  const std::string good = serialized(t);
  const std::size_t rec_off = 12 + t.host_name.size() + 4 + 8 + 8;  // first record
  {
    std::string bytes = good;
    bytes[rec_off + 8] = 7;  // dir byte after the i64 timestamp
    EXPECT_THROW(read_from(bytes), std::runtime_error);
  }
  {
    std::string bytes = good;
    bytes[rec_off + 9] = static_cast<char>(0xEE);  // protocol byte
    EXPECT_THROW(read_from(bytes), std::runtime_error);
  }
}

TEST(TraceIoRobustness, OutOfOrderTimestampsAreTolerated) {
  Trace t = sample_trace(0);
  for (int i = 0; i < 3; ++i) {
    CaptureRecord r;
    r.timestamp = SimTime{} + millis(100 - 40 * i);  // descending on purpose
    r.protocol = net::Protocol::kUdp;
    r.l7_len = r.wire_len = 100;
    t.records.push_back(r);
  }
  const Trace back = read_from(serialized(t));
  ASSERT_EQ(back.records.size(), 3u);
  EXPECT_GT(back.records[0].timestamp, back.records[1].timestamp);
}

TEST(TraceIoRobustness, TrailingGarbageAfterRecordsIsIgnored) {
  // Like pcap readers: the declared record count delimits the trace; bytes
  // beyond it (e.g. a partially overwritten file) don't invalidate it.
  std::string bytes = serialized(sample_trace());
  bytes += "GARBAGE GARBAGE";
  const Trace back = read_from(bytes);
  EXPECT_EQ(back.records.size(), 3u);
}

}  // namespace
}  // namespace vc::capture
