#include <gtest/gtest.h>

#include <sstream>

#include "capture/trace_io.h"

namespace vc::capture {
namespace {

Trace sample_trace() {
  Trace t;
  t.host_name = "US-East";
  t.host_ip = net::IpAddr{0x0A000001};
  t.clock_offset = micros(250);
  for (int i = 0; i < 10; ++i) {
    CaptureRecord r;
    r.timestamp = SimTime{1000 * i};
    r.dir = i % 2 == 0 ? net::Direction::kIncoming : net::Direction::kOutgoing;
    r.src = {net::IpAddr{0x0A000002}, 8801};
    r.dst = {net::IpAddr{0x0A000001}, 47000};
    r.protocol = net::Protocol::kUdp;
    r.wire_len = 1000 + i;
    r.l7_len = 972 + i;
    t.records.push_back(r);
  }
  return t;
}

TEST(TraceIo, RoundTrip) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_trace(buf, original);
  const Trace loaded = read_trace(buf);
  EXPECT_EQ(loaded.host_name, original.host_name);
  EXPECT_EQ(loaded.host_ip, original.host_ip);
  EXPECT_EQ(loaded.clock_offset, original.clock_offset);
  ASSERT_EQ(loaded.records.size(), original.records.size());
  for (std::size_t i = 0; i < loaded.records.size(); ++i) {
    EXPECT_EQ(loaded.records[i].timestamp, original.records[i].timestamp);
    EXPECT_EQ(loaded.records[i].dir, original.records[i].dir);
    EXPECT_EQ(loaded.records[i].src, original.records[i].src);
    EXPECT_EQ(loaded.records[i].dst, original.records[i].dst);
    EXPECT_EQ(loaded.records[i].wire_len, original.records[i].wire_len);
    EXPECT_EQ(loaded.records[i].l7_len, original.records[i].l7_len);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace t;
  t.host_name = "empty";
  std::stringstream buf;
  write_trace(buf, t);
  const Trace loaded = read_trace(buf);
  EXPECT_EQ(loaded.host_name, "empty");
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf;
  buf.write("XXXXYYYYZZZZ", 12);
  EXPECT_THROW(read_trace(buf), std::runtime_error);
}

TEST(TraceIo, RejectsTruncated) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_trace(buf, original);
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream cut{data};
  EXPECT_THROW(read_trace(cut), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/trace_test.vctr";
  write_trace_file(path, original);
  const Trace loaded = read_trace_file(path);
  EXPECT_EQ(loaded.records.size(), original.records.size());
  EXPECT_EQ(loaded.host_name, original.host_name);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/trace.vctr"), std::runtime_error);
}

}  // namespace
}  // namespace vc::capture
