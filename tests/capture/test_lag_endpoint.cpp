#include <gtest/gtest.h>

#include "capture/endpoint_discovery.h"
#include "capture/lag_detector.h"
#include "capture/timeline.h"

namespace vc::capture {
namespace {

const net::Endpoint kLocal{net::IpAddr{0x0A000001}, 47000};
const net::Endpoint kRelay{net::IpAddr{0x0A000002}, 8801};

CaptureRecord rec(std::int64_t t_us, net::Direction dir, std::int64_t l7,
                  net::Endpoint remote = kRelay) {
  CaptureRecord r;
  r.timestamp = SimTime{t_us};
  r.dir = dir;
  if (dir == net::Direction::kIncoming) {
    r.src = remote;
    r.dst = kLocal;
  } else {
    r.src = kLocal;
    r.dst = remote;
  }
  r.l7_len = l7;
  r.wire_len = l7 + 28;
  return r;
}

// A trace mimicking the flash feed: small keepalives plus periodic bursts of
// big packets every 2 s starting at `first_burst_us`.
Trace flash_trace(net::Direction dir, std::int64_t first_burst_us, int flashes) {
  Trace t;
  for (int f = 0; f < flashes; ++f) {
    const std::int64_t burst = first_burst_us + f * 2'000'000;
    // Background keepalives, all small.
    for (int k = 1; k <= 18; ++k) {
      t.records.push_back(rec(burst - 2'000'000 + k * 100'000, dir, 40));
    }
    for (int j = 0; j < 4; ++j) t.records.push_back(rec(burst + j * 7'000, dir, 1100));
  }
  return t;
}

TEST(LagDetector, FindsOneEventPerFlash) {
  const Trace t = flash_trace(net::Direction::kOutgoing, 2'000'000, 5);
  const auto events = detect_flash_events(t, net::Direction::kOutgoing);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].at, SimTime{2'000'000});
  EXPECT_EQ(events[1].at, SimTime{4'000'000});
  EXPECT_GT(events[0].trigger_len, 200);
}

TEST(LagDetector, IgnoresWrongDirection) {
  const Trace t = flash_trace(net::Direction::kOutgoing, 2'000'000, 3);
  EXPECT_TRUE(detect_flash_events(t, net::Direction::kIncoming).empty());
}

TEST(LagDetector, SmallPacketsNeverTrigger) {
  Trace t;
  for (int i = 0; i < 100; ++i) t.records.push_back(rec(i * 50'000, net::Direction::kIncoming, 150));
  EXPECT_TRUE(detect_flash_events(t, net::Direction::kIncoming).empty());
}

TEST(LagDetector, BigPacketWithoutQuiescenceNotAnEvent) {
  Trace t;
  // Continuous big packets: only the first (after silence) is an event.
  for (int i = 0; i < 50; ++i) t.records.push_back(rec(i * 100'000, net::Direction::kIncoming, 900));
  const auto events = detect_flash_events(t, net::Direction::kIncoming);
  EXPECT_EQ(events.size(), 1u);
}

TEST(LagDetector, MatchesLagsWithKnownShift) {
  const Trace tx = flash_trace(net::Direction::kOutgoing, 2'000'000, 10);
  const Trace rx = flash_trace(net::Direction::kIncoming, 2'037'000, 10);  // 37 ms lag
  const auto lags = measure_streaming_lag_ms(tx, rx);
  ASSERT_EQ(lags.size(), 10u);
  for (double l : lags) EXPECT_NEAR(l, 37.0, 0.001);
}

TEST(LagDetector, ToleratesSmallClockSkew) {
  // Receiver clock 1 ms behind: receiver event appears 1 ms *before* sender.
  const Trace tx = flash_trace(net::Direction::kOutgoing, 2'000'000, 5);
  const Trace rx = flash_trace(net::Direction::kIncoming, 1'999'000, 5);
  const auto lags = measure_streaming_lag_ms(tx, rx);
  ASSERT_EQ(lags.size(), 5u);
  for (double l : lags) EXPECT_NEAR(l, -1.0, 0.001);
}

// Regression: the clock-sync tolerance was a hard-coded magic 2 ms inside
// match_lags_ms (with a comment claiming receivers could never precede
// senders). It is now LagDetectorConfig::clock_sync_tolerance.
TEST(LagDetector, ClockSyncToleranceIsConfigurable) {
  // Receiver clock 4 ms behind the sender's: events appear 4 ms early.
  const Trace tx = flash_trace(net::Direction::kOutgoing, 2'000'000, 5);
  const Trace rx = flash_trace(net::Direction::kIncoming, 1'996'000, 5);

  // Default 2 ms tolerance rejects a 4 ms-early receiver.
  EXPECT_TRUE(measure_streaming_lag_ms(tx, rx).empty());

  // Widening the tolerance admits the matches.
  LagDetectorConfig wide;
  wide.clock_sync_tolerance = millis(6);
  const auto lags = measure_streaming_lag_ms(tx, rx, wide);
  ASSERT_EQ(lags.size(), 5u);
  for (double l : lags) EXPECT_NEAR(l, -4.0, 0.001);

  // Zero tolerance rejects even a 1 ms-early receiver.
  const Trace rx1 = flash_trace(net::Direction::kIncoming, 1'999'000, 5);
  LagDetectorConfig strict;
  strict.clock_sync_tolerance = SimDuration::zero();
  EXPECT_TRUE(measure_streaming_lag_ms(tx, rx1, strict).empty());
}

TEST(LagDetector, DiscardsImplausiblyLateMatches) {
  // Receiver sees the flash 1.2 s later: beyond half the 2 s period.
  const Trace tx = flash_trace(net::Direction::kOutgoing, 2'000'000, 5);
  const Trace rx = flash_trace(net::Direction::kIncoming, 3'200'000, 5);
  const auto lags = measure_streaming_lag_ms(tx, rx);
  EXPECT_TRUE(lags.empty());
}

TEST(LagDetector, MissedFlashProducesFewerSamples) {
  const Trace tx = flash_trace(net::Direction::kOutgoing, 2'000'000, 10);
  Trace rx = flash_trace(net::Direction::kIncoming, 2'030'000, 10);
  // Drop the receiver's 3rd burst entirely (packets 2*18..+4 window).
  std::erase_if(rx.records, [](const CaptureRecord& r) {
    return r.l7_len > 200 && r.timestamp >= SimTime{6'000'000} && r.timestamp < SimTime{6'100'000};
  });
  const auto lags = measure_streaming_lag_ms(tx, rx);
  EXPECT_EQ(lags.size(), 9u);
}

TEST(EndpointDiscovery, FindsHeavyFlow) {
  Trace t = flash_trace(net::Direction::kIncoming, 2'000'000, 20);
  DiscoveryConfig cfg;
  cfg.min_l7_bytes = 10'000;
  cfg.min_packets = 20;
  const auto endpoints = discover_endpoints(t, cfg);
  ASSERT_EQ(endpoints.size(), 1u);
  EXPECT_EQ(endpoints[0].endpoint, kRelay);
}

TEST(EndpointDiscovery, FiltersLightFlows) {
  Trace t;
  const net::Endpoint dns{net::IpAddr{0x08080808}, 53};
  for (int i = 0; i < 5; ++i) t.records.push_back(rec(i * 1000, net::Direction::kIncoming, 80, dns));
  EXPECT_TRUE(discover_endpoints(t).empty());
}

TEST(EndpointDiscovery, DominantPortAcrossTraces) {
  std::vector<Trace> traces;
  for (int s = 0; s < 3; ++s) traces.push_back(flash_trace(net::Direction::kIncoming, 2'000'000, 20));
  DiscoveryConfig cfg;
  cfg.min_l7_bytes = 10'000;
  cfg.min_packets = 20;
  EXPECT_EQ(dominant_media_port(traces, cfg), 8801);
}

TEST(EndpointDiscovery, CountsDistinctIpsAcrossSessions) {
  std::vector<Trace> traces;
  for (int s = 0; s < 4; ++s) {
    // Two sessions on relay A, two on relay B.
    const net::Endpoint relay{net::IpAddr{0x0A000002u + (s / 2)}, 8801};
    Trace t;
    for (int i = 0; i < 100; ++i) {
      t.records.push_back(rec(i * 10'000, net::Direction::kIncoming, 1100, relay));
    }
    traces.push_back(std::move(t));
  }
  DiscoveryConfig cfg;
  cfg.min_l7_bytes = 10'000;
  cfg.min_packets = 20;
  EXPECT_EQ(distinct_endpoint_ips(traces, cfg), 2u);
}

TEST(Timeline, ExtractsPointsRebased) {
  const Trace t = flash_trace(net::Direction::kIncoming, 2'000'000, 2);
  const auto pts = timeline_points(t, net::Direction::kIncoming);
  ASSERT_FALSE(pts.empty());
  EXPECT_DOUBLE_EQ(pts.front().t_sec, 0.0);
}

TEST(Timeline, AsciiMarksBigPackets) {
  const Trace t = flash_trace(net::Direction::kIncoming, 2'000'000, 3);
  const auto pts = timeline_points(t, net::Direction::kIncoming);
  const std::string row = render_ascii_timeline(pts, 6.0, 60);
  EXPECT_NE(row.find('#'), std::string::npos);
  EXPECT_NE(row.find('.'), std::string::npos);
  EXPECT_EQ(row.size(), 60u);
}

}  // namespace
}  // namespace vc::capture
