// Unit and property tests for the header-free QoE estimator, on synthetic
// traces with known structure. The end-to-end accuracy (against a live
// session's codec-side truth) lives in tests/core/test_qoe_infer_benchmark.cpp;
// here every packet is hand-placed so each heuristic can be pinned exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "capture/qoe_infer.h"

namespace vc::capture {
namespace {

constexpr std::int64_t kMtu = 1150;

Trace make_trace() {
  Trace t;
  t.host_name = "rx";
  t.host_ip = net::IpAddr{0x0A000001};
  return t;
}

void add_packet(Trace& t, SimTime at, std::int64_t l7, net::Direction dir = net::Direction::kIncoming) {
  CaptureRecord r;
  r.timestamp = at;
  r.dir = dir;
  r.protocol = net::Protocol::kUdp;
  r.l7_len = l7;
  r.wire_len = l7 + 28;
  t.records.push_back(r);
}

/// One video frame as the wire sees it: `full` MTU-sized fragments spaced
/// 0.5 ms apart plus a sub-MTU tail.
void add_frame(Trace& t, SimTime at, int full = 3, std::int64_t tail = 700) {
  for (int i = 0; i < full; ++i) add_packet(t, at + micros(500 * i), kMtu);
  if (tail > 0) add_packet(t, at + micros(500 * full), tail);
}

/// A steady cadence of `n` frames starting at `start`, `interval` apart.
void add_cadence(Trace& t, SimTime start, int n, SimDuration interval = millis(100)) {
  for (int i = 0; i < n; ++i) add_frame(t, start + interval * i);
}

TEST(QoeInfer, EmptyTraceYieldsEmptyReport) {
  const Trace t = make_trace();
  const QoeInferReport r = QoeInferencer{t}.analyze();
  EXPECT_TRUE(r.frames.empty());
  EXPECT_TRUE(r.windows.empty());
  EXPECT_TRUE(r.freezes.empty());
  EXPECT_DOUBLE_EQ(r.overall_fps, 0.0);
  EXPECT_EQ(r.video_packets, 0);
}

TEST(QoeInfer, EmptyTraceWithPinnedSpanIsOneLongFreeze) {
  const Trace t = make_trace();
  QoeInferConfig cfg;
  cfg.analysis_start = SimTime{} + seconds(1);
  cfg.analysis_end = SimTime{} + seconds(5);
  const QoeInferReport r = QoeInferencer{t, cfg}.analyze();
  ASSERT_EQ(r.freezes.size(), 1u);
  EXPECT_EQ(r.freezes[0].start, *cfg.analysis_start);
  EXPECT_EQ(r.freezes[0].end, *cfg.analysis_end);
  EXPECT_DOUBLE_EQ(r.overall_fps, 0.0);
}

TEST(QoeInfer, RecoversScriptedCadence) {
  Trace t = make_trace();
  add_cadence(t, SimTime{} + seconds(1), 100);  // 10 s at 10 fps
  const QoeInferReport r = QoeInferencer{t}.analyze();
  EXPECT_EQ(r.frames.size(), 100u);
  EXPECT_NEAR(r.overall_fps, 10.0, 0.2);
  EXPECT_NEAR(r.median_interframe_ms, 100.0, 0.01);
  EXPECT_TRUE(r.freezes.empty());
  for (const InferredFrame& f : r.frames) {
    EXPECT_EQ(f.fragments, 4);
    EXPECT_EQ(f.bytes, 3 * kMtu + 700);
  }
}

TEST(QoeInfer, SmallPacketsAreNotVideo) {
  Trace t = make_trace();
  add_cadence(t, SimTime{} + seconds(1), 20);
  const std::int64_t video_bytes = QoeInferencer{t}.analyze().video_bytes;
  // Interleave the audio (20 ms, ~225 B) and control (500 ms, 48 B) cadences.
  for (int i = 0; i < 100; ++i) add_packet(t, SimTime{} + seconds(1) + millis(20 * i) + micros(137), 225);
  for (int i = 0; i < 4; ++i) add_packet(t, SimTime{} + seconds(1) + millis(500 * i), 48);
  const QoeInferReport r = QoeInferencer{t}.analyze();
  EXPECT_EQ(r.frames.size(), 20u);
  EXPECT_EQ(r.video_bytes, video_bytes);
}

TEST(QoeInfer, OutgoingPacketsAreIgnored) {
  Trace t = make_trace();
  add_cadence(t, SimTime{} + seconds(1), 10);
  for (int i = 0; i < 50; ++i) {
    add_packet(t, SimTime{} + seconds(1) + millis(17 * i), kMtu, net::Direction::kOutgoing);
  }
  EXPECT_EQ(QoeInferencer{t}.analyze().frames.size(), 10u);
}

TEST(QoeInfer, ReorderedTailStaysInItsFrame) {
  // Jitter regularly delivers the sub-MTU tail mid-burst; splitting there
  // would double-count frames (the calibration bug this suite pins).
  Trace t = make_trace();
  for (int i = 0; i < 10; ++i) {
    const SimTime at = SimTime{} + seconds(1) + millis(100 * i);
    add_packet(t, at, kMtu);
    add_packet(t, at + micros(400), 700);  // tail arrives second of four
    add_packet(t, at + micros(800), kMtu);
    add_packet(t, at + micros(1200), kMtu);
  }
  const QoeInferReport r = QoeInferencer{t}.analyze();
  EXPECT_EQ(r.frames.size(), 10u);
  EXPECT_NEAR(r.median_interframe_ms, 100.0, 0.01);
}

TEST(QoeInfer, QuietGapSplitsFrames) {
  Trace t = make_trace();
  add_frame(t, SimTime{} + seconds(1));
  add_frame(t, SimTime{} + seconds(1) + millis(40));  // > 30 ms default gap
  const QoeInferReport r = QoeInferencer{t}.analyze();
  EXPECT_EQ(r.frames.size(), 2u);
}

TEST(QoeInfer, FreezeRequiresThresholdGap) {
  QoeInferConfig cfg;
  cfg.freeze_threshold = millis(500);
  {
    Trace t = make_trace();
    add_frame(t, SimTime{} + seconds(1));
    add_frame(t, SimTime{} + seconds(1) + millis(499));
    EXPECT_TRUE((QoeInferencer{t, cfg}.analyze().freezes.empty()));
  }
  {
    Trace t = make_trace();
    add_frame(t, SimTime{} + seconds(1));
    add_frame(t, SimTime{} + seconds(1) + millis(500));
    const QoeInferReport r = QoeInferencer{t, cfg}.analyze();
    ASSERT_EQ(r.freezes.size(), 1u);
    EXPECT_EQ(r.freezes[0].duration(), millis(500));
  }
}

TEST(QoeInfer, LeadingAndTrailingGapsFreezeOnlyWhenSpanPinned) {
  Trace t = make_trace();
  add_cadence(t, SimTime{} + seconds(3), 10);
  EXPECT_TRUE(QoeInferencer{t}.analyze().freezes.empty());
  QoeInferConfig cfg;
  cfg.analysis_start = SimTime{} + seconds(1);   // 2 s of nothing first
  cfg.analysis_end = SimTime{} + seconds(6);     // ~2.1 s of nothing after
  const QoeInferReport r = QoeInferencer{t, cfg}.analyze();
  EXPECT_EQ(r.freezes.size(), 2u);
}

TEST(QoeInfer, MoreLossNeverMeansFewerFreezes) {
  // Property: with a fixed threshold, growing a single outage hole in an
  // otherwise steady cadence can never reduce the number of freezes (or
  // shrink the total frozen time).
  int prev_freezes = -1;
  double prev_frozen_s = -1.0;
  for (int outage_frames = 0; outage_frames <= 60; outage_frames += 6) {
    Trace t = make_trace();
    for (int i = 0; i < 200; ++i) {
      if (i >= 80 && i < 80 + outage_frames) continue;  // the hole
      add_frame(t, SimTime{} + seconds(1) + millis(100 * i));
    }
    const QoeInferReport r = QoeInferencer{t}.analyze();
    double frozen_s = 0.0;
    for (const InferredFreeze& f : r.freezes) frozen_s += f.duration().seconds();
    EXPECT_GE(static_cast<int>(r.freezes.size()), prev_freezes)
        << "outage_frames=" << outage_frames;
    EXPECT_GE(frozen_s, prev_frozen_s) << "outage_frames=" << outage_frames;
    prev_freezes = static_cast<int>(r.freezes.size());
    prev_frozen_s = frozen_s;
  }
  EXPECT_EQ(prev_freezes, 1);  // the biggest hole is one long freeze
}

TEST(QoeInfer, WindowsSnapToNearestRungTiesDown) {
  Trace t = make_trace();
  // 10 frames/s × 5000 B = 400 Kbps — exactly between the 300k and 500k
  // rungs; ties must resolve to the lower rung (like abr::TierLadder).
  for (int i = 0; i < 20; ++i) {
    const SimTime at = SimTime{} + seconds(1) + millis(100 * i);
    add_packet(t, at, kMtu);
    add_packet(t, at + micros(500), kMtu);
    add_packet(t, at + micros(1000), kMtu);
    add_packet(t, at + micros(1500), kMtu);
    add_packet(t, at + micros(2000), 5000 - 4 * kMtu);
  }
  QoeInferConfig cfg;
  cfg.tier_rates_bps = {300'000, 500'000, 900'000};
  cfg.analysis_start = SimTime{} + seconds(1);
  cfg.analysis_end = SimTime{} + seconds(3);
  const QoeInferReport r = QoeInferencer{t, cfg}.analyze();
  ASSERT_EQ(r.windows.size(), 2u);
  for (const QoeInferWindow& w : r.windows) {
    EXPECT_NEAR(w.video_kbps, 400.0, 0.5);
    EXPECT_EQ(w.tier, 0) << "ties must resolve downward";
  }
}

TEST(QoeInfer, EmptyWindowCarriesNoTier) {
  Trace t = make_trace();
  add_cadence(t, SimTime{} + seconds(1), 10);
  QoeInferConfig cfg;
  cfg.tier_rates_bps = {300'000};
  cfg.analysis_start = SimTime{} + seconds(1);
  cfg.analysis_end = SimTime{} + seconds(4);  // frames end at ~2 s
  const QoeInferReport r = QoeInferencer{t, cfg}.analyze();
  ASSERT_EQ(r.windows.size(), 3u);
  EXPECT_EQ(r.windows[0].tier, 0);
  EXPECT_EQ(r.windows[2].tier, -1);
  EXPECT_DOUBLE_EQ(r.windows[2].fps, 0.0);
}

TEST(QoeInfer, AnalysisIsPureAndByteIdentical) {
  Trace t = make_trace();
  add_cadence(t, SimTime{} + seconds(1), 50);
  add_packet(t, SimTime{} + seconds(2), 225);
  QoeInferConfig cfg;
  cfg.tier_rates_bps = {300'000, 900'000};
  const QoeInferencer a{t, cfg};
  const QoeInferencer b{t, cfg};  // replica instance over the same trace
  const std::string first = a.analyze().to_json();
  EXPECT_EQ(first, a.analyze().to_json());  // analyze() is const and pure
  EXPECT_EQ(first, b.analyze().to_json());
  EXPECT_FALSE(first.empty());
}

TEST(QoeInfer, RejectsNonPositiveConfig) {
  const Trace t = make_trace();
  QoeInferConfig cfg;
  cfg.window = SimDuration::zero();
  EXPECT_THROW((QoeInferencer{t, cfg}), std::invalid_argument);
  cfg = {};
  cfg.freeze_threshold = SimDuration::zero();
  EXPECT_THROW((QoeInferencer{t, cfg}), std::invalid_argument);
}

}  // namespace
}  // namespace vc::capture
