#include <gtest/gtest.h>

#include "capture/flow.h"
#include "capture/rate_analyzer.h"

namespace vc::capture {
namespace {

const net::Endpoint kLocal{net::IpAddr{0x0A000001}, 47000};
const net::Endpoint kRelay{net::IpAddr{0x0A000002}, 8801};
const net::Endpoint kOther{net::IpAddr{0x0A000003}, 9000};

CaptureRecord rec(SimTime t, net::Direction dir, net::Endpoint remote, std::int64_t l7) {
  CaptureRecord r;
  r.timestamp = t;
  r.dir = dir;
  if (dir == net::Direction::kIncoming) {
    r.src = remote;
    r.dst = kLocal;
  } else {
    r.src = kLocal;
    r.dst = remote;
  }
  r.l7_len = l7;
  r.wire_len = l7 + 28;
  return r;
}

TEST(FlowTable, GroupsByRemoteEndpoint) {
  Trace t;
  t.records.push_back(rec(SimTime{0}, net::Direction::kIncoming, kRelay, 100));
  t.records.push_back(rec(SimTime{1000}, net::Direction::kOutgoing, kRelay, 200));
  t.records.push_back(rec(SimTime{2000}, net::Direction::kIncoming, kOther, 50));
  const FlowTable table{t};
  ASSERT_EQ(table.flows().size(), 2u);
  const auto by_vol = table.by_volume();
  EXPECT_EQ(by_vol[0].first.remote, kRelay);
  EXPECT_EQ(by_vol[0].second.l7_bytes(), 300);
  EXPECT_EQ(by_vol[0].second.packets_in, 1);
  EXPECT_EQ(by_vol[0].second.packets_out, 1);
  EXPECT_EQ(by_vol[0].second.l7_bytes_in, 100);
  EXPECT_EQ(by_vol[0].second.l7_bytes_out, 200);
  EXPECT_EQ(by_vol[1].second.l7_bytes(), 50);
}

TEST(FlowTable, TracksTimeBounds) {
  Trace t;
  t.records.push_back(rec(SimTime{5000}, net::Direction::kIncoming, kRelay, 10));
  t.records.push_back(rec(SimTime{1000}, net::Direction::kIncoming, kRelay, 10));
  t.records.push_back(rec(SimTime{9000}, net::Direction::kIncoming, kRelay, 10));
  const FlowTable table{t};
  const auto& stats = table.flows().front().second;
  EXPECT_EQ(stats.first, SimTime{1000});
  EXPECT_EQ(stats.last, SimTime{9000});
  EXPECT_EQ(stats.duration(), micros(8000));
}

TEST(RecordRemoteLocal, OrientationHelpers) {
  const auto in = rec(SimTime{0}, net::Direction::kIncoming, kRelay, 1);
  EXPECT_EQ(in.remote(), kRelay);
  EXPECT_EQ(in.local(), kLocal);
  const auto out = rec(SimTime{0}, net::Direction::kOutgoing, kRelay, 1);
  EXPECT_EQ(out.remote(), kRelay);
  EXPECT_EQ(out.local(), kLocal);
}

TEST(RateAnalyzer, ComputesDirectionalL7Rates) {
  Trace t;
  // 1 second of traffic: 10 incoming x 1000 B, 5 outgoing x 500 B.
  for (int i = 0; i < 10; ++i) {
    t.records.push_back(rec(SimTime{i * 100'000}, net::Direction::kIncoming, kRelay, 1000));
  }
  for (int i = 0; i < 5; ++i) {
    t.records.push_back(rec(SimTime{i * 200'000 + 1'000'000}, net::Direction::kOutgoing, kRelay, 500));
  }
  const RateAnalyzer analyzer{t};
  const RateReport rep = analyzer.average();
  EXPECT_EQ(rep.l7_bytes_down, 10'000);
  EXPECT_EQ(rep.l7_bytes_up, 2'500);
  // Span = 1.8 s (first to last record).
  EXPECT_NEAR(rep.download.as_kbps(), 10'000 * 8 / 1.8 / 1000, 1.0);
}

TEST(RateAnalyzer, WindowFilter) {
  Trace t;
  for (int i = 0; i < 10; ++i) {
    t.records.push_back(rec(SimTime{i * 1'000'000}, net::Direction::kIncoming, kRelay, 1000));
  }
  const RateAnalyzer analyzer{t};
  const auto rep = analyzer.average(SimTime{5'000'000}, SimTime{8'000'000});
  EXPECT_EQ(rep.l7_bytes_down, 4000);  // records at 5,6,7,8 s
}

TEST(RateAnalyzer, RemoteFilter) {
  Trace t;
  t.records.push_back(rec(SimTime{0}, net::Direction::kIncoming, kRelay, 1000));
  t.records.push_back(rec(SimTime{1'000'000}, net::Direction::kIncoming, kOther, 9999));
  t.records.push_back(rec(SimTime{2'000'000}, net::Direction::kIncoming, kRelay, 1000));
  const RateAnalyzer analyzer{t};
  const auto rep = analyzer.average(std::nullopt, std::nullopt, kRelay);
  EXPECT_EQ(rep.l7_bytes_down, 2000);
}

TEST(RateAnalyzer, EmptyTraceYieldsZero) {
  Trace t;
  const RateAnalyzer analyzer{t};
  EXPECT_EQ(analyzer.average().download, DataRate::zero());
  EXPECT_TRUE(analyzer.download_kbps_series(millis(100)).empty());
}

// Regression: a window matching nothing used to compute span from the
// untouched sentinels (hi=0 - lo=infinity), producing a nonsense negative
// span. Now it reports records == 0 with everything zeroed.
TEST(RateAnalyzer, NoMatchingRecordsReportsAllZero) {
  Trace t;
  t.records.push_back(rec(SimTime{1'000'000}, net::Direction::kIncoming, kRelay, 1000));
  const RateAnalyzer analyzer{t};
  const auto rep = analyzer.average(SimTime{5'000'000}, SimTime{9'000'000});
  EXPECT_EQ(rep.records, 0);
  EXPECT_EQ(rep.l7_bytes_down, 0);
  EXPECT_EQ(rep.l7_bytes_up, 0);
  EXPECT_EQ(rep.span, SimDuration::zero());
  EXPECT_EQ(rep.download, DataRate::zero());
  EXPECT_EQ(rep.upload, DataRate::zero());
}

// Regression: a single-record (or single-timestamp) window used to divide the
// byte count by a zero-second span. Without explicit bounds the rate now
// stays zero and the degenerate case is detectable.
TEST(RateAnalyzer, SingleRecordWithoutBoundsKeepsRateZero) {
  Trace t;
  t.records.push_back(rec(SimTime{3'000'000}, net::Direction::kIncoming, kRelay, 1234));
  const RateAnalyzer analyzer{t};
  const auto rep = analyzer.average();
  EXPECT_EQ(rep.records, 1);
  EXPECT_EQ(rep.l7_bytes_down, 1234);
  EXPECT_EQ(rep.span, SimDuration::zero());
  EXPECT_EQ(rep.download, DataRate::zero());
}

// With both bounds given, the queried interval is the honest denominator for
// a degenerate window.
TEST(RateAnalyzer, SingleRecordWithBoundsUsesQueriedInterval) {
  Trace t;
  t.records.push_back(rec(SimTime{3'000'000}, net::Direction::kIncoming, kRelay, 1000));
  const RateAnalyzer analyzer{t};
  const auto rep = analyzer.average(SimTime{2'000'000}, SimTime{4'000'000});
  EXPECT_EQ(rep.records, 1);
  EXPECT_EQ(rep.span, seconds(2));
  EXPECT_NEAR(rep.download.as_kbps(), 1000 * 8 / 2.0 / 1000.0, 0.01);
}

TEST(RateAnalyzer, ReportsMatchingRecordCount) {
  Trace t;
  for (int i = 0; i < 7; ++i) {
    t.records.push_back(rec(SimTime{i * 1'000'000}, net::Direction::kIncoming, kRelay, 100));
  }
  const RateAnalyzer analyzer{t};
  EXPECT_EQ(analyzer.average().records, 7);
  EXPECT_EQ(analyzer.average(SimTime{2'000'000}, SimTime{4'000'000}).records, 3);
}

TEST(RateAnalyzer, SeriesCapturesVariation) {
  Trace t;
  // 0–1 s: heavy; 1–2 s: light.
  for (int i = 0; i < 10; ++i) {
    t.records.push_back(rec(SimTime{i * 100'000}, net::Direction::kIncoming, kRelay, 2000));
  }
  t.records.push_back(rec(SimTime{1'500'000}, net::Direction::kIncoming, kRelay, 100));
  const RateAnalyzer analyzer{t};
  const auto series = analyzer.download_kbps_series(millis(500));
  ASSERT_GE(series.size(), 3u);
  EXPECT_GT(series[0], series[2]);
}

}  // namespace
}  // namespace vc::capture
