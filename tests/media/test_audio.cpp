#include <gtest/gtest.h>

#include <cmath>

#include "media/audio.h"
#include "media/audio_codec.h"

namespace vc::media {
namespace {

TEST(VoiceSynth, DeterministicAndSized) {
  const auto a = synthesize_voice(2.0, 42);
  const auto b = synthesize_voice(2.0, 42);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.samples.size(), 32'000u);
  EXPECT_NEAR(a.duration_sec(), 2.0, 1e-9);
}

TEST(VoiceSynth, DifferentSeedsDiffer) {
  const auto a = synthesize_voice(1.0, 1);
  const auto b = synthesize_voice(1.0, 2);
  EXPECT_NE(a.samples, b.samples);
}

TEST(VoiceSynth, HasVoicedAndSilentSegments) {
  const auto v = synthesize_voice(5.0, 7);
  // 100 ms windows: some loud (syllables), some quiet (pauses).
  const std::size_t win = 1600;
  int loud = 0;
  int quiet = 0;
  for (std::size_t i = 0; i + win <= v.samples.size(); i += win) {
    double acc = 0;
    for (std::size_t k = 0; k < win; ++k) acc += std::abs(v.samples[i + k]);
    ((acc / win > 0.05) ? loud : quiet) += 1;
  }
  EXPECT_GT(loud, 5);
  EXPECT_GT(quiet, 3);
}

TEST(Loudness, NormalizesRms) {
  auto v = synthesize_voice(1.0, 3);
  normalize_loudness(v, 0.1);
  EXPECT_NEAR(v.rms(), 0.1, 1e-6);
}

TEST(Loudness, SilenceUntouched) {
  AudioSignal s;
  s.samples.assign(1600, 0.0F);
  normalize_loudness(s, 0.1);
  EXPECT_DOUBLE_EQ(s.rms(), 0.0);
}

TEST(OffsetFinder, RecoversKnownShift) {
  const auto ref = synthesize_voice(3.0, 11);
  // Delay by 4000 samples (250 ms).
  AudioSignal delayed;
  delayed.sample_rate = ref.sample_rate;
  delayed.samples.assign(4000, 0.0F);
  delayed.samples.insert(delayed.samples.end(), ref.samples.begin(), ref.samples.end());
  const auto offset = find_offset_samples(ref, delayed, 8000);
  // Envelope hop is 10 ms (160 samples): allow one hop of error.
  EXPECT_NEAR(static_cast<double>(offset), 4000.0, 200.0);
}

TEST(OffsetFinder, ZeroForAlignedSignals) {
  const auto ref = synthesize_voice(2.0, 13);
  EXPECT_NEAR(static_cast<double>(find_offset_samples(ref, ref, 4000)), 0.0, 1.0);
}

TEST(Shifted, AppliesShiftAndPads) {
  AudioSignal s;
  s.sample_rate = 16'000;
  for (int i = 0; i < 10; ++i) s.samples.push_back(static_cast<float>(i));
  const auto out = shifted(s, 3, 10);
  EXPECT_FLOAT_EQ(out.samples[0], 3.0F);
  EXPECT_FLOAT_EQ(out.samples[6], 9.0F);
  EXPECT_FLOAT_EQ(out.samples[7], 0.0F);  // past the end: silence
  const auto neg = shifted(s, -2, 5);
  EXPECT_FLOAT_EQ(neg.samples[0], 0.0F);
  EXPECT_FLOAT_EQ(neg.samples[2], 0.0F);
  EXPECT_FLOAT_EQ(neg.samples[3], 1.0F);
}

TEST(AudioCodec, FrameSizing) {
  AudioEncoder enc{{DataRate::kbps(64), 16'000, 20}};
  EXPECT_EQ(enc.frame_samples(), 320);
  const auto voice = synthesize_voice(0.1, 5);
  const auto frame = enc.encode(std::span<const float>{voice.samples.data(), 320});
  // 64 Kbps × 20 ms = 160 bytes budget.
  EXPECT_LE(frame->bytes, 165);
  EXPECT_GT(frame->bytes, 20);
}

TEST(AudioCodec, RoundTripPreservesSignalShape) {
  AudioEncoder enc{{DataRate::kbps(96), 16'000, 20}};
  AudioDecoder dec{320};
  const auto voice = synthesize_voice(0.5, 21);
  double err = 0;
  double energy = 0;
  for (int f = 0; f < 20; ++f) {
    const std::span<const float> in{voice.samples.data() + f * 320, 320};
    const auto decoded = dec.decode(*enc.encode(in));
    for (int i = 0; i < 320; ++i) {
      err += (decoded[static_cast<std::size_t>(i)] - in[static_cast<std::size_t>(i)]) *
             (decoded[static_cast<std::size_t>(i)] - in[static_cast<std::size_t>(i)]);
      energy += in[static_cast<std::size_t>(i)] * in[static_cast<std::size_t>(i)];
    }
  }
  EXPECT_LT(err, 0.25 * energy);  // most of the energy preserved
}

TEST(AudioCodec, HigherBitrateLowerError) {
  const auto voice = synthesize_voice(0.5, 23);
  auto total_error = [&](double kbps) {
    AudioEncoder enc{{DataRate::kbps(kbps), 16'000, 20}};
    AudioDecoder dec{320};
    double err = 0;
    for (int f = 0; f < 20; ++f) {
      const std::span<const float> in{voice.samples.data() + f * 320, 320};
      const auto decoded = dec.decode(*enc.encode(in));
      for (int i = 0; i < 320; ++i) {
        const double d = decoded[static_cast<std::size_t>(i)] - in[static_cast<std::size_t>(i)];
        err += d * d;
      }
    }
    return err;
  };
  EXPECT_LT(total_error(96), total_error(16));
}

TEST(AudioCodec, ConcealmentIsSilence) {
  AudioDecoder dec{320};
  const auto out = dec.conceal();
  ASSERT_EQ(out.size(), 320u);
  for (float s : out) EXPECT_FLOAT_EQ(s, 0.0F);
}

TEST(AudioCodec, WrongFrameSizeThrows) {
  AudioEncoder enc{{DataRate::kbps(64), 16'000, 20}};
  std::vector<float> wrong(100, 0.0F);
  EXPECT_THROW(enc.encode(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace vc::media
