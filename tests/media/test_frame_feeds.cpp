#include <gtest/gtest.h>

#include "media/feeds.h"
#include "media/frame.h"

namespace vc::media {
namespace {

TEST(Frame, ConstructAndAccess) {
  Frame f{8, 4, 7};
  EXPECT_EQ(f.width(), 8);
  EXPECT_EQ(f.height(), 4);
  EXPECT_EQ(f.at(3, 2), 7);
  f.set(3, 2, 200);
  EXPECT_EQ(f.at(3, 2), 200);
  EXPECT_THROW((Frame{0, 4}), std::invalid_argument);
}

TEST(Frame, ClampedAccess) {
  Frame f{4, 4, 0};
  f.set(0, 0, 10);
  f.set(3, 3, 20);
  EXPECT_EQ(f.at_clamped(-5, -5), 10);
  EXPECT_EQ(f.at_clamped(100, 100), 20);
}

TEST(Frame, Crop) {
  Frame f{10, 10};
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) f.set(x, y, static_cast<std::uint8_t>(10 * y + x));
  }
  const Frame c = f.crop(2, 3, 4, 5);
  EXPECT_EQ(c.width(), 4);
  EXPECT_EQ(c.height(), 5);
  EXPECT_EQ(c.at(0, 0), 32);
  EXPECT_EQ(c.at(3, 4), 75);
  EXPECT_THROW(f.crop(8, 8, 4, 4), std::out_of_range);
}

TEST(Frame, ResizeIdentity) {
  Frame f{16, 12, 99};
  EXPECT_EQ(f.resized(16, 12), f);
}

TEST(Frame, ResizePreservesUniform) {
  Frame f{16, 16, 130};
  const Frame r = f.resized(7, 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 7; ++x) EXPECT_EQ(r.at(x, y), 130);
  }
}

TEST(Frame, ResizeDownThenUpRoughlyPreserves) {
  Frame f{32, 32};
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) f.set(x, y, static_cast<std::uint8_t>(x * 8));
  }
  const Frame round = f.resized(16, 16).resized(32, 32);
  EXPECT_LT(f.mse(round), 40.0);  // smooth gradient survives
}

TEST(Frame, Mse) {
  Frame a{4, 4, 100};
  Frame b{4, 4, 110};
  EXPECT_DOUBLE_EQ(a.mse(a), 0.0);
  EXPECT_DOUBLE_EQ(a.mse(b), 100.0);
  Frame c{5, 4};
  EXPECT_THROW(a.mse(c), std::invalid_argument);
}

TEST(Feeds, DeterministicReplay) {
  const TalkingHeadFeed feed{{160, 120, 10.0, 99}};
  EXPECT_EQ(feed.frame_at(7), feed.frame_at(7));
  const TourGuideFeed tour{{160, 120, 10.0, 99}};
  EXPECT_EQ(tour.frame_at(13), tour.frame_at(13));
}

TEST(Feeds, SeedChangesContent) {
  const TalkingHeadFeed a{{160, 120, 10.0, 1}};
  const TalkingHeadFeed b{{160, 120, 10.0, 2}};
  EXPECT_NE(a.frame_at(0), b.frame_at(0));
}

TEST(Feeds, HighMotionExceedsLowMotion) {
  const TalkingHeadFeed low{{160, 120, 10.0, 5}};
  const TourGuideFeed high{{160, 120, 10.0, 5}};
  const double low_motion = mean_motion(low, 30);
  const double high_motion = mean_motion(high, 30);
  EXPECT_GT(high_motion, 3.0 * low_motion);  // clearly separated classes
  EXPECT_GT(low_motion, 0.0);                // the talking head does move
}

TEST(Feeds, BlankFeedIsStatic) {
  const BlankFeed blank{{64, 48, 10.0, 1}};
  EXPECT_DOUBLE_EQ(mean_motion(blank, 10), 0.0);
}

TEST(FlashFeed, PeriodicityAtConfiguredRate) {
  const FlashFeed feed{{64, 48, 10.0, 1}, 2.0, 2};
  // Period = 20 frames at 10 fps; flash frames are index 0,1 of each period.
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(feed.is_flash_frame(i), i % 20 < 2) << "frame " << i;
  }
}

TEST(FlashFeed, FlashVisiblyDiffersFromBlank) {
  const FlashFeed feed{{64, 48, 10.0, 1}};
  const Frame flash = feed.frame_at(0);
  const Frame blank = feed.frame_at(10);
  EXPECT_GT(flash.mse(blank), 1000.0);
  // Blank frames are identical to each other.
  EXPECT_EQ(feed.frame_at(10), feed.frame_at(11));
}

TEST(PaddedFeed, GeometryAndContentPlacement) {
  auto inner = std::make_shared<TalkingHeadFeed>(FeedParams{160, 120, 10.0, 4});
  const PaddedFeed padded{inner, 20, 16};
  EXPECT_EQ(padded.width(), 200);
  EXPECT_EQ(padded.height(), 160);
  const Frame pf = padded.frame_at(3);
  const Frame in = inner->frame_at(3);
  // Padding border is uniform.
  EXPECT_EQ(pf.at(0, 0), 16);
  EXPECT_EQ(pf.at(199, 159), 16);
  // Content is centered.
  EXPECT_EQ(pf.at(20, 20), in.at(0, 0));
  EXPECT_EQ(pf.at(179, 139), in.at(159, 119));
}

TEST(PaddedFeed, RejectsBadArguments) {
  EXPECT_THROW(PaddedFeed(nullptr, 4), std::invalid_argument);
  auto inner = std::make_shared<BlankFeed>(FeedParams{});
  EXPECT_THROW(PaddedFeed(inner, -1), std::invalid_argument);
}

TEST(Feeds, NegativeIndexThrows) {
  const TalkingHeadFeed feed{{160, 120, 10.0, 5}};
  EXPECT_THROW(feed.frame_at(-1), std::invalid_argument);
}

}  // namespace
}  // namespace vc::media
