#include <gtest/gtest.h>

#include "media/feeds.h"
#include "media/qoe/video_metrics.h"
#include "media/video_codec.h"

namespace vc::media {
namespace {

constexpr int kW = 128;
constexpr int kH = 96;

VideoEncoder::Config cfg(double kbps, double fps = 10.0) {
  VideoEncoder::Config c;
  c.target_bitrate = DataRate::kbps(kbps);
  c.fps = fps;
  return c;
}

TEST(VideoCodec, RejectsNonMultipleOf8) {
  EXPECT_THROW((VideoEncoder{100, 96, cfg(500)}), std::invalid_argument);
  EXPECT_THROW((VideoDecoder{128, 90}), std::invalid_argument);
}

TEST(VideoCodec, DecoderMatchesEncoderReconstruction) {
  // The closed loop: a lossless decoder must reproduce the encoder's own
  // reconstruction bit-exactly, frame after frame.
  TourGuideFeed feed{{kW, kH, 10.0, 3}};
  VideoEncoder enc{kW, kH, cfg(600)};
  VideoDecoder dec{kW, kH};
  for (int i = 0; i < 12; ++i) {
    const auto encoded = enc.encode(feed.frame_at(i));
    const Frame& decoded = dec.decode(*encoded);
    EXPECT_EQ(decoded, enc.last_reconstructed()) << "frame " << i;
  }
  EXPECT_EQ(dec.frames_decoded(), 12);
}

TEST(VideoCodec, FirstFrameIsKeyframe) {
  TalkingHeadFeed feed{{kW, kH, 10.0, 3}};
  VideoEncoder enc{kW, kH, cfg(600)};
  const auto f0 = enc.encode(feed.frame_at(0));
  EXPECT_TRUE(f0->keyframe);
  const auto f1 = enc.encode(feed.frame_at(1));
  EXPECT_FALSE(f1->keyframe);
}

TEST(VideoCodec, KeyframeInterval) {
  TalkingHeadFeed feed{{kW, kH, 10.0, 3}};
  auto c = cfg(600);
  c.keyframe_interval = 5;
  VideoEncoder enc{kW, kH, c};
  for (int i = 0; i < 11; ++i) {
    const auto f = enc.encode(feed.frame_at(i));
    EXPECT_EQ(f->keyframe, i % 5 == 0) << "frame " << i;
  }
}

TEST(VideoCodec, RateControlHitsTarget) {
  TourGuideFeed feed{{kW, kH, 10.0, 7}};
  const double target_kbps = 500;
  VideoEncoder enc{kW, kH, cfg(target_kbps)};
  std::int64_t bytes = 0;
  const int frames = 50;
  for (int i = 0; i < frames; ++i) bytes += enc.encode(feed.frame_at(i))->bytes;
  const double realized_kbps = static_cast<double>(bytes) * 8 / (frames / 10.0) / 1000.0;
  EXPECT_NEAR(realized_kbps, target_kbps, target_kbps * 0.35);
}

TEST(VideoCodec, HigherRateGivesHigherQuality) {
  TourGuideFeed feed{{kW, kH, 10.0, 7}};
  double psnr_low = 0;
  double psnr_high = 0;
  for (const double kbps : {150.0, 1500.0}) {
    VideoEncoder enc{kW, kH, cfg(kbps)};
    VideoDecoder dec{kW, kH};
    double acc = 0;
    for (int i = 0; i < 10; ++i) {
      const Frame original = feed.frame_at(i);
      dec.decode(*enc.encode(original));
      acc += qoe::psnr(original, dec.current());
    }
    (kbps < 1000 ? psnr_low : psnr_high) = acc / 10;
  }
  EXPECT_GT(psnr_high, psnr_low + 2.0);
}

TEST(VideoCodec, LowMotionCostsFewerBitsAtSameQuality) {
  // Finding 3's mechanism: with the same quantizer path, the static scene
  // compresses far better. Measured on noise-free content (sensor noise is
  // a property of the capture pipeline, not of the codec).
  TalkingHeadFeed low{{kW, kH, 10.0, 5, 0.0}};
  TourGuideFeed high{{kW, kH, 10.0, 5, 0.0}};
  auto total_bytes = [](const VideoFeed& feed) {
    VideoEncoder enc{kW, kH, cfg(100000)};  // effectively uncapped: qstep stays put
    std::int64_t bytes = 0;
    for (int i = 0; i < 15; ++i) bytes += enc.encode(feed.frame_at(i))->bytes;
    return bytes;
  };
  EXPECT_LT(total_bytes(low), total_bytes(high) / 2);
}

TEST(VideoCodec, StaticContentGoesQuietOnTheWire) {
  // After the first frames, a blank feed must cost almost nothing — the
  // premise of the paper's lag-measurement method (Fig 2).
  BlankFeed feed{{kW, kH, 10.0, 1}};
  VideoEncoder enc{kW, kH, cfg(600)};
  std::shared_ptr<const EncodedFrame> last;
  for (int i = 0; i < 5; ++i) last = enc.encode(feed.frame_at(i));
  EXPECT_LT(last->bytes, 200);
}

TEST(VideoCodec, FlashBurstsAreBig) {
  FlashFeed feed{{kW, kH, 10.0, 1}};
  VideoEncoder enc{kW, kH, cfg(600)};
  std::int64_t flash_bytes = 0;
  std::int64_t blank_bytes = 0;
  for (int i = 0; i < 40; ++i) {
    const auto f = enc.encode(feed.frame_at(i));
    if (i % 20 == 0) flash_bytes = f->bytes;     // first flash frame of a period
    if (i % 20 == 10) blank_bytes = f->bytes;    // mid-quiescence
  }
  EXPECT_GT(flash_bytes, 1000);
  EXPECT_LT(blank_bytes, 200);
}

TEST(VideoCodec, SetTargetBitrateAdapts) {
  TourGuideFeed feed{{kW, kH, 10.0, 9}};
  VideoEncoder enc{kW, kH, cfg(1200)};
  for (int i = 0; i < 10; ++i) enc.encode(feed.frame_at(i));
  const double q_before = enc.current_qstep();
  enc.set_target_bitrate(DataRate::kbps(120));
  for (int i = 10; i < 25; ++i) enc.encode(feed.frame_at(i));
  EXPECT_GT(enc.current_qstep(), q_before * 1.5);  // quantizer coarsened
}

TEST(VideoCodec, EncodedFrameMetadata) {
  TalkingHeadFeed feed{{kW, kH, 10.0, 3}};
  VideoEncoder enc{kW, kH, cfg(400)};
  const auto f = enc.encode(feed.frame_at(0));
  EXPECT_EQ(f->width, kW);
  EXPECT_EQ(f->height, kH);
  EXPECT_EQ(f->sequence, 0);
  EXPECT_EQ(f->coeffs.size(), static_cast<std::size_t>(kW / 8 * kH / 8 * 64));
  EXPECT_EQ(f->modes.size(), static_cast<std::size_t>(kW / 8 * kH / 8));
  EXPECT_GT(f->bytes, 0);
}

TEST(VideoCodec, MismatchedFrameSizeThrows) {
  VideoEncoder enc{kW, kH, cfg(400)};
  EXPECT_THROW(enc.encode(Frame{64, 64}), std::invalid_argument);
  VideoDecoder dec{kW, kH};
  EncodedFrame wrong;
  wrong.width = 64;
  wrong.height = 64;
  EXPECT_THROW(dec.decode(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace vc::media
