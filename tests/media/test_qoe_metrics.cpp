#include <gtest/gtest.h>

#include "common/rng.h"
#include "media/align.h"
#include "media/audio.h"
#include "media/feeds.h"
#include "media/qoe/mos_lqo.h"
#include "media/qoe/video_metrics.h"

namespace vc::media {
namespace {

Frame noisy(const Frame& f, double sigma, std::uint64_t seed) {
  Rng rng{seed};
  Frame out = f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double v = out.data()[i] + rng.normal(0.0, sigma);
    out.data()[i] = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
  }
  return out;
}

Frame test_image(std::uint64_t seed = 3) {
  return TourGuideFeed{{128, 96, 10.0, seed}}.frame_at(0);
}

TEST(Psnr, IdenticalHitsCap) {
  const Frame f = test_image();
  EXPECT_DOUBLE_EQ(qoe::psnr(f, f), 100.0);
}

TEST(Psnr, KnownValueForUniformError) {
  Frame a{64, 64, 100};
  Frame b{64, 64, 110};
  // MSE = 100 → PSNR = 10 log10(255² / 100) ≈ 28.13 dB.
  EXPECT_NEAR(qoe::psnr(a, b), 28.13, 0.01);
}

TEST(Psnr, MonotoneInNoise) {
  const Frame f = test_image();
  EXPECT_GT(qoe::psnr(f, noisy(f, 2, 1)), qoe::psnr(f, noisy(f, 10, 1)));
}

TEST(Ssim, IdenticalIsOne) {
  const Frame f = test_image();
  EXPECT_NEAR(qoe::ssim(f, f), 1.0, 1e-9);
}

TEST(Ssim, MonotoneInNoise) {
  const Frame f = test_image();
  const double s_light = qoe::ssim(f, noisy(f, 3, 2));
  const double s_heavy = qoe::ssim(f, noisy(f, 20, 2));
  EXPECT_GT(s_light, s_heavy);
  EXPECT_GT(s_light, 0.8);
  EXPECT_LT(s_heavy, 0.75);
}

TEST(Ssim, UnrelatedImagesScoreLow) {
  const Frame a = test_image(1);
  const Frame b = test_image(99);
  // Two tour frames share texture *statistics* but not structure: SSIM must
  // land far below the ~0.9+ of a faithful transmission.
  EXPECT_LT(qoe::ssim(a, b), 0.55);
}

TEST(Vifp, IdenticalIsOne) {
  const Frame f = test_image();
  EXPECT_NEAR(qoe::vifp(f, f), 1.0, 1e-6);
}

TEST(Vifp, MonotoneInNoise) {
  const Frame f = test_image();
  const double v_light = qoe::vifp(f, noisy(f, 3, 4));
  const double v_heavy = qoe::vifp(f, noisy(f, 20, 4));
  EXPECT_GT(v_light, v_heavy);
  EXPECT_GT(v_heavy, 0.0);
}

TEST(Vifp, BlurReducesInformation) {
  const Frame f = test_image();
  // Box-blur the image: structural information lost → VIFp well below 1.
  Frame blurred = f;
  for (int y = 1; y < f.height() - 1; ++y) {
    for (int x = 1; x < f.width() - 1; ++x) {
      int acc = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) acc += f.at(x + dx, y + dy);
      }
      blurred.set(x, y, static_cast<std::uint8_t>(acc / 9));
    }
  }
  // A 3×3 box blur removes fine-scale information; VIFp must drop below the
  // identity score (it weighs coarse scales heavily, so the drop is modest).
  EXPECT_LT(qoe::vifp(f, blurred), 0.95);
  EXPECT_GT(qoe::vifp(f, blurred), 0.3);
}

TEST(VideoQoe, BundleMatchesIndividuals) {
  const Frame f = test_image();
  const Frame g = noisy(f, 5, 6);
  const auto q = qoe::video_qoe(f, g);
  EXPECT_DOUBLE_EQ(q.psnr, qoe::psnr(f, g));
  EXPECT_DOUBLE_EQ(q.ssim, qoe::ssim(f, g));
  EXPECT_DOUBLE_EQ(q.vifp, qoe::vifp(f, g));
}

TEST(VideoQoe, MeanOverSequence) {
  std::vector<Frame> ref;
  std::vector<Frame> dist;
  for (int i = 0; i < 4; ++i) {
    ref.push_back(test_image(static_cast<std::uint64_t>(i)));
    dist.push_back(noisy(ref.back(), 5, static_cast<std::uint64_t>(i)));
  }
  const auto q = qoe::mean_video_qoe(ref, dist);
  EXPECT_GT(q.psnr, 20.0);
  EXPECT_LT(q.psnr, 100.0);
  EXPECT_THROW(qoe::mean_video_qoe({}, {}), std::invalid_argument);
}

TEST(MetricInputs, SizeMismatchThrows) {
  Frame a{64, 64};
  Frame b{32, 32};
  EXPECT_THROW(qoe::psnr(a, b), std::invalid_argument);
  EXPECT_THROW(qoe::ssim(a, b), std::invalid_argument);
  EXPECT_THROW(qoe::vifp(a, b), std::invalid_argument);
}

// ---------------------------------------------------------------- audio MOS

TEST(MosLqo, IdenticalNearCeiling) {
  const auto v = synthesize_voice(2.0, 31);
  EXPECT_GT(qoe::mos_lqo(v, v), 4.5);
}

TEST(MosLqo, NoiseDegrades) {
  auto v = synthesize_voice(2.0, 33);
  normalize_loudness(v);
  AudioSignal noisy_sig = v;
  Rng rng{5};
  for (auto& s : noisy_sig.samples) s += static_cast<float>(rng.normal(0.0, 0.08));
  const double clean = qoe::mos_lqo(v, v);
  const double degraded = qoe::mos_lqo(v, noisy_sig);
  EXPECT_LT(degraded, clean - 0.4);
}

TEST(MosLqo, DropoutsDegrade) {
  auto v = synthesize_voice(3.0, 35);
  normalize_loudness(v);
  AudioSignal gappy = v;
  // Zero out 100 ms every 500 ms (the Webex-under-cap artifact).
  const std::size_t gap = 1600;
  for (std::size_t start = 4000; start + gap < gappy.samples.size(); start += 8000) {
    for (std::size_t i = 0; i < gap; ++i) gappy.samples[start + i] = 0.0F;
  }
  EXPECT_LT(qoe::mos_lqo(v, gappy), qoe::mos_lqo(v, v) - 0.3);
}

TEST(MosLqo, SilenceScoresNearFloor) {
  auto v = synthesize_voice(2.0, 37);
  normalize_loudness(v);
  AudioSignal silence = v;
  for (auto& s : silence.samples) s = 0.0F;
  EXPECT_LT(qoe::mos_lqo(v, silence), 2.5);
}

TEST(MosLqo, MapMonotone) {
  double prev = 0.0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double mos = qoe::nsim_to_mos(s);
    EXPECT_GE(mos, prev);
    EXPECT_GE(mos, 1.0);
    EXPECT_LE(mos, 5.0);
    prev = mos;
  }
}

// ------------------------------------------------------------------ alignment

TEST(Align, CropAndResize) {
  RecordedVideo rec;
  rec.fps = 10;
  auto inner = std::make_shared<TalkingHeadFeed>(FeedParams{64, 48, 10.0, 8});
  const PaddedFeed padded{inner, 8};
  for (int i = 0; i < 3; ++i) rec.frames.push_back(padded.frame_at(i));
  const auto out = crop_and_resize(rec, 8, 64, 48);
  ASSERT_EQ(out.frames.size(), 3u);
  EXPECT_EQ(out.frames[0], inner->frame_at(0));
  EXPECT_THROW(crop_and_resize(out, 40, 10, 10), std::invalid_argument);
}

TEST(Align, RecoversTemporalShift) {
  TourGuideFeed feed{{64, 48, 10.0, 9}};
  std::vector<Frame> reference;
  std::vector<Frame> recording;
  const int shift = 4;
  for (int i = 0; i < 30; ++i) reference.push_back(feed.frame_at(i));
  // Recording lags by `shift` frames (plus leading garbage frames).
  for (int i = 0; i < shift; ++i) recording.emplace_back(64, 48, 12);
  for (int i = 0; i < 26; ++i) recording.push_back(feed.frame_at(i));
  EXPECT_EQ(best_temporal_shift(reference, recording, 8), shift);
  const auto aligned = align_sequences(reference, recording, shift);
  EXPECT_EQ(aligned.reference.size(), aligned.recording.size());
  EXPECT_EQ(aligned.reference[0], aligned.recording[0]);
}

TEST(Align, SequenceTruncation) {
  std::vector<Frame> ref(10, Frame{16, 16, 1});
  std::vector<Frame> rec(7, Frame{16, 16, 1});
  const auto aligned = align_sequences(ref, rec, 2);
  EXPECT_EQ(aligned.reference.size(), 5u);
  EXPECT_THROW(align_sequences(ref, rec, 7), std::invalid_argument);
  EXPECT_THROW(align_sequences(ref, rec, -1), std::invalid_argument);
}

}  // namespace
}  // namespace vc::media
