// Exhaustive bit-equality suite for the vectorized DCT/IDCT backends
// against the retained scalar reference (dct8.h's determinism contract).
// Every comparison is memcmp over the raw doubles: not "close", identical.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "media/dct8.h"
#include "media/feeds.h"
#include "media/video_codec.h"

namespace vc::media {
namespace {

using Block = std::array<double, 64>;

std::vector<DctBackend> available_backends() {
  std::vector<DctBackend> out;
  for (DctBackend b : {DctBackend::kPortable, DctBackend::kSse2, DctBackend::kAvx}) {
    if (dct_backend_available(b)) out.push_back(b);
  }
  return out;
}

// Restores the startup dispatch even when an assertion fails mid-test.
struct BackendGuard {
  ~BackendGuard() { set_dct_backend(best_dct_backend()); }
};

void expect_identical(const Block& in, DctBackend backend) {
  ASSERT_TRUE(set_dct_backend(backend));
  Block ref_f{}, vec_f{}, ref_i{}, vec_i{};
  dct2d_8x8_scalar(in.data(), ref_f.data());
  dct2d_8x8(in.data(), vec_f.data());
  EXPECT_EQ(std::memcmp(ref_f.data(), vec_f.data(), sizeof(Block)), 0)
      << "forward DCT diverges on backend " << dct_backend_name(backend);
  // Run the inverse on the (identical) coefficients too, so the round trip
  // exercises both table layouts.
  idct2d_8x8_scalar(ref_f.data(), ref_i.data());
  idct2d_8x8(ref_f.data(), vec_i.data());
  EXPECT_EQ(std::memcmp(ref_i.data(), vec_i.data(), sizeof(Block)), 0)
      << "inverse DCT diverges on backend " << dct_backend_name(backend);
}

TEST(Dct8, ScalarBackendIsTheReference) {
  BackendGuard guard;
  ASSERT_TRUE(set_dct_backend(DctBackend::kScalar));
  Block in{};
  Rng rng{2026};
  for (auto& v : in) v = rng.uniform(-255.0, 255.0);
  Block a{}, b{};
  dct2d_8x8(in.data(), a.data());
  dct2d_8x8_scalar(in.data(), b.data());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(Block)), 0);
}

TEST(Dct8, BestBackendIsVectorizedOnX86) {
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_TRUE(best_dct_backend() == DctBackend::kSse2 || best_dct_backend() == DctBackend::kAvx);
  EXPECT_TRUE(dct_backend_available(DctBackend::kSse2));
#else
  EXPECT_EQ(best_dct_backend(), DctBackend::kPortable);
#endif
  EXPECT_TRUE(dct_backend_available(best_dct_backend()));
  EXPECT_STRNE(dct_backend_name(best_dct_backend()), "?");
}

TEST(Dct8, UnavailableBackendLeavesDispatchUntouched) {
  BackendGuard guard;
  const DctBackend before = active_dct_backend();
  for (DctBackend b : {DctBackend::kSse2, DctBackend::kAvx}) {
    if (!dct_backend_available(b)) {
      EXPECT_FALSE(set_dct_backend(b));
      EXPECT_EQ(active_dct_backend(), before);
    }
  }
}

TEST(Dct8, RandomBlocksBitIdenticalOnEveryBackend) {
  BackendGuard guard;
  Rng rng{7321};
  for (DctBackend backend : available_backends()) {
    for (int rep = 0; rep < 2000; ++rep) {
      Block in{};
      // Mix residual-like values (pixel − prediction ∈ [−255, 255]) with
      // occasional huge coefficients to stress exponent ranges.
      for (auto& v : in) {
        v = rep % 5 == 4 ? rng.uniform(-2.0e5, 2.0e5) : rng.uniform(-255.0, 255.0);
      }
      expect_identical(in, backend);
    }
  }
}

TEST(Dct8, ExtremeAndStructuredBlocksBitIdentical) {
  BackendGuard guard;
  std::vector<Block> cases;
  Block b{};
  cases.push_back(b);  // all zero
  b.fill(255.0);
  cases.push_back(b);  // max positive residual
  b.fill(-255.0);
  cases.push_back(b);  // max negative residual
  // Single impulses at every position — isolates each basis column.
  for (int i = 0; i < 64; ++i) {
    Block imp{};
    imp[i] = 255.0;
    cases.push_back(imp);
    imp[i] = -128.0;
    cases.push_back(imp);
  }
  // Checkerboards (highest spatial frequency) and gradients.
  Block checker{}, grad{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      checker[y * 8 + x] = ((x + y) & 1) != 0 ? 255.0 : -255.0;
      grad[y * 8 + x] = static_cast<double>(x * 8 + y) - 31.5;
    }
  }
  cases.push_back(checker);
  cases.push_back(grad);
  // Denormal-scale and huge-magnitude inputs: the lanes must round the same
  // even at the edges of the double range.
  Block tiny{}, huge{};
  for (int i = 0; i < 64; ++i) {
    tiny[i] = (i % 2 != 0 ? 1.0 : -1.0) * 1e-300;
    huge[i] = (i % 3 != 0 ? 1.0 : -1.0) * 1e300;
  }
  cases.push_back(tiny);
  cases.push_back(huge);
  for (DctBackend backend : available_backends()) {
    for (const Block& c : cases) expect_identical(c, backend);
  }
}

// Whole-encoder equality across the quantizer range the platforms actually
// use: pinning min_qstep == max_qstep forces every pass to run at that
// step, and the encoded stream (sizes, coefficients, modes, recon) must be
// byte-identical whichever backend computed the transforms.
TEST(Dct8, FullEncoderBitIdenticalAcrossQstepGrid) {
  BackendGuard guard;
  constexpr int kW = 64;
  constexpr int kH = 64;
  const auto backends = available_backends();
  for (double q : {0.1, 0.5, 2.0, 10.0, 40.0, 160.0}) {
    VideoEncoder::Config cfg;
    cfg.target_bitrate = DataRate::kbps(600);
    cfg.fps = 10.0;
    cfg.min_qstep = q;
    cfg.max_qstep = q;

    TourGuideFeed feed{{kW, kH, 10.0, 11}};
    std::vector<Frame> frames;
    for (int i = 0; i < 8; ++i) frames.push_back(feed.frame_at(i));

    ASSERT_TRUE(set_dct_backend(DctBackend::kScalar));
    VideoEncoder ref_enc{kW, kH, cfg};
    VideoDecoder ref_dec{kW, kH};
    std::vector<std::shared_ptr<EncodedFrame>> ref_frames;
    std::vector<Frame> ref_decoded;
    for (const Frame& f : frames) {
      ref_frames.push_back(ref_enc.encode(f));
      ref_decoded.push_back(ref_dec.decode(*ref_frames.back()));
    }

    for (DctBackend backend : backends) {
      ASSERT_TRUE(set_dct_backend(backend));
      VideoEncoder enc{kW, kH, cfg};
      VideoDecoder dec{kW, kH};
      for (std::size_t i = 0; i < frames.size(); ++i) {
        const auto got = enc.encode(frames[i]);
        EXPECT_EQ(got->bytes, ref_frames[i]->bytes)
            << dct_backend_name(backend) << " q=" << q << " frame " << i;
        EXPECT_EQ(got->qstep, ref_frames[i]->qstep);
        EXPECT_EQ(got->coeffs, ref_frames[i]->coeffs)
            << dct_backend_name(backend) << " q=" << q << " frame " << i;
        EXPECT_EQ(got->modes, ref_frames[i]->modes);
        EXPECT_EQ(dec.decode(*got), ref_decoded[i])
            << dct_backend_name(backend) << " q=" << q << " frame " << i;
      }
      EXPECT_EQ(enc.last_reconstructed(), ref_enc.last_reconstructed());
    }
  }
}

}  // namespace
}  // namespace vc::media
