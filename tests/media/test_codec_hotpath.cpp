// Regression tests for the allocation-free codec hot path: after warm-up,
// steady-state encode and decode must perform ZERO heap allocations (the
// EncodedFrame pool + persistent scratch frames + capacity-retaining
// assign() make every per-frame buffer reusable).
//
// This file lives in its own test binary (tests_codec_hotpath) because it
// replaces global operator new/delete with counting versions — that is
// process-wide and must not leak into unrelated suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "media/feeds.h"
#include "media/video_codec.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept {
  if (p != nullptr) g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { operator delete(p); }

namespace vc::media {
namespace {

constexpr int kW = 128;
constexpr int kH = 96;

VideoEncoder::Config cfg() {
  VideoEncoder::Config c;
  c.target_bitrate = DataRate::kbps(800);
  c.fps = 10.0;
  return c;
}

// Pre-rendered frames: feed rendering allocates by design (returns Frame by
// value); the contract under test is the codec, so frames are produced
// outside the measured window.
std::vector<Frame> render_frames(int count) {
  TourGuideFeed feed{{kW, kH, 10.0, 3}};
  std::vector<Frame> frames;
  frames.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) frames.push_back(feed.frame_at(i));
  return frames;
}

TEST(CodecHotPath, EncodeIsAllocationFreeAfterWarmup) {
  const auto frames = render_frames(24);
  VideoEncoder enc{kW, kH, cfg()};
  // Warm-up: first frames populate the pool, the scratch frames, and the
  // coeffs/modes capacity (keyframe at 0 is the largest output).
  for (int i = 0; i < 8; ++i) enc.encode(frames[static_cast<std::size_t>(i)]);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 8; i < 24; ++i) {
    auto f = enc.encode(frames[static_cast<std::size_t>(i)]);
    ASSERT_NE(f, nullptr);
    // f is dropped at scope end → the pool slot is free again next frame.
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "encode hot path allocated " << (after - before) << " times";
}

TEST(CodecHotPath, DecodeIsAllocationFreeAfterWarmup) {
  const auto frames = render_frames(24);
  VideoEncoder enc{kW, kH, cfg()};
  std::vector<std::shared_ptr<EncodedFrame>> encoded;
  encoded.reserve(frames.size());
  // Retaining every frame forces the encoder to allocate fresh ones — the
  // pool must never recycle a frame the caller still holds.
  for (const auto& f : frames) encoded.push_back(enc.encode(f));

  VideoDecoder dec{kW, kH};
  for (int i = 0; i < 8; ++i) dec.decode(*encoded[static_cast<std::size_t>(i)]);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 8; i < 24; ++i) dec.decode(*encoded[static_cast<std::size_t>(i)]);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "decode hot path allocated " << (after - before) << " times";
}

// The pool is an optimization, never a semantic: an encoder whose caller
// retains every output (pool always exhausted → fresh allocations) must
// produce the exact same stream as one whose caller drops frames
// immediately (pool recycles every time).
TEST(CodecHotPath, PoolRecyclingDoesNotChangeTheStream) {
  const auto frames = render_frames(20);
  VideoEncoder retain_enc{kW, kH, cfg()};
  VideoEncoder drop_enc{kW, kH, cfg()};
  std::vector<std::shared_ptr<EncodedFrame>> retained;
  for (const auto& f : frames) {
    retained.push_back(retain_enc.encode(f));
    const auto dropped = drop_enc.encode(f);
    const auto& kept = *retained.back();
    EXPECT_EQ(dropped->bytes, kept.bytes);
    EXPECT_EQ(dropped->qstep, kept.qstep);
    EXPECT_EQ(dropped->sequence, kept.sequence);
    EXPECT_EQ(dropped->keyframe, kept.keyframe);
    EXPECT_EQ(dropped->coeffs, kept.coeffs);
    EXPECT_EQ(dropped->modes, kept.modes);
  }
  // Sanity: the retained frames really are all distinct objects.
  for (std::size_t i = 0; i < retained.size(); ++i) {
    for (std::size_t j = i + 1; j < retained.size(); ++j) {
      EXPECT_NE(retained[i].get(), retained[j].get());
    }
  }
  EXPECT_EQ(retain_enc.last_reconstructed(), drop_enc.last_reconstructed());
}

// The counting operators themselves must be active, or the zero-allocation
// expectations above would pass vacuously.
TEST(CodecHotPath, CountingAllocatorIsLive) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  auto* v = new std::vector<int>(1024, 7);
  delete v;
  EXPECT_GT(g_allocs.load(std::memory_order_relaxed), before);
  EXPECT_GT(g_frees.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace vc::media
