// Acceptance test for the fault subsystem's determinism contract: a
// flight-recorded faulted session — relay crash, detection, backoff,
// re-join, subscription re-establishment — must emit byte-identical runner
// aggregate reports AND per-task trace files at every runner thread count
// and every relay fan-out shard count K. Faults draw no randomness of their
// own and reconnect jitter comes from controller-owned RNGs, so the whole
// recovery path sits inside the same contract as a healthy run.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault_recovery_benchmark.h"
#include "runner/experiment_runner.h"

namespace vc {
namespace {

constexpr std::size_t kTasks = 2;

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct FaultedRun {
  std::string aggregate_json;
  std::vector<std::string> trace_files;
};

FaultedRun run_faulted(std::size_t threads, int fan_out_shards, const std::string& tag) {
  const std::string dir = testing::TempDir() + "vc_fault_" + tag;
  runner::ExperimentRunner::Config rc;
  rc.threads = threads;
  rc.base_seed = 23;
  rc.label = "fault-determinism";
  rc.trace_dir = dir;
  rc.trace_capacity = 4096;
  const auto report =
      runner::ExperimentRunner{rc}.run(kTasks, [fan_out_shards](runner::SessionContext& ctx) {
        core::FaultRecoveryConfig cfg;
        cfg.platform = platform::PlatformId::kZoom;
        cfg.session_duration = seconds(20);
        cfg.outage_start = seconds(5);
        cfg.outage_duration = seconds(2);
        cfg.seed = ctx.seed;
        cfg.fan_out_shards = fan_out_shards;
        cfg.metrics = &ctx.metrics;
        cfg.tracer = ctx.tracer;
        const auto r = core::run_fault_recovery_benchmark(cfg);
        // The fault actually bit: every client cycled through reconnect.
        EXPECT_EQ(r.disconnects, 3);
        EXPECT_EQ(r.reconnects, 3);
        ctx.sample("reconnects", static_cast<double>(r.reconnects));
        ctx.sample("mean_ttr_ms", r.mean_time_to_reconnect_ms);
        ctx.sample("packets_lost", static_cast<double>(r.packets_lost_in_outage));
        for (double lag : r.lags_during_ms) ctx.sample("lag_during", lag);
        for (double lag : r.lags_after_ms) ctx.sample("lag_after", lag);
      });
  EXPECT_TRUE(report.failures.empty());
  EXPECT_TRUE(report.trace.enabled);
  EXPECT_GT(report.trace.records, 0u);
  FaultedRun out;
  out.aggregate_json = report.aggregate_json();
  for (std::size_t i = 0; i < kTasks; ++i) {
    out.trace_files.push_back(slurp(dir + "/" + std::to_string(i) + ".trace.json"));
    EXPECT_FALSE(out.trace_files.back().empty()) << "missing trace file for task " << i;
  }
  return out;
}

TEST(FaultDeterminism, FaultedSessionIdenticalAcrossThreadsAndShards) {
  const FaultedRun base = run_faulted(1, 0, "t1k0");
  ASSERT_EQ(base.trace_files.size(), kTasks);
  // The crash/recovery chain reached the aggregate report's counters. (The
  // trace ring only retains the latest window, so the crash instants at 5 s
  // may be evicted — the byte-identity checks below still cover the files.)
  EXPECT_NE(base.aggregate_json.find("fault.relay_crashes"), std::string::npos);

  const struct {
    std::size_t threads;
    int shards;
    const char* tag;
  } combos[] = {{8, 0, "t8k0"}, {1, 8, "t1k8"}, {8, 8, "t8k8"}};
  for (const auto& combo : combos) {
    const FaultedRun other = run_faulted(combo.threads, combo.shards, combo.tag);
    EXPECT_EQ(other.aggregate_json, base.aggregate_json)
        << "report drifted at threads=" << combo.threads << " K=" << combo.shards;
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(other.trace_files[i], base.trace_files[i])
          << "trace file " << i << " drifted at threads=" << combo.threads
          << " K=" << combo.shards;
    }
  }
}

}  // namespace
}  // namespace vc
