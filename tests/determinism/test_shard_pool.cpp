// ShardPool unit tests: strided coverage, epoch reuse, inline fallback,
// exception propagation, and cross-thread result visibility. These run in
// the TSan CI job, so every assertion here doubles as a data-race probe on
// the pool's epoch/done handshake.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/shard_pool.h"

namespace vc {
namespace {

TEST(ShardPool, RunsEveryShardExactlyOnce) {
  ShardPool pool{3};
  for (int shards : {1, 2, 3, 4, 7, 16}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(shards));
    pool.run(shards, [&](int s) { hits[static_cast<std::size_t>(s)].fetch_add(1); });
    for (int s = 0; s < shards; ++s) {
      EXPECT_EQ(hits[static_cast<std::size_t>(s)].load(), 1) << "shards=" << shards << " s=" << s;
    }
  }
}

TEST(ShardPool, ReusableAcrossManyEpochs) {
  // The epoch handshake must survive thousands of dispatches without a
  // worker wedging on a stale epoch or double-running a job.
  ShardPool pool{2};
  std::atomic<std::int64_t> total{0};
  for (int epoch = 0; epoch < 4000; ++epoch) {
    pool.run(3, [&](int s) { total.fetch_add(s + 1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 4000 * (1 + 2 + 3));
}

TEST(ShardPool, MoreShardsThanLanesAreStridedOverAllLanes) {
  // With W workers there are W+1 lanes; shard s runs on lane s % (W+1).
  // 10 shards over 3 lanes → every shard still runs exactly once.
  ShardPool pool{2};
  std::vector<std::atomic<int>> hits(10);
  pool.run(10, [&](int s) { hits[static_cast<std::size_t>(s)].fetch_add(1); });
  int sum = 0;
  for (auto& h : hits) sum += h.load();
  EXPECT_EQ(sum, 10);
  for (std::size_t s = 0; s < hits.size(); ++s) EXPECT_EQ(hits[s].load(), 1) << s;
}

TEST(ShardPool, ZeroWorkersRunsInlineOnCaller) {
  ShardPool pool{0};
  EXPECT_EQ(pool.workers(), 0);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(4);
  pool.run(4, [&](int s) { ran[static_cast<std::size_t>(s)] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ShardPool, NonPositiveShardCountIsANoOp) {
  ShardPool pool{1};
  int calls = 0;
  pool.run(0, [&](int) { ++calls; });
  pool.run(-3, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ShardPool, FirstExceptionPropagatesAndPoolSurvives) {
  ShardPool pool{2};
  EXPECT_THROW(
      pool.run(6,
               [&](int s) {
                 if (s % 2 == 1) throw std::runtime_error{"shard failed"};
               }),
      std::runtime_error);
  // The pool must still be usable after a throwing epoch.
  std::atomic<int> ok{0};
  pool.run(6, [&](int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 6);
}

TEST(ShardPool, ResultsWrittenByWorkersAreVisibleAfterRun) {
  // The join handshake (per-lane done release-store, caller acquire-spin)
  // must publish plain non-atomic writes made inside shard jobs.
  ShardPool pool{3};
  std::vector<std::int64_t> out(64, 0);
  for (int round = 0; round < 200; ++round) {
    pool.run(static_cast<int>(out.size()),
             [&](int s) { out[static_cast<std::size_t>(s)] = 1000 + round + s; });
    for (int s = 0; s < static_cast<int>(out.size()); ++s) {
      ASSERT_EQ(out[static_cast<std::size_t>(s)], 1000 + round + s);
    }
  }
}

TEST(ShardPool, AutoWorkersNeverExceedsShardsOrCores) {
  EXPECT_EQ(ShardPool::auto_workers(1), 0);  // one shard needs no helpers
  for (int shards : {2, 4, 8, 64}) {
    const int w = ShardPool::auto_workers(shards);
    EXPECT_GE(w, 0);
    EXPECT_LE(w, shards - 1);
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) EXPECT_LE(w, static_cast<int>(hw) - 1);
  }
}

}  // namespace
}  // namespace vc
