// Acceptance test for the observability subsystem's determinism contract: a
// sampled, SLO-monitored faulted session must emit byte-identical runner
// aggregate reports AND per-task timeline files (snapshots + health events)
// at every runner thread count and every relay fan-out shard count K.
// Sampling ticks read sim time and registry state only, and rule evaluation
// draws zero randomness, so the whole observability layer sits inside the
// same contract as the simulation it watches.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault_recovery_benchmark.h"
#include "health/health_monitor.h"
#include "runner/experiment_runner.h"

namespace vc {
namespace {

constexpr std::size_t kTasks = 2;

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<health::SloRule> slo_rules() {
  health::SloRule reconnects;
  reconnects.rule = "reconnect-steady";
  reconnects.metric = "client.reconnects";
  reconnects.field = health::SloRule::Field::kDelta;
  reconnects.op = health::SloRule::Op::kEq;
  reconnects.threshold = 0.0;
  reconnects.severity = health::Severity::kWarning;
  health::SloRule disconnects;
  disconnects.rule = "no-disconnects";
  disconnects.metric = "client.disconnects";
  disconnects.field = health::SloRule::Field::kDelta;
  disconnects.op = health::SloRule::Op::kEq;
  disconnects.threshold = 0.0;
  disconnects.severity = health::Severity::kCritical;
  return {reconnects, disconnects};
}

struct SampledRun {
  std::string aggregate_json;
  std::vector<std::string> timeline_files;
};

SampledRun run_sampled(std::size_t threads, int fan_out_shards, const std::string& tag) {
  const std::string dir = testing::TempDir() + "vc_timeline_" + tag;
  runner::ExperimentRunner::Config rc;
  rc.threads = threads;
  rc.base_seed = 23;
  rc.label = "timeline-determinism";
  rc.timeline_dir = dir;
  rc.timeline_interval = millis(500);
  rc.timeline_capacity = 256;
  rc.health_rules = slo_rules();
  const auto report =
      runner::ExperimentRunner{rc}.run(kTasks, [fan_out_shards](runner::SessionContext& ctx) {
        core::FaultRecoveryConfig cfg;
        cfg.platform = platform::PlatformId::kZoom;
        cfg.session_duration = seconds(20);
        cfg.outage_start = seconds(5);
        cfg.outage_duration = seconds(2);
        cfg.seed = ctx.seed;
        cfg.fan_out_shards = fan_out_shards;
        cfg.metrics = &ctx.metrics;
        cfg.timeline = ctx.timeline;
        const auto r = core::run_fault_recovery_benchmark(cfg);
        EXPECT_EQ(r.reconnects, 3);
        // The monitor saw the outage as it happened: the reconnect rule's
        // breach begins fall inside the [outage_begin, recovery_end) span.
        ASSERT_NE(ctx.health, nullptr);
        int begins_during = 0;
        for (const auto& ev : ctx.health->events()) {
          if (ev.begin && ev.at >= r.outage_begin_abs && ev.at < r.recovery_end_abs) {
            ++begins_during;
          }
        }
        EXPECT_GT(begins_during, 0);
        ctx.sample("reconnects", static_cast<double>(r.reconnects));
        ctx.sample("mean_ttr_ms", r.mean_time_to_reconnect_ms);
      });
  EXPECT_TRUE(report.failures.empty());
  EXPECT_TRUE(report.timeline.enabled);
  EXPECT_GT(report.timeline.samples, 0u);
  EXPECT_EQ(report.timeline.health_rules, 2u * kTasks);
  EXPECT_GT(report.timeline.health_breaches, 0u);
  EXPECT_EQ(report.timeline.write_failures, 0u);
  SampledRun out;
  out.aggregate_json = report.aggregate_json();
  for (std::size_t i = 0; i < kTasks; ++i) {
    out.timeline_files.push_back(slurp(dir + "/" + std::to_string(i) + ".timeline.json"));
    EXPECT_FALSE(out.timeline_files.back().empty()) << "missing timeline file for task " << i;
  }
  return out;
}

TEST(TimelineDeterminism, SampledSessionIdenticalAcrossThreadsAndShards) {
  const SampledRun base = run_sampled(1, 0, "t1k0");
  ASSERT_EQ(base.timeline_files.size(), kTasks);
  // The files carry both sections, and the breach edges made it in.
  EXPECT_NE(base.timeline_files[0].find("\"timeline\":"), std::string::npos);
  EXPECT_NE(base.timeline_files[0].find("\"health\":"), std::string::npos);
  EXPECT_NE(base.timeline_files[0].find("\"type\":\"begin\""), std::string::npos);
  // Breach counters crossed into the metrics reduction.
  EXPECT_NE(base.aggregate_json.find("health.reconnect-steady.breaches"), std::string::npos);

  const struct {
    std::size_t threads;
    int shards;
    const char* tag;
  } combos[] = {{8, 0, "t8k0"}, {1, 8, "t1k8"}, {8, 8, "t8k8"}};
  for (const auto& combo : combos) {
    const SampledRun other = run_sampled(combo.threads, combo.shards, combo.tag);
    EXPECT_EQ(other.aggregate_json, base.aggregate_json)
        << "report drifted at threads=" << combo.threads << " K=" << combo.shards;
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(other.timeline_files[i], base.timeline_files[i])
          << "timeline file " << i << " drifted at threads=" << combo.threads
          << " K=" << combo.shards;
    }
  }
}

// A monitored run with zero rules must be byte-identical to an unmonitored
// one — the observability twin of the armed-but-empty fault plan gate.
TEST(TimelineDeterminism, ArmedEmptyMonitorLeavesRunBytesIdentical) {
  auto run_once = [](bool with_empty_monitor, const char* tag) {
    const std::string dir = testing::TempDir() + "vc_timeline_empty_" + tag;
    // Declared outside the task: the runner finalizes the timeline (which
    // notifies the observer) after the task returns.
    health::HealthMonitor empty_monitor;
    runner::ExperimentRunner::Config rc;
    rc.threads = 2;
    rc.base_seed = 23;
    rc.label = "timeline-empty";
    rc.timeline_dir = dir;
    rc.timeline_interval = millis(500);
    const auto report = runner::ExperimentRunner{rc}.run(1, [&](runner::SessionContext& ctx) {
      if (with_empty_monitor && ctx.timeline != nullptr) {
        ctx.timeline->set_observer(&empty_monitor);
      }
      core::FaultRecoveryConfig cfg;
      cfg.platform = platform::PlatformId::kZoom;
      cfg.session_duration = seconds(10);
      cfg.outage_start = seconds(4);
      cfg.outage_duration = seconds(1);
      cfg.seed = ctx.seed;
      cfg.metrics = &ctx.metrics;
      cfg.timeline = ctx.timeline;
      core::run_fault_recovery_benchmark(cfg);
    });
    EXPECT_TRUE(report.failures.empty());
    return report.aggregate_json() + "\n---\n" + slurp(dir + "/0.timeline.json");
  };
  EXPECT_EQ(run_once(true, "a"), run_once(false, "b"));
}

}  // namespace
}  // namespace vc
