// Determinism contract of the flight recorder (DESIGN.md §6): a traced
// runner sweep must emit byte-identical per-task trace files and run reports
// at every runner thread count and every relay fan-out shard count K. Also
// schema-checks the emitted file as Chrome trace-event JSON.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/lag_benchmark.h"
#include "runner/experiment_runner.h"

namespace vc {
namespace {

constexpr std::size_t kTasks = 2;
constexpr std::size_t kTraceCapacity = 4096;

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct TracedRun {
  std::string aggregate_json;
  std::vector<std::string> trace_files;  // one per task, bytes
};

// A short two-participant lag run per task, flight-recorded end to end
// (event loop, links/shapers, relays, codecs, RTT probers).
TracedRun run_traced(std::size_t threads, int fan_out_shards, const std::string& tag) {
  const std::string dir = testing::TempDir() + "vc_trace_" + tag;
  runner::ExperimentRunner::Config rc;
  rc.threads = threads;
  rc.base_seed = 7;
  rc.label = "trace-determinism";
  rc.trace_dir = dir;
  rc.trace_capacity = kTraceCapacity;
  const auto report =
      runner::ExperimentRunner{rc}.run(kTasks, [fan_out_shards](runner::SessionContext& ctx) {
        core::LagBenchmarkConfig cfg;
        cfg.platform = platform::PlatformId::kZoom;
        cfg.host_site = "US-East";
        cfg.participant_sites = {"US-West", "US-Central"};
        cfg.sessions = 1;
        cfg.session_duration = seconds(24);
        cfg.seed = ctx.seed;
        cfg.fan_out_shards = fan_out_shards;
        cfg.metrics = &ctx.metrics;
        cfg.tracer = ctx.tracer;
        const auto r = core::run_lag_benchmark(cfg);
        ctx.sample("mean_distinct_endpoints", r.mean_distinct_endpoints);
      });
  EXPECT_TRUE(report.failures.empty());
  EXPECT_TRUE(report.trace.enabled);
  EXPECT_GT(report.trace.records, 0u);
  EXPECT_EQ(report.trace.write_failures, 0u);
  TracedRun out;
  out.aggregate_json = report.aggregate_json();
  for (std::size_t i = 0; i < kTasks; ++i) {
    out.trace_files.push_back(slurp(dir + "/" + std::to_string(i) + ".trace.json"));
    EXPECT_FALSE(out.trace_files.back().empty()) << "missing trace file for task " << i;
  }
  return out;
}

TEST(TraceDeterminism, TraceFilesAndReportsIdenticalAcrossThreadsAndShards) {
  const TracedRun base = run_traced(1, 0, "t1k0");
  ASSERT_EQ(base.trace_files.size(), kTasks);

  const struct {
    std::size_t threads;
    int shards;
    const char* tag;
  } combos[] = {{8, 0, "t8k0"}, {1, 8, "t1k8"}, {8, 8, "t8k8"}};
  for (const auto& combo : combos) {
    const TracedRun other = run_traced(combo.threads, combo.shards, combo.tag);
    EXPECT_EQ(other.aggregate_json, base.aggregate_json)
        << "report drifted at threads=" << combo.threads << " K=" << combo.shards;
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(other.trace_files[i], base.trace_files[i])
          << "trace file " << i << " drifted at threads=" << combo.threads
          << " K=" << combo.shards;
    }
  }

  // The report's trace summary block participates in aggregate_json (and thus
  // in the identity assertions above); spot-check it is actually there.
  EXPECT_NE(base.aggregate_json.find("\"trace\":{\"records\":"), std::string::npos);
}

TEST(TraceDeterminism, EmittedTraceIsValidChromeTraceEventJson) {
  const TracedRun run = run_traced(1, 0, "schema");
  const json::Value root = json::parse(run.trace_files.front());

  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array_items.empty());
  for (const auto& ev : events->array_items) {
    ASSERT_TRUE(ev.is_object());
    const json::Value* name = ev.find("name");
    const json::Value* ph = ev.find("ph");
    const json::Value* ts = ev.find("ts");
    ASSERT_NE(name, nullptr);
    ASSERT_TRUE(name->is_string());
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->is_number());
    if (ph->string_value == "X") {
      const json::Value* dur = ev.find("dur");
      ASSERT_NE(dur, nullptr);
      ASSERT_TRUE(dur->is_number());
      EXPECT_GE(dur->number_value, 0.0);
    } else {
      ASSERT_TRUE(ph->string_value == "i" || ph->string_value == "C")
          << "unexpected phase " << ph->string_value;
    }
  }
  const json::Value* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_NE(other->find("dropped_records"), nullptr);

  // The full-stack instrumentation actually fired: the flight recorder's
  // latest window should contain records from the core instrument families.
  std::string all_names;
  for (const auto& ev : events->array_items) {
    all_names += ev.at("name").string_value;
    all_names += '\n';
  }
  EXPECT_NE(all_names.find("loop.exec"), std::string::npos);
  EXPECT_NE(all_names.find("net.link."), std::string::npos);
}

}  // namespace
}  // namespace vc
