// Determinism contract of the sharded relay fan-out: the same seeded
// session must produce byte-identical results at every shard count — K=0
// (plain serial loop), K=1/2/8 (staged path, inline), and K on a real
// multi-worker pool. Verified at two levels:
//   * a canonical relay session serialized packet-by-packet (every
//     receiver's (origin, seq, l7_len, arrival_us) sequence plus Stats and
//     the standard metrics registry);
//   * a full platform session driven through runner::ExperimentRunner,
//     comparing RunReport::aggregate_json() strings across K.
// A golden-file test pins the canonical session's output across commits;
// regenerate with VC_UPDATE_GOLDEN=1 after an intentional semantic change.
#include <gtest/gtest.h>

#include <cstdint>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/shard_pool.h"
#include "core/mobile_benchmark.h"
#include "platform/relay.h"
#include "runner/experiment_runner.h"

namespace vc {
namespace {

struct ReceivedPacket {
  std::uint32_t origin = 0;
  std::uint64_t seq = 0;
  std::int64_t l7_len = 0;
  std::int64_t arrival_us = 0;
};

/// Runs the canonical relay session at the given sharding setting and
/// serializes everything the determinism contract covers. Only integer
/// fields are emitted, so the string doubles as a portable golden file when
/// jitter_mean_ms == 0 (nonzero jitter goes through libm exp/log, whose
/// last-ULP behavior is platform-specific; same-machine cross-K comparisons
/// may use it freely).
std::string run_canonical_session(ShardPool* pool, int shards, double jitter_mean_ms) {
  constexpr int kParticipants = 23;  // deliberately not divisible by 2 or 8
  constexpr int kFrames = 12;

  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(3)), 1};
  platform::RelayServer relay{net, "relay", GeoPoint{38.9, -77.4}, 8801,
                              platform::RelayServer::ForwardingDelay{millis(2), jitter_mean_ms}};
  platform::RelayServer peer{net, "peer", GeoPoint{50.0, 8.0}, 8801,
                             platform::RelayServer::ForwardingDelay{millis(2), jitter_mean_ms}};
  MetricsRegistry metrics;
  relay.attach_metrics(metrics, "relay");
  relay.set_fan_out_sharding(pool, shards);

  std::vector<std::vector<ReceivedPacket>> rx(kParticipants);
  std::vector<net::Host*> hosts;
  for (int i = 0; i < kParticipants; ++i) {
    net::Host& h = net.add_host("c" + std::to_string(i), GeoPoint{40.0 - i, -75.0});
    auto& sock = h.udp_bind(100);
    auto* sink = &rx[static_cast<std::size_t>(i)];
    sock.on_receive([sink, &net](const net::Packet& p) {
      sink->push_back({p.origin_id, p.seq, p.l7_len, net.now().micros()});
    });
    relay.add_participant(1, static_cast<platform::ParticipantId>(i + 1), {h.ip(), 100});
    hosts.push_back(&h);
  }

  // A Meet-style peer leg so peer_forwarded is exercised too.
  net::Host& remote = net.add_host("remote", GeoPoint{50.0, 8.0});
  auto& remote_sock = remote.udp_bind(100);
  std::vector<ReceivedPacket> remote_rx;
  remote_sock.on_receive([&remote_rx, &net](const net::Packet& p) {
    remote_rx.push_back({p.origin_id, p.seq, p.l7_len, net.now().micros()});
  });
  peer.add_participant(1, 99, {remote.ip(), 100});
  relay.link_peer(1, &peer);
  peer.link_peer(1, &relay);

  // Mixed subscription scales: receiver i subscribes to origin o at one of
  // {unset-record (drop), 0.0, 0.05, 0.25, 1.0}. Even receivers keep the
  // default forward-everything behavior (subscriptions never set).
  for (int i = 1; i < kParticipants; i += 2) {
    std::vector<platform::StreamSubscription> subs;
    for (int o = 0; o < kParticipants; ++o) {
      if (o == i) continue;
      switch ((i + o) % 5) {
        case 0: break;  // absent from the map: not subscribed
        case 1: subs.push_back({static_cast<platform::ParticipantId>(o + 1), 0.0}); break;
        case 2: subs.push_back({static_cast<platform::ParticipantId>(o + 1), 0.05}); break;
        case 3: subs.push_back({static_cast<platform::ParticipantId>(o + 1), 0.25}); break;
        default: subs.push_back({static_cast<platform::ParticipantId>(o + 1), 1.0}); break;
      }
    }
    relay.set_subscriptions(1, static_cast<platform::ParticipantId>(i + 1), std::move(subs));
  }

  // Staggered media: every sender emits one video packet per frame (sizes
  // include tiny ones whose thinned copies hit the 24-byte clamp) and every
  // third sender adds audio; one participant sends a control report.
  for (int f = 0; f < kFrames; ++f) {
    for (int i = 0; i < kParticipants; ++i) {
      const SimTime at{f * 33'000 + i * 777};
      net::Host* h = hosts[static_cast<std::size_t>(i)];
      const std::uint32_t origin = static_cast<std::uint32_t>(i + 1);
      const std::uint64_t seq = static_cast<std::uint64_t>(f);
      const std::int64_t l7 = (f + i) % 7 == 0 ? 30 : 200 + ((f * 31 + i * 17) % 1200);
      net.loop().schedule_at(at, [h, &relay, origin, seq, l7] {
        net::Packet p;
        p.dst = relay.endpoint();
        p.l7_len = l7;
        p.kind = net::StreamKind::kVideo;
        p.origin_id = origin;
        p.seq = seq;
        h->udp_socket(100)->send(std::move(p));
      });
      if (i % 3 == 0) {
        net.loop().schedule_at(SimTime{at.micros() + 11}, [h, &relay, origin, seq] {
          net::Packet p;
          p.dst = relay.endpoint();
          p.l7_len = 120;
          p.kind = net::StreamKind::kAudio;
          p.origin_id = origin;
          p.seq = 1'000 + seq;
          h->udp_socket(100)->send(std::move(p));
        });
      }
    }
  }
  net.loop().schedule_at(SimTime{5'000}, [&hosts, &relay] {
    net::Packet p;
    p.dst = relay.endpoint();
    p.l7_len = 48;
    p.kind = net::StreamKind::kControl;
    p.origin_id = 2;  // report concerning participant 2's stream
    hosts[4]->udp_socket(100)->send(std::move(p));
  });
  net.loop().run();

  std::ostringstream out;
  const auto& st = relay.stats();
  out << "stats media_in=" << st.media_in << " media_forwarded=" << st.media_forwarded
      << " peer_forwarded=" << st.peer_forwarded << " control_forwarded=" << st.control_forwarded
      << " probes_answered=" << st.probes_answered << "\n";
  for (int i = 0; i < kParticipants; ++i) {
    out << "rx" << i << ":";
    for (const auto& p : rx[static_cast<std::size_t>(i)]) {
      out << " (" << p.origin << "," << p.seq << "," << p.l7_len << "," << p.arrival_us << ")";
    }
    out << "\n";
  }
  out << "peer_rx:";
  for (const auto& p : remote_rx) {
    out << " (" << p.origin << "," << p.seq << "," << p.l7_len << "," << p.arrival_us << ")";
  }
  out << "\n";
  for (const auto& [name, c] : metrics.counters()) out << "counter " << name << "=" << c.value() << "\n";
  for (const auto& [name, h] : metrics.histograms()) {
    // Integer-valued fields only; sum() is mean()*count(), so llround
    // absorbs the streaming-mean rounding before it hits the transcript.
    out << "hist " << name << " count=" << h.stats().count()
        << " sum=" << std::llround(h.stats().sum())
        << " min=" << static_cast<std::int64_t>(h.stats().min())
        << " max=" << static_cast<std::int64_t>(h.stats().max()) << "\n";
  }
  return out.str();
}

TEST(ShardDeterminism, StagedInlineMatchesSerialAtEveryK) {
  const std::string serial = run_canonical_session(nullptr, 0, 2.0);
  ASSERT_FALSE(serial.empty());
  for (int k : {1, 2, 8}) {
    EXPECT_EQ(run_canonical_session(nullptr, k, 2.0), serial) << "K=" << k;
  }
}

TEST(ShardDeterminism, RealPoolMatchesSerial) {
  ShardPool pool{3};
  const std::string serial = run_canonical_session(nullptr, 0, 2.0);
  for (int k : {2, 4, 8}) {
    EXPECT_EQ(run_canonical_session(&pool, k, 2.0), serial) << "K=" << k;
  }
}

TEST(ShardDeterminism, RepeatedRunsAreReproducible) {
  ShardPool pool{2};
  const std::string first = run_canonical_session(&pool, 4, 2.0);
  EXPECT_EQ(run_canonical_session(&pool, 4, 2.0), first);
}

// ------------------------------------------------------------- golden file

std::string golden_path() {
  return std::string{VC_DETERMINISM_GOLDEN_DIR} + "/canonical_session.txt";
}

TEST(ShardDeterminism, CanonicalSessionMatchesGoldenFile) {
  // Zero jitter keeps the transcript free of libm-derived values, so this
  // golden is portable across toolchains. Regenerate after an intentional
  // relay semantic change with:  VC_UPDATE_GOLDEN=1 ctest -R Golden
  ShardPool pool{2};
  const std::string serial = run_canonical_session(nullptr, 0, 0.0);
  EXPECT_EQ(run_canonical_session(&pool, 8, 0.0), serial);

  if (std::getenv("VC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{golden_path(), std::ios::binary};
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << serial;
    GTEST_SKIP() << "golden file regenerated";
  }
  std::ifstream in{golden_path(), std::ios::binary};
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path();
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(serial, buf.str())
      << "canonical session drifted from the golden transcript; if the change "
         "is intentional, regenerate with VC_UPDATE_GOLDEN=1";
}

// -------------------------------------------- full platform session via runner

std::string scale_report_json(int fan_out_shards) {
  core::ScaleBenchmarkConfig cfg;
  cfg.platform = platform::PlatformId::kZoom;
  cfg.n_total = 6;
  cfg.duration = seconds(12);
  cfg.fan_out_shards = fan_out_shards;
  runner::ExperimentRunner runner{{.threads = 2, .base_seed = 71, .label = "shard-determinism"}};
  const runner::RunReport report = runner.run(2, [cfg](runner::SessionContext& ctx) {
    const core::ScaleSessionResult r = core::run_scale_session(cfg, ctx.seed);
    ctx.sample("s10_rate_mbps", r.s10_rate_mbps);
    ctx.sample("j3_rate_mbps", r.j3_rate_mbps);
    for (double c : r.s10_cpu) ctx.sample("s10_cpu", c);
  });
  EXPECT_TRUE(report.failures.empty());
  return report.aggregate_json();
}

TEST(ShardDeterminism, PlatformSessionReportIdenticalAcrossK) {
  // End-to-end: PlatformConfig plumbing → BasePlatform pool → RelayAllocator
  // → relay, compared through the runner's deterministic aggregate report.
  const std::string serial = scale_report_json(0);
  ASSERT_FALSE(serial.empty());
  for (int k : {1, 2, 8}) {
    EXPECT_EQ(scale_report_json(k), serial) << "fan_out_shards=" << k;
  }
}

}  // namespace
}  // namespace vc
