// Regression for the event-loop slab-growth hazard under sharded fan-out.
//
// The event loop's slot slab grows in 1024-slot chunks, and growth may
// happen while the loop is mid-invocation (the PR 2 hazard). Sharding adds
// a cross-thread twist: the departure batches being scheduled during the
// merge were just written by ShardPool workers, so the merge's thousands of
// schedule_at calls must (a) survive multiple chunk growths inside a single
// on_packet invocation and (b) read worker-written batch state strictly
// after the pool's join handshake published it. A meeting large enough to
// force several chunk growths per ingest exercises both at once; run under
// TSan this is the data-race probe for the relay/pool boundary.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/shard_pool.h"
#include "platform/relay.h"

namespace vc {
namespace {

TEST(ShardSlabGrowth, MergeSchedulingGrowsSlabMidInvocationAcrossThreads) {
  // 1,500 receivers → one ingest schedules ~1,499 departure events during
  // the merge (each crossing into fresh slab chunks), then their sends
  // schedule another ~1,499 delivery events when the departures fire.
  constexpr int kParticipants = 1'500;

  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(2)), 1};
  platform::RelayServer relay{net, "relay", GeoPoint{38.9, -77.4}, 8801,
                              platform::RelayServer::ForwardingDelay{millis(2), 0.0}};
  ShardPool pool{3};
  relay.set_fan_out_sharding(&pool, 4);

  std::vector<int> received(kParticipants, 0);
  std::vector<net::Host*> hosts;
  hosts.reserve(kParticipants);
  for (int i = 0; i < kParticipants; ++i) {
    net::Host& h = net.add_host("c" + std::to_string(i), GeoPoint{40.0, -75.0});
    auto& sock = h.udp_bind(100);
    int* counter = &received[static_cast<std::size_t>(i)];
    sock.on_receive([counter](const net::Packet&) { ++(*counter); });
    relay.add_participant(1, static_cast<platform::ParticipantId>(i + 1), {h.ip(), 100});
    hosts.push_back(&h);
  }

  // Three ingests from different senders so the pool dispatches repeatedly
  // and slab reuse (free-list churn from the first wave) is in play too.
  for (int sender : {0, 700, 1'499}) {
    net::Packet p;
    p.dst = relay.endpoint();
    p.l7_len = 900;
    p.kind = net::StreamKind::kVideo;
    p.origin_id = static_cast<std::uint32_t>(sender + 1);
    p.seq = static_cast<std::uint64_t>(sender);
    hosts[static_cast<std::size_t>(sender)]->udp_socket(100)->send(std::move(p));
  }
  net.loop().run();

  for (int i = 0; i < kParticipants; ++i) {
    const int expected = (i == 0 || i == 700 || i == 1'499) ? 2 : 3;
    ASSERT_EQ(received[static_cast<std::size_t>(i)], expected) << "participant " << i;
  }
  EXPECT_EQ(relay.stats().media_in, 3);
  EXPECT_EQ(relay.stats().media_forwarded, 3 * (kParticipants - 1));
  EXPECT_EQ(relay.stats().peer_forwarded, 0);
}

}  // namespace
}  // namespace vc
