// Acceptance test for the fairness benchmark's determinism contract: a
// competing-flow contention scene with client ABR *active* — mixed platforms,
// mixed adapters, one shared bottleneck shaper — must emit byte-identical
// runner aggregate reports at every thread count and every relay fan-out
// shard count K. The adapters are RNG-free state machines and the feedback
// payloads ride the existing control-report packets, so an adapting run sits
// inside the same contract as a plain one.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/fairness_benchmark.h"
#include "runner/experiment_runner.h"

namespace vc {
namespace {

constexpr std::size_t kTasks = 2;

std::string run_fairness(std::size_t threads, int fan_out_shards) {
  runner::ExperimentRunner::Config rc;
  rc.threads = threads;
  rc.base_seed = 929;
  rc.label = "fairness-determinism";
  const auto report =
      runner::ExperimentRunner{rc}.run(kTasks, [fan_out_shards](runner::SessionContext& ctx) {
        core::FairnessBenchmarkConfig cfg;
        cfg.flows = core::default_fairness_flows(3);  // one of each adapter
        cfg.bottleneck = DataRate::kbps(1800);
        cfg.media_duration = seconds(8);
        cfg.fan_out_shards = fan_out_shards;
        const auto r = core::run_fairness_session(cfg, ctx.seed);
        ASSERT_EQ(r.flows.size(), 3u);
        ctx.sample("jain", r.jain_index);
        ctx.sample("utilization", r.utilization);
        ctx.sample("queue_ms", r.queue_delay_mean_ms);
        ctx.sample("drop", r.drop_fraction);
        for (std::size_t i = 0; i < r.flows.size(); ++i) {
          const std::string fk = "flow" + std::to_string(i);
          ctx.sample(fk + ".kbps", r.flows[i].achieved_kbps);
          ctx.sample(fk + ".decisions", static_cast<double>(r.flows[i].abr_decisions));
          ctx.sample(fk + ".switches", static_cast<double>(r.flows[i].abr_tier_switches));
        }
      });
  EXPECT_TRUE(report.failures.empty());
  return report.aggregate_json();
}

TEST(FairnessDeterminism, AdaptingContentionSceneIdenticalAcrossThreadsAndShards) {
  const std::string base = run_fairness(1, 0);
  // ABR actually engaged: the adapters made decisions in every task.
  const std::size_t key = base.find("flow0.decisions");
  ASSERT_NE(key, std::string::npos);
  EXPECT_EQ(base.substr(key, 40).find("\"mean\":0,"), std::string::npos)
      << "adapters never received feedback — the contention scene is miswired";

  const struct {
    std::size_t threads;
    int shards;
  } combos[] = {{8, 0}, {1, 8}, {8, 8}};
  for (const auto& combo : combos) {
    EXPECT_EQ(run_fairness(combo.threads, combo.shards), base)
        << "report drifted at threads=" << combo.threads << " K=" << combo.shards;
  }
}

}  // namespace
}  // namespace vc
