// Acceptance test for the relay-federation fleet's determinism contract:
// the city-scale workload — balancer placement, overflow sharding, trunked
// inter-relay media, and the crash-failover sweep — must emit byte-identical
// runner aggregate reports at every runner thread count × relay fan-out
// shard count K × fleet size. The balancer draws no RNG and trunks live
// entirely on the event loop, so the whole federation path sits inside the
// same contract as a single-relay run; a replica run of the identical config
// must also match byte for byte (placement is a pure function of seed +
// config, never of scheduling).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/city_benchmark.h"
#include "runner/experiment_runner.h"

namespace vc {
namespace {

constexpr std::size_t kTasks = 2;

core::CityScaleConfig small_city(std::uint64_t seed, int fleet_size, int fan_out_shards,
                                 bool crash) {
  core::CityScaleConfig cfg;
  cfg.platform = platform::PlatformId::kZoom;
  cfg.fleet_size = fleet_size;
  cfg.policy = fleet::PlacementPolicy::kLeastLoaded;
  cfg.overflow_shard_size = 2;  // 4 members per meeting force trunked shards
  cfg.meetings = 3;
  cfg.participants_per_meeting = 3;
  cfg.meeting_stagger = millis(300);
  cfg.media_duration = seconds(6);
  cfg.inject_crash = crash;
  cfg.outage_start = seconds(2);
  cfg.outage_duration = seconds(1);
  cfg.seed = seed;
  cfg.fan_out_shards = fan_out_shards;
  return cfg;
}

std::string run_city(std::size_t threads, int fan_out_shards, int fleet_size, bool crash) {
  runner::ExperimentRunner::Config rc;
  rc.threads = threads;
  rc.base_seed = 31;
  rc.label = "fleet-determinism";
  rc.rate_counters = {"city.sim_events", "city.sim_bytes"};
  const auto report = runner::ExperimentRunner{rc}.run(
      kTasks, [fan_out_shards, fleet_size, crash](runner::SessionContext& ctx) {
        core::CityScaleConfig cfg = small_city(ctx.seed, fleet_size, fan_out_shards, crash);
        cfg.metrics = &ctx.metrics;
        const auto r = core::run_city_scale_benchmark(cfg);
        EXPECT_EQ(r.meetings_completed + r.join_timeouts, 3);
        if (fleet_size > 1) {
          // The overflow split actually happened and media crossed trunks.
          EXPECT_GT(r.trunk_delivered_packets, 0);
        }
        ctx.sample("completed", static_cast<double>(r.meetings_completed));
        ctx.sample("trunk_delivered", static_cast<double>(r.trunk_delivered_packets));
        ctx.sample("relays", static_cast<double>(r.relays_created));
        for (double lag : r.lag_ms) ctx.sample("lag_ms", lag);
      });
  EXPECT_TRUE(report.failures.empty());
  return report.aggregate_json();
}

TEST(FleetDeterminism, IdenticalAcrossThreadsShardsAndFleetSizes) {
  for (const int fleet_size : {1, 2, 4}) {
    SCOPED_TRACE("fleet_size=" + std::to_string(fleet_size));
    const std::string base = run_city(1, 0, fleet_size, false);
    EXPECT_NE(base.find("fleet.relay0.participants"), std::string::npos)
        << "fleet gauges missing from the aggregate";
    const struct {
      std::size_t threads;
      int shards;
    } combos[] = {{8, 0}, {1, 8}, {8, 8}};
    for (const auto& combo : combos) {
      EXPECT_EQ(run_city(combo.threads, combo.shards, fleet_size, false), base)
          << "report drifted at threads=" << combo.threads << " K=" << combo.shards;
    }
  }
}

TEST(FleetDeterminism, CrashFailoverSceneIdenticalAcrossThreadsAndShards) {
  const std::string base = run_city(1, 0, /*fleet_size=*/2, /*crash=*/true);
  // The outage bit and the fleet's failover machinery ran.
  EXPECT_NE(base.find("client.reconnects"), std::string::npos);
  const struct {
    std::size_t threads;
    int shards;
  } combos[] = {{8, 0}, {1, 8}, {8, 8}};
  for (const auto& combo : combos) {
    EXPECT_EQ(run_city(combo.threads, combo.shards, 2, true), base)
        << "crash-failover report drifted at threads=" << combo.threads
        << " K=" << combo.shards;
  }
}

TEST(FleetDeterminism, PlacementReplicaRunsAreByteIdentical) {
  // Same seed + config, fresh process state: the balancer's decisions must
  // be a pure function of its inputs, including across the failover sweep.
  EXPECT_EQ(run_city(8, 0, 4, false), run_city(8, 0, 4, false));
  EXPECT_EQ(run_city(8, 0, 2, true), run_city(8, 0, 2, true));
}

}  // namespace
}  // namespace vc
