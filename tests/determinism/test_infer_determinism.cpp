// Determinism contract for the header-free QoE inference pipeline: a faulted
// inference session — scripted receiver-link outage, shaped last mile, live
// capture, QoeInferencer, truth join — must produce byte-identical runner
// aggregate reports at every thread count and relay fan-out shard count K.
// The estimator itself is pure, so any drift here indicts the session world
// (capture order, fault arming, shaper state), not the analyzer.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/qoe_infer_benchmark.h"
#include "runner/experiment_runner.h"

namespace vc {
namespace {

constexpr std::size_t kTasks = 3;

/// FNV-1a folded to 32 bits so the digest survives the samples' double
/// representation exactly (doubles hold 32-bit integers losslessly).
double report_digest(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<double>((h >> 32) ^ (h & 0xFFFFFFFFULL));
}

std::string run_sweep(std::size_t threads, int fan_out_shards) {
  runner::ExperimentRunner::Config rc;
  rc.threads = threads;
  rc.base_seed = 47;
  rc.label = "infer-determinism";
  const auto report =
      runner::ExperimentRunner{rc}.run(kTasks, [fan_out_shards](runner::SessionContext& ctx) {
        core::QoeInferBenchmarkConfig cfg;
        cfg.platform = vc::platform::PlatformId::kZoom;
        cfg.media_duration = seconds(14);
        cfg.outages = {{seconds(5), seconds(2)}};  // FaultPlan active
        cfg.shaper = core::InferShaperProfile::kDsl;
        cfg.fan_out_shards = fan_out_shards;
        cfg.metrics = &ctx.metrics;
        const auto r = core::run_qoe_inference_session(cfg, ctx.seed);
        // The scripted outage must actually register end to end.
        EXPECT_EQ(r.inferred_freezes, 1) << "task " << ctx.task_index;
        EXPECT_DOUBLE_EQ(r.freeze_recall, 1.0);
        ctx.sample("inferred_fps", r.inferred_fps);
        ctx.sample("truth_fps", r.truth_fps);
        ctx.sample("tier_accuracy", r.tier_accuracy);
        ctx.sample("fps_abs_err", r.fps_abs_err);
        // The full JSON text participates in the identity check, not just
        // the scalars — a formatting drift is a determinism bug too.
        ctx.sample("report_digest", report_digest(r.report_json));
      });
  EXPECT_TRUE(report.failures.empty());
  return report.aggregate_json();
}

TEST(InferDeterminism, IdenticalAcrossThreadsAndShards) {
  const std::string base = run_sweep(1, 0);
  EXPECT_NE(base.find("report_digest"), std::string::npos);
  const struct {
    std::size_t threads;
    int shards;
  } combos[] = {{8, 0}, {1, 8}, {8, 8}};
  for (const auto& combo : combos) {
    EXPECT_EQ(run_sweep(combo.threads, combo.shards), base)
        << "report drifted at threads=" << combo.threads << " K=" << combo.shards;
  }
}

}  // namespace
}  // namespace vc
