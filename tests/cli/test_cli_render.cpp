// vc::cli renderer tests: report rendering must accept every report vintage
// (PR 4 samples-only through pre-timeline PR 8 shapes) and exit 0, reserving
// exit 2 for genuinely unusable input; the profile renderer's self-time
// split and busy-chain detection are checked against hand-built traces; and
// parse_timeline must decode delta-encoded counters back to the exact
// cumulative values the registry held.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "cli/report_render.h"
#include "cli/timeline_render.h"
#include "cli/trace_profile.h"
#include "common/metrics.h"
#include "common/metrics_timeline.h"
#include "common/time.h"
#include "health/health_monitor.h"

namespace vc::cli {
namespace {

// ---- report rendering ----------------------------------------------------

constexpr const char* kPr4Report = R"({
  "label": "fig4", "base_seed": 7, "sessions": 3, "failures": [],
  "samples": {"lag_ms": {"count": 3, "mean": 120.5, "stddev": 4.0,
                         "min": 115.0, "max": 126.0, "sum": 361.5}}
})";

constexpr const char* kPr6Report = R"({
  "label": "fairness", "base_seed": 9, "sessions": 2, "failures": [],
  "samples": {"jain": {"count": 2, "mean": 0.97, "stddev": 0.0,
                       "min": 0.97, "max": 0.97, "sum": 1.94}},
  "counters": {"abr.decisions": 42},
  "gauges": {"queue.depth": {"count": 2, "mean": 1.5, "stddev": 0.5,
                             "min": 1.0, "max": 2.0, "sum": 3.0}},
  "histograms": {}
})";

constexpr const char* kPr8TracedReport = R"({
  "aggregate": {
    "label": "traced", "base_seed": 3, "sessions": 1, "failures": [],
    "samples": {},
    "counters": {"relay.media_forwarded": 100},
    "trace": {"records": 500, "dropped": 0, "spans": 300, "instants": 100,
              "counter_samples": 100, "write_failures": 0}
  },
  "threads": 8, "wall_seconds": 1.5
})";

TEST(ReportRender, OldFormatReportsRenderAndExitZero) {
  for (const char* report : {kPr4Report, kPr6Report, kPr8TracedReport}) {
    const RenderResult r = render_report("r.json", report, ReportOptions{});
    EXPECT_EQ(r.exit_code, 0) << report;
    EXPECT_TRUE(r.err.empty()) << r.err;
    EXPECT_NE(r.out.find("report r.json"), std::string::npos);
  }
  // Section contents actually made it out.
  const RenderResult pr6 = render_report("r.json", kPr6Report, ReportOptions{});
  EXPECT_NE(pr6.out.find("jain"), std::string::npos);
  EXPECT_NE(pr6.out.find("abr.decisions"), std::string::npos);
  EXPECT_NE(pr6.out.find("queue.depth"), std::string::npos);
}

TEST(ReportRender, MinimalReportMissingEverySectionStillExitsZero) {
  const RenderResult r = render_report("r.json", R"({"label": "bare"})", ReportOptions{});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("label=bare"), std::string::npos);
}

TEST(ReportRender, UnusableInputExitsTwo) {
  EXPECT_EQ(render_report("r.json", "{not json", ReportOptions{}).exit_code, 2);
  EXPECT_EQ(render_report("r.json", "[1,2,3]", ReportOptions{}).exit_code, 2);
}

TEST(ReportRender, CdfOnSamplesFreeReportIsFriendlyNotFatal) {
  ReportOptions opts;
  opts.has_cdf = true;
  opts.cdf_base = "lag_ms";
  const RenderResult r = render_report("r.json", R"({"label": "bare", "counters": {}})", opts);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("no samples section"), std::string::npos);
}

TEST(ReportRender, TraceDropWarningOnlyWhenRecordsWereLost) {
  const RenderResult clean = render_report("r.json", kPr8TracedReport, ReportOptions{});
  EXPECT_EQ(clean.out.find("WARNING"), std::string::npos);
  const std::string wrapped = R"({
    "label": "traced", "base_seed": 3, "sessions": 1,
    "trace": {"records": 500, "dropped": 123, "spans": 300, "instants": 100,
              "counter_samples": 100, "write_failures": 0}
  })";
  const RenderResult r = render_report("r.json", wrapped, ReportOptions{});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("WARNING: trace ring wrapped"), std::string::npos);
  EXPECT_NE(r.out.find("123"), std::string::npos);
}

TEST(ReportRender, TimelineSummaryAndGaugeHwmSectionsRender) {
  const std::string report = R"({
    "label": "obs", "base_seed": 1, "sessions": 2,
    "gauge_hwm": {"net.queue_depth": {"count": 2, "mean": 12.0, "stddev": 0.0,
                                      "min": 12.0, "max": 12.0, "sum": 24.0}},
    "timeline": {"samples": 40, "columns": 10, "dropped": 0, "write_failures": 0,
                 "health_rules": 2, "health_events": 6, "health_breaches": 3}
  })";
  const RenderResult r = render_report("r.json", report, ReportOptions{});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("timeline: 40 samples over 10 columns, 0 dropped"), std::string::npos);
  EXPECT_NE(r.out.find("health: 2 rule(s), 6 event(s), 3 breach(es)"), std::string::npos);
  EXPECT_NE(r.out.find("gauge high-water marks"), std::string::npos);
  EXPECT_NE(r.out.find("net.queue_depth"), std::string::npos);

  ReportOptions list;
  list.list = true;
  const RenderResult listed = render_report("r.json", report, list);
  EXPECT_NE(listed.out.find("gauge_hwm net.queue_depth"), std::string::npos);
}

// ---- trace profiling -----------------------------------------------------

std::string trace_with(const std::string& events, const std::string& other = "") {
  return "{\"traceEvents\":[" + events + "]" +
         (other.empty() ? "" : ",\"otherData\":{" + other + "}") + "}";
}

TEST(TraceProfile, SelfTimeExcludesNestedChildWindows) {
  // parent [0, 100 ms] contains child [20, 60 ms]: parent self = 60 ms.
  const std::string trace = trace_with(
      R"({"name":"parent","ph":"X","ts":0,"dur":100000},)"
      R"({"name":"child","ph":"X","ts":20000,"dur":40000})");
  const RenderResult r = render_profile({{"t.json", trace}}, ProfileOptions{});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("profile over 1 trace(s)"), std::string::npos);
  EXPECT_NE(r.out.find("parent"), std::string::npos);
  EXPECT_NE(r.out.find("100.000"), std::string::npos);  // parent total
  EXPECT_NE(r.out.find("60.000"), std::string::npos);   // parent self
  EXPECT_NE(r.out.find("40.000"), std::string::npos);   // child total == self
  // Ranked by self time: parent (60 ms) above child (40 ms).
  EXPECT_LT(r.out.find("parent"), r.out.find("child"));
}

TEST(TraceProfile, OverlappingSpansNeverGoNegative) {
  // b overlaps a's tail beyond a's end: only the contained part is credited.
  const std::string trace = trace_with(
      R"({"name":"a","ph":"X","ts":0,"dur":50000},)"
      R"({"name":"b","ph":"X","ts":40000,"dur":50000})");
  const RenderResult r = render_profile({{"t.json", trace}}, ProfileOptions{});
  ASSERT_EQ(r.exit_code, 0);
  // a self = 50 - min(90,50)+40 = 40 ms; b self = full 50 ms.
  EXPECT_NE(r.out.find("40.000"), std::string::npos);
  EXPECT_NE(r.out.find("50.000"), std::string::npos);
}

TEST(TraceProfile, BusyChainsSpanUntilTheLoopDrains) {
  // Two bursts: depths 3,2,0 (3 records) and 1,0 (2 records); the lone 0 at
  // ts 50 never opens a chain.
  const std::string trace = trace_with(
      R"({"name":"loop.exec","ph":"X","ts":0,"dur":0,"args":{"value":3}},)"
      R"({"name":"loop.exec","ph":"X","ts":10,"dur":0,"args":{"value":2}},)"
      R"({"name":"loop.exec","ph":"X","ts":20,"dur":0,"args":{"value":0}},)"
      R"({"name":"loop.exec","ph":"X","ts":50,"dur":0,"args":{"value":0}},)"
      R"({"name":"loop.exec","ph":"X","ts":80,"dur":0,"args":{"value":1}},)"
      R"({"name":"loop.exec","ph":"X","ts":90,"dur":0,"args":{"value":0}})");
  const RenderResult r = render_profile({{"t.json", trace}}, ProfileOptions{});
  ASSERT_EQ(r.exit_code, 0);
  ASSERT_NE(r.out.find("busiest loop.exec chains"), std::string::npos);
  const std::string chains = r.out.substr(r.out.find("busiest"));
  EXPECT_NE(chains.find("3"), std::string::npos);  // longest chain: 3 events
  EXPECT_NE(chains.find("0.020"), std::string::npos);  // its extent in ms
}

TEST(TraceProfile, RingWrapSurfacesAsWarning) {
  const std::string trace = trace_with(
      R"({"name":"a","ph":"X","ts":0,"dur":10})", R"("dropped_records": 77)");
  const RenderResult r = render_profile({{"t.json", trace}}, ProfileOptions{});
  ASSERT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("WARNING: trace ring wrapped"), std::string::npos);
  EXPECT_NE(r.out.find("77"), std::string::npos);
  // The warning leads the output so it cannot be missed below a long table.
  EXPECT_LT(r.out.find("WARNING"), r.out.find("profile over"));
}

TEST(TraceProfile, NoParsableInputExitsTwo) {
  EXPECT_EQ(render_profile({}, ProfileOptions{}).exit_code, 2);
  EXPECT_EQ(render_profile({{"bad.json", "{nope"}}, ProfileOptions{}).exit_code, 2);
  // One good file among bad ones still renders.
  const RenderResult r = render_profile(
      {{"bad.json", "{nope"}, {"good.json", trace_with(R"({"name":"a","ph":"X","ts":0,"dur":10})")}},
      ProfileOptions{});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_FALSE(r.err.empty());  // the bad file is still reported
}

// ---- timeline parsing / rendering ----------------------------------------

TEST(TimelineRender, ParseDecodesDeltasBackToRegistryTruth) {
  MetricsRegistry reg;
  auto& c = reg.counter("work");
  auto& g = reg.gauge("depth");
  MetricsTimeline::Config tc;
  tc.interval = millis(500);
  tc.capacity = 4;  // force a wrap so decode crosses a folded base
  MetricsTimeline tl{tc};
  tl.set_enabled(true);
  tl.bind(reg);
  std::vector<double> truth;
  for (int i = 0; i < 9; ++i) {
    c.add(2 * i + 1);
    g.set(static_cast<double>(i));
    truth.push_back(static_cast<double>(c.value()));
    tl.sample_now(SimTime{i * 500'000});
  }
  tl.finalize();

  const TimelineDoc doc = parse_timeline("{\"timeline\":" + tl.to_json() + "}\n");
  EXPECT_EQ(doc.samples, 4u);
  EXPECT_EQ(doc.dropped, 5u);
  EXPECT_EQ(doc.interval_us, 500'000);
  ASSERT_EQ(doc.ts_us.size(), 4u);
  EXPECT_EQ(doc.ts_us.front(), 5 * 500'000);
  ASSERT_EQ(doc.series.size(), 2u);  // counters sorted before gauges
  EXPECT_EQ(doc.series[0].name, "work");
  const std::vector<double> window{truth.begin() + 5, truth.end()};
  EXPECT_EQ(doc.series[0].values, window);
  EXPECT_EQ(doc.series[1].name, "depth");
  EXPECT_EQ(doc.series[1].values, (std::vector<double>{5, 6, 7, 8}));
}

TEST(TimelineRender, HealthSectionAndSparklinesRender) {
  MetricsRegistry reg;
  auto& g = reg.gauge("depth");
  MetricsTimeline::Config tc;
  tc.interval = seconds(1);
  tc.capacity = 32;
  MetricsTimeline tl{tc};
  tl.set_enabled(true);
  tl.bind(reg);
  health::HealthMonitor monitor;
  health::SloRule rule;
  rule.rule = "depth-bounded";
  rule.metric = "depth";
  rule.op = health::SloRule::Op::kLe;
  rule.threshold = 5.0;
  monitor.add_rule(rule);
  monitor.bind(&reg, nullptr);
  tl.set_observer(&monitor);
  const double values[] = {1.0, 8.0, 2.0};
  for (int i = 0; i < 3; ++i) {
    g.set(values[i]);
    tl.sample_now(SimTime{i * 1'000'000});
  }
  tl.finalize();
  const std::string file =
      "{\"timeline\":" + tl.to_json() + ",\"health\":" + monitor.to_json() + "}\n";

  TimelineOptions overview;
  const RenderResult table = render_timeline("0.timeline.json", file, overview);
  ASSERT_EQ(table.exit_code, 0) << table.err;
  EXPECT_NE(table.out.find("3 sample(s)"), std::string::npos);
  EXPECT_NE(table.out.find("depth"), std::string::npos);
  EXPECT_NE(table.out.find("SLO events"), std::string::npos);
  EXPECT_NE(table.out.find("BREACH"), std::string::npos);
  EXPECT_NE(table.out.find("recover"), std::string::npos);
  EXPECT_NE(table.out.find("depth-bounded: 1 breach(es)"), std::string::npos);

  TimelineOptions spark;
  spark.metric = "depth";
  const RenderResult sparks = render_timeline("0.timeline.json", file, spark);
  ASSERT_EQ(sparks.exit_code, 0);
  EXPECT_NE(sparks.out.find("depth  [1.000 .. 8.000]"), std::string::npos);
  EXPECT_NE(sparks.out.find("|"), std::string::npos);

  TimelineOptions json_opt;
  json_opt.json = true;
  json_opt.metric = "depth";
  const RenderResult json_out = render_timeline("0.timeline.json", file, json_opt);
  ASSERT_EQ(json_out.exit_code, 0);
  EXPECT_NE(json_out.out.find("\"name\":\"depth\""), std::string::npos);
  EXPECT_NE(json_out.out.find("\"values\":[1,8,2]"), std::string::npos);
}

TEST(TimelineRender, MalformedTimelineExitsTwo) {
  EXPECT_EQ(render_timeline("t", "{nope", TimelineOptions{}).exit_code, 2);
  EXPECT_EQ(render_timeline("t", R"({"no_timeline": true})", TimelineOptions{}).exit_code, 2);
  // ts_us length disagreeing with samples is unusable, not renderable.
  const std::string bad = R"({"interval_us":1000,"total_samples":3,"samples":3,
    "dropped":0,"ts_us":[0,1000],"counters":[],"gauges":[],"histograms":[]})";
  EXPECT_EQ(render_timeline("t", bad, TimelineOptions{}).exit_code, 2);
  EXPECT_THROW(parse_timeline(bad), std::runtime_error);
}

TEST(TimelineRender, UnmatchedMetricIsFriendly) {
  const std::string file = R"({"interval_us":1000,"total_samples":1,"samples":1,
    "dropped":0,"ts_us":[0],
    "counters":[{"name":"work","start":0,"base":0,"deltas":[3]}],
    "gauges":[],"histograms":[]})";
  TimelineOptions opts;
  opts.metric = "no.such.metric";
  const RenderResult r = render_timeline("t", file, opts);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("no series matches"), std::string::npos);
}

}  // namespace
}  // namespace vc::cli
