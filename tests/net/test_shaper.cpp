#include <gtest/gtest.h>

#include <vector>

#include "net/event_loop.h"
#include "net/shaper.h"

namespace vc::net {
namespace {

Packet make_packet(std::int64_t l7) {
  Packet p;
  p.l7_len = l7;
  return p;
}

TEST(Shaper, PassesWithinBurstImmediately) {
  EventLoop loop;
  TokenBucketShaper shaper{loop, DataRate::kbps(100), /*burst=*/10'000};
  int delivered = 0;
  shaper.submit(make_packet(1000), [&](Packet) { ++delivered; });
  EXPECT_EQ(delivered, 1);  // burst tokens cover it synchronously
}

TEST(Shaper, UnlimitedNeverQueues) {
  EventLoop loop;
  TokenBucketShaper shaper{loop, DataRate::unlimited()};
  int delivered = 0;
  for (int i = 0; i < 100; ++i) shaper.submit(make_packet(1400), [&](Packet) { ++delivered; });
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(shaper.backlog_packets(), 0u);
}

TEST(Shaper, DrainsAtConfiguredRate) {
  EventLoop loop;
  // 80 Kbps = 10 KB/s. Tiny burst so rate dominates.
  TokenBucketShaper shaper{loop, DataRate::kbps(80), /*burst=*/1'000, /*queue_limit_packets=*/10'000};
  std::vector<SimTime> deliveries;
  // 10 packets x 1000 B wire (972 L7 + 28 header) = 10 KB ≈ 1 s to drain.
  for (int i = 0; i < 10; ++i) {
    shaper.submit(make_packet(972), [&](Packet) { deliveries.push_back(loop.now()); });
  }
  loop.run();
  ASSERT_EQ(deliveries.size(), 10u);
  // Total drain time ≈ (10 KB - 1 KB burst) / 10 KBps ≈ 0.9 s.
  EXPECT_NEAR(deliveries.back().seconds(), 0.9, 0.1);
  // Inter-delivery spacing approximates serialization time (100 ms).
  for (std::size_t i = 2; i < deliveries.size(); ++i) {
    const double gap = (deliveries[i] - deliveries[i - 1]).seconds();
    EXPECT_NEAR(gap, 0.1, 0.03);
  }
}

TEST(Shaper, DropsWhenQueueFull) {
  EventLoop loop;
  TokenBucketShaper shaper{loop, DataRate::kbps(8), /*burst=*/100, /*queue_limit_packets=*/5};
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    shaper.submit(make_packet(972), [&](Packet) { ++delivered; });
  }
  EXPECT_EQ(shaper.stats().dropped_packets, 95);
  EXPECT_EQ(shaper.backlog_packets(), 5u);
  loop.run_until(SimTime::zero() + seconds(10));
  EXPECT_EQ(delivered + shaper.stats().dropped_packets,
            100 - static_cast<int>(shaper.backlog_packets()));
}

TEST(Shaper, PacketLimitGivesNoSmallPacketAdvantage) {
  // tc pfifo's limit is in packets: at a saturated queue, a small audio
  // packet is dropped exactly like a large video fragment.
  EventLoop loop;
  TokenBucketShaper shaper{loop, DataRate::kbps(8), 100, 3};
  for (int i = 0; i < 3; ++i) shaper.submit(make_packet(972), [](Packet) {});
  ASSERT_EQ(shaper.backlog_packets(), 3u);
  int audio_delivered = 0;
  shaper.submit(make_packet(100), [&](Packet) { ++audio_delivered; });  // small packet
  EXPECT_EQ(audio_delivered, 0);
  EXPECT_EQ(shaper.stats().dropped_packets, 1);
}

TEST(Shaper, FifoOrder) {
  EventLoop loop;
  TokenBucketShaper shaper{loop, DataRate::kbps(80), 500, 10'000};
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    Packet p = make_packet(972);
    p.seq = static_cast<std::uint64_t>(i);
    shaper.submit(std::move(p), [&](Packet q) { order.push_back(static_cast<int>(q.seq)); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Shaper, RateChangeTakesEffect) {
  EventLoop loop;
  TokenBucketShaper shaper{loop, DataRate::kbps(8), 100, 10'000};
  std::vector<SimTime> deliveries;
  for (int i = 0; i < 4; ++i) {
    shaper.submit(make_packet(972), [&](Packet) { deliveries.push_back(loop.now()); });
  }
  // 1000 B wire at 1 KB/s = 1 s per packet. Raise the rate 10x right away.
  shaper.set_rate(DataRate::kbps(80));
  loop.run();
  ASSERT_EQ(deliveries.size(), 4u);
  EXPECT_LT(deliveries.back().seconds(), 4.2 * 0.1 + 0.1);
}

TEST(Shaper, TracksMaxQueueDelay) {
  EventLoop loop;
  TokenBucketShaper shaper{loop, DataRate::kbps(80), 100, 10'000};
  for (int i = 0; i < 5; ++i) shaper.submit(make_packet(972), [](Packet) {});
  loop.run();
  EXPECT_GT(shaper.stats().max_queue_delay.millis(), 100.0);
}

TEST(Shaper, StatsCountBytes) {
  EventLoop loop;
  TokenBucketShaper shaper{loop, DataRate::unlimited()};
  shaper.submit(make_packet(972), [](Packet) {});
  EXPECT_EQ(shaper.stats().forwarded_packets, 1);
  EXPECT_EQ(shaper.stats().forwarded_bytes, 1000);
}

TEST(Shaper, DownLinkDropsEverySubmission) {
  EventLoop loop;
  TokenBucketShaper shaper{loop, DataRate::unlimited()};
  shaper.set_down(true);
  EXPECT_TRUE(shaper.is_down());
  int delivered = 0;
  for (int i = 0; i < 8; ++i) shaper.submit(make_packet(972), [&](Packet) { ++delivered; });
  loop.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(shaper.stats().dropped_packets, 8);
  shaper.set_down(false);
  shaper.submit(make_packet(972), [&](Packet) { ++delivered; });
  EXPECT_EQ(delivered, 1);
}

TEST(Shaper, DownLinkFreezesTheBacklog) {
  EventLoop loop;
  // 80 Kbps = 10 KB/s: three 1000 B packets ≈ 0.3 s to drain normally.
  TokenBucketShaper shaper{loop, DataRate::kbps(80), /*burst=*/100, /*queue_limit_packets=*/10};
  std::vector<SimTime> deliveries;
  for (int i = 0; i < 3; ++i) {
    shaper.submit(make_packet(972), [&](Packet) { deliveries.push_back(loop.now()); });
  }
  loop.schedule_at(SimTime::zero() + millis(50), [&] { shaper.set_down(true); });
  loop.schedule_at(SimTime::zero() + seconds(2), [&] { shaper.set_down(false); });
  loop.run();
  ASSERT_EQ(deliveries.size(), 3u);
  // Nothing drained inside the outage window, and the queued packets earned
  // no tokens while the link was down (no burst at recovery: deliveries
  // resume paced from the outage's end).
  for (const SimTime at : deliveries) {
    EXPECT_TRUE(at < SimTime::zero() + millis(50) || at >= SimTime::zero() + seconds(2));
  }
  EXPECT_GE((deliveries.back() - deliveries.front()).millis(), 100.0);
}

TEST(Shaper, OutageForfeitsBankedTokens) {
  EventLoop loop;
  // 80 Kbps with a generous 24 KB burst allowance. The bucket is full at
  // construction and nothing spends it before the outage — so before the
  // fix, recovery inherited 24 KB of pre-outage credit and the first packet
  // sailed through instantly instead of waiting for fresh tokens.
  TokenBucketShaper shaper{loop, DataRate::kbps(80), /*burst=*/24'000,
                           /*queue_limit_packets=*/10};
  SimTime delivered_at;
  loop.schedule_at(SimTime::zero() + millis(10), [&] { shaper.set_down(true); });
  loop.schedule_at(SimTime::zero() + seconds(1), [&] { shaper.set_down(false); });
  loop.schedule_at(SimTime::zero() + seconds(1) + micros(1), [&] {
    shaper.submit(make_packet(972), [&](Packet) { delivered_at = loop.now(); });
  });
  loop.run();
  // 1000 wire bytes at 10 KB/s = 100 ms to earn; delivery must be paced from
  // the recovery point, not instant on stale credit.
  EXPECT_GE((delivered_at - (SimTime::zero() + seconds(1))).millis(), 90.0);
  EXPECT_EQ(shaper.stats().forwarded_packets, 1);
}

TEST(Shaper, SafeDestructionWithPendingDrain) {
  EventLoop loop;
  {
    TokenBucketShaper shaper{loop, DataRate::kbps(8), 100, 10'000};
    shaper.submit(make_packet(972), [](Packet) {});
    EXPECT_EQ(shaper.backlog_packets(), 1u);
  }  // destroyed with a scheduled drain event
  loop.run();  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace vc::net
