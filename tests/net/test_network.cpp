#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"

namespace vc::net {
namespace {

const GeoPoint kEast{38.9, -77.4};
const GeoPoint kWest{37.8, -122.4};

std::unique_ptr<Network> fixed_net(SimDuration delay = millis(10)) {
  return std::make_unique<Network>(std::make_unique<FixedLatencyModel>(delay), 1);
}

TEST(Network, AssignsDistinctIps) {
  auto net = fixed_net();
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  EXPECT_NE(a.ip(), b.ip());
  EXPECT_EQ(net->host(a.ip()), &a);
  EXPECT_EQ(net->host(IpAddr{0xDEADBEEF}), nullptr);
}

TEST(Network, DeliversWithModelDelay) {
  auto net = fixed_net(millis(25));
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  auto& tx = a.udp_bind(1000);
  auto& rx = b.udp_bind(2000);
  SimTime arrival{};
  rx.on_receive([&](const Packet&) { arrival = net->now(); });
  tx.send_to(Endpoint{b.ip(), 2000}, 100);
  net->loop().run();
  EXPECT_EQ(arrival, SimTime{25'000});
  EXPECT_EQ(net->stats().packets_delivered, 1);
}

TEST(Network, PacketCarriesSourceAndSizes) {
  auto net = fixed_net();
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  auto& tx = a.udp_bind(1234);
  auto& rx = b.udp_bind(5678);
  Packet got;
  rx.on_receive([&](const Packet& p) { got = p; });
  tx.send_to(Endpoint{b.ip(), 5678}, 500, StreamKind::kVideo, 42);
  net->loop().run();
  EXPECT_EQ(got.src, (Endpoint{a.ip(), 1234}));
  EXPECT_EQ(got.l7_len, 500);
  EXPECT_EQ(got.wire_len(), 528);  // + IP/UDP headers
  EXPECT_EQ(got.kind, StreamKind::kVideo);
  EXPECT_EQ(got.seq, 42u);
}

TEST(Network, UnroutableDestinationCounted) {
  auto net = fixed_net();
  Host& a = net->add_host("a", kEast);
  auto& tx = a.udp_bind(1000);
  tx.send_to(Endpoint{IpAddr{0x0A0000FF}, 9}, 10);
  net->loop().run();
  EXPECT_EQ(net->stats().packets_unroutable, 1);
  EXPECT_EQ(net->stats().packets_delivered, 0);
}

TEST(Network, PortWithoutSocketCounted) {
  auto net = fixed_net();
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  auto& tx = a.udp_bind(1000);
  tx.send_to(Endpoint{b.ip(), 7777}, 10);
  net->loop().run();
  EXPECT_EQ(b.unroutable_packets(), 1);
}

TEST(Network, LossDropsApproximatelyP) {
  auto net = fixed_net();
  net->set_loss_probability(0.5);
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  auto& tx = a.udp_bind(1000);
  auto& rx = b.udp_bind(2000);
  int received = 0;
  rx.on_receive([&](const Packet&) { ++received; });
  for (int i = 0; i < 2000; ++i) tx.send_to(Endpoint{b.ip(), 2000}, 10);
  net->loop().run();
  EXPECT_NEAR(received, 1000, 120);
  EXPECT_EQ(net->stats().packets_lost + net->stats().packets_delivered, 2000);
}

TEST(Network, TapsSeeBothDirections) {
  auto net = fixed_net();
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  auto& tx = a.udp_bind(1000);
  auto& rx = b.udp_bind(2000);
  rx.on_receive([](const Packet&) {});
  std::vector<Direction> a_dirs;
  std::vector<Direction> b_dirs;
  a.add_tap([&](Direction d, const Packet&, SimTime) { a_dirs.push_back(d); });
  b.add_tap([&](Direction d, const Packet&, SimTime) { b_dirs.push_back(d); });
  tx.send_to(Endpoint{b.ip(), 2000}, 10);
  net->loop().run();
  ASSERT_EQ(a_dirs.size(), 1u);
  EXPECT_EQ(a_dirs[0], Direction::kOutgoing);
  ASSERT_EQ(b_dirs.size(), 1u);
  EXPECT_EQ(b_dirs[0], Direction::kIncoming);
}

TEST(Network, RemovedTapStopsSeeingTraffic) {
  auto net = fixed_net();
  Host& a = net->add_host("a", kEast);
  auto& tx = a.udp_bind(1000);
  int seen = 0;
  const auto tap = a.add_tap([&](Direction, const Packet&, SimTime) { ++seen; });
  tx.send_to(Endpoint{a.ip(), 1000}, 10);
  net->loop().run();
  a.remove_tap(tap);
  tx.send_to(Endpoint{a.ip(), 1000}, 10);
  net->loop().run();
  EXPECT_EQ(seen, 2);  // out+in of the first packet only... (loopback both taps)
}

TEST(Network, GeoLatencyIncreasesWithDistance) {
  Network net{std::make_unique<GeoLatencyModel>(), 3};
  Host& east = net.add_host("east", kEast);
  Host& west = net.add_host("west", kWest);
  Host& east2 = net.add_host("east2", GeoPoint{39.0, -77.0});
  auto& tx = east.udp_bind(1000);
  auto& near_rx = east2.udp_bind(2000);
  auto& far_rx = west.udp_bind(2000);
  SimTime near_arrival{};
  SimTime far_arrival{};
  near_rx.on_receive([&](const Packet&) { near_arrival = net.now(); });
  far_rx.on_receive([&](const Packet&) { far_arrival = net.now(); });
  tx.send_to(Endpoint{east2.ip(), 2000}, 100);
  tx.send_to(Endpoint{west.ip(), 2000}, 100);
  net.loop().run();
  EXPECT_LT(near_arrival, far_arrival);
  EXPECT_GT(far_arrival.millis(), 15.0);  // cross-country ≫ 15 ms
}

TEST(Network, SameTickPacketsRideOneDeliveryBatch) {
  auto net = fixed_net(millis(10));
  MetricsRegistry registry;
  net->attach_metrics(registry);
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  auto& tx = a.udp_bind(1000);
  auto& rx = b.udp_bind(2000);
  std::vector<std::uint64_t> seqs;
  rx.on_receive([&](const Packet& p) { seqs.push_back(p.seq); });
  for (std::uint64_t i = 0; i < 5; ++i) {
    tx.send_to(Endpoint{b.ip(), 2000}, 100, StreamKind::kVideo, i);
  }
  net->loop().run();
  // Same departure tick + fixed latency = same arrival tick: one event.
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(net->stats().packets_delivered, 5);
  EXPECT_EQ(net->stats().delivery_batches, 1);
  const auto& h = registry.histogram("net.delivery_batch_pkts").stats();
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.mean(), 5.0);
}

TEST(Network, PerLinkQueueDepthGaugeTracksInFlightPackets) {
  auto net = fixed_net(millis(10));
  MetricsRegistry registry;
  net->attach_metrics(registry);
  // Hosts created after attach_metrics are wired too — shaper or not.
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  auto& tx = a.udp_bind(1000);
  b.udp_bind(2000).on_receive([](const Packet&) {});
  ASSERT_TRUE(registry.gauges().contains("net.link.a.in_flight_pkts"));
  ASSERT_TRUE(registry.gauges().contains("net.link.b.in_flight_pkts"));
  const auto& gauge = registry.gauge("net.link.b.in_flight_pkts");
  EXPECT_EQ(gauge.value(), 0.0);
  for (int i = 0; i < 4; ++i) tx.send_to(Endpoint{b.ip(), 2000}, 100);
  EXPECT_EQ(b.in_flight_packets(), 4);
  EXPECT_EQ(gauge.value(), 4.0);
  bool probed = false;
  net->loop().schedule_after(millis(5), [&] {
    probed = true;
    EXPECT_EQ(gauge.value(), 4.0);  // still on the wire halfway to arrival
  });
  net->loop().run();
  EXPECT_TRUE(probed);
  EXPECT_EQ(b.in_flight_packets(), 0);
  EXPECT_EQ(gauge.value(), 0.0);
  // The sender's inbound link saw no traffic; its gauge just reads zero.
  EXPECT_EQ(registry.gauge("net.link.a.in_flight_pkts").value(), 0.0);
}

TEST(Network, DifferentTicksDoNotShareBatches) {
  auto net = fixed_net(millis(10));
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  auto& tx = a.udp_bind(1000);
  auto& rx = b.udp_bind(2000);
  std::vector<std::uint64_t> seqs;
  rx.on_receive([&](const Packet& p) { seqs.push_back(p.seq); });
  tx.send_to(Endpoint{b.ip(), 2000}, 100, StreamKind::kVideo, 0);
  net->loop().schedule_after(millis(1), [&] {
    tx.send_to(Endpoint{b.ip(), 2000}, 100, StreamKind::kVideo, 1);
  });
  net->loop().run();
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(net->stats().delivery_batches, 2);
}

TEST(Network, SealedBatchNotReusedBySameTickResend) {
  // A receive handler that immediately sends again with zero network delay
  // produces a new arrival at the tick whose batch is currently firing. The
  // sealed batch must not swallow it — it gets an event of its own.
  auto net = fixed_net(millis(0));
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  auto& tx = a.udp_bind(1000);
  auto& rx = b.udp_bind(2000);
  int hops = 0;
  rx.on_receive([&](const Packet&) {
    if (++hops < 3) tx.send_to(Endpoint{b.ip(), 2000}, 100);
  });
  tx.send_to(Endpoint{b.ip(), 2000}, 100);
  net->loop().run();
  EXPECT_EQ(hops, 3);
  EXPECT_EQ(net->stats().packets_delivered, 3);
  EXPECT_EQ(net->stats().delivery_batches, 3);
}

TEST(Network, BatchingPreservesInterleavedPerDestinationOrder) {
  auto net = fixed_net(millis(10));
  Host& a = net->add_host("a", kEast);
  Host& b = net->add_host("b", kWest);
  Host& c = net->add_host("c", GeoPoint{40.0, -90.0});
  auto& tx = a.udp_bind(1000);
  auto& rx_b = b.udp_bind(2000);
  auto& rx_c = c.udp_bind(2000);
  std::vector<std::uint64_t> b_seqs;
  std::vector<std::uint64_t> c_seqs;
  rx_b.on_receive([&](const Packet& p) { b_seqs.push_back(p.seq); });
  rx_c.on_receive([&](const Packet& p) { c_seqs.push_back(p.seq); });
  for (std::uint64_t i = 0; i < 6; ++i) {
    Host& dst = (i % 2 == 0) ? b : c;
    tx.send_to(Endpoint{dst.ip(), 2000}, 100, StreamKind::kVideo, i);
  }
  net->loop().run();
  EXPECT_EQ(b_seqs, (std::vector<std::uint64_t>{0, 2, 4}));
  EXPECT_EQ(c_seqs, (std::vector<std::uint64_t>{1, 3, 5}));
  EXPECT_EQ(net->stats().delivery_batches, 2);  // one per destination
}

TEST(Network, BindDuplicatePortThrows) {
  auto net = fixed_net();
  Host& a = net->add_host("a", kEast);
  a.udp_bind(1000);
  EXPECT_THROW(a.udp_bind(1000), std::runtime_error);
  a.udp_close(1000);
  EXPECT_NO_THROW(a.udp_bind(1000));
}

TEST(Network, EphemeralPortsUnique) {
  auto net = fixed_net();
  Host& a = net->add_host("a", kEast);
  auto& s1 = a.udp_bind(0);
  auto& s2 = a.udp_bind(0);
  EXPECT_NE(s1.port(), s2.port());
  EXPECT_GE(s1.port(), 32768);
}

}  // namespace
}  // namespace vc::net
