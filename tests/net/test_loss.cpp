#include <gtest/gtest.h>

#include <memory>

#include "net/loss.h"
#include "net/network.h"

namespace vc::net {
namespace {

TEST(BernoulliLoss, MatchesAverage) {
  BernoulliLoss loss{0.2};
  EXPECT_DOUBLE_EQ(loss.average_loss(), 0.2);
  Rng rng{1};
  int drops = 0;
  for (int i = 0; i < 20'000; ++i) drops += loss.should_drop(rng) ? 1 : 0;
  EXPECT_NEAR(drops / 20'000.0, 0.2, 0.015);
}

TEST(BernoulliLoss, RejectsBadProbability) {
  EXPECT_THROW(BernoulliLoss{-0.1}, std::invalid_argument);
  EXPECT_THROW(BernoulliLoss{1.1}, std::invalid_argument);
}

TEST(GilbertElliott, StationaryAverageMatchesFormula) {
  auto ge = GilbertElliottLoss::with_average(0.05, 8.0);
  EXPECT_NEAR(ge.average_loss(), 0.05, 1e-9);
  Rng rng{2};
  int drops = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) drops += ge.should_drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.05, 0.01);
}

TEST(GilbertElliott, LossIsBursty) {
  // Same average loss, very different clustering: measure the probability
  // that a drop is immediately followed by another drop.
  auto burst_follow_prob = [](LossModel& model, std::uint64_t seed) {
    Rng rng{seed};
    int drops = 0;
    int follows = 0;
    bool prev = false;
    for (int i = 0; i < 300'000; ++i) {
      const bool d = model.should_drop(rng);
      if (prev) {
        ++drops;
        follows += d ? 1 : 0;
      }
      prev = d;
    }
    return drops > 0 ? static_cast<double>(follows) / drops : 0.0;
  };
  BernoulliLoss uniform{0.05};
  auto bursty = GilbertElliottLoss::with_average(0.05, 12.0);
  const double uniform_follow = burst_follow_prob(uniform, 3);
  const double bursty_follow = burst_follow_prob(bursty, 3);
  EXPECT_NEAR(uniform_follow, 0.05, 0.02);
  EXPECT_GT(bursty_follow, 4.0 * uniform_follow);
}

TEST(GilbertElliott, ExplicitParamsStationaryOccupancyIsPOverPPlusQ) {
  // With p = P(good→bad) and q = P(bad→good), the chain spends pi_bad =
  // p/(p+q) of its time in the bad state. Measure occupancy directly.
  GilbertElliottLoss::Params params;
  params.p_good_to_bad = 0.01;
  params.p_bad_to_good = 0.15;
  params.loss_good = 0.0;
  params.loss_bad = 1.0;
  GilbertElliottLoss ge{params};
  const double pi_bad = 0.01 / (0.01 + 0.15);
  EXPECT_NEAR(ge.average_loss(), pi_bad, 1e-12);  // loss_bad=1 ⇒ loss = occupancy
  Rng rng{5};
  int bad = 0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) {
    ge.should_drop(rng);
    bad += ge.in_bad_state() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(bad) / n, pi_bad, 0.005);
}

TEST(GilbertElliott, MeanBurstLengthMatchesTarget) {
  // Bad-state sojourns are geometric with mean 1/p_bad_to_good — the
  // `mean_burst` knob of with_average().
  const double mean_burst = 7.0;
  auto ge = GilbertElliottLoss::with_average(0.05, mean_burst);
  EXPECT_NEAR(ge.params().p_bad_to_good, 1.0 / mean_burst, 1e-12);
  Rng rng{6};
  int bursts = 0;
  std::int64_t bad_packets = 0;
  bool prev_bad = false;
  for (int i = 0; i < 600'000; ++i) {
    ge.should_drop(rng);
    const bool bad = ge.in_bad_state();
    if (bad && !prev_bad) ++bursts;
    bad_packets += bad ? 1 : 0;
    prev_bad = bad;
  }
  ASSERT_GT(bursts, 100);
  EXPECT_NEAR(static_cast<double>(bad_packets) / bursts, mean_burst, 0.7);
}

TEST(GilbertElliott, SameSeedYieldsIdenticalDropSequence) {
  auto a = GilbertElliottLoss::with_average(0.08, 9.0);
  auto b = GilbertElliottLoss::with_average(0.08, 9.0);
  Rng rng_a{42};
  Rng rng_b{42};
  Rng rng_c{43};
  auto c = GilbertElliottLoss::with_average(0.08, 9.0);
  bool any_differs = false;
  for (int i = 0; i < 10'000; ++i) {
    const bool da = a.should_drop(rng_a);
    EXPECT_EQ(da, b.should_drop(rng_b)) << "diverged at packet " << i;
    any_differs = any_differs || da != c.should_drop(rng_c);
  }
  EXPECT_TRUE(any_differs);  // a different seed is a different channel
}

TEST(GilbertElliott, RejectsBadTargets) {
  EXPECT_THROW(GilbertElliottLoss::with_average(0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss::with_average(0.7, 2.0), std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss::with_average(0.05, 0.5), std::invalid_argument);
}

TEST(NetworkLoss, CustomModelApplied) {
  Network net{std::make_unique<FixedLatencyModel>(millis(1)), 1};
  net.set_loss_model(std::make_unique<BernoulliLoss>(1.0));  // drop everything
  Host& a = net.add_host("a", GeoPoint{0, 0});
  Host& b = net.add_host("b", GeoPoint{1, 1});
  auto& tx = a.udp_bind(100);
  auto& rx = b.udp_bind(200);
  int received = 0;
  rx.on_receive([&](const Packet&) { ++received; });
  for (int i = 0; i < 50; ++i) tx.send_to(Endpoint{b.ip(), 200}, 10);
  net.loop().run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().packets_lost, 50);
  EXPECT_DOUBLE_EQ(net.loss_probability(), 1.0);
}

TEST(NetworkLoss, IngressLossIsPerHost) {
  Network net{std::make_unique<FixedLatencyModel>(millis(1)), 1};
  Host& a = net.add_host("a", GeoPoint{0, 0});
  Host& lossy = net.add_host("lossy", GeoPoint{1, 1});
  Host& clean = net.add_host("clean", GeoPoint{2, 2});
  lossy.set_ingress_loss(std::make_unique<BernoulliLoss>(1.0));
  auto& tx = a.udp_bind(100);
  int lossy_rx = 0;
  int clean_rx = 0;
  lossy.udp_bind(200).on_receive([&](const Packet&) { ++lossy_rx; });
  clean.udp_bind(200).on_receive([&](const Packet&) { ++clean_rx; });
  for (int i = 0; i < 20; ++i) {
    tx.send_to(Endpoint{lossy.ip(), 200}, 10);
    tx.send_to(Endpoint{clean.ip(), 200}, 10);
  }
  net.loop().run();
  EXPECT_EQ(lossy_rx, 0);
  EXPECT_EQ(clean_rx, 20);
  EXPECT_EQ(lossy.ingress_losses(), 20);
}

}  // namespace
}  // namespace vc::net
