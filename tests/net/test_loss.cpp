#include <gtest/gtest.h>

#include <memory>

#include "net/loss.h"
#include "net/network.h"

namespace vc::net {
namespace {

TEST(BernoulliLoss, MatchesAverage) {
  BernoulliLoss loss{0.2};
  EXPECT_DOUBLE_EQ(loss.average_loss(), 0.2);
  Rng rng{1};
  int drops = 0;
  for (int i = 0; i < 20'000; ++i) drops += loss.should_drop(rng) ? 1 : 0;
  EXPECT_NEAR(drops / 20'000.0, 0.2, 0.015);
}

TEST(BernoulliLoss, RejectsBadProbability) {
  EXPECT_THROW(BernoulliLoss{-0.1}, std::invalid_argument);
  EXPECT_THROW(BernoulliLoss{1.1}, std::invalid_argument);
}

TEST(GilbertElliott, StationaryAverageMatchesFormula) {
  auto ge = GilbertElliottLoss::with_average(0.05, 8.0);
  EXPECT_NEAR(ge.average_loss(), 0.05, 1e-9);
  Rng rng{2};
  int drops = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) drops += ge.should_drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.05, 0.01);
}

TEST(GilbertElliott, LossIsBursty) {
  // Same average loss, very different clustering: measure the probability
  // that a drop is immediately followed by another drop.
  auto burst_follow_prob = [](LossModel& model, std::uint64_t seed) {
    Rng rng{seed};
    int drops = 0;
    int follows = 0;
    bool prev = false;
    for (int i = 0; i < 300'000; ++i) {
      const bool d = model.should_drop(rng);
      if (prev) {
        ++drops;
        follows += d ? 1 : 0;
      }
      prev = d;
    }
    return drops > 0 ? static_cast<double>(follows) / drops : 0.0;
  };
  BernoulliLoss uniform{0.05};
  auto bursty = GilbertElliottLoss::with_average(0.05, 12.0);
  const double uniform_follow = burst_follow_prob(uniform, 3);
  const double bursty_follow = burst_follow_prob(bursty, 3);
  EXPECT_NEAR(uniform_follow, 0.05, 0.02);
  EXPECT_GT(bursty_follow, 4.0 * uniform_follow);
}

TEST(GilbertElliott, RejectsBadTargets) {
  EXPECT_THROW(GilbertElliottLoss::with_average(0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss::with_average(0.7, 2.0), std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss::with_average(0.05, 0.5), std::invalid_argument);
}

TEST(NetworkLoss, CustomModelApplied) {
  Network net{std::make_unique<FixedLatencyModel>(millis(1)), 1};
  net.set_loss_model(std::make_unique<BernoulliLoss>(1.0));  // drop everything
  Host& a = net.add_host("a", GeoPoint{0, 0});
  Host& b = net.add_host("b", GeoPoint{1, 1});
  auto& tx = a.udp_bind(100);
  auto& rx = b.udp_bind(200);
  int received = 0;
  rx.on_receive([&](const Packet&) { ++received; });
  for (int i = 0; i < 50; ++i) tx.send_to(Endpoint{b.ip(), 200}, 10);
  net.loop().run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().packets_lost, 50);
  EXPECT_DOUBLE_EQ(net.loss_probability(), 1.0);
}

TEST(NetworkLoss, IngressLossIsPerHost) {
  Network net{std::make_unique<FixedLatencyModel>(millis(1)), 1};
  Host& a = net.add_host("a", GeoPoint{0, 0});
  Host& lossy = net.add_host("lossy", GeoPoint{1, 1});
  Host& clean = net.add_host("clean", GeoPoint{2, 2});
  lossy.set_ingress_loss(std::make_unique<BernoulliLoss>(1.0));
  auto& tx = a.udp_bind(100);
  int lossy_rx = 0;
  int clean_rx = 0;
  lossy.udp_bind(200).on_receive([&](const Packet&) { ++lossy_rx; });
  clean.udp_bind(200).on_receive([&](const Packet&) { ++clean_rx; });
  for (int i = 0; i < 20; ++i) {
    tx.send_to(Endpoint{lossy.ip(), 200}, 10);
    tx.send_to(Endpoint{clean.ip(), 200}, 10);
  }
  net.loop().run();
  EXPECT_EQ(lossy_rx, 0);
  EXPECT_EQ(clean_rx, 20);
  EXPECT_EQ(lossy.ingress_losses(), 20);
}

}  // namespace
}  // namespace vc::net
