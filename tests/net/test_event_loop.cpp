#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <vector>

#include "common/metrics.h"
#include "net/event_loop.h"

namespace vc::net {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime{300}, [&] { order.push_back(3); });
  loop.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  loop.schedule_at(SimTime{200}, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), SimTime{300});
}

TEST(EventLoop, FifoAmongSimultaneousEvents) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(SimTime{50}, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime fired{};
  loop.schedule_after(millis(10), [&] {
    loop.schedule_after(millis(5), [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired, SimTime{15'000});
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule_after(millis(1), [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelAfterRunIsNoop) {
  EventLoop loop;
  const EventId id = loop.schedule_after(millis(1), [] {});
  loop.run();
  loop.cancel(id);  // must not crash or affect anything
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, RunUntilStopsAndAdvancesClock) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(SimTime{100}, [&] { ++fired; });
  loop.schedule_at(SimTime{500}, [&] { ++fired; });
  loop.run_until(SimTime{200});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), SimTime{200});  // idle clock advance
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  loop.schedule_at(SimTime{100}, [] {});
  loop.run();
  SimTime fired{};
  loop.schedule_at(SimTime{10}, [&] { fired = loop.now(); });  // in the past
  loop.run();
  EXPECT_EQ(fired, SimTime{100});
}

TEST(EventLoop, EventsScheduledDuringRunExecute) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) loop.schedule_after(millis(1), recurse);
  };
  loop.schedule_after(millis(1), recurse);
  loop.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.events_executed(), 10u);
}

TEST(EventLoop, NullCallbackRejected) {
  EventLoop loop;
  EXPECT_THROW(loop.schedule_at(SimTime{1}, nullptr), std::invalid_argument);
}

TEST(EventLoop, StaleIdInertAfterSlotReuse) {
  EventLoop loop;
  bool a_ran = false;
  bool b_ran = false;
  const EventId a = loop.schedule_after(millis(1), [&] { a_ran = true; });
  loop.cancel(a);
  // The freed slot is reused immediately; a's stale id must not be able to
  // cancel the new occupant.
  const EventId b = loop.schedule_after(millis(1), [&] { b_ran = true; });
  EXPECT_NE(a, b);
  loop.cancel(a);
  loop.run();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
}

TEST(EventLoop, CancelDefaultIdWithFreeSlotZeroIsNoop) {
  // Regression: id 0 (a default-initialized handle, e.g. a VcaClient timer
  // that never started) addresses slot 0, and a free slot's armed id is also
  // 0 — cancel(0) used to "match" the free slot, double-free it into the
  // free list, and underflow pending(). Two later schedules would then both
  // land in slot 0 and one event would silently never fire.
  EventLoop loop;
  loop.cancel(EventId{});  // empty loop: slot 0 does not exist yet
  EXPECT_EQ(loop.pending(), 0u);

  int fired = 0;
  loop.schedule_after(millis(1), [&] { ++fired; });  // occupies then frees slot 0
  loop.run();
  EXPECT_EQ(fired, 1);

  loop.cancel(EventId{});  // slot 0 exists and is free: must be a no-op
  EXPECT_EQ(loop.pending(), 0u);

  loop.schedule_after(millis(1), [&] { ++fired; });
  loop.schedule_after(millis(1), [&] { ++fired; });
  EXPECT_EQ(loop.pending(), 2u);
  loop.run();
  EXPECT_EQ(fired, 3);  // with a corrupted free list one of these was lost
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, AttachMetricsBackfillsPriorActivity) {
  EventLoop loop;
  loop.schedule_after(millis(1), [] {});
  loop.schedule_after(millis(2), [] {});
  loop.run();
  MetricsRegistry registry;
  loop.attach_metrics(registry, "evl");
  EXPECT_EQ(registry.counter("evl.events_executed").value(), 2);
  EXPECT_EQ(registry.gauge("evl.queue_depth_hwm").value(), 2.0);
  loop.schedule_after(millis(1), [] {});
  loop.run();
  EXPECT_EQ(registry.counter("evl.events_executed").value(), 3);
}

TEST(EventLoop, FifoPreservedAcrossCancellations) {
  EventLoop loop;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(loop.schedule_at(SimTime{50}, [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 10; i += 2) loop.cancel(ids[static_cast<std::size_t>(i)]);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(EventLoop, CancelSimultaneousEventFromCallback) {
  EventLoop loop;
  std::vector<int> order;
  EventId second{};
  loop.schedule_at(SimTime{10}, [&] {
    order.push_back(0);
    loop.cancel(second);
  });
  second = loop.schedule_at(SimTime{10}, [&] { order.push_back(1); });
  loop.schedule_at(SimTime{10}, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(EventLoop, CallbackExceptionLeavesLoopUsable) {
  EventLoop loop;
  bool later_ran = false;
  loop.schedule_after(millis(1), [] { throw std::runtime_error{"boom"}; });
  loop.schedule_after(millis(2), [&] { later_ran = true; });
  EXPECT_THROW(loop.run(), std::runtime_error);
  EXPECT_FALSE(later_ran);
  EXPECT_EQ(loop.pending(), 1u);  // the throwing event was consumed
  loop.run();
  EXPECT_TRUE(later_ran);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, OversizedClosureHeapFallback) {
  EventLoop loop;
  // Larger than the 64-byte inline buffer: exercises the heap vtable path.
  std::array<std::uint64_t, 16> big{};
  big.fill(7);
  std::uint64_t sum = 0;
  loop.schedule_after(millis(1), [big, &sum] {
    for (const auto v : big) sum += v;
  });
  loop.run();
  EXPECT_EQ(sum, 7u * 16u);
}

TEST(EventLoop, SlabChurnKeepsOrderAndCounts) {
  // Thousands of schedule/cancel/fire cycles: slab growth, free-list reuse
  // and heap discipline must keep execution time-ordered throughout.
  EventLoop loop;
  std::int64_t last_seen = -1;
  bool monotonic = true;
  int fired = 0;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t at = 10 + (i * 37) % 1000;
    const EventId id = loop.schedule_at(SimTime{at}, [&, at] {
      if (at < last_seen) monotonic = false;
      last_seen = at;
      ++fired;
    });
    if (i % 3 == 0) cancelled.push_back(id);
  }
  for (const EventId id : cancelled) loop.cancel(id);
  loop.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(fired, 4000 - static_cast<int>(cancelled.size()));
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_GE(loop.queue_depth_high_water(), 4000u - cancelled.size());
}

TEST(EventLoop, CallbackMayGrowSlabMidInvocation) {
  // Regression (caught by ASan in a full-scale session): callbacks run in
  // place inside their slab slot, so a callback that schedules enough new
  // events to grow the slab must not have its own storage relocated or freed
  // out from under it. The captured array makes the closure's state big and
  // forces it to read the captures after the fan-out.
  EventLoop loop;
  std::array<std::uint64_t, 6> marker{1, 2, 3, 4, 5, 6};
  int scheduled_fired = 0;
  std::uint64_t checksum = 0;
  loop.schedule_after(millis(1), [&loop, &scheduled_fired, &checksum, marker] {
    for (int i = 0; i < 3000; ++i) {  // spills past several slab chunks
      loop.schedule_after(millis(1), [&scheduled_fired] { ++scheduled_fired; });
    }
    for (const auto v : marker) checksum += v;  // captures must still be alive
  });
  loop.run();
  EXPECT_EQ(checksum, 21u);
  EXPECT_EQ(scheduled_fired, 3000);
}

TEST(EventLoop, MetricsMirrorExecutionAndDepth) {
  EventLoop loop;
  MetricsRegistry registry;
  loop.attach_metrics(registry, "evl");
  loop.schedule_after(millis(1), [] {});
  loop.schedule_after(millis(2), [] {});
  loop.schedule_after(millis(3), [] {});
  loop.run();
  EXPECT_EQ(registry.counter("evl.events_executed").value(), 3);
  EXPECT_EQ(registry.gauge("evl.queue_depth_hwm").value(), 3.0);
  EXPECT_EQ(loop.events_executed(), 3u);
  EXPECT_EQ(loop.queue_depth_high_water(), 3u);
}

TEST(EventLoop, PendingCount) {
  EventLoop loop;
  const EventId a = loop.schedule_after(millis(1), [] {});
  loop.schedule_after(millis(2), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(loop.pending(), 0u);
}

}  // namespace
}  // namespace vc::net
