#include <gtest/gtest.h>

#include <vector>

#include "net/event_loop.h"

namespace vc::net {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime{300}, [&] { order.push_back(3); });
  loop.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  loop.schedule_at(SimTime{200}, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), SimTime{300});
}

TEST(EventLoop, FifoAmongSimultaneousEvents) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(SimTime{50}, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime fired{};
  loop.schedule_after(millis(10), [&] {
    loop.schedule_after(millis(5), [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired, SimTime{15'000});
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule_after(millis(1), [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelAfterRunIsNoop) {
  EventLoop loop;
  const EventId id = loop.schedule_after(millis(1), [] {});
  loop.run();
  loop.cancel(id);  // must not crash or affect anything
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, RunUntilStopsAndAdvancesClock) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(SimTime{100}, [&] { ++fired; });
  loop.schedule_at(SimTime{500}, [&] { ++fired; });
  loop.run_until(SimTime{200});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), SimTime{200});  // idle clock advance
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  loop.schedule_at(SimTime{100}, [] {});
  loop.run();
  SimTime fired{};
  loop.schedule_at(SimTime{10}, [&] { fired = loop.now(); });  // in the past
  loop.run();
  EXPECT_EQ(fired, SimTime{100});
}

TEST(EventLoop, EventsScheduledDuringRunExecute) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) loop.schedule_after(millis(1), recurse);
  };
  loop.schedule_after(millis(1), recurse);
  loop.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.events_executed(), 10u);
}

TEST(EventLoop, NullCallbackRejected) {
  EventLoop loop;
  EXPECT_THROW(loop.schedule_at(SimTime{1}, nullptr), std::invalid_argument);
}

TEST(EventLoop, PendingCount) {
  EventLoop loop;
  const EventId a = loop.schedule_after(millis(1), [] {});
  loop.schedule_after(millis(2), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(loop.pending(), 0u);
}

}  // namespace
}  // namespace vc::net
