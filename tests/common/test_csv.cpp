#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"

namespace vc {
namespace {

TEST(Csv, PlainRows) {
  std::ostringstream out;
  CsvWriter csv{out};
  csv.row({"a", "b", "c"});
  csv.row({"1", "2", "3"});
  EXPECT_EQ(out.str(), "a,b,c\n1,2,3\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv{out};
  csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(Csv, EmptyCellsAndRow) {
  std::ostringstream out;
  CsvWriter csv{out};
  csv.row({"", "x", ""});
  csv.row({});
  EXPECT_EQ(out.str(), ",x,\n\n");
}

TEST(Csv, NumRoundTrips) {
  const double v = 36.578123456789;
  EXPECT_DOUBLE_EQ(std::stod(CsvWriter::num(v)), v);
}

TEST(Csv, InitializerListOverload) {
  std::ostringstream out;
  CsvWriter csv{out};
  csv.row({std::string("x"), CsvWriter::num(1.5)});
  EXPECT_EQ(out.str(), "x,1.5\n");
}

}  // namespace
}  // namespace vc
