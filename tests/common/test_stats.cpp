#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/stats.h"

namespace vc {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesPooled) {
  RunningStats a;
  RunningStats b;
  RunningStats pooled;
  for (int i = 0; i < 50; ++i) {
    const double v = 0.37 * i - 3;
    (i % 2 == 0 ? a : b).add(v);
    pooled.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);  // numpy type-7
}

TEST(Quantile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(quantile({9, 1, 5}, 0.5), 5.0);
}

TEST(Quantile, Errors) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

// Regression: EmpiricalCdf::inverse used to copy its (already sorted) sample
// into quantile(), which re-sorted it on every call. quantile_sorted is the
// no-copy path; it must agree with quantile() on arbitrary input.
TEST(QuantileSorted, MatchesGeneralQuantile) {
  std::vector<double> values = {9.5, -2.0, 4.25, 4.25, 0.0, 17.0, 3.1, -8.75, 6.0};
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile_sorted(sorted, q), quantile(values, q)) << "q=" << q;
  }
}

TEST(QuantileSorted, Errors) {
  EXPECT_THROW(quantile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile_sorted({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile_sorted({1.0}, 1.5), std::invalid_argument);
}

TEST(EmpiricalCdf, InverseAgreesWithQuantileOnSample) {
  const std::vector<double> values = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  EmpiricalCdf cdf{values};
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_DOUBLE_EQ(cdf.inverse(q), quantile(values, q)) << "q=" << q;
  }
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(Boxplot, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  v.push_back(1000.0);  // outlier beyond the upper fence
  const BoxplotSummary s = boxplot(v);
  EXPECT_NEAR(s.median, 51.0, 1.0);
  EXPECT_LT(s.q1, s.median);
  EXPECT_GT(s.q3, s.median);
  EXPECT_LE(s.whisker_hi, 100.0);  // outlier excluded from whisker
  EXPECT_DOUBLE_EQ(s.whisker_lo, 1.0);
  EXPECT_EQ(s.n, 101u);
}

TEST(EmpiricalCdf, EvaluatesAndInverts) {
  EmpiricalCdf cdf{{10, 20, 30, 40}};
  EXPECT_DOUBLE_EQ(cdf.at(5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(10), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(25), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(100), 1.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 40.0);
}

TEST(EmpiricalCdf, Monotone) {
  EmpiricalCdf cdf{{3, 1, 4, 1, 5, 9, 2, 6}};
  double prev = -1.0;
  for (double x = 0; x <= 10; x += 0.25) {
    const double p = cdf.at(x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h{0.0, 10.0, 5};
  h.add(-1);   // underflow
  h.add(0.0);  // bin 0
  h.add(1.9);  // bin 0
  h.add(5.0);  // bin 2
  h.add(10.0); // overflow (hi-exclusive)
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), std::invalid_argument);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace vc
