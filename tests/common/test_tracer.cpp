#include "common/tracer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"

namespace vc {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer{8};
  tracer.span("a", SimTime{10}, SimTime{20});
  tracer.instant("b", SimTime{30});
  tracer.counter("c", SimTime{40}, 1.0);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RecordsAllThreePhases) {
  Tracer tracer{8};
  tracer.set_enabled(true);
  tracer.span("span", SimTime{10}, SimTime{25}, 3.0);
  tracer.instant("instant", SimTime{30}, 7.0);
  tracer.counter("counter", SimTime{40}, 11.0);
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.spans_recorded(), 1u);
  EXPECT_EQ(tracer.instants_recorded(), 1u);
  EXPECT_EQ(tracer.counters_recorded(), 1u);

  std::vector<Tracer::Record> records;
  tracer.for_each([&records](const Tracer::Record& r) { records.push_back(r); });
  ASSERT_EQ(records.size(), 3u);
  EXPECT_STREQ(records[0].name, "span");
  EXPECT_EQ(records[0].ts_us, 10);
  EXPECT_EQ(records[0].dur_us, 15);
  EXPECT_FLOAT_EQ(records[0].value, 3.0f);
  EXPECT_EQ(records[0].phase, Tracer::Phase::kSpan);
  EXPECT_EQ(records[1].phase, Tracer::Phase::kInstant);
  EXPECT_EQ(records[2].phase, Tracer::Phase::kCounter);
}

TEST(Tracer, RingWrapKeepsLatestWindowAndCountsDrops) {
  Tracer tracer{4};
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.instant("e", SimTime{i});
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Flight-recorder semantics: the *latest* four records survive, in order.
  std::vector<std::int64_t> ts;
  tracer.for_each([&ts](const Tracer::Record& r) { ts.push_back(r.ts_us); });
  EXPECT_EQ(ts, (std::vector<std::int64_t>{6, 7, 8, 9}));
}

TEST(Tracer, NestedSpansKeepCompletionOrder) {
  Tracer tracer{8};
  tracer.set_enabled(true);
  // An inner activity finishes (and records) before its enclosing one, as
  // instrumented code does; both survive with their own begin/duration.
  tracer.span("inner", SimTime{110}, SimTime{120});
  tracer.span("outer", SimTime{100}, SimTime{200});
  std::vector<std::string> names;
  std::vector<std::int64_t> durs;
  tracer.for_each([&](const Tracer::Record& r) {
    names.emplace_back(r.name);
    durs.push_back(r.dur_us);
  });
  EXPECT_EQ(names, (std::vector<std::string>{"inner", "outer"}));
  EXPECT_EQ(durs, (std::vector<std::int64_t>{10, 100}));
}

TEST(Tracer, ClearForgetsRecordsAndDrops) {
  Tracer tracer{2};
  tracer.set_enabled(true);
  for (int i = 0; i < 5; ++i) tracer.instant("e", SimTime{i});
  EXPECT_GT(tracer.dropped(), 0u);
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.enabled());
  tracer.instant("e", SimTime{42});
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Tracer, InternPinsDynamicNames) {
  Tracer tracer{4};
  tracer.set_enabled(true);
  std::string dynamic = "net.link.";
  dynamic += "host-a";
  const char* pinned = tracer.intern(dynamic);
  dynamic.clear();  // the tracer's copy must be unaffected
  EXPECT_STREQ(pinned, "net.link.host-a");
  // Interning the same name again returns the same pointer.
  EXPECT_EQ(tracer.intern("net.link.host-a"), pinned);
}

TEST(Tracer, JsonEscapesHostileNames) {
  Tracer tracer{4};
  tracer.set_enabled(true);
  const char* name = tracer.intern("quote\" slash\\ newline\n tab\t ctrl\x01");
  tracer.instant(name, SimTime{1});
  const std::string out = tracer.to_chrome_json();
  // Parse the export back: escaping is correct iff the round trip preserves
  // the raw name exactly.
  const json::Value root = json::parse(out);
  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array_items.size(), 1u);
  const json::Value* parsed = events->array_items[0].find("name");
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->string_value, "quote\" slash\\ newline\n tab\t ctrl\x01");
}

TEST(Tracer, ChromeJsonSchema) {
  Tracer tracer{16};
  tracer.set_enabled(true);
  tracer.span("work", SimTime{100}, SimTime{350}, 2.0);
  tracer.instant("mark", SimTime{400}, 1.0);
  tracer.counter("depth", SimTime{500}, 9.0);
  const json::Value root = json::parse(tracer.to_chrome_json());

  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array_items.size(), 3u);
  for (const auto& ev : events->array_items) {
    ASSERT_TRUE(ev.is_object());
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("ph"), nullptr);
    ASSERT_NE(ev.find("ts"), nullptr);
    ASSERT_NE(ev.find("pid"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
  }
  EXPECT_EQ(events->array_items[0].at("ph").string_value, "X");
  EXPECT_EQ(events->array_items[0].at("dur").number_value, 250.0);
  EXPECT_EQ(events->array_items[1].at("ph").string_value, "i");
  EXPECT_EQ(events->array_items[2].at("ph").string_value, "C");

  const json::Value* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->at("dropped_records").number_value, 0.0);
  EXPECT_EQ(other->at("recorded").number_value, 3.0);
}

TEST(Tracer, ChromeJsonReportsDrops) {
  Tracer tracer{2};
  tracer.set_enabled(true);
  for (int i = 0; i < 7; ++i) tracer.instant("e", SimTime{i});
  const json::Value root = json::parse(tracer.to_chrome_json());
  EXPECT_EQ(root.at("otherData").at("dropped_records").number_value, 5.0);
  EXPECT_EQ(root.at("traceEvents").array_items.size(), 2u);
}

TEST(Tracer, RecordStaysCacheFriendly) {
  EXPECT_LE(sizeof(Tracer::Record), 32u);
}

}  // namespace
}  // namespace vc
