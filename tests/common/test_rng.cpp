#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace vc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  Rng parent{7};
  Rng child1 = parent.fork(42);
  const std::uint64_t first = child1.next_u64();
  // Forking again without consuming the parent yields the same child stream.
  Rng child2 = parent.fork(42);
  EXPECT_EQ(child2.next_u64(), first);
  // Different salt → different stream.
  Rng child3 = parent.fork(43);
  EXPECT_NE(child3.next_u64(), first);
}

TEST(Rng, ForkByLabel) {
  Rng parent{7};
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  Rng a2 = parent.fork("alpha");
  EXPECT_EQ(a.next_u64(), a2.next_u64());
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng{5};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng{11};
  RunningStats stats;
  for (int i = 0; i < 20'000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng{13};
  RunningStats stats;
  for (int i = 0; i < 20'000; ++i) stats.add(rng.exponential(3.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.15);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, LognormalPositive) {
  Rng rng{17};
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, ChanceProbability) {
  Rng rng{19};
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 10'000.0, 0.3, 0.03);
}

TEST(Rng, IndexBounds) {
  Rng rng{23};
  EXPECT_EQ(rng.index(0), 0u);
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.index(7), 7u);
}

}  // namespace
}  // namespace vc
