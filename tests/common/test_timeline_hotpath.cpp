// Regression tests for the allocation-free timeline hot path: once every
// column ring is discovered and preallocated, steady-state sampling — the
// merge-walk snapshot, ring-wrap base folding, the armed self-rescheduling
// tick, and HealthMonitor breach edges below its event reserve — must
// perform ZERO heap allocations.
//
// This file lives in its own test binary (tests_timeline_hotpath) because it
// replaces global operator new/delete with counting versions — that is
// process-wide and must not leak into unrelated suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_timeline.h"
#include "common/time.h"
#include "health/health_monitor.h"
#include "net/event_loop.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept {
  if (p != nullptr) g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { operator delete(p); }

namespace vc {
namespace {

MetricsTimeline::Config tiny_config() {
  MetricsTimeline::Config c;
  c.interval = millis(100);
  c.capacity = 8;  // steady state includes ring wrap + base folding
  return c;
}

TEST(TimelineHotPath, SteadyStateSamplingIsAllocationFree) {
  MetricsRegistry reg;
  auto& c0 = reg.counter("a.work");
  auto& c1 = reg.counter("b.more");
  auto& g0 = reg.gauge("c.depth");
  auto& h0 = reg.histogram("d.lat");
  MetricsTimeline tl{tiny_config()};
  tl.set_enabled(true);
  tl.bind(reg);

  // Warm-up: discover every column, fill the ring, and wrap it once so the
  // eviction/base-fold path is exercised before counting starts.
  for (int i = 0; i < 12; ++i) {
    c0.inc();
    c1.add(3);
    g0.set(static_cast<double>(i));
    h0.observe(static_cast<double>(i % 5));
    tl.sample_now(SimTime{i * 100'000});
  }
  ASSERT_GT(tl.dropped_samples(), 0u);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 12; i < 112; ++i) {
    c0.inc();
    c1.add(3);
    g0.set(static_cast<double>(i % 7));
    h0.observe(static_cast<double>(i % 5));
    tl.sample_now(SimTime{i * 100'000});
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "sampling hot path allocated " << (after - before) << " times";
  EXPECT_EQ(tl.total_samples(), 112u);
}

TEST(TimelineHotPath, ArmedTickReusesItsEventSlot) {
  net::EventLoop loop;
  MetricsRegistry reg;
  auto* c = &reg.counter("work");
  MetricsTimeline tl{tiny_config()};
  tl.set_enabled(true);

  // Warm-up leg: arm and drain once so the loop's slab chunk, heap storage
  // (two concurrent events: the tick plus a user event, same as the measured
  // leg), and the column rings all exist.
  tl.arm(loop, reg, loop.now(), loop.now() + seconds(2));
  loop.schedule_at(loop.now() + seconds(1), [c] { c->inc(); });
  loop.run();
  const std::size_t warm_samples = tl.total_samples();
  ASSERT_GT(warm_samples, 0u);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  tl.arm(loop, reg, loop.now() + millis(100), loop.now() + seconds(12));
  loop.schedule_at(loop.now() + seconds(5), [c] { c->inc(); });
  loop.run();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "armed tick chain allocated " << (after - before) << " times";
  EXPECT_GT(tl.total_samples(), warm_samples + 100);  // the chain really ran
}

TEST(TimelineHotPath, HealthEdgesBelowReserveAreAllocationFree) {
  MetricsRegistry reg;
  auto& depth = reg.gauge("depth");
  MetricsTimeline tl{tiny_config()};
  tl.set_enabled(true);
  tl.bind(reg);
  health::HealthMonitor monitor;
  health::SloRule rule;
  rule.rule = "depth-bounded";
  rule.metric = "depth";
  rule.op = health::SloRule::Op::kLe;
  rule.threshold = 5.0;
  monitor.add_rule(rule);
  monitor.bind(&reg, nullptr);
  tl.set_observer(&monitor);

  // Warm-up: resolve the breach counter, discover columns, flip one breach.
  for (int i = 0; i < 12; ++i) {
    depth.set(i % 4 == 1 ? 9.0 : 1.0);
    tl.sample_now(SimTime{i * 100'000});
  }
  const std::uint64_t events_before_count = monitor.events().size();
  ASSERT_GT(events_before_count, 0u);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 12; i < 112; ++i) {
    depth.set(i % 4 == 1 ? 9.0 : 1.0);  // 25 more breach begin/end pairs
    tl.sample_now(SimTime{i * 100'000});
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "health edges allocated " << (after - before) << " times";
  EXPECT_GT(monitor.events().size(), events_before_count);
  EXPECT_LT(monitor.events().size(), 256u);  // still under the default reserve
}

// The counting operators themselves must be active, or the zero-allocation
// expectations above would pass vacuously.
TEST(TimelineHotPath, CountingAllocatorIsLive) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  auto* v = new std::vector<int>(1024, 7);
  delete v;
  EXPECT_GT(g_allocs.load(std::memory_order_relaxed), before);
  EXPECT_GT(g_frees.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace vc
