#include <gtest/gtest.h>

#include "common/time.h"
#include "common/units.h"

namespace vc {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.micros(), 0);
  EXPECT_EQ(SimTime::zero(), SimTime{});
}

TEST(SimTime, Arithmetic) {
  const SimTime t = SimTime::zero() + seconds(2);
  EXPECT_EQ(t.micros(), 2'000'000);
  EXPECT_EQ((t - millis(500)).micros(), 1'500'000);
  EXPECT_EQ((t - SimTime::zero()).micros(), 2'000'000);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime{1}, SimTime{2});
  EXPECT_LE(SimTime{2}, SimTime{2});
  EXPECT_GT(SimTime::infinity(), SimTime{1'000'000'000});
}

TEST(SimTime, Conversions) {
  const SimTime t{1'500'000};
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.millis(), 1500.0);
}

TEST(SimDuration, FractionalConstructorsRound) {
  EXPECT_EQ(millis_f(0.0015).micros(), 2);  // rounds to nearest microsecond
  EXPECT_EQ(seconds_f(1.0 / 3.0).micros(), 333'333);
  EXPECT_EQ(millis_f(-1.5).micros(), -1500);
}

TEST(SimDuration, ScalarOps) {
  EXPECT_EQ((millis(10) * 3).micros(), 30'000);
  EXPECT_EQ((3 * millis(10)).micros(), 30'000);
  EXPECT_EQ((seconds(1) / 4).micros(), 250'000);
  EXPECT_EQ((millis(5) + millis(7)).micros(), 12'000);
  EXPECT_EQ((millis(5) - millis(7)).micros(), -2'000);
}

TEST(SimDuration, ToString) {
  EXPECT_EQ(micros(500).to_string(), "500 us");
  EXPECT_EQ(millis(2).to_string(), "2.00 ms");
  EXPECT_EQ(seconds(3).to_string(), "3.00 s");
}

TEST(DataRate, Construction) {
  EXPECT_EQ(DataRate::kbps(500).bits_per_second(), 500'000);
  EXPECT_EQ(DataRate::mbps(2.5).bits_per_second(), 2'500'000);
  EXPECT_DOUBLE_EQ(DataRate::mbps(1.0).as_kbps(), 1000.0);
  EXPECT_TRUE(DataRate::unlimited().is_unlimited());
  EXPECT_FALSE(DataRate::mbps(100).is_unlimited());
}

TEST(DataRate, TransmissionTime) {
  // 1500 bytes at 1 Mbps = 12 ms.
  EXPECT_EQ(DataRate::mbps(1.0).transmission_time(1500).micros(), 12'000);
  EXPECT_EQ(DataRate::unlimited().transmission_time(1'000'000).micros(), 0);
}

TEST(DataRate, BytesIn) {
  EXPECT_EQ(DataRate::mbps(8.0).bytes_in(seconds(1)), 1'000'000);
  EXPECT_EQ(DataRate::kbps(80).bytes_in(millis(100)), 1'000);
}

TEST(DataRate, Scaling) {
  EXPECT_EQ((DataRate::mbps(2.0) * 0.5).bits_per_second(), 1'000'000);
  EXPECT_EQ((DataRate::kbps(300) + DataRate::kbps(200)).bits_per_second(), 500'000);
}

TEST(DataRate, ToString) {
  EXPECT_EQ(DataRate::kbps(500).to_string(), "500 Kbps");
  EXPECT_EQ(DataRate::mbps(2.5).to_string(), "2.50 Mbps");
  EXPECT_EQ(DataRate::unlimited().to_string(), "unlimited");
}

}  // namespace
}  // namespace vc
