// MetricsTimeline unit tests: delta encoding round-trips exactly, ring wrap
// folds evicted deltas into the base, columns stay byte-wise name-sorted
// (including mid-run discovery), the disabled sampler schedules nothing, and
// to_json() is deterministic for identically-driven timelines.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_timeline.h"
#include "common/time.h"
#include "net/event_loop.h"

namespace vc {
namespace {

MetricsTimeline::Config small_config(std::size_t capacity) {
  MetricsTimeline::Config c;
  c.interval = seconds(1);
  c.capacity = capacity;
  return c;
}

/// Decodes a counter column back to cumulative values over the retained
/// window — the contract parse_timeline and every reader depends on.
std::vector<std::int64_t> decode(const MetricsTimeline& tl, const MetricsTimeline::CounterColumn& col) {
  std::vector<std::int64_t> out;
  const std::size_t oldest = tl.oldest_sample();
  const std::size_t first = col.first_sample > oldest ? col.first_sample : oldest;
  std::int64_t acc = col.base;
  for (std::size_t g = first; g < tl.total_samples(); ++g) {
    acc += col.deltas[g % tl.config().capacity];
    out.push_back(acc);
  }
  return out;
}

TEST(MetricsTimeline, CounterDeltaRoundTrip) {
  MetricsRegistry reg;
  auto& c = reg.counter("work");
  MetricsTimeline tl{small_config(16)};
  tl.set_enabled(true);
  tl.bind(reg);

  std::vector<std::int64_t> truth;
  for (int i = 0; i < 10; ++i) {
    c.add(i * 7 + 1);  // uneven increments
    truth.push_back(c.value());
    tl.sample_now(SimTime{i * 1'000'000});
  }
  ASSERT_EQ(tl.total_samples(), 10u);
  EXPECT_EQ(tl.dropped_samples(), 0u);
  const auto* col = tl.find_counter("work");
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col->base, 0);
  EXPECT_EQ(decode(tl, *col), truth);
}

TEST(MetricsTimeline, RingWrapFoldsEvictedDeltasIntoBase) {
  MetricsRegistry reg;
  auto& c = reg.counter("work");
  MetricsTimeline tl{small_config(4)};
  tl.set_enabled(true);
  tl.bind(reg);

  std::vector<std::int64_t> truth;
  for (int i = 0; i < 10; ++i) {
    c.add(i + 1);
    truth.push_back(c.value());
    tl.sample_now(SimTime{i * 1'000'000});
  }
  EXPECT_EQ(tl.total_samples(), 10u);
  EXPECT_EQ(tl.retained_samples(), 4u);
  EXPECT_EQ(tl.dropped_samples(), 6u);
  EXPECT_EQ(tl.oldest_sample(), 6u);

  const auto* col = tl.find_counter("work");
  ASSERT_NE(col, nullptr);
  // The base is the cumulative value just before the oldest retained sample
  // (samples 0..5 evicted: 1+2+..+6 increments = value after sample 5).
  EXPECT_EQ(col->base, truth[5]);
  const std::vector<std::int64_t> window{truth.begin() + 6, truth.end()};
  EXPECT_EQ(decode(tl, *col), window);
}

TEST(MetricsTimeline, HistogramCountDeltaAlsoFoldsOnWrap) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat");
  MetricsTimeline tl{small_config(3)};
  tl.set_enabled(true);
  tl.bind(reg);
  for (int i = 0; i < 8; ++i) {
    for (int k = 0; k <= i; ++k) h.observe(static_cast<double>(k));
    tl.sample_now(SimTime{i * 1'000'000});
  }
  const auto* col = tl.find_histogram("lat");
  ASSERT_NE(col, nullptr);
  // Observations through sample 4 (evicted window): 1+2+3+4+5 = 15.
  EXPECT_EQ(col->count_base, 15);
  std::int64_t acc = col->count_base;
  for (std::size_t g = tl.oldest_sample(); g < tl.total_samples(); ++g) {
    acc += col->count_deltas[g % tl.config().capacity];
  }
  EXPECT_EQ(acc, h.stats().count());
  EXPECT_EQ(col->latest_mean, h.stats().mean());
  EXPECT_EQ(col->latest_max, h.stats().max());
}

TEST(MetricsTimeline, ColumnsStayNameSortedWithMidRunDiscovery) {
  MetricsRegistry reg;
  reg.counter("zeta").inc();
  reg.counter("alpha").inc();
  MetricsTimeline tl{small_config(8)};
  tl.set_enabled(true);
  tl.bind(reg);
  tl.sample_now(SimTime{0});
  tl.sample_now(SimTime{1'000'000});

  // A column discovered mid-run slots into sorted position and records the
  // global index of its first sample.
  reg.counter("mid").add(5);
  tl.sample_now(SimTime{2'000'000});

  const auto& cols = tl.counter_columns();
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0].name, "alpha");
  EXPECT_EQ(cols[1].name, "mid");
  EXPECT_EQ(cols[2].name, "zeta");
  EXPECT_EQ(cols[0].first_sample, 0u);
  EXPECT_EQ(cols[1].first_sample, 2u);
  EXPECT_EQ(decode(tl, cols[1]), (std::vector<std::int64_t>{5}));
}

TEST(MetricsTimeline, GaugeColumnRecordsRawValuesAndRegistryTracksHwm) {
  MetricsRegistry reg;
  auto& g = reg.gauge("depth");
  MetricsTimeline tl{small_config(8)};
  tl.set_enabled(true);
  tl.bind(reg);
  for (int i = 0; i < 4; ++i) {
    g.set(i == 2 ? 9.0 : static_cast<double>(i));
    tl.sample_now(SimTime{i * 1'000'000});
  }
  const auto* col = tl.find_gauge("depth");
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col->latest, 3.0);
  EXPECT_EQ(col->values[2 % tl.config().capacity], 9.0);
  // The gauge's own high-water mark survives the drain back down.
  EXPECT_EQ(g.value(), 3.0);
  EXPECT_EQ(g.max(), 9.0);
}

TEST(MetricsTimeline, DisabledArmSchedulesNothing) {
  net::EventLoop loop;
  MetricsRegistry reg;
  reg.counter("work").inc();
  MetricsTimeline tl{small_config(8)};  // enabled_ defaults to false
  tl.arm(loop, reg, SimTime::zero(), SimTime::zero() + seconds(10));
  EXPECT_EQ(loop.pending(), 0u);
  loop.run();
  EXPECT_EQ(tl.total_samples(), 0u);
  // But the registry is bound: manual sampling still works (test-drive path).
  tl.sample_now(SimTime{0});
  EXPECT_EQ(tl.total_samples(), 1u);
}

TEST(MetricsTimeline, ArmedTickSamplesPeriodicallyAndStopsAtBound) {
  net::EventLoop loop;
  MetricsRegistry reg;
  auto* c = &reg.counter("work");
  MetricsTimeline tl{small_config(64)};
  tl.set_enabled(true);
  tl.arm(loop, reg, SimTime::zero(), SimTime::zero() + seconds(5));
  for (int i = 0; i < 50; ++i) {
    loop.schedule_at(SimTime{i * 100'000}, [c] { c->inc(); });
  }
  loop.run();  // drains: the tick chain must terminate at the bound
  EXPECT_EQ(tl.total_samples(), 6u);  // t = 0,1,2,3,4,5 s
  EXPECT_EQ(tl.last_sample_time(), SimTime{5'000'000});
  const auto* col = tl.find_counter("work");
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col->prev, 50);
}

TEST(MetricsTimeline, ToJsonIsDeterministicAndCarriesAccounting) {
  auto drive = [] {
    MetricsRegistry reg;
    auto& c = reg.counter("b.count");
    auto& g = reg.gauge("a.depth");
    auto& h = reg.histogram("c.lat");
    MetricsTimeline tl{small_config(4)};
    tl.set_enabled(true);
    tl.bind(reg);
    for (int i = 0; i < 7; ++i) {
      c.add(3);
      g.set(static_cast<double>(i) / 2.0);
      h.observe(static_cast<double>(i));
      tl.sample_now(SimTime{i * 500'000});
    }
    tl.finalize();
    return tl.to_json();
  };
  const std::string a = drive();
  EXPECT_EQ(a, drive());
  EXPECT_NE(a.find("\"total_samples\":7"), std::string::npos);
  EXPECT_NE(a.find("\"samples\":4"), std::string::npos);
  EXPECT_NE(a.find("\"dropped\":3"), std::string::npos);
  EXPECT_NE(a.find("\"a.depth\""), std::string::npos);
  // Sorted emission: the gauge section name appears, and counters precede it
  // structurally; spot-check relative order of the two counter-ish names.
  EXPECT_LT(a.find("\"b.count\""), a.find("\"c.lat\""));
}

struct CountingObserver final : MetricsTimeline::Observer {
  int samples = 0;
  int finalizes = 0;
  void on_sample(const MetricsTimeline&, SimTime) override { ++samples; }
  void on_finalize(const MetricsTimeline&, SimTime) override { ++finalizes; }
};

TEST(MetricsTimeline, FinalizeIsIdempotentAndNotifiesObserverOnce) {
  MetricsRegistry reg;
  reg.counter("x").inc();
  MetricsTimeline tl{small_config(8)};
  tl.set_enabled(true);
  tl.bind(reg);
  CountingObserver obs;
  tl.set_observer(&obs);
  tl.sample_now(SimTime{0});
  tl.sample_now(SimTime{1'000'000});
  tl.finalize();
  tl.finalize();
  EXPECT_EQ(obs.samples, 2);
  EXPECT_EQ(obs.finalizes, 1);
}

}  // namespace
}  // namespace vc
