#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace vc::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").bool_value);
  EXPECT_FALSE(parse("false").bool_value);
  EXPECT_DOUBLE_EQ(parse("42").number_value, 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2").number_value, -350.0);
  EXPECT_EQ(parse("\"hi\"").string_value, "hi");
}

TEST(Json, ParsesNestedContainers) {
  const Value v = parse(R"({"a":[1,2,{"b":"c"}],"d":{"e":false}})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array_items[1].number_value, 2.0);
  EXPECT_EQ(a->array_items[2].at("b").string_value, "c");
  EXPECT_FALSE(v.at("d").at("e").bool_value);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Value v = parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.object_items.size(), 3u);
  EXPECT_EQ(v.object_items[0].first, "z");
  EXPECT_EQ(v.object_items[1].first, "a");
  EXPECT_EQ(v.object_items[2].first, "m");
}

TEST(Json, DecodesEscapes) {
  const Value v = parse(R"("q\" b\\ n\n t\t r\r f\f b\b s\/")");
  EXPECT_EQ(v.string_value, "q\" b\\ n\n t\t r\r f\f b\b s/");
}

TEST(Json, DecodesUnicodeEscapesAsUtf8) {
  EXPECT_EQ(parse("\"\\u0041\"").string_value, "A");
  EXPECT_EQ(parse("\"\\u00e9\"").string_value, "\xc3\xa9");  // é, 2-byte UTF-8
  EXPECT_EQ(parse("\"\\u20ac\"").string_value, "\xe2\x82\xac");  // €, 3-byte UTF-8
  EXPECT_EQ(parse("\"\\u0009\"").string_value, "\t");
  // Raw UTF-8 bytes pass through untouched.
  EXPECT_EQ(parse("\"\xc3\xa9\"").string_value, "\xc3\xa9");
}

TEST(Json, FindReturnsNullForMissingKeys) {
  const Value v = parse(R"({"present":1})");
  EXPECT_NE(v.find("present"), nullptr);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW(v.at("absent"), std::exception);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse("1 trailing"), std::runtime_error);
  EXPECT_THROW(parse("nul"), std::runtime_error);
}

TEST(Json, AcceptsWhitespaceEverywhere) {
  const Value v = parse(" {\n\t\"a\" :\t[ 1 , 2 ] \r\n} ");
  EXPECT_EQ(v.at("a").array_items.size(), 2u);
}

}  // namespace
}  // namespace vc::json
