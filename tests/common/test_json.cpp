#include "common/json.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <string>
#include <vector>

namespace vc::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").bool_value);
  EXPECT_FALSE(parse("false").bool_value);
  EXPECT_DOUBLE_EQ(parse("42").number_value, 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2").number_value, -350.0);
  EXPECT_EQ(parse("\"hi\"").string_value, "hi");
}

TEST(Json, ParsesNestedContainers) {
  const Value v = parse(R"({"a":[1,2,{"b":"c"}],"d":{"e":false}})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array_items[1].number_value, 2.0);
  EXPECT_EQ(a->array_items[2].at("b").string_value, "c");
  EXPECT_FALSE(v.at("d").at("e").bool_value);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Value v = parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.object_items.size(), 3u);
  EXPECT_EQ(v.object_items[0].first, "z");
  EXPECT_EQ(v.object_items[1].first, "a");
  EXPECT_EQ(v.object_items[2].first, "m");
}

TEST(Json, DecodesEscapes) {
  const Value v = parse(R"("q\" b\\ n\n t\t r\r f\f b\b s\/")");
  EXPECT_EQ(v.string_value, "q\" b\\ n\n t\t r\r f\f b\b s/");
}

TEST(Json, DecodesUnicodeEscapesAsUtf8) {
  EXPECT_EQ(parse("\"\\u0041\"").string_value, "A");
  EXPECT_EQ(parse("\"\\u00e9\"").string_value, "\xc3\xa9");  // é, 2-byte UTF-8
  EXPECT_EQ(parse("\"\\u20ac\"").string_value, "\xe2\x82\xac");  // €, 3-byte UTF-8
  EXPECT_EQ(parse("\"\\u0009\"").string_value, "\t");
  // Raw UTF-8 bytes pass through untouched.
  EXPECT_EQ(parse("\"\xc3\xa9\"").string_value, "\xc3\xa9");
}

TEST(Json, CombinesSurrogatePairsIntoOneCodePoint) {
  // U+1F600 (😀) = \uD83D\uDE00 → 4-byte UTF-8 F0 9F 98 80.
  EXPECT_EQ(parse("\"\\ud83d\\ude00\"").string_value, "\xf0\x9f\x98\x80");
  // U+10000, the first supplementary-plane code point.
  EXPECT_EQ(parse("\"\\uD800\\uDC00\"").string_value, "\xf0\x90\x80\x80");
  // U+10FFFF, the last one.
  EXPECT_EQ(parse("\"\\uDBFF\\uDFFF\"").string_value, "\xf4\x8f\xbf\xbf");
  // Pairs embedded in surrounding text keep their neighbours intact.
  EXPECT_EQ(parse("\"a\\uD83D\\uDE00b\"").string_value, "a\xf0\x9f\x98\x80\x62");
}

TEST(Json, ReplacesLoneSurrogatesWithReplacementCharacter) {
  const std::string fffd = "\xef\xbf\xbd";  // U+FFFD in UTF-8
  // High half at end of string, high half followed by a non-escape, and a
  // bare low half: all are unpaired — never emit ill-formed UTF-8.
  EXPECT_EQ(parse("\"\\uD83D\"").string_value, fffd);
  EXPECT_EQ(parse("\"\\uD83Dx\"").string_value, fffd + "x");
  EXPECT_EQ(parse("\"\\uDE00\"").string_value, fffd);
  // High half followed by an escaped non-surrogate: the second escape still
  // decodes on its own.
  EXPECT_EQ(parse("\"\\uD83D\\u0041\"").string_value, fffd + "A");
  // Two high halves in a row: first is lone, second pairs with the low half.
  EXPECT_EQ(parse("\"\\uD83D\\uD83D\\uDE00\"").string_value, fffd + "\xf0\x9f\x98\x80");
}

TEST(Json, FormatNumberMatchesPrintfInCLocale) {
  // format_number must stay byte-identical to the snprintf("%.17g") the
  // report writers used before — existing goldens depend on those bytes.
  const std::vector<double> values = {0.0,    1.0,     -1.0,       42.0,   0.1,
                                      1.5,    -3.25e7, 1e-9,       2.5e17, 1234.5678,
                                      1.0 / 3.0, 6.02e23, -7.25e-12, 1e300};
  char buf[512];  // %.3f of 1e300 runs ~305 digits
  for (const double v : values) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    EXPECT_EQ(format_number(v), buf) << "v=" << v;
    std::snprintf(buf, sizeof buf, "%.9g", v);
    EXPECT_EQ(format_number(v, 9), buf) << "v=" << v;
    std::snprintf(buf, sizeof buf, "%.3f", v);
    EXPECT_EQ(format_fixed(v, 3), buf) << "v=" << v;
  }
}

TEST(Json, NumbersRoundTripUnderCommaDecimalLocale) {
  // strtod/printf honour LC_NUMERIC; std::from_chars/std::to_chars must not.
  // Flip the process into a de_DE-style locale (decimal comma) and prove the
  // parse → format → parse loop is unchanged. Skips when the container has
  // no such locale installed.
  const char* const candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                    "fr_FR.UTF-8", "fr_FR.utf8", "it_IT.UTF-8"};
  const char* active = nullptr;
  for (const char* c : candidates) {
    if (std::setlocale(LC_NUMERIC, c) != nullptr) {
      active = c;
      break;
    }
  }
  if (active == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  struct Restore {
    ~Restore() { std::setlocale(LC_NUMERIC, "C"); }
  } restore;
  // Sanity: the locale really uses a comma (else this test proves nothing).
  char probe[32];
  std::snprintf(probe, sizeof probe, "%.1f", 1.5);
  ASSERT_STREQ(probe, "1,5") << "locale " << active << " does not use a decimal comma";

  EXPECT_DOUBLE_EQ(parse("1.5").number_value, 1.5);
  EXPECT_DOUBLE_EQ(parse("-3.5e2").number_value, -350.0);
  EXPECT_DOUBLE_EQ(parse("[0.25]").array_items[0].number_value, 0.25);
  EXPECT_EQ(format_number(1.5), "1.5");
  EXPECT_EQ(format_number(1234.5678), "1234.5678000000001");
  EXPECT_EQ(format_fixed(0.125, 3), "0.125");
  // Full loop: rendered text re-parses to the same bits.
  for (const double v : {0.1, 1.5, -3.25e7, 1.0 / 3.0}) {
    EXPECT_DOUBLE_EQ(parse(format_number(v)).number_value, v);
  }
}

TEST(Json, FindReturnsNullForMissingKeys) {
  const Value v = parse(R"({"present":1})");
  EXPECT_NE(v.find("present"), nullptr);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW(v.at("absent"), std::exception);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse("1 trailing"), std::runtime_error);
  EXPECT_THROW(parse("nul"), std::runtime_error);
}

TEST(Json, AcceptsWhitespaceEverywhere) {
  const Value v = parse(" {\n\t\"a\" :\t[ 1 , 2 ] \r\n} ");
  EXPECT_EQ(v.at("a").array_items.size(), 2u);
}

}  // namespace
}  // namespace vc::json
