// Adversarial inputs for vc::json::parse: hostile documents must throw
// std::runtime_error (never crash, never overflow the C++ stack) and edge-case
// valid documents must parse to pinned values. The friendly-path coverage
// lives in test_json.cpp; these run under ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/json.h"

namespace vc::json {
namespace {

std::string nested(const std::string& open, const std::string& close, int depth,
                   const std::string& core) {
  std::string s;
  for (int i = 0; i < depth; ++i) s += open;
  s += core;
  for (int i = 0; i < depth; ++i) s += close;
  return s;
}

TEST(JsonAdversarial, DeepArrayNestingThrowsInsteadOfOverflowing) {
  // 256 levels is within the documented bound; 100k would smash the stack on
  // an unguarded recursive-descent parser.
  EXPECT_NO_THROW(parse(nested("[", "]", 256, "1")));
  EXPECT_THROW(parse(nested("[", "]", 257, "1")), std::runtime_error);
  EXPECT_THROW(parse(nested("[", "]", 100'000, "1")), std::runtime_error);
}

TEST(JsonAdversarial, DeepObjectNestingThrowsToo) {
  EXPECT_THROW(parse(nested("{\"k\":", "}", 100'000, "1")), std::runtime_error);
  // Mixed nesting shares the same depth budget.
  EXPECT_THROW(parse(nested("{\"k\":[", "]}", 60'000, "1")), std::runtime_error);
}

TEST(JsonAdversarial, UnclosedDeepNestingStillThrows) {
  // No closing brackets at all: the bomb is rejected while still descending.
  EXPECT_THROW(parse(std::string(100'000, '[')), std::runtime_error);
}

TEST(JsonAdversarial, HugeAndTinyNumbersSurvive) {
  EXPECT_DOUBLE_EQ(parse("1e308").number_value, 1e308);
  EXPECT_DOUBLE_EQ(parse("-1.7976931348623157e308").number_value,
                   -std::numeric_limits<double>::max());
  // Denormals parse to their exact value, not zero.
  EXPECT_DOUBLE_EQ(parse("5e-324").number_value, 5e-324);
  EXPECT_GT(parse("5e-324").number_value, 0.0);
  // Values past double range overflow to infinity rather than failing (the
  // from_chars result_out_of_range path) — pin that choice.
  EXPECT_TRUE(std::isinf(parse("1e400").number_value));
  EXPECT_DOUBLE_EQ(parse("1e-400").number_value, 0.0);
}

TEST(JsonAdversarial, NumberRoundTripsThroughFormatNumberExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 9007199254740993.0, 2.2250738585072014e-308}) {
    EXPECT_DOUBLE_EQ(parse(format_number(v)).number_value, v);
  }
}

TEST(JsonAdversarial, LoneSurrogateHalvesBecomeReplacementCharacter) {
  const std::string fffd = "\xEF\xBF\xBD";
  EXPECT_EQ(parse("\"\\uD800\"").string_value, fffd);        // high, nothing after
  EXPECT_EQ(parse("\"\\uDC00\"").string_value, fffd);        // low with no high
  EXPECT_EQ(parse("\"\\uD800x\"").string_value, fffd + "x"); // high then plain char
  // High followed by a non-low escape: U+FFFD, then the escape on its own.
  EXPECT_EQ(parse("\"\\uD800\\u0041\"").string_value, fffd + "A");
  // A proper pair still combines.
  EXPECT_EQ(parse("\"\\uD83D\\uDE00\"").string_value, "\xF0\x9F\x98\x80");
}

TEST(JsonAdversarial, LoneSurrogateInObjectKeyIsStillAValidKey) {
  const Value v = parse("{\"\\uDEAD\": 1, \"ok\": 2}");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object_items.size(), 2u);
  EXPECT_EQ(v.object_items[0].first, "\xEF\xBF\xBD");
  EXPECT_DOUBLE_EQ(v.at("ok").number_value, 2.0);
}

TEST(JsonAdversarial, DuplicateKeysKeepInsertionOrderAndFindReturnsFirst) {
  const Value v = parse("{\"k\": 1, \"other\": true, \"k\": 2}");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object_items.size(), 3u);  // duplicates are preserved, not merged
  EXPECT_EQ(v.object_items[0].first, "k");
  EXPECT_DOUBLE_EQ(v.object_items[0].second.number_value, 1.0);
  EXPECT_EQ(v.object_items[2].first, "k");
  EXPECT_DOUBLE_EQ(v.object_items[2].second.number_value, 2.0);
  ASSERT_NE(v.find("k"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("k")->number_value, 1.0);  // first occurrence wins
}

TEST(JsonAdversarial, TruncatedEscapesAndStringsThrow) {
  EXPECT_THROW(parse("\"abc"), std::runtime_error);
  EXPECT_THROW(parse("\"\\"), std::runtime_error);
  EXPECT_THROW(parse("\"\\u12"), std::runtime_error);
  EXPECT_THROW(parse("\"\\uD800\\u12\""), std::runtime_error);
  EXPECT_THROW(parse("\"\\q\""), std::runtime_error);
}

TEST(JsonAdversarial, MalformedStructuresThrowWithoutCrashing) {
  for (const char* doc : {"", "   ", "{", "[", "{\"a\"}", "{\"a\":}", "[1,]", "[1 2]",
                          "{\"a\":1,}", "{1: 2}", "tru", "nul", "+1", "0x10", "1 2",
                          "[1]]", "{\"a\":1}}"}) {
    EXPECT_THROW(parse(doc), std::runtime_error) << "doc: " << doc;
  }
}

TEST(JsonAdversarial, DepthLimitDoesNotAffectWideDocuments) {
  // Breadth is bounded by memory, not the depth guard: 50k siblings parse.
  std::string wide = "[0";
  for (int i = 1; i < 50'000; ++i) wide += ",1";
  wide += "]";
  EXPECT_EQ(parse(wide).array_items.size(), 50'000u);
}

}  // namespace
}  // namespace vc::json
