#include <gtest/gtest.h>

#include "common/geo.h"
#include "common/table.h"

namespace vc {
namespace {

// Approximate city coordinates.
const GeoPoint kNewYork{40.71, -74.01};
const GeoPoint kLondon{51.51, -0.13};
const GeoPoint kSanFrancisco{37.77, -122.42};

TEST(Geo, ZeroDistanceToSelf) {
  EXPECT_NEAR(great_circle_km(kNewYork, kNewYork), 0.0, 1e-6);
}

TEST(Geo, KnownDistances) {
  // NY–London ≈ 5570 km; NY–SF ≈ 4130 km.
  EXPECT_NEAR(great_circle_km(kNewYork, kLondon), 5570.0, 60.0);
  EXPECT_NEAR(great_circle_km(kNewYork, kSanFrancisco), 4130.0, 60.0);
}

TEST(Geo, Symmetric) {
  EXPECT_DOUBLE_EQ(great_circle_km(kNewYork, kLondon), great_circle_km(kLondon, kNewYork));
}

TEST(Geo, PropagationDelayScalesWithDistance) {
  const SimDuration near = propagation_delay(kNewYork, kSanFrancisco);
  const SimDuration far = propagation_delay(kNewYork, kLondon);
  EXPECT_GT(far, near);
  // Base-only at zero distance.
  EXPECT_EQ(propagation_delay(kNewYork, kNewYork, 1.8, millis(1)), millis(1));
}

TEST(Geo, TransatlanticOneWayPlausible) {
  // Measured internet one-way NY–London is roughly 35–40 ms; our model with
  // default inflation should land in that ballpark.
  const double ms = propagation_delay(kNewYork, kLondon).millis();
  EXPECT_GT(ms, 25.0);
  EXPECT_LT(ms, 60.0);
}

TEST(TextTable, RendersAligned) {
  TextTable t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Column alignment: "value" starts at the same offset in each row.
  const auto header_pos = out.find("value");
  const auto row_pos = out.find("1");
  EXPECT_EQ(header_pos % (out.find('\n') + 1), row_pos % (out.find('\n') + 1));
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace vc
