#include <gtest/gtest.h>

#include <memory>

#include "client/loopback.h"
#include "client/media_feeder.h"
#include "client/rtt_prober.h"
#include "media/feeds.h"
#include "net/network.h"

namespace vc::client {
namespace {

TEST(VideoLoopback, HoldsLatestFrame) {
  VideoLoopbackDevice dev;
  EXPECT_FALSE(dev.latest().has_value());
  dev.write_frame(media::Frame{16, 16, 1});
  dev.write_frame(media::Frame{16, 16, 2});
  ASSERT_TRUE(dev.latest().has_value());
  EXPECT_EQ(dev.latest()->at(0, 0), 2);
  EXPECT_EQ(dev.frames_written(), 2);
}

TEST(AudioLoopback, AppendsAndReadsWithSilenceFill) {
  AudioLoopbackDevice dev{16'000};
  dev.write_samples({1.0F, 2.0F, 3.0F});
  const auto out = dev.read(1, 4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_FLOAT_EQ(out[0], 2.0F);
  EXPECT_FLOAT_EQ(out[1], 3.0F);
  EXPECT_FLOAT_EQ(out[2], 0.0F);  // not yet written: silence
  EXPECT_EQ(dev.samples_written(), 3u);
}

TEST(MediaFeeder, ReplaysVideoAtFeedRate) {
  net::EventLoop loop;
  VideoLoopbackDevice video;
  AudioLoopbackDevice audio;
  MediaFeeder feeder{loop, video, audio};
  auto feed = std::make_shared<media::BlankFeed>(media::FeedParams{32, 32, 10.0, 1});
  feeder.play_video(feed, seconds(2));
  loop.run();
  // 10 fps for 2 s → 20 frames (the tick at t=2 s stops).
  EXPECT_EQ(video.frames_written(), 20);
  EXPECT_FALSE(feeder.video_active());
}

TEST(MediaFeeder, ReplaysAudioInChunks) {
  net::EventLoop loop;
  VideoLoopbackDevice video;
  AudioLoopbackDevice audio;
  MediaFeeder feeder{loop, video, audio};
  media::AudioSignal sig;
  sig.sample_rate = 16'000;
  sig.samples.assign(16'000, 0.5F);  // 1 s
  feeder.play_audio(sig);
  loop.run();
  EXPECT_EQ(audio.samples_written(), 16'000u);
}

TEST(MediaFeeder, StopHalts) {
  net::EventLoop loop;
  VideoLoopbackDevice video;
  AudioLoopbackDevice audio;
  MediaFeeder feeder{loop, video, audio};
  auto feed = std::make_shared<media::BlankFeed>(media::FeedParams{32, 32, 10.0, 1});
  feeder.play_video(feed, seconds(10));
  loop.schedule_after(millis(450), [&] { feeder.stop(); });
  loop.run();
  EXPECT_LE(video.frames_written(), 6);
}

TEST(MediaFeeder, NullFeedThrows) {
  net::EventLoop loop;
  VideoLoopbackDevice video;
  AudioLoopbackDevice audio;
  MediaFeeder feeder{loop, video, audio};
  EXPECT_THROW(feeder.play_video(nullptr, seconds(1)), std::invalid_argument);
}

TEST(RttProber, MeasuresRoundTrip) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(15)), 1};
  net::Host& client = net.add_host("client", GeoPoint{40, -74});
  net::Host& server = net.add_host("server", GeoPoint{38, -77});
  auto& server_sock = server.udp_bind(8801);
  server_sock.on_receive([&](const net::Packet& p) {
    if (p.kind != net::StreamKind::kProbe) return;
    net::Packet reply;
    reply.dst = p.src;
    reply.l7_len = p.l7_len;
    reply.kind = net::StreamKind::kProbeReply;
    reply.seq = p.seq;
    server_sock.send(std::move(reply));
  });
  RttProber prober{client};
  prober.start({server.ip(), 8801}, millis(100), 10);
  net.loop().run();
  EXPECT_EQ(prober.sent(), 10);
  ASSERT_EQ(prober.rtts_ms().size(), 10u);
  EXPECT_NEAR(prober.average_ms(), 30.0, 0.1);
  EXPECT_TRUE(prober.done());
}

TEST(RttProber, UnansweredProbesYieldNoSamples) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(5)), 1};
  net::Host& client = net.add_host("client", GeoPoint{40, -74});
  net::Host& server = net.add_host("server", GeoPoint{38, -77});
  server.udp_bind(8801);  // bound but mute
  RttProber prober{client};
  prober.start({server.ip(), 8801}, millis(50), 5);
  net.loop().run();
  EXPECT_EQ(prober.sent(), 5);
  EXPECT_TRUE(prober.rtts_ms().empty());
  EXPECT_EQ(prober.average_ms(), 0.0);
}

}  // namespace
}  // namespace vc::client
