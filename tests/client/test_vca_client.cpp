// End-to-end client tests: two or three emulated clients streaming through a
// simulated platform.
#include <gtest/gtest.h>

#include <memory>

#include "client/media_feeder.h"
#include "client/monitor.h"
#include "client/recorder.h"
#include "client/vca_client.h"
#include "media/feeds.h"
#include "media/qoe/video_metrics.h"
#include "platform/base_platform.h"

namespace vc::client {
namespace {

const GeoPoint kVirginia{38.9, -77.4};
const GeoPoint kCalifornia{37.8, -122.4};

struct ClientFixture : public ::testing::Test {
  ClientFixture() : net(std::make_unique<net::GeoLatencyModel>(), 1) {}

  VcaClient::Config sender_cfg(int w = 128, int h = 96) {
    VcaClient::Config c;
    c.video_width = w;
    c.video_height = h;
    c.fps = 10.0;
    c.send_audio = true;
    c.ui_border = 8;
    return c;
  }

  VcaClient::Config receiver_cfg(int w = 128, int h = 96) {
    VcaClient::Config c = sender_cfg(w, h);
    c.send_video = false;
    c.send_audio = false;
    return c;
  }

  net::Network net;
};

TEST_F(ClientFixture, MediaFlowsThroughRelayAndDecodes) {
  platform::WebexPlatform webex{net};
  net::Host& host_vm = net.add_host("host", kVirginia);
  net::Host& rx_vm = net.add_host("rx", kCalifornia);
  VcaClient host{host_vm, webex, sender_cfg()};
  VcaClient rx{rx_vm, webex, receiver_cfg()};
  MediaFeeder feeder{net.loop(), host.video_device(), host.audio_device()};

  const auto meeting = host.create_meeting();
  rx.join(meeting);
  auto feed = std::make_shared<media::TourGuideFeed>(media::FeedParams{128, 96, 10.0, 3});
  feeder.play_video(feed, seconds(5));
  feeder.play_audio(media::synthesize_voice(5.0, 9));
  net.loop().run_until(SimTime::zero() + seconds(6));

  EXPECT_GT(host.stats().video_frames_sent, 30);
  EXPECT_GT(rx.stats().video_frames_completed, 25);
  EXPECT_GT(rx.stats().audio_frames_received, 100);
  EXPECT_GT(rx.active_video_streams(), 0);
  // The receiver's rendered screen shows real decoded content.
  const media::Frame screen = rx.render_screen();
  media::Frame dark{128, 96, 12};
  EXPECT_GT(screen.mse(dark), 500.0);
  rx.leave();
  host.leave();
  net.loop().run();
}

TEST_F(ClientFixture, ZoomP2pStreamsDirectly) {
  platform::ZoomPlatform zoom{net};
  net::Host& a_vm = net.add_host("a", kVirginia);
  net::Host& b_vm = net.add_host("b", kCalifornia);
  VcaClient a{a_vm, zoom, sender_cfg()};
  VcaClient b{b_vm, zoom, receiver_cfg()};
  MediaFeeder feeder{net.loop(), a.video_device(), a.audio_device()};

  const auto meeting = a.create_meeting();
  b.join(meeting);
  auto feed = std::make_shared<media::TalkingHeadFeed>(media::FeedParams{128, 96, 10.0, 3});
  feeder.play_video(feed, seconds(3));
  net.loop().run_until(SimTime::zero() + seconds(4));

  EXPECT_GT(b.stats().video_frames_completed, 15);
  // No relay was provisioned: nothing listens on 8801 anywhere.
  for (const auto& h : net.hosts()) {
    EXPECT_EQ(h->udp_socket(8801), nullptr) << h->name();
  }
  b.leave();
  a.leave();
  net.loop().run();
}

TEST_F(ClientFixture, ReceiverReportsDriveAdaptationUnderShaping) {
  platform::MeetPlatform meet{net};
  net::Host& host_vm = net.add_host("host", kVirginia);
  net::Host& rx_vm = net.add_host("rx", kVirginia);
  // Choke the receiver hard: Meet should back off toward its floor.
  rx_vm.set_ingress_shaper(std::make_unique<net::TokenBucketShaper>(
      net.loop(), DataRate::kbps(300), 16'000, 60));
  VcaClient host{host_vm, meet, sender_cfg()};
  VcaClient rx{rx_vm, meet, receiver_cfg()};
  MediaFeeder feeder{net.loop(), host.video_device(), host.audio_device()};

  const auto meeting = host.create_meeting();
  rx.join(meeting);
  auto feed = std::make_shared<media::TourGuideFeed>(media::FeedParams{128, 96, 10.0, 3});
  feeder.play_video(feed, seconds(10));
  net.loop().run_until(SimTime::zero() + seconds(11));

  EXPECT_GT(rx.stats().loss_reports_sent, 0);
  EXPECT_LT(host.current_video_target().as_kbps(), host.session_base_rate().as_kbps());
  rx.leave();
  host.leave();
  net.loop().run();
  rx_vm.set_ingress_shaper(nullptr);
}

TEST_F(ClientFixture, AudioOnlyViewRendersBlack) {
  platform::WebexPlatform webex{net};
  net::Host& host_vm = net.add_host("host", kVirginia);
  net::Host& rx_vm = net.add_host("rx", kCalifornia);
  VcaClient host{host_vm, webex, sender_cfg()};
  auto rc = receiver_cfg();
  rc.view = platform::ViewMode::kAudioOnly;
  VcaClient rx{rx_vm, webex, rc};
  MediaFeeder feeder{net.loop(), host.video_device(), host.audio_device()};
  const auto meeting = host.create_meeting();
  rx.join(meeting);
  auto feed = std::make_shared<media::TourGuideFeed>(media::FeedParams{128, 96, 10.0, 3});
  feeder.play_video(feed, seconds(3));
  net.loop().run_until(SimTime::zero() + seconds(4));
  // Subscriptions are empty in audio-only: no video arrives at all.
  EXPECT_EQ(rx.stats().video_frames_completed, 0);
  EXPECT_EQ(rx.active_video_streams(), 0);
  rx.leave();
  host.leave();
  net.loop().run();
}

TEST_F(ClientFixture, DesktopRecorderCapturesFreezesAndContent) {
  platform::WebexPlatform webex{net};
  net::Host& host_vm = net.add_host("host", kVirginia);
  net::Host& rx_vm = net.add_host("rx", kVirginia);
  VcaClient host{host_vm, webex, sender_cfg()};
  VcaClient rx{rx_vm, webex, receiver_cfg()};
  MediaFeeder feeder{net.loop(), host.video_device(), host.audio_device()};
  DesktopRecorder recorder{rx, 10.0};
  const auto meeting = host.create_meeting();
  rx.join(meeting);
  auto feed = std::make_shared<media::TourGuideFeed>(media::FeedParams{128, 96, 10.0, 3});
  feeder.play_video(feed, seconds(4));
  recorder.start(seconds(4));
  net.loop().run_until(SimTime::zero() + seconds(5));
  EXPECT_NEAR(static_cast<double>(recorder.video().frames.size()), 40.0, 2.0);
  EXPECT_FALSE(recorder.recording());
  rx.leave();
  host.leave();
  net.loop().run();
}

TEST_F(ClientFixture, MonitorDiscoversEndpointAndProbes) {
  platform::WebexPlatform webex{net};
  net::Host& host_vm = net.add_host("host", kVirginia);
  net::Host& rx_vm = net.add_host("rx", kCalifornia);
  VcaClient host{host_vm, webex, sender_cfg()};
  VcaClient rx{rx_vm, webex, receiver_cfg()};
  MediaFeeder feeder{net.loop(), host.video_device(), host.audio_device()};
  ClientMonitor::Config mc;
  mc.probe_count = 8;
  ClientMonitor monitor{rx_vm, mc};
  const auto meeting = host.create_meeting();
  rx.join(meeting);
  auto feed = std::make_shared<media::TourGuideFeed>(media::FeedParams{128, 96, 10.0, 3});
  feeder.play_video(feed, seconds(15));
  monitor.start_active_probing();
  net.loop().run_until(SimTime::zero() + seconds(16));
  ASSERT_TRUE(monitor.media_endpoint().has_value());
  EXPECT_EQ(monitor.media_endpoint()->port, 9000);
  EXPECT_EQ(monitor.prober().rtts_ms().size(), 8u);
  // Webex relay is in US-east: the west-coast client sees a large RTT.
  EXPECT_GT(monitor.prober().average_ms(), 30.0);
  rx.leave();
  host.leave();
  net.loop().run();
}

TEST_F(ClientFixture, DoubleJoinThrows) {
  platform::WebexPlatform webex{net};
  net::Host& vm = net.add_host("host", kVirginia);
  VcaClient c{vm, webex, sender_cfg()};
  c.create_meeting();
  EXPECT_THROW(c.create_meeting(), std::logic_error);
  c.leave();
  net.loop().run();
}

TEST_F(ClientFixture, GalleryRenderComposesTiles) {
  platform::ZoomPlatform zoom{net};
  net::Host& a_vm = net.add_host("a", kVirginia);
  net::Host& b_vm = net.add_host("b", kVirginia);
  net::Host& c_vm = net.add_host("c", kCalifornia);
  VcaClient a{a_vm, zoom, sender_cfg()};
  VcaClient b{b_vm, zoom, sender_cfg()};
  auto cc = receiver_cfg();
  cc.view = platform::ViewMode::kGallery;
  VcaClient c{c_vm, zoom, cc};
  MediaFeeder feeder_a{net.loop(), a.video_device(), a.audio_device()};
  MediaFeeder feeder_b{net.loop(), b.video_device(), b.audio_device()};
  const auto meeting = a.create_meeting();
  b.join(meeting);
  c.join(meeting);
  auto feed = std::make_shared<media::TourGuideFeed>(media::FeedParams{128, 96, 10.0, 3});
  feeder_a.play_video(feed, seconds(3));
  feeder_b.play_video(feed, seconds(3));
  net.loop().run_until(SimTime::zero() + seconds(4));
  // Gallery tiles are thinned (scale < 1) → not decodable; receiver sees
  // traffic but decodes nothing — render shows the dark gallery canvas.
  EXPECT_GT(c.active_video_streams(), 0);
  c.leave();
  b.leave();
  a.leave();
  net.loop().run();
}

}  // namespace
}  // namespace vc::client
