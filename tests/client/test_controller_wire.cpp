// Controller workflow states and the wire-rate (FEC padding) model.
#include <gtest/gtest.h>

#include <memory>

#include "client/controller.h"
#include "client/media_feeder.h"
#include "client/vca_client.h"
#include "capture/trace.h"
#include "capture/rate_analyzer.h"
#include "capture/lag_detector.h"
#include "media/feeds.h"
#include "platform/base_platform.h"

namespace vc::client {
namespace {

const GeoPoint kVirginia{38.9, -77.4};

struct ControllerFixture : public ::testing::Test {
  ControllerFixture() : net(std::make_unique<net::FixedLatencyModel>(millis(10)), 1) {}

  VcaClient::Config cfg(bool sender) {
    VcaClient::Config c;
    c.send_video = sender;
    c.send_audio = false;
    c.decode_video = false;
    c.video_width = 128;
    c.video_height = 96;
    c.fps = 10.0;
    return c;
  }

  net::Network net;
};

TEST_F(ControllerFixture, HostWorkflowProgressesThroughStates) {
  platform::WebexPlatform webex{net};
  net::Host& vm = net.add_host("host", kVirginia);
  VcaClient client{vm, webex, cfg(true)};
  ClientController controller{client};
  EXPECT_EQ(controller.state(), ClientController::State::kIdle);

  platform::MeetingId created = 0;
  controller.start_host([&](platform::MeetingId id) { created = id; });
  EXPECT_EQ(controller.state(), ClientController::State::kLaunching);
  net.loop().run_until(SimTime::zero() + seconds(20));
  EXPECT_EQ(controller.state(), ClientController::State::kInMeeting);
  EXPECT_NE(created, 0u);
  EXPECT_TRUE(client.in_meeting());
  client.leave();
  net.loop().run();
}

TEST_F(ControllerFixture, JoinWorkflowAndLeaveAfter) {
  platform::WebexPlatform webex{net};
  net::Host& host_vm = net.add_host("host", kVirginia);
  net::Host& p_vm = net.add_host("p", kVirginia);
  VcaClient host{host_vm, webex, cfg(true)};
  VcaClient participant{p_vm, webex, cfg(false)};
  const auto meeting = host.create_meeting();

  ClientController controller{participant};
  bool joined = false;
  controller.start_join(meeting, [&] { joined = true; });
  controller.leave_after(seconds(20));
  net.loop().run_until(SimTime::zero() + seconds(10));
  EXPECT_TRUE(joined);
  EXPECT_EQ(controller.state(), ClientController::State::kInMeeting);
  net.loop().run_until(SimTime::zero() + seconds(30));
  EXPECT_EQ(controller.state(), ClientController::State::kLeft);
  EXPECT_FALSE(participant.in_meeting());
  host.leave();
  net.loop().run();
}

TEST_F(ControllerFixture, LayoutChangeAppliesOnceInMeeting) {
  platform::ZoomPlatform zoom{net};
  net::Host& host_vm = net.add_host("host", kVirginia);
  VcaClient host{host_vm, zoom, cfg(true)};
  ClientController controller{host};
  controller.start_host(nullptr);
  controller.change_layout_after(seconds(10), platform::ViewMode::kGallery);
  net.loop().run_until(SimTime::zero() + seconds(15));
  EXPECT_EQ(host.view_mode(), platform::ViewMode::kGallery);
  host.leave();
  net.loop().run();
}

TEST_F(ControllerFixture, ActiveContentIsPaddedToWireRate) {
  // The FEC/padding model: camera content occupies the full policy wire rate
  // even though the codec payload is a fraction of it.
  platform::WebexPlatform webex{net};
  net::Host& host_vm = net.add_host("host", kVirginia);
  net::Host& rx_vm = net.add_host("rx", kVirginia);
  VcaClient host{host_vm, webex, cfg(true)};
  VcaClient rx{rx_vm, webex, cfg(false)};
  MediaFeeder feeder{net.loop(), host.video_device(), host.audio_device()};
  capture::PacketCapture rx_cap{rx_vm};
  const auto meeting = host.create_meeting();
  rx.join(meeting);
  auto feed = std::make_shared<media::TourGuideFeed>(media::FeedParams{128, 96, 10.0, 5});
  feeder.play_video(feed, seconds(10));
  net.loop().run_until(SimTime::zero() + seconds(11));
  const auto rate =
      capture::RateAnalyzer{rx_cap.trace()}.average(SimTime::zero() + seconds(2)).download;
  // Webex high-motion wire rate ≈ 1.9 Mbps, far above the codec's own need
  // for this small frame.
  EXPECT_GT(rate.as_kbps(), 1'500.0);
  rx.leave();
  host.leave();
  net.loop().run();
}

TEST_F(ControllerFixture, DormantContentIsNeverPadded) {
  // The flash feed's blank periods must stay quiet on the wire even though
  // padding is enabled — this is what keeps the lag method alive.
  platform::ZoomPlatform zoom{net};
  net::Host& host_vm = net.add_host("host", kVirginia);
  net::Host& rx_vm = net.add_host("rx", kVirginia);
  net::Host& rx2_vm = net.add_host("rx2", kVirginia);
  VcaClient host{host_vm, zoom, cfg(true)};
  VcaClient rx{rx_vm, zoom, cfg(false)};
  VcaClient rx2{rx2_vm, zoom, cfg(false)};
  MediaFeeder feeder{net.loop(), host.video_device(), host.audio_device()};
  capture::PacketCapture rx_cap{rx_vm};
  const auto meeting = host.create_meeting();
  rx.join(meeting);
  rx2.join(meeting);
  auto feed = std::make_shared<media::FlashFeed>(media::FeedParams{128, 96, 10.0, 5});
  feeder.play_video(feed, seconds(12));
  net.loop().run_until(SimTime::zero() + seconds(13));
  const auto events =
      capture::detect_flash_events(rx_cap.trace(), net::Direction::kIncoming);
  EXPECT_GE(events.size(), 4u);  // flashes still stand out above quiescence
  rx2.leave();
  rx.leave();
  host.leave();
  net.loop().run();
}

}  // namespace
}  // namespace vc::client
