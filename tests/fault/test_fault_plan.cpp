// FaultPlan unit tests: timeline compilation onto the event loop, arm-time
// validation, the shaper outage switch, burst-loss installation, relay
// crash/restart, and the JSON exchange format.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "fault/fault_plan.h"
#include "net/loss.h"
#include "net/network.h"
#include "net/shaper.h"
#include "platform/relay.h"

namespace vc::fault {
namespace {

TEST(FaultPlan, EmptyPlanArmsToNothing) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(1)), 1};
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.arm({.network = &net}, SimTime::zero());
  net.loop().run();
  EXPECT_EQ(net.loop().now(), SimTime::zero());  // nothing was ever scheduled
}

TEST(FaultPlan, UnknownHostThrowsAtArmTime) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(1)), 1};
  FaultPlan plan;
  plan.link_rate(millis(10), "nonexistent", DataRate::kbps(500));
  EXPECT_THROW(plan.arm({.network = &net}, SimTime::zero()), std::invalid_argument);
}

TEST(FaultPlan, BadBurstLossTargetsThrowAtArmTime) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(1)), 1};
  net.add_host("a", GeoPoint{0, 0});
  FaultPlan plan;
  plan.burst_loss(millis(10), /*average=*/0.7, /*mean_burst=*/2.0, "a");
  EXPECT_THROW(plan.arm({.network = &net}, SimTime::zero()), std::invalid_argument);
}

TEST(FaultPlan, RelayCrashWithoutPlatformThrowsAtArmTime) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(1)), 1};
  FaultPlan plan;
  plan.relay_crash(millis(10), 0, millis(100));
  EXPECT_THROW(plan.arm({.network = &net}, SimTime::zero()), std::invalid_argument);
}

TEST(FaultPlan, LinkRateStepAppliesAtItsTime) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(1)), 1};
  net::Host& b = net.add_host("b", GeoPoint{1, 1});
  FaultPlan plan;
  plan.link_rate(millis(10), "b", DataRate::kbps(300));
  plan.arm({.network = &net}, SimTime::zero());
  // An unshaped target gets an unlimited shaper installed at arm time...
  ASSERT_NE(b.ingress_shaper(), nullptr);
  EXPECT_TRUE(b.ingress_shaper()->rate().is_unlimited());
  net.loop().run();
  // ...and the scheduled action re-points it at the plan's rate.
  EXPECT_EQ(b.ingress_shaper()->rate().bits_per_second(), DataRate::kbps(300).bits_per_second());
}

TEST(FaultPlan, LinkRampEndsAtTargetRate) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(1)), 1};
  net::Host& b = net.add_host("b", GeoPoint{1, 1});
  FaultPlan plan;
  plan.link_ramp(millis(10), "b", DataRate::mbps(2.0), DataRate::kbps(500), millis(80),
                 /*steps=*/4);
  plan.arm({.network = &net}, SimTime::zero());
  net.loop().run();
  EXPECT_EQ(b.ingress_shaper()->rate().bits_per_second(), DataRate::kbps(500).bits_per_second());
  EXPECT_GE(net.loop().now(), SimTime::zero() + millis(90));  // all 5 steps fired
}

TEST(FaultPlan, LinkOutageDropsThenRecovers) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(1)), 1};
  net::Host& a = net.add_host("a", GeoPoint{0, 0});
  net::Host& b = net.add_host("b", GeoPoint{1, 1});
  auto& tx = a.udp_bind(100);
  int received = 0;
  b.udp_bind(200).on_receive([&](const net::Packet&) { ++received; });

  FaultPlan plan;
  plan.link_outage(millis(10), "b", millis(50));
  plan.arm({.network = &net}, SimTime::zero());

  // Before, during, and after the outage window.
  for (const std::int64_t ms : {5, 30, 100}) {
    net.loop().schedule_at(SimTime::zero() + millis(ms),
                           [&] { tx.send_to(net::Endpoint{b.ip(), 200}, 100); });
  }
  net.loop().run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(b.ingress_shaper()->stats().dropped_packets, 1);
  EXPECT_FALSE(b.ingress_shaper()->is_down());
}

TEST(FaultPlan, BurstLossInstalledOnHostIngress) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(1)), 7};
  net::Host& a = net.add_host("a", GeoPoint{0, 0});
  net::Host& b = net.add_host("b", GeoPoint{1, 1});
  auto& tx = a.udp_bind(100);
  int received = 0;
  b.udp_bind(200).on_receive([&](const net::Packet&) { ++received; });

  FaultPlan plan;
  plan.burst_loss(millis(5), /*average=*/0.4, /*mean_burst=*/5.0, "b");
  plan.arm({.network = &net}, SimTime::zero());

  const int sent = 400;
  for (int i = 0; i < sent; ++i) {
    net.loop().schedule_at(SimTime::zero() + millis(10 + i),
                           [&] { tx.send_to(net::Endpoint{b.ip(), 200}, 100); });
  }
  net.loop().run();
  EXPECT_GT(b.ingress_losses(), 0);
  EXPECT_EQ(received + static_cast<int>(b.ingress_losses()), sent);
  EXPECT_NEAR(static_cast<double>(b.ingress_losses()) / sent, 0.4, 0.15);
}

TEST(FaultPlan, RelayCrashDropsTrafficAndRestartLosesState) {
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(1)), 1};
  platform::RelayServer relay{net, "relay", GeoPoint{38.9, -77.4}, 8801,
                              platform::RelayServer::ForwardingDelay{millis(1), 0.0}};
  net::Host& sender = net.add_host("s", GeoPoint{40, -75});
  net::Host& receiver = net.add_host("r", GeoPoint{41, -74});
  auto& tx = sender.udp_bind(100);
  int received = 0;
  receiver.udp_bind(100).on_receive([&](const net::Packet&) { ++received; });
  relay.add_participant(1, 1, {sender.ip(), 100});
  relay.add_participant(1, 2, {receiver.ip(), 100});

  auto send_media = [&] {
    net::Packet p;
    p.dst = relay.endpoint();
    p.l7_len = 500;
    p.kind = net::StreamKind::kVideo;
    p.origin_id = 1;
    tx.send(std::move(p));
  };
  send_media();
  net.loop().run();
  EXPECT_EQ(received, 1);

  relay.crash();
  EXPECT_TRUE(relay.crashed());
  send_media();
  net.loop().run();
  EXPECT_EQ(received, 1);  // dropped at the dead process
  EXPECT_EQ(relay.stats().crash_dropped, 1);

  // Restart brings the process back empty: traffic flows again only after
  // the control plane re-adds the participants.
  relay.restart();
  EXPECT_FALSE(relay.crashed());
  send_media();
  net.loop().run();
  EXPECT_EQ(received, 1);
  relay.add_participant(1, 1, {sender.ip(), 100});
  relay.add_participant(1, 2, {receiver.ip(), 100});
  send_media();
  net.loop().run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(relay.stats().crashes, 1);
  EXPECT_EQ(relay.stats().restarts, 1);
}

TEST(FaultPlan, JsonRoundTripPreservesEveryKind) {
  FaultPlan plan;
  plan.link_rate(millis(100), "US-East-9", DataRate::kbps(750));
  plan.link_ramp(millis(200), "US-West", DataRate::mbps(3.0), DataRate::kbps(250), seconds(2), 5);
  plan.link_outage(millis(400), "US-Central", millis(1500));
  plan.burst_loss(millis(600), 0.05, 12.0, "US-West");
  plan.burst_loss(millis(700), 0.02, 4.0);  // core-network variant, no host
  plan.relay_crash(seconds(1), 2, seconds(3), millis(400));

  const std::string json = plan.to_json();
  const FaultPlan back = FaultPlan::from_json(json);
  ASSERT_EQ(back.size(), plan.size());
  EXPECT_EQ(back.to_json(), json);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(back.events()[i].kind, plan.events()[i].kind) << "event " << i;
    EXPECT_EQ(back.events()[i].at.micros(), plan.events()[i].at.micros()) << "event " << i;
  }
  EXPECT_EQ(back.events()[5].detection.micros(), millis(400).micros());
}

TEST(FaultPlan, FromJsonRejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::from_json("not json"), std::runtime_error);
  EXPECT_THROW(FaultPlan::from_json("{\"fault_plan\": 3}"), std::runtime_error);
  EXPECT_THROW(FaultPlan::from_json(R"({"fault_plan": [{"kind": "meteor", "at_ms": 1}]})"),
               std::runtime_error);
}

}  // namespace
}  // namespace vc::fault
