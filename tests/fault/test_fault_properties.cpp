// Property tests for the fault subsystem's determinism contract: randomly
// generated fault plans (seeded, so each "random" plan is reproducible) must
// yield byte-identical runner aggregate reports at every thread count and
// every relay fan-out shard count K, and an armed-but-empty plan must be
// indistinguishable from no plan at all.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fault_recovery_benchmark.h"
#include "runner/experiment_runner.h"

namespace vc::fault {
namespace {

/// A reproducible plan from `seed`: 2–5 events mixing every fault kind,
/// aimed at the benchmark scenario's participant VMs and session relay.
FaultPlan random_plan(std::uint64_t seed) {
  Rng rng{seed};
  const std::vector<std::string> hosts = {"US-West", "US-Central"};
  FaultPlan plan;
  const int n = static_cast<int>(rng.uniform_int(2, 5));
  for (int i = 0; i < n; ++i) {
    const SimDuration at = millis(rng.uniform_int(2000, 10'000));
    switch (rng.index(5)) {
      case 0:
        plan.link_rate(at, hosts[rng.index(hosts.size())],
                       DataRate::kbps(static_cast<double>(rng.uniform_int(1, 8)) * 250.0));
        break;
      case 1:
        plan.link_ramp(at, hosts[rng.index(hosts.size())], DataRate::mbps(3.0),
                       DataRate::kbps(300), seconds(2), 4);
        break;
      case 2:
        plan.link_outage(at, hosts[rng.index(hosts.size())], millis(rng.uniform_int(500, 2000)));
        break;
      case 3:
        plan.burst_loss(at, 0.02 * static_cast<double>(rng.uniform_int(1, 4)), 6.0,
                        hosts[rng.index(hosts.size())]);
        break;
      default:
        plan.relay_crash(at, 0, millis(rng.uniform_int(1000, 3000)));
        break;
    }
  }
  return plan;
}

std::string faulted_report_json(std::size_t threads, int fan_out_shards, const FaultPlan& plan,
                                bool inject) {
  runner::ExperimentRunner::Config rc;
  rc.threads = threads;
  rc.base_seed = 137;
  rc.label = "fault-properties";
  const auto report = runner::ExperimentRunner{rc}.run(
      2, [fan_out_shards, &plan, inject](runner::SessionContext& ctx) {
        core::FaultRecoveryConfig cfg;
        cfg.session_duration = seconds(16);
        cfg.outage_start = seconds(5);
        cfg.outage_duration = seconds(2);
        cfg.seed = ctx.seed;
        cfg.fan_out_shards = fan_out_shards;
        cfg.use_custom_plan = true;
        cfg.custom_plan = plan;
        cfg.inject = inject;
        cfg.metrics = &ctx.metrics;
        const auto r = core::run_fault_recovery_benchmark(cfg);
        ctx.sample("disconnects", static_cast<double>(r.disconnects));
        ctx.sample("reconnects", static_cast<double>(r.reconnects));
        ctx.sample("packets_lost", static_cast<double>(r.packets_lost_in_outage));
        ctx.sample("lag_spike_hwm_ms", r.lag_spike_hwm_ms);
        for (double lag : r.lags_before_ms) ctx.sample("lag_before", lag);
        for (double lag : r.lags_during_ms) ctx.sample("lag_during", lag);
        for (double lag : r.lags_after_ms) ctx.sample("lag_after", lag);
      });
  EXPECT_TRUE(report.failures.empty());
  return report.aggregate_json();
}

TEST(FaultProperties, RandomPlansAreThreadAndShardInvariant) {
  for (const std::uint64_t plan_seed : {1ULL, 2ULL, 3ULL}) {
    const FaultPlan plan = random_plan(plan_seed);
    ASSERT_FALSE(plan.empty());
    const std::string base = faulted_report_json(1, 0, plan, true);
    EXPECT_EQ(faulted_report_json(8, 0, plan, true), base)
        << "threads=8 drifted, plan seed " << plan_seed << "\n" << plan.to_json();
    EXPECT_EQ(faulted_report_json(1, 8, plan, true), base)
        << "K=8 drifted, plan seed " << plan_seed << "\n" << plan.to_json();
    EXPECT_EQ(faulted_report_json(8, 8, plan, true), base)
        << "threads=8 K=8 drifted, plan seed " << plan_seed << "\n" << plan.to_json();
  }
}

TEST(FaultProperties, EmptyPlanReportMatchesNoPlanReport) {
  const FaultPlan empty;
  const std::string no_plan = faulted_report_json(1, 0, empty, false);
  const std::string armed_empty = faulted_report_json(1, 0, empty, true);
  EXPECT_EQ(armed_empty, no_plan);
}

TEST(FaultProperties, RandomPlanJsonRoundTripsExactly) {
  for (const std::uint64_t plan_seed : {5ULL, 6ULL, 7ULL, 8ULL}) {
    const FaultPlan plan = random_plan(plan_seed);
    EXPECT_EQ(FaultPlan::from_json(plan.to_json()).to_json(), plan.to_json())
        << "plan seed " << plan_seed;
  }
}

}  // namespace
}  // namespace vc::fault
