// End-to-end fault recovery: a relay crash mid-session must disconnect the
// clients routed through it, drive client::ClientController's seeded backoff
// loop, and re-establish media (routes + subscriptions) after the restart.
#include <gtest/gtest.h>

#include "core/fault_recovery_benchmark.h"

namespace vc::core {
namespace {

FaultRecoveryConfig quick_config(platform::PlatformId id) {
  FaultRecoveryConfig cfg;
  cfg.platform = id;
  cfg.session_duration = seconds(24);
  cfg.outage_start = seconds(6);
  cfg.outage_duration = seconds(2);
  cfg.recovery_grace = seconds(4);
  cfg.seed = 11;
  return cfg;
}

TEST(FaultRecovery, ZoomRelayCrashDisconnectsAndReconnectsEveryClient) {
  const FaultRecoveryResult r = run_fault_recovery_benchmark(quick_config(platform::PlatformId::kZoom));
  EXPECT_EQ(r.clients, 3);
  // All three clients ride the single session relay: all disconnect, all
  // make it back, nobody gives up.
  EXPECT_EQ(r.disconnects, 3);
  EXPECT_EQ(r.reconnects, 3);
  EXPECT_EQ(r.reconnect_giveups, 0);
  EXPECT_GE(r.reconnect_attempts, r.reconnects);
  // Recovery cannot beat the outage (reconnects fail while the relay is
  // down) and must happen within the session.
  EXPECT_GE(r.max_time_to_reconnect_ms, 2000.0);
  EXPECT_GT(r.mean_time_to_reconnect_ms, 0.0);
  // The detection window funnels in-flight media into the dead relay.
  EXPECT_GT(r.packets_lost_in_outage, 0);
  // Flashes flow in all three phases, and the fault leaves a lag HWM.
  EXPECT_FALSE(r.lags_before_ms.empty());
  EXPECT_FALSE(r.lags_after_ms.empty());
  EXPECT_GT(r.lag_spike_hwm_ms, 0.0);
}

TEST(FaultRecovery, MeetFrontEndCrashReconnectsTheHost) {
  const FaultRecoveryResult r = run_fault_recovery_benchmark(quick_config(platform::PlatformId::kMeet));
  // Meet routes each client through its own front-end; the default plan
  // crashes the host's primary/secondary pair, so exactly the host cycles.
  EXPECT_EQ(r.disconnects, 1);
  EXPECT_EQ(r.reconnects, 1);
  EXPECT_FALSE(r.lags_after_ms.empty());
}

TEST(FaultRecovery, ControlRunSeesNoFault) {
  FaultRecoveryConfig cfg = quick_config(platform::PlatformId::kWebex);
  cfg.inject = false;
  const FaultRecoveryResult r = run_fault_recovery_benchmark(cfg);
  EXPECT_EQ(r.disconnects, 0);
  EXPECT_EQ(r.reconnects, 0);
  EXPECT_EQ(r.packets_lost_in_outage, 0);
  EXPECT_FALSE(r.lags_before_ms.empty());
}

TEST(FaultRecovery, ArmedEmptyPlanIsIndistinguishableFromNoPlan) {
  FaultRecoveryConfig cfg = quick_config(platform::PlatformId::kZoom);
  cfg.inject = false;
  const FaultRecoveryResult no_plan = run_fault_recovery_benchmark(cfg);
  cfg.inject = true;
  cfg.use_custom_plan = true;  // empty custom plan: armed, schedules nothing
  const FaultRecoveryResult empty_plan = run_fault_recovery_benchmark(cfg);
  EXPECT_EQ(empty_plan.disconnects, no_plan.disconnects);
  EXPECT_EQ(empty_plan.lags_before_ms, no_plan.lags_before_ms);
  EXPECT_EQ(empty_plan.lags_during_ms, no_plan.lags_during_ms);
  EXPECT_EQ(empty_plan.lags_after_ms, no_plan.lags_after_ms);
  EXPECT_EQ(empty_plan.packets_lost_in_outage, no_plan.packets_lost_in_outage);
}

TEST(FaultRecovery, SameSeedIsReproducible) {
  const FaultRecoveryConfig cfg = quick_config(platform::PlatformId::kZoom);
  const FaultRecoveryResult a = run_fault_recovery_benchmark(cfg);
  const FaultRecoveryResult b = run_fault_recovery_benchmark(cfg);
  EXPECT_EQ(a.lags_before_ms, b.lags_before_ms);
  EXPECT_EQ(a.lags_during_ms, b.lags_during_ms);
  EXPECT_EQ(a.lags_after_ms, b.lags_after_ms);
  EXPECT_EQ(a.mean_time_to_reconnect_ms, b.mean_time_to_reconnect_ms);
  EXPECT_EQ(a.packets_lost_in_outage, b.packets_lost_in_outage);
}

TEST(FaultRecovery, CustomPlanOverridesTheDefaultTimeline) {
  FaultRecoveryConfig cfg = quick_config(platform::PlatformId::kZoom);
  cfg.use_custom_plan = true;
  // Outage on one participant's ingress link instead of a relay crash: no
  // client is ever told its relay died, so no reconnect cycle runs — the
  // fault only starves that receiver's during-phase flashes.
  cfg.custom_plan.link_outage(cfg.outage_start, "US-West", cfg.outage_duration);
  const FaultRecoveryResult r = run_fault_recovery_benchmark(cfg);
  EXPECT_EQ(r.disconnects, 0);
  EXPECT_EQ(r.reconnects, 0);
  EXPECT_FALSE(r.lags_before_ms.empty());
}

}  // namespace
}  // namespace vc::core
