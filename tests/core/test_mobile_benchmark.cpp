// Integration: mobile resource benchmarks (Section 5, Fig 19, Table 4) on
// miniature configs.
#include <gtest/gtest.h>

#include "core/mobile_benchmark.h"

namespace vc::core {
namespace {

MobileBenchmarkConfig tiny(platform::PlatformId id, mobile::MobileScenario s) {
  MobileBenchmarkConfig cfg;
  cfg.platform = id;
  cfg.scenario = s;
  cfg.repetitions = 1;
  cfg.duration = seconds(30);
  cfg.seed = 31;
  return cfg;
}

TEST(MobileBenchmark, MeetIsBandwidthHungriest) {
  // Fig 19b / Finding 5: Meet downloads the most, Zoom the least.
  const auto zoom = run_mobile_benchmark(tiny(platform::PlatformId::kZoom, mobile::MobileScenario::kHM));
  const auto meet = run_mobile_benchmark(tiny(platform::PlatformId::kMeet, mobile::MobileScenario::kHM));
  EXPECT_GT(meet.s10.download_kbps.mean(), 1.8 * zoom.s10.download_kbps.mean());
  EXPECT_GT(meet.s10.download_kbps.mean(), 1500.0);
  EXPECT_NEAR(zoom.s10.download_kbps.mean(), 800.0, 300.0);
}

TEST(MobileBenchmark, WebexAdaptsToLowEndDevice) {
  // Fig 19b: only Webex serves the J3 a reduced rate.
  const auto webex =
      run_mobile_benchmark(tiny(platform::PlatformId::kWebex, mobile::MobileScenario::kHM));
  EXPECT_LT(webex.j3.download_kbps.mean(), 0.65 * webex.s10.download_kbps.mean());
  const auto meet = run_mobile_benchmark(tiny(platform::PlatformId::kMeet, mobile::MobileScenario::kHM));
  EXPECT_NEAR(meet.j3.download_kbps.mean(), meet.s10.download_kbps.mean(),
              0.25 * meet.s10.download_kbps.mean());
}

TEST(MobileBenchmark, ZoomGalleryHalvesRate) {
  const auto full = run_mobile_benchmark(tiny(platform::PlatformId::kZoom, mobile::MobileScenario::kLM));
  const auto gallery =
      run_mobile_benchmark(tiny(platform::PlatformId::kZoom, mobile::MobileScenario::kLMView));
  EXPECT_LT(gallery.s10.download_kbps.mean(), 0.7 * full.s10.download_kbps.mean());
}

TEST(MobileBenchmark, ScreenOffLeavesOnlyAudio) {
  const auto off = run_mobile_benchmark(tiny(platform::PlatformId::kZoom, mobile::MobileScenario::kLMOff));
  // Fig 19b: 100–200 Kbps for audio/control only.
  EXPECT_LT(off.s10.download_kbps.mean(), 250.0);
  // And the battery drain roughly halves vs screen-on video.
  const auto lm = run_mobile_benchmark(tiny(platform::PlatformId::kZoom, mobile::MobileScenario::kLM));
  EXPECT_LT(off.j3.battery_pct_per_hour.mean(), 0.7 * lm.j3.battery_pct_per_hour.mean());
}

TEST(MobileBenchmark, CpuShapesPerPlatform) {
  const auto zoom = run_mobile_benchmark(tiny(platform::PlatformId::kZoom, mobile::MobileScenario::kHM));
  const auto meet = run_mobile_benchmark(tiny(platform::PlatformId::kMeet, mobile::MobileScenario::kHM));
  ASSERT_FALSE(zoom.s10.cpu_samples.empty());
  // Meet costs ~50% more CPU on the high-end device.
  EXPECT_GT(meet.s10.cpu.median, zoom.s10.cpu.median + 30.0);
  // On the J3 everyone saturates near two cores.
  EXPECT_NEAR(zoom.j3.cpu.median, 200.0, 50.0);
  EXPECT_NEAR(meet.j3.cpu.median, 210.0, 50.0);
}

TEST(MobileBenchmark, BatteryInPaperBallpark) {
  const auto hm = run_mobile_benchmark(tiny(platform::PlatformId::kZoom, mobile::MobileScenario::kHM));
  EXPECT_GT(hm.j3.battery_pct_per_hour.mean(), 20.0);
  EXPECT_LT(hm.j3.battery_pct_per_hour.mean(), 50.0);
}

ScaleBenchmarkConfig scale_cfg(platform::PlatformId id, int n, platform::ViewMode view) {
  ScaleBenchmarkConfig cfg;
  cfg.platform = id;
  cfg.n_total = n;
  cfg.phone_view = view;
  cfg.repetitions = 1;
  cfg.duration = seconds(25);
  cfg.seed = 37;
  return cfg;
}

TEST(ScaleBenchmark, ZoomFullScreenFlatWithN) {
  // Table 4: Zoom full screen barely grows from N=3 to N=11.
  const auto n3 = run_scale_benchmark(scale_cfg(platform::PlatformId::kZoom, 3,
                                                platform::ViewMode::kFullScreen));
  const auto n11 = run_scale_benchmark(scale_cfg(platform::PlatformId::kZoom, 11,
                                                 platform::ViewMode::kFullScreen));
  EXPECT_LT(n11.s10_rate_mbps, 1.45 * n3.s10_rate_mbps);
  EXPECT_GT(n11.s10_rate_mbps, 0.95 * n3.s10_rate_mbps);
}

TEST(ScaleBenchmark, ZoomGalleryPlateausAtFourTiles) {
  // Table 4: gallery rate roughly doubles 3→6, then flattens 6→11.
  const auto n3 =
      run_scale_benchmark(scale_cfg(platform::PlatformId::kZoom, 3, platform::ViewMode::kGallery));
  const auto n6 =
      run_scale_benchmark(scale_cfg(platform::PlatformId::kZoom, 6, platform::ViewMode::kGallery));
  const auto n11 =
      run_scale_benchmark(scale_cfg(platform::PlatformId::kZoom, 11, platform::ViewMode::kGallery));
  EXPECT_GT(n6.s10_rate_mbps, 1.5 * n3.s10_rate_mbps);
  EXPECT_NEAR(n11.s10_rate_mbps, n6.s10_rate_mbps, 0.3 * n6.s10_rate_mbps);
}

TEST(ScaleBenchmark, WebexGalleryRateDropsWithN) {
  // Table 4's counter-intuitive Webex result: 0.57 → 0.43 Mbps.
  const auto n3 =
      run_scale_benchmark(scale_cfg(platform::PlatformId::kWebex, 3, platform::ViewMode::kGallery));
  const auto n6 =
      run_scale_benchmark(scale_cfg(platform::PlatformId::kWebex, 6, platform::ViewMode::kGallery));
  EXPECT_LT(n6.s10_rate_mbps, n3.s10_rate_mbps);
}

TEST(ScaleBenchmark, MeetGrowsWithPreviewsThenCaps) {
  const auto n3 = run_scale_benchmark(scale_cfg(platform::PlatformId::kMeet, 3,
                                                platform::ViewMode::kFullScreen));
  const auto n6 = run_scale_benchmark(scale_cfg(platform::PlatformId::kMeet, 6,
                                                platform::ViewMode::kFullScreen));
  const auto n11 = run_scale_benchmark(scale_cfg(platform::PlatformId::kMeet, 11,
                                                 platform::ViewMode::kFullScreen));
  EXPECT_GT(n6.s10_rate_mbps, n3.s10_rate_mbps);
  EXPECT_NEAR(n11.s10_rate_mbps, n6.s10_rate_mbps, 0.15 * n6.s10_rate_mbps);
  EXPECT_GT(n3.s10_rate_mbps, 1.4);  // high simulcast layer (±Meet's own
  // across-session rate variability, the largest of the three platforms)
}

}  // namespace
}  // namespace vc::core
