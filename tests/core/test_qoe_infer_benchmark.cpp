// End-to-end checks of the header-free inference session: the estimator only
// ever sees the receiver's capture, yet its accuracy against the session's
// own ground truth must clear the same bars bench_qoe_inference gates in CI.
#include <gtest/gtest.h>

#include "core/qoe_infer_benchmark.h"

namespace vc::core {
namespace {

QoeInferBenchmarkConfig base_config() {
  QoeInferBenchmarkConfig cfg;
  cfg.platform = platform::PlatformId::kZoom;
  cfg.media_duration = seconds(16);
  return cfg;
}

TEST(QoeInferSession, CleanSessionRecoversFrameRateAndTier) {
  const auto r = run_qoe_inference_session(base_config(), 7);
  // Truth ~10 fps delivered; the estimate must land within the CI gate.
  EXPECT_GT(r.truth_fps, 8.0);
  EXPECT_LE(r.fps_abs_err, 2.0);
  // No scripted outages: by convention recall is 1, and a clean unshaped
  // session should not hallucinate freezes either.
  EXPECT_EQ(r.truth_freezes, 0);
  EXPECT_DOUBLE_EQ(r.freeze_recall, 1.0);
  EXPECT_EQ(r.inferred_freezes, 0);
  // Tier timeline: most comparable windows must match the sender's truth.
  EXPECT_GT(r.tier_windows, 5);
  EXPECT_GE(r.tier_accuracy, 0.8);
  EXPECT_FALSE(r.report_json.empty());
}

TEST(QoeInferSession, ScriptedOutageIsFoundAsFreeze) {
  QoeInferBenchmarkConfig cfg = base_config();
  cfg.outages = {{seconds(5), seconds(2)}};
  const auto r = run_qoe_inference_session(cfg, 11);
  EXPECT_EQ(r.truth_freezes, 1);
  EXPECT_GE(r.inferred_freezes, 1);
  EXPECT_DOUBLE_EQ(r.freeze_recall, 1.0);
  EXPECT_DOUBLE_EQ(r.freeze_precision, 1.0);
  // The outage suppresses delivery, so truth fps drops with it — and the
  // estimate must track the *delivered* rate, not the nominal feed rate.
  EXPECT_LE(r.fps_abs_err, 2.0);
}

TEST(QoeInferSession, TwoOutagesTwoFreezes) {
  QoeInferBenchmarkConfig cfg = base_config();
  cfg.media_duration = seconds(20);
  cfg.outages = {{seconds(4), seconds(2)}, {seconds(12), seconds(3)}};
  const auto r = run_qoe_inference_session(cfg, 3);
  EXPECT_EQ(r.truth_freezes, 2);
  EXPECT_DOUBLE_EQ(r.freeze_recall, 1.0);
  EXPECT_DOUBLE_EQ(r.freeze_precision, 1.0);
}

TEST(QoeInferSession, AllPlatformsClearTheAccuracyGates) {
  for (const auto id : {platform::PlatformId::kZoom, platform::PlatformId::kWebex,
                        platform::PlatformId::kMeet}) {
    QoeInferBenchmarkConfig cfg = base_config();
    cfg.platform = id;
    cfg.outages = {{seconds(6), seconds(2)}};
    const auto r = run_qoe_inference_session(cfg, 19);
    EXPECT_LE(r.fps_abs_err, 2.0) << "platform " << static_cast<int>(id);
    EXPECT_GE(r.freeze_recall, 0.9) << "platform " << static_cast<int>(id);
    EXPECT_GE(r.freeze_precision, 0.9) << "platform " << static_cast<int>(id);
  }
}

TEST(QoeInferSession, ShapedProfileStillInfers) {
  QoeInferBenchmarkConfig cfg = base_config();
  cfg.shaper = InferShaperProfile::kDsl;
  cfg.outages = {{seconds(5), seconds(2)}};
  const auto r = run_qoe_inference_session(cfg, 23);
  EXPECT_LE(r.fps_abs_err, 2.0);
  EXPECT_GE(r.freeze_recall, 0.9);
  EXPECT_GE(r.freeze_precision, 0.9);
}

TEST(QoeInferSession, DeterministicAcrossReplicas) {
  QoeInferBenchmarkConfig cfg = base_config();
  cfg.outages = {{seconds(5), seconds(2)}};
  const auto a = run_qoe_inference_session(cfg, 31);
  const auto b = run_qoe_inference_session(cfg, 31);
  EXPECT_EQ(a.report_json, b.report_json);
  EXPECT_DOUBLE_EQ(a.inferred_fps, b.inferred_fps);
  EXPECT_DOUBLE_EQ(a.tier_accuracy, b.tier_accuracy);
  EXPECT_EQ(a.inferred_frames, b.inferred_frames);
}

TEST(QoeInferSession, RejectsOutageOutsideMediaWindow) {
  QoeInferBenchmarkConfig cfg = base_config();
  cfg.outages = {{seconds(15), seconds(5)}};  // runs past media end
  EXPECT_THROW(run_qoe_inference_session(cfg, 1), std::invalid_argument);
  cfg.outages = {{seconds(2), SimDuration::zero()}};
  EXPECT_THROW(run_qoe_inference_session(cfg, 1), std::invalid_argument);
}

}  // namespace
}  // namespace vc::core
