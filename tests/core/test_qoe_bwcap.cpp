// Integration: QoE benchmark (Section 4.3) and bandwidth-cap benchmark
// (Section 4.4) on miniature configs.
#include <gtest/gtest.h>

#include "core/bwcap_benchmark.h"
#include "core/qoe_benchmark.h"

namespace vc::core {
namespace {

QoeBenchmarkConfig tiny_qoe(platform::PlatformId id, platform::MotionClass motion, int n) {
  QoeBenchmarkConfig cfg;
  cfg.platform = id;
  cfg.motion = motion;
  cfg.receiver_sites = us_qoe_receiver_sites(n);
  cfg.sessions = 1;
  cfg.media_duration = seconds(10);
  cfg.content_width = 128;
  cfg.content_height = 96;
  cfg.padding = 16;
  cfg.fps = 10.0;
  cfg.metric_stride = 5;
  cfg.seed = 23;
  return cfg;
}

TEST(QoeBenchmark, ReceiverSiteHelpers) {
  EXPECT_EQ(us_qoe_receiver_sites(5).size(), 5u);
  EXPECT_EQ(europe_qoe_receiver_sites(3).size(), 3u);
  EXPECT_THROW(us_qoe_receiver_sites(6), std::invalid_argument);
  EXPECT_THROW(us_qoe_receiver_sites(0), std::invalid_argument);
}

TEST(QoeBenchmark, LowMotionScoresWell) {
  const auto r =
      run_qoe_benchmark(tiny_qoe(platform::PlatformId::kZoom, platform::MotionClass::kLowMotion, 1));
  ASSERT_GT(r.psnr.count(), 0u);
  EXPECT_GT(r.psnr.mean(), 26.0);
  EXPECT_GT(r.ssim.mean(), 0.8);
  EXPECT_GT(r.vifp.mean(), 0.35);
  EXPECT_GT(r.delivery_ratio.mean(), 0.9);
}

TEST(QoeBenchmark, HighMotionDegradesQoE) {
  // Finding 3: high-motion feeds lose quality at the same policy rates.
  const auto lm =
      run_qoe_benchmark(tiny_qoe(platform::PlatformId::kMeet, platform::MotionClass::kLowMotion, 2));
  const auto hm = run_qoe_benchmark(
      tiny_qoe(platform::PlatformId::kMeet, platform::MotionClass::kHighMotion, 2));
  ASSERT_GT(lm.ssim.count(), 0u);
  ASSERT_GT(hm.ssim.count(), 0u);
  EXPECT_GT(lm.ssim.mean(), hm.ssim.mean());
  EXPECT_GT(lm.psnr.mean(), hm.psnr.mean());
}

TEST(QoeBenchmark, RatesMatchPolicyScale) {
  const auto r = run_qoe_benchmark(
      tiny_qoe(platform::PlatformId::kWebex, platform::MotionClass::kHighMotion, 2));
  // Webex multi-party ≈ 1.9 Mbps video + audio.
  EXPECT_NEAR(r.upload_kbps.mean(), 1950.0, 450.0);
  EXPECT_NEAR(r.download_kbps.mean(), r.upload_kbps.mean(), 500.0);
}

TEST(QoeBenchmark, MeetTwoPartyBurstsAboveMultiParty) {
  const auto two =
      run_qoe_benchmark(tiny_qoe(platform::PlatformId::kMeet, platform::MotionClass::kLowMotion, 1));
  const auto multi =
      run_qoe_benchmark(tiny_qoe(platform::PlatformId::kMeet, platform::MotionClass::kLowMotion, 3));
  EXPECT_GT(two.download_kbps.mean(), 2.0 * multi.download_kbps.mean());
}

TEST(BwCapBenchmark, UnlimitedBaselineHealthy) {
  BwCapBenchmarkConfig cfg;
  cfg.platform = platform::PlatformId::kZoom;
  cfg.sessions = 1;
  cfg.media_duration = seconds(10);
  cfg.content_width = 128;
  cfg.content_height = 96;
  cfg.padding = 16;
  cfg.fps = 10.0;
  cfg.metric_stride = 5;
  const auto r = run_bwcap_benchmark(cfg);
  ASSERT_GT(r.psnr.count(), 0u);
  EXPECT_GT(r.psnr.mean(), 24.0);
  EXPECT_GT(r.mos_lqo.mean(), 3.8);
  EXPECT_LT(r.drop_fraction.mean(), 0.01);
}

TEST(BwCapBenchmark, TightCapDegradesVideo) {
  BwCapBenchmarkConfig cfg;
  cfg.platform = platform::PlatformId::kWebex;
  cfg.sessions = 1;
  cfg.media_duration = seconds(10);
  cfg.content_width = 128;
  cfg.content_height = 96;
  cfg.padding = 16;
  cfg.fps = 10.0;
  cfg.metric_stride = 5;
  BwCapBenchmarkConfig capped = cfg;
  capped.cap = DataRate::kbps(500);
  const auto base = run_bwcap_benchmark(cfg);
  const auto tight = run_bwcap_benchmark(capped);
  // Webex barely adapts: under a 500 Kbps cap its ~2 Mbps stream starves.
  EXPECT_GT(tight.drop_fraction.mean(), 0.3);
  EXPECT_LT(tight.delivery_ratio.mean(), 0.6);
  EXPECT_LT(tight.ssim.mean(), base.ssim.mean() - 0.05);
  // ...and its audio suffers too (Fig 18).
  EXPECT_LT(tight.mos_lqo.mean(), base.mos_lqo.mean() - 0.3);
}

TEST(BwCapBenchmark, ZoomAdaptsAndProtectsAudioAt500k) {
  BwCapBenchmarkConfig cfg;
  cfg.platform = platform::PlatformId::kZoom;
  cfg.cap = DataRate::kbps(500);
  cfg.sessions = 1;
  cfg.media_duration = seconds(12);
  cfg.content_width = 128;
  cfg.content_height = 96;
  cfg.padding = 16;
  cfg.fps = 10.0;
  cfg.metric_stride = 5;
  const auto r = run_bwcap_benchmark(cfg);
  // Fig 18: Zoom audio stays near-perfect at 500 Kbps.
  EXPECT_GT(r.mos_lqo.mean(), 3.5);
  // Realized download respects the cap.
  EXPECT_LT(r.download_kbps.mean(), 560.0);
}

}  // namespace
}  // namespace vc::core
