// Integration: the Section 4.2 lag benchmark on miniature configs.
// These runs are small (few sessions, short durations) but exercise the full
// pipeline: orchestration, flash feed, codec, relays, captures, detectors.
#include <gtest/gtest.h>

#include "capture/lag_detector.h"
#include "capture/timeline.h"
#include "common/stats.h"
#include "core/lag_benchmark.h"

namespace vc::core {
namespace {

LagBenchmarkConfig tiny(platform::PlatformId id, const std::string& host = "US-East") {
  LagBenchmarkConfig cfg;
  cfg.platform = id;
  cfg.host_site = host;
  cfg.participant_sites = us_participant_sites(host);
  cfg.sessions = 2;
  cfg.session_duration = seconds(30);
  cfg.seed = 17;
  return cfg;
}

double site_median(const LagBenchmarkResult& r, const std::string& label) {
  for (const auto& p : r.participants) {
    if (p.label == label && !p.lags_ms.empty()) return median(std::vector<double>(p.lags_ms));
  }
  ADD_FAILURE() << "no lag samples for " << label;
  return 0.0;
}

TEST(LagBenchmark, SiteHelpers) {
  EXPECT_EQ(us_participant_sites("US-East").size(), 6u);
  EXPECT_EQ(us_participant_sites("US-West").size(), 6u);
  EXPECT_EQ(europe_participant_sites("CH").size(), 6u);
  EXPECT_EQ(europe_participant_sites("UK-West").size(), 6u);
  EXPECT_THROW(europe_participant_sites("US-East"), std::invalid_argument);
}

TEST(LagBenchmark, ZoomEastHostGeographicOrdering) {
  const auto result = run_lag_benchmark(tiny(platform::PlatformId::kZoom));
  // Finding 1: lag grows with distance from the relay near the host.
  const double east = site_median(result, "US-East");
  const double central = site_median(result, "US-Central");
  const double west = site_median(result, "US-West");
  EXPECT_LT(east, central);
  EXPECT_LT(central, west);
  // US-west clients sit ~30 ms above the US-east client.
  EXPECT_NEAR(west - east, 32.0, 12.0);
  EXPECT_EQ(result.dominant_media_port, 8801);
}

TEST(LagBenchmark, ZoomFreshEndpointEverySession) {
  const auto result = run_lag_benchmark(tiny(platform::PlatformId::kZoom));
  // 2 sessions → 2 distinct endpoints per client.
  EXPECT_NEAR(result.mean_distinct_endpoints, 2.0, 0.01);
}

TEST(LagBenchmark, MeetStickyEndpoints) {
  const auto result = run_lag_benchmark(tiny(platform::PlatformId::kMeet));
  EXPECT_LT(result.mean_distinct_endpoints, 1.7);
  EXPECT_EQ(result.dominant_media_port, 19305);
}

TEST(LagBenchmark, WebexWestSessionsDetourViaEast) {
  // Finding 1's Webex quirk: with a US-west host, the *west* participants
  // still suffer because everything relays via US-east (Fig 5b/9b).
  const auto result = run_lag_benchmark(tiny(platform::PlatformId::kWebex, "US-West"));
  const double east = site_median(result, "US-East");
  const double west = site_median(result, "US-West");
  EXPECT_GT(west, east);  // east clients are near the relay, west are not
  EXPECT_EQ(result.dominant_media_port, 9000);
}

TEST(LagBenchmark, ZoomWestHostServedLocally) {
  // Zoom provisions the relay in the host's region: west clients win.
  const auto result = run_lag_benchmark(tiny(platform::PlatformId::kZoom, "US-West"));
  const double east = site_median(result, "US-East");
  const double west = site_median(result, "US-West");
  EXPECT_LT(west, east);
}

TEST(LagBenchmark, RttSamplesCollected) {
  const auto result = run_lag_benchmark(tiny(platform::PlatformId::kWebex));
  for (const auto& p : result.participants) {
    EXPECT_FALSE(p.session_rtt_ms.empty()) << p.label;
  }
  // Webex east relay: east clients see single-digit RTTs, west ~60-80 ms.
  const auto& parts = result.participants;
  double east_rtt = 0;
  double west_rtt = 0;
  for (const auto& p : parts) {
    if (p.label == "US-East") east_rtt = median(std::vector<double>(p.session_rtt_ms));
    if (p.label == "US-West") west_rtt = median(std::vector<double>(p.session_rtt_ms));
  }
  EXPECT_LT(east_rtt, 15.0);
  EXPECT_GT(west_rtt, 40.0);
}

TEST(LagBenchmark, SampleTracesShowFlashPattern) {
  // Fig 2: the sample sender trace must contain periodic flash events.
  const auto result = run_lag_benchmark(tiny(platform::PlatformId::kZoom));
  const auto tx_events =
      capture::detect_flash_events(result.sample_sender_trace, net::Direction::kOutgoing);
  const auto rx_events =
      capture::detect_flash_events(result.sample_receiver_trace, net::Direction::kIncoming);
  EXPECT_GE(tx_events.size(), 10u);
  EXPECT_GE(rx_events.size(), 10u);
  // Event spacing ≈ the 2 s flash period.
  for (std::size_t i = 1; i < tx_events.size(); ++i) {
    EXPECT_NEAR((tx_events[i].at - tx_events[i - 1].at).seconds(), 2.0, 0.3);
  }
}

TEST(LagBenchmark, EuropeZoomWorseThanMeet) {
  // Finding 2: EU sessions suffer on US-centric Zoom, not on Meet.
  LagBenchmarkConfig zoom_cfg = tiny(platform::PlatformId::kZoom, "CH");
  zoom_cfg.participant_sites = europe_participant_sites("CH");
  LagBenchmarkConfig meet_cfg = tiny(platform::PlatformId::kMeet, "CH");
  meet_cfg.participant_sites = europe_participant_sites("CH");
  const auto zoom = run_lag_benchmark(zoom_cfg);
  const auto meet = run_lag_benchmark(meet_cfg);
  std::vector<double> zoom_all;
  std::vector<double> meet_all;
  for (const auto& p : zoom.participants) {
    zoom_all.insert(zoom_all.end(), p.lags_ms.begin(), p.lags_ms.end());
  }
  for (const auto& p : meet.participants) {
    meet_all.insert(meet_all.end(), p.lags_ms.begin(), p.lags_ms.end());
  }
  ASSERT_FALSE(zoom_all.empty());
  ASSERT_FALSE(meet_all.empty());
  EXPECT_GT(median(zoom_all), 80.0);   // paper: 90–150 ms
  EXPECT_LT(median(meet_all), 70.0);   // paper: 30–40 ms
}

TEST(LagBenchmark, RejectsEmptyParticipants) {
  LagBenchmarkConfig cfg;
  cfg.participant_sites.clear();
  EXPECT_THROW(run_lag_benchmark(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace vc::core
