// Property sweeps over relay fan-out conservation and audio codec behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/shard_pool.h"
#include "media/audio.h"
#include "media/audio_codec.h"
#include "media/feeds.h"
#include "platform/relay.h"

namespace vc {
namespace {

// ------------------------------------------------- relay conservation law

class RelayFanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(RelayFanoutSweep, ForwardsExactlyNMinusOneCopies) {
  const int n = GetParam();
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(2)), 1};
  platform::RelayServer relay{net, "relay", GeoPoint{38.9, -77.4}, 8801,
                              platform::RelayServer::ForwardingDelay{millis(1), 0.0}};
  std::vector<int> received(static_cast<std::size_t>(n), 0);
  std::vector<net::Host*> hosts;
  for (int i = 0; i < n; ++i) {
    net::Host& h = net.add_host("c" + std::to_string(i), GeoPoint{40, -75});
    auto& sock = h.udp_bind(100);
    int* counter = &received[static_cast<std::size_t>(i)];
    sock.on_receive([counter](const net::Packet&) { ++(*counter); });
    relay.add_participant(1, static_cast<platform::ParticipantId>(i + 1), {h.ip(), 100});
    hosts.push_back(&h);
  }
  // Every participant sends one video packet.
  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.dst = relay.endpoint();
    p.l7_len = 500;
    p.kind = net::StreamKind::kVideo;
    p.origin_id = static_cast<std::uint32_t>(i + 1);
    hosts[static_cast<std::size_t>(i)]->udp_socket(100)->send(std::move(p));
  }
  net.loop().run();
  // Conservation: each participant receives exactly one copy of every other
  // participant's packet and never its own.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], n - 1) << "participant " << i;
  }
  EXPECT_EQ(relay.stats().media_in, n);
  EXPECT_EQ(relay.stats().media_forwarded, static_cast<std::int64_t>(n) * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RelayFanoutSweep, ::testing::Values(2, 3, 5, 8, 13));

// --------------------------------- sharded fan-out K-invariance properties
//
// Randomized sessions (member count, subscription sets, simulcast scales,
// packet sizes all drawn from the test seed) run at several shard counts.
// Everything the determinism contract covers must be invariant in K, and
// the conservation/clamp/FIFO laws must hold at every K.

struct ShardedOutcome {
  /// Per receiver, the exact (origin, seq, l7_len) delivery sequence.
  std::vector<std::vector<std::tuple<std::uint32_t, std::uint64_t, std::int64_t>>> rx;
  std::int64_t media_in = 0;
  std::int64_t media_forwarded = 0;
  std::int64_t peer_forwarded = 0;
  std::size_t fan_out_count = 0;
  double fan_out_sum = 0.0;
};

ShardedOutcome run_random_sharded_session(std::uint64_t seed, int shards, ShardPool* pool) {
  Rng gen{seed};  // session construction stream, identical at every K
  const int n = static_cast<int>(gen.uniform_int(2, 40));
  const double jitter_ms = gen.uniform(0.0, 4.0);

  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(2)), seed};
  platform::RelayServer relay{net, "relay", GeoPoint{38.9, -77.4}, 8801,
                              platform::RelayServer::ForwardingDelay{millis(1), jitter_ms}};
  MetricsRegistry metrics;
  relay.attach_metrics(metrics, "relay");
  relay.set_fan_out_sharding(pool, shards);

  ShardedOutcome out;
  out.rx.resize(static_cast<std::size_t>(n));
  std::vector<net::Host*> hosts;
  for (int i = 0; i < n; ++i) {
    net::Host& h = net.add_host("c" + std::to_string(i), GeoPoint{40, -75});
    auto& sock = h.udp_bind(100);
    auto* sink = &out.rx[static_cast<std::size_t>(i)];
    sock.on_receive([sink](const net::Packet& p) {
      sink->push_back({p.origin_id, p.seq, p.l7_len});
    });
    relay.add_participant(1, static_cast<platform::ParticipantId>(i + 1), {h.ip(), 100});
    hosts.push_back(&h);
  }

  // About half the receivers pin explicit subscriptions; scales include the
  // paper's thumbnail/simulcast ratios plus scale<=0 (unsubscribed).
  constexpr double kScales[] = {0.0, 0.05, 0.25, 1.0};
  for (int i = 0; i < n; ++i) {
    if (!gen.chance(0.5)) continue;
    std::vector<platform::StreamSubscription> subs;
    for (int o = 0; o < n; ++o) {
      if (o == i || !gen.chance(0.7)) continue;
      subs.push_back({static_cast<platform::ParticipantId>(o + 1), kScales[gen.index(4)]});
    }
    relay.set_subscriptions(1, static_cast<platform::ParticipantId>(i + 1), std::move(subs));
  }

  // Sends at strictly increasing times with per-sender monotonic seqs, so
  // per-(receiver, origin) delivery order must follow seq order. Sizes
  // include l7_len small enough that any thinned copy hits the 24-byte
  // clamp (25 * 0.05 ≈ 1 → 24).
  std::vector<std::uint64_t> next_seq(static_cast<std::size_t>(n), 0);
  std::int64_t t = 0;
  for (int s = 0; s < 120; ++s) {
    t += gen.uniform_int(1, 4'000);
    const int sender = static_cast<int>(gen.index(static_cast<std::size_t>(n)));
    const bool audio = gen.chance(0.2);
    const std::int64_t l7 = audio ? 120 : (gen.chance(0.25) ? 25 : gen.uniform_int(24, 1'400));
    const std::uint64_t seq = next_seq[static_cast<std::size_t>(sender)]++;
    net::Host* h = hosts[static_cast<std::size_t>(sender)];
    net.loop().schedule_at(SimTime{t}, [h, &relay, sender, audio, l7, seq] {
      net::Packet p;
      p.dst = relay.endpoint();
      p.l7_len = l7;
      p.kind = audio ? net::StreamKind::kAudio : net::StreamKind::kVideo;
      p.origin_id = static_cast<std::uint32_t>(sender + 1);
      p.seq = seq;
      h->udp_socket(100)->send(std::move(p));
    });
  }
  net.loop().run();

  out.media_in = relay.stats().media_in;
  out.media_forwarded = relay.stats().media_forwarded;
  out.peer_forwarded = relay.stats().peer_forwarded;
  const auto& fan_out = metrics.histograms().at("relay.fan_out").stats();
  out.fan_out_count = fan_out.count();
  out.fan_out_sum = fan_out.sum();
  return out;
}

class ShardedRelaySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedRelaySweep, InvariantsHoldAndAreIndependentOfK) {
  const std::uint64_t seed = GetParam();
  const ShardedOutcome serial = run_random_sharded_session(seed, 0, nullptr);

  // Conservation: with a lossless latency model, every forwarded copy is
  // delivered, so media_forwarded equals total deliveries; the fan-out
  // histogram observes each ingest once and sums to the copies made.
  std::int64_t delivered = 0;
  for (const auto& r : serial.rx) delivered += static_cast<std::int64_t>(r.size());
  EXPECT_EQ(delivered, serial.media_forwarded);
  EXPECT_EQ(serial.fan_out_count, static_cast<std::size_t>(serial.media_in));
  // sum() is mean()*count() — llround absorbs the streaming-mean rounding.
  EXPECT_EQ(std::llround(serial.fan_out_sum), serial.media_forwarded);
  EXPECT_EQ(serial.peer_forwarded, 0);  // no peer links in this topology

  // Thinning clamp: no delivered packet is ever smaller than the 24-byte
  // header floor, and per-(receiver, origin) sequence numbers stay in send
  // order (the departure pipeline is FIFO per destination).
  for (const auto& r : serial.rx) {
    std::map<std::uint32_t, std::uint64_t> last_seq;
    for (const auto& [origin, seq, l7] : r) {
      EXPECT_GE(l7, 24);
      const auto it = last_seq.find(origin);
      if (it != last_seq.end()) {
        EXPECT_GT(seq, it->second);
      }
      last_seq[origin] = seq;
    }
  }

  // K-invariance: staged-inline at several K, and one real multi-worker
  // pool, all reproduce the serial outcome exactly.
  ShardPool pool{2};
  for (int k : {2, 3, 8}) {
    const ShardedOutcome sharded = run_random_sharded_session(seed, k, nullptr);
    EXPECT_EQ(sharded.rx, serial.rx) << "inline K=" << k;
    EXPECT_EQ(sharded.media_forwarded, serial.media_forwarded) << "inline K=" << k;
    EXPECT_EQ(sharded.fan_out_count, serial.fan_out_count) << "inline K=" << k;
    EXPECT_EQ(sharded.fan_out_sum, serial.fan_out_sum) << "inline K=" << k;
  }
  const ShardedOutcome pooled = run_random_sharded_session(seed, 4, &pool);
  EXPECT_EQ(pooled.rx, serial.rx) << "pooled K=4";
  EXPECT_EQ(pooled.media_forwarded, serial.media_forwarded);
  EXPECT_EQ(pooled.fan_out_count, serial.fan_out_count);
  EXPECT_EQ(pooled.fan_out_sum, serial.fan_out_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedRelaySweep,
                         ::testing::Values(1u, 17u, 404u, 9001u, 77777u));

// ---------------------------------------------------- audio codec sweeps

class AudioCodecSweep : public ::testing::TestWithParam<double> {};

TEST_P(AudioCodecSweep, FrameBytesRespectBudget) {
  const double kbps = GetParam();
  media::AudioEncoder enc{{DataRate::kbps(kbps), 16'000, 20}};
  media::AudioDecoder dec{enc.frame_samples()};
  const auto voice = media::synthesize_voice(1.0, 17);
  const double budget_bytes = kbps * 1000.0 * 0.020 / 8.0;
  for (int f = 0; f < 40; ++f) {
    const std::span<const float> in{voice.samples.data() + f * enc.frame_samples(),
                                    static_cast<std::size_t>(enc.frame_samples())};
    const auto frame = enc.encode(in);
    EXPECT_LE(frame->bytes, static_cast<std::int64_t>(budget_bytes) + 8) << "frame " << f;
    // Decode must reproduce the sample count regardless of rate.
    EXPECT_EQ(dec.decode(*frame).size(), static_cast<std::size_t>(enc.frame_samples()));
  }
}

TEST_P(AudioCodecSweep, SilenceIsNearlyFree) {
  media::AudioEncoder enc{{DataRate::kbps(GetParam()), 16'000, 20}};
  std::vector<float> silence(static_cast<std::size_t>(enc.frame_samples()), 0.0F);
  const auto frame = enc.encode(silence);
  EXPECT_LE(frame->bytes, 8);  // header only: all coefficients quantize to 0
}

INSTANTIATE_TEST_SUITE_P(Rates, AudioCodecSweep, ::testing::Values(16.0, 40.0, 45.0, 90.0, 128.0));

// ------------------------------------------------ feed determinism sweep

class FeedDeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeedDeterminismSweep, AllFeedsArePureFunctions) {
  const std::uint64_t seed = GetParam();
  const media::FeedParams params{64, 48, 10.0, seed};
  const media::TalkingHeadFeed head{params};
  const media::TourGuideFeed tour{params};
  const media::FlashFeed flash{params};
  for (std::int64_t i : {0, 7, 23, 100}) {
    EXPECT_EQ(head.frame_at(i), head.frame_at(i));
    EXPECT_EQ(tour.frame_at(i), tour.frame_at(i));
    EXPECT_EQ(flash.frame_at(i), flash.frame_at(i));
  }
  // Sensor noise differs frame to frame (it is noise)...
  EXPECT_NE(head.frame_at(1000), head.frame_at(1001));
  // ...but is itself deterministic: a second feed instance agrees.
  const media::TalkingHeadFeed head2{params};
  EXPECT_EQ(head.frame_at(1000), head2.frame_at(1000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeedDeterminismSweep, ::testing::Values(1u, 99u, 4242u));

}  // namespace
}  // namespace vc
