// Property sweeps over relay fan-out conservation and audio codec behavior.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "media/audio.h"
#include "media/audio_codec.h"
#include "media/feeds.h"
#include "platform/relay.h"

namespace vc {
namespace {

// ------------------------------------------------- relay conservation law

class RelayFanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(RelayFanoutSweep, ForwardsExactlyNMinusOneCopies) {
  const int n = GetParam();
  net::Network net{std::make_unique<net::FixedLatencyModel>(millis(2)), 1};
  platform::RelayServer relay{net, "relay", GeoPoint{38.9, -77.4}, 8801,
                              platform::RelayServer::ForwardingDelay{millis(1), 0.0}};
  std::vector<int> received(static_cast<std::size_t>(n), 0);
  std::vector<net::Host*> hosts;
  for (int i = 0; i < n; ++i) {
    net::Host& h = net.add_host("c" + std::to_string(i), GeoPoint{40, -75});
    auto& sock = h.udp_bind(100);
    int* counter = &received[static_cast<std::size_t>(i)];
    sock.on_receive([counter](const net::Packet&) { ++(*counter); });
    relay.add_participant(1, static_cast<platform::ParticipantId>(i + 1), {h.ip(), 100});
    hosts.push_back(&h);
  }
  // Every participant sends one video packet.
  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.dst = relay.endpoint();
    p.l7_len = 500;
    p.kind = net::StreamKind::kVideo;
    p.origin_id = static_cast<std::uint32_t>(i + 1);
    hosts[static_cast<std::size_t>(i)]->udp_socket(100)->send(std::move(p));
  }
  net.loop().run();
  // Conservation: each participant receives exactly one copy of every other
  // participant's packet and never its own.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], n - 1) << "participant " << i;
  }
  EXPECT_EQ(relay.stats().media_in, n);
  EXPECT_EQ(relay.stats().media_forwarded, static_cast<std::int64_t>(n) * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RelayFanoutSweep, ::testing::Values(2, 3, 5, 8, 13));

// ---------------------------------------------------- audio codec sweeps

class AudioCodecSweep : public ::testing::TestWithParam<double> {};

TEST_P(AudioCodecSweep, FrameBytesRespectBudget) {
  const double kbps = GetParam();
  media::AudioEncoder enc{{DataRate::kbps(kbps), 16'000, 20}};
  media::AudioDecoder dec{enc.frame_samples()};
  const auto voice = media::synthesize_voice(1.0, 17);
  const double budget_bytes = kbps * 1000.0 * 0.020 / 8.0;
  for (int f = 0; f < 40; ++f) {
    const std::span<const float> in{voice.samples.data() + f * enc.frame_samples(),
                                    static_cast<std::size_t>(enc.frame_samples())};
    const auto frame = enc.encode(in);
    EXPECT_LE(frame->bytes, static_cast<std::int64_t>(budget_bytes) + 8) << "frame " << f;
    // Decode must reproduce the sample count regardless of rate.
    EXPECT_EQ(dec.decode(*frame).size(), static_cast<std::size_t>(enc.frame_samples()));
  }
}

TEST_P(AudioCodecSweep, SilenceIsNearlyFree) {
  media::AudioEncoder enc{{DataRate::kbps(GetParam()), 16'000, 20}};
  std::vector<float> silence(static_cast<std::size_t>(enc.frame_samples()), 0.0F);
  const auto frame = enc.encode(silence);
  EXPECT_LE(frame->bytes, 8);  // header only: all coefficients quantize to 0
}

INSTANTIATE_TEST_SUITE_P(Rates, AudioCodecSweep, ::testing::Values(16.0, 40.0, 45.0, 90.0, 128.0));

// ------------------------------------------------ feed determinism sweep

class FeedDeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeedDeterminismSweep, AllFeedsArePureFunctions) {
  const std::uint64_t seed = GetParam();
  const media::FeedParams params{64, 48, 10.0, seed};
  const media::TalkingHeadFeed head{params};
  const media::TourGuideFeed tour{params};
  const media::FlashFeed flash{params};
  for (std::int64_t i : {0, 7, 23, 100}) {
    EXPECT_EQ(head.frame_at(i), head.frame_at(i));
    EXPECT_EQ(tour.frame_at(i), tour.frame_at(i));
    EXPECT_EQ(flash.frame_at(i), flash.frame_at(i));
  }
  // Sensor noise differs frame to frame (it is noise)...
  EXPECT_NE(head.frame_at(1000), head.frame_at(1001));
  // ...but is itself deterministic: a second feed instance agrees.
  const media::TalkingHeadFeed head2{params};
  EXPECT_EQ(head.frame_at(1000), head2.frame_at(1000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeedDeterminismSweep, ::testing::Values(1u, 99u, 4242u));

}  // namespace
}  // namespace vc
