// Property-style parameterized sweeps over the core invariants.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "common/stats.h"
#include "media/feeds.h"
#include "media/qoe/video_metrics.h"
#include "media/video_codec.h"
#include "net/event_loop.h"
#include "net/shaper.h"

namespace vc {
namespace {

// ------------------------------------------------------------ codec sweep

class CodecRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(CodecRateSweep, RealizedRateTracksTarget) {
  const double target_kbps = GetParam();
  media::TourGuideFeed feed{{128, 96, 10.0, 11}};
  media::VideoEncoder enc{128, 96,
                          {.target_bitrate = DataRate::kbps(target_kbps), .fps = 10.0}};
  std::int64_t bytes = 0;
  const int frames = 40;
  media::Frame last{128, 96};
  for (int i = 0; i < frames; ++i) {
    last = feed.frame_at(i);
    bytes += enc.encode(last)->bytes;
  }
  const double realized = static_cast<double>(bytes) * 8.0 / (frames / 10.0) / 1000.0;
  // Never exceeds the target by much...
  EXPECT_LT(realized, target_kbps * 1.4);
  // ...and undershoots only when the content is already coded near-lossless
  // (at 128x96 this feed saturates around ~400 Kbps; larger targets cannot
  // be "used up", exactly like a real encoder at its quality ceiling).
  if (realized < target_kbps * 0.6) {
    EXPECT_GT(media::qoe::psnr(last, enc.last_reconstructed()), 42.0);
  }
}

TEST_P(CodecRateSweep, DecoderAlwaysMatchesEncoderReconstruction) {
  const double target_kbps = GetParam();
  media::TourGuideFeed feed{{64, 64, 10.0, 13}};
  media::VideoEncoder enc{64, 64, {.target_bitrate = DataRate::kbps(target_kbps), .fps = 10.0}};
  media::VideoDecoder dec{64, 64};
  for (int i = 0; i < 8; ++i) {
    const auto f = enc.encode(feed.frame_at(i));
    EXPECT_EQ(dec.decode(*f), enc.last_reconstructed());
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, CodecRateSweep,
                         ::testing::Values(100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0));

// ------------------------------------------------------- quality monotone

class CodecQualitySweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CodecQualitySweep, MoreBitsNeverHurt) {
  const auto [low_kbps, high_kbps] = GetParam();
  media::TalkingHeadFeed feed{{128, 96, 10.0, 17}};
  auto mean_ssim = [&](double kbps) {
    media::VideoEncoder enc{128, 96, {.target_bitrate = DataRate::kbps(kbps), .fps = 10.0}};
    media::VideoDecoder dec{128, 96};
    double acc = 0;
    for (int i = 0; i < 8; ++i) {
      const media::Frame original = feed.frame_at(i);
      dec.decode(*enc.encode(original));
      acc += media::qoe::ssim(original, dec.current());
    }
    return acc / 8;
  };
  EXPECT_LE(mean_ssim(low_kbps), mean_ssim(high_kbps) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Pairs, CodecQualitySweep,
                         ::testing::Values(std::make_pair(80.0, 400.0),
                                           std::make_pair(200.0, 1000.0),
                                           std::make_pair(400.0, 3000.0)));

// ------------------------------------------------------------ shaper sweep

class ShaperConformanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ShaperConformanceSweep, LongRunThroughputBelowRate) {
  const double rate_kbps = GetParam();
  net::EventLoop loop;
  net::TokenBucketShaper shaper{loop, DataRate::kbps(rate_kbps), 8'000, 64};
  std::int64_t delivered_bytes = 0;
  SimTime last_delivery{};
  // Offer 3x the configured rate for 10 seconds.
  const std::int64_t offered_per_100ms =
      DataRate::kbps(rate_kbps * 3).bytes_in(millis(100));
  for (int tick = 0; tick < 100; ++tick) {
    loop.schedule_at(SimTime{tick * 100'000}, [&, tick] {
      std::int64_t remaining = offered_per_100ms;
      while (remaining > 0) {
        net::Packet p;
        p.l7_len = std::min<std::int64_t>(remaining, 1172);
        remaining -= p.l7_len + 28;
        shaper.submit(std::move(p), [&](net::Packet q) {
          delivered_bytes += q.wire_len();
          last_delivery = loop.now();
        });
      }
    });
  }
  loop.run();
  const double seconds_elapsed = std::max(last_delivery.seconds(), 10.0);
  const double throughput_kbps = delivered_bytes * 8.0 / seconds_elapsed / 1000.0;
  EXPECT_LE(throughput_kbps, rate_kbps * 1.10);   // never above the cap
  EXPECT_GE(throughput_kbps, rate_kbps * 0.80);   // but fully utilized
  EXPECT_GT(shaper.stats().dropped_packets, 0);   // overload did drop
}

INSTANTIATE_TEST_SUITE_P(Rates, ShaperConformanceSweep,
                         ::testing::Values(250.0, 500.0, 1000.0, 2000.0, 5000.0));

// --------------------------------------------------------------- CDF sweep

class CdfPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfPropertySweep, QuantileAndCdfAreInverse) {
  Rng rng{GetParam()};
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.lognormal(2.0, 0.8));
  EmpiricalCdf cdf{samples};
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double x = cdf.inverse(q);
    // P(X <= inverse(q)) must be at least q (within one sample's mass).
    EXPECT_GE(cdf.at(x) + 1.0 / 500.0, q);
  }
  // Quantiles are monotone.
  double prev = cdf.inverse(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double x = cdf.inverse(q);
    EXPECT_GE(x, prev);
    prev = x;
  }
}

TEST_P(CdfPropertySweep, BoxplotOrderingInvariant) {
  Rng rng{GetParam() ^ 0xB0B};
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(rng.normal(50.0, 15.0));
  const BoxplotSummary b = boxplot(samples);
  EXPECT_LE(b.whisker_lo, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.whisker_hi);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfPropertySweep, ::testing::Values(1u, 7u, 42u, 1337u));

// --------------------------------------------------------- metric identity

class MetricIdentitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricIdentitySweep, SelfComparisonIsPerfect) {
  media::TourGuideFeed feed{{64, 64, 10.0, GetParam()}};
  const media::Frame f = feed.frame_at(static_cast<std::int64_t>(GetParam() % 20));
  EXPECT_DOUBLE_EQ(media::qoe::psnr(f, f), 100.0);
  EXPECT_NEAR(media::qoe::ssim(f, f), 1.0, 1e-9);
  EXPECT_NEAR(media::qoe::vifp(f, f), 1.0, 1e-6);
}

TEST_P(MetricIdentitySweep, MetricsAreSymmetricInNoiseDirection) {
  // Adding +d or -d uniformly must yield identical PSNR.
  media::TourGuideFeed feed{{64, 64, 10.0, GetParam()}};
  media::Frame f = feed.frame_at(0);
  // Keep away from clipping.
  for (std::size_t i = 0; i < f.size(); ++i) {
    f.data()[i] = static_cast<std::uint8_t>(64 + (f.data()[i] % 128));
  }
  media::Frame up = f;
  media::Frame down = f;
  for (std::size_t i = 0; i < f.size(); ++i) {
    up.data()[i] = static_cast<std::uint8_t>(up.data()[i] + 5);
    down.data()[i] = static_cast<std::uint8_t>(down.data()[i] - 5);
  }
  EXPECT_DOUBLE_EQ(media::qoe::psnr(f, up), media::qoe::psnr(f, down));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricIdentitySweep, ::testing::Values(3u, 9u, 27u, 81u));

}  // namespace
}  // namespace vc
