#include <gtest/gtest.h>

#include "common/stats.h"
#include "mobile/cpu_model.h"
#include "mobile/device.h"
#include "mobile/power_model.h"

namespace vc::mobile {
namespace {

WorkloadState typical_hm(double mbps) {
  WorkloadState w;
  w.download_mbps = mbps;
  w.screen_on = true;
  return w;
}

TEST(Devices, ProfilesMatchTable2) {
  EXPECT_EQ(galaxy_s10().cores, 8);
  EXPECT_EQ(galaxy_j3().cores, 4);
  EXPECT_DOUBLE_EQ(galaxy_j3().battery_mah, 2600.0);
  EXPECT_GT(galaxy_s10().camera_mp, galaxy_j3().camera_mp);
  EXPECT_EQ(galaxy_s10().device_class, platform::DeviceClass::kMobileHighEnd);
  EXPECT_EQ(galaxy_j3().device_class, platform::DeviceClass::kMobileLowEnd);
}

TEST(Scenarios, SettingsMapping) {
  EXPECT_TRUE(scenario_settings(MobileScenario::kHM).high_motion);
  EXPECT_FALSE(scenario_settings(MobileScenario::kLM).high_motion);
  EXPECT_EQ(scenario_settings(MobileScenario::kLMView).view, platform::ViewMode::kGallery);
  EXPECT_TRUE(scenario_settings(MobileScenario::kLMVideoView).camera_on);
  EXPECT_FALSE(scenario_settings(MobileScenario::kLMOff).screen_on);
  EXPECT_EQ(scenario_name(MobileScenario::kLMVideoView), "LM-Video-View");
}

TEST(CpuModel, MeetHeaviestOnHighEnd) {
  // Fig 19a: on the S10, Meet adds ~50% over Zoom/Webex.
  const CpuModel zoom{platform::PlatformId::kZoom, galaxy_s10(), 1};
  const CpuModel webex{platform::PlatformId::kWebex, galaxy_s10(), 1};
  const CpuModel meet{platform::PlatformId::kMeet, galaxy_s10(), 1};
  const double z = zoom.expected(typical_hm(0.75));
  const double w = webex.expected(typical_hm(1.76));
  const double m = meet.expected(typical_hm(2.1));
  EXPECT_NEAR(z, 160, 30);
  EXPECT_NEAR(w, 180, 30);
  EXPECT_GT(m, z + 35);
  EXPECT_GT(m, w + 30);
}

TEST(CpuModel, J3SaturatesNearTwoCores) {
  // Fig 19a: on the J3 all three clients converge around 200%.
  for (const auto id :
       {platform::PlatformId::kZoom, platform::PlatformId::kWebex, platform::PlatformId::kMeet}) {
    const CpuModel model{id, galaxy_j3(), 1};
    const double rate = id == platform::PlatformId::kMeet ? 2.1
                        : id == platform::PlatformId::kWebex ? 0.88
                                                             : 0.75;
    const double cpu = model.expected(typical_hm(rate));
    EXPECT_GT(cpu, 150.0) << platform_name(id);
    EXPECT_LT(cpu, 240.0) << platform_name(id);
  }
}

TEST(CpuModel, CameraAddsEncodeCost) {
  const CpuModel model{platform::PlatformId::kZoom, galaxy_s10(), 1};
  WorkloadState base = typical_hm(0.75);
  WorkloadState with_cam = base;
  with_cam.camera_on = true;
  with_cam.upload_mbps = 1.2;
  // S10's 10 MP camera: ~+100% (Section 5).
  EXPECT_NEAR(model.expected(with_cam) - model.expected(base), 100.0, 35.0);
}

TEST(CpuModel, ScreenOffCollapsesExceptWebex) {
  WorkloadState off;
  off.screen_on = false;
  off.download_mbps = 0.1;
  const CpuModel zoom{platform::PlatformId::kZoom, galaxy_s10(), 1};
  const CpuModel meet{platform::PlatformId::kMeet, galaxy_s10(), 1};
  const CpuModel webex{platform::PlatformId::kWebex, galaxy_s10(), 1};
  EXPECT_LT(zoom.expected(off), 55.0);
  EXPECT_LT(meet.expected(off), 55.0);
  // Webex keeps working with the screen off (Section 5's inefficiency).
  WorkloadState webex_off = off;
  webex_off.download_mbps = 1.76;  // it also keeps the stream flowing
  EXPECT_GT(webex.expected(webex_off), 100.0);
}

TEST(CpuModel, WebexGalleryCostsMore) {
  const CpuModel webex{platform::PlatformId::kWebex, galaxy_s10(), 1};
  WorkloadState full = typical_hm(0.6);
  WorkloadState gallery = full;
  gallery.view = platform::ViewMode::kGallery;
  gallery.visible_tiles = 4;
  EXPECT_GT(webex.expected(gallery), webex.expected(full));
}

TEST(CpuModel, SamplesAreNoisyButCentered) {
  CpuModel model{platform::PlatformId::kZoom, galaxy_s10(), 42};
  const WorkloadState w = typical_hm(0.75);
  RunningStats stats;
  for (int i = 0; i < 500; ++i) stats.add(model.sample(w));
  EXPECT_NEAR(stats.mean(), model.expected(w), model.expected(w) * 0.05);
  EXPECT_GT(stats.stddev(), 1.0);
  EXPECT_LE(stats.max(), 800.0);  // never beyond 8 cores
}

TEST(PowerModel, ComponentsAddUp) {
  const PowerModel model;
  WorkloadState w = typical_hm(0.75);
  const double on = model.current_ma(200, w);
  w.screen_on = false;
  const double off = model.current_ma(200, w);
  EXPECT_NEAR(on - off, model.coefficients().screen_ma, 1e-9);
  WorkloadState cam = typical_hm(0.75);
  cam.camera_on = true;
  EXPECT_GT(model.current_ma(200, cam), on);
}

TEST(PowerModel, PaperScaleBatteryNumbers) {
  // Fig 19c: ~1 hour of videoconferencing drains up to ~40% of the J3 with
  // the camera on, and audio-only roughly halves the video drain.
  const PowerModel model;
  const CpuModel cpu{platform::PlatformId::kZoom, galaxy_j3(), 1};

  WorkloadState video = typical_hm(0.75);
  WorkloadState camera = video;
  camera.camera_on = true;
  camera.upload_mbps = 0.7;
  camera.view = platform::ViewMode::kGallery;
  WorkloadState off;
  off.screen_on = false;
  off.download_mbps = 0.1;

  auto pct_per_hour = [&](const WorkloadState& w) {
    PowerMeter meter{galaxy_j3()};
    meter.add_sample(model.current_ma(cpu.expected(w), w), seconds(3600));
    return meter.battery_pct_per_hour();
  };
  const double video_drain = pct_per_hour(video);
  const double camera_drain = pct_per_hour(camera);
  const double off_drain = pct_per_hour(off);
  EXPECT_GT(video_drain, 25.0);
  EXPECT_LT(video_drain, 45.0);
  EXPECT_GT(camera_drain, video_drain);
  EXPECT_LT(camera_drain, 50.0);
  EXPECT_LT(off_drain, 0.6 * video_drain);
}

TEST(PowerMeter, IntegratesOverTime) {
  PowerMeter meter{galaxy_j3()};
  meter.add_sample(520.0, seconds(1800));  // half an hour at 520 mA
  EXPECT_NEAR(meter.consumed_mah(), 260.0, 1e-6);
  EXPECT_NEAR(meter.battery_pct_per_hour(), 20.0, 1e-6);
}

TEST(PowerMeter, EmptyIsZero) {
  const PowerMeter meter{galaxy_s10()};
  EXPECT_DOUBLE_EQ(meter.battery_pct_per_hour(), 0.0);
}

}  // namespace
}  // namespace vc::mobile
