#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/mobile_benchmark.h"
#include "runner/experiment_runner.h"

namespace vc::runner {
namespace {

TEST(MetricsRegistry, CountersGaugesHistograms) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("pkts").inc();
  reg.counter("pkts").add(4);
  reg.gauge("backlog").set(7.5);
  reg.histogram("delay").observe(1.0);
  reg.histogram("delay").observe(3.0);

  EXPECT_EQ(reg.counter("pkts").value(), 5);
  EXPECT_DOUBLE_EQ(reg.gauge("backlog").value(), 7.5);
  EXPECT_EQ(reg.histogram("delay").stats().count(), 2u);
  EXPECT_DOUBLE_EQ(reg.histogram("delay").stats().mean(), 2.0);
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, ReferencesStayValidAcrossInsertions) {
  MetricsRegistry reg;
  auto& first = reg.counter("a");
  for (int i = 0; i < 100; ++i) reg.counter("name" + std::to_string(i));
  first.inc();
  EXPECT_EQ(reg.counter("a").value(), 1);
}

TEST(ExperimentRunner, SeedsArePerTaskStreams) {
  ExperimentRunner::Config cfg;
  cfg.threads = 1;
  cfg.base_seed = 0xABCD;
  const auto report = ExperimentRunner{cfg}.run(4, [](SessionContext& ctx) {
    EXPECT_EQ(ctx.seed, 0xABCDull ^ ctx.task_index);
    ctx.sample("seed_lo", static_cast<double>(ctx.seed & 0xF));
  });
  EXPECT_EQ(report.sessions, 4u);
  EXPECT_EQ(report.samples.at("seed_lo").count(), 4u);
}

TEST(ExperimentRunner, AggregatesMergeAcrossSessions) {
  ExperimentRunner::Config cfg;
  cfg.threads = 2;
  const auto report = ExperimentRunner{cfg}.run(8, [](SessionContext& ctx) {
    ctx.sample("value", static_cast<double>(ctx.task_index));
    ctx.metrics.counter("events").add(10);
    ctx.metrics.gauge("level").set(static_cast<double>(ctx.task_index) * 2.0);
    ctx.metrics.histogram("obs").observe(1.0);
  });
  EXPECT_EQ(report.samples.at("value").count(), 8u);
  EXPECT_DOUBLE_EQ(report.samples.at("value").mean(), 3.5);
  EXPECT_EQ(report.counters.at("events"), 80);
  EXPECT_DOUBLE_EQ(report.gauges.at("level").max(), 14.0);
  EXPECT_EQ(report.histograms.at("obs").count(), 8u);
}

TEST(ExperimentRunner, FailedTasksAreReportedAndExcluded) {
  ExperimentRunner::Config cfg;
  cfg.threads = 2;
  const auto report = ExperimentRunner{cfg}.run(6, [](SessionContext& ctx) {
    if (ctx.task_index % 3 == 1) throw std::runtime_error{"boom"};
    ctx.sample("ok", 1.0);
  });
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_EQ(report.failures[0].first, 1u);
  EXPECT_EQ(report.failures[1].first, 4u);
  EXPECT_EQ(report.failures[0].second, "boom");
  EXPECT_EQ(report.samples.at("ok").count(), 4u);
}

// The heart of the runner's contract: floating-point aggregates come out
// bit-identical regardless of how many threads executed the tasks, because
// per-task results are deterministic and the reduction happens in task-index
// order. The task mixes wildly different magnitudes so that any
// order-dependent summation would perturb low-order bits.
TEST(ExperimentRunner, AggregateJsonIsThreadCountInvariant) {
  const auto task = [](SessionContext& ctx) {
    Rng rng{ctx.seed};
    RunningStats local;
    for (int i = 0; i < 1000; ++i) local.add(rng.lognormal(0.0, 4.0));
    ctx.sample("lognormal_mean", local.mean());
    ctx.sample("lognormal_max", local.max());
    ctx.metrics.histogram("draws").observe(local.sum());
    ctx.metrics.counter("n").add(1000);
  };
  std::string baseline;
  for (const std::size_t threads : {1, 2, 8}) {
    ExperimentRunner::Config cfg;
    cfg.threads = threads;
    cfg.base_seed = 77;
    cfg.label = "determinism";
    const auto report = ExperimentRunner{cfg}.run(16, task);
    if (baseline.empty()) {
      baseline = report.aggregate_json();
    } else {
      EXPECT_EQ(report.aggregate_json(), baseline) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(baseline.empty());
}

// Same invariant exercised end-to-end through real simulated sessions (the
// Table 4 scale scenario, shrunk): each task builds its own testbed, network
// and platform world from its per-task seed.
TEST(ExperimentRunner, SimSessionAggregatesAreThreadCountInvariant) {
  const auto task = [](SessionContext& ctx) {
    core::ScaleBenchmarkConfig cfg;
    cfg.platform = platform::PlatformId::kZoom;
    cfg.n_total = 3;
    cfg.duration = seconds(4);
    const auto s = core::run_scale_session(cfg, ctx.seed);
    ctx.sample("s10_rate_mbps", s.s10_rate_mbps);
    ctx.sample("j3_rate_mbps", s.j3_rate_mbps);
  };
  std::string baseline;
  for (const std::size_t threads : {1, 2, 8}) {
    ExperimentRunner::Config cfg;
    cfg.threads = threads;
    cfg.base_seed = 901;
    cfg.label = "table4-mini";
    const auto report = ExperimentRunner{cfg}.run(4, task);
    EXPECT_TRUE(report.failures.empty());
    if (baseline.empty()) {
      baseline = report.aggregate_json();
    } else {
      EXPECT_EQ(report.aggregate_json(), baseline) << "threads=" << threads;
    }
  }
  EXPECT_NE(baseline.find("s10_rate_mbps"), std::string::npos);
}

TEST(RunReport, JsonAndCsvShapes) {
  ExperimentRunner::Config cfg;
  cfg.threads = 1;
  cfg.label = "shape";
  const auto report = ExperimentRunner{cfg}.run(2, [](SessionContext& ctx) {
    ctx.sample("x", 1.0 + static_cast<double>(ctx.task_index));
    ctx.metrics.counter("c").inc();
  });
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"label\":\"shape\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"c\":2"), std::string::npos);
  // Timing/thread metadata must stay out of the comparable aggregate.
  EXPECT_EQ(report.aggregate_json().find("wall_seconds"), std::string::npos);

  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("kind,name,count,mean,stddev,min,max,sum"), std::string::npos);
  EXPECT_NE(csv.find("sample,x,2,"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,1,,,,,2"), std::string::npos);

  ASSERT_NE(report.find_sample("x"), nullptr);
  EXPECT_DOUBLE_EQ(report.find_sample("x")->mean(), 1.5);
  EXPECT_EQ(report.find_sample("missing"), nullptr);
}

}  // namespace
}  // namespace vc::runner
