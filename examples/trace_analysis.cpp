// Offline trace analysis: run one instrumented session, dump the captures to
// .vctr files (the tcpdump-analog), then re-load them and run the full
// offline pipeline — flow table, endpoint discovery, rate analysis, and lag
// extraction — exactly the way the paper's offline analysis consumes pcaps.
//
//   ./trace_analysis [output_dir]
#include <cstdio>
#include <string>

#include "capture/endpoint_discovery.h"
#include "capture/flow.h"
#include "capture/lag_detector.h"
#include "capture/rate_analyzer.h"
#include "capture/trace_io.h"
#include "client/media_feeder.h"
#include "client/vca_client.h"
#include "common/stats.h"
#include "common/table.h"
#include "media/feeds.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

int main(int argc, char** argv) {
  using namespace vc;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";

  // ---- live phase: one Zoom session, host US-East -> receiver US-West ----
  testbed::CloudTestbed bed{2024};
  auto zoom = platform::make_platform(platform::PlatformId::kZoom, bed.network());
  net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 0);
  net::Host& rx_vm = bed.create_vm(testbed::site_by_name("US-West"), 0);
  net::Host& rx2_vm = bed.create_vm(testbed::site_by_name("US-Central"), 0);

  client::VcaClient::Config host_cfg;
  host_cfg.send_audio = false;
  host_cfg.decode_video = false;
  host_cfg.video_width = 128;
  host_cfg.video_height = 96;
  host_cfg.fps = 10.0;
  client::VcaClient host{host_vm, *zoom, host_cfg};
  client::VcaClient::Config rx_cfg = host_cfg;
  rx_cfg.send_video = false;
  client::VcaClient rx{rx_vm, *zoom, rx_cfg};
  client::VcaClient rx2{rx2_vm, *zoom, rx_cfg};
  client::MediaFeeder feeder{bed.loop(), host.video_device(), host.audio_device()};
  capture::PacketCapture host_cap{host_vm, bed.clock_offset(host_vm)};
  capture::PacketCapture rx_cap{rx_vm, bed.clock_offset(rx_vm)};

  auto feed = std::make_shared<media::FlashFeed>(media::FeedParams{128, 96, 10.0, 7});
  testbed::SessionOrchestrator::Plan plan;
  plan.host = &host;
  plan.participants = {&rx, &rx2};
  plan.media_duration = seconds(30);
  plan.on_all_joined = [&] { feeder.play_video(feed, seconds(30)); };
  testbed::SessionOrchestrator orchestrator{std::move(plan)};
  orchestrator.start();
  bed.run_all();

  const std::string host_path = dir + "/host.vctr";
  const std::string rx_path = dir + "/receiver.vctr";
  capture::write_trace_file(host_path, host_cap.trace());
  capture::write_trace_file(rx_path, rx_cap.trace());
  std::printf("wrote %s (%zu records) and %s (%zu records)\n\n", host_path.c_str(),
              host_cap.size(), rx_path.c_str(), rx_cap.size());

  // ---- offline phase: everything below uses only the trace files ----
  const capture::Trace host_trace = capture::read_trace_file(host_path);
  const capture::Trace rx_trace = capture::read_trace_file(rx_path);

  std::printf("flows seen by %s:\n", rx_trace.host_name.c_str());
  TextTable flows{{"remote endpoint", "pkts in/out", "L7 KB in/out", "duration (s)"}};
  for (const auto& [key, stats] : capture::FlowTable{rx_trace}.by_volume()) {
    flows.add_row({key.remote.to_string(),
                   std::to_string(stats.packets_in) + "/" + std::to_string(stats.packets_out),
                   TextTable::num(stats.l7_bytes_in / 1000.0, 1) + "/" +
                       TextTable::num(stats.l7_bytes_out / 1000.0, 1),
                   TextTable::num(stats.duration().seconds(), 1)});
  }
  std::printf("%s\n", flows.render().c_str());

  const auto endpoints = capture::discover_endpoints(rx_trace);
  if (!endpoints.empty()) {
    std::printf("discovered streaming endpoint: %s (UDP/%u is Zoom's designated port)\n",
                endpoints.front().endpoint.to_string().c_str(),
                endpoints.front().endpoint.port);
  }

  const capture::RateAnalyzer rates{rx_trace};
  const auto rep = rates.average();
  std::printf("receiver L7 rates: down %s, up %s\n", rep.download.to_string().c_str(),
              rep.upload.to_string().c_str());

  const auto lags = capture::measure_streaming_lag_ms(host_trace, rx_trace);
  if (!lags.empty()) {
    std::printf("flash lags: %zu samples, median %.1f ms (US-East -> US-West via relay)\n",
                lags.size(), median(std::vector<double>(lags)));
  }
  return 0;
}
