// Mobile profiler: what a one-hour call costs a phone — CPU, data volume,
// and battery — per platform and device/UI scenario (Section 5).
//
//   ./mobile_profile [zoom|webex|meet]
#include <cstdio>
#include <string>

#include "common/table.h"
#include "core/vcbench.h"

int main(int argc, char** argv) {
  using namespace vc;
  const std::string arg = argc > 1 ? argv[1] : "zoom";
  platform::PlatformId id = platform::PlatformId::kZoom;
  if (arg == "webex") id = platform::PlatformId::kWebex;
  if (arg == "meet") id = platform::PlatformId::kMeet;

  std::printf("mobile cost profile: %s (S10 high-end / J3 low-end, residential WiFi)\n\n",
              std::string(platform_name(id)).c_str());
  TextTable table{{"scenario", "S10 CPU med (%)", "J3 CPU med (%)", "GB/hour (S10)",
                   "battery %/h (J3)", "hours on a full J3 charge"}};
  for (const auto scenario :
       {mobile::MobileScenario::kLM, mobile::MobileScenario::kHM, mobile::MobileScenario::kLMView,
        mobile::MobileScenario::kLMVideoView, mobile::MobileScenario::kLMOff}) {
    core::MobileBenchmarkConfig cfg;
    cfg.platform = id;
    cfg.scenario = scenario;
    cfg.repetitions = 2;
    cfg.duration = seconds(45);
    const auto r = core::run_mobile_benchmark(cfg);
    const double gb_per_hour = r.s10.download_kbps.mean() * 3600.0 / 8.0 / 1e6;
    const double drain = r.j3.battery_pct_per_hour.mean();
    table.add_row({std::string(scenario_name(scenario)), TextTable::num(r.s10.cpu.median, 0),
                   TextTable::num(r.j3.cpu.median, 0), TextTable::num(gb_per_hour, 2),
                   TextTable::num(drain, 1),
                   drain > 0 ? TextTable::num(100.0 / drain, 1) : "-"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("tip: screen-off audio-only roughly halves the battery drain (Finding 5).\n");
  return 0;
}
