// vcbench CLI: run any of the library's experiments from the command line
// and optionally export results as CSV for plotting.
//
//   vcbench_cli lag    --platform zoom --host US-East [--sessions 5] [--csv out.csv]
//   vcbench_cli qoe    --platform meet --receivers 3 --motion high [--csv out.csv]
//   vcbench_cli bwcap  --platform webex --cap-kbps 500 [--csv out.csv]
//   vcbench_cli mobile --platform zoom --scenario LM-View
//   vcbench_cli dump   --trace file.vctr [--max 50]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "capture/trace_dump.h"
#include "capture/trace_io.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/vcbench.h"

namespace {

using namespace vc;

std::map<std::string, std::string> parse_flags(int argc, char** argv, int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = "1";
    }
  }
  return flags;
}

platform::PlatformId parse_platform(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("platform");
  const std::string name = it == flags.end() ? "zoom" : it->second;
  if (name == "webex") return platform::PlatformId::kWebex;
  if (name == "meet") return platform::PlatformId::kMeet;
  return platform::PlatformId::kZoom;
}

int flag_int(const std::map<std::string, std::string>& flags, const std::string& key,
             int fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atoi(it->second.c_str());
}

std::string flag_str(const std::map<std::string, std::string>& flags, const std::string& key,
                     const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int run_lag(const std::map<std::string, std::string>& flags) {
  core::LagBenchmarkConfig cfg;
  cfg.platform = parse_platform(flags);
  cfg.host_site = flag_str(flags, "host", "US-East");
  cfg.participant_sites = cfg.host_site == "CH" || cfg.host_site == "UK-West"
                              ? core::europe_participant_sites(cfg.host_site)
                              : core::us_participant_sites(cfg.host_site);
  cfg.sessions = flag_int(flags, "sessions", 5);
  cfg.session_duration = seconds(flag_int(flags, "duration", 40));
  if (flags.contains("paid")) cfg.webex_tier = platform::WebexTier::kPaid;
  const auto result = core::run_lag_benchmark(cfg);

  TextTable table{{"participant", "p50 lag (ms)", "p90 lag (ms)", "p50 RTT (ms)", "endpoints"}};
  for (const auto& p : result.participants) {
    table.add_row(
        {p.label, p.lags_ms.empty() ? "-" : TextTable::num(median(std::vector<double>(p.lags_ms)), 1),
         p.lags_ms.empty() ? "-" : TextTable::num(quantile(std::vector<double>(p.lags_ms), 0.9), 1),
         p.session_rtt_ms.empty()
             ? "-"
             : TextTable::num(median(std::vector<double>(p.session_rtt_ms)), 1),
         std::to_string(p.distinct_endpoints)});
  }
  std::printf("%s", table.render().c_str());

  if (flags.contains("csv")) {
    std::ofstream out{flags.at("csv")};
    CsvWriter csv{out};
    csv.row({"participant", "lag_ms"});
    for (const auto& p : result.participants) {
      for (double lag : p.lags_ms) csv.row({p.label, CsvWriter::num(lag)});
    }
    std::printf("wrote %zu CSV rows to %s\n", csv.rows_written(), flags.at("csv").c_str());
  }
  return 0;
}

int run_qoe(const std::map<std::string, std::string>& flags) {
  core::QoeBenchmarkConfig cfg;
  cfg.platform = parse_platform(flags);
  cfg.motion = flag_str(flags, "motion", "low") == "high" ? platform::MotionClass::kHighMotion
                                                          : platform::MotionClass::kLowMotion;
  cfg.receiver_sites = core::us_qoe_receiver_sites(flag_int(flags, "receivers", 2));
  cfg.sessions = flag_int(flags, "sessions", 1);
  cfg.media_duration = seconds(flag_int(flags, "duration", 12));
  const auto r = core::run_qoe_benchmark(cfg);
  std::printf("PSNR %.1f dB  SSIM %.3f  VIFp %.3f  delivery %.2f\n", r.psnr.mean(), r.ssim.mean(),
              r.vifp.mean(), r.delivery_ratio.mean());
  std::printf("host upload %.0f Kbps, receiver download %.0f Kbps\n", r.upload_kbps.mean(),
              r.download_kbps.mean());
  if (flags.contains("csv")) {
    std::ofstream out{flags.at("csv")};
    CsvWriter csv{out};
    csv.row({"metric", "mean", "stddev"});
    csv.row({"psnr", CsvWriter::num(r.psnr.mean()), CsvWriter::num(r.psnr.stddev())});
    csv.row({"ssim", CsvWriter::num(r.ssim.mean()), CsvWriter::num(r.ssim.stddev())});
    csv.row({"vifp", CsvWriter::num(r.vifp.mean()), CsvWriter::num(r.vifp.stddev())});
    csv.row({"upload_kbps", CsvWriter::num(r.upload_kbps.mean()),
             CsvWriter::num(r.upload_kbps.stddev())});
    csv.row({"download_kbps", CsvWriter::num(r.download_kbps.mean()),
             CsvWriter::num(r.download_kbps.stddev())});
  }
  return 0;
}

int run_bwcap(const std::map<std::string, std::string>& flags) {
  core::BwCapBenchmarkConfig cfg;
  cfg.platform = parse_platform(flags);
  const int cap = flag_int(flags, "cap-kbps", 0);
  cfg.cap = cap > 0 ? DataRate::kbps(cap) : DataRate::unlimited();
  cfg.sessions = flag_int(flags, "sessions", 1);
  cfg.media_duration = seconds(flag_int(flags, "duration", 12));
  const auto r = core::run_bwcap_benchmark(cfg);
  std::printf("cap %s: PSNR %.1f dB  SSIM %.3f  MOS-LQO %.2f  delivery %.2f  drops %.1f%%\n",
              cfg.cap.to_string().c_str(), r.psnr.mean(), r.ssim.mean(), r.mos_lqo.mean(),
              r.delivery_ratio.mean(), 100.0 * r.drop_fraction.mean());
  return 0;
}

int run_mobile(const std::map<std::string, std::string>& flags) {
  core::MobileBenchmarkConfig cfg;
  cfg.platform = parse_platform(flags);
  const std::string scenario = flag_str(flags, "scenario", "LM");
  using S = mobile::MobileScenario;
  cfg.scenario = scenario == "HM"              ? S::kHM
                 : scenario == "LM-View"       ? S::kLMView
                 : scenario == "LM-Video-View" ? S::kLMVideoView
                 : scenario == "LM-Off"        ? S::kLMOff
                                               : S::kLM;
  cfg.repetitions = flag_int(flags, "repetitions", 2);
  cfg.duration = seconds(flag_int(flags, "duration", 45));
  const auto r = core::run_mobile_benchmark(cfg);
  std::printf("%s / %s:\n", std::string(platform_name(cfg.platform)).c_str(),
              std::string(scenario_name(cfg.scenario)).c_str());
  std::printf("  S10: CPU median %.0f%%, download %.0f Kbps\n", r.s10.cpu.median,
              r.s10.download_kbps.mean());
  std::printf("  J3:  CPU median %.0f%%, download %.0f Kbps, battery %.1f %%/h\n",
              r.j3.cpu.median, r.j3.download_kbps.mean(), r.j3.battery_pct_per_hour.mean());
  return 0;
}

int run_dump(const std::map<std::string, std::string>& flags) {
  const std::string path = flag_str(flags, "trace", "");
  if (path.empty()) {
    std::fprintf(stderr, "dump requires --trace <file.vctr>\n");
    return 2;
  }
  const auto trace = capture::read_trace_file(path);
  std::printf("%s\n", capture::summarize_trace(trace).c_str());
  capture::DumpOptions options;
  options.max_records = static_cast<std::size_t>(flag_int(flags, "max", 50));
  std::printf("%s", capture::dump_trace_to_string(trace, options).c_str());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: vcbench_cli <lag|qoe|bwcap|mobile|dump> [--platform zoom|webex|meet]\n"
               "  lag    --host SITE [--sessions N] [--duration S] [--paid] [--csv FILE]\n"
               "  qoe    --receivers N --motion low|high [--sessions N] [--csv FILE]\n"
               "  bwcap  --cap-kbps K [--sessions N]\n"
               "  mobile --scenario LM|HM|LM-View|LM-Video-View|LM-Off\n"
               "  dump   --trace FILE [--max N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  if (command == "lag") return run_lag(flags);
  if (command == "qoe") return run_qoe(flags);
  if (command == "bwcap") return run_bwcap(flags);
  if (command == "mobile") return run_mobile(flags);
  if (command == "dump") return run_dump(flags);
  usage();
  return 2;
}
