// vcbench CLI: run any of the library's experiments from the command line
// and optionally export results as CSV for plotting.
//
//   vcbench_cli lag    --platform zoom --host US-East [--sessions 5] [--csv out.csv]
//   vcbench_cli qoe    --platform meet --receivers 3 --motion high [--csv out.csv]
//   vcbench_cli bwcap  --platform webex --cap-kbps 500 [--csv out.csv]
//   vcbench_cli mobile --platform zoom --scenario LM-View
//   vcbench_cli dump   --trace file.vctr [--max 50]
//   vcbench_cli infer  --trace file.vctr [--platform zoom] [--json]
//   vcbench_cli report run.json [--filter SUBSTR] [--cdf BASE]
//   vcbench_cli trace  0.trace.json [--filter SUBSTR]
//   vcbench_cli profile <trace.json | trace_dir> [--top N] [--chains N]
//   vcbench_cli timeline 0.timeline.json [--metric SUBSTR] [--json]
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "capture/trace_dump.h"
#include "capture/trace_io.h"
#include "cli/report_render.h"
#include "cli/timeline_render.h"
#include "cli/trace_profile.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/vcbench.h"

namespace {

using namespace vc;

std::map<std::string, std::string> parse_flags(int argc, char** argv, int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = "1";
    }
  }
  return flags;
}

platform::PlatformId parse_platform(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("platform");
  const std::string name = it == flags.end() ? "zoom" : it->second;
  if (name == "webex") return platform::PlatformId::kWebex;
  if (name == "meet") return platform::PlatformId::kMeet;
  return platform::PlatformId::kZoom;
}

int flag_int(const std::map<std::string, std::string>& flags, const std::string& key,
             int fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atoi(it->second.c_str());
}

std::string flag_str(const std::map<std::string, std::string>& flags, const std::string& key,
                     const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int run_lag(const std::map<std::string, std::string>& flags) {
  core::LagBenchmarkConfig cfg;
  cfg.platform = parse_platform(flags);
  cfg.host_site = flag_str(flags, "host", "US-East");
  cfg.participant_sites = cfg.host_site == "CH" || cfg.host_site == "UK-West"
                              ? core::europe_participant_sites(cfg.host_site)
                              : core::us_participant_sites(cfg.host_site);
  cfg.sessions = flag_int(flags, "sessions", 5);
  cfg.session_duration = seconds(flag_int(flags, "duration", 40));
  if (flags.contains("paid")) cfg.webex_tier = platform::WebexTier::kPaid;
  const auto result = core::run_lag_benchmark(cfg);

  TextTable table{{"participant", "p50 lag (ms)", "p90 lag (ms)", "p50 RTT (ms)", "endpoints"}};
  for (const auto& p : result.participants) {
    table.add_row(
        {p.label, p.lags_ms.empty() ? "-" : TextTable::num(median(std::vector<double>(p.lags_ms)), 1),
         p.lags_ms.empty() ? "-" : TextTable::num(quantile(std::vector<double>(p.lags_ms), 0.9), 1),
         p.session_rtt_ms.empty()
             ? "-"
             : TextTable::num(median(std::vector<double>(p.session_rtt_ms)), 1),
         std::to_string(p.distinct_endpoints)});
  }
  std::printf("%s", table.render().c_str());

  if (flags.contains("csv")) {
    std::ofstream out{flags.at("csv")};
    CsvWriter csv{out};
    csv.row({"participant", "lag_ms"});
    for (const auto& p : result.participants) {
      for (double lag : p.lags_ms) csv.row({p.label, CsvWriter::num(lag)});
    }
    std::printf("wrote %zu CSV rows to %s\n", csv.rows_written(), flags.at("csv").c_str());
  }
  return 0;
}

int run_qoe(const std::map<std::string, std::string>& flags) {
  core::QoeBenchmarkConfig cfg;
  cfg.platform = parse_platform(flags);
  cfg.motion = flag_str(flags, "motion", "low") == "high" ? platform::MotionClass::kHighMotion
                                                          : platform::MotionClass::kLowMotion;
  cfg.receiver_sites = core::us_qoe_receiver_sites(flag_int(flags, "receivers", 2));
  cfg.sessions = flag_int(flags, "sessions", 1);
  cfg.media_duration = seconds(flag_int(flags, "duration", 12));
  const auto r = core::run_qoe_benchmark(cfg);
  std::printf("PSNR %.1f dB  SSIM %.3f  VIFp %.3f  delivery %.2f\n", r.psnr.mean(), r.ssim.mean(),
              r.vifp.mean(), r.delivery_ratio.mean());
  std::printf("host upload %.0f Kbps, receiver download %.0f Kbps\n", r.upload_kbps.mean(),
              r.download_kbps.mean());
  if (flags.contains("csv")) {
    std::ofstream out{flags.at("csv")};
    CsvWriter csv{out};
    csv.row({"metric", "mean", "stddev"});
    csv.row({"psnr", CsvWriter::num(r.psnr.mean()), CsvWriter::num(r.psnr.stddev())});
    csv.row({"ssim", CsvWriter::num(r.ssim.mean()), CsvWriter::num(r.ssim.stddev())});
    csv.row({"vifp", CsvWriter::num(r.vifp.mean()), CsvWriter::num(r.vifp.stddev())});
    csv.row({"upload_kbps", CsvWriter::num(r.upload_kbps.mean()),
             CsvWriter::num(r.upload_kbps.stddev())});
    csv.row({"download_kbps", CsvWriter::num(r.download_kbps.mean()),
             CsvWriter::num(r.download_kbps.stddev())});
  }
  return 0;
}

int run_bwcap(const std::map<std::string, std::string>& flags) {
  core::BwCapBenchmarkConfig cfg;
  cfg.platform = parse_platform(flags);
  const int cap = flag_int(flags, "cap-kbps", 0);
  cfg.cap = cap > 0 ? DataRate::kbps(cap) : DataRate::unlimited();
  cfg.sessions = flag_int(flags, "sessions", 1);
  cfg.media_duration = seconds(flag_int(flags, "duration", 12));
  const auto r = core::run_bwcap_benchmark(cfg);
  std::printf("cap %s: PSNR %.1f dB  SSIM %.3f  MOS-LQO %.2f  delivery %.2f  drops %.1f%%\n",
              cfg.cap.to_string().c_str(), r.psnr.mean(), r.ssim.mean(), r.mos_lqo.mean(),
              r.delivery_ratio.mean(), 100.0 * r.drop_fraction.mean());
  return 0;
}

int run_mobile(const std::map<std::string, std::string>& flags) {
  core::MobileBenchmarkConfig cfg;
  cfg.platform = parse_platform(flags);
  const std::string scenario = flag_str(flags, "scenario", "LM");
  using S = mobile::MobileScenario;
  cfg.scenario = scenario == "HM"              ? S::kHM
                 : scenario == "LM-View"       ? S::kLMView
                 : scenario == "LM-Video-View" ? S::kLMVideoView
                 : scenario == "LM-Off"        ? S::kLMOff
                                               : S::kLM;
  cfg.repetitions = flag_int(flags, "repetitions", 2);
  cfg.duration = seconds(flag_int(flags, "duration", 45));
  const auto r = core::run_mobile_benchmark(cfg);
  std::printf("%s / %s:\n", std::string(platform_name(cfg.platform)).c_str(),
              std::string(scenario_name(cfg.scenario)).c_str());
  std::printf("  S10: CPU median %.0f%%, download %.0f Kbps\n", r.s10.cpu.median,
              r.s10.download_kbps.mean());
  std::printf("  J3:  CPU median %.0f%%, download %.0f Kbps, battery %.1f %%/h\n",
              r.j3.cpu.median, r.j3.download_kbps.mean(), r.j3.battery_pct_per_hour.mean());
  return 0;
}

// Header-free QoE inference over a saved capture: the estimator sees only
// record timestamps/lengths. `--platform` maps per-window bitrates onto that
// platform's tier ladder; the layering boundary stays intact because the
// ladder is resolved HERE and handed to the capture layer as plain numbers.
int run_infer(const std::map<std::string, std::string>& flags) {
  const std::string path = flag_str(flags, "trace", "");
  if (path.empty()) {
    std::fprintf(stderr, "infer requires --trace <file.vctr>\n");
    return 2;
  }
  const capture::Trace trace = capture::read_trace_file(path);
  capture::QoeInferConfig cfg;
  const int freeze_ms = flag_int(flags, "freeze-ms", 0);
  if (freeze_ms > 0) cfg.freeze_threshold = millis(freeze_ms);
  const int window_ms = flag_int(flags, "window-ms", 0);
  if (window_ms > 0) cfg.window = millis(window_ms);
  const int min_payload = flag_int(flags, "min-payload", 0);
  if (min_payload > 0) cfg.min_video_payload = min_payload;
  if (flags.contains("platform")) {
    for (const abr::Tier& tier : platform::tier_ladder(parse_platform(flags)).tiers) {
      cfg.tier_rates_bps.push_back(tier.rate.bits_per_second());
    }
  }
  const capture::QoeInferencer inferencer{trace, cfg};
  const capture::QoeInferReport report = inferencer.analyze();
  if (flags.contains("json")) {
    std::printf("%s", report.to_json().c_str());
    return 0;
  }
  std::printf("%s: %zu records, %lld video packets in %zu inferred frames\n", path.c_str(),
              trace.records.size(), static_cast<long long>(report.video_packets),
              report.frames.size());
  std::printf("overall: %.2f fps, %.0f Kbps video, median inter-frame %.1f ms, %zu freeze(s)\n",
              report.overall_fps, report.mean_video_kbps, report.median_interframe_ms,
              report.freezes.size());
  TextTable table{{"window start (ms)", "fps", "kbps", "tier"}};
  for (const auto& w : report.windows) {
    table.add_row({TextTable::num(w.start.millis(), 0), TextTable::num(w.fps, 1),
                   TextTable::num(w.video_kbps, 0),
                   w.tier >= 0 ? std::to_string(w.tier) : "-"});
  }
  std::printf("%s", table.render().c_str());
  for (const auto& f : report.freezes) {
    std::printf("freeze: %.0f ms -> %.0f ms (%.1f s)\n", f.start.millis(), f.end.millis(),
                f.duration().seconds());
  }
  return 0;
}

int run_dump(const std::map<std::string, std::string>& flags) {
  const std::string path = flag_str(flags, "trace", "");
  if (path.empty()) {
    std::fprintf(stderr, "dump requires --trace <file.vctr>\n");
    return 2;
  }
  const auto trace = capture::read_trace_file(path);
  std::printf("%s\n", capture::summarize_trace(trace).c_str());
  capture::DumpOptions options;
  options.max_records = static_cast<std::size_t>(flag_int(flags, "max", 50));
  std::printf("%s", capture::dump_trace_to_string(trace, options).c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// report / profile / timeline: thin wrappers over the vc_cli renderers (pure
// text-in/text-out, unit-tested in tests_cli); this file only does the I/O.
// ---------------------------------------------------------------------------

bool read_whole_file(const std::string& path, std::string* out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int emit(const cli::RenderResult& result) {
  if (!result.out.empty()) std::printf("%s", result.out.c_str());
  if (!result.err.empty()) std::fprintf(stderr, "%s", result.err.c_str());
  return result.exit_code;
}

int run_report(const std::string& path, const std::map<std::string, std::string>& flags) {
  std::string text;
  if (!read_whole_file(path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  cli::ReportOptions options;
  options.filter = flag_str(flags, "filter", "");
  options.list = flags.contains("list");
  const auto cdf = flags.find("cdf");
  if (cdf != flags.end()) {
    options.has_cdf = true;
    options.cdf_base = cdf->second;
  }
  return emit(cli::render_report(path, text, options));
}

int run_profile(const std::string& path, const std::map<std::string, std::string>& flags) {
  // A directory aggregates every <task>.trace.json in it (a runner
  // trace_dir); a file profiles just that trace.
  std::vector<std::string> paths;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 11 && name.rfind(".trace.json") == name.size() - 11) {
        paths.push_back(entry.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty()) {
      std::fprintf(stderr, "%s: no *.trace.json files\n", path.c_str());
      return 2;
    }
  } else {
    paths.push_back(path);
  }
  std::vector<cli::TraceInput> traces;
  for (const std::string& p : paths) {
    cli::TraceInput input;
    input.label = p;
    if (!read_whole_file(p, &input.json_text)) {
      std::fprintf(stderr, "cannot read %s\n", p.c_str());
      return 2;
    }
    traces.push_back(std::move(input));
  }
  cli::ProfileOptions options;
  options.top = static_cast<std::size_t>(flag_int(flags, "top", 15));
  options.chains = static_cast<std::size_t>(flag_int(flags, "chains", 3));
  options.filter = flag_str(flags, "filter", "");
  return emit(cli::render_profile(traces, options));
}

int run_timeline(const std::string& path, const std::map<std::string, std::string>& flags) {
  std::string text;
  if (!read_whole_file(path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  cli::TimelineOptions options;
  options.metric = flag_str(flags, "metric", "");
  options.width = flag_int(flags, "width", 60);
  options.json = flags.contains("json");
  return emit(cli::render_timeline(path, text, options));
}

// ---------------------------------------------------------------------------
// trace: per-span-name duration summaries over a Chrome trace-event file (as
// written by vc::Tracer::to_chrome_json()).
// ---------------------------------------------------------------------------

int run_trace_summary(const std::string& path, const std::map<std::string, std::string>& flags) {
  std::string text;
  if (!read_whole_file(path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  json::Value root;
  try {
    root = json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 2;
  }
  const json::Value* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: no traceEvents array\n", path.c_str());
    return 2;
  }
  struct Agg {
    std::size_t count = 0;
    RunningStats dur_us;    // spans only
    RunningStats value;     // args.value of every phase
  };
  // name -> per-phase aggregate, keyed "<name> <ph>"-style via nested map.
  std::map<std::string, std::map<std::string, Agg>> by_name;
  const std::string filter = flag_str(flags, "filter", "");
  for (const auto& ev : events->array_items) {
    if (!ev.is_object()) continue;
    const json::Value* name = ev.find("name");
    const json::Value* ph = ev.find("ph");
    if (name == nullptr || !name->is_string() || ph == nullptr || !ph->is_string()) continue;
    if (!cli::name_matches(name->string_value, filter)) continue;
    Agg& agg = by_name[name->string_value][ph->string_value];
    ++agg.count;
    const json::Value* dur = ev.find("dur");
    if (ph->string_value == "X") {
      agg.dur_us.add(dur != nullptr && dur->is_number() ? dur->number_value : 0.0);
    }
    const json::Value* args = ev.find("args");
    if (args != nullptr && args->is_object()) {
      const json::Value* value = args->find("value");
      if (value != nullptr && value->is_number()) agg.value.add(value->number_value);
    }
  }
  TextTable table{{"name", "ph", "count", "dur mean (us)", "dur min", "dur max", "value mean"}};
  for (const auto& [name, phases] : by_name) {
    for (const auto& [ph, agg] : phases) {
      const bool span = ph == "X";
      table.add_row({name, ph, std::to_string(agg.count),
                     span ? TextTable::num(agg.dur_us.mean(), 1) : "-",
                     span ? TextTable::num(agg.dur_us.min(), 1) : "-",
                     span ? TextTable::num(agg.dur_us.max(), 1) : "-",
                     agg.value.count() > 0 ? TextTable::num(agg.value.mean(), 3) : "-"});
    }
  }
  std::printf("%s", table.render().c_str());
  const json::Value* other = root.find("otherData");
  if (other != nullptr && other->is_object()) {
    const json::Value* dropped = other->find("dropped_records");
    const json::Value* recorded = other->find("recorded");
    if (dropped != nullptr && dropped->is_number()) {
      std::printf("recorded %lld, dropped %lld (ring wrap)\n",
                  recorded != nullptr && recorded->is_number()
                      ? static_cast<long long>(recorded->number_value)
                      : -1,
                  static_cast<long long>(dropped->number_value));
      if (dropped->number_value > 0) {
        std::printf("WARNING: trace ring wrapped — the %lld oldest record(s) are gone; the\n"
                    "         summary above undercounts early-session activity.\n",
                    static_cast<long long>(dropped->number_value));
      }
    }
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: vcbench_cli <lag|qoe|bwcap|mobile|dump|infer|report|trace|profile|timeline>\n"
               "  lag    --host SITE [--sessions N] [--duration S] [--paid] [--csv FILE]\n"
               "  qoe    --receivers N --motion low|high [--sessions N] [--csv FILE]\n"
               "  bwcap  --cap-kbps K [--sessions N]\n"
               "  mobile --scenario LM|HM|LM-View|LM-Video-View|LM-Off\n"
               "  dump   --trace FILE [--max N]\n"
               "  infer  --trace FILE.vctr [--platform P] [--freeze-ms N] [--window-ms N]\n"
               "         [--min-payload B] [--json]   header-free QoE estimate from a capture\n"
               "  report RUN.json [--filter SUBSTR] [--cdf BASE] [--list]\n"
               "         render run-report tables/CDFs; --list enumerates metric keys\n"
               "  trace  FILE.trace.json [--filter SUBSTR]         per-span duration summaries\n"
               "  profile FILE.trace.json|TRACE_DIR [--top N] [--chains N] [--filter SUBSTR]\n"
               "         self/total time per span + busiest event-loop chains\n"
               "  timeline FILE.timeline.json [--metric SUBSTR] [--width N] [--json]\n"
               "         decoded metric series, sparklines, and SLO breach events\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  // Every failure mode — unknown subcommand, missing input file, malformed
  // JSON, bad flag values that make a benchmark throw — reports to stderr
  // and exits non-zero instead of aborting on an uncaught exception.
  try {
    if (command == "report" || command == "trace" || command == "profile" ||
        command == "timeline") {
      // These take a positional input file (or directory) before the flags.
      if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
        usage();
        return 2;
      }
      const std::string path = argv[2];
      const auto flags = parse_flags(argc, argv, 3);
      if (command == "report") return run_report(path, flags);
      if (command == "trace") return run_trace_summary(path, flags);
      if (command == "profile") return run_profile(path, flags);
      return run_timeline(path, flags);
    }
    const auto flags = parse_flags(argc, argv, 2);
    if (command == "lag") return run_lag(flags);
    if (command == "qoe") return run_qoe(flags);
    if (command == "bwcap") return run_bwcap(flags);
    if (command == "mobile") return run_mobile(flags);
    if (command == "dump") return run_dump(flags);
    if (command == "infer") return run_infer(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vcbench_cli %s: %s\n", command.c_str(), e.what());
    return 2;
  }
  std::fprintf(stderr, "vcbench_cli: unknown subcommand '%s'\n", command.c_str());
  usage();
  return 2;
}
