// Quickstart: measure streaming lag and service-endpoint behavior for one
// platform with a miniature version of the paper's Section 4.2 experiment —
// a US-East host flashing a periodic video signal to six US participants.
//
//   ./quickstart [zoom|webex|meet]
#include <cstdio>
#include <string>

#include "common/stats.h"
#include "common/table.h"
#include "core/vcbench.h"

namespace {

vc::platform::PlatformId parse_platform(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "zoom";
  if (arg == "webex") return vc::platform::PlatformId::kWebex;
  if (arg == "meet") return vc::platform::PlatformId::kMeet;
  return vc::platform::PlatformId::kZoom;
}

}  // namespace

int main(int argc, char** argv) {
  const auto platform = parse_platform(argc, argv);

  vc::core::LagBenchmarkConfig cfg;
  cfg.platform = platform;
  cfg.host_site = "US-East";
  cfg.participant_sites = vc::core::us_participant_sites(cfg.host_site);
  cfg.sessions = 3;                      // the paper runs 20
  cfg.session_duration = vc::seconds(40);  // the paper runs 2-minute sessions

  std::printf("vcbench quickstart: %s, host US-East, %d sessions x %.0f s\n\n",
              std::string(vc::platform::platform_name(platform)).c_str(), cfg.sessions,
              cfg.session_duration.seconds());

  const auto result = vc::core::run_lag_benchmark(cfg);

  vc::TextTable table({"participant", "median lag (ms)", "p90 lag (ms)", "mean RTT (ms)",
                       "samples", "endpoints"});
  for (const auto& p : result.participants) {
    const double rtt = p.session_rtt_ms.empty()
                           ? 0.0
                           : vc::median(std::vector<double>(p.session_rtt_ms));
    table.add_row({p.label,
                   p.lags_ms.empty() ? "-" : vc::TextTable::num(vc::median(p.lags_ms), 1),
                   p.lags_ms.empty() ? "-" : vc::TextTable::num(vc::quantile(p.lags_ms, 0.9), 1),
                   vc::TextTable::num(rtt, 1), std::to_string(p.lags_ms.size()),
                   std::to_string(p.distinct_endpoints)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("dominant media port: UDP/%u (Zoom=8801, Webex=9000, Meet=19305)\n",
              result.dominant_media_port);
  std::printf("mean distinct endpoints met per client: %.1f\n", result.mean_distinct_endpoints);
  return 0;
}
