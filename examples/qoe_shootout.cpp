// QoE shootout: compare the three platforms side by side on one scenario —
// a host broadcasting a feed to N receivers — reporting video QoE, audio
// MOS, and data rates. Demonstrates the QoE and bandwidth-cap APIs.
//
//   ./qoe_shootout [N] [low|high] [cap_kbps]
//
// With a cap, runs the two-party bandwidth-constrained variant instead
// (Section 4.4); without, the N-receiver QoE experiment (Section 4.3).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "core/vcbench.h"

int main(int argc, char** argv) {
  using namespace vc;
  const int n = argc > 1 ? std::atoi(argv[1]) : 2;
  const bool high_motion = argc > 2 && std::string(argv[2]) == "high";
  const double cap_kbps = argc > 3 ? std::atof(argv[3]) : 0.0;
  const auto motion =
      high_motion ? platform::MotionClass::kHighMotion : platform::MotionClass::kLowMotion;

  if (cap_kbps > 0) {
    std::printf("two-party call under a %.0f Kbps ingress cap (%s motion)\n\n", cap_kbps,
                high_motion ? "high" : "low");
    TextTable table{{"platform", "PSNR", "SSIM", "VIFp", "MOS-LQO", "delivered", "down Kbps"}};
    for (const auto id :
         {platform::PlatformId::kZoom, platform::PlatformId::kWebex, platform::PlatformId::kMeet}) {
      core::BwCapBenchmarkConfig cfg;
      cfg.platform = id;
      cfg.motion = motion;
      cfg.cap = DataRate::kbps(cap_kbps);
      cfg.sessions = 1;
      cfg.media_duration = seconds(12);
      const auto r = core::run_bwcap_benchmark(cfg);
      table.add_row({std::string(platform_name(id)), TextTable::num(r.psnr.mean(), 1),
                     TextTable::num(r.ssim.mean(), 3), TextTable::num(r.vifp.mean(), 3),
                     TextTable::num(r.mos_lqo.mean(), 2),
                     TextTable::num(r.delivery_ratio.mean(), 2),
                     TextTable::num(r.download_kbps.mean(), 0)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
  }

  std::printf("host US-East broadcasting %s-motion video to %d receiver(s)\n\n",
              high_motion ? "high" : "low", n);
  TextTable table{{"platform", "PSNR", "SSIM", "VIFp", "host up (Kbps)", "down (Kbps)"}};
  for (const auto id :
       {platform::PlatformId::kZoom, platform::PlatformId::kWebex, platform::PlatformId::kMeet}) {
    core::QoeBenchmarkConfig cfg;
    cfg.platform = id;
    cfg.motion = motion;
    cfg.receiver_sites = core::us_qoe_receiver_sites(n);
    cfg.sessions = 1;
    cfg.media_duration = seconds(12);
    const auto r = core::run_qoe_benchmark(cfg);
    table.add_row({std::string(platform_name(id)), TextTable::num(r.psnr.mean(), 1),
                   TextTable::num(r.ssim.mean(), 3), TextTable::num(r.vifp.mean(), 3),
                   TextTable::num(r.upload_kbps.mean(), 0),
                   TextTable::num(r.download_kbps.mean(), 0)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
