#include "capture/timeline.h"

#include <algorithm>

namespace vc::capture {

std::vector<TimelinePoint> timeline_points(const Trace& trace, net::Direction dir) {
  std::vector<TimelinePoint> pts;
  if (trace.records.empty()) return pts;
  const SimTime t0 = trace.records.front().timestamp;
  for (const auto& r : trace.records) {
    if (r.dir != dir) continue;
    pts.push_back(TimelinePoint{(r.timestamp - t0).seconds(), r.l7_len});
  }
  return pts;
}

std::string render_ascii_timeline(const std::vector<TimelinePoint>& points, double t_max_sec,
                                  int columns, std::int64_t big_threshold) {
  if (columns <= 0 || t_max_sec <= 0.0) return {};
  std::vector<char> row(static_cast<std::size_t>(columns), ' ');
  for (const auto& p : points) {
    if (p.t_sec < 0.0 || p.t_sec >= t_max_sec) continue;
    const auto col = static_cast<std::size_t>(p.t_sec / t_max_sec * columns);
    const auto c = std::min(col, row.size() - 1);
    if (p.l7_len > big_threshold) {
      row[c] = '#';
    } else if (row[c] == ' ') {
      row[c] = '.';
    }
  }
  return std::string{row.begin(), row.end()};
}

}  // namespace vc::capture
