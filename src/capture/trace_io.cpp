#include "capture/trace_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace vc::capture {
namespace {

constexpr std::uint32_t kMagic = 0x52544356;  // "VCTR"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, T v) {
  // The simulator only targets little-endian hosts; serialize raw.
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error{"truncated trace stream"};
  return v;
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  put<std::uint32_t>(out, kMagic);
  put<std::uint32_t>(out, kVersion);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.host_name.size()));
  out.write(trace.host_name.data(), static_cast<std::streamsize>(trace.host_name.size()));
  put<std::uint32_t>(out, trace.host_ip.value());
  put<std::int64_t>(out, trace.clock_offset.micros());
  put<std::uint64_t>(out, trace.records.size());
  for (const auto& r : trace.records) {
    put<std::int64_t>(out, r.timestamp.micros());
    put<std::uint8_t>(out, static_cast<std::uint8_t>(r.dir));
    put<std::uint8_t>(out, static_cast<std::uint8_t>(r.protocol));
    put<std::uint32_t>(out, r.src.ip.value());
    put<std::uint16_t>(out, r.src.port);
    put<std::uint32_t>(out, r.dst.ip.value());
    put<std::uint16_t>(out, r.dst.port);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(r.wire_len));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(r.l7_len));
  }
}

Trace read_trace(std::istream& in) {
  if (get<std::uint32_t>(in) != kMagic) throw std::runtime_error{"bad trace magic"};
  if (get<std::uint32_t>(in) != kVersion) throw std::runtime_error{"unsupported trace version"};
  Trace t;
  const auto name_len = get<std::uint32_t>(in);
  if (name_len > 4096) throw std::runtime_error{"implausible host name length"};
  t.host_name.resize(name_len);
  in.read(t.host_name.data(), name_len);
  if (!in) throw std::runtime_error{"truncated trace stream"};
  t.host_ip = net::IpAddr{get<std::uint32_t>(in)};
  t.clock_offset = SimDuration{get<std::int64_t>(in)};
  const auto count = get<std::uint64_t>(in);
  // `count` is attacker-controlled (a corrupt header can claim 2^63 records):
  // never pre-size from it directly, or a 42-byte file could demand exabytes
  // up front. Reserve a bounded hint and let push_back grow past it — a lying
  // count then fails with "truncated trace stream" on the first missing
  // record instead of an allocation failure.
  constexpr std::uint64_t kReserveCap = 1 << 20;
  t.records.reserve(static_cast<std::size_t>(std::min(count, kReserveCap)));
  for (std::uint64_t i = 0; i < count; ++i) {
    CaptureRecord r;
    // Timestamps are stored as-is: records may legitimately be out of order
    // (multi-tap merges, clock steps), and analyzers tolerate that — so the
    // reader does not enforce monotonicity.
    r.timestamp = SimTime{get<std::int64_t>(in)};
    const auto dir = get<std::uint8_t>(in);
    if (dir > 1) throw std::runtime_error{"invalid direction byte"};
    r.dir = static_cast<net::Direction>(dir);
    const auto proto = get<std::uint8_t>(in);
    if (proto > 1) throw std::runtime_error{"invalid protocol byte"};
    r.protocol = static_cast<net::Protocol>(proto);
    r.src.ip = net::IpAddr{get<std::uint32_t>(in)};
    r.src.port = get<std::uint16_t>(in);
    r.dst.ip = net::IpAddr{get<std::uint32_t>(in)};
    r.dst.port = get<std::uint16_t>(in);
    r.wire_len = get<std::uint32_t>(in);
    r.l7_len = get<std::uint32_t>(in);
    t.records.push_back(r);
  }
  return t;
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"cannot open for write: " + path};
  write_trace(out, trace);
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"cannot open for read: " + path};
  return read_trace(in);
}

}  // namespace vc::capture
