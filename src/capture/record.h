// What a packet capture actually sees.
//
// CaptureRecord is the *only* information the measurement pipeline may use:
// timestamp, direction, addresses, protocol and lengths. No payload, no
// sender-side ground truth — the paper's methodology is black-box
// (end-to-end encrypted traffic), and this struct enforces that boundary.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "net/endpoint.h"
#include "net/host.h"

namespace vc::capture {

struct CaptureRecord {
  /// Timestamp in the capturing host's local clock (true time + clock
  /// offset); clock sync quality is part of the methodology (Section 3.1).
  SimTime timestamp{};
  net::Direction dir = net::Direction::kIncoming;
  net::Endpoint src;
  net::Endpoint dst;
  net::Protocol protocol = net::Protocol::kUdp;
  std::int64_t wire_len = 0;
  std::int64_t l7_len = 0;

  /// The far side of the conversation, relative to the capturing host.
  const net::Endpoint& remote() const { return dir == net::Direction::kIncoming ? src : dst; }
  /// The near side (the capturing host's own endpoint).
  const net::Endpoint& local() const { return dir == net::Direction::kIncoming ? dst : src; }
};

}  // namespace vc::capture
