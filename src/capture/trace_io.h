// Binary trace file format (the repo's ".vctr" analog of a pcap file), so
// captures can be dumped on the fly and analyzed offline, exactly as the
// paper's client monitor does with tcpdump.
//
// Layout (little-endian):
//   magic  u32 = 0x52544356 ("VCTR")
//   version u32 = 1
//   name_len u32, name bytes
//   host_ip u32
//   clock_offset_us i64
//   record_count u64
//   records: {ts_us i64, dir u8, proto u8, src_ip u32, src_port u16,
//             dst_ip u32, dst_port u16, wire_len u32, l7_len u32}
#pragma once

#include <iosfwd>
#include <string>

#include "capture/trace.h"

namespace vc::capture {

void write_trace(std::ostream& out, const Trace& trace);
/// Throws std::runtime_error on malformed input: truncation anywhere, bad
/// magic or version, an implausible name length, or invalid direction /
/// protocol bytes. A lying record_count cannot force a huge up-front
/// allocation (the reserve hint is capped); it fails as truncation instead.
/// Out-of-order record timestamps are tolerated by design — multi-tap merges
/// and clock steps produce them, and analyzers handle them.
Trace read_trace(std::istream& in);

void write_trace_file(const std::string& path, const Trace& trace);
Trace read_trace_file(const std::string& path);

}  // namespace vc::capture
