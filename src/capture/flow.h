// Per-remote-endpoint flow accounting over a trace.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "capture/trace.h"

namespace vc::capture {

/// A bidirectional conversation between the capturing host and one remote
/// endpoint over one protocol.
struct FlowKey {
  net::Endpoint remote;
  net::Protocol protocol = net::Protocol::kUdp;

  friend constexpr auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

struct FlowStats {
  std::int64_t packets_in = 0;
  std::int64_t packets_out = 0;
  std::int64_t l7_bytes_in = 0;
  std::int64_t l7_bytes_out = 0;
  std::int64_t wire_bytes_in = 0;
  std::int64_t wire_bytes_out = 0;
  SimTime first{};
  SimTime last{};

  std::int64_t packets() const { return packets_in + packets_out; }
  std::int64_t l7_bytes() const { return l7_bytes_in + l7_bytes_out; }
  SimDuration duration() const { return last - first; }
};

/// Groups trace records into flows keyed by remote endpoint.
class FlowTable {
 public:
  explicit FlowTable(const Trace& trace);

  const std::vector<std::pair<FlowKey, FlowStats>>& flows() const { return flows_; }
  /// Flows sorted by descending total L7 bytes (heaviest first).
  std::vector<std::pair<FlowKey, FlowStats>> by_volume() const;

 private:
  std::vector<std::pair<FlowKey, FlowStats>> flows_;
};

}  // namespace vc::capture

template <>
struct std::hash<vc::capture::FlowKey> {
  std::size_t operator()(const vc::capture::FlowKey& k) const noexcept {
    return std::hash<vc::net::Endpoint>{}(k.remote) * 31 + static_cast<std::size_t>(k.protocol);
  }
};
