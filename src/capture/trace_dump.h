// Human-readable trace dumps (the `tcpdump -r` analog for .vctr files).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "capture/trace.h"

namespace vc::capture {

struct DumpOptions {
  /// Print at most this many records (0 = all).
  std::size_t max_records = 0;
  /// Only records at or after this timestamp.
  SimTime from{};
  /// Restrict to one direction; unset prints both.
  std::optional<net::Direction> direction;
};

/// Writes one line per record: "12.345678 OUT 10.0.0.1:47000 > 10.0.0.4:8801
/// UDP wire=1178 l7=1150".
void dump_trace(std::ostream& out, const Trace& trace, const DumpOptions& options);

/// Convenience: dump to a string (tests, small traces).
std::string dump_trace_to_string(const Trace& trace, const DumpOptions& options);

/// One-line summary: "US-West: 599 records, 30.1 s, 312 KB in / 3 KB out".
std::string summarize_trace(const Trace& trace);

}  // namespace vc::capture
