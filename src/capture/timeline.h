// Packet-stream timeline (Fig 2): the scatter of packet sizes over time on
// sender and receiver, rendered as text for the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "capture/trace.h"

namespace vc::capture {

struct TimelinePoint {
  double t_sec = 0.0;
  std::int64_t l7_len = 0;
};

/// Extracts (time, size) points for packets in the given direction, with
/// time rebased to the first record in the trace.
std::vector<TimelinePoint> timeline_points(const Trace& trace, net::Direction dir);

/// Renders a coarse ASCII scatter plot: columns are time bins, rows are
/// packet-size bands; '#' marks bins containing at least one big packet and
/// '.' bins with only small packets.
std::string render_ascii_timeline(const std::vector<TimelinePoint>& points, double t_max_sec,
                                  int columns = 100, std::int64_t big_threshold = 200);

}  // namespace vc::capture
