// Streaming-service-endpoint discovery from traffic traces.
//
// The paper's client monitor discovers service endpoints (IP, UDP/TCP port)
// from packet streams on the fly and probes them (Section 3.2); offline, the
// endpoint sets reveal each platform's relay architecture (Fig 3): Zoom and
// Webex pick one relay per session (fresh IP almost every session), Meet
// pins each client to one or two nearby front-ends across sessions.
#pragma once

#include <cstdint>
#include <vector>

#include "capture/flow.h"
#include "capture/trace.h"

namespace vc::capture {

struct DiscoveryConfig {
  /// Minimum L7 bytes a flow must carry to count as a streaming endpoint
  /// (filters STUN checks, DNS, control chatter).
  std::int64_t min_l7_bytes = 50'000;
  /// Minimum packets in the flow.
  std::int64_t min_packets = 50;
};

struct DiscoveredEndpoint {
  net::Endpoint endpoint;
  net::Protocol protocol = net::Protocol::kUdp;
  FlowStats stats;
};

/// Media endpoints seen in one trace, heaviest first.
std::vector<DiscoveredEndpoint> discover_endpoints(const Trace& trace,
                                                   const DiscoveryConfig& cfg = {});

/// The remote *port* carrying the most streaming bytes across traces — this
/// is how the paper identifies each platform's designated media port
/// (UDP/8801 Zoom, UDP/9000 Webex, UDP/19305 Meet).
std::uint16_t dominant_media_port(const std::vector<Trace>& traces,
                                  const DiscoveryConfig& cfg = {});

/// Number of *distinct* endpoint IPs a client met across a set of sessions
/// (one trace per session). Paper: 20 sessions → Zoom 20, Webex 19.5,
/// Meet 1.8 distinct endpoints on average.
std::size_t distinct_endpoint_ips(const std::vector<Trace>& session_traces,
                                  const DiscoveryConfig& cfg = {});

}  // namespace vc::capture
