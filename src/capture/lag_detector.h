// Streaming-lag measurement by the paper's "first big packet after a
// quiescent period" method (Section 4.2, Fig 2).
//
// The meeting host broadcasts a blank screen with an image flash every two
// seconds. On the sender's trace, each flash shows up as the first large
// packet (>200 B) after a >1 s lull; on a receiver's trace, likewise. The
// lag is the time shift between matching sender/receiver flash events.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.h"
#include "capture/trace.h"

namespace vc::capture {

struct LagDetectorConfig {
  /// L7 length above which a packet is "big" (paper: >200 bytes).
  std::int64_t big_packet_bytes = 200;
  /// Quiescence (no big packets) required before a big packet marks a new
  /// flash event (paper: "more than a second-long quiescent period").
  SimDuration quiescence = millis(1000);
  /// Flash period of the injected feed; used to bound event matching.
  SimDuration flash_period = seconds(2);
  /// How far a receiver timestamp may precede its sender event and still
  /// match. Cloud VM clock sync is good to about a millisecond; the default
  /// of 2 ms gives that error comfortable headroom.
  SimDuration clock_sync_tolerance = millis(2);
};

/// One detected flash event (the timestamp of its first big packet).
struct FlashEvent {
  SimTime at{};
  std::int64_t trigger_len = 0;
};

/// Detects flash events among packets flowing in `dir` (use kOutgoing on the
/// sender's trace and kIncoming on a receiver's trace).
std::vector<FlashEvent> detect_flash_events(const Trace& trace, net::Direction dir,
                                            const LagDetectorConfig& cfg = {});

/// Pairs sender events with receiver events and returns per-flash lags (ms).
/// A receiver event matches the latest sender event no later than it (plus a
/// small clock-sync tolerance) and within one flash period.
std::vector<double> match_lags_ms(const std::vector<FlashEvent>& sender,
                                  const std::vector<FlashEvent>& receiver,
                                  const LagDetectorConfig& cfg = {});

/// Convenience: full pipeline from a sender trace and one receiver trace.
std::vector<double> measure_streaming_lag_ms(const Trace& sender_trace,
                                             const Trace& receiver_trace,
                                             const LagDetectorConfig& cfg = {});

}  // namespace vc::capture
