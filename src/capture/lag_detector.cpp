#include "capture/lag_detector.h"

#include <algorithm>

namespace vc::capture {

std::vector<FlashEvent> detect_flash_events(const Trace& trace, net::Direction dir,
                                            const LagDetectorConfig& cfg) {
  std::vector<FlashEvent> events;
  std::optional<SimTime> last_big;
  for (const auto& r : trace.records) {
    if (r.dir != dir) continue;
    if (r.l7_len <= cfg.big_packet_bytes) continue;
    if (!last_big || r.timestamp - *last_big > cfg.quiescence) {
      events.push_back(FlashEvent{r.timestamp, r.l7_len});
    }
    last_big = r.timestamp;
  }
  return events;
}

std::vector<double> match_lags_ms(const std::vector<FlashEvent>& sender,
                                  const std::vector<FlashEvent>& receiver,
                                  const LagDetectorConfig& cfg) {
  const SimDuration tolerance = cfg.clock_sync_tolerance;
  std::vector<double> lags;
  std::size_t si = 0;
  for (const auto& rx : receiver) {
    // Advance to the latest sender event at or before rx (with tolerance).
    while (si + 1 < sender.size() && sender[si + 1].at <= rx.at + tolerance) ++si;
    if (sender.empty() || sender[si].at > rx.at + tolerance) continue;
    const SimDuration lag = rx.at - sender[si].at;
    // A lag close to (or beyond) the flash period means we missed the
    // matching sender event; discard rather than fold into the next flash.
    if (lag >= cfg.flash_period / 2) continue;
    lags.push_back(lag.millis());
  }
  return lags;
}

std::vector<double> measure_streaming_lag_ms(const Trace& sender_trace,
                                             const Trace& receiver_trace,
                                             const LagDetectorConfig& cfg) {
  const auto tx = detect_flash_events(sender_trace, net::Direction::kOutgoing, cfg);
  const auto rx = detect_flash_events(receiver_trace, net::Direction::kIncoming, cfg);
  return match_lags_ms(tx, rx, cfg);
}

}  // namespace vc::capture
