#include "capture/trace.h"

namespace vc::capture {

PacketCapture::PacketCapture(net::Host& host, SimDuration clock_offset)
    : host_(host), clock_offset_(clock_offset) {
  tap_id_ = host_.add_tap([this](net::Direction dir, const net::Packet& pkt, SimTime t) {
    CaptureRecord rec;
    rec.timestamp = t + clock_offset_;
    rec.dir = dir;
    rec.src = pkt.src;
    rec.dst = pkt.dst;
    rec.protocol = pkt.protocol;
    rec.wire_len = pkt.wire_len();
    rec.l7_len = pkt.l7_len;
    records_.push_back(rec);
  });
  running_ = true;
}

PacketCapture::~PacketCapture() { stop(); }

void PacketCapture::stop() {
  if (!running_) return;
  host_.remove_tap(tap_id_);
  running_ = false;
}

Trace PacketCapture::trace() const {
  Trace t;
  t.host_name = host_.name();
  t.host_ip = host_.ip();
  t.clock_offset = clock_offset_;
  t.records = records_;
  return t;
}

}  // namespace vc::capture
