// In-memory packet trace and the live capture that fills it (the tcpdump
// analog from the paper's "client monitor" component).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "net/host.h"
#include "capture/record.h"

namespace vc::capture {

/// A completed capture from one host: metadata plus time-ordered records.
struct Trace {
  std::string host_name;
  net::IpAddr host_ip;
  /// The capturing host's clock offset from true time, already baked into
  /// record timestamps. Stored for ablation studies only; lag analysis must
  /// not subtract it (a real testbed doesn't know it).
  SimDuration clock_offset{};
  std::vector<CaptureRecord> records;

  bool empty() const { return records.empty(); }
  std::size_t size() const { return records.size(); }
};

/// Attaches to a host's packet tap and records traffic, applying the host's
/// clock offset to emulate imperfect (cloud-grade) time sync.
class PacketCapture {
 public:
  /// Starts capturing immediately. `clock_offset` models the capturing VM's
  /// clock error; cloud time-sync keeps it within ~1 ms (Section 3.1).
  PacketCapture(net::Host& host, SimDuration clock_offset = SimDuration::zero());
  ~PacketCapture();
  PacketCapture(const PacketCapture&) = delete;
  PacketCapture& operator=(const PacketCapture&) = delete;

  /// Stops capturing (idempotent).
  void stop();

  /// Snapshot of everything captured so far.
  Trace trace() const;

  /// Number of records so far (live view).
  std::size_t size() const { return records_.size(); }

 private:
  net::Host& host_;
  SimDuration clock_offset_;
  std::uint64_t tap_id_ = 0;
  bool running_ = false;
  std::vector<CaptureRecord> records_;
};

}  // namespace vc::capture
