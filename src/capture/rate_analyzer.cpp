#include "capture/rate_analyzer.h"

#include <algorithm>

namespace vc::capture {

RateReport RateAnalyzer::average(std::optional<SimTime> from, std::optional<SimTime> to,
                                 std::optional<net::Endpoint> remote) const {
  RateReport rep;
  SimTime lo = SimTime::infinity();
  SimTime hi = SimTime::zero();
  for (const auto& r : trace_->records) {
    if (from && r.timestamp < *from) continue;
    if (to && r.timestamp > *to) continue;
    if (remote && r.remote() != *remote) continue;
    lo = std::min(lo, r.timestamp);
    hi = std::max(hi, r.timestamp);
    ++rep.records;
    if (r.dir == net::Direction::kIncoming) {
      rep.l7_bytes_down += r.l7_len;
    } else {
      rep.l7_bytes_up += r.l7_len;
    }
  }
  // No match: lo/hi still hold their sentinels — discard them and report an
  // all-zero window rather than a nonsense span.
  if (rep.records == 0) return rep;
  SimDuration span = hi - lo;
  if (span <= SimDuration::zero()) {
    // Degenerate window: one record, or every match at the same timestamp.
    // With explicit bounds the queried interval is the honest denominator;
    // without them there is no defensible span, so rates stay zero (callers
    // can detect this via records > 0 && span == 0).
    if (from && to && *to > *from) {
      span = *to - *from;
    } else {
      return rep;
    }
  }
  rep.span = span;
  const double sec = rep.span.seconds();
  rep.upload = DataRate::bps(static_cast<std::int64_t>(static_cast<double>(rep.l7_bytes_up) * 8.0 / sec));
  rep.download =
      DataRate::bps(static_cast<std::int64_t>(static_cast<double>(rep.l7_bytes_down) * 8.0 / sec));
  return rep;
}

std::vector<double> RateAnalyzer::download_kbps_series(SimDuration window) const {
  std::vector<double> series;
  if (trace_->records.empty() || window.micros() <= 0) return series;
  SimTime lo = SimTime::infinity();
  SimTime hi = SimTime::zero();
  for (const auto& r : trace_->records) {
    lo = std::min(lo, r.timestamp);
    hi = std::max(hi, r.timestamp);
  }
  const auto bins = static_cast<std::size_t>((hi - lo).micros() / window.micros()) + 1;
  std::vector<std::int64_t> bytes(bins, 0);
  for (const auto& r : trace_->records) {
    if (r.dir != net::Direction::kIncoming) continue;
    const auto bin = static_cast<std::size_t>((r.timestamp - lo).micros() / window.micros());
    bytes[bin] += r.l7_len;
  }
  series.reserve(bins);
  const double per_window_to_kbps = 8.0 / window.seconds() / 1000.0;
  for (auto b : bytes) series.push_back(static_cast<double>(b) * per_window_to_kbps);
  return series;
}

}  // namespace vc::capture
