#include "capture/qoe_infer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/json.h"
#include "net/host.h"

namespace vc::capture {
namespace {

bool is_video_fragment(const CaptureRecord& r, const QoeInferConfig& cfg) {
  return r.dir == net::Direction::kIncoming && r.protocol == net::Protocol::kUdp &&
         r.l7_len >= cfg.min_video_payload;
}

/// Nearest rung (ties resolve downward, like abr::TierLadder::nearest).
int nearest_tier(const std::vector<std::int64_t>& rungs, double bps) {
  int best = -1;
  double best_err = 0.0;
  for (int i = 0; i < static_cast<int>(rungs.size()); ++i) {
    const double err = std::abs(static_cast<double>(rungs[static_cast<std::size_t>(i)]) - bps);
    if (best < 0 || err < best_err) {
      best_err = err;
      best = i;
    }
  }
  return best;
}

}  // namespace

QoeInferencer::QoeInferencer(const Trace& trace, QoeInferConfig config)
    : trace_(&trace), config_(std::move(config)) {
  if (config_.window <= SimDuration::zero()) {
    throw std::invalid_argument{"QoeInferConfig.window must be positive"};
  }
  if (config_.freeze_threshold <= SimDuration::zero()) {
    throw std::invalid_argument{"QoeInferConfig.freeze_threshold must be positive"};
  }
}

QoeInferReport QoeInferencer::analyze() const {
  QoeInferReport out;

  // ---- frame grouping: one linear pass over the (time-ordered) records.
  // Out-of-order timestamps (tolerated by trace_io) would only perturb the
  // affected bursts, never crash: max() keeps burst ends monotone.
  // Bursts split on inter-packet time gaps only. The obvious refinement —
  // also ending a frame at its sub-MTU tail fragment — backfires in practice:
  // per-packet jitter routinely delivers the tail *mid-burst*, which would
  // split one real frame in two and inflate fps by >50%.
  bool in_burst = false;
  SimTime prev_video_time{};
  for (const CaptureRecord& r : trace_->records) {
    if (!is_video_fragment(r, config_)) continue;
    if (config_.analysis_start && r.timestamp < *config_.analysis_start) continue;
    if (config_.analysis_end && r.timestamp >= *config_.analysis_end) continue;
    ++out.video_packets;
    out.video_bytes += r.l7_len;

    const bool gap_break =
        in_burst && (r.timestamp - prev_video_time) > config_.max_intra_frame_gap;
    if (!in_burst || gap_break) {
      InferredFrame f;
      f.start = r.timestamp;
      f.end = r.timestamp;
      f.bytes = r.l7_len;
      f.fragments = 1;
      out.frames.push_back(f);
      in_burst = true;
    } else {
      InferredFrame& f = out.frames.back();
      f.end = std::max(f.end, r.timestamp);
      f.bytes += r.l7_len;
      ++f.fragments;
    }
    prev_video_time = r.timestamp;
  }

  // ---- inter-frame spacing.
  std::vector<double> gaps_ms;
  gaps_ms.reserve(out.frames.size());
  for (std::size_t i = 1; i < out.frames.size(); ++i) {
    gaps_ms.push_back((out.frames[i].start - out.frames[i - 1].start).millis());
  }
  if (!gaps_ms.empty()) {
    std::vector<double> sorted = gaps_ms;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    out.median_interframe_ms =
        n % 2 == 1 ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }

  // ---- analysis span.
  SimTime span_start{};
  SimTime span_end{};
  bool have_span = false;
  if (config_.analysis_start && config_.analysis_end) {
    span_start = *config_.analysis_start;
    span_end = *config_.analysis_end;
    have_span = span_end > span_start;
  } else if (!out.frames.empty()) {
    span_start = config_.analysis_start.value_or(out.frames.front().start);
    span_end = config_.analysis_end.value_or(out.frames.back().start +
                                             millis_f(out.median_interframe_ms));
    have_span = span_end > span_start;
  }

  if (have_span) {
    const double span_s = (span_end - span_start).seconds();
    out.overall_fps = static_cast<double>(out.frames.size()) / span_s;
    out.mean_video_kbps = static_cast<double>(out.video_bytes) * 8.0 / span_s / 1e3;
  }

  // ---- per-window fps / bitrate / tier timeline.
  if (have_span) {
    const std::int64_t w_us = config_.window.micros();
    const std::int64_t n_windows =
        ((span_end - span_start).micros() + w_us - 1) / w_us;
    out.windows.resize(static_cast<std::size_t>(std::max<std::int64_t>(n_windows, 0)));
    for (std::size_t k = 0; k < out.windows.size(); ++k) {
      out.windows[k].start = span_start + SimDuration{static_cast<std::int64_t>(k) * w_us};
    }
    std::vector<std::int64_t> window_bytes(out.windows.size(), 0);
    std::vector<std::int64_t> window_frames(out.windows.size(), 0);
    for (const InferredFrame& f : out.frames) {
      if (f.start < span_start || f.start >= span_end) continue;
      const auto k = static_cast<std::size_t>((f.start - span_start).micros() / w_us);
      ++window_frames[k];
      window_bytes[k] += f.bytes;
    }
    for (std::size_t k = 0; k < out.windows.size(); ++k) {
      // The last window may be clipped by the span end.
      const SimTime w_end = std::min(out.windows[k].start + config_.window, span_end);
      const double w_s = (w_end - out.windows[k].start).seconds();
      if (w_s <= 0.0) continue;
      out.windows[k].fps = static_cast<double>(window_frames[k]) / w_s;
      out.windows[k].video_kbps = static_cast<double>(window_bytes[k]) * 8.0 / w_s / 1e3;
      if (!config_.tier_rates_bps.empty() && window_bytes[k] > 0) {
        out.windows[k].tier =
            nearest_tier(config_.tier_rates_bps, out.windows[k].video_kbps * 1e3);
      }
    }
  }

  // ---- freezes: gaps between consecutive frame arrivals, plus the leading
  // and trailing gap when the caller pinned the analysis span.
  const auto add_freeze = [&](SimTime from, SimTime to) {
    if (to - from >= config_.freeze_threshold) {
      out.freezes.push_back(InferredFreeze{from, to});
    }
  };
  if (!out.frames.empty()) {
    if (config_.analysis_start) add_freeze(*config_.analysis_start, out.frames.front().start);
    for (std::size_t i = 1; i < out.frames.size(); ++i) {
      add_freeze(out.frames[i - 1].start, out.frames[i].start);
    }
    if (config_.analysis_end) add_freeze(out.frames.back().start, *config_.analysis_end);
  } else if (have_span) {
    add_freeze(span_start, span_end);  // no video at all: one long stall
  }

  return out;
}

std::string QoeInferReport::to_json() const {
  std::string s;
  s += "{\n  \"qoe_infer\": {\n";
  s += "    \"video_packets\": " + std::to_string(video_packets) + ",\n";
  s += "    \"video_bytes\": " + std::to_string(video_bytes) + ",\n";
  s += "    \"frames\": " + std::to_string(frames.size()) + ",\n";
  s += "    \"overall_fps\": " + json::format_number(overall_fps) + ",\n";
  s += "    \"mean_video_kbps\": " + json::format_number(mean_video_kbps) + ",\n";
  s += "    \"median_interframe_ms\": " + json::format_number(median_interframe_ms) + ",\n";
  s += "    \"windows\": [";
  for (std::size_t k = 0; k < windows.size(); ++k) {
    s += k == 0 ? "\n" : ",\n";
    s += "      {\"start_ms\": " + json::format_number(windows[k].start.millis()) +
         ", \"fps\": " + json::format_number(windows[k].fps) +
         ", \"kbps\": " + json::format_number(windows[k].video_kbps) +
         ", \"tier\": " + std::to_string(windows[k].tier) + "}";
  }
  s += windows.empty() ? "],\n" : "\n    ],\n";
  s += "    \"freezes\": [";
  for (std::size_t k = 0; k < freezes.size(); ++k) {
    s += k == 0 ? "\n" : ",\n";
    s += "      {\"start_ms\": " + json::format_number(freezes[k].start.millis()) +
         ", \"end_ms\": " + json::format_number(freezes[k].end.millis()) + "}";
  }
  s += freezes.empty() ? "]\n" : "\n    ]\n";
  s += "  }\n}\n";
  return s;
}

}  // namespace vc::capture
