#include "capture/trace_dump.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace vc::capture {

void dump_trace(std::ostream& out, const Trace& trace, const DumpOptions& options) {
  std::size_t printed = 0;
  for (const auto& r : trace.records) {
    if (r.timestamp < options.from) continue;
    if (options.direction && r.dir != *options.direction) continue;
    if (options.max_records > 0 && printed >= options.max_records) break;
    char line[192];
    std::snprintf(line, sizeof line, "%.6f %s %s > %s %s wire=%lld l7=%lld",
                  r.timestamp.seconds(), r.dir == net::Direction::kOutgoing ? "OUT" : "IN ",
                  r.src.to_string().c_str(), r.dst.to_string().c_str(),
                  r.protocol == net::Protocol::kUdp ? "UDP" : "TCP",
                  static_cast<long long>(r.wire_len), static_cast<long long>(r.l7_len));
    out << line << '\n';
    ++printed;
  }
}

std::string dump_trace_to_string(const Trace& trace, const DumpOptions& options) {
  std::ostringstream out;
  dump_trace(out, trace, options);
  return out.str();
}

std::string summarize_trace(const Trace& trace) {
  std::int64_t in_bytes = 0;
  std::int64_t out_bytes = 0;
  for (const auto& r : trace.records) {
    (r.dir == net::Direction::kIncoming ? in_bytes : out_bytes) += r.l7_len;
  }
  double span = 0.0;
  if (trace.records.size() >= 2) {
    span = (trace.records.back().timestamp - trace.records.front().timestamp).seconds();
  }
  char buf[192];
  std::snprintf(buf, sizeof buf, "%s: %zu records, %.1f s, %.1f KB in / %.1f KB out",
                trace.host_name.c_str(), trace.records.size(), span,
                static_cast<double>(in_bytes) / 1000.0, static_cast<double>(out_bytes) / 1000.0);
  return buf;
}

}  // namespace vc::capture
