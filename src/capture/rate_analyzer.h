// Layer-7 data-rate computation from traces — the paper computes the rates
// of Fig 15 and Fig 19b "directly from pcap traces" as payload bits over
// time, per direction.
#pragma once

#include <optional>
#include <vector>

#include "common/units.h"
#include "capture/trace.h"

namespace vc::capture {

struct RateReport {
  DataRate upload{};      // L7 bits/s, outgoing
  DataRate download{};    // L7 bits/s, incoming
  std::int64_t l7_bytes_up = 0;
  std::int64_t l7_bytes_down = 0;
  /// Denominator used for the rates. Normally last-minus-first matching
  /// timestamp; for a degenerate window (all matches share one timestamp)
  /// with both [from, to] bounds given, the queried interval instead.
  SimDuration span{};
  /// Matching records. 0 means nothing matched: bytes, span and rates are
  /// all zero. >0 with span zero means a degenerate window whose rate is
  /// undefined — bytes are still populated; don't divide by span.
  std::int64_t records = 0;
};

class RateAnalyzer {
 public:
  explicit RateAnalyzer(const Trace& trace) : trace_(&trace) {}

  /// Average L7 rate over the full trace (or a sub-interval), optionally
  /// restricted to one remote endpoint.
  RateReport average(std::optional<SimTime> from = std::nullopt,
                     std::optional<SimTime> to = std::nullopt,
                     std::optional<net::Endpoint> remote = std::nullopt) const;

  /// Windowed download-rate series (for rate-fluctuation analysis: the paper
  /// contrasts Webex's constant rate with Meet's dynamic one).
  std::vector<double> download_kbps_series(SimDuration window) const;

 private:
  const Trace* trace_;
};

}  // namespace vc::capture
