// Header-free QoE inference from packet traces.
//
// Estimates per-window video frame rate, a bitrate-tier timeline and freeze
// events from nothing but what a passive capture sees: CaptureRecord
// timestamps, directions and lengths (Sharma et al., arXiv 2306.01194, infer
// the same quantities from real Zoom/Webex/Meet pcaps). No payload, no
// application headers and no simulator internals ever cross this boundary —
// the same black-box discipline as RateAnalyzer and LagDetector. What the
// real-world estimator could never do is check itself: our harness computes
// codec-side ground truth for the same sessions, and bench_qoe_inference
// scores these estimates against it (frame-rate MAE, tier-timeline accuracy,
// freeze precision/recall) as a CI-enforced contract.
//
// Method, per Section 3 of Sharma et al. adapted to the vcbench wire shape:
//  - video classification: incoming UDP records with l7_len >=
//    min_video_payload are video fragment candidates (audio frames and
//    control reports ride far smaller packets);
//  - frame grouping: consecutive video fragments belong to one frame burst
//    until an inter-packet gap above max_intra_frame_gap ends the burst
//    (tail-fragment splitting is deliberately NOT used: jitter reorders the
//    sub-MTU tail into the middle of its burst often enough to double-count
//    frames);
//  - frame rate: burst starts per window;
//  - bitrate tier: video payload bits per window snapped to the nearest rung
//    of a caller-supplied rate table (e.g. platform::tier_ladder rates —
//    passed as plain numbers precisely so this layer needs no platform
//    dependency);
//  - freezes: inter-frame gaps above freeze_threshold, including a leading /
//    trailing gap against the configured analysis span.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "capture/trace.h"

namespace vc::capture {

struct QoeInferConfig {
  /// L7 length at or above which an incoming UDP record is treated as a
  /// video fragment. Sized between the largest audio frame (~225 B at
  /// 90 Kbps / 20 ms) and the smallest full video fragment.
  std::int64_t min_video_payload = 300;
  /// Fragments separated by more than this belong to different frames; closer
  /// ones coalesce into one burst. Must stay below the inter-frame interval
  /// (e.g. 100 ms at 10 fps) and above in-frame serialization jitter.
  SimDuration max_intra_frame_gap = millis(30);
  /// An inter-frame gap at or above this is reported as a freeze event.
  SimDuration freeze_threshold = millis(500);
  /// Timeline bucketing for the per-window fps / bitrate-tier estimates.
  SimDuration window = seconds(1);
  /// Optional ascending bitrate rung table (bits/s) the per-window rate is
  /// snapped onto — pass platform::tier_ladder(...) rates. Empty: tier -1.
  std::vector<std::int64_t> tier_rates_bps;
  /// Analysis span. Unset: [first video packet, last video packet]. Set
  /// (benchmarks pass the media window), leading/trailing frame gaps against
  /// the span bounds count toward freezes too.
  std::optional<SimTime> analysis_start;
  std::optional<SimTime> analysis_end;
};

/// One inferred video frame: the burst of fragments it arrived as.
struct InferredFrame {
  SimTime start{};       // first fragment's timestamp
  SimTime end{};         // last fragment's timestamp
  std::int64_t bytes = 0;
  int fragments = 0;
};

/// One timeline bucket of the estimate.
struct QoeInferWindow {
  SimTime start{};
  double fps = 0.0;
  double video_kbps = 0.0;
  /// Index into QoeInferConfig::tier_rates_bps (nearest rung, ties resolve
  /// downward); -1 when no table was given or the window carried no video.
  int tier = -1;
};

/// One inferred freeze: no frame arrived for freeze_threshold or longer.
struct InferredFreeze {
  SimTime start{};  // last frame before the stall (or analysis_start)
  SimTime end{};    // first frame after it (or analysis_end)
  SimDuration duration() const { return end - start; }
};

struct QoeInferReport {
  std::int64_t video_packets = 0;
  std::int64_t video_bytes = 0;
  std::vector<InferredFrame> frames;
  std::vector<QoeInferWindow> windows;
  std::vector<InferredFreeze> freezes;
  /// Frames over the analysis span (configured span, else first→last frame
  /// plus one median inter-frame interval so a lone cadence estimates its
  /// own rate); 0 when nothing was inferred.
  double overall_fps = 0.0;
  /// Video payload bits over the same span.
  double mean_video_kbps = 0.0;
  /// Median inter-frame spacing (ms); 0 with fewer than two frames.
  double median_interframe_ms = 0.0;

  /// Deterministic JSON (json::format_number): same trace ⇒ byte-identical
  /// text, which the determinism suite pins across threads and shards.
  std::string to_json() const;
};

/// Pure, allocation-light estimator over one capture. Holds only a borrowed
/// trace pointer: analyze() is const, deterministic, and replica instances
/// over the same trace agree byte-for-byte (property-tested).
class QoeInferencer {
 public:
  explicit QoeInferencer(const Trace& trace, QoeInferConfig config = {});

  QoeInferReport analyze() const;

  const QoeInferConfig& config() const { return config_; }

 private:
  const Trace* trace_;
  QoeInferConfig config_;
};

}  // namespace vc::capture
