#include "capture/endpoint_discovery.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace vc::capture {

std::vector<DiscoveredEndpoint> discover_endpoints(const Trace& trace,
                                                   const DiscoveryConfig& cfg) {
  std::vector<DiscoveredEndpoint> found;
  const FlowTable table{trace};
  for (const auto& [key, stats] : table.by_volume()) {
    if (stats.l7_bytes() < cfg.min_l7_bytes) continue;
    if (stats.packets() < cfg.min_packets) continue;
    found.push_back(DiscoveredEndpoint{key.remote, key.protocol, stats});
  }
  return found;
}

std::uint16_t dominant_media_port(const std::vector<Trace>& traces, const DiscoveryConfig& cfg) {
  std::unordered_map<std::uint16_t, std::int64_t> bytes_by_port;
  for (const auto& t : traces) {
    for (const auto& ep : discover_endpoints(t, cfg)) {
      bytes_by_port[ep.endpoint.port] += ep.stats.l7_bytes();
    }
  }
  std::uint16_t best = 0;
  std::int64_t best_bytes = -1;
  for (const auto& [port, bytes] : bytes_by_port) {
    if (bytes > best_bytes) {
      best = port;
      best_bytes = bytes;
    }
  }
  return best;
}

std::size_t distinct_endpoint_ips(const std::vector<Trace>& session_traces,
                                  const DiscoveryConfig& cfg) {
  std::unordered_set<net::IpAddr> ips;
  for (const auto& t : session_traces) {
    for (const auto& ep : discover_endpoints(t, cfg)) ips.insert(ep.endpoint.ip);
  }
  return ips.size();
}

}  // namespace vc::capture
