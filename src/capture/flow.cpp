#include "capture/flow.h"

#include <algorithm>

namespace vc::capture {

FlowTable::FlowTable(const Trace& trace) {
  std::unordered_map<FlowKey, std::size_t> index;
  for (const auto& r : trace.records) {
    const FlowKey key{r.remote(), r.protocol};
    auto [it, inserted] = index.emplace(key, flows_.size());
    if (inserted) flows_.emplace_back(key, FlowStats{});
    FlowStats& s = flows_[it->second].second;
    if (s.packets() == 0) s.first = r.timestamp;
    s.first = std::min(s.first, r.timestamp);
    s.last = std::max(s.last, r.timestamp);
    if (r.dir == net::Direction::kIncoming) {
      ++s.packets_in;
      s.l7_bytes_in += r.l7_len;
      s.wire_bytes_in += r.wire_len;
    } else {
      ++s.packets_out;
      s.l7_bytes_out += r.l7_len;
      s.wire_bytes_out += r.wire_len;
    }
  }
}

std::vector<std::pair<FlowKey, FlowStats>> FlowTable::by_volume() const {
  auto sorted = flows_;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.l7_bytes() > b.second.l7_bytes();
  });
  return sorted;
}

}  // namespace vc::capture
