#include "client/controller.h"

namespace vc::client {

ClientController::Script default_script(platform::PlatformId id) {
  switch (id) {
    case platform::PlatformId::kZoom:
      // Native Linux client: fast launch, app login.
      return {.launch = millis(2500), .login = millis(1200), .join = millis(1500)};
    case platform::PlatformId::kWebex:
      // Web client in a browser tab.
      return {.launch = millis(4000), .login = millis(2000), .join = millis(2500)};
    case platform::PlatformId::kMeet:
      return {.launch = millis(3500), .login = millis(1500), .join = millis(2000)};
  }
  return {};
}

ClientController::ClientController(VcaClient& client, Script script)
    : client_(client), script_(script) {}

ClientController::ClientController(VcaClient& client)
    : ClientController(client, default_script(client.platform().traits().id)) {}

net::EventLoop& ClientController::loop() { return client_.host().network().loop(); }

void ClientController::abort() {
  if (state_ == State::kInMeeting || state_ == State::kLeft) return;
  state_ = State::kAborted;
}

void ClientController::start_host(std::function<void(platform::MeetingId)> on_created) {
  state_ = State::kLaunching;
  loop().schedule_after(script_.launch, [this, on_created = std::move(on_created)]() mutable {
    if (state_ == State::kAborted) return;
    state_ = State::kLoggingIn;
    loop().schedule_after(script_.login, [this, on_created = std::move(on_created)]() mutable {
      if (state_ == State::kAborted) return;
      state_ = State::kCreating;
      loop().schedule_after(script_.join, [this, on_created = std::move(on_created)] {
        if (state_ == State::kAborted) return;
        const auto id = client_.create_meeting();
        state_ = State::kInMeeting;
        if (metrics_) metrics_->counter("client.meetings_created").inc();
        if (on_created) on_created(id);
      });
    });
  });
}

void ClientController::start_join(platform::MeetingId meeting, std::function<void()> on_joined) {
  state_ = State::kLaunching;
  const SimTime started = loop().now();
  loop().schedule_after(script_.launch,
                        [this, meeting, started, on_joined = std::move(on_joined)]() mutable {
    if (state_ == State::kAborted) return;
    state_ = State::kLoggingIn;
    loop().schedule_after(script_.login,
                          [this, meeting, started, on_joined = std::move(on_joined)]() mutable {
      if (state_ == State::kAborted) return;
      state_ = State::kJoining;
      loop().schedule_after(script_.join, [this, meeting, started, on_joined = std::move(on_joined)] {
        if (state_ == State::kAborted) return;
        client_.join(meeting);
        state_ = State::kInMeeting;
        if (metrics_) {
          metrics_->counter("client.joins").inc();
          metrics_->histogram("client.join_latency_ms").observe((loop().now() - started).millis());
        }
        if (on_joined) on_joined();
      });
    });
  });
}

void ClientController::change_layout_after(SimDuration delay, platform::ViewMode view) {
  loop().schedule_after(delay, [this, view] {
    if (state_ == State::kInMeeting) client_.set_view_mode(view);
  });
}

void ClientController::leave_after(SimDuration delay) {
  loop().schedule_after(delay, [this] {
    if (state_ == State::kInMeeting) {
      client_.leave();
      state_ = State::kLeft;
    }
  });
}

}  // namespace vc::client
