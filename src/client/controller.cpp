#include "client/controller.h"

#include <algorithm>

namespace vc::client {

ClientController::Script default_script(platform::PlatformId id) {
  switch (id) {
    case platform::PlatformId::kZoom:
      // Native Linux client: fast launch, app login.
      return {.launch = millis(2500), .login = millis(1200), .join = millis(1500)};
    case platform::PlatformId::kWebex:
      // Web client in a browser tab.
      return {.launch = millis(4000), .login = millis(2000), .join = millis(2500)};
    case platform::PlatformId::kMeet:
      return {.launch = millis(3500), .login = millis(1500), .join = millis(2000)};
  }
  return {};
}

ClientController::ClientController(VcaClient& client, Script script)
    : client_(client), script_(script) {}

ClientController::ClientController(VcaClient& client)
    : ClientController(client, default_script(client.platform().traits().id)) {}

net::EventLoop& ClientController::loop() { return client_.host().network().loop(); }

void ClientController::abort() {
  if (state_ == State::kInMeeting || state_ == State::kLeft) return;
  state_ = State::kAborted;
}

void ClientController::start_host(std::function<void(platform::MeetingId)> on_created) {
  state_ = State::kLaunching;
  loop().schedule_after(script_.launch, [this, on_created = std::move(on_created)]() mutable {
    if (state_ == State::kAborted) return;
    state_ = State::kLoggingIn;
    loop().schedule_after(script_.login, [this, on_created = std::move(on_created)]() mutable {
      if (state_ == State::kAborted) return;
      state_ = State::kCreating;
      loop().schedule_after(script_.join, [this, on_created = std::move(on_created)] {
        if (state_ == State::kAborted) return;
        const auto id = client_.create_meeting();
        state_ = State::kInMeeting;
        if (metrics_) metrics_->counter("client.meetings_created").inc();
        if (on_created) on_created(id);
      });
    });
  });
}

void ClientController::start_join(platform::MeetingId meeting, std::function<void()> on_joined) {
  state_ = State::kLaunching;
  const SimTime started = loop().now();
  loop().schedule_after(script_.launch,
                        [this, meeting, started, on_joined = std::move(on_joined)]() mutable {
    if (state_ == State::kAborted) return;
    state_ = State::kLoggingIn;
    loop().schedule_after(script_.login,
                          [this, meeting, started, on_joined = std::move(on_joined)]() mutable {
      if (state_ == State::kAborted) return;
      state_ = State::kJoining;
      loop().schedule_after(script_.join, [this, meeting, started, on_joined = std::move(on_joined)] {
        if (state_ == State::kAborted) return;
        client_.join(meeting);
        state_ = State::kInMeeting;
        if (metrics_) {
          metrics_->counter("client.joins").inc();
          metrics_->histogram("client.join_latency_ms").observe((loop().now() - started).millis());
        }
        if (on_joined) on_joined();
      });
    });
  });
}

void ClientController::enable_reconnect(ReconnectPolicy policy, std::uint64_t seed) {
  reconnect_ = policy;
  reconnect_enabled_ = true;
  reconnect_rng_ = Rng{seed};
  client_.set_on_connection_lost([this] { on_connection_lost(); });
}

void ClientController::on_connection_lost() {
  if (!reconnect_enabled_ || state_ != State::kInMeeting) return;
  state_ = State::kReconnecting;
  lost_at_ = loop().now();
  attempt_ = 0;
  ++reconnect_epoch_;
  if (metrics_) metrics_->counter("client.disconnects").inc();
  if (tracer_) tracer_->instant("client.connection_lost", loop().now(), 0.0);
  schedule_reconnect_attempt();
}

void ClientController::schedule_reconnect_attempt() {
  // backoff_k = min(initial · multiplier^k, max), then ± jitter from the
  // controller-owned RNG — the network stream must never see these draws,
  // or a fault plan would perturb packet timing beyond the fault itself.
  double ms = reconnect_.initial_backoff.millis();
  for (int i = 0; i < attempt_; ++i) ms = std::min(ms * reconnect_.multiplier,
                                                   reconnect_.max_backoff.millis());
  if (reconnect_.jitter > 0) {
    ms *= 1.0 + reconnect_.jitter * (2.0 * reconnect_rng_.next_double() - 1.0);
  }
  const std::uint64_t epoch = reconnect_epoch_;
  loop().schedule_after(millis_f(ms), [this, epoch] {
    if (epoch != reconnect_epoch_ || state_ != State::kReconnecting) return;
    if (!client_.in_meeting()) {
      // Torn down externally (e.g. orchestrator session end) mid-backoff.
      state_ = State::kLeft;
      return;
    }
    ++attempt_;
    if (metrics_) metrics_->counter("client.reconnect_attempts").inc();
    if (client_.rejoin()) {
      state_ = State::kInMeeting;
      const double waited = (loop().now() - lost_at_).millis();
      if (metrics_) {
        metrics_->counter("client.reconnects").inc();
        metrics_->histogram("client.time_to_reconnect_ms").observe(waited);
      }
      if (tracer_) tracer_->instant("client.reconnected", loop().now(), waited);
      return;
    }
    if (attempt_ >= reconnect_.max_attempts) {
      state_ = State::kAborted;  // gave up: the session is lost
      if (metrics_) metrics_->counter("client.reconnect_giveups").inc();
      if (tracer_) {
        tracer_->instant("client.reconnect_giveup", loop().now(),
                         static_cast<double>(attempt_));
      }
      return;
    }
    schedule_reconnect_attempt();
  });
}

void ClientController::change_layout_after(SimDuration delay, platform::ViewMode view) {
  loop().schedule_after(delay, [this, view] {
    if (state_ == State::kInMeeting) client_.set_view_mode(view);
  });
}

void ClientController::leave_after(SimDuration delay) {
  loop().schedule_after(delay, [this] {
    if (state_ == State::kInMeeting || state_ == State::kReconnecting) {
      ++reconnect_epoch_;  // cancels any pending backoff attempt
      client_.leave();
      state_ = State::kLeft;
    }
  });
}

}  // namespace vc::client
