#include "client/media_feeder.h"

#include <stdexcept>

namespace vc::client {

MediaFeeder::MediaFeeder(net::EventLoop& loop, VideoLoopbackDevice& video_dev,
                         AudioLoopbackDevice& audio_dev)
    : loop_(loop), video_dev_(video_dev), audio_dev_(audio_dev) {}

void MediaFeeder::play_video(std::shared_ptr<const media::VideoFeed> feed, SimDuration duration) {
  if (!feed) throw std::invalid_argument{"null feed"};
  feed_ = std::move(feed);
  video_end_ = loop_.now() + duration;
  next_frame_ = 0;
  video_active_ = true;
  stopped_ = false;
  video_tick();
}

void MediaFeeder::video_tick() {
  if (stopped_ || loop_.now() >= video_end_) {
    video_active_ = false;
    return;
  }
  video_dev_.write_frame(feed_->frame_at(next_frame_));
  ++next_frame_;
  loop_.schedule_after(seconds_f(1.0 / feed_->fps()), [this] { video_tick(); });
}

void MediaFeeder::play_audio(media::AudioSignal audio) {
  audio_ = std::move(audio);
  audio_pos_ = 0;
  audio_active_ = true;
  stopped_ = false;
  audio_tick();
}

void MediaFeeder::audio_tick() {
  if (stopped_ || audio_pos_ >= audio_.samples.size()) {
    audio_active_ = false;
    return;
  }
  const auto chunk = static_cast<std::size_t>(audio_.sample_rate / 50);  // 20 ms
  const std::size_t n = std::min(chunk, audio_.samples.size() - audio_pos_);
  audio_dev_.write_samples(
      std::vector<float>(audio_.samples.begin() + static_cast<std::ptrdiff_t>(audio_pos_),
                         audio_.samples.begin() + static_cast<std::ptrdiff_t>(audio_pos_ + n)));
  audio_pos_ += n;
  loop_.schedule_after(millis(20), [this] { audio_tick(); });
}

void MediaFeeder::stop() { stopped_ = true; }

}  // namespace vc::client
