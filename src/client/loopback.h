// Loopback pseudo-devices — the snd-aloop / v4l2loopback analogs.
//
// A feeder application writes media into the device; the videoconferencing
// client reads from it exactly as it would from a real camera/microphone.
// The devices are dumb buffers: all scheduling lives in MediaFeeder, all
// consumption in VcaClient, mirroring the paper's in-kernel transparency.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "media/audio.h"
#include "media/frame.h"

namespace vc::client {

/// Virtual video capture device: holds the most recent frame written.
class VideoLoopbackDevice {
 public:
  void write_frame(media::Frame frame) {
    latest_ = std::move(frame);
    ++frames_written_;
  }

  /// The frame a client capture would return right now (empty until the
  /// feeder starts).
  const std::optional<media::Frame>& latest() const { return latest_; }
  std::int64_t frames_written() const { return frames_written_; }

 private:
  std::optional<media::Frame> latest_;
  std::int64_t frames_written_ = 0;
};

/// Virtual sound card: an append-only PCM buffer the client reads at its own
/// cadence.
class AudioLoopbackDevice {
 public:
  explicit AudioLoopbackDevice(int sample_rate = 16'000) : sample_rate_(sample_rate) {}

  int sample_rate() const { return sample_rate_; }

  void write_samples(const std::vector<float>& samples) {
    buffer_.insert(buffer_.end(), samples.begin(), samples.end());
  }

  /// Reads `count` samples starting at absolute sample position `pos`;
  /// positions not yet written read as silence.
  std::vector<float> read(std::size_t pos, std::size_t count) const {
    std::vector<float> out(count, 0.0F);
    for (std::size_t i = 0; i < count; ++i) {
      if (pos + i < buffer_.size()) out[i] = buffer_[pos + i];
    }
    return out;
  }

  std::size_t samples_written() const { return buffer_.size(); }

 private:
  int sample_rate_;
  std::vector<float> buffer_;
};

}  // namespace vc::client
