// Active RTT probing of discovered service endpoints — the tcpping analog
// (ICMP is blocked by the real infrastructures, so the paper probes the
// media endpoint itself; our relays likewise answer only in-band probes).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/time.h"
#include "common/tracer.h"
#include "net/network.h"

namespace vc::client {

class RttProber {
 public:
  explicit RttProber(net::Host& host);
  ~RttProber();
  RttProber(const RttProber&) = delete;
  RttProber& operator=(const RttProber&) = delete;

  /// Sends `count` probes to `target`, one every `interval`.
  void start(net::Endpoint target, SimDuration interval, int count);
  void stop();

  /// Mirrors probing into `<prefix>.sent` / `<prefix>.answered` counters and
  /// a `<prefix>.rtt_ms` histogram (ROADMAP: RTT prober metrics).
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix = "probe");

  /// Flight-recorder hook (borrowed; nullptr detaches): each answered probe
  /// becomes an `rtt.probe` span from send to reply (value = RTT in ms).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  const std::vector<double>& rtts_ms() const { return rtts_ms_; }
  double average_ms() const;
  int sent() const { return sent_; }
  bool done() const { return !running_; }

 private:
  void tick();

  net::Host& host_;
  net::UdpSocket* socket_;
  net::Endpoint target_;
  SimDuration interval_{};
  int remaining_ = 0;
  int sent_ = 0;
  bool running_ = false;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<std::uint64_t, SimTime> outstanding_;
  std::vector<double> rtts_ms_;
  MetricsRegistry::Counter* m_sent_ = nullptr;
  MetricsRegistry::Counter* m_answered_ = nullptr;
  MetricsRegistry::Histogram* m_rtt_ms_ = nullptr;
  Tracer* tracer_ = nullptr;
};

}  // namespace vc::client
