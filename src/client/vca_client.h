// The emulated videoconferencing client (Fig 1's "videoconferencing client"
// box): reads the loopback devices, encodes and streams media to its service
// endpoint (or P2P peer), receives/decodes remote streams, renders the UI
// view, answers probes, and runs the receiver-feedback loop that drives each
// platform's bandwidth adaptation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "abr/abr.h"
#include "client/loopback.h"
#include "media/audio_codec.h"
#include "media/video_codec.h"
#include "net/network.h"
#include "platform/base_platform.h"
#include "platform/rate_policy.h"

namespace vc::client {

/// Media fragments at most this many L7 bytes (RTP-over-UDP sized).
inline constexpr std::int64_t kFragmentBytes = 1150;

/// Receiver-side delivery feedback riding the periodic 500 ms control report
/// as a sim-side payload — the report's wire size (l7_len) is unchanged, the
/// real report's 48 bytes would carry the same few numbers. The sending
/// client turns one of these into an abr::AbrObservation.
struct AbrFeedback final : public net::PacketPayload {
  /// Video payload bytes of this origin delivered in the window.
  std::int64_t delivered_bytes = 0;
  double window_seconds = 0.5;
  /// Mean spacing between delivered video packets in the window (ms).
  double inter_ack_ms = 0.0;
  /// Fraction of frames seen in the window that never completed.
  double loss_fraction = 0.0;
  /// Mean one-way delay in the window minus the session-minimum baseline
  /// (ms): the self-inflicted/bottleneck queuing signal.
  double queue_delay_ms = 0.0;
  /// Frames seen but still incomplete at report time.
  std::int64_t backlog_frames = 0;
};

class VcaClient {
 public:
  struct Config {
    platform::DeviceClass device = platform::DeviceClass::kCloudVm;
    platform::ViewMode view = platform::ViewMode::kFullScreen;
    bool send_video = true;
    bool send_audio = true;
    /// Reconstruct received video pixels (needed for QoE recording). Lag
    /// experiments disable it: traffic timing is all they measure.
    bool decode_video = true;
    /// Model encoded-frame sizes from the rate target instead of running
    /// the pixel codec (for resource/traffic experiments where nobody
    /// scores pixels, e.g. the mobile scenarios). Such frames carry no
    /// decodable payload.
    bool synthetic_video = false;
    platform::MotionClass motion = platform::MotionClass::kHighMotion;
    /// Encoded frame dimensions (the padded feed size); multiples of 8.
    int video_width = 368;
    int video_height = 288;
    double fps = 15.0;
    std::uint16_t media_port = 47000;
    /// UI widgets occlude this outer border of the rendered screen, even in
    /// full-screen mode (Section 4.3 / Fig 13). Keep < feed padding.
    int ui_border = 16;
    /// Fraction of the video wire rate carrying codec payload; the rest is
    /// FEC/redundancy padding (real VCA streams are near-CBR at the policy
    /// rate). Padding is only added to frames of active content — dormant
    /// (blank-screen) frames stay tiny, preserving the quiescent periods the
    /// paper's lag method depends on.
    double content_rate_fraction = 0.3;
    /// Nonzero: bypass the platform's N-dependent rate policy and encode at
    /// this base rate (mobile cameras; simulcast high layers for mobile
    /// receivers). Adaptation/wobble still apply on top.
    DataRate rate_override = DataRate::zero();
    /// Client-side ABR (src/abr): kNone (default) falls back to the
    /// platform's PlatformConfig::default_client_abr; if that is also kNone
    /// the client follows the platform-pushed rate exactly as before —
    /// byte-identical to a build without this field.
    abr::AbrConfig abr{};
    /// Attach AbrFeedback accounting/payloads to the control reports this
    /// client *sends as a receiver*. Costless on the wire (l7_len unchanged)
    /// but off by default so plain runs do no extra bookkeeping.
    bool abr_feedback = false;
    std::uint64_t seed = 99;
  };

  struct Stats {
    std::int64_t video_frames_sent = 0;
    std::int64_t video_frames_completed = 0;  // fully received & decodable
    std::int64_t video_frames_lost = 0;       // seen but never completed
    std::int64_t audio_frames_sent = 0;
    std::int64_t audio_frames_received = 0;
    std::int64_t loss_reports_sent = 0;
    std::int64_t probe_replies = 0;
    std::int64_t abr_decisions = 0;      // select() calls on this sender
    std::int64_t abr_tier_switches = 0;  // decisions that changed the tier
  };

  VcaClient(net::Host& host, platform::BasePlatform& platform, Config config);
  ~VcaClient();

  /// Mirrors codec activity into `<prefix>.video.frames_encoded`,
  /// `<prefix>.video.frames_decoded`, `<prefix>.video.encoded_bytes` and
  /// `<prefix>.audio.frames_encoded` counters plus `<prefix>.video.skip_ratio`
  /// (per-frame SKIP-block fraction) and `<prefix>.video.qstep` histograms.
  /// Only real pixel encodes count — synthetic_video runs no codec.
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix = "codec");

  /// Flight-recorder hook (borrowed; nullptr detaches): video encodes become
  /// `codec.encode` spans (value = encoded bytes), completed-frame decodes
  /// `codec.decode` spans (value = wire bytes), audio encodes
  /// `codec.audio_encode` instants (value = encoded bytes).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  VcaClient(const VcaClient&) = delete;
  VcaClient& operator=(const VcaClient&) = delete;

  VideoLoopbackDevice& video_device() { return video_dev_; }
  AudioLoopbackDevice& audio_device() { return audio_dev_; }
  net::Host& host() { return host_; }
  platform::BasePlatform& platform() { return platform_; }
  const Config& config() const { return config_; }
  const Stats& stats() const { return stats_; }

  /// Creates a meeting on the platform with this client as host.
  platform::MeetingId create_meeting();
  /// Joins an existing meeting.
  void join(platform::MeetingId meeting);
  void leave();
  bool in_meeting() const { return in_meeting_; }
  platform::ParticipantId participant_id() const { return participant_id_; }
  platform::MeetingId meeting_id() const { return meeting_; }

  /// True while the client holds a usable media route. A relay crash pushes
  /// RouteInfo{} (unspecified endpoint), which drops this to false — media
  /// ticks keep running but send nothing until the route is restored.
  bool has_route() const { return has_route_; }

  /// Fires when an in-meeting client's route is torn down (route held →
  /// route lost, e.g. the serving relay crashed). The reconnection driver
  /// (client::ClientController) hooks this to start its backoff loop.
  void set_on_connection_lost(std::function<void()> cb) { on_connection_lost_ = std::move(cb); }

  /// Fires whenever the applied video encode target changes (policy push,
  /// congestion adaptation, ABR override). This is ground-truth-side
  /// instrumentation: bench_qoe_inference records the true bitrate timeline
  /// through it to score the header-free estimate — the estimator itself
  /// never sees it. Unset (the default) costs one branch per encode tick.
  void set_on_target_change(std::function<void(SimTime, DataRate)> cb) {
    on_target_change_ = std::move(cb);
  }

  /// One reconnection attempt: asks the platform to re-attach this member
  /// (re-register with the relay, re-push route and subscriptions). Returns
  /// true once routed again; false while the infrastructure is still down.
  bool rejoin();

  /// Switches the UI layout (full screen / gallery / screen-off).
  void set_view_mode(platform::ViewMode view);
  platform::ViewMode view_mode() const { return config_.view; }

  /// Renders the current screen content (what simplescreenrecorder grabs).
  media::Frame render_screen() const;
  /// The received (decoded, concealed) audio mix so far.
  media::AudioSignal received_audio() const;

  /// Number of distinct remote video streams seen so far.
  int active_video_streams() const {
    int n = 0;
    for (const auto& [origin, rx] : video_rx_) {
      if (rx.any_seen) ++n;
    }
    return n;
  }

  /// Current video encode target (after policy + adaptation + ABR).
  DataRate current_video_target() const { return video_target_; }
  /// Sent video rate policy base for this session.
  DataRate session_base_rate() const { return session_base_; }
  /// What the platform-pushed policy alone would encode at right now (equals
  /// current_video_target() unless a non-shadow ABR adapter overrides it).
  DataRate platform_video_target() const { return platform_target_; }

  /// (Re)arms client-side ABR with `config` (kNone disarms); adapter state
  /// resets. Safe at any time, including mid-meeting.
  void set_abr(const abr::AbrConfig& config);
  /// The armed adapter, nullptr when ABR is off.
  const abr::AbrAlgo* abr() const { return abr_.get(); }
  /// The adapter's most recent applied target; zero before any decision.
  DataRate abr_target() const { return abr_target_; }

 private:
  struct RxStream {
    std::unique_ptr<media::VideoDecoder> decoder;
    struct Pending {
      std::shared_ptr<const media::EncodedFrame> frame;
      int fragments_got = 0;
      int fragments_needed = 0;
    };
    std::map<std::uint64_t, Pending> pending;   // frame seq → assembly state
    std::uint64_t highest_seq_seen = 0;
    bool any_seen = false;
    // Per-feedback-window accounting.
    std::int64_t window_started = 0;
    std::int64_t window_completed = 0;
    // ABR feedback accounting (maintained only when Config.abr_feedback).
    std::int64_t window_bytes = 0;
    std::int64_t window_pkts = 0;
    SimTime window_first_arrival{};
    SimTime window_last_arrival{};
    double window_delay_sum_ms = 0.0;
    /// Session-minimum one-way delay: the propagation baseline subtracted
    /// from the window mean to isolate queuing.
    double base_delay_ms = -1.0;
  };

  void on_route(platform::RouteInfo route);
  void on_packet(const net::Packet& pkt);
  void on_video_packet(const net::Packet& pkt);
  void on_audio_packet(const net::Packet& pkt);
  void on_control_packet(const net::Packet& pkt);
  void video_tick();
  void audio_tick();
  void feedback_tick();
  void update_video_target();
  void send_media_packet(net::Packet pkt);

  net::Host& host_;
  platform::BasePlatform& platform_;
  Config config_;
  Rng rng_;

  VideoLoopbackDevice video_dev_;
  AudioLoopbackDevice audio_dev_;
  net::UdpSocket* socket_ = nullptr;

  platform::MeetingId meeting_ = 0;
  platform::ParticipantId participant_id_ = 0;
  bool in_meeting_ = false;
  bool has_route_ = false;
  platform::RouteInfo route_;
  std::function<void()> on_connection_lost_;
  std::function<void(SimTime, DataRate)> on_target_change_;
  DataRate notified_target_ = DataRate::zero();

  // --- sending ---
  std::unique_ptr<media::VideoEncoder> encoder_;
  std::unique_ptr<media::AudioEncoder> audio_encoder_;
  std::size_t audio_cursor_ = 0;
  DataRate session_base_ = DataRate::zero();
  double session_factor_ = 1.0;   // per-session lognormal draw
  bool session_factor_drawn_ = false;
  double wobble_ = 1.0;           // in-session drift
  double adapt_factor_ = 1.0;     // congestion backoff
  int consecutive_loss_ = 0;
  int consecutive_clean_ = 0;
  bool emergency_ = false;        // video collapsed to survival rate
  DataRate video_target_ = DataRate::zero();
  DataRate platform_target_ = DataRate::zero();
  std::unique_ptr<abr::AbrAlgo> abr_;
  DataRate abr_target_ = DataRate::zero();
  int last_known_participants_ = 1;
  std::int64_t synthetic_seq_ = 0;

  // --- receiving ---
  std::unordered_map<std::uint32_t, RxStream> video_rx_;
  std::vector<float> audio_mix_;
  std::size_t audio_mix_len_ = 0;

  Stats stats_;
  MetricsRegistry::Counter* m_video_encoded_ = nullptr;
  MetricsRegistry::Counter* m_video_decoded_ = nullptr;
  MetricsRegistry::Counter* m_video_encoded_bytes_ = nullptr;
  MetricsRegistry::Counter* m_audio_encoded_ = nullptr;
  MetricsRegistry::Histogram* m_skip_ratio_ = nullptr;
  MetricsRegistry::Histogram* m_qstep_ = nullptr;
  MetricsRegistry::Counter* m_abr_decisions_ = nullptr;
  MetricsRegistry::Counter* m_abr_switches_ = nullptr;
  MetricsRegistry::Histogram* m_abr_tier_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::uint64_t epoch_ = 0;  // invalidates scheduled ticks after leave()
  net::EventId video_ev_ = 0;
  net::EventId audio_ev_ = 0;
  net::EventId feedback_ev_ = 0;
};

}  // namespace vc::client
