#include "client/vca_client.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/log.h"

namespace vc::client {
namespace {

/// Survival video rate once a platform gives up on quality entirely (video
/// collapses but audio is protected) — the "sudden drop" regime of Fig 17.
constexpr auto kEmergencyRate = DataRate::kbps(60);

/// Fragments per encoded frame, derived from the modeled frame size.
int fragments_for(std::int64_t bytes) {
  return static_cast<int>((bytes + kFragmentBytes - 1) / kFragmentBytes);
}

}  // namespace

VcaClient::VcaClient(net::Host& host, platform::BasePlatform& platform, Config config)
    : host_(host), platform_(platform), config_(config), rng_(config.seed) {
  socket_ = &host_.udp_bind(config_.media_port);
  socket_->on_receive([this](const net::Packet& pkt) { on_packet(pkt); });
  // Per-client ABR wins; otherwise inherit the platform's default. kNone
  // everywhere leaves the client exactly as it was before src/abr existed.
  const abr::AbrConfig& abr_cfg = config_.abr.kind != abr::AbrKind::kNone
                                      ? config_.abr
                                      : platform_.config().default_client_abr;
  if (abr_cfg.kind != abr::AbrKind::kNone) set_abr(abr_cfg);
}

void VcaClient::set_abr(const abr::AbrConfig& config) {
  config_.abr = config;
  abr_target_ = DataRate::zero();
  abr_ = abr::make_abr(config, platform::tier_ladder(platform_.traits().id));
}

VcaClient::~VcaClient() {
  if (in_meeting_) leave();
  // Cancel outstanding tick events: their lambdas capture `this`.
  auto& loop = host_.network().loop();
  loop.cancel(video_ev_);
  loop.cancel(audio_ev_);
  loop.cancel(feedback_ev_);
  host_.udp_close(config_.media_port);
}

platform::MeetingId VcaClient::create_meeting() {
  if (in_meeting_) throw std::logic_error{"already in a meeting"};
  platform::ClientRef ref{&host_, config_.media_port, config_.device, config_.view,
                          config_.send_video};
  meeting_ = platform_.create_meeting(ref, [this](platform::RouteInfo r) { on_route(r); });
  participant_id_ = 1;
  in_meeting_ = true;
  ++epoch_;
  video_tick();
  audio_tick();
  feedback_tick();
  return meeting_;
}

void VcaClient::join(platform::MeetingId meeting) {
  if (in_meeting_) throw std::logic_error{"already in a meeting"};
  platform::ClientRef ref{&host_, config_.media_port, config_.device, config_.view,
                          config_.send_video};
  participant_id_ = platform_.join(meeting, ref, [this](platform::RouteInfo r) { on_route(r); });
  meeting_ = meeting;
  in_meeting_ = true;
  ++epoch_;
  video_tick();
  audio_tick();
  feedback_tick();
}

void VcaClient::leave() {
  if (!in_meeting_) return;
  platform_.leave(meeting_, participant_id_);
  in_meeting_ = false;
  has_route_ = false;
  ++epoch_;  // cancels pending ticks logically
}

void VcaClient::set_view_mode(platform::ViewMode view) {
  config_.view = view;
  if (in_meeting_) platform_.set_view_mode(meeting_, participant_id_, view);
}

bool VcaClient::rejoin() {
  if (!in_meeting_) return false;
  if (has_route_) return true;
  return platform_.reconnect(meeting_, participant_id_);
}

void VcaClient::on_route(platform::RouteInfo route) {
  const bool had_route = has_route_;
  route_ = route;
  has_route_ = !route.media_endpoint.ip.is_unspecified();
  if (had_route && !has_route_ && abr_) {
    // Route torn down (e.g. relay crash): stale delivery state would poison
    // the first post-reconnect decisions.
    abr_->reset();
    abr_target_ = DataRate::zero();
  }
  if (had_route && !has_route_ && in_meeting_ && on_connection_lost_) on_connection_lost_();
  if (has_route_ && config_.send_video && !encoder_ && !session_factor_drawn_) {
    // Per-session rate draw (the across-session variability of Fig 15).
    const auto& profile = platform::rate_profile(platform_.traits().id);
    session_factor_ =
        profile.session_sigma > 0 ? rng_.lognormal(0.0, profile.session_sigma) : 1.0;
    session_factor_drawn_ = true;
    if (!config_.synthetic_video) {
      encoder_ = std::make_unique<media::VideoEncoder>(
          config_.video_width, config_.video_height,
          media::VideoEncoder::Config{.target_bitrate = DataRate::kbps(600), .fps = config_.fps});
    }
  }
  if (has_route_ && config_.send_audio && !audio_encoder_) {
    audio_encoder_ = std::make_unique<media::AudioEncoder>(media::AudioEncoder::Config{
        .bitrate = platform_.traits().audio_rate, .sample_rate = audio_dev_.sample_rate()});
  }
}

void VcaClient::attach_metrics(MetricsRegistry& registry, const std::string& prefix) {
  m_video_encoded_ = &registry.counter(prefix + ".video.frames_encoded");
  m_video_decoded_ = &registry.counter(prefix + ".video.frames_decoded");
  m_video_encoded_bytes_ = &registry.counter(prefix + ".video.encoded_bytes");
  m_audio_encoded_ = &registry.counter(prefix + ".audio.frames_encoded");
  m_skip_ratio_ = &registry.histogram(prefix + ".video.skip_ratio");
  m_qstep_ = &registry.histogram(prefix + ".video.qstep");
  // ABR observability only when an adapter is armed for real: a shadow or
  // disarmed client must leave the registry — and thus any serialized report
  // built from it — byte-identical to a plain client.
  if (abr_ && !config_.abr.shadow) {
    m_abr_decisions_ = &registry.counter(prefix + ".abr.decisions");
    m_abr_switches_ = &registry.counter(prefix + ".abr.tier_switches");
    m_abr_tier_ = &registry.histogram(prefix + ".abr.tier");
  }
}

void VcaClient::update_video_target() {
  const int n = std::max(2, platform_.participant_count(meeting_));
  last_known_participants_ = n;
  const auto& profile = platform::rate_profile(platform_.traits().id);
  DataRate base = n == 2 ? profile.video_two_party : profile.video_multi_party;
  if (config_.rate_override > DataRate::zero()) base = config_.rate_override;
  if (config_.motion == platform::MotionClass::kLowMotion) base = base * profile.low_motion_factor;
  session_base_ = base * session_factor_;
  if (emergency_) {
    platform_target_ = kEmergencyRate;
    video_target_ = kEmergencyRate;
  } else {
    const double scaled = static_cast<double>(session_base_.bits_per_second()) * wobble_ * adapt_factor_;
    const auto floor_rate = std::min(profile.min_video_rate, session_base_);
    platform_target_ = DataRate::bps(std::clamp<std::int64_t>(
        static_cast<std::int64_t>(scaled), floor_rate.bits_per_second(),
        session_base_.bits_per_second() * 6 / 5));
    video_target_ = platform_target_;
    // A non-shadow ABR adapter overrides the platform's push, but inside the
    // same session bounds — a client can't exceed what its session/encoder
    // provisioned, and the survival floor still applies.
    if (abr_ && !config_.abr.shadow && abr_target_ > DataRate::zero()) {
      video_target_ = DataRate::bps(std::clamp<std::int64_t>(
          abr_target_.bits_per_second(), floor_rate.bits_per_second(),
          session_base_.bits_per_second() * 6 / 5));
    }
  }
  if (encoder_) encoder_->set_target_bitrate(video_target_ * config_.content_rate_fraction);
  if (on_target_change_ && video_target_ != notified_target_) {
    notified_target_ = video_target_;
    on_target_change_(host_.network().now(), video_target_);
  }
}

void VcaClient::video_tick() {
  if (!in_meeting_) return;
  const std::uint64_t epoch = epoch_;
  video_ev_ = host_.network().loop().schedule_after(seconds_f(1.0 / config_.fps), [this, epoch] {
    if (epoch == epoch_) video_tick();
  });
  if (!has_route_ || !config_.send_video) return;

  std::int64_t frame_bytes = 0;
  std::int64_t frame_seq = 0;
  std::shared_ptr<const media::EncodedFrame> payload;
  if (config_.synthetic_video) {
    update_video_target();
    // Size model: mean target/fps, lognormal wobble, 3x keyframe spike.
    const double mean =
        static_cast<double>(video_target_.bits_per_second()) / config_.fps / 8.0;
    const bool keyframe = synthetic_seq_ % 60 == 0;
    frame_bytes = std::max<std::int64_t>(
        64, static_cast<std::int64_t>(mean * (keyframe ? 3.0 : 1.0) *
                                      rng_.lognormal(0.0, 0.15)));
    frame_seq = synthetic_seq_++;
  } else {
    if (!encoder_) return;
    const auto& latest = video_dev_.latest();
    if (!latest || latest->width() != config_.video_width ||
        latest->height() != config_.video_height) {
      return;  // feeder not started (or misconfigured feed size)
    }
    update_video_target();
    const auto frame = encoder_->encode(*latest);
    if (m_video_encoded_ != nullptr) {
      m_video_encoded_->inc();
      m_video_encoded_bytes_->add(frame->bytes);
      if (frame->total_blocks > 0) {
        m_skip_ratio_->observe(static_cast<double>(frame->skip_blocks) /
                               static_cast<double>(frame->total_blocks));
      }
      m_qstep_->observe(frame->qstep);
    }
    if (tracer_ != nullptr) {
      const SimTime t = host_.network().now();
      tracer_->span("codec.encode", t, t, static_cast<double>(frame->bytes));
    }
    // FEC/redundancy padding up to the wire rate — but only when the encoder
    // is actually spending its quality budget (active content). A dormant
    // scene (blank screen between flashes) stays quiet on the wire.
    const double per_frame_wire =
        static_cast<double>(video_target_.bits_per_second()) / config_.fps / 8.0;
    const double quality_budget = per_frame_wire * config_.content_rate_fraction;
    if (static_cast<double>(frame->bytes) >= 0.5 * quality_budget) {
      frame->wire_bytes =
          std::max<std::int64_t>(frame->bytes, static_cast<std::int64_t>(per_frame_wire));
    }
    frame_bytes = frame->wire_bytes;
    frame_seq = frame->sequence;
    payload = frame;
  }

  const int frags = fragments_for(frame_bytes);
  std::int64_t remaining = frame_bytes;
  for (int i = 0; i < frags; ++i) {
    net::Packet pkt;
    pkt.dst = route_.media_endpoint;
    pkt.l7_len = std::min<std::int64_t>(remaining, kFragmentBytes);
    remaining -= pkt.l7_len;
    pkt.kind = net::StreamKind::kVideo;
    pkt.origin_id = participant_id_;
    pkt.seq = static_cast<std::uint64_t>(frame_seq) * 1024 + static_cast<std::uint64_t>(i);
    pkt.payload = payload;
    send_media_packet(std::move(pkt));
  }
  ++stats_.video_frames_sent;
}

void VcaClient::audio_tick() {
  if (!in_meeting_) return;
  const std::uint64_t epoch = epoch_;
  audio_ev_ = host_.network().loop().schedule_after(millis(20), [this, epoch] {
    if (epoch == epoch_) audio_tick();
  });
  if (!has_route_ || !config_.send_audio || !audio_encoder_) return;
  if (audio_dev_.samples_written() <= audio_cursor_) return;  // no audio fed yet
  const auto n = static_cast<std::size_t>(audio_encoder_->frame_samples());
  const auto samples = audio_dev_.read(audio_cursor_, n);
  audio_cursor_ += n;
  const auto frame = audio_encoder_->encode(samples);
  if (m_audio_encoded_ != nullptr) m_audio_encoded_->inc();
  if (tracer_ != nullptr) {
    tracer_->instant("codec.audio_encode", host_.network().now(),
                     static_cast<double>(frame->bytes));
  }
  net::Packet pkt;
  pkt.dst = route_.media_endpoint;
  pkt.l7_len = std::max<std::int64_t>(frame->bytes, 20);
  pkt.kind = net::StreamKind::kAudio;
  pkt.origin_id = participant_id_;
  pkt.seq = static_cast<std::uint64_t>(frame->sequence);
  pkt.payload = frame;
  send_media_packet(std::move(pkt));
  ++stats_.audio_frames_sent;
}

void VcaClient::send_media_packet(net::Packet pkt) { socket_->send(std::move(pkt)); }

void VcaClient::on_packet(const net::Packet& pkt) {
  switch (pkt.kind) {
    case net::StreamKind::kProbe: {
      // Peers answer probes too (Zoom P2P endpoints are probed like relays).
      net::Packet reply;
      reply.dst = pkt.src;
      reply.l7_len = pkt.l7_len;
      reply.kind = net::StreamKind::kProbeReply;
      reply.seq = pkt.seq;
      socket_->send(std::move(reply));
      ++stats_.probe_replies;
      return;
    }
    case net::StreamKind::kVideo:
      on_video_packet(pkt);
      return;
    case net::StreamKind::kAudio:
      on_audio_packet(pkt);
      return;
    case net::StreamKind::kControl:
      on_control_packet(pkt);
      return;
    default:
      return;
  }
}

void VcaClient::on_video_packet(const net::Packet& pkt) {
  RxStream& rx = video_rx_[pkt.origin_id];
  rx.any_seen = true;
  if (config_.abr_feedback) {
    const SimTime now = host_.network().now();
    if (rx.window_pkts == 0) rx.window_first_arrival = now;
    rx.window_last_arrival = now;
    ++rx.window_pkts;
    rx.window_bytes += pkt.l7_len;
    const double owd_ms = (now - pkt.sent_at).millis();
    if (rx.base_delay_ms < 0.0 || owd_ms < rx.base_delay_ms) rx.base_delay_ms = owd_ms;
    rx.window_delay_sum_ms += owd_ms;
  }
  const std::uint64_t frame_seq = pkt.seq / 1024;
  rx.highest_seq_seen = std::max(rx.highest_seq_seen, frame_seq);
  if (!pkt.payload) return;  // thinned simulcast layer: traffic only
  const auto* encoded = dynamic_cast<const media::EncodedFrame*>(pkt.payload.get());
  if (encoded == nullptr) return;

  auto [it, inserted] = rx.pending.try_emplace(frame_seq);
  auto& pending = it->second;
  if (inserted) {
    pending.frame = std::static_pointer_cast<const media::EncodedFrame>(pkt.payload);
    pending.fragments_needed = fragments_for(encoded->wire_bytes);
    ++rx.window_started;
  }
  ++pending.fragments_got;
  if (pending.fragments_got < pending.fragments_needed) return;

  // Frame complete: decode (in display order; late frames are dropped).
  if (config_.decode_video) {
    if (!rx.decoder) {
      rx.decoder = std::make_unique<media::VideoDecoder>(encoded->width, encoded->height);
    }
    rx.decoder->decode(*pending.frame);
    if (m_video_decoded_ != nullptr) m_video_decoded_->inc();
    if (tracer_ != nullptr) {
      const SimTime t = host_.network().now();
      tracer_->span("codec.decode", t, t, static_cast<double>(encoded->wire_bytes));
    }
  }
  ++stats_.video_frames_completed;
  ++rx.window_completed;
  // Anything older and still pending will never display: count as lost.
  for (auto p = rx.pending.begin(); p != rx.pending.end() && p->first < frame_seq;) {
    ++stats_.video_frames_lost;
    p = rx.pending.erase(p);
  }
  rx.pending.erase(frame_seq);
}

void VcaClient::on_audio_packet(const net::Packet& pkt) {
  if (!pkt.payload) return;
  const auto* encoded = dynamic_cast<const media::EncodedAudioFrame*>(pkt.payload.get());
  if (encoded == nullptr) return;
  ++stats_.audio_frames_received;
  media::AudioDecoder decoder{encoded->frame_samples};
  const auto samples = decoder.decode(*encoded);
  const std::size_t pos = static_cast<std::size_t>(encoded->sequence) *
                          static_cast<std::size_t>(encoded->frame_samples);
  if (audio_mix_.size() < pos + samples.size()) audio_mix_.resize(pos + samples.size(), 0.0F);
  for (std::size_t i = 0; i < samples.size(); ++i) audio_mix_[pos + i] += samples[i];
  audio_mix_len_ = std::max(audio_mix_len_, pos + samples.size());
}

void VcaClient::on_control_packet(const net::Packet& pkt) {
  // Receiver report about our stream: seq==1 → loss, seq==0 → clean.
  const auto& profile = platform::rate_profile(platform_.traits().id);
  if (pkt.seq == 1) {
    adapt_factor_ = std::max(adapt_factor_ * profile.loss_backoff, 0.02);
    ++consecutive_loss_;
    consecutive_clean_ = 0;
    // Sustained starvation → collapse video to survival rate (if the
    // platform adapts at all; Webex's near-unity backoff never gets here
    // because adapt_factor barely moves and floors keep the rate high).
    if (consecutive_loss_ >= 6 && profile.loss_backoff < 0.9) emergency_ = true;
  } else {
    adapt_factor_ = std::min(adapt_factor_ * profile.clean_recovery, 1.0);
    ++consecutive_clean_;
    consecutive_loss_ = 0;
    if (emergency_ && consecutive_clean_ >= 8) emergency_ = false;
  }
  // Receiver-side delivery feedback (if attached) drives the armed adapter.
  if (abr_ && pkt.payload) {
    const auto* fb = dynamic_cast<const AbrFeedback*>(pkt.payload.get());
    if (fb == nullptr) return;
    abr::AbrObservation obs;
    obs.now = host_.network().now();
    obs.window_seconds = fb->window_seconds;
    obs.delivered_bytes = fb->delivered_bytes;
    obs.inter_ack_ms = fb->inter_ack_ms;
    obs.loss_fraction = fb->loss_fraction;
    obs.queue_delay_ms = fb->queue_delay_ms;
    obs.backlog_frames = fb->backlog_frames;
    obs.platform_target = platform_target_ > DataRate::zero() ? platform_target_ : session_base_;
    obs.current_target = video_target_;
    const int before = abr_->last_tier();
    const abr::AbrDecision decision = abr_->select(obs);
    abr_target_ = decision.target;
    ++stats_.abr_decisions;
    const bool switched = before >= 0 && decision.tier != before;
    if (switched) ++stats_.abr_tier_switches;
    if (m_abr_decisions_ != nullptr) {
      m_abr_decisions_->inc();
      if (switched) m_abr_switches_->inc();
      m_abr_tier_->observe(static_cast<double>(decision.tier));
    }
  }
}

void VcaClient::feedback_tick() {
  if (!in_meeting_) return;
  const std::uint64_t epoch = epoch_;
  feedback_ev_ = host_.network().loop().schedule_after(millis(500), [this, epoch] {
    if (epoch == epoch_) feedback_tick();
  });
  if (!has_route_) return;
  // In-session rate drift (Meet's dynamic behavior).
  const auto& profile = platform::rate_profile(platform_.traits().id);
  if (profile.in_session_sigma > 0) {
    wobble_ = std::clamp(wobble_ * rng_.lognormal(0.0, profile.in_session_sigma), 0.6, 1.6);
  }
  for (auto& [origin, rx] : video_rx_) {
    if (rx.window_started == 0) continue;
    const bool loss =
        rx.window_completed < rx.window_started || static_cast<std::int64_t>(rx.pending.size()) > 2;
    net::Packet report;
    report.dst = route_.media_endpoint;
    report.l7_len = 48;
    report.kind = net::StreamKind::kControl;
    report.origin_id = origin;  // the participant this report concerns
    report.seq = loss ? 1 : 0;
    if (config_.abr_feedback) {
      // Delivery feedback rides the report as a sim-side payload; the wire
      // size above is untouched.
      auto fb = std::make_shared<AbrFeedback>();
      fb->delivered_bytes = rx.window_bytes;
      fb->window_seconds = 0.5;
      if (rx.window_pkts > 1) {
        fb->inter_ack_ms = (rx.window_last_arrival - rx.window_first_arrival).millis() /
                           static_cast<double>(rx.window_pkts - 1);
      }
      fb->loss_fraction = std::clamp(
          static_cast<double>(rx.window_started - rx.window_completed) /
              static_cast<double>(rx.window_started),
          0.0, 1.0);
      if (rx.window_pkts > 0 && rx.base_delay_ms >= 0.0) {
        fb->queue_delay_ms =
            std::max(0.0, rx.window_delay_sum_ms / static_cast<double>(rx.window_pkts) -
                              rx.base_delay_ms);
      }
      fb->backlog_frames = static_cast<std::int64_t>(rx.pending.size());
      report.payload = std::move(fb);
      rx.window_bytes = 0;
      rx.window_pkts = 0;
      rx.window_delay_sum_ms = 0.0;
    }
    socket_->send(std::move(report));
    if (loss) ++stats_.loss_reports_sent;
    rx.window_started = 0;
    rx.window_completed = 0;
  }
}

media::Frame VcaClient::render_screen() const {
  media::Frame screen{config_.video_width, config_.video_height, 12};
  if (config_.view == platform::ViewMode::kAudioOnly) return screen;

  // Streams with decodable content, in origin order (host first).
  std::vector<const RxStream*> streams;
  std::vector<std::uint32_t> origins;
  for (const auto& [origin, rx] : video_rx_) {
    if (rx.decoder && rx.decoder->frames_decoded() > 0) origins.push_back(origin);
  }
  std::sort(origins.begin(), origins.end());
  for (auto o : origins) streams.push_back(&video_rx_.at(o));
  if (streams.empty()) return screen;

  if (config_.view == platform::ViewMode::kFullScreen) {
    screen = streams.front()->decoder->current();
  } else {
    // Gallery: 2×2 tiles of up to four streams.
    const int tw = config_.video_width / 2;
    const int th = config_.video_height / 2;
    for (std::size_t i = 0; i < streams.size() && i < 4; ++i) {
      const media::Frame tile = streams[i]->decoder->current().resized(tw, th);
      const int ox = static_cast<int>(i % 2) * tw;
      const int oy = static_cast<int>(i / 2) * th;
      for (int y = 0; y < th; ++y) {
        for (int x = 0; x < tw; ++x) screen.set(ox + x, oy + y, tile.at(x, y));
      }
    }
  }
  // UI widgets (buttons, thumbnails) occlude the screen border even in full
  // screen — the reason the paper pads its feeds (Fig 13).
  const int b = config_.ui_border;
  for (int y = 0; y < screen.height(); ++y) {
    for (int x = 0; x < screen.width(); ++x) {
      if (x < b || y < b || x >= screen.width() - b || y >= screen.height() - b) {
        screen.set(x, y, 80);
      }
    }
  }
  return screen;
}

media::AudioSignal VcaClient::received_audio() const {
  media::AudioSignal out;
  out.sample_rate = audio_dev_.sample_rate();
  out.samples.assign(audio_mix_.begin(),
                     audio_mix_.begin() + static_cast<std::ptrdiff_t>(audio_mix_len_));
  return out;
}

}  // namespace vc::client
