// Desktop recorder — the simplescreenrecorder analog (Section 3.1): records
// the client's rendered screen (with its UI occlusion) plus the received
// audio, inside the VM itself, platform-agnostically.
#pragma once

#include "client/vca_client.h"
#include "media/align.h"

namespace vc::client {

class DesktopRecorder {
 public:
  DesktopRecorder(VcaClient& client, double fps = 15.0);

  /// Records for `duration` starting now.
  void start(SimDuration duration);
  bool recording() const { return recording_; }

  const media::RecordedVideo& video() const { return video_; }
  /// Snapshot of the client's received audio (call after recording ends).
  media::AudioSignal audio() const { return client_.received_audio(); }

 private:
  void tick();

  VcaClient& client_;
  double fps_;
  SimTime end_{};
  bool recording_ = false;
  media::RecordedVideo video_;
};

}  // namespace vc::client
