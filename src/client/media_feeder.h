// Media feeder: replays a video feed and an audio track into the loopback
// devices on the event loop — the aplay/ffmpeg replay of the paper's setup.
#pragma once

#include <memory>

#include "client/loopback.h"
#include "media/feeds.h"
#include "net/event_loop.h"

namespace vc::client {

class MediaFeeder {
 public:
  MediaFeeder(net::EventLoop& loop, VideoLoopbackDevice& video_dev, AudioLoopbackDevice& audio_dev);

  /// Starts replaying `feed` into the video device at its native fps, from
  /// now until `duration` elapses.
  void play_video(std::shared_ptr<const media::VideoFeed> feed, SimDuration duration);

  /// Starts replaying `audio` into the audio device in 20 ms chunks.
  void play_audio(media::AudioSignal audio);

  void stop();
  bool video_active() const { return video_active_; }

 private:
  void video_tick();
  void audio_tick();

  net::EventLoop& loop_;
  VideoLoopbackDevice& video_dev_;
  AudioLoopbackDevice& audio_dev_;

  std::shared_ptr<const media::VideoFeed> feed_;
  SimTime video_end_{};
  std::int64_t next_frame_ = 0;
  bool video_active_ = false;

  media::AudioSignal audio_;
  std::size_t audio_pos_ = 0;
  bool audio_active_ = false;
  bool stopped_ = false;
};

}  // namespace vc::client
