#include "client/rtt_prober.h"

#include <numeric>

namespace vc::client {

RttProber::RttProber(net::Host& host) : host_(host) {
  socket_ = &host_.udp_bind(0);  // ephemeral probing port
  socket_->on_receive([this](const net::Packet& pkt) {
    if (pkt.kind != net::StreamKind::kProbeReply) return;
    auto it = outstanding_.find(pkt.seq);
    if (it == outstanding_.end()) return;
    const double rtt_ms = (host_.network().now() - it->second).millis();
    rtts_ms_.push_back(rtt_ms);
    if (m_answered_ != nullptr) {
      m_answered_->inc();
      m_rtt_ms_->observe(rtt_ms);
    }
    if (tracer_ != nullptr) tracer_->span("rtt.probe", it->second, host_.network().now(), rtt_ms);
    outstanding_.erase(it);
  });
}

void RttProber::attach_metrics(MetricsRegistry& registry, const std::string& prefix) {
  m_sent_ = &registry.counter(prefix + ".sent");
  m_answered_ = &registry.counter(prefix + ".answered");
  m_rtt_ms_ = &registry.histogram(prefix + ".rtt_ms");
}

RttProber::~RttProber() { host_.udp_close(socket_->port()); }

void RttProber::start(net::Endpoint target, SimDuration interval, int count) {
  target_ = target;
  interval_ = interval;
  remaining_ = count;
  running_ = true;
  tick();
}

void RttProber::stop() { running_ = false; }

void RttProber::tick() {
  if (!running_ || remaining_ <= 0) {
    running_ = false;
    return;
  }
  const std::uint64_t seq = next_seq_++;
  outstanding_[seq] = host_.network().now();
  net::Packet probe;
  probe.dst = target_;
  probe.l7_len = 64;
  probe.kind = net::StreamKind::kProbe;
  probe.seq = seq;
  socket_->send(std::move(probe));
  ++sent_;
  if (m_sent_ != nullptr) m_sent_->inc();
  --remaining_;
  host_.network().loop().schedule_after(interval_, [this] { tick(); });
}

double RttProber::average_ms() const {
  if (rtts_ms_.empty()) return 0.0;
  return std::accumulate(rtts_ms_.begin(), rtts_ms_.end(), 0.0) /
         static_cast<double>(rtts_ms_.size());
}

}  // namespace vc::client
