#include "client/monitor.h"

namespace vc::client {

ClientMonitor::ClientMonitor(net::Host& host) : ClientMonitor(host, Config{}) {}

ClientMonitor::ClientMonitor(net::Host& host, Config config)
    : host_(host), config_(config), capture_(host, config.clock_offset), prober_(host) {}

void ClientMonitor::start_active_probing() {
  host_.network().loop().schedule_after(config_.discovery_delay, [this] { try_discover(); });
}

void ClientMonitor::try_discover() {
  // Discovery over the live capture; thresholds scaled down because only a
  // few seconds of traffic exist this early in the session.
  capture::DiscoveryConfig cfg;
  cfg.min_l7_bytes = 20'000;
  cfg.min_packets = 20;
  const auto endpoints = capture::discover_endpoints(capture_.trace(), cfg);
  if (endpoints.empty()) {
    if (++discovery_attempts_ < 10) {
      host_.network().loop().schedule_after(seconds(1), [this] { try_discover(); });
    }
    return;
  }
  media_endpoint_ = endpoints.front().endpoint;
  prober_.start(*media_endpoint_, config_.probe_interval, config_.probe_count);
}

}  // namespace vc::client
