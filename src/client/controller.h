// Client controller (Fig 1): replays a platform-specific UI workflow script
// — launch, login, meeting create/join, layout changes, leave — by
// scheduling the corresponding client actions, as xdotool/adb scripts do in
// the real testbed.
#pragma once

#include <functional>

#include "client/vca_client.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/tracer.h"

namespace vc::client {

class ClientController {
 public:
  /// Scripted step durations; defaults vary slightly by platform (web
  /// clients log in slower than the native Zoom client).
  struct Script {
    SimDuration launch = seconds(2);
    SimDuration login = seconds(1);
    SimDuration join = seconds(1);
  };

  enum class State { kIdle, kLaunching, kLoggingIn, kCreating, kJoining, kInMeeting,
                     kReconnecting, kLeft, kAborted };

  /// Exponential-backoff reconnection after a lost route (relay crash):
  /// attempt k waits min(initial·multiplier^k, max) ± jitter, re-joining
  /// through the platform until it succeeds or max_attempts is exhausted.
  struct ReconnectPolicy {
    SimDuration initial_backoff = millis(500);
    double multiplier = 2.0;
    SimDuration max_backoff = seconds(8);
    /// Uniform ± fraction applied to every backoff (decorrelates the
    /// reconnect stampede across clients, like real jittered retry).
    double jitter = 0.2;
    int max_attempts = 20;
  };

  ClientController(VcaClient& client, Script script);
  /// Uses per-platform default timings.
  explicit ClientController(VcaClient& client);

  State state() const { return state_; }

  /// Records workflow events: `client.meetings_created` / `client.joins`
  /// counters and a `client.join_latency_ms` histogram (start_join call to
  /// in-meeting, i.e. the scripted launch+login+join path).
  void set_metrics(MetricsRegistry* registry) { metrics_ = registry; }

  /// Flight-recorder hook (borrowed; nullptr detaches): reconnection
  /// lifecycle instants `client.connection_lost`, `client.reconnected`
  /// (value = ms from loss to recovery) and `client.reconnect_giveup`.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Arms automatic reconnection: when the in-meeting client loses its route
  /// the controller enters kReconnecting and drives the backoff loop above.
  /// Jitter draws come from a controller-owned Rng seeded here — the network
  /// RNG stream never sees them, which keeps faulted runs deterministic.
  /// Emits `client.disconnects` / `client.reconnect_attempts` /
  /// `client.reconnects` / `client.reconnect_giveups` counters and a
  /// `client.time_to_reconnect_ms` histogram via set_metrics.
  void enable_reconnect(ReconnectPolicy policy, std::uint64_t seed);

  /// Arms client-side ABR on the underlying client (the workflow analogue of
  /// flipping a bandwidth-saver setting in the real UI). Forwards to
  /// VcaClient::set_abr; kNone disarms.
  void enable_abr(const abr::AbrConfig& config) { client_.set_abr(config); }

  /// Abandons the scripted workflow: any still-pending step becomes a no-op
  /// and its callback never fires (used when an orchestrator gives up on a
  /// session). In-meeting clients are left untouched.
  void abort();

  /// Launch → login → create meeting; invokes `on_created` with the id.
  void start_host(std::function<void(platform::MeetingId)> on_created);
  /// Launch → login → join; invokes `on_joined` when in-meeting.
  void start_join(platform::MeetingId meeting, std::function<void()> on_joined);
  /// Schedules a layout change (only valid once in meeting).
  void change_layout_after(SimDuration delay, platform::ViewMode view);
  /// Schedules leaving the meeting.
  void leave_after(SimDuration delay);

 private:
  net::EventLoop& loop();
  void on_connection_lost();
  void schedule_reconnect_attempt();

  VcaClient& client_;
  Script script_;
  State state_ = State::kIdle;
  MetricsRegistry* metrics_ = nullptr;
  Tracer* tracer_ = nullptr;

  bool reconnect_enabled_ = false;
  ReconnectPolicy reconnect_;
  Rng reconnect_rng_{0};
  SimTime lost_at_{};
  int attempt_ = 0;
  /// Bumped on every disconnect and on leave: a pending backoff attempt from
  /// a stale cycle sees a different epoch and becomes a no-op.
  std::uint64_t reconnect_epoch_ = 0;
};

/// Platform-default workflow timings.
ClientController::Script default_script(platform::PlatformId id);

}  // namespace vc::client
