// Client controller (Fig 1): replays a platform-specific UI workflow script
// — launch, login, meeting create/join, layout changes, leave — by
// scheduling the corresponding client actions, as xdotool/adb scripts do in
// the real testbed.
#pragma once

#include <functional>

#include "client/vca_client.h"
#include "common/metrics.h"

namespace vc::client {

class ClientController {
 public:
  /// Scripted step durations; defaults vary slightly by platform (web
  /// clients log in slower than the native Zoom client).
  struct Script {
    SimDuration launch = seconds(2);
    SimDuration login = seconds(1);
    SimDuration join = seconds(1);
  };

  enum class State { kIdle, kLaunching, kLoggingIn, kCreating, kJoining, kInMeeting, kLeft,
                     kAborted };

  ClientController(VcaClient& client, Script script);
  /// Uses per-platform default timings.
  explicit ClientController(VcaClient& client);

  State state() const { return state_; }

  /// Records workflow events: `client.meetings_created` / `client.joins`
  /// counters and a `client.join_latency_ms` histogram (start_join call to
  /// in-meeting, i.e. the scripted launch+login+join path).
  void set_metrics(MetricsRegistry* registry) { metrics_ = registry; }

  /// Abandons the scripted workflow: any still-pending step becomes a no-op
  /// and its callback never fires (used when an orchestrator gives up on a
  /// session). In-meeting clients are left untouched.
  void abort();

  /// Launch → login → create meeting; invokes `on_created` with the id.
  void start_host(std::function<void(platform::MeetingId)> on_created);
  /// Launch → login → join; invokes `on_joined` when in-meeting.
  void start_join(platform::MeetingId meeting, std::function<void()> on_joined);
  /// Schedules a layout change (only valid once in meeting).
  void change_layout_after(SimDuration delay, platform::ViewMode view);
  /// Schedules leaving the meeting.
  void leave_after(SimDuration delay);

 private:
  net::EventLoop& loop();

  VcaClient& client_;
  Script script_;
  State state_ = State::kIdle;
  MetricsRegistry* metrics_ = nullptr;
};

/// Platform-default workflow timings.
ClientController::Script default_script(platform::PlatformId id);

}  // namespace vc::client
