// Client monitor (Fig 1): captures the client's traffic with a tcpdump
// analog and, in an "active probing" pipeline, discovers streaming service
// endpoints from the live packet stream and RTT-probes them.
#pragma once

#include <memory>
#include <optional>

#include "capture/endpoint_discovery.h"
#include "capture/trace.h"
#include "client/rtt_prober.h"
#include "net/network.h"

namespace vc::client {

class ClientMonitor {
 public:
  struct Config {
    /// Clock offset of this VM (cloud time sync keeps it ~±1 ms).
    SimDuration clock_offset{};
    /// Wait before first discovery attempt (streams must ramp up).
    SimDuration discovery_delay = seconds(3);
    /// Probing cadence and count once an endpoint is found.
    SimDuration probe_interval = millis(900);
    int probe_count = 100;
  };

  explicit ClientMonitor(net::Host& host);  // default config
  ClientMonitor(net::Host& host, Config config);

  /// Starts the active-probing pipeline: after discovery_delay, discovers
  /// the heaviest streaming endpoint in the capture so far and probes it.
  void start_active_probing();

  /// Forwards to the prober's metrics under `<prefix>.probe.*`. The default
  /// prefix puts run-report instruments in the `rtt.*` family
  /// (rtt.probe.sent / rtt.probe.answered / rtt.probe.rtt_ms).
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix = "rtt") {
    prober_.attach_metrics(registry, prefix + ".probe");
  }

  /// Forwards the flight-recorder hook to the prober (`rtt.probe` spans).
  void set_tracer(Tracer* tracer) { prober_.set_tracer(tracer); }

  /// The capture so far (the paper dumps this to a file for offline
  /// analysis; see capture::write_trace_file).
  capture::Trace trace() const { return capture_.trace(); }
  void stop_capture() { capture_.stop(); }

  /// Discovered media endpoint, if any yet.
  const std::optional<net::Endpoint>& media_endpoint() const { return media_endpoint_; }
  const RttProber& prober() const { return prober_; }

 private:
  void try_discover();

  net::Host& host_;
  Config config_;
  capture::PacketCapture capture_;
  RttProber prober_;
  std::optional<net::Endpoint> media_endpoint_;
  int discovery_attempts_ = 0;
};

}  // namespace vc::client
