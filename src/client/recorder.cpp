#include "client/recorder.h"

namespace vc::client {

DesktopRecorder::DesktopRecorder(VcaClient& client, double fps) : client_(client), fps_(fps) {
  video_.fps = fps;
}

void DesktopRecorder::start(SimDuration duration) {
  end_ = client_.host().network().now() + duration;
  recording_ = true;
  video_.frames.clear();
  tick();
}

void DesktopRecorder::tick() {
  if (client_.host().network().now() >= end_) {
    recording_ = false;
    return;
  }
  video_.frames.push_back(client_.render_screen());
  client_.host().network().loop().schedule_after(seconds_f(1.0 / fps_), [this] { tick(); });
}

}  // namespace vc::client
