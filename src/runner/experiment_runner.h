// Parallel multi-session experiment runner.
//
// VCA measurement campaigns are embarrassingly parallel across sessions:
// every sweep point (participant count, bandwidth cap, location, repetition)
// is an independent simulated session with its own EventLoop, Network and
// platform instance. The runner executes N such session tasks on a thread
// pool and reduces their results into one aggregate report.
//
// Determinism contract: a task's only inputs are its SessionContext (seed =
// base_seed ^ task_index) and whatever immutable config the caller captured,
// and tasks share no mutable state. Results are reduced strictly in
// task-index order after all tasks finish, so the same base seed produces a
// bit-identical aggregate report at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/tracer.h"

namespace vc::runner {

/// Handed to each session task. The task builds its whole simulation world
/// from `seed`, records named scalar observations via sample(), and lets
/// instrumented components (shapers, relays, controllers) write into
/// `metrics`.
struct SessionContext {
  std::size_t task_index = 0;
  /// base_seed ^ task_index: a per-task deterministic stream.
  std::uint64_t seed = 0;
  MetricsRegistry metrics;
  /// Per-task flight recorder, non-null iff Config::trace_dir is set. The
  /// runner owns it and writes `<task_index>.trace.json` after the task
  /// returns; the task just hands it to instrumented components.
  Tracer* tracer = nullptr;

  void sample(const std::string& name, double value) { samples.emplace_back(name, value); }

  std::vector<std::pair<std::string, double>> samples;
};

/// Aggregate of a whole run. Sample/gauge values aggregate as RunningStats
/// across sessions; counters sum; histograms merge their streaming moments.
struct RunReport {
  std::string label;
  std::uint64_t base_seed = 0;
  std::size_t sessions = 0;
  std::size_t threads = 0;
  /// (task_index, what()) for tasks that threw; their partial results are
  /// excluded from the aggregates below.
  std::vector<std::pair<std::size_t, std::string>> failures;

  std::map<std::string, RunningStats> samples;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, RunningStats> gauges;
  std::map<std::string, RunningStats> histograms;

  /// Flight-recorder accounting when Config::trace_dir was set. All-integer
  /// sums over tasks (in task-index order), so the block is bit-identical at
  /// any thread count; when tracing is off the block is absent from
  /// aggregate_json() entirely, keeping untraced reports unchanged.
  struct TraceSummary {
    bool enabled = false;
    std::uint64_t records = 0;   // retained in the rings across all tasks
    std::uint64_t dropped = 0;   // lost to ring wrap across all tasks
    std::uint64_t spans = 0;
    std::uint64_t instants = 0;
    std::uint64_t counter_samples = 0;
    std::uint64_t write_failures = 0;  // trace files that failed to write
  };
  TraceSummary trace;

  /// Wall-clock of the run. Timing metadata only — deliberately excluded
  /// from aggregate_json() so reports compare equal across thread counts.
  double wall_seconds = 0.0;

  /// Deterministic JSON: everything except timing/thread metadata. Two runs
  /// with the same base seed and task list produce byte-identical strings
  /// regardless of thread count.
  std::string aggregate_json() const;
  /// Full JSON report: aggregate plus {threads, wall_seconds}.
  std::string to_json() const;
  /// Flat CSV: kind,name,count,mean,stddev,min,max,sum — counters carry the
  /// summed value in `sum` with count 1.
  std::string to_csv() const;

  /// Convenience for rendering tables from a report; nullptr if absent.
  const RunningStats* find_sample(const std::string& name) const;
};

class ExperimentRunner {
 public:
  struct Config {
    /// 0 = one thread per hardware core.
    std::size_t threads = 0;
    std::uint64_t base_seed = 1;
    std::string label = "experiment";
    /// Non-empty: enable per-task flight recording and write one Chrome
    /// trace-event file `<trace_dir>/<task_index>.trace.json` per task.
    /// Files are keyed by task index (never by thread), so a traced run
    /// emits byte-identical files at any thread count.
    std::string trace_dir;
    /// Ring capacity (records) of each per-task Tracer.
    std::size_t trace_capacity = Tracer::kDefaultCapacity;
  };

  using Task = std::function<void(SessionContext&)>;

  explicit ExperimentRunner(Config config) : config_(config) {}

  /// Runs `n_sessions` invocations of `task` across the pool. `task` must be
  /// callable concurrently from several threads (each call gets its own
  /// context; capture only immutable state).
  RunReport run(std::size_t n_sessions, const Task& task) const;

 private:
  Config config_;
};

/// Writes `text` to `path`; returns false (and logs nothing) on I/O failure.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace vc::runner
