// Parallel multi-session experiment runner.
//
// VCA measurement campaigns are embarrassingly parallel across sessions:
// every sweep point (participant count, bandwidth cap, location, repetition)
// is an independent simulated session with its own EventLoop, Network and
// platform instance. The runner executes N such session tasks on a thread
// pool and reduces their results into one aggregate report.
//
// Determinism contract: a task's only inputs are its SessionContext (seed =
// base_seed ^ task_index) and whatever immutable config the caller captured,
// and tasks share no mutable state. Results are reduced strictly in
// task-index order after all tasks finish, so the same base seed produces a
// bit-identical aggregate report at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_timeline.h"
#include "common/stats.h"
#include "common/time.h"
#include "common/tracer.h"
#include "health/health_monitor.h"

namespace vc::runner {

/// Handed to each session task. The task builds its whole simulation world
/// from `seed`, records named scalar observations via sample(), and lets
/// instrumented components (shapers, relays, controllers) write into
/// `metrics`.
struct SessionContext {
  std::size_t task_index = 0;
  /// base_seed ^ task_index: a per-task deterministic stream.
  std::uint64_t seed = 0;
  MetricsRegistry metrics;
  /// Per-task flight recorder, non-null iff Config::trace_dir is set. The
  /// runner owns it and writes `<task_index>.trace.json` after the task
  /// returns; the task just hands it to instrumented components.
  Tracer* tracer = nullptr;
  /// Per-task metric sampler, non-null iff Config::timeline_dir is set. The
  /// runner owns it and writes `<task_index>.timeline.json` after the task
  /// returns; the task arms it on its session's event loop (typically by
  /// passing it to a core benchmark config, which calls
  /// `timeline->arm(loop, ctx.metrics, origin, until)`).
  MetricsTimeline* timeline = nullptr;
  /// SLO rule engine attached as the timeline's observer, non-null iff
  /// Config::health_rules is non-empty (and timeline_dir is set). Tasks may
  /// read events() after their session loop drains — e.g. to bucket breach
  /// begins by phase; breaches still open then are closed by the runner's
  /// finalize, after the task returns.
  const health::HealthMonitor* health = nullptr;

  void sample(const std::string& name, double value) { samples.emplace_back(name, value); }

  std::vector<std::pair<std::string, double>> samples;
};

/// Aggregate of a whole run. Sample/gauge values aggregate as RunningStats
/// across sessions; counters sum; histograms merge their streaming moments.
struct RunReport {
  std::string label;
  std::uint64_t base_seed = 0;
  std::size_t sessions = 0;
  std::size_t threads = 0;
  /// (task_index, what()) for tasks that threw; their partial results are
  /// excluded from the aggregates below.
  std::vector<std::pair<std::size_t, std::string>> failures;

  std::map<std::string, RunningStats> samples;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, RunningStats> gauges;
  /// Per-task gauge high-water marks (Gauge::max()), aggregated like gauges.
  /// Surfaces peak queue depths that drained before the end-of-run snapshot;
  /// absent from aggregate_json() when no gauges exist.
  std::map<std::string, RunningStats> gauge_hwm;
  std::map<std::string, RunningStats> histograms;

  /// Flight-recorder accounting when Config::trace_dir was set. All-integer
  /// sums over tasks (in task-index order), so the block is bit-identical at
  /// any thread count; when tracing is off the block is absent from
  /// aggregate_json() entirely, keeping untraced reports unchanged.
  struct TraceSummary {
    bool enabled = false;
    std::uint64_t records = 0;   // retained in the rings across all tasks
    std::uint64_t dropped = 0;   // lost to ring wrap across all tasks
    std::uint64_t spans = 0;
    std::uint64_t instants = 0;
    std::uint64_t counter_samples = 0;
    std::uint64_t write_failures = 0;  // trace files that failed to write
  };
  TraceSummary trace;

  /// Metric-timeline accounting when Config::timeline_dir was set. Same
  /// determinism shape as TraceSummary: all-integer sums in task-index
  /// order, absent from aggregate_json() when timelines are off.
  struct TimelineSummary {
    bool enabled = false;
    std::uint64_t samples = 0;  // snapshots taken across all tasks
    std::uint64_t columns = 0;  // columns discovered across all tasks
    std::uint64_t dropped = 0;  // snapshots lost to ring wrap
    std::uint64_t write_failures = 0;
    std::uint64_t health_rules = 0;   // rules armed, summed over tasks
    std::uint64_t health_events = 0;  // breach begin+end edges
    std::uint64_t health_breaches = 0;
  };
  TimelineSummary timeline;

  /// Wall-clock of the run. Timing metadata only — deliberately excluded
  /// from aggregate_json() so reports compare equal across thread counts.
  double wall_seconds = 0.0;

  /// Throughput rates (`<counter>_per_sec` = summed counter / wall_seconds)
  /// for the counters named in Config::rate_counters. Derived from
  /// wall-clock, so like threads/wall_seconds they live OUTSIDE
  /// aggregate_json() — to_json() carries them in a separate "rates" block.
  std::map<std::string, double> rates;

  /// Deterministic JSON: everything except timing/thread metadata. Two runs
  /// with the same base seed and task list produce byte-identical strings
  /// regardless of thread count.
  std::string aggregate_json() const;
  /// Full JSON report: aggregate plus {threads, wall_seconds}.
  std::string to_json() const;
  /// Flat CSV: kind,name,count,mean,stddev,min,max,sum — counters carry the
  /// summed value in `sum` with count 1.
  std::string to_csv() const;

  /// Convenience for rendering tables from a report; nullptr if absent.
  const RunningStats* find_sample(const std::string& name) const;
};

class ExperimentRunner {
 public:
  struct Config {
    /// 0 = one thread per hardware core.
    std::size_t threads = 0;
    std::uint64_t base_seed = 1;
    std::string label = "experiment";
    /// Non-empty: enable per-task flight recording and write one Chrome
    /// trace-event file `<trace_dir>/<task_index>.trace.json` per task.
    /// Files are keyed by task index (never by thread), so a traced run
    /// emits byte-identical files at any thread count.
    std::string trace_dir;
    /// Ring capacity (records) of each per-task Tracer.
    std::size_t trace_capacity = Tracer::kDefaultCapacity;
    /// Non-empty: hand each task an enabled MetricsTimeline and write one
    /// `<timeline_dir>/<task_index>.timeline.json` per task (the task still
    /// has to arm it on its session loop). Files are keyed by task index, so
    /// a sampled run emits byte-identical files at any thread count.
    std::string timeline_dir;
    /// Sampling period / ring capacity (snapshots) of each per-task timeline.
    SimDuration timeline_interval = seconds(1);
    std::size_t timeline_capacity = 1024;
    /// SLO rules evaluated against every timeline snapshot (requires
    /// timeline_dir). Breach events land in the timeline file's "health"
    /// section, in per-task `health.<rule>.breaches` counters, and in the
    /// report's timeline summary.
    std::vector<health::SloRule> health_rules;
    /// Counters to report as first-class throughput rates: each name here
    /// yields RunReport::rates["<name>_per_sec"] = summed value /
    /// wall_seconds (0 when the counter never fired). Missing counters rate
    /// as 0 rather than erroring, so sweeps can name instruments that only
    /// some configurations register.
    std::vector<std::string> rate_counters;
  };

  using Task = std::function<void(SessionContext&)>;

  explicit ExperimentRunner(Config config) : config_(config) {}

  /// Runs `n_sessions` invocations of `task` across the pool. `task` must be
  /// callable concurrently from several threads (each call gets its own
  /// context; capture only immutable state).
  RunReport run(std::size_t n_sessions, const Task& task) const;

 private:
  Config config_;
};

/// Writes `text` to `path`; returns false (and logs nothing) on I/O failure.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace vc::runner
