#include "runner/experiment_runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "common/json.h"

namespace vc::runner {
namespace {

// Round-trippable representation: aggregates built from identical doubles
// render identically, which is all bit-identical reports need. Goes through
// json::format_number so the bytes don't depend on LC_NUMERIC.
std::string json_num(double v) { return json::format_number(v); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void append_stats_object(std::string& out, const RunningStats& s) {
  out += "{\"count\":" + std::to_string(s.count());
  out += ",\"mean\":" + json_num(s.mean());
  out += ",\"stddev\":" + json_num(s.stddev());
  out += ",\"min\":" + json_num(s.min());
  out += ",\"max\":" + json_num(s.max());
  out += ",\"sum\":" + json_num(s.sum());
  out += "}";
}

void append_stats_map(std::string& out, const char* key,
                      const std::map<std::string, RunningStats>& m) {
  out += "\"";
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [name, stats] : m) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":";
    append_stats_object(out, stats);
  }
  out += "}";
}

}  // namespace

std::string RunReport::aggregate_json() const {
  std::string out = "{";
  out += "\"label\":\"" + json_escape(label) + "\"";
  out += ",\"base_seed\":" + std::to_string(base_seed);
  out += ",\"sessions\":" + std::to_string(sessions);
  out += ",\"failures\":[";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i) out += ",";
    out += "{\"task\":" + std::to_string(failures[i].first) + ",\"error\":\"" +
           json_escape(failures[i].second) + "\"}";
  }
  out += "],";
  if (trace.enabled) {
    out += "\"trace\":{\"records\":" + std::to_string(trace.records);
    out += ",\"dropped\":" + std::to_string(trace.dropped);
    out += ",\"spans\":" + std::to_string(trace.spans);
    out += ",\"instants\":" + std::to_string(trace.instants);
    out += ",\"counter_samples\":" + std::to_string(trace.counter_samples);
    out += ",\"write_failures\":" + std::to_string(trace.write_failures);
    out += "},";
  }
  if (timeline.enabled) {
    out += "\"timeline\":{\"samples\":" + std::to_string(timeline.samples);
    out += ",\"columns\":" + std::to_string(timeline.columns);
    out += ",\"dropped\":" + std::to_string(timeline.dropped);
    out += ",\"write_failures\":" + std::to_string(timeline.write_failures);
    out += ",\"health_rules\":" + std::to_string(timeline.health_rules);
    out += ",\"health_events\":" + std::to_string(timeline.health_events);
    out += ",\"health_breaches\":" + std::to_string(timeline.health_breaches);
    out += "},";
  }
  append_stats_map(out, "samples", samples);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(value);
  }
  out += "},";
  append_stats_map(out, "gauges", gauges);
  if (!gauge_hwm.empty()) {
    out += ",";
    append_stats_map(out, "gauge_hwm", gauge_hwm);
  }
  out += ",";
  append_stats_map(out, "histograms", histograms);
  out += "}";
  return out;
}

std::string RunReport::to_json() const {
  std::string out = "{\"aggregate\":" + aggregate_json();
  out += ",\"threads\":" + std::to_string(threads);
  out += ",\"wall_seconds\":" + json_num(wall_seconds);
  if (!rates.empty()) {
    out += ",\"rates\":{";
    bool first = true;
    for (const auto& [name, value] : rates) {
      if (!first) out += ",";
      first = false;
      out += "\"" + name + "\":" + json_num(value);
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string RunReport::to_csv() const {
  std::string out = "kind,name,count,mean,stddev,min,max,sum\n";
  auto stats_rows = [&out](const char* kind, const std::map<std::string, RunningStats>& m) {
    for (const auto& [name, s] : m) {
      out += std::string(kind) + "," + name + "," + std::to_string(s.count()) + "," +
             json_num(s.mean()) + "," + json_num(s.stddev()) + "," + json_num(s.min()) + "," +
             json_num(s.max()) + "," + json_num(s.sum()) + "\n";
    }
  };
  stats_rows("sample", samples);
  for (const auto& [name, value] : counters) {
    out += "counter," + name + ",1,,,,," + std::to_string(value) + "\n";
  }
  stats_rows("gauge", gauges);
  stats_rows("gauge_hwm", gauge_hwm);
  stats_rows("histogram", histograms);
  return out;
}

const RunningStats* RunReport::find_sample(const std::string& name) const {
  const auto it = samples.find(name);
  return it == samples.end() ? nullptr : &it->second;
}

RunReport ExperimentRunner::run(std::size_t n_sessions, const Task& task) const {
  struct Outcome {
    bool ok = false;
    std::string error;
    std::vector<std::pair<std::string, double>> samples;
    MetricsRegistry metrics;
    // Flight-recorder accounting (zeros when tracing is off).
    std::uint64_t trace_records = 0;
    std::uint64_t trace_dropped = 0;
    std::uint64_t trace_spans = 0;
    std::uint64_t trace_instants = 0;
    std::uint64_t trace_counters = 0;
    bool trace_write_failed = false;
    // Timeline accounting (zeros when timelines are off).
    std::uint64_t timeline_samples = 0;
    std::uint64_t timeline_columns = 0;
    std::uint64_t timeline_dropped = 0;
    std::uint64_t health_rules = 0;
    std::uint64_t health_events = 0;
    std::uint64_t health_breaches = 0;
    bool timeline_write_failed = false;
  };
  std::vector<Outcome> outcomes(n_sessions);

  const bool tracing = !config_.trace_dir.empty();
  if (tracing) {
    std::error_code ec;
    std::filesystem::create_directories(config_.trace_dir, ec);
  }
  const bool timelining = !config_.timeline_dir.empty();
  if (timelining) {
    std::error_code ec;
    std::filesystem::create_directories(config_.timeline_dir, ec);
  }

  std::size_t threads = config_.threads != 0
                            ? config_.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  if (n_sessions > 0) threads = std::min(threads, n_sessions);

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_sessions) return;
      SessionContext ctx;
      ctx.task_index = i;
      ctx.seed = config_.base_seed ^ static_cast<std::uint64_t>(i);
      std::unique_ptr<Tracer> tracer;
      if (tracing) {
        tracer = std::make_unique<Tracer>(config_.trace_capacity);
        tracer->set_enabled(true);
        ctx.tracer = tracer.get();
      }
      std::unique_ptr<MetricsTimeline> timeline;
      std::unique_ptr<health::HealthMonitor> monitor;
      if (timelining) {
        timeline = std::make_unique<MetricsTimeline>(
            MetricsTimeline::Config{config_.timeline_interval, config_.timeline_capacity});
        timeline->set_enabled(true);
        if (!config_.health_rules.empty()) {
          monitor = std::make_unique<health::HealthMonitor>();
          for (const health::SloRule& rule : config_.health_rules) monitor->add_rule(rule);
          // Binding resolves the per-rule breach counters now, so they exist
          // (at zero) from the first snapshot on — stable column sets.
          monitor->bind(&ctx.metrics, ctx.tracer);
          timeline->set_observer(monitor.get());
        }
        ctx.timeline = timeline.get();
        ctx.health = monitor.get();
      }
      Outcome& out = outcomes[i];
      try {
        task(ctx);
        out.ok = true;
      } catch (const std::exception& e) {
        out.error = e.what();
      } catch (...) {
        out.error = "unknown exception";
      }
      // Close open SLO breaches before ctx.metrics moves out from under the
      // monitor's counter pointers and the timeline's registry binding.
      if (timeline != nullptr) timeline->finalize();
      out.samples = std::move(ctx.samples);
      out.metrics = std::move(ctx.metrics);
      if (tracer != nullptr) {
        out.trace_records = tracer->size();
        out.trace_dropped = tracer->dropped();
        out.trace_spans = tracer->spans_recorded();
        out.trace_instants = tracer->instants_recorded();
        out.trace_counters = tracer->counters_recorded();
        // One file per task index, written by whichever worker ran the task:
        // filenames and contents depend only on the task, never the thread.
        const std::string path =
            config_.trace_dir + "/" + std::to_string(i) + ".trace.json";
        out.trace_write_failed = !write_text_file(path, tracer->to_chrome_json());
      }
      if (timeline != nullptr) {
        out.timeline_samples = timeline->total_samples();
        out.timeline_columns = timeline->column_count();
        out.timeline_dropped = timeline->dropped_samples();
        if (monitor != nullptr) {
          out.health_rules = monitor->rules().size();
          out.health_events = monitor->events().size();
          out.health_breaches = monitor->total_breaches();
        }
        // The "health" section appears only when the monitor has rules: a
        // monitor armed with zero rules leaves the file byte-identical to an
        // unmonitored run.
        std::string doc = "{\"timeline\":" + timeline->to_json();
        if (monitor != nullptr && !monitor->empty()) doc += ",\"health\":" + monitor->to_json();
        doc += "}\n";
        const std::string path =
            config_.timeline_dir + "/" + std::to_string(i) + ".timeline.json";
        out.timeline_write_failed = !write_text_file(path, doc);
      }
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Reduce strictly in task-index order: with per-task results fixed, the
  // merge sequence (and hence every floating-point aggregate) is independent
  // of how tasks were scheduled across threads.
  RunReport report;
  report.label = config_.label;
  report.base_seed = config_.base_seed;
  report.sessions = n_sessions;
  report.threads = threads;
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  report.trace.enabled = tracing;
  report.timeline.enabled = timelining;
  for (std::size_t i = 0; i < n_sessions; ++i) {
    const Outcome& out = outcomes[i];
    if (tracing) {
      report.trace.records += out.trace_records;
      report.trace.dropped += out.trace_dropped;
      report.trace.spans += out.trace_spans;
      report.trace.instants += out.trace_instants;
      report.trace.counter_samples += out.trace_counters;
      if (out.trace_write_failed) ++report.trace.write_failures;
    }
    if (timelining) {
      report.timeline.samples += out.timeline_samples;
      report.timeline.columns += out.timeline_columns;
      report.timeline.dropped += out.timeline_dropped;
      report.timeline.health_rules += out.health_rules;
      report.timeline.health_events += out.health_events;
      report.timeline.health_breaches += out.health_breaches;
      if (out.timeline_write_failed) ++report.timeline.write_failures;
    }
    if (!out.ok) {
      report.failures.emplace_back(i, out.error);
      continue;
    }
    for (const auto& [name, value] : out.samples) report.samples[name].add(value);
    for (const auto& [name, counter] : out.metrics.counters()) {
      report.counters[name] += counter.value();
    }
    for (const auto& [name, gauge] : out.metrics.gauges()) {
      report.gauges[name].add(gauge.value());
      report.gauge_hwm[name].add(gauge.max());
    }
    for (const auto& [name, histo] : out.metrics.histograms()) {
      report.histograms[name].merge(histo.stats());
    }
  }
  for (const std::string& name : config_.rate_counters) {
    const auto it = report.counters.find(name);
    const double total = it == report.counters.end() ? 0.0 : static_cast<double>(it->second);
    report.rates[name + "_per_sec"] =
        report.wall_seconds > 0.0 ? total / report.wall_seconds : 0.0;
  }
  return report;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out{path, std::ios::binary};
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace vc::runner
