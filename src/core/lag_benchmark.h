// Streaming-lag benchmark (Section 4.2; Figs 2, 4–11; the endpoint counts of
// Fig 3's discussion).
//
// One VM hosts meetings and broadcasts the periodic-flash feed; six VMs join
// with no media of their own. Lags come from the big-packet method over the
// host/participant captures; RTTs from each client monitor's active-probing
// pipeline against its discovered service endpoint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/trace.h"
#include "common/metrics.h"
#include "common/metrics_timeline.h"
#include "common/stats.h"
#include "common/tracer.h"
#include "platform/base_platform.h"

namespace vc::core {

struct LagBenchmarkConfig {
  platform::PlatformId platform = platform::PlatformId::kZoom;
  std::string host_site = "US-East";
  /// Sites of the six passive participants (duplicates allowed: the paper
  /// runs two VMs in US-East and two in US-West).
  std::vector<std::string> participant_sites;
  int sessions = 20;
  SimDuration session_duration = seconds(120);
  /// Flash-feed geometry (small frames keep the codec cheap; the signal on
  /// the wire is what matters).
  /// Webex subscription tier (Section 6: the paid tier provisions relays
  /// near the meeting, collapsing the detour lags of the free tier).
  platform::WebexTier webex_tier = platform::WebexTier::kFree;
  int feed_width = 128;
  int feed_height = 96;
  double fps = 10.0;
  std::uint64_t seed = 1;
  /// Intra-session relay fan-out sharding (PlatformConfig::fan_out_shards):
  /// 0 = serial; any K produces byte-identical results, so runner-driven
  /// sweeps can turn this on without perturbing a single reported number.
  int fan_out_shards = 0;
  /// Optional sink for instrumentation: the network/event core, platform,
  /// session orchestrator and client monitors attach here, so runner-based
  /// sweeps get event-loop, delivery-batch and RTT-probe metrics per task.
  MetricsRegistry* metrics = nullptr;
  /// Optional flight recorder: wired into the event loop, links/shapers,
  /// relays, codecs and RTT probers, so traced runner sweeps capture
  /// loop.* / net.link.* / shaper.* / relay.* / codec.* / rtt.* records.
  Tracer* tracer = nullptr;
  /// Optional periodic sampler: armed on the testbed loop against `metrics`
  /// (required when set) for the whole run plus a short quiescent tail, so
  /// runner sweeps export per-task time-series (`<task>.timeline.json`).
  MetricsTimeline* timeline = nullptr;
};

/// Per-participant-VM aggregate across all sessions.
struct ParticipantLagResult {
  std::string label;                       // site name, disambiguated
  std::vector<double> lags_ms;             // pooled flash lags
  std::vector<double> session_rtt_ms;      // mean probe RTT per session
  std::size_t distinct_endpoints = 0;      // across this client's sessions
};

struct LagBenchmarkResult {
  platform::PlatformId platform{};
  std::string host_site;
  std::vector<ParticipantLagResult> participants;
  double mean_distinct_endpoints = 0.0;    // Fig 3 discussion: 20 / 19.5 / 1.8
  std::uint16_t dominant_media_port = 0;   // 8801 / 9000 / 19305
  /// Host + first participant traces of the final session (Fig 2 timeline).
  capture::Trace sample_sender_trace;
  capture::Trace sample_receiver_trace;
};

LagBenchmarkResult run_lag_benchmark(const LagBenchmarkConfig& config);

/// The paper's US scenarios (Figs 4–5): six participants for a US host.
std::vector<std::string> us_participant_sites(const std::string& host_site);
/// The Europe scenarios (Figs 6–7).
std::vector<std::string> europe_participant_sites(const std::string& host_site);

}  // namespace vc::core
