// Fault-recovery benchmark: one flash-feed session per run with a scripted
// mid-call fault (default: the session relay crashes and restarts), measuring
// how the platform's clients ride it out — time to reconnect, packets lost in
// the outage, and the streaming-lag distribution before / during / after the
// fault window. The paper stops at static impairments (Figs 17–18); this is
// the dynamic counterpart its Section 6 future work gestures at.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/controller.h"
#include "common/metrics.h"
#include "common/metrics_timeline.h"
#include "common/tracer.h"
#include "fault/fault_plan.h"
#include "platform/base_platform.h"

namespace vc::core {

struct FaultRecoveryConfig {
  platform::PlatformId platform = platform::PlatformId::kZoom;
  std::string host_site = "US-East";
  std::vector<std::string> participant_sites = {"US-West", "US-Central"};
  SimDuration session_duration = seconds(40);
  /// Fault window, relative to media start (the plan's arm origin) — the
  /// same plan shape at every seed, which is what makes the outage sweep a
  /// controlled experiment.
  SimDuration outage_start = seconds(10);
  SimDuration outage_duration = seconds(3);
  /// Receiver flash events inside the outage window or within this grace
  /// after it count as the "during" phase (the recovery tail — backoff,
  /// re-join, re-subscription — is attributed to the fault, not to steady
  /// state).
  SimDuration recovery_grace = seconds(5);
  int feed_width = 128;
  int feed_height = 96;
  double fps = 10.0;
  std::uint64_t seed = 1;
  int fan_out_shards = 0;
  client::ClientController::ReconnectPolicy reconnect{};
  /// Override the default timeline (crash relay 0 at outage_start for
  /// outage_duration) with an arbitrary plan.
  fault::FaultPlan custom_plan;
  bool use_custom_plan = false;
  /// false = control run: no plan is armed at all. Paired with an armed
  /// empty plan this is the A side of the ≤2% empty-plan overhead gate.
  bool inject = true;
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  /// Optional periodic sampler, armed over the session (plus a quiescent
  /// tail) so the outage window is visible as a time-series; sampled against
  /// `metrics` when set, else the run's local registry.
  MetricsTimeline* timeline = nullptr;
};

struct FaultRecoveryResult {
  platform::PlatformId platform{};
  int clients = 0;  // host + participants
  std::int64_t disconnects = 0;
  std::int64_t reconnects = 0;
  std::int64_t reconnect_attempts = 0;
  std::int64_t reconnect_giveups = 0;
  double mean_time_to_reconnect_ms = 0.0;
  double max_time_to_reconnect_ms = 0.0;
  /// Packets that arrived at crashed relays (summed across the platform's
  /// relays) — the outage's direct loss.
  std::int64_t packets_lost_in_outage = 0;
  /// Worst flash lag observed at/after the fault (the lag-spike HWM).
  double lag_spike_hwm_ms = 0.0;
  /// Phase boundaries in absolute sim time (fixed when media starts), so
  /// callers can bucket timeline samples / SLO breach events by phase.
  SimTime outage_begin_abs{};
  SimTime recovery_end_abs{};
  std::vector<double> lags_before_ms;
  std::vector<double> lags_during_ms;  // fault window + recovery grace
  std::vector<double> lags_after_ms;
};

FaultRecoveryResult run_fault_recovery_benchmark(const FaultRecoveryConfig& config);

}  // namespace vc::core
