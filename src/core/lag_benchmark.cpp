#include "core/lag_benchmark.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "capture/endpoint_discovery.h"
#include "capture/lag_detector.h"
#include "client/media_feeder.h"
#include "client/monitor.h"
#include "client/vca_client.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace vc::core {

std::vector<std::string> us_participant_sites(const std::string& host_site) {
  // Seven US VMs total (Table 3): the host plus these six.
  std::vector<std::string> sites = {"US-Central", "US-NCentral", "US-SCentral",
                                    "US-East",    "US-West",     "US-West"};
  if (host_site == "US-West") {
    sites = {"US-Central", "US-NCentral", "US-SCentral", "US-East", "US-East", "US-West"};
  }
  return sites;
}

std::vector<std::string> europe_participant_sites(const std::string& host_site) {
  std::vector<std::string> all = {"CH", "DE", "IE", "NL", "FR", "UK-South", "UK-West"};
  std::vector<std::string> sites;
  bool host_removed = false;
  for (const auto& s : all) {
    if (!host_removed && s == host_site) {
      host_removed = true;
      continue;
    }
    sites.push_back(s);
  }
  if (!host_removed) throw std::invalid_argument{"host site must be one of the Europe sites"};
  return sites;
}

LagBenchmarkResult run_lag_benchmark(const LagBenchmarkConfig& config) {
  if (config.participant_sites.empty()) throw std::invalid_argument{"no participants"};
  testbed::CloudTestbed bed{config.seed};
  std::unique_ptr<platform::BasePlatform> platform;
  const platform::PlatformConfig platform_cfg{.seed = config.seed ^ 0xABC,
                                              .fan_out_shards = config.fan_out_shards};
  if (config.platform == platform::PlatformId::kWebex &&
      config.webex_tier == platform::WebexTier::kPaid) {
    platform = std::make_unique<platform::WebexPlatform>(bed.network(), platform_cfg,
                                                         platform::WebexTier::kPaid);
  } else {
    platform = platform::make_platform(config.platform, bed.network(), platform_cfg);
  }
  if (config.metrics != nullptr) {
    bed.network().attach_metrics(*config.metrics);
    platform->set_metrics(config.metrics);
  }
  if (config.tracer != nullptr) {
    bed.network().set_tracer(config.tracer);
    platform->set_tracer(config.tracer);
  }

  // Provision VMs once; they persist across sessions (Meet endpoint
  // stickiness is keyed to the client VM's address).
  net::Host& host_vm = bed.create_vm(testbed::site_by_name(config.host_site), 8);
  std::vector<net::Host*> part_vms;
  std::unordered_map<std::string, int> site_use;
  std::vector<std::string> labels;
  for (const auto& site : config.participant_sites) {
    const int idx = site_use[site]++;
    part_vms.push_back(&bed.create_vm(testbed::site_by_name(site), idx));
    labels.push_back(idx == 0 ? site : site + "-" + std::to_string(idx + 1));
  }

  LagBenchmarkResult result;
  result.platform = config.platform;
  result.host_site = config.host_site;
  result.participants.resize(part_vms.size());
  for (std::size_t i = 0; i < labels.size(); ++i) result.participants[i].label = labels[i];

  std::vector<std::vector<capture::Trace>> session_traces(part_vms.size());
  std::vector<capture::Trace> all_traces;

  const auto feed = std::make_shared<media::FlashFeed>(
      media::FeedParams{config.feed_width, config.feed_height, config.fps, config.seed ^ 0xF1A5});

  for (int s = 0; s < config.sessions; ++s) {
    // Fresh clients per session (the controller relaunches the app), same VMs.
    client::VcaClient::Config host_cfg;
    host_cfg.send_video = true;
    host_cfg.send_audio = false;  // the lag feed is a one-way video signal
    host_cfg.decode_video = false;
    host_cfg.video_width = config.feed_width;
    host_cfg.video_height = config.feed_height;
    host_cfg.fps = config.fps;
    host_cfg.seed = config.seed + static_cast<std::uint64_t>(s) * 7919;
    client::VcaClient host_client{host_vm, *platform, host_cfg};
    if (config.metrics != nullptr) host_client.attach_metrics(*config.metrics);
    if (config.tracer != nullptr) host_client.set_tracer(config.tracer);
    client::MediaFeeder feeder{bed.loop(), host_client.video_device(), host_client.audio_device()};
    capture::PacketCapture host_capture{host_vm, bed.clock_offset(host_vm)};

    std::vector<std::unique_ptr<client::VcaClient>> participants;
    std::vector<std::unique_ptr<client::ClientMonitor>> monitors;
    for (std::size_t i = 0; i < part_vms.size(); ++i) {
      client::VcaClient::Config cfg;
      cfg.send_video = false;
      cfg.send_audio = false;
      cfg.decode_video = false;
      cfg.seed = config.seed + 31 * i + static_cast<std::uint64_t>(s);
      participants.push_back(std::make_unique<client::VcaClient>(*part_vms[i], *platform, cfg));
      client::ClientMonitor::Config mon_cfg;
      mon_cfg.clock_offset = bed.clock_offset(*part_vms[i]);
      mon_cfg.probe_count = static_cast<int>(config.session_duration.seconds()) - 20;
      if (config.metrics != nullptr) participants.back()->attach_metrics(*config.metrics);
      if (config.tracer != nullptr) participants.back()->set_tracer(config.tracer);
      monitors.push_back(std::make_unique<client::ClientMonitor>(*part_vms[i], mon_cfg));
      if (config.metrics != nullptr) monitors.back()->attach_metrics(*config.metrics);
      if (config.tracer != nullptr) monitors.back()->set_tracer(config.tracer);
    }

    testbed::SessionOrchestrator::Plan plan;
    plan.host = &host_client;
    for (auto& p : participants) plan.participants.push_back(p.get());
    plan.media_duration = config.session_duration;
    plan.metrics = config.metrics;
    plan.on_all_joined = [&] {
      feeder.play_video(feed, config.session_duration);
      for (auto& m : monitors) m->start_active_probing();
    };
    testbed::SessionOrchestrator orchestrator{std::move(plan)};
    if (config.timeline != nullptr && config.metrics != nullptr) {
      // Re-armed per session because run_all() drains the loop: the bound
      // (join + media + teardown headroom) is what lets the tick chain end
      // and the session terminate.
      const SimTime origin = bed.loop().now();
      config.timeline->arm(bed.loop(), *config.metrics, origin,
                           origin + config.session_duration + seconds(30));
    }
    orchestrator.start();
    bed.run_all();

    // Harvest this session.
    const capture::Trace sender_trace = host_capture.trace();
    for (std::size_t i = 0; i < part_vms.size(); ++i) {
      capture::Trace rx_trace = monitors[i]->trace();
      capture::LagDetectorConfig lag_cfg;
      lag_cfg.flash_period = seconds_f(feed->period_sec());
      auto lags = capture::measure_streaming_lag_ms(sender_trace, rx_trace, lag_cfg);
      auto& out = result.participants[i];
      out.lags_ms.insert(out.lags_ms.end(), lags.begin(), lags.end());
      if (!monitors[i]->prober().rtts_ms().empty()) {
        out.session_rtt_ms.push_back(monitors[i]->prober().average_ms());
      }
      session_traces[i].push_back(rx_trace);
      all_traces.push_back(rx_trace);
      if (s == config.sessions - 1 && i == 0) {
        result.sample_sender_trace = sender_trace;
        result.sample_receiver_trace = std::move(rx_trace);
      }
    }
  }

  double total_endpoints = 0.0;
  for (std::size_t i = 0; i < part_vms.size(); ++i) {
    result.participants[i].distinct_endpoints = capture::distinct_endpoint_ips(session_traces[i]);
    total_endpoints += static_cast<double>(result.participants[i].distinct_endpoints);
  }
  result.mean_distinct_endpoints = total_endpoints / static_cast<double>(part_vms.size());
  result.dominant_media_port = capture::dominant_media_port(all_traces);
  return result;
}

}  // namespace vc::core
