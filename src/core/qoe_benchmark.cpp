#include "core/qoe_benchmark.h"

#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "capture/rate_analyzer.h"
#include "client/media_feeder.h"
#include "client/recorder.h"
#include "client/vca_client.h"
#include "media/align.h"
#include "media/feeds.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace vc::core {
namespace {

std::shared_ptr<const media::VideoFeed> make_content_feed(const QoeBenchmarkConfig& cfg,
                                                          std::uint64_t seed) {
  media::FeedParams params{cfg.content_width, cfg.content_height, cfg.fps, seed};
  if (cfg.motion == platform::MotionClass::kHighMotion) {
    return std::make_shared<media::TourGuideFeed>(params);
  }
  return std::make_shared<media::TalkingHeadFeed>(params);
}

/// One broadcast session against an existing world. Shared by the aggregate
/// benchmark (persistent bed/VMs across sessions, like the paper's
/// long-lived testbed) and the self-contained per-seed entry point.
QoeSessionResult run_one_session(const QoeBenchmarkConfig& config, testbed::CloudTestbed& bed,
                                 platform::BasePlatform& platform, net::Host& host_vm,
                                 const std::vector<net::Host*>& rx_vms, std::uint64_t feed_seed,
                                 std::uint64_t session_seed) {
  const int padded_w = config.content_width + 2 * config.padding;
  const int padded_h = config.content_height + 2 * config.padding;
  const auto content = make_content_feed(config, feed_seed);
  const auto padded = std::make_shared<media::PaddedFeed>(content, config.padding);

  client::VcaClient::Config host_cfg;
  host_cfg.send_video = true;
  host_cfg.send_audio = true;
  host_cfg.decode_video = false;
  host_cfg.motion = config.motion;
  host_cfg.video_width = padded_w;
  host_cfg.video_height = padded_h;
  host_cfg.fps = config.fps;
  host_cfg.ui_border = config.padding > 8 ? config.padding - 8 : 0;
  // Rates-only runs skip the pixel codec: frame sizes follow the same
  // policy targets either way, and nobody scores pixels.
  host_cfg.synthetic_video = !config.score_video;
  host_cfg.seed = session_seed;
  client::VcaClient host_client{host_vm, platform, host_cfg};
  client::MediaFeeder feeder{bed.loop(), host_client.video_device(), host_client.audio_device()};
  capture::PacketCapture host_capture{host_vm, bed.clock_offset(host_vm)};

  std::vector<std::unique_ptr<client::VcaClient>> receivers;
  std::vector<std::unique_ptr<client::DesktopRecorder>> recorders;
  std::vector<std::unique_ptr<capture::PacketCapture>> captures;
  for (std::size_t i = 0; i < rx_vms.size(); ++i) {
    client::VcaClient::Config cfg;
    cfg.send_video = false;
    cfg.send_audio = false;
    cfg.decode_video = true;
    cfg.video_width = padded_w;
    cfg.video_height = padded_h;
    cfg.fps = config.fps;
    cfg.ui_border = host_cfg.ui_border;
    cfg.seed = session_seed + 17 * (i + 1);
    cfg.decode_video = config.score_video;
    receivers.push_back(std::make_unique<client::VcaClient>(*rx_vms[i], platform, cfg));
    recorders.push_back(std::make_unique<client::DesktopRecorder>(*receivers.back(), config.fps));
    captures.push_back(
        std::make_unique<capture::PacketCapture>(*rx_vms[i], bed.clock_offset(*rx_vms[i])));
  }

  SimTime media_start{};
  testbed::SessionOrchestrator::Plan plan;
  plan.host = &host_client;
  for (auto& r : receivers) plan.participants.push_back(r.get());
  plan.media_duration = config.media_duration;
  plan.on_all_joined = [&] {
    media_start = bed.network().now();
    feeder.play_video(padded, config.media_duration);
    const double audio_sec = config.media_duration.seconds();
    feeder.play_audio(media::synthesize_voice(audio_sec, session_seed ^ 0xA0D10));
    if (config.score_video) {
      for (auto& rec : recorders) rec->start(config.media_duration);
    }
  };
  testbed::SessionOrchestrator orchestrator{std::move(plan)};
  orchestrator.start();
  bed.run_all();

  // ---- scoring ----
  QoeSessionResult out;
  const capture::Trace host_trace = host_capture.trace();
  const capture::RateAnalyzer host_rates{host_trace};
  out.upload_kbps = host_rates.average(media_start).upload.as_kbps();

  double session_download_acc = 0.0;
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    QoeReceiverResult rx;
    // Rates from the receiver's capture.
    const capture::Trace rx_trace = captures[i]->trace();
    const capture::RateAnalyzer rx_rates{rx_trace};
    rx.download_kbps = rx_rates.average(media_start).download.as_kbps();
    session_download_acc += rx.download_kbps;

    // Delivery ratio (freezes under congestion show up here).
    const auto& st = receivers[i]->stats();
    if (host_client.stats().video_frames_sent > 0) {
      rx.has_delivery_ratio = true;
      rx.delivery_ratio = static_cast<double>(st.video_frames_completed) /
                          static_cast<double>(host_client.stats().video_frames_sent);
    }

    if (config.score_video) {
      // Recording post-processing: crop padding (which also removes the UI
      // border), then temporal alignment to the injected feed.
      const media::RecordedVideo cropped = media::crop_and_resize(
          recorders[i]->video(), config.padding, config.content_width, config.content_height);
      if (cropped.frames.size() >= 12) {  // shorter recordings can't be scored
        std::vector<media::Frame> reference;
        reference.reserve(cropped.frames.size());
        for (std::size_t k = 0; k < cropped.frames.size(); ++k) {
          reference.push_back(content->frame_at(static_cast<std::int64_t>(k)));
        }
        const std::int64_t shift =
            media::best_temporal_shift(reference, cropped.frames, /*max_shift=*/10);
        const auto aligned = media::align_sequences(reference, cropped.frames, shift);

        std::vector<media::Frame> ref_sample;
        std::vector<media::Frame> rec_sample;
        for (std::size_t k = 0; k < aligned.reference.size();
             k += static_cast<std::size_t>(config.metric_stride)) {
          ref_sample.push_back(aligned.reference[k]);
          rec_sample.push_back(aligned.recording[k]);
        }
        if (!ref_sample.empty()) {
          const auto qoe = media::qoe::mean_video_qoe(ref_sample, rec_sample);
          rx.has_video_qoe = true;
          rx.psnr = qoe.psnr;
          rx.ssim = qoe.ssim;
          rx.vifp = qoe.vifp;
        }
      }
    }
    out.receivers.push_back(rx);
  }
  out.session_download_kbps = session_download_acc / static_cast<double>(receivers.size());
  return out;
}

void validate_geometry(const QoeBenchmarkConfig& config) {
  if (config.receiver_sites.empty()) throw std::invalid_argument{"need at least one receiver"};
  const int padded_w = config.content_width + 2 * config.padding;
  const int padded_h = config.content_height + 2 * config.padding;
  if (padded_w % 8 != 0 || padded_h % 8 != 0) {
    throw std::invalid_argument{"padded feed dimensions must be multiples of 8"};
  }
}

}  // namespace

std::vector<std::string> us_qoe_receiver_sites(int n) {
  // Host in US-East; receivers alternate between US-West and US-East.
  const std::vector<std::string> pool = {"US-West", "US-East", "US-West", "US-East", "US-West"};
  if (n < 1 || n > static_cast<int>(pool.size())) throw std::invalid_argument{"n in [1,5]"};
  return {pool.begin(), pool.begin() + n};
}

std::vector<std::string> europe_qoe_receiver_sites(int n) {
  // Host in Switzerland; receivers in France, Germany, Ireland, UK (Fig 16).
  const std::vector<std::string> pool = {"FR", "DE", "IE", "UK-South", "NL"};
  if (n < 1 || n > static_cast<int>(pool.size())) throw std::invalid_argument{"n in [1,5]"};
  return {pool.begin(), pool.begin() + n};
}

QoeBenchmarkResult run_qoe_benchmark(const QoeBenchmarkConfig& config) {
  validate_geometry(config);

  testbed::CloudTestbed bed{config.seed};
  auto platform = platform::make_platform(config.platform, bed.network(), config.seed ^ 0xBEEF);

  net::Host& host_vm = bed.create_vm(testbed::site_by_name(config.host_site), 8);
  std::vector<net::Host*> rx_vms;
  std::unordered_map<std::string, int> site_use;
  for (const auto& site : config.receiver_sites) {
    rx_vms.push_back(&bed.create_vm(testbed::site_by_name(site), site_use[site]++));
  }

  QoeBenchmarkResult result;
  result.platform = config.platform;
  result.motion = config.motion;
  result.receivers = static_cast<int>(rx_vms.size());

  for (int s = 0; s < config.sessions; ++s) {
    const std::uint64_t session_seed = config.seed + static_cast<std::uint64_t>(s) * 6151;
    const QoeSessionResult session = run_one_session(config, bed, *platform, host_vm, rx_vms,
                                                     config.seed ^ 0xC0FFEE, session_seed);
    result.upload_kbps.add(session.upload_kbps);
    for (const QoeReceiverResult& rx : session.receivers) {
      result.download_kbps.add(rx.download_kbps);
      if (rx.has_delivery_ratio) result.delivery_ratio.add(rx.delivery_ratio);
      if (rx.has_video_qoe) {
        result.psnr.add(rx.psnr);
        result.ssim.add(rx.ssim);
        result.vifp.add(rx.vifp);
      }
    }
    result.session_download_kbps.push_back(session.session_download_kbps);
  }
  return result;
}

QoeSessionResult run_qoe_session(const QoeBenchmarkConfig& config, std::uint64_t seed) {
  validate_geometry(config);
  testbed::CloudTestbed bed{seed};
  auto platform = platform::make_platform(config.platform, bed.network(), seed ^ 0xBEEF);
  net::Host& host_vm = bed.create_vm(testbed::site_by_name(config.host_site), 8);
  std::vector<net::Host*> rx_vms;
  std::unordered_map<std::string, int> site_use;
  for (const auto& site : config.receiver_sites) {
    rx_vms.push_back(&bed.create_vm(testbed::site_by_name(site), site_use[site]++));
  }
  return run_one_session(config, bed, *platform, host_vm, rx_vms, seed ^ 0xC0FFEE, seed);
}

}  // namespace vc::core
