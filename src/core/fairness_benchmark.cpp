#include "core/fairness_benchmark.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "client/media_feeder.h"
#include "client/vca_client.h"
#include "media/feeds.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace vc::core {
namespace {

/// Jain's fairness index: (Σx)² / (n·Σx²); 1 when all equal, 1/n when one
/// flow starves the rest. Empty/zero inputs report 0.
double jain(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (xs.empty() || sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

/// First bin index from which the rate timeline stays inside
/// ± band × steady; -1 if it never does (or there is no steady rate).
int convergence_bin(const std::vector<double>& rates_kbps, double steady, double band) {
  if (steady <= 0.0 || rates_kbps.empty()) return -1;
  int settled_from = -1;
  for (int i = 0; i < static_cast<int>(rates_kbps.size()); ++i) {
    const bool inside = std::abs(rates_kbps[static_cast<std::size_t>(i)] - steady) <= band * steady;
    if (inside && settled_from < 0) settled_from = i;
    if (!inside) settled_from = -1;
  }
  return settled_from;
}

}  // namespace

std::vector<FairnessFlowConfig> default_fairness_flows(int n) {
  static constexpr platform::PlatformId kPlatforms[] = {
      platform::PlatformId::kZoom, platform::PlatformId::kWebex, platform::PlatformId::kMeet};
  static constexpr abr::AbrKind kKinds[] = {abr::AbrKind::kThroughput, abr::AbrKind::kBuffer,
                                            abr::AbrKind::kMpc};
  static const char* kSites[] = {"US-West", "US-Central", "US-SCentral"};
  std::vector<FairnessFlowConfig> flows;
  for (int i = 0; i < n; ++i) {
    FairnessFlowConfig f;
    f.platform = kPlatforms[i % 3];
    f.abr = kKinds[(i / 3) % 3];
    f.sender_site = kSites[i % 3];
    flows.push_back(f);
  }
  return flows;
}

FairnessBenchmarkResult run_fairness_session(const FairnessBenchmarkConfig& config,
                                             std::uint64_t seed) {
  if (config.flows.size() < 2 || config.flows.size() > 8) {
    throw std::invalid_argument{"fairness benchmark wants 2-8 flows"};
  }
  const int n = static_cast<int>(config.flows.size());
  testbed::CloudTestbed bed{seed};

  // The shared bottleneck: every flow's receiver lives on this VM, behind
  // one ingress shaper. Named after its site so fault plans can target it.
  net::Host& gateway = bed.create_vm(testbed::site_by_name(config.gateway_site), 0);
  auto owned_shaper = std::make_unique<net::TokenBucketShaper>(
      bed.loop(), config.bottleneck, config.burst_bytes,
      static_cast<std::size_t>(config.queue_limit_packets));
  net::TokenBucketShaper* shaper = owned_shaper.get();
  MetricsRegistry shaper_metrics;
  shaper->attach_metrics(shaper_metrics, "bottleneck");
  gateway.set_ingress_shaper(std::move(owned_shaper));

  // Per-flow achieved goodput, binned for the convergence timeline. Taps run
  // post-shaper, so this is what the receivers actually get.
  const std::int64_t bin_us = std::max<std::int64_t>(1, config.rate_bin.micros());
  std::vector<std::vector<std::int64_t>> bins(static_cast<std::size_t>(n));
  const std::uint16_t base_port = 47000;
  gateway.add_tap([&bins, bin_us, n, base_port](net::Direction dir, const net::Packet& pkt,
                                                SimTime at) {
    if (dir != net::Direction::kIncoming || pkt.kind != net::StreamKind::kVideo) return;
    if (pkt.dst.port < base_port || pkt.dst.port >= static_cast<int>(base_port) + n) return;
    auto& flow_bins = bins[static_cast<std::size_t>(pkt.dst.port - base_port)];
    const auto bin = static_cast<std::size_t>(at.micros() / bin_us);
    if (flow_bins.size() <= bin) flow_bins.resize(bin + 1, 0);
    flow_bins[bin] += pkt.l7_len;
  });

  // Build the flows: per-flow platform instance, sender VM, receiver client
  // on the gateway (distinct media port), scripted session orchestration.
  struct Flow {
    std::unique_ptr<platform::BasePlatform> platform;
    std::unique_ptr<client::VcaClient> sender;
    std::unique_ptr<client::VcaClient> receiver;
    std::unique_ptr<client::MediaFeeder> feeder;
    std::shared_ptr<const media::VideoFeed> feed;
    std::unique_ptr<testbed::SessionOrchestrator> orchestrator;
    SimTime media_start{};
    bool started = false;
  };
  std::vector<Flow> flows(static_cast<std::size_t>(n));
  const int padded_w = config.feed_width + 2 * config.padding;
  const int padded_h = config.feed_height + 2 * config.padding;

  for (int i = 0; i < n; ++i) {
    const FairnessFlowConfig& fc = config.flows[static_cast<std::size_t>(i)];
    Flow& flow = flows[static_cast<std::size_t>(i)];
    const std::uint64_t flow_seed = seed + static_cast<std::uint64_t>(i) * 4447;

    platform::PlatformConfig pc;
    pc.seed = seed ^ (0xCABu + static_cast<std::uint64_t>(i) * 0x9E37u);
    pc.fan_out_shards = config.fan_out_shards;
    flow.platform = platform::make_platform(fc.platform, bed.network(), pc);

    net::Host& sender_vm = bed.create_vm(testbed::site_by_name(fc.sender_site), 10 + i);

    client::VcaClient::Config tx_cfg;
    tx_cfg.send_video = true;
    tx_cfg.send_audio = false;
    tx_cfg.decode_video = false;
    tx_cfg.motion = platform::MotionClass::kHighMotion;
    tx_cfg.video_width = padded_w;
    tx_cfg.video_height = padded_h;
    tx_cfg.fps = config.fps;
    tx_cfg.ui_border = config.padding > 8 ? config.padding - 8 : 0;
    tx_cfg.abr.kind = fc.abr;
    tx_cfg.abr.shadow = config.abr_shadow;
    tx_cfg.seed = flow_seed;
    flow.sender = std::make_unique<client::VcaClient>(sender_vm, *flow.platform, tx_cfg);
    flow.feeder = std::make_unique<client::MediaFeeder>(bed.loop(), flow.sender->video_device(),
                                                        flow.sender->audio_device());
    flow.feed = std::make_shared<media::TourGuideFeed>(media::FeedParams{
        config.feed_width, config.feed_height, config.fps, flow_seed ^ 0xFEED});

    client::VcaClient::Config rx_cfg;
    rx_cfg.send_video = false;
    rx_cfg.send_audio = false;
    rx_cfg.decode_video = false;
    rx_cfg.video_width = padded_w;
    rx_cfg.video_height = padded_h;
    rx_cfg.fps = config.fps;
    rx_cfg.ui_border = tx_cfg.ui_border;
    rx_cfg.media_port = static_cast<std::uint16_t>(base_port + i);
    // Delivery feedback riding the receiver's loss reports is what feeds the
    // sender's adapter; plain (kNone) flows skip the bookkeeping entirely.
    rx_cfg.abr_feedback = fc.abr != abr::AbrKind::kNone;
    rx_cfg.seed = flow_seed + 77;
    flow.receiver = std::make_unique<client::VcaClient>(gateway, *flow.platform, rx_cfg);
  }

  // Orchestrate all sessions concurrently; each flow starts media the moment
  // its own roster completes. The padded feed plays for the media duration.
  for (int i = 0; i < n; ++i) {
    Flow& flow = flows[static_cast<std::size_t>(i)];
    testbed::SessionOrchestrator::Plan plan;
    plan.host = flow.sender.get();
    plan.participants = {flow.receiver.get()};
    plan.media_duration = config.media_duration;
    plan.on_all_joined = [&flow, &bed, &config, i, &flows]() {
      flow.media_start = bed.network().now();
      flow.started = true;
      flow.feeder->play_video(std::make_shared<media::PaddedFeed>(flow.feed, config.padding),
                              config.media_duration);
      if (i == 0 && config.use_fault_plan && !config.fault_plan.empty()) {
        fault::FaultPlan::Bindings bindings;
        bindings.network = &bed.network();
        bindings.platform = flows[0].platform.get();
        config.fault_plan.arm(bindings, bed.network().now());
      }
    };
    flow.orchestrator = std::make_unique<testbed::SessionOrchestrator>(std::move(plan));
    flow.orchestrator->start();
  }
  bed.run_all();

  // --- measurement window: all flows streaming ---
  SimTime window_start = SimTime::zero();
  SimTime window_end = SimTime::infinity();
  for (const Flow& flow : flows) {
    if (!flow.started) continue;
    window_start = std::max(window_start, flow.media_start);
    window_end = std::min(window_end, flow.media_start + config.media_duration);
  }
  const std::size_t first_bin = static_cast<std::size_t>(
      (window_start.micros() + bin_us - 1) / bin_us);
  const std::size_t end_bin = static_cast<std::size_t>(window_end.micros() / bin_us);
  const double bin_seconds = static_cast<double>(bin_us) * 1e-6;

  FairnessBenchmarkResult result;
  std::vector<double> rates_kbps;
  RunningStats convergence;
  for (int i = 0; i < n; ++i) {
    const Flow& flow = flows[static_cast<std::size_t>(i)];
    FairnessFlowResult fr;
    fr.platform = config.flows[static_cast<std::size_t>(i)].platform;
    fr.abr = config.flows[static_cast<std::size_t>(i)].abr;

    std::vector<double> timeline;
    std::int64_t total_bytes = 0;
    const auto& flow_bins = bins[static_cast<std::size_t>(i)];
    for (std::size_t b = first_bin; b < end_bin; ++b) {
      const std::int64_t got = b < flow_bins.size() ? flow_bins[b] : 0;
      timeline.push_back(static_cast<double>(got) * 8.0 / bin_seconds / 1000.0);
      total_bytes += got;
    }
    const double window_seconds = static_cast<double>(end_bin - first_bin) * bin_seconds;
    fr.achieved_kbps =
        window_seconds > 0.0 ? static_cast<double>(total_bytes) * 8.0 / window_seconds / 1000.0
                             : 0.0;

    // Steady state = mean of the window's last quarter; convergence = when
    // the timeline enters (and stays in) its ± band.
    if (!timeline.empty()) {
      const std::size_t tail_start = timeline.size() - std::max<std::size_t>(1, timeline.size() / 4);
      RunningStats tail;
      for (std::size_t b = tail_start; b < timeline.size(); ++b) tail.add(timeline[b]);
      const int bin0 = convergence_bin(timeline, tail.mean(), config.convergence_band);
      if (bin0 >= 0) {
        fr.convergence_seconds = static_cast<double>(bin0) * bin_seconds;
        convergence.add(fr.convergence_seconds);
      }
    }

    fr.abr_decisions = flow.sender->stats().abr_decisions;
    fr.abr_tier_switches = flow.sender->stats().abr_tier_switches;
    fr.final_target_kbps = flow.sender->current_video_target().as_kbps();
    rates_kbps.push_back(fr.achieved_kbps);
    result.flows.push_back(fr);
  }

  double sum_kbps = 0.0;
  for (double r : rates_kbps) sum_kbps += r;
  for (auto& fr : result.flows) fr.share = sum_kbps > 0.0 ? fr.achieved_kbps / sum_kbps : 0.0;
  result.jain_index = jain(rates_kbps);
  result.utilization = sum_kbps / config.bottleneck.as_kbps();
  if (!convergence.empty()) result.convergence_mean_seconds = convergence.mean();

  const auto& st = shaper->stats();
  const double offered = static_cast<double>(st.forwarded_bytes + st.dropped_bytes);
  result.drop_fraction = offered > 0.0 ? static_cast<double>(st.dropped_bytes) / offered : 0.0;
  result.queue_delay_mean_ms = shaper_metrics.histogram("bottleneck.queue_delay_ms").stats().mean();
  result.queue_delay_max_ms = st.max_queue_delay.millis();

  gateway.set_ingress_shaper(nullptr);
  return result;
}

}  // namespace vc::core
