// Streaming under bandwidth constraints (Section 4.4; Figs 17–18).
//
// A two-party session with an artificial ingress cap (the tc/ifb analog) on
// the receiving VM. Video QoE comes from the recorded-screen pipeline; audio
// QoE from loudness-normalized, offset-aligned MOS-LQO scoring of the
// received audio against the injected voice track.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "common/units.h"
#include "platform/rate_policy.h"

namespace vc::core {

struct BwCapBenchmarkConfig {
  platform::PlatformId platform = platform::PlatformId::kZoom;
  platform::MotionClass motion = platform::MotionClass::kLowMotion;
  /// Ingress cap on the receiver; DataRate::unlimited() for the baseline.
  DataRate cap = DataRate::unlimited();
  std::string host_site = "US-East";
  std::string receiver_site = "US-East";
  int sessions = 2;
  SimDuration media_duration = seconds(15);
  int content_width = 256;
  int content_height = 192;
  int padding = 24;
  double fps = 10.0;
  int metric_stride = 4;
  std::uint64_t seed = 5;
  /// Intra-session relay fan-out sharding (PlatformConfig::fan_out_shards);
  /// 0 = serial, any K is byte-identical.
  int fan_out_shards = 0;
};

struct BwCapBenchmarkResult {
  platform::PlatformId platform{};
  DataRate cap{};
  RunningStats psnr;
  RunningStats ssim;
  RunningStats vifp;
  RunningStats mos_lqo;
  /// Realized receiver download (post-shaper) and shaper drop fraction.
  RunningStats download_kbps;
  RunningStats drop_fraction;
  RunningStats delivery_ratio;
};

BwCapBenchmarkResult run_bwcap_benchmark(const BwCapBenchmarkConfig& config);

/// One capped session as a self-contained world: builds its own
/// testbed/platform from `seed` (ignoring config.seed / config.sessions), so
/// parallel experiment runners can drive it with per-task seed streams —
/// the Fig 17–18 sweep runs these through runner::ExperimentRunner.
/// The `has_*` flags mirror run_bwcap_benchmark's conditional adds (video
/// QoE needs enough recorded frames; audio QoE needs received samples).
struct BwCapSessionResult {
  bool has_video_qoe = false;
  double psnr = 0.0;
  double ssim = 0.0;
  double vifp = 0.0;
  bool has_audio_qoe = false;
  double mos_lqo = 0.0;
  bool has_delivery_ratio = false;
  double delivery_ratio = 0.0;
  double download_kbps = 0.0;
  double drop_fraction = 0.0;
};

BwCapSessionResult run_bwcap_session(const BwCapBenchmarkConfig& config, std::uint64_t seed);

}  // namespace vc::core
