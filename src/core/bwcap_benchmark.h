// Streaming under bandwidth constraints (Section 4.4; Figs 17–18).
//
// A two-party session with an artificial ingress cap (the tc/ifb analog) on
// the receiving VM. Video QoE comes from the recorded-screen pipeline; audio
// QoE from loudness-normalized, offset-aligned MOS-LQO scoring of the
// received audio against the injected voice track.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "common/units.h"
#include "platform/rate_policy.h"

namespace vc::core {

struct BwCapBenchmarkConfig {
  platform::PlatformId platform = platform::PlatformId::kZoom;
  platform::MotionClass motion = platform::MotionClass::kLowMotion;
  /// Ingress cap on the receiver; DataRate::unlimited() for the baseline.
  DataRate cap = DataRate::unlimited();
  std::string host_site = "US-East";
  std::string receiver_site = "US-East";
  int sessions = 2;
  SimDuration media_duration = seconds(15);
  int content_width = 256;
  int content_height = 192;
  int padding = 24;
  double fps = 10.0;
  int metric_stride = 4;
  std::uint64_t seed = 5;
};

struct BwCapBenchmarkResult {
  platform::PlatformId platform{};
  DataRate cap{};
  RunningStats psnr;
  RunningStats ssim;
  RunningStats vifp;
  RunningStats mos_lqo;
  /// Realized receiver download (post-shaper) and shaper drop fraction.
  RunningStats download_kbps;
  RunningStats drop_fraction;
  RunningStats delivery_ratio;
};

BwCapBenchmarkResult run_bwcap_benchmark(const BwCapBenchmarkConfig& config);

}  // namespace vc::core
