#include "core/bwcap_benchmark.h"

#include <memory>

#include "capture/rate_analyzer.h"
#include "client/media_feeder.h"
#include "client/recorder.h"
#include "client/vca_client.h"
#include "media/align.h"
#include "media/feeds.h"
#include "media/qoe/mos_lqo.h"
#include "media/qoe/video_metrics.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace vc::core {
namespace {

/// One capped two-party session against an existing world. Shared by the
/// aggregate benchmark (persistent bed/VMs across sessions, like the paper's
/// long-lived testbed) and the self-contained per-seed entry point.
BwCapSessionResult run_one_session(const BwCapBenchmarkConfig& config, testbed::CloudTestbed& bed,
                                   platform::BasePlatform& platform, net::Host& host_vm,
                                   net::Host& rx_vm, std::uint64_t feed_seed,
                                   std::uint64_t session_seed) {
  const int padded_w = config.content_width + 2 * config.padding;
  const int padded_h = config.content_height + 2 * config.padding;
  BwCapSessionResult out;

  // Arm the ingress shaper for this session (tc qdisc on ifb).
  net::TokenBucketShaper* shaper = nullptr;
  if (!config.cap.is_unlimited()) {
    auto owned = std::make_unique<net::TokenBucketShaper>(bed.loop(), config.cap,
                                                          /*burst=*/24'000,
                                                          /*queue_limit_packets=*/100);
    shaper = owned.get();
    rx_vm.set_ingress_shaper(std::move(owned));
  } else {
    rx_vm.set_ingress_shaper(nullptr);
  }

  std::shared_ptr<const media::VideoFeed> content;
  {
    media::FeedParams params{config.content_width, config.content_height, config.fps, feed_seed};
    if (config.motion == platform::MotionClass::kHighMotion) {
      content = std::make_shared<media::TourGuideFeed>(params);
    } else {
      content = std::make_shared<media::TalkingHeadFeed>(params);
    }
  }
  const auto padded = std::make_shared<media::PaddedFeed>(content, config.padding);
  const auto voice = media::synthesize_voice(config.media_duration.seconds() + 1.0,
                                             session_seed ^ 0x701CE);

  client::VcaClient::Config host_cfg;
  host_cfg.send_video = true;
  host_cfg.send_audio = true;
  host_cfg.decode_video = false;
  host_cfg.motion = config.motion;
  host_cfg.video_width = padded_w;
  host_cfg.video_height = padded_h;
  host_cfg.fps = config.fps;
  host_cfg.ui_border = config.padding > 8 ? config.padding - 8 : 0;
  host_cfg.seed = session_seed;
  client::VcaClient host_client{host_vm, platform, host_cfg};
  client::MediaFeeder feeder{bed.loop(), host_client.video_device(), host_client.audio_device()};

  client::VcaClient::Config rx_cfg;
  rx_cfg.send_video = false;
  rx_cfg.send_audio = false;
  rx_cfg.video_width = padded_w;
  rx_cfg.video_height = padded_h;
  rx_cfg.fps = config.fps;
  rx_cfg.ui_border = host_cfg.ui_border;
  rx_cfg.seed = session_seed + 77;
  client::VcaClient receiver{rx_vm, platform, rx_cfg};
  client::DesktopRecorder recorder{receiver, config.fps};
  capture::PacketCapture rx_capture{rx_vm, bed.clock_offset(rx_vm)};

  SimTime media_start{};
  testbed::SessionOrchestrator::Plan plan;
  plan.host = &host_client;
  plan.participants = {&receiver};
  plan.media_duration = config.media_duration;
  plan.on_all_joined = [&] {
    media_start = bed.network().now();
    feeder.play_video(padded, config.media_duration);
    feeder.play_audio(voice);
    recorder.start(config.media_duration);
  };
  testbed::SessionOrchestrator orchestrator{std::move(plan)};
  orchestrator.start();
  bed.run_all();

  // --- video QoE ---
  const media::RecordedVideo cropped = media::crop_and_resize(
      recorder.video(), config.padding, config.content_width, config.content_height);
  if (cropped.frames.size() >= 12) {
    std::vector<media::Frame> reference;
    for (std::size_t k = 0; k < cropped.frames.size(); ++k) {
      reference.push_back(content->frame_at(static_cast<std::int64_t>(k)));
    }
    const auto shift = media::best_temporal_shift(reference, cropped.frames, 10);
    const auto aligned = media::align_sequences(reference, cropped.frames, shift);
    std::vector<media::Frame> ref_sample;
    std::vector<media::Frame> rec_sample;
    for (std::size_t k = 0; k < aligned.reference.size();
         k += static_cast<std::size_t>(config.metric_stride)) {
      ref_sample.push_back(aligned.reference[k]);
      rec_sample.push_back(aligned.recording[k]);
    }
    const auto qoe = media::qoe::mean_video_qoe(ref_sample, rec_sample);
    out.has_video_qoe = true;
    out.psnr = qoe.psnr;
    out.ssim = qoe.ssim;
    out.vifp = qoe.vifp;
  }

  // --- audio QoE (EBU-style normalization → offset alignment → MOS) ---
  media::AudioSignal received = receiver.received_audio();
  if (!received.samples.empty()) {
    media::AudioSignal reference = voice;
    media::normalize_loudness(reference);
    media::normalize_loudness(received);
    const auto max_shift = static_cast<std::int64_t>(2 * reference.sample_rate);
    const auto offset = media::find_offset_samples(reference, received, max_shift);
    const auto aligned = media::shifted(received, offset, reference.samples.size());
    out.has_audio_qoe = true;
    out.mos_lqo = media::qoe::mos_lqo(reference, aligned);
  }

  // --- traffic ---
  const capture::Trace rx_trace = rx_capture.trace();
  const capture::RateAnalyzer rates{rx_trace};
  out.download_kbps = rates.average(media_start).download.as_kbps();
  if (shaper != nullptr) {
    const auto& st = shaper->stats();
    const double total = static_cast<double>(st.forwarded_bytes + st.dropped_bytes);
    out.drop_fraction = total > 0 ? static_cast<double>(st.dropped_bytes) / total : 0.0;
  }
  if (host_client.stats().video_frames_sent > 0) {
    out.has_delivery_ratio = true;
    out.delivery_ratio = static_cast<double>(receiver.stats().video_frames_completed) /
                         static_cast<double>(host_client.stats().video_frames_sent);
  }
  rx_vm.set_ingress_shaper(nullptr);  // disarm before the next session
  return out;
}

}  // namespace

BwCapBenchmarkResult run_bwcap_benchmark(const BwCapBenchmarkConfig& config) {
  testbed::CloudTestbed bed{config.seed};
  auto platform = platform::make_platform(
      config.platform, bed.network(),
      platform::PlatformConfig{.seed = config.seed ^ 0xCAB,
                               .fan_out_shards = config.fan_out_shards});

  net::Host& host_vm = bed.create_vm(testbed::site_by_name(config.host_site), 8);
  net::Host& rx_vm = bed.create_vm(testbed::site_by_name(config.receiver_site), 9);

  BwCapBenchmarkResult result;
  result.platform = config.platform;
  result.cap = config.cap;

  for (int s = 0; s < config.sessions; ++s) {
    const std::uint64_t session_seed = config.seed + static_cast<std::uint64_t>(s) * 4447;
    const BwCapSessionResult session = run_one_session(
        config, bed, *platform, host_vm, rx_vm, config.seed ^ 0xFEED, session_seed);
    if (session.has_video_qoe) {
      result.psnr.add(session.psnr);
      result.ssim.add(session.ssim);
      result.vifp.add(session.vifp);
    }
    if (session.has_audio_qoe) result.mos_lqo.add(session.mos_lqo);
    result.download_kbps.add(session.download_kbps);
    result.drop_fraction.add(session.drop_fraction);
    if (session.has_delivery_ratio) result.delivery_ratio.add(session.delivery_ratio);
  }
  return result;
}

BwCapSessionResult run_bwcap_session(const BwCapBenchmarkConfig& config, std::uint64_t seed) {
  testbed::CloudTestbed bed{seed};
  auto platform = platform::make_platform(
      config.platform, bed.network(),
      platform::PlatformConfig{.seed = seed ^ 0xCAB, .fan_out_shards = config.fan_out_shards});
  net::Host& host_vm = bed.create_vm(testbed::site_by_name(config.host_site), 8);
  net::Host& rx_vm = bed.create_vm(testbed::site_by_name(config.receiver_site), 9);
  return run_one_session(config, bed, *platform, host_vm, rx_vm, seed ^ 0xFEED, seed);
}

}  // namespace vc::core
