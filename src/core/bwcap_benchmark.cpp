#include "core/bwcap_benchmark.h"

#include <memory>

#include "capture/rate_analyzer.h"
#include "client/media_feeder.h"
#include "client/recorder.h"
#include "client/vca_client.h"
#include "media/align.h"
#include "media/feeds.h"
#include "media/qoe/mos_lqo.h"
#include "media/qoe/video_metrics.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace vc::core {

BwCapBenchmarkResult run_bwcap_benchmark(const BwCapBenchmarkConfig& config) {
  const int padded_w = config.content_width + 2 * config.padding;
  const int padded_h = config.content_height + 2 * config.padding;
  testbed::CloudTestbed bed{config.seed};
  auto platform = platform::make_platform(config.platform, bed.network(), config.seed ^ 0xCAB);

  net::Host& host_vm = bed.create_vm(testbed::site_by_name(config.host_site), 8);
  net::Host& rx_vm = bed.create_vm(testbed::site_by_name(config.receiver_site), 9);

  BwCapBenchmarkResult result;
  result.platform = config.platform;
  result.cap = config.cap;

  for (int s = 0; s < config.sessions; ++s) {
    const std::uint64_t session_seed = config.seed + static_cast<std::uint64_t>(s) * 4447;

    // Arm the ingress shaper for this session (tc qdisc on ifb).
    net::TokenBucketShaper* shaper = nullptr;
    if (!config.cap.is_unlimited()) {
      auto owned = std::make_unique<net::TokenBucketShaper>(bed.loop(), config.cap,
                                                            /*burst=*/24'000,
                                                            /*queue_limit_packets=*/100);
      shaper = owned.get();
      rx_vm.set_ingress_shaper(std::move(owned));
    } else {
      rx_vm.set_ingress_shaper(nullptr);
    }

    std::shared_ptr<const media::VideoFeed> content;
    {
      media::FeedParams params{config.content_width, config.content_height, config.fps,
                               config.seed ^ 0xFEED};
      if (config.motion == platform::MotionClass::kHighMotion) {
        content = std::make_shared<media::TourGuideFeed>(params);
      } else {
        content = std::make_shared<media::TalkingHeadFeed>(params);
      }
    }
    const auto padded = std::make_shared<media::PaddedFeed>(content, config.padding);
    const auto voice = media::synthesize_voice(config.media_duration.seconds() + 1.0,
                                               session_seed ^ 0x701CE);

    client::VcaClient::Config host_cfg;
    host_cfg.send_video = true;
    host_cfg.send_audio = true;
    host_cfg.decode_video = false;
    host_cfg.motion = config.motion;
    host_cfg.video_width = padded_w;
    host_cfg.video_height = padded_h;
    host_cfg.fps = config.fps;
    host_cfg.ui_border = config.padding > 8 ? config.padding - 8 : 0;
    host_cfg.seed = session_seed;
    client::VcaClient host_client{host_vm, *platform, host_cfg};
    client::MediaFeeder feeder{bed.loop(), host_client.video_device(), host_client.audio_device()};

    client::VcaClient::Config rx_cfg;
    rx_cfg.send_video = false;
    rx_cfg.send_audio = false;
    rx_cfg.video_width = padded_w;
    rx_cfg.video_height = padded_h;
    rx_cfg.fps = config.fps;
    rx_cfg.ui_border = host_cfg.ui_border;
    rx_cfg.seed = session_seed + 77;
    client::VcaClient receiver{rx_vm, *platform, rx_cfg};
    client::DesktopRecorder recorder{receiver, config.fps};
    capture::PacketCapture rx_capture{rx_vm, bed.clock_offset(rx_vm)};

    SimTime media_start{};
    testbed::SessionOrchestrator::Plan plan;
    plan.host = &host_client;
    plan.participants = {&receiver};
    plan.media_duration = config.media_duration;
    plan.on_all_joined = [&] {
      media_start = bed.network().now();
      feeder.play_video(padded, config.media_duration);
      feeder.play_audio(voice);
      recorder.start(config.media_duration);
    };
    testbed::SessionOrchestrator orchestrator{std::move(plan)};
    orchestrator.start();
    bed.run_all();

    // --- video QoE ---
    const media::RecordedVideo cropped = media::crop_and_resize(
        recorder.video(), config.padding, config.content_width, config.content_height);
    if (cropped.frames.size() >= 12) {
      std::vector<media::Frame> reference;
      for (std::size_t k = 0; k < cropped.frames.size(); ++k) {
        reference.push_back(content->frame_at(static_cast<std::int64_t>(k)));
      }
      const auto shift = media::best_temporal_shift(reference, cropped.frames, 10);
      const auto aligned = media::align_sequences(reference, cropped.frames, shift);
      std::vector<media::Frame> ref_sample;
      std::vector<media::Frame> rec_sample;
      for (std::size_t k = 0; k < aligned.reference.size();
           k += static_cast<std::size_t>(config.metric_stride)) {
        ref_sample.push_back(aligned.reference[k]);
        rec_sample.push_back(aligned.recording[k]);
      }
      const auto qoe = media::qoe::mean_video_qoe(ref_sample, rec_sample);
      result.psnr.add(qoe.psnr);
      result.ssim.add(qoe.ssim);
      result.vifp.add(qoe.vifp);
    }

    // --- audio QoE (EBU-style normalization → offset alignment → MOS) ---
    media::AudioSignal received = receiver.received_audio();
    if (!received.samples.empty()) {
      media::AudioSignal reference = voice;
      media::normalize_loudness(reference);
      media::normalize_loudness(received);
      const auto max_shift = static_cast<std::int64_t>(2 * reference.sample_rate);
      const auto offset = media::find_offset_samples(reference, received, max_shift);
      const auto aligned = media::shifted(received, offset, reference.samples.size());
      result.mos_lqo.add(media::qoe::mos_lqo(reference, aligned));
    }

    // --- traffic ---
    const capture::Trace rx_trace = rx_capture.trace();
    const capture::RateAnalyzer rates{rx_trace};
    result.download_kbps.add(rates.average(media_start).download.as_kbps());
    if (shaper != nullptr) {
      const auto& st = shaper->stats();
      const double total = static_cast<double>(st.forwarded_bytes + st.dropped_bytes);
      result.drop_fraction.add(total > 0 ? static_cast<double>(st.dropped_bytes) / total : 0.0);
    } else {
      result.drop_fraction.add(0.0);
    }
    if (host_client.stats().video_frames_sent > 0) {
      result.delivery_ratio.add(
          static_cast<double>(receiver.stats().video_frames_completed) /
          static_cast<double>(host_client.stats().video_frames_sent));
    }
    rx_vm.set_ingress_shaper(nullptr);  // disarm before the next session
  }
  return result;
}

}  // namespace vc::core
