#include "core/qoe_infer_benchmark.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "client/media_feeder.h"
#include "client/vca_client.h"
#include "fault/fault_plan.h"
#include "media/feeds.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace vc::core {
namespace {

DataRate shaper_rate(InferShaperProfile profile) {
  switch (profile) {
    case InferShaperProfile::kDsl: return DataRate::mbps(3.0);
    case InferShaperProfile::kCongested: return DataRate::mbps(1.5);
    case InferShaperProfile::kUnshaped: break;
  }
  return DataRate::unlimited();
}

/// True target active at `t` in a recorded (time, target) step function.
DataRate target_at(const std::vector<std::pair<SimTime, DataRate>>& timeline, SimTime t) {
  DataRate current = timeline.empty() ? DataRate::zero() : timeline.front().second;
  for (const auto& [at, rate] : timeline) {
    if (at > t) break;
    current = rate;
  }
  return current;
}

bool intervals_overlap(SimTime a0, SimTime a1, SimTime b0, SimTime b1) {
  return a0 < b1 && b0 < a1;
}

}  // namespace

const char* infer_shaper_profile_name(InferShaperProfile profile) {
  switch (profile) {
    case InferShaperProfile::kUnshaped: return "unshaped";
    case InferShaperProfile::kDsl: return "dsl3m";
    case InferShaperProfile::kCongested: return "cong1500k";
  }
  return "?";
}

QoeInferSessionResult run_qoe_inference_session(const QoeInferBenchmarkConfig& config,
                                                std::uint64_t seed) {
  const int padded_w = config.content_width + 2 * config.padding;
  const int padded_h = config.content_height + 2 * config.padding;
  if (padded_w % 8 != 0 || padded_h % 8 != 0) {
    throw std::invalid_argument{"padded feed dimensions must be multiples of 8"};
  }
  for (const auto& [start, duration] : config.outages) {
    if (duration <= SimDuration::zero() || start < SimDuration::zero() ||
        start + duration > config.media_duration) {
      throw std::invalid_argument{"outage windows must lie inside the media window"};
    }
  }

  testbed::CloudTestbed bed{seed};
  auto platform = platform::make_platform(
      config.platform, bed.network(),
      platform::PlatformConfig{.seed = seed ^ 0x1FE2, .fan_out_shards = config.fan_out_shards});
  net::Host& host_vm = bed.create_vm(testbed::site_by_name(config.host_site), 8);
  net::Host& rx_vm = bed.create_vm(testbed::site_by_name(config.receiver_site), 9);

  // Last-mile profile on the receiver's ingress (the tc/ifb analog).
  const DataRate cap = shaper_rate(config.shaper);
  if (!cap.is_unlimited()) {
    rx_vm.set_ingress_shaper(std::make_unique<net::TokenBucketShaper>(
        bed.loop(), cap, /*burst=*/24'000, /*queue_limit_packets=*/100));
  }

  // The scripted impairment timeline — and, for outages, the freeze truth.
  fault::FaultPlan plan;
  for (const auto& [start, duration] : config.outages) {
    plan.link_outage(start, rx_vm.name(), duration);
  }
  if (config.burst_loss_average > 0.0) {
    plan.burst_loss(SimDuration::zero(), config.burst_loss_average,
                    config.burst_loss_mean_burst, rx_vm.name());
  }

  const auto content = std::make_shared<media::TalkingHeadFeed>(
      media::FeedParams{config.content_width, config.content_height, config.fps, seed ^ 0xFACE});
  const auto padded = std::make_shared<media::PaddedFeed>(content, config.padding);

  client::VcaClient::Config host_cfg;
  host_cfg.send_video = true;
  host_cfg.send_audio = true;  // audio interleaves on the wire: the
                               // classifier must reject it by size alone
  host_cfg.decode_video = false;
  host_cfg.motion = platform::MotionClass::kLowMotion;
  host_cfg.video_width = padded_w;
  host_cfg.video_height = padded_h;
  host_cfg.fps = config.fps;
  host_cfg.ui_border = config.padding > 8 ? config.padding - 8 : 0;
  host_cfg.seed = seed;
  client::VcaClient host_client{host_vm, *platform, host_cfg};
  client::MediaFeeder feeder{bed.loop(), host_client.video_device(), host_client.audio_device()};

  // Ground-truth encode-target timeline (truth side only; the inferencer
  // never sees it).
  std::vector<std::pair<SimTime, DataRate>> target_timeline;
  host_client.set_on_target_change(
      [&target_timeline](SimTime at, DataRate rate) { target_timeline.emplace_back(at, rate); });

  client::VcaClient::Config rx_cfg;
  rx_cfg.send_video = false;
  rx_cfg.send_audio = false;
  rx_cfg.decode_video = false;  // completed-frame accounting needs no pixels
  rx_cfg.video_width = padded_w;
  rx_cfg.video_height = padded_h;
  rx_cfg.fps = config.fps;
  rx_cfg.ui_border = host_cfg.ui_border;
  rx_cfg.seed = seed + 53;
  client::VcaClient receiver{rx_vm, *platform, rx_cfg};
  capture::PacketCapture rx_capture{rx_vm, bed.clock_offset(rx_vm)};

  SimTime media_start{};
  testbed::SessionOrchestrator::Plan orch_plan;
  orch_plan.host = &host_client;
  orch_plan.participants = {&receiver};
  orch_plan.media_duration = config.media_duration;
  orch_plan.on_all_joined = [&] {
    media_start = bed.network().now();
    feeder.play_video(padded, config.media_duration);
    feeder.play_audio(media::synthesize_voice(config.media_duration.seconds(), seed ^ 0xA0D10));
    if (!plan.empty()) {
      plan.arm(fault::FaultPlan::Bindings{.network = &bed.network(),
                                          .platform = platform.get(),
                                          .metrics = config.metrics,
                                          .tracer = config.tracer},
               media_start);
    }
  };
  testbed::SessionOrchestrator orchestrator{std::move(orch_plan)};
  orchestrator.start();
  bed.run_all();

  // ---- the header-free estimate: trace in, report out.
  const SimTime media_end = media_start + config.media_duration;
  capture::QoeInferConfig infer_cfg = config.infer;
  infer_cfg.analysis_start = media_start;
  infer_cfg.analysis_end = media_end;
  const abr::TierLadder ladder = platform::tier_ladder(config.platform);
  infer_cfg.tier_rates_bps.clear();
  for (const abr::Tier& tier : ladder.tiers) {
    infer_cfg.tier_rates_bps.push_back(tier.rate.bits_per_second());
  }
  const capture::Trace rx_trace = rx_capture.trace();
  const capture::QoeInferencer inferencer{rx_trace, infer_cfg};
  const capture::QoeInferReport report = inferencer.analyze();

  QoeInferSessionResult out;
  out.inferred_fps = report.overall_fps;
  out.inferred_video_kbps = report.mean_video_kbps;
  out.inferred_frames = static_cast<std::int64_t>(report.frames.size());
  out.inferred_freezes = static_cast<int>(report.freezes.size());
  out.report_json = report.to_json();

  // ---- ground truth.
  out.truth_fps = static_cast<double>(receiver.stats().video_frames_completed) /
                  config.media_duration.seconds();
  out.truth_freezes = static_cast<int>(config.outages.size());
  if (!target_timeline.empty()) {
    double sum_kbps = 0.0;
    for (const auto& [at, rate] : target_timeline) sum_kbps += rate.as_kbps();
    out.truth_mean_target_kbps = sum_kbps / static_cast<double>(target_timeline.size());
  }

  // ---- join: frame rate.
  out.fps_abs_err = std::abs(out.inferred_fps - out.truth_fps);

  // ---- join: tier timeline. Windows touching an outage (+grace) carry the
  // outage, not the tier; the first window is encoder ramp-up — skip both.
  int matched = 0;
  for (std::size_t k = 1; k < report.windows.size(); ++k) {
    const capture::QoeInferWindow& w = report.windows[k];
    if (w.tier < 0) continue;
    const SimTime w_end = w.start + infer_cfg.window;
    bool in_outage = false;
    for (const auto& [start, duration] : config.outages) {
      const SimTime o0 = media_start + start;
      const SimTime o1 = o0 + duration + config.outage_grace;
      if (intervals_overlap(w.start, w_end, o0, o1)) in_outage = true;
    }
    if (in_outage) continue;
    const SimTime mid = w.start + infer_cfg.window / 2;
    const int truth_tier = ladder.nearest(target_at(target_timeline, mid));
    ++out.tier_windows;
    if (w.tier == truth_tier) ++matched;
  }
  out.tier_accuracy =
      out.tier_windows > 0 ? static_cast<double>(matched) / out.tier_windows : 0.0;

  // ---- join: freezes, by interval overlap against the scripted windows.
  int true_positives = 0;
  for (const capture::InferredFreeze& f : report.freezes) {
    for (const auto& [start, duration] : config.outages) {
      const SimTime o0 = media_start + start;
      if (intervals_overlap(f.start, f.end, o0, o0 + duration)) {
        ++true_positives;
        break;
      }
    }
  }
  int detected = 0;
  for (const auto& [start, duration] : config.outages) {
    const SimTime o0 = media_start + start;
    for (const capture::InferredFreeze& f : report.freezes) {
      if (intervals_overlap(f.start, f.end, o0, o0 + duration)) {
        ++detected;
        break;
      }
    }
  }
  if (out.inferred_freezes > 0) {
    out.freeze_precision = static_cast<double>(true_positives) / out.inferred_freezes;
  }
  if (out.truth_freezes > 0) {
    out.freeze_recall = static_cast<double>(detected) / out.truth_freezes;
  }

  rx_vm.set_ingress_shaper(nullptr);
  return out;
}

}  // namespace vc::core
