// Header-free QoE inference, scored against ground truth.
//
// One broadcast session per run: a host VM streams a low-motion feed to one
// receiver whose last-mile link follows a shaper profile and a scripted
// fault::FaultPlan (link outages — the freeze ground truth). The receiver's
// packet capture is handed to capture::QoeInferencer, which sees nothing but
// record timestamps/lengths; the session separately keeps the codec-side
// truth (frames actually completed, the sender's true encode-target
// timeline, the scripted outage windows) and joins the two into accuracy
// metrics: frame-rate absolute error, bitrate-tier-timeline accuracy, and
// freeze precision/recall. bench_qoe_inference sweeps platform × shaper
// profile × outage plan on runner::ExperimentRunner and gates the pooled
// accuracy in CI.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "capture/qoe_infer.h"
#include "common/metrics.h"
#include "common/tracer.h"
#include "platform/rate_policy.h"

namespace vc::core {

/// Last-mile shaper profile installed on the receiving VM's ingress.
enum class InferShaperProfile {
  kUnshaped,    // no ingress shaping
  kDsl,         // 3 Mbps cap: shapes burst spacing without starving anyone
  kCongested,   // 1.5 Mbps cap: near/below some platforms' low-motion rate
};

const char* infer_shaper_profile_name(InferShaperProfile profile);

struct QoeInferBenchmarkConfig {
  platform::PlatformId platform = platform::PlatformId::kZoom;
  InferShaperProfile shaper = InferShaperProfile::kUnshaped;
  /// Scripted receiver-link outages, (start, duration) relative to media
  /// start — compiled into a FaultPlan armed at media start. These windows
  /// ARE the freeze ground truth the inferred freezes are scored against.
  std::vector<std::pair<SimDuration, SimDuration>> outages;
  /// > 0: additionally install Gilbert–Elliott burst loss at this average on
  /// the receiver link at media start (same FaultPlan).
  double burst_loss_average = 0.0;
  double burst_loss_mean_burst = 4.0;
  std::string host_site = "US-East";
  std::string receiver_site = "US-West";
  SimDuration media_duration = seconds(20);
  int content_width = 96;
  int content_height = 72;
  int padding = 8;  // padded dims must be multiples of 8
  double fps = 10.0;
  int fan_out_shards = 0;
  std::uint64_t seed = 1;
  /// Windows intersecting an outage (plus this grace for backlog drain) are
  /// excluded from the tier-accuracy join — delivery there reflects the
  /// outage, not the encode tier.
  SimDuration outage_grace = seconds(1);
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  /// Estimator knobs. analysis_start/end and tier_rates_bps are overwritten
  /// with the media window and the platform's tier ladder.
  capture::QoeInferConfig infer{};
};

struct QoeInferSessionResult {
  // --- header-free estimate (trace-only) ---
  double inferred_fps = 0.0;
  double inferred_video_kbps = 0.0;
  std::int64_t inferred_frames = 0;
  int inferred_freezes = 0;
  // --- ground truth (simulator-side) ---
  double truth_fps = 0.0;        // frames completed / media window
  double truth_mean_target_kbps = 0.0;
  int truth_freezes = 0;         // scripted outage windows
  // --- joined accuracy ---
  double fps_abs_err = 0.0;
  /// Fraction of comparable windows (outside outages+grace, carrying video)
  /// whose inferred ladder rung equals the rung of the sender's true target.
  double tier_accuracy = 0.0;
  int tier_windows = 0;  // comparable windows joined
  double freeze_precision = 1.0;  // 1.0 when nothing was inferred
  double freeze_recall = 1.0;     // 1.0 when nothing was scripted
  /// The inferencer's structured JSON report (deterministic).
  std::string report_json;
};

/// One inference session as a self-contained world built from `seed`
/// (config.seed is ignored), runnable from ExperimentRunner task lambdas.
QoeInferSessionResult run_qoe_inference_session(const QoeInferBenchmarkConfig& config,
                                                std::uint64_t seed);

}  // namespace vc::core
