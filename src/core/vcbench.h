// vcbench — public umbrella header.
//
// A benchmarking framework for videoconferencing systems, reproducing the
// methodology and experiments of "Can You See Me Now? A Measurement Study of
// Zoom, Webex, and Meet" (IMC 2021): emulated clients with loopback media
// devices and scripted workflows, geo-distributed deployment on a simulated
// internet, platform-agnostic traffic capture and analysis, full-reference
// video/audio QoE scoring, and mobile resource modeling.
//
// Quick start (see examples/quickstart.cpp):
//
//   vc::core::LagBenchmarkConfig cfg;
//   cfg.platform = vc::platform::PlatformId::kZoom;
//   cfg.participant_sites = vc::core::us_participant_sites(cfg.host_site);
//   auto result = vc::core::run_lag_benchmark(cfg);
//   for (const auto& p : result.participants)
//     std::cout << p.label << ": median lag "
//               << vc::median(p.lags_ms) << " ms\n";
#pragma once

#include "core/bwcap_benchmark.h"   // Figs 17–18: QoE under bandwidth caps
#include "core/fault_recovery_benchmark.h"  // mid-call faults and recovery
#include "core/lag_benchmark.h"     // Figs 2, 4–11: streaming lag and RTTs
#include "core/mobile_benchmark.h"  // Fig 19, Table 4: mobile resources
#include "core/qoe_benchmark.h"     // Figs 12, 14–16: video QoE and rates
#include "core/qoe_infer_benchmark.h"  // header-free QoE inference vs truth
