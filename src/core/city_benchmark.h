// City-scale fleet benchmark: one task simulates a whole city's worth of
// concurrent meetings on a federated relay fleet — the scale regime the
// single-session benchmarks cannot reach and the ROADMAP's fleet-sweep item
// calls for. Each run stands up one platform + one fleet::RelayFleet, then
// launches `meetings` staggered sessions (one host broadcasting a small
// video feed to `participants_per_meeting` passive receivers each), with
// per-packet one-way video lag sampled at the receivers' taps. Throughput
// (simulated events and wire bytes, turned into events/sec / bytes/sec by
// the runner's rate_counters) is a first-class output next to lag quantiles.
//
// The same entry point also runs the fleet-of-1 equivalence gate's A side:
// use_fleet=false falls back to the platform's native relay steering, which
// a fleet of size 1 must reproduce byte-identically (see bench_city_scale
// --gate).
#pragma once

#include <cstdint>
#include <vector>

#include "client/controller.h"
#include "common/metrics.h"
#include "common/tracer.h"
#include "fleet/relay_fleet.h"
#include "platform/base_platform.h"

namespace vc::core {

struct CityScaleConfig {
  platform::PlatformId platform = platform::PlatformId::kWebex;
  bool use_fleet = true;
  /// Register the fleet's per-slot gauges / trunk counters in the metrics
  /// registry. The fleet-of-1 gate turns this off on its fleet side so the
  /// report carries exactly the native run's instrument set (the gauges
  /// would otherwise be a trivially-expected byte difference).
  bool attach_fleet_metrics = true;
  int fleet_size = 2;
  fleet::PlacementPolicy policy = fleet::PlacementPolicy::kRoundRobin;
  /// Members per meeting shard before overflow splits it across trunked
  /// relays; 0 = never split.
  int overflow_shard_size = 0;
  int meetings = 18;
  int participants_per_meeting = 7;  // receivers; +1 broadcasting host each
  /// Consecutive meetings start this far apart (a city's sessions are not
  /// synchronized), bounding the join burst.
  SimDuration meeting_stagger = millis(700);
  SimDuration media_duration = seconds(12);
  int feed_width = 160;
  int feed_height = 120;
  double fps = 10.0;
  /// Every stride-th incoming video packet per receiver contributes a lag
  /// sample (arrival − sent_at); 1 samples everything.
  int lag_sample_stride = 8;
  /// Crash-failover scene: crash allocator relay 0 mid-call and let the
  /// balancer re-home its meetings onto survivors (clients reconnect via
  /// `reconnect`). Timed relative to the FIRST meeting's media start.
  bool inject_crash = false;
  SimDuration outage_start = seconds(4);
  SimDuration outage_duration = seconds(2);
  client::ClientController::ReconnectPolicy reconnect{};
  std::uint64_t seed = 1;
  int fan_out_shards = 0;
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

struct CityScaleResult {
  int clients = 0;  // hosts + receivers across all meetings
  int meetings_completed = 0;
  int join_timeouts = 0;
  /// Simulation throughput inputs: events executed on the loop and wire
  /// bytes sent network-wide. Deterministic (aggregate-safe); the runner
  /// divides by wall-clock for the events/sec / bytes/sec rates.
  std::int64_t sim_events = 0;
  std::int64_t sim_bytes = 0;
  /// Trunk totals across the fleet (0 when untrunked / native).
  std::int64_t trunk_delivered_packets = 0;
  std::int64_t trunk_dropped_packets = 0;
  std::int64_t packets_lost_in_outage = 0;
  std::int64_t reconnects = 0;
  std::int64_t relays_created = 0;
  /// One-way video lag samples (ms), sender stamp → receiver tap.
  std::vector<double> lag_ms;
};

CityScaleResult run_city_scale_benchmark(const CityScaleConfig& config);

}  // namespace vc::core
