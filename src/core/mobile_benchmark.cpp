#include "core/mobile_benchmark.h"

#include <memory>

#include "client/media_feeder.h"
#include "media/audio.h"
#include "client/vca_client.h"
#include "mobile/resource_monitor.h"
#include "platform/base_platform.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace vc::core {
namespace {

struct PhoneRun {
  std::unique_ptr<client::VcaClient> client;
  std::unique_ptr<mobile::ResourceMonitor> monitor;
};

PhoneRun make_phone(net::Host& host, platform::BasePlatform& platform,
                    const mobile::DeviceProfile& device, mobile::MobileScenario scenario,
                    platform::ViewMode view_override, bool use_override, std::uint64_t seed) {
  const mobile::ScenarioSettings s = mobile::scenario_settings(scenario);
  client::VcaClient::Config cfg;
  cfg.device = device.device_class;
  cfg.view = use_override ? view_override : s.view;
  cfg.send_video = s.camera_on;
  cfg.send_audio = false;  // phones are muted listeners in the experiments
  cfg.decode_video = false;
  cfg.synthetic_video = true;
  cfg.rate_override = device.camera_rate;
  cfg.seed = seed;
  PhoneRun run;
  run.client = std::make_unique<client::VcaClient>(host, platform, cfg);
  run.monitor = std::make_unique<mobile::ResourceMonitor>(*run.client, device, scenario, seed ^ 0xC9F7);
  return run;
}

}  // namespace

MobileSessionResult run_mobile_session(const MobileBenchmarkConfig& config, std::uint64_t seed) {
  const mobile::ScenarioSettings settings = mobile::scenario_settings(config.scenario);

  testbed::CloudTestbed bed{seed};
  auto platform = platform::make_platform(
      config.platform, bed.network(),
      platform::PlatformConfig{.seed = seed ^ 0x303, .fan_out_shards = config.fan_out_shards});

  net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 8);
  net::Host& s10_host = bed.create_vm(testbed::residential_us_east(), 0);
  net::Host& j3_host = bed.create_vm(testbed::residential_us_east(), 1);

  // The host streams the LM/HM feed; Meet serves mobile receivers its high
  // simulcast layer regardless of the target device (Fig 19b), while
  // Zoom/Webex stay on their multi-party policy rates.
  client::VcaClient::Config host_cfg;
  host_cfg.send_video = true;
  host_cfg.send_audio = true;
  host_cfg.decode_video = false;
  host_cfg.synthetic_video = true;
  host_cfg.motion = settings.high_motion ? platform::MotionClass::kHighMotion
                                         : platform::MotionClass::kLowMotion;
  if (config.platform == platform::PlatformId::kMeet) {
    host_cfg.rate_override = platform::rate_profile(config.platform).mobile_main_rate;
  }
  host_cfg.seed = seed;
  client::VcaClient host_client{host_vm, *platform, host_cfg};
  client::MediaFeeder feeder{bed.loop(), host_client.video_device(),
                             host_client.audio_device()};

  PhoneRun s10 = make_phone(s10_host, *platform, mobile::galaxy_s10(), config.scenario,
                            platform::ViewMode::kFullScreen, false, seed + 1);
  PhoneRun j3 = make_phone(j3_host, *platform, mobile::galaxy_j3(), config.scenario,
                           platform::ViewMode::kFullScreen, false, seed + 2);

  testbed::SessionOrchestrator::Plan plan;
  plan.host = &host_client;
  plan.participants = {s10.client.get(), j3.client.get()};
  plan.media_duration = config.duration;
  plan.on_all_joined = [&] {
    feeder.play_audio(media::synthesize_voice(config.duration.seconds(), seed ^ 0xA0D10));
    s10.monitor->start(config.duration);
    j3.monitor->start(config.duration);
  };
  testbed::SessionOrchestrator orchestrator{std::move(plan)};
  orchestrator.start();
  bed.run_all();

  MobileSessionResult out;
  out.s10_cpu = s10.monitor->cpu_samples();
  out.j3_cpu = j3.monitor->cpu_samples();
  out.s10_download_kbps = s10.monitor->download_rate().as_kbps();
  out.s10_upload_kbps = s10.monitor->upload_rate().as_kbps();
  out.s10_battery_pct_per_hour = s10.monitor->battery_pct_per_hour();
  out.j3_download_kbps = j3.monitor->download_rate().as_kbps();
  out.j3_upload_kbps = j3.monitor->upload_rate().as_kbps();
  out.j3_battery_pct_per_hour = j3.monitor->battery_pct_per_hour();
  return out;
}

MobileBenchmarkResult run_mobile_benchmark(const MobileBenchmarkConfig& config) {
  MobileBenchmarkResult result;
  result.platform = config.platform;
  result.scenario = config.scenario;
  result.s10.device = "S10";
  result.j3.device = "J3";

  for (int rep = 0; rep < config.repetitions; ++rep) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(rep) * 2917;
    const MobileSessionResult session = run_mobile_session(config, seed);
    auto harvest = [](MobileDeviceResult& out, const std::vector<double>& cpu, double down,
                      double up, double battery) {
      out.cpu_samples.insert(out.cpu_samples.end(), cpu.begin(), cpu.end());
      out.download_kbps.add(down);
      out.upload_kbps.add(up);
      out.battery_pct_per_hour.add(battery);
    };
    harvest(result.s10, session.s10_cpu, session.s10_download_kbps, session.s10_upload_kbps,
            session.s10_battery_pct_per_hour);
    harvest(result.j3, session.j3_cpu, session.j3_download_kbps, session.j3_upload_kbps,
            session.j3_battery_pct_per_hour);
  }
  result.s10.cpu = boxplot(result.s10.cpu_samples);
  result.j3.cpu = boxplot(result.j3.cpu_samples);
  return result;
}

ScaleSessionResult run_scale_session(const ScaleBenchmarkConfig& config, std::uint64_t seed) {
  const int extra_vms = std::max(0, config.n_total - 3);

  testbed::CloudTestbed bed{seed};
  auto platform = platform::make_platform(
      config.platform, bed.network(),
      platform::PlatformConfig{.seed = seed ^ 0x404, .fan_out_shards = config.fan_out_shards});
  if (config.tracer != nullptr) {
    bed.network().set_tracer(config.tracer);
    platform->set_tracer(config.tracer);
  }

  net::Host& host_vm = bed.create_vm(testbed::site_by_name("US-East"), 8);
  net::Host& s10_host = bed.create_vm(testbed::residential_us_east(), 0);
  net::Host& j3_host = bed.create_vm(testbed::residential_us_east(), 1);

  // Everyone streams high-motion simultaneously (Section 5, Table 4).
  auto make_vm_sender = [&](net::Host& vm, std::uint64_t s) {
    client::VcaClient::Config cfg;
    cfg.send_video = true;
    cfg.send_audio = false;
    cfg.decode_video = false;
    cfg.synthetic_video = true;
    cfg.motion = platform::MotionClass::kHighMotion;
    if (config.platform == platform::PlatformId::kMeet) {
      cfg.rate_override = platform::rate_profile(config.platform).mobile_main_rate;
    }
    cfg.seed = s;
    return std::make_unique<client::VcaClient>(vm, *platform, cfg);
  };

  auto host_client = make_vm_sender(host_vm, seed);
  client::MediaFeeder feeder{bed.loop(), host_client->video_device(),
                             host_client->audio_device()};
  std::vector<std::unique_ptr<client::VcaClient>> extras;
  const auto us = testbed::us_sites();
  for (int i = 0; i < extra_vms; ++i) {
    net::Host& vm = bed.create_vm(us[static_cast<std::size_t>(i) % us.size()], 20 + i);
    extras.push_back(make_vm_sender(vm, seed + 100 + static_cast<std::uint64_t>(i)));
  }

  // Phones use the HM scenario settings with the requested view.
  PhoneRun s10 = make_phone(s10_host, *platform, mobile::galaxy_s10(),
                            mobile::MobileScenario::kHM, config.phone_view, true, seed + 1);
  PhoneRun j3 = make_phone(j3_host, *platform, mobile::galaxy_j3(),
                           mobile::MobileScenario::kHM, config.phone_view, true, seed + 2);

  testbed::SessionOrchestrator::Plan plan;
  plan.host = host_client.get();
  plan.participants = {s10.client.get(), j3.client.get()};
  for (auto& e : extras) plan.participants.push_back(e.get());
  plan.media_duration = config.duration;
  plan.on_all_joined = [&] {
    feeder.play_audio(media::synthesize_voice(config.duration.seconds(), seed ^ 0xA0D11));
    s10.monitor->start(config.duration);
    j3.monitor->start(config.duration);
  };
  testbed::SessionOrchestrator orchestrator{std::move(plan)};
  orchestrator.start();
  bed.run_all();

  ScaleSessionResult out;
  out.s10_cpu = s10.monitor->cpu_samples();
  out.j3_cpu = j3.monitor->cpu_samples();
  out.s10_rate_mbps = s10.monitor->download_rate().as_mbps();
  out.j3_rate_mbps = j3.monitor->download_rate().as_mbps();
  return out;
}

ScaleBenchmarkResult run_scale_benchmark(const ScaleBenchmarkConfig& config) {
  ScaleBenchmarkResult result;
  result.platform = config.platform;
  result.n_total = config.n_total;
  result.phone_view = config.phone_view;

  std::vector<double> s10_cpu;
  std::vector<double> j3_cpu;
  RunningStats s10_rate;
  RunningStats j3_rate;

  for (int rep = 0; rep < config.repetitions; ++rep) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(rep) * 5801;
    const ScaleSessionResult session = run_scale_session(config, seed);
    s10_cpu.insert(s10_cpu.end(), session.s10_cpu.begin(), session.s10_cpu.end());
    j3_cpu.insert(j3_cpu.end(), session.j3_cpu.begin(), session.j3_cpu.end());
    s10_rate.add(session.s10_rate_mbps);
    j3_rate.add(session.j3_rate_mbps);
  }

  result.s10_rate_mbps = s10_rate.mean();
  result.j3_rate_mbps = j3_rate.mean();
  result.s10_cpu_median = median(s10_cpu);
  result.j3_cpu_median = median(j3_cpu);
  return result;
}

}  // namespace vc::core
