#include "core/fault_recovery_benchmark.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "capture/lag_detector.h"
#include "client/media_feeder.h"
#include "client/vca_client.h"
#include "net/network.h"
#include "testbed/cloud_testbed.h"
#include "testbed/orchestrator.h"

namespace vc::core {

FaultRecoveryResult run_fault_recovery_benchmark(const FaultRecoveryConfig& config) {
  if (config.participant_sites.empty()) throw std::invalid_argument{"no participants"};
  testbed::CloudTestbed bed{config.seed};
  std::unique_ptr<platform::BasePlatform> platform =
      platform::make_platform(config.platform, bed.network(),
                              platform::PlatformConfig{.seed = config.seed ^ 0xABC,
                                                       .fan_out_shards = config.fan_out_shards});

  // Reconnect instruments (client.disconnects / client.reconnects /
  // client.time_to_reconnect_ms) are harvested from a registry; when the
  // caller brings none, a local one keeps the result self-contained. Callers
  // sharing a registry across runs should hand each run a fresh one, since
  // counters are read as absolute values.
  MetricsRegistry local_metrics;
  MetricsRegistry& reg = config.metrics != nullptr ? *config.metrics : local_metrics;
  bed.network().attach_metrics(reg);
  platform->set_metrics(&reg);
  if (config.tracer != nullptr) {
    bed.network().set_tracer(config.tracer);
    platform->set_tracer(config.tracer);
  }

  net::Host& host_vm = bed.create_vm(testbed::site_by_name(config.host_site), 8);
  std::vector<net::Host*> part_vms;
  std::unordered_map<std::string, int> site_use;
  for (const auto& site : config.participant_sites) {
    part_vms.push_back(&bed.create_vm(testbed::site_by_name(site), site_use[site]++));
  }

  const auto feed = std::make_shared<media::FlashFeed>(
      media::FeedParams{config.feed_width, config.feed_height, config.fps, config.seed ^ 0xF1A5});

  client::VcaClient::Config host_cfg;
  host_cfg.send_video = true;
  host_cfg.send_audio = false;
  host_cfg.decode_video = false;
  host_cfg.video_width = config.feed_width;
  host_cfg.video_height = config.feed_height;
  host_cfg.fps = config.fps;
  host_cfg.seed = config.seed;
  client::VcaClient host_client{host_vm, *platform, host_cfg};
  host_client.attach_metrics(reg);
  if (config.tracer != nullptr) host_client.set_tracer(config.tracer);
  client::MediaFeeder feeder{bed.loop(), host_client.video_device(), host_client.audio_device()};
  capture::PacketCapture host_capture{host_vm, bed.clock_offset(host_vm)};

  std::vector<std::unique_ptr<client::VcaClient>> participants;
  std::vector<std::unique_ptr<capture::PacketCapture>> captures;
  for (std::size_t i = 0; i < part_vms.size(); ++i) {
    client::VcaClient::Config cfg;
    cfg.send_video = false;
    cfg.send_audio = false;
    cfg.decode_video = false;
    cfg.seed = config.seed + 31 * i;
    participants.push_back(std::make_unique<client::VcaClient>(*part_vms[i], *platform, cfg));
    participants.back()->attach_metrics(reg);
    if (config.tracer != nullptr) participants.back()->set_tracer(config.tracer);
    captures.push_back(
        std::make_unique<capture::PacketCapture>(*part_vms[i], bed.clock_offset(*part_vms[i])));
  }

  fault::FaultPlan timeline;
  if (config.use_custom_plan) {
    timeline = config.custom_plan;
  } else {
    timeline.relay_crash(config.outage_start, 0, config.outage_duration);
    if (config.platform == platform::PlatformId::kMeet) {
      // Meet's host gets a primary/secondary front-end pair, created first
      // (indices 0 and 1) in unspecified order; crashing both takes the
      // host's front-end site down whichever one this session picked.
      timeline.relay_crash(config.outage_start, 1, config.outage_duration);
    }
  }

  // Phase boundaries in absolute sim time, fixed when media starts (the arm
  // origin). Captured here so the harvest below can bucket receiver flash
  // events; capture timestamps carry the VM clock offsets (~1 ms), noise on
  // the seconds-long phases.
  SimTime outage_begin_abs{};
  SimTime recovery_end_abs{};

  testbed::SessionOrchestrator::Plan plan;
  plan.host = &host_client;
  for (auto& p : participants) plan.participants.push_back(p.get());
  plan.media_duration = config.session_duration;
  plan.metrics = &reg;
  plan.tracer = config.tracer;
  plan.reconnect = config.reconnect;
  plan.reconnect_seed = config.seed ^ 0xFA117;
  plan.on_all_joined = [&] {
    feeder.play_video(feed, config.session_duration);
    const SimTime origin = bed.loop().now();
    outage_begin_abs = origin + config.outage_start;
    recovery_end_abs = outage_begin_abs + config.outage_duration + config.recovery_grace;
    if (config.inject) {
      fault::FaultPlan::Bindings bindings;
      bindings.network = &bed.network();
      bindings.platform = platform.get();
      bindings.metrics = &reg;
      bindings.tracer = config.tracer;
      timeline.arm(bindings, origin);
    }
  };
  testbed::SessionOrchestrator orchestrator{std::move(plan)};
  if (config.timeline != nullptr) {
    // The bound (join + media + reconnect-tail headroom) is what lets the
    // self-rescheduling tick chain end and run_all() drain.
    config.timeline->arm(bed.loop(), reg, SimTime::zero(),
                         SimTime::zero() + config.session_duration + config.outage_duration +
                             config.recovery_grace + seconds(30));
  }
  orchestrator.start();
  bed.run_all();

  FaultRecoveryResult result;
  result.platform = config.platform;
  result.clients = 1 + static_cast<int>(part_vms.size());
  result.outage_begin_abs = outage_begin_abs;
  result.recovery_end_abs = recovery_end_abs;

  capture::LagDetectorConfig lag_cfg;
  lag_cfg.flash_period = seconds_f(feed->period_sec());
  const auto sender_events =
      capture::detect_flash_events(host_capture.trace(), net::Direction::kOutgoing, lag_cfg);
  for (std::size_t i = 0; i < captures.size(); ++i) {
    const auto rx_events =
        capture::detect_flash_events(captures[i]->trace(), net::Direction::kIncoming, lag_cfg);
    // Bucket receiver events by phase, then match each bucket against the
    // full sender timeline (matching is per-receiver-event, so splitting the
    // receiver side is exact).
    std::vector<capture::FlashEvent> before, during, after;
    for (const auto& ev : rx_events) {
      if (ev.at < outage_begin_abs) {
        before.push_back(ev);
      } else if (ev.at < recovery_end_abs) {
        during.push_back(ev);
      } else {
        after.push_back(ev);
      }
    }
    for (double lag : capture::match_lags_ms(sender_events, before, lag_cfg)) {
      result.lags_before_ms.push_back(lag);
    }
    for (double lag : capture::match_lags_ms(sender_events, during, lag_cfg)) {
      result.lags_during_ms.push_back(lag);
    }
    for (double lag : capture::match_lags_ms(sender_events, after, lag_cfg)) {
      result.lags_after_ms.push_back(lag);
    }
  }
  for (double lag : result.lags_during_ms) {
    result.lag_spike_hwm_ms = std::max(result.lag_spike_hwm_ms, lag);
  }
  for (double lag : result.lags_after_ms) {
    result.lag_spike_hwm_ms = std::max(result.lag_spike_hwm_ms, lag);
  }
  reg.gauge("fault.lag_spike_hwm_ms").set(result.lag_spike_hwm_ms);

  platform::RelayAllocator& alloc = platform->allocator();
  for (std::size_t i = 0; i < alloc.relays_created(); ++i) {
    result.packets_lost_in_outage +=
        static_cast<std::int64_t>(alloc.relay_at(i)->stats().crash_dropped);
  }

  result.disconnects = reg.counter("client.disconnects").value();
  result.reconnects = reg.counter("client.reconnects").value();
  result.reconnect_attempts = reg.counter("client.reconnect_attempts").value();
  result.reconnect_giveups = reg.counter("client.reconnect_giveups").value();
  const RunningStats& ttr = reg.histogram("client.time_to_reconnect_ms").stats();
  if (ttr.count() > 0) {
    result.mean_time_to_reconnect_ms = ttr.mean();
    result.max_time_to_reconnect_ms = ttr.max();
  }
  return result;
}

}  // namespace vc::core
