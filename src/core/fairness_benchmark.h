// Competing-flow fairness benchmark: N independent two-party sessions (mixed
// platforms × mixed client ABR adapters) whose receivers share one bottleneck
// — a single gateway VM behind a TokenBucketShaper, the tc/ifb analog of a
// congested office downlink. The paper measures each platform's adaptation in
// isolation (Section 4.4, Figs 17–18); this benchmark asks the follow-on
// question (MacMillan et al., arXiv 2105.13478): how do those control loops —
// and client-side ABR overrides of them — split a link they must share?
//
// Reported per run: Jain's fairness index over per-flow achieved rates, each
// flow's achieved rate and bottleneck share, the shaper's self-inflicted
// queuing lag, per-flow convergence time to its steady-state rate, and drop
// fraction. Deterministic: same seed ⇒ identical results at any thread
// count / shard K, ABR on or off (see bench_fairness and
// tests/determinism/test_fairness_determinism.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abr/abr.h"
#include "common/units.h"
#include "fault/fault_plan.h"
#include "platform/platform.h"

namespace vc::core {

/// One competing sender→receiver session.
struct FairnessFlowConfig {
  platform::PlatformId platform = platform::PlatformId::kZoom;
  /// Client-side ABR on the *sender* (kNone = platform-pushed rate only).
  abr::AbrKind abr = abr::AbrKind::kNone;
  /// Where the sending VM lives (Table 3 site name).
  std::string sender_site = "US-West";
};

struct FairnessBenchmarkConfig {
  /// 2–8 flows sharing the bottleneck.
  std::vector<FairnessFlowConfig> flows;
  /// The shared gateway downlink (every receiver lives on the gateway VM).
  DataRate bottleneck = DataRate::mbps(2.5);
  std::int64_t burst_bytes = 24'000;
  int queue_limit_packets = 200;
  /// Gateway VM site; the VM is named after it, so fault plans can target
  /// the bottleneck with link_rate/link_outage on this name.
  std::string gateway_site = "US-East";
  SimDuration media_duration = seconds(30);
  double fps = 10.0;
  /// Injected feed geometry (small, like the fault-recovery benchmark: the
  /// codec runs for real so loss feedback — and thus ABR — is end-to-end).
  int feed_width = 128;
  int feed_height = 96;
  int padding = 16;
  /// Bin width of the per-flow rate timeline used for convergence.
  SimDuration rate_bin = seconds(1);
  /// A flow has converged once its binned rate stays within ± this fraction
  /// of its steady-state mean (mean of the window's last quarter) for the
  /// rest of the run.
  double convergence_band = 0.25;
  /// Shadow-arm every flow's adapter instead of applying decisions (the
  /// bench_fairness --gate instrumentation; see abr::AbrConfig::shadow).
  bool abr_shadow = false;
  /// Optional fault timeline, armed at media start against the first flow's
  /// platform (link events resolve host names, e.g. the gateway site name).
  fault::FaultPlan fault_plan;
  bool use_fault_plan = false;
  int fan_out_shards = 0;
  std::uint64_t seed = 5;
};

/// Per-flow outcome over the measurement window (all flows streaming).
struct FairnessFlowResult {
  platform::PlatformId platform{};
  abr::AbrKind abr = abr::AbrKind::kNone;
  /// Post-shaper video goodput at the receiver.
  double achieved_kbps = 0.0;
  /// Fraction of the summed achieved rate.
  double share = 0.0;
  /// Seconds from window start until the flow's binned rate entered (and
  /// stayed in) its steady-state band; -1 if it never settled.
  double convergence_seconds = -1.0;
  std::int64_t abr_decisions = 0;
  std::int64_t abr_tier_switches = 0;
  /// The sender's final applied encode target.
  double final_target_kbps = 0.0;
};

struct FairnessBenchmarkResult {
  /// Jain's index over per-flow achieved rates: (Σx)² / (n·Σx²); 1 = equal.
  double jain_index = 0.0;
  /// Summed achieved rate over the bottleneck rate.
  double utilization = 0.0;
  /// Self-inflicted queuing at the shared shaper (ms).
  double queue_delay_mean_ms = 0.0;
  double queue_delay_max_ms = 0.0;
  /// Shaper drop fraction (bytes dropped / bytes offered).
  double drop_fraction = 0.0;
  /// Mean convergence over flows that settled; -1 if none did.
  double convergence_mean_seconds = -1.0;
  std::vector<FairnessFlowResult> flows;
};

/// One self-contained fairness session built entirely from `seed` (ignores
/// config.seed, like run_bwcap_session) — the unit ExperimentRunner fans out.
FairnessBenchmarkResult run_fairness_session(const FairnessBenchmarkConfig& config,
                                             std::uint64_t seed);

/// Mixed default: flows cycling Zoom/Webex/Meet × buffer/throughput/MPC.
std::vector<FairnessFlowConfig> default_fairness_flows(int n);

}  // namespace vc::core
