// User-perceived video QoE benchmark (Section 4.3; Figs 12, 14, 15, 16).
//
// A host VM broadcasts a padded low- or high-motion feed; N receivers render
// it full screen and desktop-record their screens. Recordings are cropped,
// resized and SSIM-aligned to the injected feed, then scored with
// PSNR/SSIM/VIFp. Host upload and receiver download rates come from the
// pcap-analog captures (Layer-7 payload, as in Fig 15).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "media/qoe/video_metrics.h"
#include "platform/rate_policy.h"

namespace vc::core {

struct QoeBenchmarkConfig {
  platform::PlatformId platform = platform::PlatformId::kZoom;
  platform::MotionClass motion = platform::MotionClass::kLowMotion;
  std::string host_site = "US-East";
  /// Receiver sites; size determines N (the paper sweeps 1..5 receivers).
  std::vector<std::string> receiver_sites = {"US-West"};
  int sessions = 2;
  SimDuration media_duration = seconds(15);
  // Feed geometry: content + protective padding (Fig 13). Padded dimensions
  // must be multiples of 8.
  int content_width = 256;
  int content_height = 192;
  int padding = 24;
  double fps = 10.0;
  /// Score every k-th aligned frame pair (QoE means are stable under
  /// subsampling; full-rate scoring is available by setting 1).
  int metric_stride = 4;
  /// When false, skip desktop recording and pixel scoring entirely and
  /// report traffic rates only (Fig 15 mode).
  bool score_video = true;
  std::uint64_t seed = 1;
};

struct QoeBenchmarkResult {
  platform::PlatformId platform{};
  platform::MotionClass motion{};
  int receivers = 0;
  /// Pooled over receivers and sessions.
  RunningStats psnr;
  RunningStats ssim;
  RunningStats vifp;
  /// Data rates (Kbps): host upload, receiver download; pooled per session.
  RunningStats upload_kbps;
  RunningStats download_kbps;
  /// Mean download per session (exposes across-session rate variability).
  std::vector<double> session_download_kbps;
  /// Fraction of sent video frames each receiver completed (freeze metric).
  RunningStats delivery_ratio;
};

QoeBenchmarkResult run_qoe_benchmark(const QoeBenchmarkConfig& config);

/// One receiver's scores from a single session. `has_video_qoe` mirrors
/// run_qoe_benchmark's conditional adds (scoring needs a long-enough
/// recording); delivery ratio needs the host to have sent frames.
struct QoeReceiverResult {
  double download_kbps = 0.0;
  bool has_delivery_ratio = false;
  double delivery_ratio = 0.0;
  bool has_video_qoe = false;
  double psnr = 0.0;
  double ssim = 0.0;
  double vifp = 0.0;
};

struct QoeSessionResult {
  double upload_kbps = 0.0;
  /// Mean receiver download (the session_download_kbps entry of a pooled run).
  double session_download_kbps = 0.0;
  /// Index-aligned with config.receiver_sites.
  std::vector<QoeReceiverResult> receivers;
};

/// One QoE session as a self-contained world: builds its own testbed and
/// platform from `seed` (ignoring config.seed / config.sessions), so
/// parallel experiment runners can drive it with per-task seed streams —
/// the Fig 12/16 sweep runs these through runner::ExperimentRunner.
QoeSessionResult run_qoe_session(const QoeBenchmarkConfig& config, std::uint64_t seed);

/// Receiver site lists used by the paper's US and Europe QoE experiments.
std::vector<std::string> us_qoe_receiver_sites(int n);
std::vector<std::string> europe_qoe_receiver_sites(int n);

}  // namespace vc::core
