// Mobile resource-consumption benchmarks (Section 5; Fig 19 and Table 4).
//
// A US-East cloud VM hosts the meeting and streams the low-/high-motion
// feed; the two phones (S10 and J3) join from a residential east-coast
// network and are monitored for CPU, download rate, and battery drain under
// the five device/UI scenarios. The scale variant adds cloud VM participants
// that all stream high-motion video simultaneously (N ∈ {3, 6, 11}).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/tracer.h"
#include "common/units.h"
#include "mobile/device.h"
#include "platform/rate_policy.h"

namespace vc::core {

struct MobileBenchmarkConfig {
  platform::PlatformId platform = platform::PlatformId::kZoom;
  mobile::MobileScenario scenario = mobile::MobileScenario::kLM;
  int repetitions = 3;
  SimDuration duration = seconds(60);
  std::uint64_t seed = 9;
  /// Intra-session relay fan-out sharding (PlatformConfig::fan_out_shards);
  /// 0 = serial, any K is byte-identical.
  int fan_out_shards = 0;
};

struct MobileDeviceResult {
  std::string device;
  std::vector<double> cpu_samples;     // pooled over repetitions
  BoxplotSummary cpu;
  RunningStats download_kbps;
  RunningStats upload_kbps;
  RunningStats battery_pct_per_hour;   // meaningful for the J3 (power meter)
};

struct MobileBenchmarkResult {
  platform::PlatformId platform{};
  mobile::MobileScenario scenario{};
  MobileDeviceResult s10;
  MobileDeviceResult j3;
};

MobileBenchmarkResult run_mobile_benchmark(const MobileBenchmarkConfig& config);

/// One repetition of the mobile scenario as a self-contained session (its
/// own testbed/platform world from `seed`, ignoring config.seed /
/// config.repetitions) — the per-task unit parallel experiment runners
/// drive; run_mobile_benchmark is the serial aggregation of these.
struct MobileSessionResult {
  std::vector<double> s10_cpu;
  std::vector<double> j3_cpu;
  double s10_download_kbps = 0.0;
  double s10_upload_kbps = 0.0;
  double s10_battery_pct_per_hour = 0.0;
  double j3_download_kbps = 0.0;
  double j3_upload_kbps = 0.0;
  double j3_battery_pct_per_hour = 0.0;
};

MobileSessionResult run_mobile_session(const MobileBenchmarkConfig& config, std::uint64_t seed);

/// Table 4: one host VM + two phones + (n_total - 3) extra VM participants,
/// everyone streaming high-motion video; phones in full-screen or gallery.
struct ScaleBenchmarkConfig {
  platform::PlatformId platform = platform::PlatformId::kZoom;
  int n_total = 3;  // 3, 6 or 11
  platform::ViewMode phone_view = platform::ViewMode::kFullScreen;
  int repetitions = 2;
  SimDuration duration = seconds(45);
  std::uint64_t seed = 13;
  /// Intra-session relay fan-out sharding (PlatformConfig::fan_out_shards);
  /// 0 = serial, any K is byte-identical.
  int fan_out_shards = 0;
  /// Optional flight recorder wired into the event loop, links/shapers and
  /// relays (see LagBenchmarkConfig::tracer).
  Tracer* tracer = nullptr;
};

struct ScaleBenchmarkResult {
  platform::PlatformId platform{};
  int n_total = 0;
  platform::ViewMode phone_view{};
  /// Mean data rate (Mbps) and median CPU (%) per device, as in Table 4.
  double s10_rate_mbps = 0.0;
  double j3_rate_mbps = 0.0;
  double s10_cpu_median = 0.0;
  double j3_cpu_median = 0.0;
};

ScaleBenchmarkResult run_scale_benchmark(const ScaleBenchmarkConfig& config);

/// One repetition of the scale scenario as a self-contained session: builds
/// its own testbed/platform world from `seed` (ignoring config.seed /
/// config.repetitions), so parallel experiment runners can drive it with
/// per-task seed streams.
struct ScaleSessionResult {
  std::vector<double> s10_cpu;
  std::vector<double> j3_cpu;
  double s10_rate_mbps = 0.0;
  double j3_rate_mbps = 0.0;
};

ScaleSessionResult run_scale_session(const ScaleBenchmarkConfig& config, std::uint64_t seed);

}  // namespace vc::core
