#include "core/city_benchmark.h"

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "client/media_feeder.h"
#include "client/vca_client.h"
#include "fault/fault_plan.h"
#include "media/feeds.h"
#include "net/network.h"
#include "testbed/cloud_testbed.h"
#include "testbed/locations.h"
#include "testbed/orchestrator.h"

namespace vc::core {

CityScaleResult run_city_scale_benchmark(const CityScaleConfig& config) {
  if (config.meetings < 1) throw std::invalid_argument{"meetings must be >= 1"};
  if (config.participants_per_meeting < 1) {
    throw std::invalid_argument{"participants_per_meeting must be >= 1"};
  }
  testbed::CloudTestbed bed{config.seed};
  std::unique_ptr<platform::BasePlatform> platform =
      platform::make_platform(config.platform, bed.network(),
                              platform::PlatformConfig{.seed = config.seed ^ 0xC17,
                                                       .fan_out_shards = config.fan_out_shards});

  MetricsRegistry local_metrics;
  MetricsRegistry& reg = config.metrics != nullptr ? *config.metrics : local_metrics;
  bed.network().attach_metrics(reg);
  platform->set_metrics(&reg);
  if (config.tracer != nullptr) {
    bed.network().set_tracer(config.tracer);
    platform->set_tracer(config.tracer);
  }

  std::unique_ptr<fleet::RelayFleet> fleet;
  if (config.use_fleet) {
    fleet::RelayFleet::Config fc;
    fc.size = config.fleet_size;
    fc.policy = config.policy;
    fc.overflow_shard_size = config.overflow_shard_size;
    fleet = std::make_unique<fleet::RelayFleet>(bed.network(), *platform, fc);
    if (config.attach_fleet_metrics) fleet->attach_metrics(reg);
    fleet->set_tracer(config.tracer);
  }

  // One VM per client, cycled across the US measurement sites (Table 3's
  // within-US deployments) so the locality policy has a real geography.
  const std::vector<testbed::VmSite> sites = testbed::us_sites();
  std::unordered_map<std::string, int> site_use;
  auto make_vm = [&](std::size_t k) -> net::Host& {
    const testbed::VmSite& site = sites[k % sites.size()];
    return bed.create_vm(site, site_use[site.name]++);
  };

  struct MeetingRig {
    std::unique_ptr<client::VcaClient> host;
    std::vector<std::unique_ptr<client::VcaClient>> receivers;
    std::unique_ptr<client::MediaFeeder> feeder;
    std::shared_ptr<const media::FlashFeed> feed;
    std::unique_ptr<testbed::SessionOrchestrator> orchestrator;
  };
  std::vector<MeetingRig> rigs;
  rigs.reserve(static_cast<std::size_t>(config.meetings));

  CityScaleResult result;
  fault::FaultPlan crash_plan;
  if (config.inject_crash) {
    crash_plan.relay_crash(config.outage_start, 0, config.outage_duration);
  }

  for (int mi = 0; mi < config.meetings; ++mi) {
    MeetingRig rig;
    const std::size_t base = static_cast<std::size_t>(mi) *
                             static_cast<std::size_t>(1 + config.participants_per_meeting);
    net::Host& host_vm = make_vm(base);

    client::VcaClient::Config host_cfg;
    host_cfg.send_video = true;
    host_cfg.send_audio = false;
    host_cfg.decode_video = false;
    host_cfg.video_width = config.feed_width;
    host_cfg.video_height = config.feed_height;
    host_cfg.fps = config.fps;
    host_cfg.seed = config.seed + 101 * static_cast<std::uint64_t>(mi);
    rig.host = std::make_unique<client::VcaClient>(host_vm, *platform, host_cfg);
    rig.feeder = std::make_unique<client::MediaFeeder>(bed.loop(), rig.host->video_device(),
                                                       rig.host->audio_device());
    rig.feed = std::make_shared<media::FlashFeed>(
        media::FeedParams{config.feed_width, config.feed_height, config.fps,
                          config.seed ^ (0xF00D + static_cast<std::uint64_t>(mi))});

    for (int ri = 0; ri < config.participants_per_meeting; ++ri) {
      net::Host& vm = make_vm(base + 1 + static_cast<std::size_t>(ri));
      client::VcaClient::Config cfg;
      cfg.send_video = false;
      cfg.send_audio = false;
      cfg.decode_video = false;
      cfg.seed = config.seed + 101 * static_cast<std::uint64_t>(mi) +
                 static_cast<std::uint64_t>(ri) + 1;
      rig.receivers.push_back(std::make_unique<client::VcaClient>(vm, *platform, cfg));
      // One-way lag tap: sender stamp → receiver interface, subsampled per
      // receiver with a deterministic stride.
      const int stride = config.lag_sample_stride > 0 ? config.lag_sample_stride : 1;
      vm.add_tap([&lags = result.lag_ms, stride, n = 0](net::Direction dir,
                                                        const net::Packet& pkt,
                                                        SimTime at) mutable {
        if (dir != net::Direction::kIncoming || pkt.kind != net::StreamKind::kVideo) return;
        if (n++ % stride != 0) return;
        lags.push_back((at - pkt.sent_at).millis());
      });
    }

    testbed::SessionOrchestrator::Plan plan;
    plan.host = rig.host.get();
    for (auto& r : rig.receivers) plan.participants.push_back(r.get());
    plan.media_duration = config.media_duration;
    plan.metrics = &reg;
    plan.tracer = config.tracer;
    if (config.inject_crash) {
      plan.reconnect = config.reconnect;
      plan.reconnect_seed = config.seed ^ (0xFA11 + static_cast<std::uint64_t>(mi));
    }
    client::MediaFeeder* feeder = rig.feeder.get();
    auto feed_shared = rig.feed;
    plan.on_all_joined = [feeder, feed_shared, mi, &config, &crash_plan, &bed, &platform,
                          &reg]() {
      feeder->play_video(feed_shared, config.media_duration);
      if (mi == 0 && config.inject_crash) {
        fault::FaultPlan::Bindings bindings;
        bindings.network = &bed.network();
        bindings.platform = platform.get();
        bindings.metrics = &reg;
        crash_plan.arm(bindings, bed.loop().now());
      }
    };
    plan.on_done = [&result](const testbed::SessionOutcome& outcome) {
      if (outcome.ok) {
        ++result.meetings_completed;
      } else {
        ++result.join_timeouts;
      }
    };
    rig.orchestrator = std::make_unique<testbed::SessionOrchestrator>(std::move(plan));
    rigs.push_back(std::move(rig));

    testbed::SessionOrchestrator* orch = rigs.back().orchestrator.get();
    bed.loop().schedule_after(config.meeting_stagger * mi, [orch] { orch->start(); });
  }

  bed.run_all();

  result.clients = config.meetings * (1 + config.participants_per_meeting);
  result.sim_events = static_cast<std::int64_t>(bed.loop().events_executed());
  result.sim_bytes = bed.network().stats().bytes_sent;
  reg.counter("city.sim_events").add(result.sim_events);
  reg.counter("city.sim_bytes").add(result.sim_bytes);
  if (fleet != nullptr) {
    for (int i = 0; i < fleet->size(); ++i) {
      for (int j = 0; j < fleet->size(); ++j) {
        const fleet::Trunk* t = fleet->trunk(i, j);
        if (t == nullptr) continue;
        result.trunk_delivered_packets += t->stats().delivered_packets;
        result.trunk_dropped_packets += t->shaper_stats().dropped_packets;
      }
    }
  }
  platform::RelayAllocator& alloc = platform->allocator();
  result.relays_created = static_cast<std::int64_t>(alloc.relays_created());
  for (std::size_t i = 0; i < alloc.relays_created(); ++i) {
    result.packets_lost_in_outage += alloc.relay_at(i)->stats().crash_dropped;
  }
  result.reconnects = reg.counter("client.reconnects").value();
  return result;
}

}  // namespace vc::core
