// Plain-text table formatting for benchmark output, so each bench binary can
// print the same rows the paper's tables/figures report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vc {

/// Builds a fixed-width ASCII table. All rows must have the same number of
/// cells as the header.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Renders with column alignment and a separator under the header.
  std::string render() const;

  /// Formats a double with `prec` digits after the decimal point.
  static std::string num(double v, int prec = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vc
