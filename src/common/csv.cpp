#include "common/csv.h"

#include <ostream>

#include "common/json.h"

namespace vc {

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quoting = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
  row(std::vector<std::string>(cells));
}

std::string CsvWriter::num(double v) {
  // Locale-independent: a decimal comma inside a CSV field would also
  // collide with the delimiter.
  return json::format_number(v);
}

}  // namespace vc
