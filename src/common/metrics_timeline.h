// Deterministic time-series snapshots of a MetricsRegistry.
//
// A MetricsTimeline is a sim-time-driven periodic sampler: armed on a
// session's net::EventLoop, it snapshots every counter/gauge/histogram in the
// session's registry into a preallocated ring of per-column samples. The
// design goals mirror vc::Tracer's (DESIGN.md §6):
//
//  1. Structurally zero cost when off. arm() on a disabled timeline schedules
//     nothing at all — same contract as an armed-but-empty fault::FaultPlan —
//     so the disabled-sampler overhead is gated at ≤2% in CI
//     (bench_shard_fanout --timeline-gate).
//  2. Zero allocation in steady state. Column rings are preallocated when a
//     column is first discovered; subsequent samples are a pure merge-walk of
//     the registry's name-sorted maps against the name-sorted column lists.
//     The self-rescheduling tick reuses its event-loop slot. Enforced by a
//     counting-allocator test (tests_timeline_hotpath), the same discipline
//     as the codec hot path.
//  3. Deterministic output. Sampling reads sim time and registry state only;
//     columns are emitted in byte-wise name order; counters (and histogram
//     counts) are delta-encoded against an eviction-maintained base. The
//     exported JSON is byte-identical at any runner thread count × fan-out
//     shard count K (tests/determinism/test_timeline_determinism.cpp).
//
// When the ring wraps, the oldest samples are dropped (flight-recorder
// semantics, like the Tracer): evicted counter deltas fold into each column's
// `base` so decoded cumulative values stay exact over the retained window.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/time.h"

namespace vc {

class MetricsTimeline {
 public:
  struct Config {
    /// Sampling period. Clamped to >= 1 us.
    SimDuration interval = seconds(1);
    /// Retained samples per column (ring capacity). Clamped to >= 1.
    std::size_t capacity = 1024;
  };

  /// Snapshot hook, called synchronously after every sample (and once at
  /// finalize). health::HealthMonitor implements this; the indirection keeps
  /// vc_common free of a dependency on the rule engine.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void on_sample(const MetricsTimeline& timeline, SimTime at) = 0;
    virtual void on_finalize(const MetricsTimeline& timeline, SimTime at) = 0;
  };

  /// Monotonic instrument: per-sample deltas of the counter's cumulative
  /// value. Decoding sample j (global index start()+j over the retained
  /// window) is base + the running sum of deltas[0..j].
  struct CounterColumn {
    std::string name;
    /// Global sample index of this column's first recorded sample (columns
    /// discovered mid-run start late; earlier slots are never emitted).
    std::size_t first_sample = 0;
    /// Cumulative counter value just before the oldest retained sample of
    /// this column. Starts at 0; evicted deltas fold in on ring wrap.
    std::int64_t base = 0;
    /// Ring of per-sample deltas, indexed by global sample index % capacity.
    std::vector<std::int64_t> deltas;
    // Hot-path state + latest-snapshot view for Observers.
    std::int64_t prev = 0;          // raw value at the latest sample
    std::int64_t latest_delta = 0;  // delta recorded by the latest sample
  };

  struct GaugeColumn {
    std::string name;
    std::size_t first_sample = 0;
    /// Ring of raw values, indexed by global sample index % capacity.
    std::vector<double> values;
    double latest = 0.0;
  };

  /// A histogram snapshots as three parallel tracks: cumulative observation
  /// count (delta-encoded like a counter) plus running mean and max.
  struct HistogramColumn {
    std::string name;
    std::size_t first_sample = 0;
    std::int64_t count_base = 0;
    std::vector<std::int64_t> count_deltas;
    std::vector<double> means;
    std::vector<double> maxes;
    std::int64_t prev_count = 0;
    std::int64_t latest_count_delta = 0;
    double latest_mean = 0.0;
    double latest_max = 0.0;
  };

  MetricsTimeline();
  explicit MetricsTimeline(Config config);

  /// Sampling is off until enabled. arm() on a disabled timeline binds the
  /// registry but schedules nothing, so the disabled cost is structural zero.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Borrowed pointer; nullptr (the default) detaches.
  void set_observer(Observer* observer) { observer_ = observer; }
  Observer* observer() const { return observer_; }

  /// Binds the registry to snapshot without scheduling anything (unit tests
  /// drive sample_now() by hand; arm() calls this internally).
  void bind(const MetricsRegistry& registry) { registry_ = &registry; }

  /// Schedules periodic samples at `origin`, `origin + interval`, ... while
  /// the tick time stays <= `until`. The bound is required: EventLoop::run()
  /// drains the queue, so an unbounded self-rescheduling tick would never
  /// let the session terminate. No-op (beyond bind) when disabled.
  ///
  /// Templated on the loop type (anything with now()/schedule_at, i.e.
  /// net::EventLoop) so vc_common never links against vc_net; the 16-byte
  /// tick closure lives in the event slot's inline storage, and the slot
  /// freed by each tick is reused by the next schedule — allocation-free.
  template <class Loop>
  void arm(Loop& loop, const MetricsRegistry& registry, SimTime origin, SimTime until) {
    bind(registry);
    if (!enabled_) return;  // structural zero: nothing scheduled at all
    until_us_ = until.micros();
    if (origin < loop.now()) origin = loop.now();
    if (origin.micros() > until_us_) return;
    schedule_tick(loop, origin);
  }

  /// Takes one snapshot of the bound registry. Called by the armed tick;
  /// public so tests (and custom schedulers) can drive sampling directly.
  void sample_now(SimTime at);

  /// Notifies the observer that no more samples are coming (closing any
  /// still-open SLO breaches at the last sample's timestamp). Idempotent.
  void finalize();

  // ---- snapshot accounting ----
  /// Samples ever taken (kept + dropped).
  std::size_t total_samples() const { return total_; }
  /// Samples currently retained in the rings.
  std::size_t retained_samples() const { return total_ < config_.capacity ? total_ : config_.capacity; }
  /// Samples lost to ring wrap.
  std::size_t dropped_samples() const { return total_ - retained_samples(); }
  /// Global index of the oldest retained sample.
  std::size_t oldest_sample() const { return total_ - retained_samples(); }
  std::size_t column_count() const {
    return counter_cols_.size() + gauge_cols_.size() + histogram_cols_.size();
  }
  SimTime last_sample_time() const { return SimTime{last_sample_us_}; }
  const Config& config() const { return config_; }

  /// Timestamp ring, indexed by global sample index % capacity.
  const std::vector<std::int64_t>& ts_ring_us() const { return ts_us_; }

  // Name-sorted columns; the find_* lookups binary-search and never allocate
  // (HealthMonitor resolves through them on every snapshot).
  const std::vector<CounterColumn>& counter_columns() const { return counter_cols_; }
  const std::vector<GaugeColumn>& gauge_columns() const { return gauge_cols_; }
  const std::vector<HistogramColumn>& histogram_columns() const { return histogram_cols_; }
  const CounterColumn* find_counter(const std::string& name) const;
  const GaugeColumn* find_gauge(const std::string& name) const;
  const HistogramColumn* find_histogram(const std::string& name) const;

  /// Deterministic JSON object:
  ///   {"interval_us":..,"total_samples":..,"samples":..,"dropped":..,
  ///    "ts_us":[..],"counters":[{"name","start","base","deltas":[..]},..],
  ///    "gauges":[{"name","start","values":[..]},..],
  ///    "histograms":[{"name","start","count_base","count_deltas":[..],
  ///                   "mean":[..],"max":[..]},..]}
  /// Columns in byte-wise name order; `start` is the absolute global sample
  /// index of a column's first emitted value (ts of value j is ts_us[start +
  /// j - (total_samples - samples)]). Doubles go through json::format_number
  /// so the bytes are locale-independent.
  std::string to_json() const;

 private:
  template <class Loop>
  void schedule_tick(Loop& loop, SimTime at) {
    loop.schedule_at(at, [this, &loop] {
      sample_now(loop.now());
      const SimTime next = loop.now() + config_.interval;
      if (next.micros() <= until_us_) schedule_tick(loop, next);
    });
  }
  /// Aligns the column lists with the registry's instrument sets. Fast path:
  /// when the sizes already match, the sorted lists are necessarily
  /// identical (instruments are never removed), so nothing is compared.
  void sync_columns();

  Config config_;
  bool enabled_ = false;
  bool finalized_ = false;
  const MetricsRegistry* registry_ = nullptr;
  Observer* observer_ = nullptr;
  std::int64_t until_us_ = 0;
  std::int64_t last_sample_us_ = 0;
  std::size_t total_ = 0;
  std::vector<std::int64_t> ts_us_;
  std::vector<CounterColumn> counter_cols_;
  std::vector<GaugeColumn> gauge_cols_;
  std::vector<HistogramColumn> histogram_cols_;
};

}  // namespace vc
