// A minimal JSON reader for offline tooling (vcbench_cli report/trace and
// schema-checking tests). This is deliberately NOT a serialization framework:
// the simulator writes JSON by hand (runner reports, traces) and this parser
// only has to read those files back plus any well-formed JSON a user points
// the CLI at. Objects preserve key order so re-rendered tables match the
// writer's deterministic ordering.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vc::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<Value> array_items;
  std::vector<std::pair<std::string, Value>> object_items;  // insertion order

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
  /// find() that throws std::runtime_error naming the missing key.
  const Value& at(const std::string& key) const;

  double as_number(double fallback = 0.0) const {
    return is_number() ? number_value : fallback;
  }
  const std::string& as_string() const { return string_value; }
};

/// Parses a complete JSON document; throws std::runtime_error with a byte
/// offset on malformed input, trailing garbage, or container nesting deeper
/// than 256 levels (the parser recurses, so depth is bounded to keep "[[[["
/// bombs from overflowing the stack). Duplicate object keys are preserved in
/// insertion order; find()/at() return the first occurrence.
Value parse(const std::string& text);

/// Renders `v` exactly as printf("%.{precision}g") would in the C locale,
/// but via std::to_chars — independent of LC_NUMERIC, so reports stay
/// byte-identical (and machine-parseable) under a de_DE-style locale that
/// would otherwise print decimal commas. Every hand-rolled JSON/CSV/trace
/// writer in the repo goes through this (or format_fixed).
std::string format_number(double v, int precision = 17);

/// The printf("%.{precision}f") equivalent, same locale independence.
std::string format_fixed(double v, int precision);

}  // namespace vc::json
