// Geographic coordinates and distance, used by the network latency model to
// place the paper's 12 VM sites, the residential mobile site, and platform
// datacenters.
#pragma once

#include <string>

#include "common/time.h"

namespace vc {

/// A point on the Earth's surface.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance (haversine), in kilometers.
double great_circle_km(const GeoPoint& a, const GeoPoint& b);

/// One-way propagation delay estimate between two points.
///
/// Light in fiber travels at ~2/3 c (~200 km/ms); real internet paths are
/// longer than the great circle. `inflation` captures routing stretch
/// (literature reports 1.5–2.1 for inter-domain paths); `base` adds last-mile
/// and processing latency independent of distance.
SimDuration propagation_delay(const GeoPoint& a, const GeoPoint& b,
                              double inflation = 1.8,
                              SimDuration base = millis_f(1.0));

}  // namespace vc
