#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace vc {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument{"table needs at least one column"};
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) throw std::invalid_argument{"row width mismatch"};
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(width[c] - row[c].size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  out.append(total - 2, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string TextTable::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace vc
