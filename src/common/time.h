// Simulation time primitives.
//
// All simulation timestamps are integral microseconds since the start of the
// simulated epoch. We use a strong wrapper rather than std::chrono to keep
// event-loop keys trivially comparable and serializable in trace files.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace vc {

/// A point in simulated time, in microseconds since the simulation epoch.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  /// A time later than any event the simulator will ever schedule.
  static constexpr SimTime infinity() { return SimTime{INT64_MAX}; }

  constexpr std::int64_t micros() const { return micros_; }
  constexpr double seconds() const { return static_cast<double>(micros_) * 1e-6; }
  constexpr double millis() const { return static_cast<double>(micros_) * 1e-3; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  std::string to_string() const;

 private:
  std::int64_t micros_ = 0;
};

/// A span of simulated time, in microseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t micros) : micros_(micros) {}

  static constexpr SimDuration zero() { return SimDuration{0}; }

  constexpr std::int64_t micros() const { return micros_; }
  constexpr double seconds() const { return static_cast<double>(micros_) * 1e-6; }
  constexpr double millis() const { return static_cast<double>(micros_) * 1e-3; }

  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

  std::string to_string() const;

 private:
  std::int64_t micros_ = 0;
};

// Construction helpers. The double overloads round to the nearest microsecond.
constexpr SimDuration micros(std::int64_t v) { return SimDuration{v}; }
constexpr SimDuration millis(std::int64_t v) { return SimDuration{v * 1000}; }
constexpr SimDuration seconds(std::int64_t v) { return SimDuration{v * 1'000'000}; }
constexpr SimDuration minutes(std::int64_t v) { return SimDuration{v * 60'000'000}; }
constexpr SimDuration millis_f(double v) {
  return SimDuration{static_cast<std::int64_t>(v * 1000.0 + (v >= 0 ? 0.5 : -0.5))};
}
constexpr SimDuration seconds_f(double v) {
  return SimDuration{static_cast<std::int64_t>(v * 1e6 + (v >= 0 ? 0.5 : -0.5))};
}

constexpr SimTime operator+(SimTime t, SimDuration d) { return SimTime{t.micros() + d.micros()}; }
constexpr SimTime operator-(SimTime t, SimDuration d) { return SimTime{t.micros() - d.micros()}; }
constexpr SimDuration operator-(SimTime a, SimTime b) { return SimDuration{a.micros() - b.micros()}; }
constexpr SimDuration operator+(SimDuration a, SimDuration b) { return SimDuration{a.micros() + b.micros()}; }
constexpr SimDuration operator-(SimDuration a, SimDuration b) { return SimDuration{a.micros() - b.micros()}; }
constexpr SimDuration operator*(SimDuration d, std::int64_t k) { return SimDuration{d.micros() * k}; }
constexpr SimDuration operator*(std::int64_t k, SimDuration d) { return d * k; }
constexpr SimDuration operator/(SimDuration d, std::int64_t k) { return SimDuration{d.micros() / k}; }

}  // namespace vc
