#include "common/tracer.h"

#include <cstdio>

#include "common/json.h"

namespace vc {
namespace {

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

void append_value(std::string& out, float v) {
  // 9 significant digits round-trip any float; integral values (the common
  // case — batch sizes, queue depths) print without an exponent or trailing
  // zeros. Locale-independent via json::format_number.
  out += json::format_number(static_cast<double>(v), 9);
}

}  // namespace

Tracer::Tracer(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

const char* Tracer::intern(const std::string& name) {
  for (const std::string& s : interned_) {
    if (s == name) return s.c_str();
  }
  interned_.push_back(name);
  return interned_.back().c_str();
}

void Tracer::clear() {
  head_ = 0;
  total_ = 0;
  span_count_ = 0;
  instant_count_ = 0;
  counter_count_ = 0;
}

void Tracer::append_json_escaped(std::string& out, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

std::string Tracer::to_chrome_json() const {
  std::string out;
  out.reserve(64 + size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  for_each([&](const Record& r) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, r.name);
    out += "\",\"ph\":\"";
    switch (r.phase) {
      case Phase::kSpan: out += 'X'; break;
      case Phase::kInstant: out += 'i'; break;
      case Phase::kCounter: out += 'C'; break;
    }
    out += "\",\"ts\":";
    append_i64(out, r.ts_us);
    if (r.phase == Phase::kSpan) {
      out += ",\"dur\":";
      append_i64(out, r.dur_us);
    }
    out += ",\"pid\":1,\"tid\":1";
    if (r.phase == Phase::kInstant) {
      out += ",\"s\":\"t\"";
    }
    out += ",\"args\":{\"value\":";
    append_value(out, r.value);
    out += "}}";
  });
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"sim_us\","
         "\"dropped_records\":";
  append_i64(out, static_cast<std::int64_t>(dropped()));
  out += ",\"recorded\":";
  append_i64(out, static_cast<std::int64_t>(recorded()));
  out += "}}";
  return out;
}

}  // namespace vc
