#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

double quantile_sorted(const std::vector<double>& sorted_values, double q) {
  if (sorted_values.empty()) throw std::invalid_argument{"quantile of empty sample"};
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"quantile q out of [0,1]"};
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_values.size()) return sorted_values.back();
  return sorted_values[lo] * (1.0 - frac) + sorted_values[lo + 1] * frac;
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

BoxplotSummary boxplot(std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument{"boxplot of empty sample"};
  std::sort(values.begin(), values.end());
  BoxplotSummary s;
  s.n = values.size();
  s.q1 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.5);
  s.q3 = quantile_sorted(values, 0.75);
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  s.whisker_lo = values.front();
  s.whisker_hi = values.back();
  for (double v : values) {
    if (v >= lo_fence) {
      s.whisker_lo = v;
      break;
    }
  }
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    if (*it <= hi_fence) {
      s.whisker_hi = *it;
      break;
    }
  }
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  if (sorted_.empty()) throw std::invalid_argument{"CDF of empty sample"};
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::inverse(double q) const { return quantile_sorted(sorted_, q); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument{"bad histogram bounds"};
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  ++counts_[std::min(i, counts_.size() - 1)];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

}  // namespace vc
