// Minimal CSV writer for exporting benchmark results to plotting tools.
//
// Quoting follows RFC 4180: fields containing commas, quotes, or newlines
// are quoted, with embedded quotes doubled.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace vc {

class CsvWriter {
 public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out);

  /// Writes a header or data row.
  void row(const std::vector<std::string>& cells);
  void row(std::initializer_list<std::string> cells);

  /// Formats a double with full round-trip precision.
  static std::string num(double v);

  std::size_t rows_written() const { return rows_; }

 private:
  static std::string escape(const std::string& cell);
  std::ostream& out_;
  std::size_t rows_ = 0;
};

}  // namespace vc
