#include <cstdio>

#include "common/time.h"
#include "common/units.h"

namespace vc {

std::string SimTime::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f s", seconds());
  return buf;
}

std::string SimDuration::to_string() const {
  char buf[48];
  if (micros_ < 1000) {
    std::snprintf(buf, sizeof buf, "%lld us", static_cast<long long>(micros_));
  } else if (micros_ < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2f ms", millis());
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds());
  }
  return buf;
}

std::string DataRate::to_string() const {
  char buf[48];
  if (is_unlimited()) return "unlimited";
  if (bps_ < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.0f Kbps", as_kbps());
  } else {
    std::snprintf(buf, sizeof buf, "%.2f Mbps", as_mbps());
  }
  return buf;
}

}  // namespace vc
