#include "common/rng.h"

#include <numbers>

namespace vc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a, used to hash fork labels into seed salt.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::fork(std::uint64_t salt) const {
  // Mix current state with the salt to obtain an independent stream without
  // perturbing this generator.
  std::uint64_t seed = s_[0] ^ rotl(s_[2], 17) ^ (salt * 0x9E3779B97F4A7C15ULL);
  return Rng{seed};
}

Rng Rng::fork(std::string_view label) const { return fork(fnv1a(label)); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box–Muller; caches the second variate.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::chance(double p) { return next_double() < p; }

std::size_t Rng::index(std::size_t n) {
  return n == 0 ? 0 : static_cast<std::size_t>(next_u64() % n);
}

}  // namespace vc
