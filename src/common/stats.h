// Descriptive statistics used across measurement reporting: running moments,
// quantiles, empirical CDFs, histograms and boxplot summaries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vc {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample using linear interpolation (type-7, the numpy/R
/// default). `q` in [0, 1]. The input need not be sorted.
double quantile(std::vector<double> values, double q);

/// Same quantile, but `sorted_values` must already be ascending; no copy and
/// no re-sort. Use when the caller keeps a sorted sample around (CDFs,
/// boxplots, repeated percentile queries).
double quantile_sorted(const std::vector<double>& sorted_values, double q);

/// Median convenience wrapper.
double median(std::vector<double> values);

/// Five-number summary as drawn in the paper's boxplots (Fig 19a):
/// whiskers at 1.5×IQR clipped to the data range.
struct BoxplotSummary {
  double whisker_lo = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_hi = 0.0;
  std::size_t n = 0;
};
BoxplotSummary boxplot(std::vector<double> values);

/// Empirical CDF over a sample; evaluate at arbitrary points or dump the
/// sorted step function (as in the paper's lag CDFs, Figs 4–7).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x).
  double at(double x) const;
  /// Inverse CDF (quantile), q in [0, 1].
  double inverse(double q) const;
  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Fixed-bin histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace vc
