// Data-size and data-rate units.
//
// Rates follow networking convention: 1 Kbps = 1000 bit/s. Sizes are bytes.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

#include "common/time.h"

namespace vc {

/// A data rate in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;

  static constexpr DataRate bps(std::int64_t v) { return DataRate{v}; }
  static constexpr DataRate kbps(double v) {
    return DataRate{static_cast<std::int64_t>(v * 1e3 + 0.5)};
  }
  static constexpr DataRate mbps(double v) {
    return DataRate{static_cast<std::int64_t>(v * 1e6 + 0.5)};
  }
  static constexpr DataRate zero() { return DataRate{0}; }
  /// Effectively unlimited; used for unshaped links.
  static constexpr DataRate unlimited() { return DataRate{INT64_MAX / 2}; }

  constexpr std::int64_t bits_per_second() const { return bps_; }
  constexpr double as_kbps() const { return static_cast<double>(bps_) * 1e-3; }
  constexpr double as_mbps() const { return static_cast<double>(bps_) * 1e-6; }
  constexpr bool is_unlimited() const { return bps_ >= INT64_MAX / 2; }

  /// Time to serialize `bytes` at this rate.
  constexpr SimDuration transmission_time(std::int64_t bytes) const {
    if (bps_ <= 0 || is_unlimited()) return SimDuration::zero();
    return SimDuration{bytes * 8 * 1'000'000 / bps_};
  }

  /// Bytes transferable in `d` at this rate.
  constexpr std::int64_t bytes_in(SimDuration d) const {
    return bps_ * d.micros() / 8 / 1'000'000;
  }

  friend constexpr auto operator<=>(DataRate, DataRate) = default;

  std::string to_string() const;

 private:
  constexpr explicit DataRate(std::int64_t bps) : bps_(bps) {}
  std::int64_t bps_ = 0;
};

constexpr DataRate operator*(DataRate r, double k) {
  return DataRate::bps(static_cast<std::int64_t>(static_cast<double>(r.bits_per_second()) * k));
}
constexpr DataRate operator+(DataRate a, DataRate b) {
  return DataRate::bps(a.bits_per_second() + b.bits_per_second());
}

}  // namespace vc
