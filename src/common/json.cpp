#include "common/json.h"

#include <charconv>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <system_error>

namespace vc::json {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  // Containers recurse one C++ stack frame per nesting level, so depth must
  // be bounded or "[[[[..." overflows the stack instead of throwing. 256 is
  // far beyond any report this repo emits and far below any stack limit.
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth) parser.fail("nesting too deep");
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string_value = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        {
          Value v;
          v.type = Value::Type::kBool;
          v.bool_value = true;
          return v;
        }
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        {
          Value v;
          v.type = Value::Type::kBool;
          return v;
        }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    const DepthGuard guard{*this};
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      v.object_items.emplace_back(std::move(key), parse_value());
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    const DepthGuard guard{*this};
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_items.push_back(parse_value());
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          // UTF-16 surrogate pair: a high half must be followed by an
          // escaped low half; together they name one supplementary-plane
          // code point. A lone half is not a character — substitute U+FFFD
          // rather than emitting ill-formed UTF-8.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              const std::size_t rewind = pos_;
              pos_ += 2;
              const unsigned low = parse_hex4();
              if (low >= 0xDC00 && low <= 0xDFFF) {
                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
              } else {
                pos_ = rewind;  // the next escape stands alone; re-parse it
                code = 0xFFFD;
              }
            } else {
              code = 0xFFFD;
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            code = 0xFFFD;  // low half with no preceding high half
          }
          append_utf8(out, code);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value parse_number() {
    // std::from_chars, not strtod: strtod honors LC_NUMERIC, so a host
    // locale with decimal commas would silently truncate "1.5" to 1.
    const char* start = text_.c_str() + pos_;
    const char* end = text_.c_str() + text_.size();
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(start, end, d);
    if (ptr == start || ec == std::errc::invalid_argument) fail("expected a value");
    if (ec == std::errc::result_out_of_range) {
      // from_chars leaves `d` untouched here, which would silently read
      // "1e400" as 0. Match strtod semantics instead: overflow saturates to
      // ±infinity, underflow flushes to zero — told apart by the exponent's
      // sign (out-of-range decimal literals always carry an exponent).
      const std::string_view token{start, static_cast<std::size_t>(ptr - start)};
      const std::size_t e = token.find_first_of("eE");
      const bool underflow = e != std::string_view::npos && e + 1 < token.size() &&
                             token[e + 1] == '-';
      d = underflow ? 0.0 : std::numeric_limits<double>::infinity();
      if (token.front() == '-') d = -d;
    }
    pos_ += static_cast<std::size_t>(ptr - start);
    Value v;
    v.type = Value::Type::kNumber;
    v.number_value = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_items) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw std::runtime_error("json: missing key \"" + key + "\"");
  return *v;
}

Value parse(const std::string& text) { return Parser(text).parse_document(); }

namespace {

std::string to_chars_string(double v, std::chars_format fmt, int precision) {
  // 64 bytes covers every %.17g; fixed rendering of huge magnitudes (up to
  // ~310 digits for 1e308) grows the buffer instead of truncating.
  char stack_buf[64];
  auto [ptr, ec] = std::to_chars(stack_buf, stack_buf + sizeof(stack_buf), v, fmt, precision);
  if (ec == std::errc{}) return std::string(stack_buf, ptr);
  std::string buf(352 + static_cast<std::size_t>(precision), '\0');
  const auto [p2, e2] = std::to_chars(buf.data(), buf.data() + buf.size(), v, fmt, precision);
  buf.resize(e2 == std::errc{} ? static_cast<std::size_t>(p2 - buf.data()) : 0);
  return buf;
}

}  // namespace

std::string format_number(double v, int precision) {
  // std::to_chars(general, precision) is specified to match printf "%.*g" in
  // the C locale — byte-identical to the old snprintf path there, but immune
  // to LC_NUMERIC.
  return to_chars_string(v, std::chars_format::general, precision);
}

std::string format_fixed(double v, int precision) {
  return to_chars_string(v, std::chars_format::fixed, precision);
}

}  // namespace vc::json
